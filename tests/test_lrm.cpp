// Batch-scheduler (LRM) and GRAM gateway tests, driven by a ManualClock so
// every transition is deterministic.
#include <gtest/gtest.h>

#include "common/clock.h"
#include "lrm/batch_scheduler.h"
#include "lrm/gram.h"

namespace falkon::lrm {
namespace {

LrmConfig fast_lrm() {
  LrmConfig config;
  config.poll_interval_s = 10.0;
  config.submit_overhead_s = 1.0;
  config.dispatch_overhead_s = 2.0;
  config.cleanup_overhead_s = 3.0;
  config.start_jitter_s = 0.0;
  return config;
}

TEST(BatchScheduler, JobLifecycleTimings) {
  ManualClock clock;
  BatchScheduler scheduler(clock, fast_lrm(), /*total_nodes=*/4);

  int started = 0;
  int done = 0;
  JobSpec spec;
  spec.nodes = 2;
  spec.run_time_s = 5.0;
  spec.on_start = [&](const JobContext& ctx) {
    ++started;
    EXPECT_EQ(ctx.nodes.size(), 2u);
  };
  spec.on_done = [&](JobId, bool killed) {
    ++done;
    EXPECT_FALSE(killed);
  };
  auto job = scheduler.submit(spec);
  ASSERT_TRUE(job.ok());
  EXPECT_EQ(scheduler.state(job.value()), JobState::kQueued);
  EXPECT_EQ(scheduler.queued_jobs(), 1);

  // Nothing happens before the first scheduling cycle at t=10.
  clock.advance(9.0);
  scheduler.step();
  EXPECT_EQ(scheduler.state(job.value()), JobState::kQueued);

  clock.advance(1.0);  // t=10: cycle starts the job
  scheduler.step();
  EXPECT_EQ(scheduler.state(job.value()), JobState::kStarting);
  EXPECT_EQ(scheduler.free_nodes(), 2);

  clock.advance(2.0);  // t=12: prolog done -> running
  scheduler.step();
  EXPECT_EQ(scheduler.state(job.value()), JobState::kRunning);
  EXPECT_EQ(started, 1);

  clock.advance(5.0);  // t=17: payload ends -> completing
  scheduler.step();
  EXPECT_EQ(scheduler.state(job.value()), JobState::kCompleting);
  EXPECT_EQ(scheduler.free_nodes(), 2);  // nodes still held for cleanup

  clock.advance(3.0);  // t=20: cleanup done -> done, nodes released
  scheduler.step();
  EXPECT_EQ(scheduler.state(job.value()), JobState::kDone);
  EXPECT_EQ(scheduler.free_nodes(), 4);
  EXPECT_EQ(done, 1);

  auto times = scheduler.times(job.value());
  ASSERT_TRUE(times.has_value());
  EXPECT_DOUBLE_EQ(times->start_s, 10.0);
  EXPECT_DOUBLE_EQ(times->active_s, 12.0);
  EXPECT_DOUBLE_EQ(times->end_s, 17.0);
  EXPECT_DOUBLE_EQ(times->done_s, 20.0);

  auto stats = scheduler.stats();
  EXPECT_EQ(stats.completed, 1u);
  EXPECT_DOUBLE_EQ(stats.node_seconds_payload, 2 * 5.0);
  EXPECT_DOUBLE_EQ(stats.node_seconds_allocated, 2 * 10.0);
}

TEST(BatchScheduler, FifoHeadBlocksQueue) {
  ManualClock clock;
  BatchScheduler scheduler(clock, fast_lrm(), /*total_nodes=*/2);
  JobSpec big;
  big.nodes = 2;
  big.run_time_s = 100.0;
  JobSpec small;
  small.nodes = 1;
  small.run_time_s = 1.0;
  auto job_big = scheduler.submit(big);
  auto job_big2 = scheduler.submit(big);
  auto job_small = scheduler.submit(small);
  ASSERT_TRUE(job_big.ok() && job_big2.ok() && job_small.ok());

  clock.advance(10.0);
  scheduler.step();
  EXPECT_EQ(scheduler.state(job_big.value()), JobState::kStarting);
  // Strict FIFO: the second big job blocks the small one even though no
  // nodes are free for it either.
  EXPECT_EQ(scheduler.state(job_big2.value()), JobState::kQueued);
  EXPECT_EQ(scheduler.state(job_small.value()), JobState::kQueued);
}

TEST(BatchScheduler, WalltimeKill) {
  ManualClock clock;
  BatchScheduler scheduler(clock, fast_lrm(), 1);
  bool killed_flag = false;
  JobSpec spec;
  spec.nodes = 1;
  spec.run_time_s = 1000.0;
  spec.walltime_s = 20.0;  // from start (t=10) -> kill at t=30
  spec.on_done = [&](JobId, bool killed) { killed_flag = killed; };
  auto job = scheduler.submit(spec);
  ASSERT_TRUE(job.ok());
  clock.advance(40.0);
  scheduler.step();
  EXPECT_EQ(scheduler.state(job.value()), JobState::kDone);
  EXPECT_TRUE(killed_flag);
  EXPECT_EQ(scheduler.stats().killed, 1u);
  EXPECT_EQ(scheduler.free_nodes(), 1);
}

TEST(BatchScheduler, ExternalCompletion) {
  ManualClock clock;
  BatchScheduler scheduler(clock, fast_lrm(), 1);
  JobSpec spec;
  spec.nodes = 1;
  spec.run_time_s = -1.0;  // external payload (Falkon executors)
  auto job = scheduler.submit(spec);
  ASSERT_TRUE(job.ok());
  clock.advance(12.0);
  scheduler.step();
  EXPECT_EQ(scheduler.state(job.value()), JobState::kRunning);
  clock.advance(100.0);
  scheduler.step();
  EXPECT_EQ(scheduler.state(job.value()), JobState::kRunning);  // still held

  ASSERT_TRUE(scheduler.complete(job.value()).ok());
  clock.advance(3.0);
  scheduler.step();
  EXPECT_EQ(scheduler.state(job.value()), JobState::kDone);
}

TEST(BatchScheduler, CancelQueuedAndRunning) {
  ManualClock clock;
  BatchScheduler scheduler(clock, fast_lrm(), 2);
  JobSpec spec;
  spec.nodes = 1;
  spec.run_time_s = 100.0;
  auto a = scheduler.submit(spec);
  auto b = scheduler.submit(spec);
  ASSERT_TRUE(a.ok() && b.ok());

  ASSERT_TRUE(scheduler.cancel(b.value()).ok());  // cancel while queued
  EXPECT_EQ(scheduler.state(b.value()), JobState::kCancelled);

  clock.advance(12.0);
  scheduler.step();
  EXPECT_EQ(scheduler.state(a.value()), JobState::kRunning);
  ASSERT_TRUE(scheduler.cancel(a.value()).ok());  // cancel while running
  EXPECT_EQ(scheduler.state(a.value()), JobState::kCancelled);
  EXPECT_EQ(scheduler.free_nodes(), 2);
  EXPECT_EQ(scheduler.stats().cancelled, 2u);
}

TEST(BatchScheduler, RejectsOversizedJob) {
  ManualClock clock;
  BatchScheduler scheduler(clock, fast_lrm(), 2);
  JobSpec spec;
  spec.nodes = 3;
  auto job = scheduler.submit(spec);
  ASSERT_FALSE(job.ok());
  EXPECT_EQ(job.error().code, ErrorCode::kInvalidArgument);
}

/// Paper Table 2 calibration: the PBS and Condor presets must dispatch 100
/// short tasks at roughly the measured rates (0.45 and 0.49 tasks/s).
class LrmPresetThroughput
    : public ::testing::TestWithParam<std::pair<const char*, double>> {};

TEST_P(LrmPresetThroughput, HundredShortTasksMatchPaperRate) {
  const auto& [preset_name, expected_rate] = GetParam();
  LrmConfig config;
  if (std::string(preset_name) == "pbs") {
    config = pbs_v218_profile();
  } else if (std::string(preset_name) == "condor672") {
    config = condor_v672_profile();
  } else {
    config = condor_v693_profile();
  }

  ManualClock clock;
  BatchScheduler scheduler(clock, config, /*total_nodes=*/64);
  int completed = 0;
  for (int i = 0; i < 100; ++i) {
    JobSpec spec;
    spec.nodes = 1;
    spec.run_time_s = 0.0;  // sleep 0
    spec.on_done = [&](JobId, bool) { ++completed; };
    ASSERT_TRUE(scheduler.submit(spec).ok());
  }
  double elapsed = 0.0;
  while (completed < 100 && elapsed < 3600.0) {
    clock.advance(1.0);
    elapsed += 1.0;
    scheduler.step();
  }
  ASSERT_EQ(completed, 100);
  const double rate = 100.0 / elapsed;
  // Within 2x of the paper's measured/cited throughput.
  EXPECT_GT(rate, expected_rate / 2.0) << "rate=" << rate;
  EXPECT_LT(rate, expected_rate * 2.0) << "rate=" << rate;
}

INSTANTIATE_TEST_SUITE_P(
    Presets, LrmPresetThroughput,
    ::testing::Values(std::make_pair("pbs", 0.45),
                      std::make_pair("condor672", 0.49),
                      std::make_pair("condor693", 11.0)));

TEST(Gram, GatewaySerialisesRequests) {
  ManualClock clock;
  BatchScheduler scheduler(clock, fast_lrm(), 8);
  GramConfig gram_config;
  gram_config.request_overhead_s = 2.0;
  Gram4Gateway gram(clock, scheduler, gram_config);

  std::vector<GramJobState> states;
  JobSpec spec;
  spec.nodes = 1;
  spec.run_time_s = 1.0;
  for (int i = 0; i < 3; ++i) {
    auto id = gram.submit(spec, [&](JobId, GramJobState state) {
      states.push_back(state);
    });
    ASSERT_TRUE(id.ok());
  }
  EXPECT_EQ(gram.pending_requests(), 3);
  // Requests finish gateway processing at t=2,4,6.
  clock.advance(3.0);
  gram.step();
  EXPECT_EQ(gram.pending_requests(), 2);
  EXPECT_EQ(scheduler.queued_jobs(), 1);
  clock.advance(4.0);
  gram.step();
  EXPECT_EQ(gram.pending_requests(), 0);
  EXPECT_EQ(gram.requests_issued(), 3u);
  EXPECT_EQ(scheduler.queued_jobs(), 3);

  // All three Pending notifications were delivered at submit time.
  ASSERT_EQ(states.size(), 3u);
  EXPECT_EQ(states[0], GramJobState::kPending);

  // Drive to completion; Active and Done notifications follow.
  for (int i = 0; i < 40; ++i) {
    clock.advance(1.0);
    gram.step();
    scheduler.step();
  }
  int active = 0;
  int done_count = 0;
  for (auto state : states) {
    if (state == GramJobState::kActive) ++active;
    if (state == GramJobState::kDone) ++done_count;
  }
  EXPECT_EQ(active, 3);
  EXPECT_EQ(done_count, 3);
}

}  // namespace
}  // namespace falkon::lrm
