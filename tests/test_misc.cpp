// Coverage for corners the focused suites do not reach: session
// accounting, dispatcher argument validation, LRM throttling and jitter
// determinism, large frames over real TCP, simulator rate limiting, and
// config file loading.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "common/clock.h"
#include "common/config.h"
#include "core/client.h"
#include "core/service.h"
#include "net/rpc.h"
#include "sim/sim_falkon.h"

namespace falkon {
namespace {

// ---------------------------------------------------------------- session

TEST(Session, CountsSubmittedAndReceived) {
  RealClock clock;
  core::InProcFalkon falkon(clock, core::DispatcherConfig{});
  ASSERT_TRUE(falkon
                  .add_executors(1,
                                 [](Clock&) {
                                   return std::make_unique<core::NoopEngine>();
                                 },
                                 core::ExecutorOptions{})
                  .ok());
  core::SessionOptions options;
  options.bundle_size = 7;  // force several bundles
  auto session = core::FalkonSession::open(falkon.client(), ClientId{1}, options);
  ASSERT_TRUE(session.ok());
  std::vector<TaskSpec> tasks;
  for (int i = 1; i <= 20; ++i) {
    tasks.push_back(make_noop_task(TaskId{static_cast<std::uint64_t>(i)}));
  }
  ASSERT_TRUE(session.value()->submit(std::move(tasks)).ok());
  EXPECT_EQ(session.value()->submitted(), 20u);
  auto results = session.value()->wait(20, 30.0);
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(session.value()->received(), 20u);
}

TEST(Session, WaitRespectsMaxResultsPerCall) {
  ManualClock clock;
  core::Dispatcher dispatcher(clock, core::DispatcherConfig{});
  auto instance = dispatcher.create_instance(ClientId{1});
  struct NullSink final : core::ExecutorSink {
    void notify(ExecutorId, std::uint64_t) override {}
  };
  auto executor = dispatcher.register_executor(wire::RegisterRequest{},
                                               std::make_shared<NullSink>());
  ASSERT_TRUE(instance.ok() && executor.ok());
  std::vector<TaskSpec> tasks;
  for (int i = 1; i <= 10; ++i) {
    tasks.push_back(make_noop_task(TaskId{static_cast<std::uint64_t>(i)}));
  }
  ASSERT_TRUE(dispatcher.submit(instance.value(), std::move(tasks)).ok());
  for (int i = 0; i < 10; ++i) {
    auto work = dispatcher.get_work(executor.value(), 1);
    ASSERT_TRUE(work.ok());
    TaskResult result;
    result.task_id = work.value()[0].id;
    ASSERT_TRUE(dispatcher.deliver_results(executor.value(), {result}, 0).ok());
  }
  auto first = dispatcher.wait_results(instance.value(), 3, 0.0);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().size(), 3u);
  auto rest = dispatcher.wait_results(instance.value(), 100, 0.0);
  ASSERT_TRUE(rest.ok());
  EXPECT_EQ(rest.value().size(), 7u);
}

// ------------------------------------------------------------- dispatcher

TEST(DispatcherValidation, RejectsTaskWithoutId) {
  ManualClock clock;
  core::Dispatcher dispatcher(clock, core::DispatcherConfig{});
  auto instance = dispatcher.create_instance(ClientId{1});
  ASSERT_TRUE(instance.ok());
  std::vector<TaskSpec> tasks(1);  // default TaskSpec: invalid id 0
  auto submit = dispatcher.submit(instance.value(), std::move(tasks));
  ASSERT_FALSE(submit.ok());
  EXPECT_EQ(submit.error().code, ErrorCode::kInvalidArgument);
}

TEST(DispatcherValidation, UnknownExecutorPathsFail) {
  ManualClock clock;
  core::Dispatcher dispatcher(clock, core::DispatcherConfig{});
  auto work = dispatcher.get_work(ExecutorId{42}, 1);
  ASSERT_FALSE(work.ok());
  EXPECT_EQ(work.error().code, ErrorCode::kNotFound);
  auto deliver = dispatcher.deliver_results(ExecutorId{42}, {}, 0);
  ASSERT_FALSE(deliver.ok());
  auto deregister = dispatcher.deregister_executor(ExecutorId{42}, "x");
  ASSERT_FALSE(deregister.ok());
}

TEST(DispatcherValidation, ReleaseSkipsBusyExecutors) {
  ManualClock clock;
  core::Dispatcher dispatcher(clock, core::DispatcherConfig{});
  auto instance = dispatcher.create_instance(ClientId{1});
  struct NullSink final : core::ExecutorSink {
    void notify(ExecutorId, std::uint64_t) override {}
  };
  auto executor = dispatcher.register_executor(wire::RegisterRequest{},
                                               std::make_shared<NullSink>());
  ASSERT_TRUE(instance.ok() && executor.ok());
  std::vector<TaskSpec> one;
  one.push_back(make_noop_task(TaskId{1}));
  ASSERT_TRUE(dispatcher.submit(instance.value(), std::move(one)).ok());
  ASSERT_TRUE(dispatcher.get_work(executor.value(), 1).ok());  // now busy
  EXPECT_TRUE(dispatcher.request_release(5).empty());
}

// -------------------------------------------------------------------- lrm

TEST(LrmThrottle, MaxStartsPerCycleLimitsWaves) {
  ManualClock clock;
  lrm::LrmConfig config;
  config.poll_interval_s = 10.0;
  config.submit_overhead_s = 0.0;
  config.dispatch_overhead_s = 0.1;
  config.cleanup_overhead_s = 0.1;
  config.start_jitter_s = 0.0;
  config.max_starts_per_cycle = 3;
  lrm::BatchScheduler scheduler(clock, config, /*nodes=*/100);
  for (int i = 0; i < 10; ++i) {
    lrm::JobSpec spec;
    spec.nodes = 1;
    spec.run_time_s = 100.0;
    ASSERT_TRUE(scheduler.submit(spec).ok());
  }
  clock.advance(10.0);
  scheduler.step();
  EXPECT_EQ(scheduler.queued_jobs(), 7);  // only 3 started this cycle
  clock.advance(10.0);
  scheduler.step();
  EXPECT_EQ(scheduler.queued_jobs(), 4);
}

TEST(LrmDeterminism, SameSeedSameJitteredTimings) {
  auto run_once = [](std::uint64_t seed) {
    ManualClock clock;
    lrm::LrmConfig config;
    config.poll_interval_s = 5.0;
    config.start_jitter_s = 2.0;
    config.submit_overhead_s = 0.1;
    lrm::BatchScheduler scheduler(clock, config, 4, seed);
    std::vector<double> actives;
    for (int i = 0; i < 4; ++i) {
      lrm::JobSpec spec;
      spec.nodes = 1;
      spec.run_time_s = 1.0;
      (void)scheduler.submit(spec);
    }
    for (int t = 0; t < 30; ++t) {
      clock.advance(1.0);
      scheduler.step();
    }
    for (std::uint64_t j = 1; j <= 4; ++j) {
      auto times = scheduler.times(JobId{j});
      actives.push_back(times ? times->active_s : -1.0);
    }
    return actives;
  };
  EXPECT_EQ(run_once(7), run_once(7));
  EXPECT_NE(run_once(7), run_once(8));  // jitter actually varies
}

// -------------------------------------------------------------------- net

TEST(NetLargeFrames, MegabytePayloadRoundtripsOverTcp) {
  net::RpcServer server;
  ASSERT_TRUE(server
                  .start([](const wire::Message& request) -> wire::Message {
                    return request;  // echo
                  })
                  .ok());
  auto client = net::RpcClient::connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());

  wire::SubmitRequest request;
  request.instance_id = InstanceId{1};
  TaskSpec big = make_noop_task(TaskId{1});
  big.args = {std::string(1 << 20, 'x')};  // 1 MiB argument
  request.tasks.push_back(big);
  auto reply = client.value().call(request);
  ASSERT_TRUE(reply.ok());
  const auto* echoed = std::get_if<wire::SubmitRequest>(&reply.value());
  ASSERT_NE(echoed, nullptr);
  ASSERT_EQ(echoed->tasks.size(), 1u);
  EXPECT_EQ(echoed->tasks[0].args[0].size(), 1u << 20);
  server.stop();
}

// -------------------------------------------------------------------- sim

TEST(SimRateLimit, ClientRateBoundsRamp) {
  sim::SimFalkonConfig config;
  config.executors = 1000;
  config.task_count = 1000;
  config.task_length_s = 100.0;
  config.client_submit_rate_per_s = 50.0;  // 20 s to submit everything
  const auto result = sim::simulate_falkon(config);
  // Full-busy cannot happen before the last task is submitted (~20 s).
  EXPECT_GE(result.full_busy_at_s, 17.0);  // last bundle departs at ~18 s
  EXPECT_LE(result.full_busy_at_s, 25.0);
}

TEST(SimGc, DeterministicWithGcEnabled) {
  sim::SimFalkonConfig config;
  config.executors = 16;
  config.task_count = 20000;
  config.gc.enabled = true;
  const auto a = sim::simulate_falkon(config);
  const auto b = sim::simulate_falkon(config);
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
}

// ----------------------------------------------------------------- config

TEST(ConfigFile, LoadsFromDisk) {
  const std::string path = "/tmp/falkon_test_config.txt";
  {
    std::ofstream out(path);
    out << "# test\nexecutors = 12\nidle = 2.5\n";
  }
  auto config = Config::load_file(path);
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config.value().get_int("executors", 0), 12);
  EXPECT_DOUBLE_EQ(config.value().get_double("idle", 0), 2.5);
  std::remove(path.c_str());
  auto missing = Config::load_file(path);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.error().code, ErrorCode::kNotFound);
}

// ------------------------------------------------------------------ stats

TEST(StatsEdge, HistogramAsciiAndEmptyQuantile) {
  Histogram empty(0, 1, 4);
  EXPECT_EQ(empty.quantile(0.5), 0.0);
  EXPECT_NE(empty.ascii().find("empty"), std::string::npos);
  Histogram h(0, 10, 5);
  h.add(1);
  h.add(9);
  EXPECT_NE(h.ascii().find('#'), std::string::npos);
}

TEST(StatsEdge, TimeSeriesResampleGrid) {
  TimeSeries series;
  series.add(0.0, 1.0);
  series.add(5.0, 2.0);
  auto grid = series.resample(0.0, 10.0, 2.5);
  ASSERT_EQ(grid.size(), 5u);
  EXPECT_DOUBLE_EQ(grid[0].second, 1.0);
  EXPECT_DOUBLE_EQ(grid[2].second, 2.0);  // t=5.0
  EXPECT_DOUBLE_EQ(grid[4].second, 2.0);
}

}  // namespace
}  // namespace falkon
