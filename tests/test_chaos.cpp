// Chaos soak (docs/FAULTS.md): the full TCP deployment and the DES model
// each run ≥1000 tasks under a seeded FaultPlan mixing five-plus fault
// types (connection drops, request corruption, lost replies, lost push
// frames, executor crash/hang/slow, lost acks). The invariant under test
// is the recovery contract: every submitted task reaches exactly one
// terminal state (completed or failed), results are delivered to the
// client at most once, and the DES is bit-reproducible for a given seed.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <iostream>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "core/client.h"
#include "core/service_tcp.h"
#include "fault/fault.h"
#include "ha/failover_client.h"
#include "ha/journal.h"
#include "ha/standby.h"
#include "obs/obs.h"
#include "sim/sim_falkon.h"
#include "testkit/history.h"
#include "testkit/runners.h"

namespace falkon::core {
namespace {

void nap_ms(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

/// Client stub wrapper that survives injected reply drops: a failed call
/// discards the connection and redials. Only used for idempotent reads
/// (status, wait_results) — submit goes through call_once so a processed-
/// but-reply-lost submit is never blindly re-sent (that would duplicate
/// task ids).
class ReliableClient {
 public:
  ReliableClient(std::string host, std::uint16_t port)
      : host_(std::move(host)), port_(port) {}

  template <class Fn>
  auto call(Fn&& fn) -> decltype(fn(std::declval<TcpDispatcherClient&>())) {
    auto result = call_once(fn);
    for (int attempt = 0; attempt < 200 && !result.ok(); ++attempt) {
      nap_ms(10);
      result = call_once(fn);
    }
    return result;
  }

  template <class Fn>
  auto call_once(Fn&& fn) -> decltype(fn(std::declval<TcpDispatcherClient&>())) {
    if (!client_) {
      auto connected = TcpDispatcherClient::connect(host_, port_);
      if (!connected.ok()) return connected.error();
      client_ = connected.take();
    }
    auto result = fn(*client_);
    if (!result.ok()) client_.reset();  // sever: redial on the next call
    return result;
  }

 private:
  std::string host_;
  std::uint16_t port_;
  std::unique_ptr<TcpDispatcherClient> client_;
};

TEST(ChaosTcp, SoakEveryTaskReachesExactlyOneTerminalState) {
  constexpr std::uint64_t kTasks = 1000;
  constexpr int kExecutors = 6;

  RealClock clock;
  obs::Obs obs;

  fault::FaultPlan plan;
  plan.seed = 20260807;
  plan.with(fault::Site::kRpcConnect, fault::Action::kDrop, 0.15);
  plan.with(fault::Site::kRpcRequest, fault::Action::kDrop, 0.02);
  plan.with(fault::Site::kRpcRequest, fault::Action::kCorrupt, 0.02);
  plan.with(fault::Site::kRpcReply, fault::Action::kDrop, 0.01);
  plan.with(fault::Site::kPushFrame, fault::Action::kDrop, 0.10);
  plan.with(fault::Site::kExecutorTask, fault::Action::kCrash, 0.008);
  plan.with(fault::Site::kExecutorTask, fault::Action::kHang, 0.004, 0.2);
  plan.with(fault::Site::kExecutorTask, fault::Action::kSlow, 0.02, 0.01);
  plan.with(fault::Site::kDispatcherAck, fault::Action::kDrop, 0.02);
  fault::FaultInjector injector{plan, &obs};

  DispatcherConfig config;
  config.replay.response_timeout_s = 0.4;
  config.replay.max_retries = 1000;  // recovery, not exhaustion, ends tasks
  config.heartbeat_timeout_s = 0.6;
  config.sweep_interval_s = 0.05;
  config.renotify_timeout_s = 0.3;
  config.quarantine_threshold = 6;
  config.obs = &obs;
  config.fault = &injector;
  Dispatcher dispatcher(clock, config);
  TcpDispatcherServer server(dispatcher, &obs);
  ASSERT_TRUE(server.start(0, 0, &injector).ok());

  // Executor fleet with a supervisor: injected crashes (and executors torn
  // down by false suspicions) exit their runtime; the supervisor respawns
  // the slot, like a provisioner keeping the allocation at size.
  std::uint64_t next_node = 1;
  std::vector<std::unique_ptr<TcpExecutorHarness>> fleet(kExecutors);
  auto spawn = [&](int slot) {
    ExecutorOptions options;
    options.node_id = NodeId{next_node++};
    options.heartbeat_interval_s = 0.15;
    options.link_retries = 6;
    options.register_retries = 6;
    options.backoff.base_s = 0.02;
    options.backoff.max_s = 0.2;
    // Half the fleet polls (firewall mode), half relies on push
    // notifications plus the renotify sweep for lost frames.
    options.poll_interval_s = (slot % 2 == 0) ? 0.25 : 0.0;
    options.fault = &injector;
    auto harness = std::make_unique<TcpExecutorHarness>(
        clock, "127.0.0.1", server.rpc_port(), server.push_port(),
        std::make_unique<NoopEngine>(), options);
    if (harness->start().ok()) fleet[slot] = std::move(harness);
  };
  for (int slot = 0; slot < kExecutors; ++slot) spawn(slot);

  ReliableClient client("127.0.0.1", server.rpc_port());
  auto instance = client.call(
      [](TcpDispatcherClient& c) { return c.create_instance(ClientId{1}); });
  ASSERT_TRUE(instance.ok()) << instance.error().str();

  std::vector<TaskSpec> tasks;
  for (std::uint64_t i = 1; i <= kTasks; ++i) {
    tasks.push_back(make_sleep_task(TaskId{i}, 0.0));
  }
  // The client path injects no request/connect faults, so a single submit
  // always reaches the dispatcher; only its reply can be lost. Confirm via
  // the (idempotent) status call instead of re-sending.
  auto submit = client.call_once([&](TcpDispatcherClient& c) {
    return c.submit(instance.value(), tasks);
  });
  if (!submit.ok()) {
    std::cerr << "submit reply lost (expected under chaos): "
              << submit.error().str() << "\n";
  }
  auto accepted = client.call([](TcpDispatcherClient& c) { return c.status(); });
  ASSERT_TRUE(accepted.ok());
  ASSERT_EQ(accepted.value().submitted, kTasks);

  // Soak: supervise the fleet until every task is terminal.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(90);
  for (;;) {
    const DispatcherStatus status = dispatcher.status();
    if (status.completed + status.failed >= kTasks) break;
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "soak stalled: completed=" << status.completed
        << " failed=" << status.failed << " queued=" << status.queued
        << " dispatched=" << status.dispatched;
    for (int slot = 0; slot < kExecutors; ++slot) {
      if (!fleet[slot] || !fleet[slot]->runtime().running()) {
        fleet[slot].reset();
        spawn(slot);
      }
    }
    nap_ms(25);
  }

  // Exactly one terminal state per task, nothing in flight or queued.
  const DispatcherStatus status = dispatcher.status();
  EXPECT_EQ(status.completed + status.failed, kTasks);
  EXPECT_EQ(status.queued, 0u);
  EXPECT_EQ(status.dispatched, 0u);
  EXPECT_GT(status.retried, 0u);

  // No duplicate result delivery: every picked-up result id is distinct.
  // (A reply lost on the wait_results wire can drop a handful of already-
  // popped results, so collection may come up slightly short — but it can
  // never contain the same task twice.)
  std::set<std::uint64_t> ids;
  std::uint64_t collected = 0;
  int idle_polls = 0;
  while (collected < kTasks && idle_polls < 8) {
    auto batch = client.call_once([&](TcpDispatcherClient& c) {
      return c.wait_results(instance.value(), 256, 0.25);
    });
    if (!batch.ok() || batch.value().empty()) {
      ++idle_polls;
      continue;
    }
    idle_polls = 0;
    for (const auto& result : batch.value()) {
      EXPECT_TRUE(ids.insert(result.task_id.value).second)
          << "duplicate delivery of task " << result.task_id.value;
      EXPECT_GE(result.task_id.value, 1u);
      EXPECT_LE(result.task_id.value, kTasks);
      ++collected;
    }
  }
  EXPECT_GE(collected, kTasks * 9 / 10);

  // The recovery machinery actually ran, and obs agrees with the
  // dispatcher's own accounting.
  obs::Registry& reg = obs.registry();
  EXPECT_GT(reg.counter("falkon.dispatcher.sweeps").value(), 0u);
  EXPECT_GT(reg.counter("falkon.dispatcher.heartbeats").value(), 0u);
  EXPECT_EQ(reg.counter("falkon.dispatcher.tasks_retried").value(),
            status.retried);
  EXPECT_EQ(reg.counter("falkon.dispatcher.suspicions").value(),
            status.suspicions);
  EXPECT_EQ(reg.counter("falkon.dispatcher.false_suspicions").value(),
            status.false_suspicions);
  EXPECT_EQ(reg.counter("falkon.dispatcher.tasks_quarantined").value(),
            status.quarantined);

  // The plan's fault sites genuinely fired — but a site only gates when
  // the run gave it enough opportunities that silence would be a real
  // bug. P(no injection) = (1-p)^ops, so ops*p >= 14 puts that below
  // 1e-6; fewer samples (push_frame in a run that drains mostly via
  // piggy-backing can see only a handful of pushes) prove nothing.
  struct SiteProb {
    fault::Site site;
    double prob;
  };
  for (const SiteProb sp :
       {SiteProb{fault::Site::kRpcRequest, 0.04},
        SiteProb{fault::Site::kRpcReply, 0.01},
        SiteProb{fault::Site::kPushFrame, 0.10},
        SiteProb{fault::Site::kExecutorTask, 0.032},
        SiteProb{fault::Site::kDispatcherAck, 0.02}}) {
    const fault::SiteStats stats = injector.stats(sp.site);
    if (static_cast<double>(stats.ops) * sp.prob < 14.0) continue;
    EXPECT_GT(stats.injected, 0u)
        << "no injections at " << fault::site_name(sp.site) << " in "
        << stats.ops << " samples";
  }

  for (auto& harness : fleet) harness.reset();
  dispatcher.shutdown();
  server.stop();
}

// ---- HA chaos: primary killed mid-run, standby takes over ----

/// Scratch journal directory, removed on destruction.
class ChaosTempDir {
 public:
  ChaosTempDir() {
    char pattern[] = "/tmp/falkon_chaos_ha_XXXXXX";
    const char* made = ::mkdtemp(pattern);
    EXPECT_NE(made, nullptr);
    path_ = made ? made : "";
  }
  ~ChaosTempDir() {
    if (!path_.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(path_, ec);
    }
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// The dispatcher itself becomes a fault site: the supervision loop samples
// Site::kHaPrimary once per round from the seeded plan (the site
// random_plan never draws — HA takeover is always scripted), and when the
// draw says kCrash the primary is killed mid-run. The standby tails the
// journal over ReplFetch, promotes onto the primary's ports, executors
// re-register, the failover client rides out the downtime, and every task
// still reaches exactly one terminal state with each result delivered
// exactly once. The kill schedule is a deterministic function of the seed
// and the round count, so a failing seed replays the same decisions.
TEST(ChaosHa, PrimaryKilledMidRunStandbyFinishesExactlyOnce) {
  constexpr std::uint64_t kTasks = 400;
  constexpr int kExecutors = 4;

  ChaosTempDir primary_dir, standby_dir;
  RealClock clock;
  obs::Obs obs;

  fault::FaultPlan plan;
  plan.seed = 20260808;
  plan.with(fault::Site::kExecutorTask, fault::Action::kCrash, 0.005);
  plan.with(fault::Site::kExecutorTask, fault::Action::kSlow, 0.02, 0.01);
  plan.with(fault::Site::kRpcConnect, fault::Action::kDrop, 0.05);
  plan.with(fault::Site::kHaPrimary, fault::Action::kCrash, 0.05);
  fault::FaultInjector injector{plan, &obs};

  ha::Journal::Options jopts;
  jopts.dir = primary_dir.path();
  jopts.obs = &obs;
  auto journal = ha::Journal::open(jopts);
  ASSERT_TRUE(journal.ok()) << journal.error().str();

  auto make_config = [&](StateJournal* state_journal) {
    DispatcherConfig config;
    config.replay.response_timeout_s = 0.5;
    config.replay.max_retries = 1000;  // recovery, not exhaustion, ends tasks
    config.heartbeat_timeout_s = 1.0;
    config.sweep_interval_s = 0.05;
    config.renotify_timeout_s = 0.3;
    config.obs = &obs;
    config.journal = state_journal;
    return config;
  };
  auto dispatcher =
      std::make_unique<Dispatcher>(clock, make_config(journal.value().get()));
  auto server = std::make_unique<TcpDispatcherServer>(*dispatcher, &obs);
  ASSERT_TRUE(server->start(0, 0, &injector).ok());
  server->set_replication_source(journal.value().get());
  const std::uint16_t rpc_port = server->rpc_port();
  const std::uint16_t push_port = server->push_port();

  ha::StandbyOptions sopts;
  sopts.primary_rpc_port = rpc_port;
  sopts.takeover_rpc_port = rpc_port;
  sopts.takeover_push_port = push_port;
  sopts.shared_log_dir = primary_dir.path();
  sopts.standby_dir = standby_dir.path();
  sopts.poll_interval_s = 0.01;
  sopts.failover_after_s = 0.3;
  sopts.dispatcher = make_config(nullptr);  // journal filled in on promote
  sopts.obs = &obs;
  ha::Standby standby(clock, sopts);
  ASSERT_TRUE(standby.start().ok());

  // Polling fleet (notices a takeover via get_work -> kNotFound) with a
  // supervisor respawning crashed slots against the fixed ports.
  std::uint64_t next_node = 1;
  std::vector<std::unique_ptr<TcpExecutorHarness>> fleet(kExecutors);
  auto spawn = [&](int slot) {
    ExecutorOptions options;
    options.node_id = NodeId{next_node++};
    options.poll_interval_s = 0.05;
    options.heartbeat_interval_s = 0.15;
    options.link_retries = 20;
    options.register_retries = 20;
    options.backoff.base_s = 0.02;
    options.backoff.max_s = 0.25;
    options.fault = &injector;
    auto harness = std::make_unique<TcpExecutorHarness>(
        clock, "127.0.0.1", rpc_port, push_port,
        std::make_unique<NoopEngine>(), options);
    if (harness->start().ok()) fleet[slot] = std::move(harness);
  };
  for (int slot = 0; slot < kExecutors; ++slot) spawn(slot);

  ha::FailoverClientOptions copts;
  copts.rpc_port = rpc_port;
  copts.max_attempts = 400;
  copts.backoff_max_s = 0.2;
  copts.obs = &obs;
  ha::FailoverClient client(copts);
  auto instance = client.create_instance(ClientId{1});
  ASSERT_TRUE(instance.ok()) << instance.error().str();
  std::vector<TaskSpec> tasks;
  for (std::uint64_t i = 1; i <= kTasks; ++i) {
    tasks.push_back(make_sleep_task(TaskId{i}, 0.0));
  }
  auto accepted = client.submit(instance.value(), tasks);
  ASSERT_TRUE(accepted.ok()) << accepted.error().str();
  ASSERT_EQ(accepted.value(), kTasks);

  auto kill_primary = [&] {
    server->stop();
    server.reset();  // the server references the dispatcher: destroy it first
    dispatcher->shutdown();
    dispatcher.reset();
    journal.value().reset();  // fsync + release the log dir to the standby
  };

  // Supervision loop: sample the primary's fate once per round, respawn
  // dead executor slots, and run until every task is terminal on whichever
  // dispatcher is currently in charge.
  bool primary_alive = true;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(120);
  for (;;) {
    auto active_status = [&]() -> DispatcherStatus {
      if (primary_alive) return dispatcher->status();
      // promoted() is the release/acquire gate for dispatcher(): reading
      // the pointer before promotion races the tail thread's promote().
      if (standby.promoted()) return standby.dispatcher()->status();
      return DispatcherStatus{};
    };
    const DispatcherStatus status = active_status();
    if (!primary_alive && standby.promoted() &&
        status.completed + status.failed >= kTasks) {
      break;
    }
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "chaos takeover stalled: primary_alive=" << primary_alive
        << " promoted=" << standby.promoted()
        << " completed=" << status.completed << " failed=" << status.failed
        << " queued=" << status.queued
        << " dispatched=" << status.dispatched;
    if (primary_alive) {
      const fault::Outcome fate = injector.sample(fault::Site::kHaPrimary);
      // Force the takeover if the seeded schedule hasn't fired by the time
      // the run is half done — this test is about failover, not luck.
      if (fate.action == fault::Action::kCrash ||
          status.completed >= kTasks / 2) {
        kill_primary();
        primary_alive = false;
      }
    }
    for (int slot = 0; slot < kExecutors; ++slot) {
      if (!fleet[slot] || !fleet[slot]->runtime().running()) {
        fleet[slot].reset();
        spawn(slot);
      }
    }
    nap_ms(25);
  }

  ASSERT_TRUE(standby.promoted());
  const DispatcherStatus final_status = standby.dispatcher()->status();
  EXPECT_EQ(final_status.completed + final_status.failed, kTasks);
  EXPECT_EQ(final_status.queued, 0u);
  EXPECT_EQ(final_status.dispatched, 0u);

  // Exactly-once delivery across the takeover: the journaled mailbox plus
  // the client-side dedup hand the caller each task id exactly once, even
  // for results that completed on the old primary.
  std::set<std::uint64_t> ids;
  int idle_polls = 0;
  while (ids.size() < kTasks && idle_polls < 20) {
    auto batch = client.wait_results(instance.value(), 256, 0.25);
    if (!batch.ok() || batch.value().empty()) {
      ++idle_polls;
      continue;
    }
    idle_polls = 0;
    for (const auto& result : batch.value()) {
      EXPECT_TRUE(ids.insert(result.task_id.value).second)
          << "duplicate delivery of task " << result.task_id.value;
      EXPECT_GE(result.task_id.value, 1u);
      EXPECT_LE(result.task_id.value, kTasks);
    }
  }
  EXPECT_EQ(ids.size(), kTasks);

  EXPECT_GT(client.reconnects(), 0u);
  EXPECT_GT(obs.registry().gauge("falkon.ha.standby.failover_s").value(), 0.0);

  for (auto& harness : fleet) harness.reset();
  standby.stop();
}

// Double takeover under the invariant model: a multi-standby deployment
// loses its primary, exactly one standby wins the election and takes over;
// then the winner is killed too and the second election among the
// survivors must seat exactly one new primary at a strictly higher epoch.
// The testkit HA runner drives the whole story and the I1-I10 invariants
// (notably I9 one-primary-per-epoch, I10 exactly-once-across-promotion)
// check it offline.
TEST(ChaosHa, DoubleFailoverSecondElectionPromotesSurvivor) {
  testkit::WorkloadSpec spec;
  spec.seed = 20260808;
  spec.task_count = 200;
  spec.executors = 4;
  spec.task_length_s = 0.01;
  spec.client_bundle = 32;
  spec.max_retries = 100;
  spec.replay_timeout_s = 0.5;
  spec.kill_primary_after = 0.25;

  testkit::HaRunOptions ha;
  ha.standbys = 3;
  ha.kill_winner_too = true;
  ha.deadline_s = 120.0;

  const testkit::RunHistory history = testkit::run_tcp_ha(spec, ha);
  const auto violations = testkit::check_invariants(history);
  EXPECT_TRUE(violations.empty()) << testkit::join_violations(violations);
  // Seed primary + exactly two promotions, epochs strictly climbing.
  ASSERT_EQ(history.primary_epochs.size(), 3u)
      << "expected primary + two promoted standbys";
  EXPECT_EQ(history.primary_epochs[0], 0u);
  EXPECT_GT(history.primary_epochs[1], 0u);
  EXPECT_GT(history.primary_epochs[2], history.primary_epochs[1]);
  EXPECT_EQ(history.completed, spec.task_count);
  EXPECT_EQ(history.result_ids.size(), spec.task_count);
}

// ---- DES soak ----

fault::FaultPlan des_plan() {
  fault::FaultPlan plan;
  plan.seed = 424242;
  plan.with(fault::Site::kExecutorTask, fault::Action::kCrash, 0.01);
  plan.with(fault::Site::kExecutorTask, fault::Action::kHang, 0.01, 1.0);
  plan.with(fault::Site::kExecutorTask, fault::Action::kSlow, 0.03, 0.05);
  plan.with(fault::Site::kDispatcherNotify, fault::Action::kDrop, 0.02);
  plan.with(fault::Site::kDispatcherAck, fault::Action::kDrop, 0.02);
  return plan;
}

sim::SimFalkonConfig des_config(fault::FaultInjector& injector) {
  sim::SimFalkonConfig config;
  config.executors = 48;
  config.task_count = 1200;
  config.task_length_s = 0.05;
  config.seed = 7;
  config.replay_timeout_s = 2.0;
  config.max_retries = 6;
  config.fault = &injector;
  return config;
}

TEST(ChaosDes, SoakEveryTaskReachesExactlyOneTerminalState) {
  obs::Obs obs;
  fault::FaultInjector injector{des_plan(), &obs};
  const sim::SimFalkonResult result =
      [&] {
        sim::SimFalkonConfig config = des_config(injector);
        config.obs = &obs;
        return sim::simulate_falkon(config);
      }();

  EXPECT_EQ(result.completed + result.failed, 1200u);
  EXPECT_GT(result.retried, 0u);
  EXPECT_GT(result.injected_faults, 0u);
  EXPECT_GT(result.makespan_s, 0.0);

  // Every configured site fired under the fixed seed.
  for (const fault::Site site :
       {fault::Site::kExecutorTask, fault::Site::kDispatcherNotify,
        fault::Site::kDispatcherAck}) {
    EXPECT_GT(injector.stats(site).injected, 0u)
        << "no injections at " << fault::site_name(site);
  }

  // obs counters agree with the simulation's own accounting.
  obs::Registry& reg = obs.registry();
  EXPECT_EQ(reg.counter("falkon.sim.tasks_failed").value(), result.failed);
  EXPECT_EQ(reg.counter("falkon.sim.tasks_retried").value(), result.retried);
}

TEST(ChaosDes, SameSeedIsBitReproducible) {
  fault::FaultInjector a{des_plan()};
  const sim::SimFalkonResult first = sim::simulate_falkon(des_config(a));
  fault::FaultInjector b{des_plan()};
  const sim::SimFalkonResult second = sim::simulate_falkon(des_config(b));

  EXPECT_EQ(first.makespan_s, second.makespan_s);  // bit-exact, no tolerance
  EXPECT_EQ(first.completed, second.completed);
  EXPECT_EQ(first.failed, second.failed);
  EXPECT_EQ(first.retried, second.retried);
  EXPECT_EQ(first.injected_faults, second.injected_faults);
  EXPECT_EQ(first.throughput_samples, second.throughput_samples);
  EXPECT_EQ(first.queue_series, second.queue_series);
  EXPECT_EQ(first.busy_series, second.busy_series);
  EXPECT_EQ(a.total_injected(), b.total_injected());
}

TEST(ChaosDes, RetryBudgetExhaustionFailsTasksTerminally) {
  fault::FaultPlan plan;
  plan.seed = 99;
  plan.with(fault::Site::kExecutorTask, fault::Action::kCrash, 0.3);
  fault::FaultInjector injector{plan};

  sim::SimFalkonConfig config;
  config.executors = 16;
  config.task_count = 300;
  config.task_length_s = 0.01;
  config.seed = 3;
  config.replay_timeout_s = 1.0;
  config.max_retries = 0;  // any lost attempt is terminal
  config.fault = &injector;
  const sim::SimFalkonResult result = sim::simulate_falkon(config);

  EXPECT_EQ(result.completed + result.failed, 300u);
  EXPECT_GT(result.failed, 0u);
  EXPECT_EQ(result.retried, 0u);  // no budget, so no replays
}

}  // namespace
}  // namespace falkon::core
