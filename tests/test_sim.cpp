// Discrete-event simulation tests: DES core determinism and the
// calibration of the Falkon model against the paper's headline numbers.
#include <gtest/gtest.h>

#include "sim/baselines.h"
#include "sim/event_queue.h"
#include "sim/sim_falkon.h"

namespace falkon::sim {
namespace {

TEST(Simulation, EventsRunInTimeOrderWithFifoTies) {
  Simulation sim;
  std::vector<int> order;
  sim.schedule_at(5.0, [&] { order.push_back(3); });
  sim.schedule_at(1.0, [&] { order.push_back(1); });
  sim.schedule_at(5.0, [&] { order.push_back(4); });  // tie: after first 5.0
  sim.schedule_at(2.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_DOUBLE_EQ(sim.now(), 5.0);
}

TEST(Simulation, EventsCanScheduleMoreEvents) {
  Simulation sim;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 10) sim.schedule_in(1.0, chain);
  };
  sim.schedule_at(0.0, chain);
  sim.run();
  EXPECT_EQ(fired, 10);
  EXPECT_DOUBLE_EQ(sim.now(), 9.0);
}

TEST(Simulation, RunUntilStopsAtBoundary) {
  Simulation sim;
  int fired = 0;
  for (int t = 1; t <= 10; ++t) {
    sim.schedule_at(t, [&] { ++fired; });
  }
  sim.run_until(5.5);
  EXPECT_EQ(fired, 5);
  EXPECT_DOUBLE_EQ(sim.now(), 5.5);
  sim.run();
  EXPECT_EQ(fired, 10);
}

TEST(Simulation, PastEventsClampToNow) {
  Simulation sim;
  double when = -1.0;
  sim.schedule_at(5.0, [&] {
    sim.schedule_at(1.0, [&] { when = sim.now(); });  // in the past
  });
  sim.run();
  EXPECT_DOUBLE_EQ(when, 5.0);
}

TEST(SimFalkon, DeterministicUnderSeed) {
  SimFalkonConfig config;
  config.executors = 16;
  config.task_count = 2000;
  config.seed = 99;
  const auto a = simulate_falkon(config);
  const auto b = simulate_falkon(config);
  EXPECT_DOUBLE_EQ(a.makespan_s, b.makespan_s);
  EXPECT_EQ(a.throughput_samples, b.throughput_samples);
}

// --- Figure 3 calibration -------------------------------------------------

TEST(SimFalkon, PeakThroughputNearPaper487) {
  const double rate = falkon_throughput(/*executors=*/256, /*security=*/false);
  EXPECT_GT(rate, 487.0 * 0.8) << rate;
  EXPECT_LT(rate, 487.0 * 1.2) << rate;
}

TEST(SimFalkon, SecureThroughputNearPaper204) {
  const double rate = falkon_throughput(256, /*security=*/true);
  EXPECT_GT(rate, 204.0 * 0.8) << rate;
  EXPECT_LT(rate, 204.0 * 1.2) << rate;
}

TEST(SimFalkon, SingleExecutorNearPaper28And12) {
  const double insecure = falkon_throughput(1, false, 3000);
  const double secure = falkon_throughput(1, true, 1500);
  EXPECT_GT(insecure, 28.0 * 0.7) << insecure;
  EXPECT_LT(insecure, 28.0 * 1.3) << insecure;
  EXPECT_GT(secure, 12.0 * 0.7) << secure;
  EXPECT_LT(secure, 12.0 * 1.3) << secure;
}

TEST(SimFalkon, ThroughputMonotonicInExecutorsUntilSaturation) {
  double previous = 0.0;
  for (int executors : {1, 2, 4, 8, 16, 32, 64}) {
    const double rate = falkon_throughput(executors, false, 10000);
    EXPECT_GT(rate, previous * 0.98) << "executors=" << executors;
    previous = rate;
  }
}

// --- Figure 5 calibration: bundling ---------------------------------------

TEST(Bundling, UnbundledAndPeakMatchPaperShape) {
  BundlingCostModel model;
  const double unbundled = model.throughput(1);
  EXPECT_GT(unbundled, 10.0);
  EXPECT_LT(unbundled, 40.0);  // paper: ~20 tasks/s

  double best_rate = 0.0;
  int best_bundle = 0;
  for (int bundle = 1; bundle <= 2000; bundle += 1) {
    const double rate = model.throughput(bundle);
    if (rate > best_rate) {
      best_rate = rate;
      best_bundle = bundle;
    }
  }
  // Paper: peak near 1500 tasks/s around 300 tasks/bundle, declining after.
  EXPECT_GT(best_rate, 1000.0);
  EXPECT_LT(best_rate, 2200.0);
  EXPECT_GT(best_bundle, 150);
  EXPECT_LT(best_bundle, 500);
  EXPECT_LT(model.throughput(1000), best_rate);
}

// --- Figure 6 shape: efficiency -------------------------------------------

double sim_efficiency(int executors, double task_length_s) {
  SimFalkonConfig config;
  config.executors = executors;
  config.task_count = static_cast<std::uint64_t>(executors) * 20;
  config.task_length_s = task_length_s;
  const auto result = simulate_falkon(config);
  const double ideal =
      static_cast<double>(config.task_count) * task_length_s / executors;
  return ideal / result.makespan_s;
}

TEST(SimFalkon, EfficiencyHighForOneSecondTasks) {
  // Paper: >= 95% efficiency with 1 s tasks even at 256 executors.
  EXPECT_GT(sim_efficiency(64, 1.0), 0.90);
  EXPECT_GT(sim_efficiency(256, 1.0), 0.85);
}

TEST(SimFalkon, EfficiencyImprovesWithTaskLength) {
  const double e1 = sim_efficiency(64, 1.0);
  const double e8 = sim_efficiency(64, 8.0);
  EXPECT_GT(e8, e1 - 1e-9);
  EXPECT_GT(e8, 0.97);
}

// --- GC model (Figure 8) ---------------------------------------------------

TEST(SimFalkon, GcPausesProduceZeroThroughputSamples) {
  SimFalkonConfig config;
  config.executors = 64;
  config.task_count = 60000;
  config.gc.enabled = true;
  const auto result = simulate_falkon(config);
  int zeros = 0;
  for (std::size_t i = 1; i + 1 < result.throughput_samples.size(); ++i) {
    if (result.throughput_samples[i] == 0) ++zeros;
  }
  EXPECT_GT(zeros, 0) << "expected stop-the-world stalls in raw samples";
  // And the average sits well below the burst rate, as in Figure 8.
  const double avg = result.avg_throughput();
  const double no_gc_avg = [&] {
    SimFalkonConfig c = config;
    c.gc.enabled = false;
    return simulate_falkon(c).avg_throughput();
  }();
  EXPECT_LT(avg, no_gc_avg * 0.85);
}

// --- baselines -------------------------------------------------------------

TEST(Baselines, DerivedEfficiencyMatchesPaperAnchors) {
  // Paper: Condor v6.9.3 reaches 90/95/99% at 1/2/10 of: 50, 100, 1000 s.
  const auto condor = baseline_condor_v693();
  EXPECT_NEAR(derived_efficiency(condor, 50.0), 0.90, 0.08);
  EXPECT_NEAR(derived_efficiency(condor, 100.0), 0.95, 0.05);
  EXPECT_GT(derived_efficiency(condor, 1000.0), 0.99);
  // PBS/Condor production: <1% at 1 s tasks, ~90% at 1200 s.
  EXPECT_LT(derived_efficiency(baseline_pbs_v218(), 1.0), 0.01 + 5e-3);
  EXPECT_NEAR(derived_efficiency(baseline_pbs_v218(), 1200.0), 0.90, 0.1);
}

TEST(Baselines, MakespanRegimes) {
  const auto pbs = baseline_pbs_v218();
  // Dispatch-bound: 100 sleep-0 tasks take ~100/0.45 s regardless of nodes.
  EXPECT_NEAR(baseline_makespan(pbs, 100, 0.0, 64), 100.0 / 0.45, 30.0);
  // Node-bound: long tasks on few nodes approach waves * task_length.
  const double makespan = baseline_makespan(pbs, 64, 10000.0, 32);
  EXPECT_GT(makespan, 2 * 10000.0);
  EXPECT_LT(makespan, 2 * 10000.0 + 1000.0);
}

TEST(Baselines, EfficiencyMonotoneInTaskLength) {
  const auto condor = baseline_condor_v672();
  double previous = 0.0;
  for (double length : {1.0, 4.0, 16.0, 64.0, 256.0, 1024.0, 4096.0}) {
    const double efficiency = baseline_efficiency(condor, 64, length, 32);
    EXPECT_GE(efficiency, previous);
    EXPECT_LE(efficiency, 1.0 + 1e-9);
    previous = efficiency;
  }
}

}  // namespace
}  // namespace falkon::sim
