// Integration tests for the full multi-level scheduling stack: dispatcher +
// provisioner + GRAM gateway + batch scheduler + dynamically launched
// executors, on a scaled clock (1 model minute ~ a few real milliseconds).
#include <gtest/gtest.h>

#include "common/clock.h"
#include "core/client.h"
#include "core/service.h"

namespace falkon::core {
namespace {

FalkonClusterConfig base_config() {
  FalkonClusterConfig config;
  config.lrm.poll_interval_s = 10.0;
  config.lrm.submit_overhead_s = 0.5;
  config.lrm.dispatch_overhead_s = 1.0;
  config.lrm.cleanup_overhead_s = 1.0;
  config.lrm.start_jitter_s = 0.0;
  config.gram.request_overhead_s = 1.0;
  config.provisioner.min_executors = 0;
  config.provisioner.max_executors = 8;
  config.provisioner.executors_per_node = 1;
  config.provisioner.poll_interval_s = 1.0;
  config.executor_template.idle_timeout_s = 30.0;
  config.lrm_nodes = 8;
  return config;
}

std::vector<TaskSpec> sleep_tasks(int count, double duration) {
  std::vector<TaskSpec> tasks;
  for (int i = 1; i <= count; ++i) {
    tasks.push_back(
        make_sleep_task(TaskId{static_cast<std::uint64_t>(i)}, duration));
  }
  return tasks;
}

TEST(FalkonCluster, ProvisionsExecutorsOnDemandAndRunsTasks) {
  ScaledClock clock(200.0);  // 1 model second = 5 ms real
  FalkonCluster cluster(clock, base_config());

  auto session = FalkonSession::open(cluster.client(), ClientId{1});
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session.value()->submit(sleep_tasks(16, 5.0)).ok());

  cluster.start_drivers();
  auto results = session.value()->wait(16, /*deadline_s=*/100000.0);
  cluster.stop();

  ASSERT_TRUE(results.ok()) << results.error().str();
  EXPECT_EQ(results.value().size(), 16u);
  for (const auto& result : results.value()) EXPECT_TRUE(result.success());

  // The provisioner must have requested at least one allocation, and the
  // all-at-once policy keeps the request count small.
  const auto stats = cluster.provisioner().stats();
  EXPECT_GE(stats.allocations_requested, 1u);
  EXPECT_LE(stats.allocations_requested, 8u);
  EXPECT_GE(stats.executors_launched, 1u);
}

TEST(FalkonCluster, IdleExecutorsReleaseAndNodesReturn) {
  ScaledClock clock(200.0);
  auto config = base_config();
  config.executor_template.idle_timeout_s = 5.0;  // aggressive release
  FalkonCluster cluster(clock, config);

  auto session = FalkonSession::open(cluster.client(), ClientId{1});
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session.value()->submit(sleep_tasks(4, 2.0)).ok());

  cluster.start_drivers();
  auto results = session.value()->wait(4, 100000.0);
  ASSERT_TRUE(results.ok()) << results.error().str();

  // After the work drains and the idle timeout passes, executors release
  // themselves and the LRM should get all its nodes back.
  RealClock wall;
  const double wall_start = wall.now_s();
  while (wall.now_s() - wall_start < 20.0) {
    if (cluster.dispatcher().status().registered_executors == 0 &&
        cluster.scheduler().free_nodes() == 8) {
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
  cluster.stop();
  EXPECT_EQ(cluster.dispatcher().status().registered_executors, 0u);
  EXPECT_EQ(cluster.scheduler().free_nodes(), 8);
  EXPECT_GE(cluster.provisioner().stats().executors_exited, 1u);
}

TEST(FalkonCluster, MaxExecutorsCapIsRespected) {
  ScaledClock clock(200.0);
  auto config = base_config();
  config.provisioner.max_executors = 3;
  FalkonCluster cluster(clock, config);

  auto session = FalkonSession::open(cluster.client(), ClientId{1});
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session.value()->submit(sleep_tasks(30, 1.0)).ok());

  cluster.start_drivers();
  auto results = session.value()->wait(30, 100000.0);
  cluster.stop();
  ASSERT_TRUE(results.ok()) << results.error().str();
  EXPECT_LE(cluster.provisioner().stats().executors_launched, 3u);
}

TEST(FalkonCluster, ExecutorsPerNodeMultiplier) {
  ScaledClock clock(200.0);
  auto config = base_config();
  config.provisioner.executors_per_node = 2;  // paper: dual-CPU nodes
  config.provisioner.max_executors = 8;
  FalkonCluster cluster(clock, config);

  auto session = FalkonSession::open(cluster.client(), ClientId{1});
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session.value()->submit(sleep_tasks(8, 3.0)).ok());
  cluster.start_drivers();
  auto results = session.value()->wait(8, 100000.0);
  cluster.stop();
  ASSERT_TRUE(results.ok()) << results.error().str();

  // 8 executors needed -> only 4 nodes consumed.
  const auto lrm_stats = cluster.scheduler().stats();
  EXPECT_GE(cluster.provisioner().stats().executors_launched, 2u);
  EXPECT_LE(lrm_stats.submitted, 4u);
}

TEST(FalkonCluster, ManualSteppingWithManualClock) {
  // Fully deterministic: drive the provisioner poll loop by hand.
  ManualClock clock;
  auto config = base_config();
  config.engine_factory = [](Clock&) { return std::make_unique<NoopEngine>(); };
  FalkonCluster cluster(clock, config);

  auto session = FalkonSession::open(cluster.client(), ClientId{1});
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session.value()->submit(sleep_tasks(4, 0.0)).ok());

  // Advance model time until the allocation starts executors: GRAM (1 s) +
  // LRM eligibility (0.5 s) + poll cycle boundary (10 s) + prolog (1 s).
  std::size_t received = 0;
  for (int tick = 0; tick < 40 && received < 4; ++tick) {
    cluster.step();
    clock.advance(1.0);
    auto batch = session.value()->wait(1, 0.0);
    if (batch.ok()) received += batch.value().size();
  }
  // Give in-flight executor threads a moment to drain (they run free).
  auto rest = session.value()->wait(4 - received, 5.0);
  if (rest.ok()) received += rest.value().size();
  cluster.stop();
  EXPECT_EQ(received, 4u);
}

}  // namespace
}  // namespace falkon::core
