// Property suite: sim ↔ TCP trace conformance.
//
// The acceptance bar for trusting the DES as a stand-in for deployments:
// for the same WorkloadSpec, the DES and the loopback-TCP stack must
// describe equivalent protocol histories — same task set, both quiescent,
// per-task stage ordering valid on both sides, exactly one terminal ack
// per task — and, because generated fault plans are recoverable by
// construction, *every* task completes on both backends even on
// fault-bearing specs.
//
// Budget: 26 randomized workloads from the seed scan plus 6 forced-fault
// workloads (32 conformance pairs per invocation). Each pair runs a full
// TCP deployment, so this suite is serialised in ctest.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "testkit/testkit.h"

namespace falkon::testkit {
namespace {

std::vector<std::string> conformance_property(const WorkloadSpec& spec) {
  const RunHistory sim = run_sim(spec);
  const RunHistory tcp = run_tcp(spec);
  std::vector<std::string> violations = check_invariants(sim);
  for (auto& v : check_invariants(tcp)) violations.push_back(std::move(v));
  for (auto& v : check_conformance(sim, tcp, /*require_all_complete=*/true)) {
    violations.push_back(std::move(v));
  }
  return violations;
}

TEST(PropConformance, SimAndTcpAgreeOnRandomWorkloads) {
  PropertyOptions options;
  options.base_seed = 9000;
  options.cases = 26;
  // TCP runs are expensive; keep the shrink descent bounded.
  options.max_shrink_steps = 24;
  const PropertyOutcome outcome =
      check_property("sim-tcp-conformance", options, conformance_property);
  EXPECT_TRUE(outcome.passed) << outcome.report("sim-tcp-conformance");
  EXPECT_GE(outcome.cases_run, 1);
}

TEST(PropConformance, SimAndTcpAgreeUnderForcedFaultPlans) {
  // The random scan leaves fault-bearing specs to chance; force a plan on
  // every case here so ack retirement, replay and crash recovery are
  // compared on each invocation.
  PropertyOptions options;
  options.base_seed = 9500;
  options.cases = 6;
  options.max_shrink_steps = 24;
  std::uint64_t total_injected = 0;
  const PropertyOutcome outcome = check_property(
      "sim-tcp-conformance-faulty", options, [&](const WorkloadSpec& raw) {
        WorkloadSpec spec = raw;
        spec.fault_intensity = std::max(spec.fault_intensity, 0.5);
        // Keep the forced runs quick: cap the workload, keep budgets high.
        spec.task_count = std::min<std::uint64_t>(spec.task_count, 80);
        const RunHistory sim = run_sim(spec);
        const RunHistory tcp = run_tcp(spec);
        total_injected += sim.injected_faults + tcp.injected_faults;
        std::vector<std::string> violations = check_invariants(sim);
        for (auto& v : check_invariants(tcp)) violations.push_back(std::move(v));
        for (auto& v :
             check_conformance(sim, tcp, /*require_all_complete=*/true)) {
          violations.push_back(std::move(v));
        }
        return violations;
      });
  EXPECT_TRUE(outcome.passed)
      << outcome.report("sim-tcp-conformance-faulty");
  // Forced plans must actually inject somewhere across the scan, or the
  // "faulty" conformance pass is vacuous.
  EXPECT_GT(total_injected, 0u)
      << "no fault ever fired across " << outcome.cases_run << " cases";
}

TEST(PropConformance, SimAndTcpAgreeOnDataAwareWorkloads) {
  // The random scan leaves data-bearing specs to chance; force every case
  // here so the locality router (good-cache-compute + bounded wait) and
  // the digest/evict wire traffic are conformance-checked on each
  // invocation — including invariants I11 (route-on-advertised) and I12
  // (bounded deferral) via the tcp history's data counters.
  PropertyOptions options;
  options.base_seed = 9700;
  options.cases = 6;
  options.max_shrink_steps = 24;
  std::uint64_t data_runs_checked = 0;
  const PropertyOutcome outcome = check_property(
      "sim-tcp-conformance-data", options, [&](const WorkloadSpec& raw) {
        WorkloadSpec spec = raw;
        if (spec.data_objects <= 0) {
          spec.data_objects = 1 + static_cast<int>(spec.seed % 8);
        }
        spec.task_count = std::min<std::uint64_t>(spec.task_count, 96);
        const RunHistory sim = run_sim(spec);
        const RunHistory tcp = run_tcp(spec);
        if (tcp.data_run) ++data_runs_checked;
        std::vector<std::string> violations = check_invariants(sim);
        for (auto& v : check_invariants(tcp)) violations.push_back(std::move(v));
        for (auto& v :
             check_conformance(sim, tcp, /*require_all_complete=*/true)) {
          violations.push_back(std::move(v));
        }
        return violations;
      });
  EXPECT_TRUE(outcome.passed) << outcome.report("sim-tcp-conformance-data");
  // Every pair must have run the tcp side as a data run, or I11/I12 were
  // never actually evaluated and this suite is vacuous.
  EXPECT_EQ(data_runs_checked, static_cast<std::uint64_t>(outcome.cases_run))
      << "tcp histories missing data_run counters";
}

}  // namespace
}  // namespace falkon::testkit
