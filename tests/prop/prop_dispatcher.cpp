// Property suite: the real (threaded) dispatcher, in-process backend.
//
// The in-process runner exercises the dispatcher's sharded hot path, the
// notification engine, replay/renotify sweeps and — on fault-bearing specs
// — the heartbeat failure detector with a supervised fleet, all without
// socket overhead. Every history is replayed through the invariant model.
//
// The regression section pins previously-shrunk counterexamples as plain
// spec literals so they run on every invocation, not just when the seed
// scan happens to revisit them.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "testkit/testkit.h"

namespace falkon::testkit {
namespace {

TEST(PropDispatcher, InvariantsHoldOnRandomWorkloads) {
  PropertyOptions options;
  options.base_seed = 5000;
  options.cases = 30;
  const PropertyOutcome outcome = check_property(
      "dispatcher-invariants", options, [](const WorkloadSpec& spec) {
        return check_invariants(run_inproc(spec));
      });
  EXPECT_TRUE(outcome.passed) << outcome.report("dispatcher-invariants");
}

TEST(PropDispatcher, FaultBearingWorkloadsStayConservative) {
  // Force a fault plan onto every case: conservation and at-most-one-ack
  // must survive crashes, lost notifications and lost acks with the
  // supervisor respawning executors.
  PropertyOptions options;
  options.base_seed = 6000;
  options.cases = 10;
  std::uint64_t total_injected = 0;
  const PropertyOutcome outcome = check_property(
      "dispatcher-fault-invariants", options, [&](const WorkloadSpec& raw) {
        WorkloadSpec spec = raw;
        if (!spec.faulty()) spec.fault_intensity = 0.6;
        // Crashed in-process executors are respawned by the runner.
        spec.supervise = true;
        const RunHistory history = run_inproc(spec);
        total_injected += history.injected_faults;
        return check_invariants(history);
      });
  EXPECT_TRUE(outcome.passed) << outcome.report("dispatcher-fault-invariants");
  EXPECT_GT(total_injected, 0u)
      << "no fault ever fired across " << outcome.cases_run << " cases";
}

// ---- pinned regression cases ----
//
// Shrunk counterexamples from testkit development. Each was found by the
// seed scan, minimised by the shrinker, and is replayed verbatim here.

std::vector<std::string> inproc_property(const WorkloadSpec& spec) {
  return check_invariants(run_inproc(spec));
}

TEST(PropDispatcherRegression, SingleTaskSingleExecutor) {
  // Smallest possible workload: exercises the empty-queue edge of the
  // notification engine and bundle accounting.
  WorkloadSpec spec;
  spec.seed = 1;
  spec.task_count = 1;
  spec.executors = 1;
  spec.client_bundle = 1;
  spec.max_retries = 16;
  const auto violations = inproc_property(spec);
  EXPECT_TRUE(violations.empty()) << join_violations(violations);
}

TEST(PropDispatcherRegression, AdaptiveBundleLargerThanQueue) {
  // Adaptive sizing with more executors than tasks: bundles clamp to 1 and
  // most executors see empty get_work replies.
  WorkloadSpec spec;
  spec.seed = 2;
  spec.task_count = 3;
  spec.executors = 8;
  spec.client_bundle = 3;
  spec.adaptive_bundle = true;
  spec.max_adaptive_bundle = 64;
  spec.max_retries = 16;
  const auto violations = inproc_property(spec);
  EXPECT_TRUE(violations.empty()) << join_violations(violations);
}

TEST(PropDispatcherRegression, RuntimeBudgetBundlingWithSleepTasks) {
  // max_bundle_runtime_s below one task's estimate: every bundle degrades
  // to a single task regardless of the requested count.
  WorkloadSpec spec;
  spec.seed = 3;
  spec.task_count = 24;
  spec.executors = 2;
  spec.task_length_s = 0.005;
  spec.client_bundle = 24;
  spec.executor_bundle = 8;
  spec.max_tasks_per_dispatch = 8;
  spec.max_bundle_runtime_s = 0.004;
  spec.max_retries = 16;
  const auto violations = inproc_property(spec);
  EXPECT_TRUE(violations.empty()) << join_violations(violations);
}

}  // namespace
}  // namespace falkon::testkit
