// Property suite: the DES backend.
//
// Budget: 240 seeded cases per ctest invocation (raise with
// FALKON_PROP_CASES, replay one with FALKON_TEST_SEED). Two properties:
//   * every generated workload — fault plans included — satisfies the
//     dispatcher invariant model (history.h I1..I8) when run through
//     sim::simulate_falkon;
//   * the DES is bit-reproducible: same spec, same protocol history.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "testkit/testkit.h"

namespace falkon::testkit {
namespace {

TEST(PropSim, InvariantsHoldOnRandomWorkloads) {
  PropertyOptions options;
  options.base_seed = 1000;
  options.cases = 200;
  const PropertyOutcome outcome =
      check_property("sim-invariants", options, [](const WorkloadSpec& spec) {
        return check_invariants(run_sim(spec));
      });
  EXPECT_TRUE(outcome.passed) << outcome.report("sim-invariants");
  EXPECT_GE(outcome.cases_run, 1);
}

TEST(PropSim, RecoverableFaultPlansStillCompleteEveryTask) {
  // fault::random_plan promises recoverability: under the generated (>= 16)
  // retry budget every task must still reach completion, not just a
  // terminal state.
  PropertyOptions options;
  options.base_seed = 2000;
  options.cases = 40;
  std::uint64_t total_injected = 0;
  const PropertyOutcome outcome = check_property(
      "sim-fault-completion", options, [&](const WorkloadSpec& raw) {
        WorkloadSpec spec = raw;
        spec.fault_intensity = std::max(spec.fault_intensity, 0.5);
        const RunHistory history = run_sim(spec);
        total_injected += history.injected_faults;
        std::vector<std::string> violations = check_invariants(history);
        if (history.completed != history.submitted) {
          violations.push_back(
              "recoverable plan lost tasks: completed=" +
              std::to_string(history.completed) + " of " +
              std::to_string(history.submitted) + " under " +
              fault::describe(fault_plan(spec)));
        }
        return violations;
      });
  EXPECT_TRUE(outcome.passed) << outcome.report("sim-fault-completion");
  // The scan is only meaningful if the forced plans actually bit somewhere.
  EXPECT_GT(total_injected, 0u)
      << "no fault ever fired across " << outcome.cases_run << " cases";
}

TEST(PropSim, SameSpecIsBitReproducible) {
  PropertyOptions options;
  options.base_seed = 3000;
  options.cases = 30;
  const PropertyOutcome outcome = check_property(
      "sim-determinism", options, [](const WorkloadSpec& spec) {
        const RunHistory a = run_sim(spec);
        const RunHistory b = run_sim(spec);
        std::vector<std::string> violations;
        if (a.completed != b.completed || a.failed != b.failed ||
            a.retried != b.retried) {
          violations.push_back("terminal accounting diverged between runs");
        }
        if (a.events.size() != b.events.size()) {
          violations.push_back("trace lengths diverged: " +
                               std::to_string(a.events.size()) + " vs " +
                               std::to_string(b.events.size()));
        } else {
          for (std::size_t i = 0; i < a.events.size(); ++i) {
            if (a.events[i].task != b.events[i].task ||
                a.events[i].stage != b.events[i].stage ||
                a.events[i].begin_s != b.events[i].begin_s ||
                a.events[i].end_s != b.events[i].end_s) {
              violations.push_back("trace event " + std::to_string(i) +
                                   " diverged");
              break;
            }
          }
        }
        return violations;
      });
  EXPECT_TRUE(outcome.passed) << outcome.report("sim-determinism");
}

}  // namespace
}  // namespace falkon::testkit
