// End-to-end data diffusion over real TCP on loopback (docs/DATA.md):
// executors advertise their cache digests on registration and heartbeats,
// the dispatcher's good-cache-compute router sends tasks to their data,
// and on a holder crash work re-routes with peer-to-peer fetches from the
// surviving holder instead of re-staging through the shared FS.
//
// Everything binds port 0 (ephemeral), so the binary is safe under
// parallel ctest.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "core/client.h"
#include "core/data_plane.h"
#include "core/policies.h"
#include "core/service_tcp.h"
#include "iomodel/io_model.h"
#include "obs/obs.h"

namespace falkon::core {
namespace {

constexpr std::uint64_t kObjectBytes = 256ULL << 10;

obs::ObsConfig traced() {
  obs::ObsConfig config;
  config.tracing = true;
  return config;
}

std::vector<TaskSpec> hot_tasks(std::uint64_t first_id, int count,
                                double compute_s) {
  std::vector<TaskSpec> tasks;
  for (int i = 0; i < count; ++i) {
    TaskSpec task = make_data_task(
        TaskId{first_id + static_cast<std::uint64_t>(i)}, compute_s,
        DataLocation::kSharedFs, IoMode::kRead, kObjectBytes,
        /*output_bytes=*/0);
    task.data_object = "hot";
    task.capture_output = false;
    tasks.push_back(std::move(task));
  }
  return tasks;
}

std::uint64_t count_fetch_spans(const obs::Obs& obs) {
  std::uint64_t fetches = 0;
  for (const auto& span : obs.tracer().snapshot()) {
    if (span.stage == obs::Stage::kDataFetch) ++fetches;
  }
  return fetches;
}

/// One fleet slot: the plane outlives the engine and harness that hold
/// references into it, so members are declared cache-first.
struct Slot {
  std::unique_ptr<DataPlane> plane;
  P2pDataEngine* engine{nullptr};  // owned by the harness
  std::unique_ptr<TcpExecutorHarness> harness;
};

TEST(DataAwareTcp, LocalityRoutesToHolderThenPeerFetchAfterCrash) {
  RealClock clock;
  obs::Obs obs{traced()};

  DispatcherConfig dconfig;
  dconfig.obs = &obs;
  dconfig.max_locality_wait_s = 0.3;
  Dispatcher dispatcher(clock, dconfig,
                        std::make_unique<GoodCacheComputePolicy>());
  TcpDispatcherServer server(dispatcher, &obs);
  ASSERT_TRUE(server.start().ok());

  const iomodel::IoModel io_model;
  std::vector<Slot> fleet(3);
  const auto spawn = [&](std::size_t slot) {
    Slot& cell = fleet[slot];
    cell.plane = std::make_unique<DataPlane>(DataPlaneOptions{.obs = &obs});
    if (slot == 0) cell.plane->insert("hot", kObjectBytes);  // seeded holder
    auto engine = std::make_unique<P2pDataEngine>(clock, io_model,
                                                  /*concurrency=*/3,
                                                  *cell.plane, &obs);
    cell.engine = engine.get();
    ExecutorOptions eopts;
    eopts.node_id = NodeId{slot + 1};
    // The registered host seeds peer data_source endpoints, and the socket
    // layer speaks numeric IPv4 only — the "localhost" default would make
    // every P2P fetch fail over to the shared FS.
    eopts.host = "127.0.0.1";
    eopts.obs = &obs;
    eopts.data = cell.plane.get();
    eopts.heartbeat_interval_s = 0.03;
    // No HA standby here: the takeover probe's periodic bare get_work from
    // an idle cold executor could race the holder to a freshly queued task
    // and blur the locality assertions below.
    eopts.takeover_probe_s = 0.0;
    auto harness = std::make_unique<TcpExecutorHarness>(
        clock, "127.0.0.1", server.rpc_port(), server.push_port(),
        std::move(engine), eopts);
    ASSERT_TRUE(harness->start().ok());
    cell.engine->set_actor(harness->runtime().id().value);
    cell.harness = std::move(harness);
  };
  for (std::size_t slot = 0; slot < fleet.size(); ++slot) spawn(slot);

  auto client = TcpDispatcherClient::connect("127.0.0.1", server.rpc_port());
  ASSERT_TRUE(client.ok());
  auto session = FalkonSession::open(*client.value(), ClientId{1});
  ASSERT_TRUE(session.ok());

  // ---- phase 1: locality routing to the seeded holder, zero fetches ----
  // One task in flight at a time: with queue depth 1 the notification pump
  // wakes exactly one idle executor — the one the good-cache-compute
  // policy picks — so every task must land on the seeded holder. (A burst
  // would wake the cold executors too: the pump notifies one executor per
  // queued task, and the wait bound only defers non-head picks.) Between
  // tasks, wait for the fleet to settle back to idle: the client sees a
  // result a beat before the dispatcher marks the deliverer idle, and a
  // submit landing in that window would be pumped at the cold executors.
  const auto wait_all_idle = [&] {
    const auto idle_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(5);
    while (dispatcher.status().idle_executors <
               dispatcher.status().registered_executors &&
           std::chrono::steady_clock::now() < idle_deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    ASSERT_EQ(dispatcher.status().idle_executors,
              dispatcher.status().registered_executors);
  };
  for (int i = 1; i <= 6; ++i) {
    wait_all_idle();
    auto warm = session.value()->run(
        hot_tasks(static_cast<std::uint64_t>(i), 1, 0.0), 30.0);
    ASSERT_TRUE(warm.ok()) << warm.error().str();
    ASSERT_EQ(warm.value().size(), 1u);
    EXPECT_TRUE(warm.value().front().success());
  }

  // Every task ran where its data lives: no data_fetch stage anywhere, no
  // staging onto the two cold planes, and the router never picked an
  // unadvertised entry (I11) or overran the wait bound (I12).
  EXPECT_EQ(count_fetch_spans(obs), 0u);
  EXPECT_EQ(fleet[1].plane->entries(), 0u);
  EXPECT_EQ(fleet[2].plane->entries(), 0u);
  EXPECT_GE(fleet[0].plane->cache_hits(), 6u);
  {
    const Dispatcher::DataStats stats = dispatcher.data_stats();
    EXPECT_EQ(stats.stale_routes, 0u);
    EXPECT_EQ(stats.locality_overwait, 0u);
  }

  // ---- make a second holder, then crash the first ----
  const std::uint64_t digests_before = dispatcher.data_stats().digests_applied;
  fleet[1].plane->insert("hot", kObjectBytes);
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(5);
  while (dispatcher.data_stats().digests_applied <= digests_before &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_GT(dispatcher.data_stats().digests_applied, digests_before)
      << "second holder's digest never reached the dispatcher";

  fleet[0].harness.reset();      // orderly stop deregisters the holder
  fleet[0].plane->stop();        // and its fetch server goes dark
  ASSERT_EQ(dispatcher.status().registered_executors, 2u);

  // ---- phase 2: re-route to the survivor, P2P fetch off the survivor ----
  // Burst of four: the pump notifies both survivors (one per queued task),
  // so the cold executor pulls a head task too, misses its cache, and must
  // stage "hot" peer-to-peer from the surviving holder the dispatcher
  // stamped as data_source.
  auto rerouted = session.value()->run(hot_tasks(101, 4, 0.4), 30.0);
  ASSERT_TRUE(rerouted.ok()) << rerouted.error().str();
  ASSERT_EQ(rerouted.value().size(), 4u);
  for (const auto& result : rerouted.value()) EXPECT_TRUE(result.success());

  // The surviving holder served at least one peer fetch (the cold executor
  // picked up the aged queue head and staged "hot" from it), and nothing
  // ever consulted the dead holder's plane.
  EXPECT_GE(count_fetch_spans(obs), 1u);
  EXPECT_GE(fleet[1].plane->fetches_served(), 1u);
  EXPECT_GE(fleet[2].engine->p2p_fetches(), 1u);
  EXPECT_TRUE(fleet[2].plane->contains("hot"));
  EXPECT_EQ(fleet[0].plane->fetches_served(), 0u);
  {
    const Dispatcher::DataStats stats = dispatcher.data_stats();
    EXPECT_EQ(stats.stale_routes, 0u);
    EXPECT_EQ(stats.locality_overwait, 0u);
  }
  EXPECT_EQ(obs.registry().counter("falkon.data.digest_stale").value(), 0u);

  for (auto& cell : fleet) cell.harness.reset();
  dispatcher.shutdown();
  server.stop();
}

TEST(DataAwareTcp, LruEvictionReachesDispatcherOverHeartbeat) {
  // A capacity eviction on the executor must turn into a kDataEvict notice
  // on the next heartbeat, so the router stops considering the entry; the
  // replacing object's digest lands the same way.
  RealClock clock;
  obs::Obs obs{obs::ObsConfig{}};

  DispatcherConfig dconfig;
  dconfig.obs = &obs;
  dconfig.max_locality_wait_s = 0.3;
  Dispatcher dispatcher(clock, dconfig,
                        std::make_unique<GoodCacheComputePolicy>());
  TcpDispatcherServer server(dispatcher, &obs);
  ASSERT_TRUE(server.start().ok());

  // Room for one 256 KiB object only: the second insert evicts the first.
  DataPlane plane(DataPlaneOptions{.cache_capacity_bytes = kObjectBytes + 1,
                                   .obs = &obs});
  plane.insert("cold", kObjectBytes);
  const iomodel::IoModel io_model;
  ExecutorOptions eopts;
  eopts.node_id = NodeId{1};
  eopts.obs = &obs;
  eopts.data = &plane;
  eopts.heartbeat_interval_s = 0.03;
  TcpExecutorHarness harness(
      clock, "127.0.0.1", server.rpc_port(), server.push_port(),
      std::make_unique<P2pDataEngine>(clock, io_model, 1, plane, &obs), eopts);
  ASSERT_TRUE(harness.start().ok());

  plane.insert("warm", kObjectBytes);  // LRU drops "cold"
  EXPECT_FALSE(plane.contains("cold"));

  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(5);
  while (dispatcher.data_stats().evictions == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const Dispatcher::DataStats stats = dispatcher.data_stats();
  EXPECT_GE(stats.evictions, 1u) << "evict notice never reached the router";
  EXPECT_EQ(stats.stale_routes, 0u);

  harness.stop();
  dispatcher.shutdown();
  server.stop();
}

}  // namespace
}  // namespace falkon::core
