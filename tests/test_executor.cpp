// Executor runtime and in-process end-to-end tests: the full
// register/notify/get-work/execute/deliver loop, piggy-backing, idle-timeout
// self-release (distributed release policy), pre-fetching, and the shell
// engine.
#include <gtest/gtest.h>

#include "common/clock.h"
#include "core/client.h"
#include "core/service.h"

namespace falkon::core {
namespace {

InProcFalkon::EngineFactory noop_factory() {
  return [](Clock&) { return std::make_unique<NoopEngine>(); };
}

InProcFalkon::EngineFactory sleep_factory() {
  return [](Clock& clock) { return std::make_unique<SleepEngine>(clock); };
}

std::vector<TaskSpec> sleep_tasks(int count, double duration = 0.0) {
  std::vector<TaskSpec> tasks;
  for (int i = 1; i <= count; ++i) {
    tasks.push_back(make_sleep_task(TaskId{static_cast<std::uint64_t>(i)},
                                    duration));
  }
  return tasks;
}

TEST(ExecutorEndToEnd, SingleExecutorRunsAllTasks) {
  RealClock clock;
  InProcFalkon falkon(clock, DispatcherConfig{});
  ASSERT_TRUE(falkon.add_executors(1, noop_factory(), ExecutorOptions{}).ok());

  auto session = FalkonSession::open(falkon.client(), ClientId{1});
  ASSERT_TRUE(session.ok());
  auto results = session.value()->run(sleep_tasks(50), /*deadline_s=*/30.0);
  ASSERT_TRUE(results.ok()) << results.error().str();
  EXPECT_EQ(results.value().size(), 50u);
  for (const auto& result : results.value()) EXPECT_TRUE(result.success());
  EXPECT_EQ(falkon.dispatcher().status().completed, 50u);
}

TEST(ExecutorEndToEnd, ManyExecutorsShareTheQueue) {
  RealClock clock;
  InProcFalkon falkon(clock, DispatcherConfig{});
  ASSERT_TRUE(falkon.add_executors(8, noop_factory(), ExecutorOptions{}).ok());

  auto session = FalkonSession::open(falkon.client(), ClientId{1});
  ASSERT_TRUE(session.ok());
  auto results = session.value()->run(sleep_tasks(400), 30.0);
  ASSERT_TRUE(results.ok()) << results.error().str();
  EXPECT_EQ(results.value().size(), 400u);

  // Exactly-once: all 400 distinct ids present.
  std::set<std::uint64_t> ids;
  for (const auto& result : results.value()) ids.insert(result.task_id.value);
  EXPECT_EQ(ids.size(), 400u);

  // Work was actually spread: the executors together ran 400 tasks.
  std::uint64_t executed = 0;
  for (const auto& stats : falkon.executor_stats()) {
    executed += stats.tasks_executed;
  }
  EXPECT_EQ(executed, 400u);
}

TEST(ExecutorEndToEnd, ScaledClockCompressesSleepTasks) {
  ScaledClock clock(1000.0);  // 1 model second = 1 real millisecond
  InProcFalkon falkon(clock, DispatcherConfig{});
  ASSERT_TRUE(falkon.add_executors(4, sleep_factory(), ExecutorOptions{}).ok());

  auto session = FalkonSession::open(falkon.client(), ClientId{1});
  ASSERT_TRUE(session.ok());
  // 20 x "sleep 10" on 4 executors = 50 model seconds of serial work,
  // i.e. ~50 ms of real time.
  auto results = session.value()->run(sleep_tasks(20, 10.0),
                                      /*deadline_s=*/60000.0);
  ASSERT_TRUE(results.ok()) << results.error().str();
  EXPECT_EQ(results.value().size(), 20u);
  for (const auto& result : results.value()) {
    EXPECT_GE(result.exec_time_s, 9.0);  // model seconds
  }
}

TEST(ExecutorEndToEnd, IdleTimeoutReleasesExecutor) {
  RealClock clock;
  InProcFalkon falkon(clock, DispatcherConfig{});
  ExecutorOptions options;
  options.idle_timeout_s = 0.05;  // 50 ms real
  ASSERT_TRUE(falkon.add_executors(2, noop_factory(), options).ok());
  EXPECT_EQ(falkon.dispatcher().status().registered_executors, 2u);

  // No work arrives: both executors must deregister themselves.
  for (int i = 0; i < 200; ++i) {
    if (falkon.dispatcher().status().registered_executors == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(falkon.dispatcher().status().registered_executors, 0u);
}

TEST(ExecutorEndToEnd, BusyExecutorDoesNotIdleOut) {
  RealClock clock;
  InProcFalkon falkon(clock, DispatcherConfig{});
  ExecutorOptions options;
  options.idle_timeout_s = 0.10;
  ASSERT_TRUE(falkon.add_executors(1, noop_factory(), options).ok());

  auto session = FalkonSession::open(falkon.client(), ClientId{1});
  ASSERT_TRUE(session.ok());
  // Trickle work every 30 ms for ~0.5 s: the executor must stay registered
  // because activity resets its idle clock.
  for (int burst = 0; burst < 15; ++burst) {
    std::vector<TaskSpec> one;
    one.push_back(make_sleep_task(TaskId{static_cast<std::uint64_t>(1000 + burst)}, 0.0));
    ASSERT_TRUE(session.value()->submit(std::move(one)).ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    ASSERT_EQ(falkon.dispatcher().status().registered_executors, 1u)
        << "burst " << burst;
  }
  auto results = session.value()->wait(15, 10.0);
  ASSERT_TRUE(results.ok());
}

TEST(ExecutorEndToEnd, CentralizedReleaseStopsExecutor) {
  RealClock clock;
  InProcFalkon falkon(clock, DispatcherConfig{});
  ASSERT_TRUE(falkon.add_executors(1, noop_factory(), ExecutorOptions{}).ok());
  ASSERT_EQ(falkon.dispatcher().status().registered_executors, 1u);

  auto released = falkon.dispatcher().request_release(1);
  ASSERT_EQ(released.size(), 1u);
  for (int i = 0; i < 200; ++i) {
    if (falkon.dispatcher().status().registered_executors == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(falkon.dispatcher().status().registered_executors, 0u);
}

TEST(ExecutorEndToEnd, PrefetchStillCompletesEverything) {
  RealClock clock;
  InProcFalkon falkon(clock, DispatcherConfig{});
  ExecutorOptions options;
  options.prefetch = true;
  ASSERT_TRUE(falkon.add_executors(2, noop_factory(), options).ok());
  auto session = FalkonSession::open(falkon.client(), ClientId{1});
  ASSERT_TRUE(session.ok());
  auto results = session.value()->run(sleep_tasks(100), 30.0);
  ASSERT_TRUE(results.ok()) << results.error().str();
  std::set<std::uint64_t> ids;
  for (const auto& result : results.value()) ids.insert(result.task_id.value);
  EXPECT_EQ(ids.size(), 100u);
}

TEST(ExecutorEndToEnd, DispatcherExecutorBundling) {
  RealClock clock;
  DispatcherConfig config;
  config.max_tasks_per_dispatch = 10;  // allow bundles to executors
  InProcFalkon falkon(clock, config);
  ExecutorOptions options;
  options.max_bundle = 10;
  options.piggyback_tasks = 10;
  ASSERT_TRUE(falkon.add_executors(2, noop_factory(), options).ok());
  auto session = FalkonSession::open(falkon.client(), ClientId{1});
  ASSERT_TRUE(session.ok());
  auto results = session.value()->run(sleep_tasks(500), 30.0);
  ASSERT_TRUE(results.ok()) << results.error().str();
  EXPECT_EQ(results.value().size(), 500u);
}

TEST(ShellEngine, RunsRealProcessAndCapturesOutput) {
  ShellEngine engine;
  TaskSpec task;
  task.id = TaskId{1};
  task.executable = "/bin/sh";
  task.args = {"-c", "echo out-street; echo err-street 1>&2; exit 3"};
  task.capture_output = true;
  auto result = engine.run(task);
  EXPECT_EQ(result.exit_code, 3);
  EXPECT_EQ(result.state, TaskState::kFailed);
  EXPECT_NE(result.stdout_data.find("out-street"), std::string::npos);
  EXPECT_NE(result.stderr_data.find("err-street"), std::string::npos);
}

TEST(ShellEngine, EnvAndWorkingDirApplied) {
  ShellEngine engine;
  TaskSpec task;
  task.id = TaskId{2};
  task.executable = "/bin/sh";
  task.args = {"-c", "echo $FALKON_TEST_VAR; pwd"};
  task.env = {{"FALKON_TEST_VAR", "falkon-works"}};
  task.working_dir = "/tmp";
  task.capture_output = true;
  auto result = engine.run(task);
  EXPECT_TRUE(result.success());
  EXPECT_NE(result.stdout_data.find("falkon-works"), std::string::npos);
  EXPECT_NE(result.stdout_data.find("/tmp"), std::string::npos);
}

TEST(ShellEngine, MissingExecutableFailsCleanly) {
  ShellEngine engine;
  TaskSpec task;
  task.id = TaskId{3};
  task.executable = "/no/such/binary";
  auto result = engine.run(task);
  EXPECT_EQ(result.exit_code, 127);
  EXPECT_EQ(result.state, TaskState::kFailed);
}

TEST(ShellEngine, EndToEndThroughFalkon) {
  RealClock clock;
  InProcFalkon falkon(clock, DispatcherConfig{});
  ASSERT_TRUE(falkon
                  .add_executors(2,
                                 [](Clock&) {
                                   return std::make_unique<ShellEngine>();
                                 },
                                 ExecutorOptions{})
                  .ok());
  auto session = FalkonSession::open(falkon.client(), ClientId{1});
  ASSERT_TRUE(session.ok());

  std::vector<TaskSpec> tasks;
  for (int i = 1; i <= 10; ++i) {
    TaskSpec task;
    task.id = TaskId{static_cast<std::uint64_t>(i)};
    task.executable = "/bin/sh";
    task.args = {"-c", "echo task-" + std::to_string(i)};
    task.capture_output = true;
    tasks.push_back(std::move(task));
  }
  auto results = session.value()->run(std::move(tasks), 30.0);
  ASSERT_TRUE(results.ok()) << results.error().str();
  ASSERT_EQ(results.value().size(), 10u);
  for (const auto& result : results.value()) {
    EXPECT_TRUE(result.success());
    EXPECT_NE(result.stdout_data.find("task-"), std::string::npos);
  }
}

TEST(DataStagingEngine, CacheHitsSkipSharedFsCosts) {
  ScaledClock clock(10000.0);
  iomodel::IoModel model;
  DataStagingEngine engine(clock, model, /*concurrency=*/128,
                           /*cache_capacity_bytes=*/1ULL << 30);
  TaskSpec task = make_data_task(TaskId{1}, 0.0, DataLocation::kSharedFs,
                                 IoMode::kRead, 100 << 20, 0);
  task.data_object = "hot";
  const auto cold = engine.run(task);
  task.id = TaskId{2};
  const auto warm = engine.run(task);
  EXPECT_EQ(engine.cache_hits(), 1u);
  EXPECT_EQ(engine.cache_misses(), 1u);
  // The cached run reads from local disk: much faster under contention.
  EXPECT_LT(warm.exec_time_s, cold.exec_time_s * 0.5);
}

}  // namespace
}  // namespace falkon::core
