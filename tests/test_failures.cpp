// Failure-injection tests: flaky tasks, executors dying mid-run, lost
// responses, dispatcher shutdown under load — the replay policy (paper
// section 3.1) end to end.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <map>
#include <set>

#include "common/clock.h"
#include "core/client.h"
#include "core/data_plane.h"
#include "core/policies.h"
#include "core/service.h"
#include "iomodel/io_model.h"
#include "obs/obs.h"

namespace falkon::core {
namespace {

std::vector<TaskSpec> sleep_tasks(int count, std::uint64_t first_id = 1) {
  std::vector<TaskSpec> tasks;
  for (int i = 0; i < count; ++i) {
    tasks.push_back(
        make_sleep_task(TaskId{first_id + static_cast<std::uint64_t>(i)}, 0.0));
  }
  return tasks;
}

/// Fails each task's first `failures_per_task` attempts, then succeeds.
class FlakyEngine final : public TaskEngine {
 public:
  explicit FlakyEngine(int failures_per_task)
      : failures_per_task_(failures_per_task) {}

  TaskResult run(const TaskSpec& task) override {
    int seen;
    {
      std::lock_guard lock(mu_);
      seen = attempts_[task.id.value]++;
    }
    TaskResult result;
    result.task_id = task.id;
    if (seen < failures_per_task_) {
      result.exit_code = 1;
      result.state = TaskState::kFailed;
    } else {
      result.exit_code = 0;
      result.state = TaskState::kCompleted;
    }
    return result;
  }

 private:
  int failures_per_task_;
  std::mutex mu_;
  std::map<std::uint64_t, int> attempts_;
};

TEST(Failures, FlakyTasksSucceedThroughRetries) {
  RealClock clock;
  DispatcherConfig config;
  config.replay.max_retries = 3;
  InProcFalkon falkon(clock, config);
  // Shared flaky engine so attempt counts survive executor hops.
  auto engine = std::make_shared<FlakyEngine>(2);
  ASSERT_TRUE(falkon
                  .add_executors(3,
                                 [engine](Clock&) {
                                   // Thin forwarding wrapper: each executor
                                   // shares the counting engine.
                                   class Wrap final : public TaskEngine {
                                    public:
                                     explicit Wrap(std::shared_ptr<FlakyEngine> e)
                                         : e_(std::move(e)) {}
                                     TaskResult run(const TaskSpec& t) override {
                                       return e_->run(t);
                                     }

                                    private:
                                     std::shared_ptr<FlakyEngine> e_;
                                   };
                                   return std::make_unique<Wrap>(engine);
                                 },
                                 ExecutorOptions{})
                  .ok());

  auto session = FalkonSession::open(falkon.client(), ClientId{1});
  ASSERT_TRUE(session.ok());
  auto results = session.value()->run(sleep_tasks(40), 30.0);
  ASSERT_TRUE(results.ok()) << results.error().str();
  ASSERT_EQ(results.value().size(), 40u);
  for (const auto& result : results.value()) {
    EXPECT_TRUE(result.success());  // every task eventually succeeded
  }
  const auto status = falkon.dispatcher().status();
  EXPECT_EQ(status.completed, 40u);
  EXPECT_EQ(status.failed, 0u);
  EXPECT_EQ(status.retried, 80u);  // 2 failures per task
}

TEST(Failures, TasksBeyondRetryBudgetAreReportedFailed) {
  RealClock clock;
  DispatcherConfig config;
  config.replay.max_retries = 1;
  InProcFalkon falkon(clock, config);
  auto engine_factory = [](Clock&) {
    return std::make_unique<FlakyEngine>(1000);  // never succeeds
  };
  ASSERT_TRUE(falkon.add_executors(2, engine_factory, ExecutorOptions{}).ok());

  auto session = FalkonSession::open(falkon.client(), ClientId{1});
  ASSERT_TRUE(session.ok());
  auto results = session.value()->run(sleep_tasks(10), 30.0);
  ASSERT_TRUE(results.ok()) << results.error().str();
  ASSERT_EQ(results.value().size(), 10u);  // failures are still delivered
  for (const auto& result : results.value()) {
    EXPECT_EQ(result.state, TaskState::kFailed);
  }
  EXPECT_EQ(falkon.dispatcher().status().failed, 10u);
}

TEST(Failures, ExecutorDeathMidRunRequeuesItsWork) {
  RealClock clock;
  InProcFalkon falkon(clock, DispatcherConfig{});
  auto slow_factory = [](Clock& c) { return std::make_unique<SleepEngine>(c); };
  // One slow executor takes tasks; killing it must requeue in-flight work
  // to the survivor.
  ASSERT_TRUE(falkon.add_executors(2, slow_factory, ExecutorOptions{}).ok());

  auto session = FalkonSession::open(falkon.client(), ClientId{1});
  ASSERT_TRUE(session.ok());
  std::vector<TaskSpec> tasks;
  for (int i = 1; i <= 30; ++i) {
    tasks.push_back(make_sleep_task(TaskId{static_cast<std::uint64_t>(i)},
                                    0.01));
  }
  ASSERT_TRUE(session.value()->submit(std::move(tasks)).ok());
  // Let execution begin, then stop the whole pool's first executor.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  falkon.dispatcher().request_release(1);  // centrally release one executor

  auto results = session.value()->wait(30, 30.0);
  ASSERT_TRUE(results.ok()) << results.error().str();
  std::set<std::uint64_t> ids;
  for (const auto& result : results.value()) ids.insert(result.task_id.value);
  EXPECT_EQ(ids.size(), 30u);
}

TEST(Failures, LostResponseRecoversViaReplayTimeout) {
  // A "black hole" executor accepts work and never responds; the replay
  // policy re-dispatches to a healthy executor after the timeout.
  ManualClock clock;
  DispatcherConfig config;
  config.replay.response_timeout_s = 5.0;
  config.replay.max_retries = 2;
  Dispatcher dispatcher(clock, config);
  struct NullSink final : ExecutorSink {
    void notify(ExecutorId, std::uint64_t) override {}
  };
  auto instance = dispatcher.create_instance(ClientId{1});
  auto blackhole =
      dispatcher.register_executor(wire::RegisterRequest{},
                                   std::make_shared<NullSink>());
  auto healthy = dispatcher.register_executor(wire::RegisterRequest{},
                                              std::make_shared<NullSink>());
  ASSERT_TRUE(instance.ok() && blackhole.ok() && healthy.ok());

  ASSERT_TRUE(dispatcher.submit(instance.value(), sleep_tasks(5)).ok());
  // Black hole grabs everything...
  for (int i = 0; i < 5; ++i) {
    auto work = dispatcher.get_work(blackhole.value(), 1);
    ASSERT_TRUE(work.ok());
    ASSERT_EQ(work.value().size(), 1u);
  }
  EXPECT_EQ(dispatcher.status().dispatched, 5u);
  // ...and never answers. After the timeout all 5 are requeued.
  clock.advance(6.0);
  EXPECT_EQ(dispatcher.check_replays(), 5);

  // Healthy executor completes them.
  int completed = 0;
  for (int i = 0; i < 5; ++i) {
    auto work = dispatcher.get_work(healthy.value(), 1);
    ASSERT_TRUE(work.ok());
    ASSERT_EQ(work.value().size(), 1u);
    TaskResult result;
    result.task_id = work.value()[0].id;
    auto ack = dispatcher.deliver_results(healthy.value(), {result}, 0);
    ASSERT_TRUE(ack.ok());
    completed += static_cast<int>(ack.value().acknowledged);
  }
  EXPECT_EQ(completed, 5);
  EXPECT_EQ(dispatcher.status().completed, 5u);
}

TEST(Failures, SweeperRecoversLostResponseWithoutManualSweep) {
  // Same black-hole scenario as above, but nobody ever calls
  // check_replays(): the background sweeper must notice the overdue tasks
  // and requeue them on its own (docs/FAULTS.md).
  RealClock clock;
  obs::Obs obs;
  DispatcherConfig config;
  config.replay.response_timeout_s = 0.15;
  config.replay.max_retries = 5;
  config.sweep_interval_s = 0.02;
  config.obs = &obs;
  Dispatcher dispatcher(clock, config);
  struct NullSink final : ExecutorSink {
    void notify(ExecutorId, std::uint64_t) override {}
  };
  auto instance = dispatcher.create_instance(ClientId{1});
  auto blackhole = dispatcher.register_executor(wire::RegisterRequest{},
                                                std::make_shared<NullSink>());
  auto healthy = dispatcher.register_executor(wire::RegisterRequest{},
                                              std::make_shared<NullSink>());
  ASSERT_TRUE(instance.ok() && blackhole.ok() && healthy.ok());

  ASSERT_TRUE(dispatcher.submit(instance.value(), sleep_tasks(5)).ok());
  for (int i = 0; i < 5; ++i) {
    auto work = dispatcher.get_work(blackhole.value(), 1);
    ASSERT_TRUE(work.ok());
    ASSERT_EQ(work.value().size(), 1u);
  }

  // The healthy executor just polls; the sweeper does the recovery.
  int completed = 0;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::seconds(20);
  while (completed < 5 && std::chrono::steady_clock::now() < deadline) {
    auto work = dispatcher.get_work(healthy.value(), 5);
    ASSERT_TRUE(work.ok());
    if (work.value().empty()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
      continue;
    }
    std::vector<TaskResult> results;
    for (const auto& task : work.value()) {
      TaskResult result;
      result.task_id = task.id;
      results.push_back(result);
    }
    auto ack = dispatcher.deliver_results(healthy.value(), results, 0);
    ASSERT_TRUE(ack.ok());
    completed += static_cast<int>(ack.value().acknowledged);
  }
  EXPECT_EQ(completed, 5);
  const auto status = dispatcher.status();
  EXPECT_EQ(status.completed, 5u);
  EXPECT_GE(status.retried, 5u);
  EXPECT_GT(obs.registry().counter("falkon.dispatcher.sweeps").value(), 0u);
  EXPECT_EQ(obs.registry().counter("falkon.dispatcher.tasks_retried").value(),
            status.retried);
  dispatcher.shutdown();
}

TEST(Failures, ExhaustedRetriesEndFailedNotDropped) {
  // A task stuck on an unresponsive executor past its retry budget must
  // reach a terminal failed state (delivered to the client), not linger in
  // dispatched_ forever — and status counters must agree with obs metrics.
  ManualClock clock;
  obs::Obs obs;
  DispatcherConfig config;
  config.replay.response_timeout_s = 5.0;
  config.replay.max_retries = 1;
  config.max_tasks_per_dispatch = 3;
  config.obs = &obs;
  Dispatcher dispatcher(clock, config);
  struct NullSink final : ExecutorSink {
    void notify(ExecutorId, std::uint64_t) override {}
  };
  auto instance = dispatcher.create_instance(ClientId{1});
  auto blackhole = dispatcher.register_executor(wire::RegisterRequest{},
                                                std::make_shared<NullSink>());
  ASSERT_TRUE(instance.ok() && blackhole.ok());

  ASSERT_TRUE(dispatcher.submit(instance.value(), sleep_tasks(3)).ok());
  auto work = dispatcher.get_work(blackhole.value(), 3);
  ASSERT_TRUE(work.ok());
  ASSERT_EQ(work.value().size(), 3u);

  clock.advance(6.0);
  EXPECT_EQ(dispatcher.check_replays(), 3);  // first replay: retried
  work = dispatcher.get_work(blackhole.value(), 3);
  ASSERT_TRUE(work.ok());
  ASSERT_EQ(work.value().size(), 3u);  // black hole grabs them again

  clock.advance(6.0);
  EXPECT_EQ(dispatcher.check_replays(), 0);  // budget exhausted: no requeue

  const auto status = dispatcher.status();
  EXPECT_EQ(status.failed, 3u);
  EXPECT_EQ(status.retried, 3u);
  EXPECT_EQ(status.completed, 0u);
  EXPECT_EQ(status.dispatched, 0u);  // nothing left in flight
  EXPECT_EQ(status.queued, 0u);
  EXPECT_EQ(obs.registry().counter("falkon.dispatcher.tasks_failed").value(),
            status.failed);
  EXPECT_EQ(obs.registry().counter("falkon.dispatcher.tasks_retried").value(),
            status.retried);

  // The failures are delivered to the client as terminal results.
  auto results = dispatcher.wait_results(instance.value(), 10, 0.0);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results.value().size(), 3u);
  for (const auto& result : results.value()) {
    EXPECT_EQ(result.state, TaskState::kFailed);
    EXPECT_NE(result.stderr_data.find("retry budget exhausted"),
              std::string::npos);
  }
}

TEST(Failures, HeartbeatTimeoutDeregistersDeadExecutor) {
  ManualClock clock;
  DispatcherConfig config;
  config.heartbeat_timeout_s = 5.0;
  config.max_tasks_per_dispatch = 2;
  Dispatcher dispatcher(clock, config);
  struct NullSink final : ExecutorSink {
    void notify(ExecutorId, std::uint64_t) override {}
  };
  auto instance = dispatcher.create_instance(ClientId{1});
  auto dead = dispatcher.register_executor(wire::RegisterRequest{},
                                           std::make_shared<NullSink>());
  auto alive = dispatcher.register_executor(wire::RegisterRequest{},
                                            std::make_shared<NullSink>());
  ASSERT_TRUE(instance.ok() && dead.ok() && alive.ok());

  ASSERT_TRUE(dispatcher.submit(instance.value(), sleep_tasks(2)).ok());
  auto work = dispatcher.get_work(dead.value(), 2);
  ASSERT_TRUE(work.ok());
  ASSERT_EQ(work.value().size(), 2u);

  clock.advance(3.0);
  ASSERT_TRUE(dispatcher.heartbeat(alive.value()).ok());
  clock.advance(3.0);  // dead: 6 s silent; alive: 3 s since last beat
  EXPECT_EQ(dispatcher.check_liveness(), 1);

  const auto status = dispatcher.status();
  EXPECT_EQ(status.suspicions, 1u);
  EXPECT_EQ(status.registered_executors, 1u);
  EXPECT_EQ(status.queued, 2u);  // in-flight work was requeued

  // The "dead" executor beats after removal: counted as a false positive.
  EXPECT_FALSE(dispatcher.heartbeat(dead.value()).ok());
  EXPECT_EQ(dispatcher.status().false_suspicions, 1u);
}

TEST(Failures, PoisonTaskQuarantinedAfterKillingExecutors) {
  ManualClock clock;
  obs::Obs obs;
  DispatcherConfig config;
  config.heartbeat_timeout_s = 5.0;
  config.quarantine_threshold = 2;
  config.obs = &obs;
  Dispatcher dispatcher(clock, config);
  struct NullSink final : ExecutorSink {
    void notify(ExecutorId, std::uint64_t) override {}
  };
  auto instance = dispatcher.create_instance(ClientId{1});
  ASSERT_TRUE(instance.ok());
  ASSERT_TRUE(dispatcher.submit(instance.value(), sleep_tasks(1)).ok());

  // Victim 1 takes the task and dies (heartbeat timeout).
  auto victim1 = dispatcher.register_executor(wire::RegisterRequest{},
                                              std::make_shared<NullSink>());
  ASSERT_TRUE(victim1.ok());
  ASSERT_EQ(dispatcher.get_work(victim1.value(), 1).value().size(), 1u);
  clock.advance(6.0);
  EXPECT_EQ(dispatcher.check_liveness(), 1);
  EXPECT_EQ(dispatcher.status().queued, 1u);  // first death: requeued

  // Victim 2 takes it and dies too: threshold reached, task quarantined.
  auto victim2 = dispatcher.register_executor(wire::RegisterRequest{},
                                              std::make_shared<NullSink>());
  ASSERT_TRUE(victim2.ok());
  ASSERT_EQ(dispatcher.get_work(victim2.value(), 1).value().size(), 1u);
  clock.advance(6.0);
  EXPECT_EQ(dispatcher.check_liveness(), 1);

  const auto status = dispatcher.status();
  EXPECT_EQ(status.quarantined, 1u);
  EXPECT_EQ(status.failed, 1u);
  EXPECT_EQ(status.queued, 0u);  // NOT requeued a third time
  EXPECT_EQ(
      obs.registry().counter("falkon.dispatcher.tasks_quarantined").value(),
      1u);

  auto results = dispatcher.wait_results(instance.value(), 10, 0.0);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results.value().size(), 1u);
  EXPECT_EQ(results.value()[0].state, TaskState::kFailed);
  EXPECT_NE(results.value()[0].stderr_data.find("quarantined"),
            std::string::npos);
}

TEST(Failures, RenotifySweepRecoversLostNotification) {
  // An executor whose notification vanished sits in the notified state
  // forever; the stale-notification sweep must re-send it.
  ManualClock clock;
  DispatcherConfig config;
  config.renotify_timeout_s = 2.0;
  config.obs = nullptr;
  Dispatcher dispatcher(clock, config);
  struct CountingSink final : ExecutorSink {
    std::atomic<int> notifies{0};
    void notify(ExecutorId, std::uint64_t) override { ++notifies; }
  };
  auto sink = std::make_shared<CountingSink>();
  auto instance = dispatcher.create_instance(ClientId{1});
  auto executor =
      dispatcher.register_executor(wire::RegisterRequest{}, sink);
  ASSERT_TRUE(instance.ok() && executor.ok());

  ASSERT_TRUE(dispatcher.submit(instance.value(), sleep_tasks(1)).ok());
  // The first notification goes out via the notify pool; wait for it.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (sink->notifies.load() < 1 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_GE(sink->notifies.load(), 1);

  // Executor never pulls (the notify was "lost" on its side). After the
  // renotify timeout the sweep fires another one.
  clock.advance(3.0);
  dispatcher.renotify_stale();
  const auto deadline2 =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (sink->notifies.load() < 2 &&
         std::chrono::steady_clock::now() < deadline2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(sink->notifies.load(), 2);
}

TEST(Failures, ShutdownUnblocksWaitingClients) {
  RealClock clock;
  auto dispatcher = std::make_unique<Dispatcher>(clock, DispatcherConfig{});
  auto instance = dispatcher->create_instance(ClientId{1});
  ASSERT_TRUE(instance.ok());

  std::atomic<bool> returned{false};
  std::thread waiter([&] {
    auto results = dispatcher->wait_results(instance.value(), 1, 10.0);
    // Either an error (closed) or empty results; it must not hang.
    (void)results;
    returned.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(returned.load());
  dispatcher->shutdown();
  waiter.join();
  EXPECT_TRUE(returned.load());
}

TEST(Failures, SubmitAfterShutdownFailsCleanly) {
  RealClock clock;
  Dispatcher dispatcher(clock, DispatcherConfig{});
  auto instance = dispatcher.create_instance(ClientId{1});
  ASSERT_TRUE(instance.ok());
  dispatcher.shutdown();
  auto submit = dispatcher.submit(instance.value(), sleep_tasks(1));
  ASSERT_FALSE(submit.ok());
  EXPECT_EQ(submit.error().code, ErrorCode::kClosed);
}

TEST(Failures, StaleDigestRouteFallsBackToPeerFetch) {
  // Heartbeat-staleness race (docs/DATA.md): executor A advertises an
  // object, evicts it before its next heartbeat, and the dispatcher —
  // still routing on the old digest — sends A the task anyway. The
  // misrouted task must fall back to a peer fetch (counted in
  // falkon.data.digest_stale), never fail or hang.
  RealClock clock;
  obs::Obs obs{obs::ObsConfig{}};
  DispatcherConfig config;
  config.obs = &obs;
  config.max_locality_wait_s = 0.5;
  Dispatcher dispatcher(clock, config,
                        std::make_unique<GoodCacheComputePolicy>());

  struct NullSink final : ExecutorSink {
    void notify(ExecutorId, std::uint64_t) override {}
  };

  // Two planes holding "hot"; only B's fetch server is live, so a fallback
  // must go peer-to-peer to B.
  DataPlane plane_a(DataPlaneOptions{.obs = &obs});
  DataPlane plane_b(DataPlaneOptions{.obs = &obs});
  plane_a.insert("hot", 64 << 10);
  plane_b.insert("hot", 64 << 10);
  ASSERT_TRUE(plane_b.start().ok());

  wire::RegisterRequest reg_a;
  reg_a.host = "127.0.0.1";
  reg_a.data_port = 1;  // any nonzero port registers the digest
  reg_a.cached = {"hot"};
  auto id_a =
      dispatcher.register_executor(reg_a, std::make_shared<NullSink>());
  wire::RegisterRequest reg_b;
  reg_b.host = "127.0.0.1";
  reg_b.data_port = plane_b.port();
  reg_b.cached = {"hot"};
  auto id_b =
      dispatcher.register_executor(reg_b, std::make_shared<NullSink>());
  ASSERT_TRUE(id_a.ok() && id_b.ok());

  // The race: A's cache drops the object after the digest went out. No
  // heartbeat carries the eviction before the next routing decision.
  plane_a.erase("hot");

  auto instance = dispatcher.create_instance(ClientId{1});
  ASSERT_TRUE(instance.ok());
  TaskSpec task =
      make_data_task(TaskId{1}, 0.0, DataLocation::kSharedFs, IoMode::kRead,
                     /*input_bytes=*/64 << 10, /*output_bytes=*/0);
  task.data_object = "hot";
  ASSERT_TRUE(dispatcher.submit(instance.value(), {task}).ok());

  auto work = dispatcher.get_work(id_a.value(), 1);
  ASSERT_TRUE(work.ok());
  ASSERT_EQ(work.value().size(), 1u);
  const TaskSpec& routed = work.value()[0];
  EXPECT_TRUE(routed.expect_cached);  // dispatcher believed A still held it
  EXPECT_EQ(routed.data_source,
            "127.0.0.1:" + std::to_string(plane_b.port()));

  iomodel::IoModel model;
  P2pDataEngine engine(clock, model, /*concurrency=*/2, plane_a, &obs);
  const TaskResult result = engine.run(routed);
  EXPECT_EQ(result.state, TaskState::kCompleted);
  EXPECT_EQ(engine.digest_stale(), 1u);
  EXPECT_EQ(engine.p2p_fetches(), 1u);
  EXPECT_EQ(obs.registry().counter("falkon.data.digest_stale").value(), 1u);
  // The route was legal at pick time — A's mirror still advertised the
  // object — so I11's stale-route self-check must NOT fire.
  EXPECT_EQ(dispatcher.data_stats().stale_routes, 0u);

  auto outcome =
      dispatcher.deliver_results(id_a.value(), {result}, /*want_tasks=*/0);
  EXPECT_TRUE(outcome.ok());
  dispatcher.shutdown();
}

}  // namespace
}  // namespace falkon::core
