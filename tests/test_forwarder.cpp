// Three-tier architecture tests (paper section 6): a forwarder fronting
// multiple dispatchers, each with its own disjoint executor pool — over
// in-process backends, over TCP backends, and composed hierarchically.
#include <gtest/gtest.h>

#include <set>

#include "common/clock.h"
#include "core/forwarder.h"
#include "core/service.h"
#include "core/service_tcp.h"

namespace falkon::core {
namespace {

std::vector<TaskSpec> sleep_tasks(int count, std::uint64_t first_id = 1) {
  std::vector<TaskSpec> tasks;
  for (int i = 0; i < count; ++i) {
    tasks.push_back(
        make_sleep_task(TaskId{first_id + static_cast<std::uint64_t>(i)}, 0.0));
  }
  return tasks;
}

InProcFalkon::EngineFactory noop_factory() {
  return [](Clock&) { return std::make_unique<NoopEngine>(); };
}

class ForwarderTest : public ::testing::Test {
 protected:
  void add_cluster(int executors) {
    auto cluster = std::make_unique<InProcFalkon>(clock_, DispatcherConfig{});
    EXPECT_TRUE(
        cluster->add_executors(executors, noop_factory(), ExecutorOptions{})
            .ok());
    clients_.push_back(&cluster->client());
    clusters_.push_back(std::move(cluster));
  }

  RealClock clock_;
  std::vector<std::unique_ptr<InProcFalkon>> clusters_;
  std::vector<DispatcherClient*> clients_;
};

TEST_F(ForwarderTest, NoBackendsIsUnavailable) {
  Forwarder forwarder({});
  auto instance = forwarder.create_instance(ClientId{1});
  ASSERT_FALSE(instance.ok());
  EXPECT_EQ(instance.error().code, ErrorCode::kUnavailable);
}

TEST_F(ForwarderTest, TasksSpreadAcrossClustersAndAllComplete) {
  add_cluster(2);
  add_cluster(2);
  add_cluster(2);
  Forwarder forwarder(clients_, RoutingPolicy::kRoundRobin);

  SessionOptions options;
  options.bundle_size = 10;  // many bundles -> every backend gets some
  auto session = FalkonSession::open(forwarder, ClientId{1}, options);
  ASSERT_TRUE(session.ok());
  auto results = session.value()->run(sleep_tasks(300), 30.0);
  ASSERT_TRUE(results.ok()) << results.error().str();

  std::set<std::uint64_t> ids;
  for (const auto& result : results.value()) ids.insert(result.task_id.value);
  EXPECT_EQ(ids.size(), 300u);  // exactly once, across all clusters

  const auto routed = forwarder.routed_counts();
  ASSERT_EQ(routed.size(), 3u);
  for (auto count : routed) EXPECT_EQ(count, 100u);  // round-robin balance
}

TEST_F(ForwarderTest, AggregatedStatus) {
  add_cluster(3);
  add_cluster(5);
  Forwarder forwarder(clients_);
  auto status = forwarder.status();
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status.value().registered_executors, 8u);
}

TEST_F(ForwarderTest, LeastLoadedPrefersIdleCluster) {
  add_cluster(2);
  add_cluster(2);
  Forwarder forwarder(clients_, RoutingPolicy::kLeastLoaded);
  auto session = FalkonSession::open(forwarder, ClientId{1});
  ASSERT_TRUE(session.ok());

  // Pre-load cluster 0 directly with slow work so it reports backlog.
  auto direct = FalkonSession::open(*clients_[0], ClientId{2});
  ASSERT_TRUE(direct.ok());
  std::vector<TaskSpec> slow;
  for (int i = 0; i < 50; ++i) {
    slow.push_back(make_sleep_task(TaskId{static_cast<std::uint64_t>(5000 + i)},
                                   0.05));
  }
  ASSERT_TRUE(direct.value()->submit(std::move(slow)).ok());

  ASSERT_TRUE(session.value()->submit(sleep_tasks(20)).ok());
  auto results = session.value()->wait(20, 30.0);
  ASSERT_TRUE(results.ok());

  const auto routed = forwarder.routed_counts();
  // The loaded cluster should have received none (or nearly none) of the
  // forwarder's tasks.
  EXPECT_GT(routed[1], routed[0]);
}

TEST_F(ForwarderTest, HierarchicalForwarderOfForwarders) {
  add_cluster(1);
  add_cluster(1);
  add_cluster(1);
  add_cluster(1);
  Forwarder left({clients_[0], clients_[1]});
  Forwarder right({clients_[2], clients_[3]});
  Forwarder root({&left, &right});

  SessionOptions options;
  options.bundle_size = 5;
  auto session = FalkonSession::open(root, ClientId{1}, options);
  ASSERT_TRUE(session.ok());
  auto results = session.value()->run(sleep_tasks(100), 30.0);
  ASSERT_TRUE(results.ok()) << results.error().str();
  std::set<std::uint64_t> ids;
  for (const auto& result : results.value()) ids.insert(result.task_id.value);
  EXPECT_EQ(ids.size(), 100u);

  // Work reached all four leaf clusters.
  for (const auto& cluster : clusters_) {
    EXPECT_GT(cluster->dispatcher().status().completed, 0u);
  }
}

TEST_F(ForwarderTest, DestroyInstanceCleansAllBackends) {
  add_cluster(1);
  add_cluster(1);
  Forwarder forwarder(clients_);
  auto instance = forwarder.create_instance(ClientId{1});
  ASSERT_TRUE(instance.ok());
  EXPECT_TRUE(forwarder.destroy_instance(instance.value()).ok());
  EXPECT_FALSE(forwarder.destroy_instance(instance.value()).ok());
  // Backend instances are gone too: a direct submit to them must fail.
  auto submit = forwarder.submit(instance.value(), sleep_tasks(1));
  EXPECT_FALSE(submit.ok());
}

TEST_F(ForwarderTest, WorksOverTcpBackends) {
  // Two dispatchers behind TCP servers, each with one TCP executor; the
  // forwarder talks to both through TcpDispatcherClient stubs.
  RealClock clock;
  Dispatcher d1(clock, DispatcherConfig{});
  Dispatcher d2(clock, DispatcherConfig{});
  TcpDispatcherServer s1(d1);
  TcpDispatcherServer s2(d2);
  ASSERT_TRUE(s1.start().ok());
  ASSERT_TRUE(s2.start().ok());
  TcpExecutorHarness e1(clock, "127.0.0.1", s1.rpc_port(), s1.push_port(),
                        std::make_unique<NoopEngine>(), ExecutorOptions{});
  TcpExecutorHarness e2(clock, "127.0.0.1", s2.rpc_port(), s2.push_port(),
                        std::make_unique<NoopEngine>(), ExecutorOptions{});
  ASSERT_TRUE(e1.start().ok());
  ASSERT_TRUE(e2.start().ok());
  auto c1 = TcpDispatcherClient::connect("127.0.0.1", s1.rpc_port());
  auto c2 = TcpDispatcherClient::connect("127.0.0.1", s2.rpc_port());
  ASSERT_TRUE(c1.ok() && c2.ok());

  Forwarder forwarder({c1.value().get(), c2.value().get()});
  SessionOptions options;
  options.bundle_size = 10;
  auto session = FalkonSession::open(forwarder, ClientId{1}, options);
  ASSERT_TRUE(session.ok());
  auto results = session.value()->run(sleep_tasks(100), 30.0);
  ASSERT_TRUE(results.ok()) << results.error().str();
  EXPECT_EQ(results.value().size(), 100u);
  EXPECT_GT(d1.status().completed, 0u);
  EXPECT_GT(d2.status().completed, 0u);

  e1.stop();
  e2.stop();
  s1.stop();
  s2.stop();
}

}  // namespace
}  // namespace falkon::core
