// End-to-end tests over real TCP on loopback: dispatcher server, remote
// executors (RPC pull + push notifications), and remote client. All servers
// bind port 0 (ephemeral), so the binary is safe under parallel ctest.
#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <set>

#include "common/clock.h"
#include "core/client.h"
#include "core/service_tcp.h"
#include "fault/fault.h"
#include "net/rpc.h"
#include "obs/obs.h"

namespace falkon::core {
namespace {

std::vector<TaskSpec> sleep_tasks(int count) {
  std::vector<TaskSpec> tasks;
  for (int i = 1; i <= count; ++i) {
    tasks.push_back(make_sleep_task(TaskId{static_cast<std::uint64_t>(i)}, 0.0));
  }
  return tasks;
}

class TcpStackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dispatcher_ = std::make_unique<Dispatcher>(clock_, DispatcherConfig{});
    server_ = std::make_unique<TcpDispatcherServer>(*dispatcher_);
    ASSERT_TRUE(server_->start().ok());
  }

  void TearDown() override {
    executors_.clear();
    server_->stop();
  }

  void add_executor(ExecutorOptions options = {}) {
    auto harness = std::make_unique<TcpExecutorHarness>(
        clock_, "127.0.0.1", server_->rpc_port(), server_->push_port(),
        std::make_unique<NoopEngine>(), options);
    ASSERT_TRUE(harness->start().ok());
    executors_.push_back(std::move(harness));
  }

  RealClock clock_;
  std::unique_ptr<Dispatcher> dispatcher_;
  std::unique_ptr<TcpDispatcherServer> server_;
  std::vector<std::unique_ptr<TcpExecutorHarness>> executors_;
};

TEST_F(TcpStackTest, RemoteClientRoundtrip) {
  add_executor();
  auto client = TcpDispatcherClient::connect("127.0.0.1", server_->rpc_port());
  ASSERT_TRUE(client.ok());

  auto session = FalkonSession::open(*client.value(), ClientId{1});
  ASSERT_TRUE(session.ok());
  auto results = session.value()->run(sleep_tasks(20), 30.0);
  ASSERT_TRUE(results.ok()) << results.error().str();
  EXPECT_EQ(results.value().size(), 20u);
  for (const auto& result : results.value()) EXPECT_TRUE(result.success());
}

TEST_F(TcpStackTest, MultipleRemoteExecutors) {
  for (int i = 0; i < 4; ++i) add_executor();
  auto client = TcpDispatcherClient::connect("127.0.0.1", server_->rpc_port());
  ASSERT_TRUE(client.ok());
  auto status = client.value()->status();
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status.value().registered_executors, 4u);

  auto session = FalkonSession::open(*client.value(), ClientId{1});
  ASSERT_TRUE(session.ok());
  auto results = session.value()->run(sleep_tasks(200), 30.0);
  ASSERT_TRUE(results.ok()) << results.error().str();
  std::set<std::uint64_t> ids;
  for (const auto& result : results.value()) ids.insert(result.task_id.value);
  EXPECT_EQ(ids.size(), 200u);
}

TEST_F(TcpStackTest, WorkSubmittedBeforeExecutorArrives) {
  auto client = TcpDispatcherClient::connect("127.0.0.1", server_->rpc_port());
  ASSERT_TRUE(client.ok());
  auto session = FalkonSession::open(*client.value(), ClientId{1});
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session.value()->submit(sleep_tasks(10)).ok());

  // No executor yet: nothing completes.
  auto early = session.value()->wait(1, 0.1);
  EXPECT_FALSE(early.ok());

  add_executor();  // registration triggers notification pump
  auto results = session.value()->wait(10, 30.0);
  ASSERT_TRUE(results.ok()) << results.error().str();
  EXPECT_EQ(results.value().size(), 10u);
}

TEST_F(TcpStackTest, ExecutorIdleTimeoutDeregistersOverTcp) {
  ExecutorOptions options;
  options.idle_timeout_s = 0.05;
  add_executor(options);
  auto client = TcpDispatcherClient::connect("127.0.0.1", server_->rpc_port());
  ASSERT_TRUE(client.ok());
  for (int i = 0; i < 200; ++i) {
    auto status = client.value()->status();
    ASSERT_TRUE(status.ok());
    if (status.value().registered_executors == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  auto status = client.value()->status();
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status.value().registered_executors, 0u);
}

TEST_F(TcpStackTest, ErrorsPropagateToRemoteClient) {
  auto client = TcpDispatcherClient::connect("127.0.0.1", server_->rpc_port());
  ASSERT_TRUE(client.ok());
  auto bogus = client.value()->submit(InstanceId{999}, sleep_tasks(1));
  ASSERT_FALSE(bogus.ok());
  EXPECT_EQ(bogus.error().code, ErrorCode::kNotFound);
}

TEST_F(TcpStackTest, ClientNotificationsArriveOnResultDelivery) {
  add_executor();
  auto client = TcpDispatcherClient::connect("127.0.0.1", server_->rpc_port());
  ASSERT_TRUE(client.ok());
  auto instance = client.value()->create_instance(ClientId{1});
  ASSERT_TRUE(instance.ok());

  std::mutex mu;
  std::condition_variable cv;
  std::uint64_t last_ready = 0;
  TcpResultListener listener;
  ASSERT_TRUE(listener
                  .start("127.0.0.1", server_->push_port(), instance.value(),
                         [&](InstanceId, std::uint64_t ready) {
                           std::lock_guard lock(mu);
                           last_ready = std::max(last_ready, ready);
                           cv.notify_all();
                         })
                  .ok());
  // Let the subscription land before submitting.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  ASSERT_TRUE(client.value()->submit(instance.value(), sleep_tasks(5)).ok());
  {
    std::unique_lock lock(mu);
    cv.wait_for(lock, std::chrono::seconds(5), [&] { return last_ready > 0; });
    EXPECT_GT(last_ready, 0u);
  }
  // Notification-driven pick-up: results are already there, zero timeout.
  auto results = client.value()->wait_results(instance.value(), 10, 0.0);
  ASSERT_TRUE(results.ok());
  EXPECT_FALSE(results.value().empty());
  listener.stop();
}

TEST_F(TcpStackTest, PollingModeExecutorNeedsNoPushChannel) {
  // Firewall-bypass mode (paper section 6): executor makes only outbound
  // RPC calls — it never subscribes on the notification port.
  ExecutorOptions options;
  options.poll_interval_s = 0.01;
  add_executor(options);
  auto client = TcpDispatcherClient::connect("127.0.0.1", server_->rpc_port());
  ASSERT_TRUE(client.ok());
  auto session = FalkonSession::open(*client.value(), ClientId{1});
  ASSERT_TRUE(session.ok());
  auto results = session.value()->run(sleep_tasks(30), 30.0);
  ASSERT_TRUE(results.ok()) << results.error().str();
  EXPECT_EQ(results.value().size(), 30u);
}

TEST_F(TcpStackTest, PollingModeIdleTimeoutStillReleases) {
  ExecutorOptions options;
  options.poll_interval_s = 0.01;
  options.idle_timeout_s = 0.06;
  add_executor(options);
  auto client = TcpDispatcherClient::connect("127.0.0.1", server_->rpc_port());
  ASSERT_TRUE(client.ok());
  for (int i = 0; i < 200; ++i) {
    auto status = client.value()->status();
    ASSERT_TRUE(status.ok());
    if (status.value().registered_executors == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  auto status = client.value()->status();
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status.value().registered_executors, 0u);
}

TEST_F(TcpStackTest, ServerStopSurvivesActiveExecutors) {
  add_executor();
  add_executor();
  // Tear-down order in TearDown() stops executors before the server; this
  // test instead stops the server first and expects no crash/hang.
  server_->stop();
  executors_.clear();
  SUCCEED();
}

// ---- wire-level bundle-path regressions ------------------------------
//
// These speak the protocol with a raw net::RpcClient instead of the
// harness, so they can act as misbehaving or down-level peers.

namespace {

/// Raw call that must produce a reply of type `Expected`.
template <class Expected>
Expected call_expect(net::RpcClient& rpc, const wire::Message& request) {
  auto reply = rpc.call(request);
  EXPECT_TRUE(reply.ok()) << reply.error().str();
  if (!reply.ok()) return Expected{};
  auto* payload = std::get_if<Expected>(&reply.value());
  EXPECT_NE(payload, nullptr)
      << "unexpected reply: " << wire::debug_summary(reply.value());
  if (payload == nullptr) return Expected{};
  return std::move(*payload);
}

}  // namespace

TEST(TcpBundleRegression, BundleSeqRetiredWhenExecutorCrashesMidBundle) {
  // An executor that takes a numbered TaskBundle and dies before echoing
  // the ack must not leak its bundle_seq: the failure detector's removal
  // path (ExecutorSink::on_removed -> release_executor) settles it, so
  // pending_bundles drains to zero and issued == retired.
  RealClock clock;
  obs::Obs obs{obs::ObsConfig{}};
  DispatcherConfig config;
  config.piggyback = true;
  config.heartbeat_timeout_s = 0.05;  // detector run manually below
  Dispatcher dispatcher(clock, config);
  TcpDispatcherServer server(dispatcher, &obs);
  ASSERT_TRUE(server.start().ok());

  auto raw = net::RpcClient::connect("127.0.0.1", server.rpc_port());
  ASSERT_TRUE(raw.ok());

  wire::RegisterRequest reg;
  reg.node_id = NodeId{1};
  reg.host = "crash-peer";
  const ExecutorId executor =
      call_expect<wire::RegisterReply>(raw.value(), reg).executor_id;
  ASSERT_NE(executor.value, 0u);

  const InstanceId instance =
      call_expect<wire::CreateInstanceReply>(
          raw.value(), wire::CreateInstanceRequest{ClientId{1}})
          .instance_id;
  wire::SubmitRequest submit;
  submit.instance_id = instance;
  submit.tasks = sleep_tasks(4);
  call_expect<wire::SubmitReply>(raw.value(), submit);

  // Pull a numbered bundle (empty delivery, want-tasks piggyback) and then
  // crash without ever acknowledging it.
  wire::ResultBundle pull;
  pull.executor_id = executor;
  pull.want_tasks = 4;
  const wire::TaskBundle bundle =
      call_expect<wire::TaskBundle>(raw.value(), pull);
  ASSERT_FALSE(bundle.tasks.empty());
  EXPECT_NE(bundle.bundle_seq, 0u);

  obs::Registry& reg_metrics = obs.registry();
  EXPECT_EQ(reg_metrics.gauge("falkon.net.rpc.pending_bundles").value(), 1.0);
  EXPECT_EQ(reg_metrics.counter("falkon.net.rpc.bundles_issued").value(), 1u);
  EXPECT_EQ(reg_metrics.counter("falkon.net.rpc.bundles_retired").value(), 0u);

  raw.value().close();  // crash: no ack, no deregister
  for (int i = 0; i < 200; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    dispatcher.check_liveness();
    if (dispatcher.status().registered_executors == 0) break;
  }
  EXPECT_EQ(dispatcher.status().registered_executors, 0u);

  // Removal settled the outstanding seq; its tasks are back in the queue.
  EXPECT_EQ(reg_metrics.gauge("falkon.net.rpc.pending_bundles").value(), 0.0);
  EXPECT_EQ(reg_metrics.counter("falkon.net.rpc.bundles_retired").value(),
            reg_metrics.counter("falkon.net.rpc.bundles_issued").value());
  EXPECT_EQ(dispatcher.status().queued, 4u);

  server.stop();
  dispatcher.shutdown();
}

TEST(TcpBundleRegression, AdaptiveSentinelsServeV0NonBundlingPeer) {
  // A down-level executor that never learned TaskBundle/ResultBundle can
  // still request adaptive sizing: max_tasks = kAdaptiveBundle on a legacy
  // GetWorkRequest and want_tasks = kAdaptiveWant on a legacy ResultRequest
  // must yield work, and the legacy exchange must never issue bundle_seqs.
  RealClock clock;
  obs::Obs obs{obs::ObsConfig{}};
  DispatcherConfig config;
  config.piggyback = true;
  Dispatcher dispatcher(clock, config);
  TcpDispatcherServer server(dispatcher, &obs);
  ASSERT_TRUE(server.start().ok());

  auto raw = net::RpcClient::connect("127.0.0.1", server.rpc_port());
  ASSERT_TRUE(raw.ok());

  wire::RegisterRequest reg;
  reg.node_id = NodeId{7};
  reg.host = "v0-peer";
  const ExecutorId executor =
      call_expect<wire::RegisterReply>(raw.value(), reg).executor_id;

  const InstanceId instance =
      call_expect<wire::CreateInstanceReply>(
          raw.value(), wire::CreateInstanceRequest{ClientId{1}})
          .instance_id;
  constexpr int kTasks = 12;
  wire::SubmitRequest submit;
  submit.instance_id = instance;
  submit.tasks = sleep_tasks(kTasks);
  call_expect<wire::SubmitReply>(raw.value(), submit);

  wire::GetWorkRequest get_work;
  get_work.executor_id = executor;
  get_work.max_tasks = wire::kAdaptiveBundle;  // sentinel, not literal zero
  std::vector<TaskSpec> pending =
      call_expect<wire::GetWorkReply>(raw.value(), get_work).tasks;
  ASSERT_FALSE(pending.empty());

  std::set<std::uint64_t> done;
  while (!pending.empty()) {
    wire::ResultRequest deliver;
    deliver.executor_id = executor;
    deliver.want_tasks = wire::kAdaptiveWant;
    for (const TaskSpec& spec : pending) {
      TaskResult result;
      result.task_id = spec.id;
      result.executor_id = executor;
      deliver.results.push_back(std::move(result));
      done.insert(spec.id.value);
    }
    const wire::ResultReply reply =
        call_expect<wire::ResultReply>(raw.value(), deliver);
    EXPECT_EQ(reply.acknowledged, deliver.results.size());
    pending = reply.piggyback_tasks;
    if (pending.empty() && done.size() < static_cast<std::size_t>(kTasks)) {
      // Adaptive piggyback may momentarily come back empty; pull again.
      pending = call_expect<wire::GetWorkReply>(raw.value(), get_work).tasks;
    }
  }
  EXPECT_EQ(done.size(), static_cast<std::size_t>(kTasks));
  EXPECT_EQ(dispatcher.status().completed, static_cast<std::uint64_t>(kTasks));

  // The v0 exchange carries no sequence numbers, so the bundle ledger must
  // stay untouched.
  obs::Registry& reg_metrics = obs.registry();
  EXPECT_EQ(reg_metrics.counter("falkon.net.rpc.bundles_issued").value(), 0u);
  EXPECT_EQ(reg_metrics.gauge("falkon.net.rpc.pending_bundles").value(), 0.0);

  wire::WaitResultsRequest wait;
  wait.instance_id = instance;
  wait.max_results = 64;
  wait.timeout_s = 5.0;
  const wire::WaitResultsReply results =
      call_expect<wire::WaitResultsReply>(raw.value(), wait);
  EXPECT_EQ(results.results.size(), static_cast<std::size_t>(kTasks));

  server.stop();
  dispatcher.shutdown();
}

// ---- push-mode result streaming ---------------------------------------

TEST_F(TcpStackTest, StreamingClientReceivesResultsExactlyOnce) {
  add_executor();
  auto client = TcpDispatcherClient::connect("127.0.0.1", server_->rpc_port(),
                                             server_->push_port());
  ASSERT_TRUE(client.ok());
  auto instance = client.value()->create_instance(ClientId{1});
  ASSERT_TRUE(instance.ok());
  // The third connect argument subscribed the instance on the push channel.
  EXPECT_TRUE(client.value()->streaming(instance.value()));

  ASSERT_TRUE(client.value()->submit(instance.value(), sleep_tasks(50)).ok());
  std::set<std::uint64_t> ids;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (ids.size() < 50 && std::chrono::steady_clock::now() < deadline) {
    auto batch = client.value()->wait_results(instance.value(), 64, 0.5);
    ASSERT_TRUE(batch.ok()) << batch.error().str();
    for (const auto& result : batch.value()) {
      EXPECT_TRUE(ids.insert(result.task_id.value).second)
          << "duplicate task " << result.task_id.value;
    }
  }
  EXPECT_EQ(ids.size(), 50u);
  EXPECT_TRUE(client.value()->streaming(instance.value()));
  EXPECT_TRUE(client.value()->destroy_instance(instance.value()).ok());
}

TEST_F(TcpStackTest, StreamingSessionRunCompletes) {
  for (int i = 0; i < 2; ++i) add_executor();
  auto client = TcpDispatcherClient::connect("127.0.0.1", server_->rpc_port(),
                                             server_->push_port());
  ASSERT_TRUE(client.ok());
  auto session = FalkonSession::open(*client.value(), ClientId{1});
  ASSERT_TRUE(session.ok());
  auto results = session.value()->run(sleep_tasks(200), 30.0);
  ASSERT_TRUE(results.ok()) << results.error().str();
  std::set<std::uint64_t> ids;
  for (const auto& result : results.value()) ids.insert(result.task_id.value);
  EXPECT_EQ(ids.size(), 200u);
}

TEST(TcpStreamingFault, DroppedPushFramesFallBackToPolling) {
  // Every frame leaving the push server silently vanishes (kDrop returns
  // ok to the dispatcher, so its cursor advances as if streaming worked).
  // Results must still arrive exactly once through the wait_results
  // firewall fallback: un-acked results never leave the mailbox.
  RealClock clock;
  fault::FaultPlan plan;
  plan.with(fault::Site::kPushFrame, fault::Action::kDrop, 1.0);
  fault::FaultInjector fault(plan);
  Dispatcher dispatcher(clock, DispatcherConfig{});
  TcpDispatcherServer server(dispatcher);
  ASSERT_TRUE(server.start(0, 0, &fault).ok());
  // Polling-mode executor: the lossy push channel must only starve the
  // client's stream, not the executor's work notifications.
  ExecutorOptions options;
  options.poll_interval_s = 0.01;
  TcpExecutorHarness harness(clock, "127.0.0.1", server.rpc_port(),
                             server.push_port(),
                             std::make_unique<NoopEngine>(), options);
  ASSERT_TRUE(harness.start().ok());

  auto client = TcpDispatcherClient::connect("127.0.0.1", server.rpc_port(),
                                             server.push_port());
  ASSERT_TRUE(client.ok());
  auto instance = client.value()->create_instance(ClientId{1});
  ASSERT_TRUE(instance.ok());
  ASSERT_TRUE(client.value()->submit(instance.value(), sleep_tasks(20)).ok());

  std::set<std::uint64_t> ids;
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (ids.size() < 20 && std::chrono::steady_clock::now() < deadline) {
    auto batch = client.value()->wait_results(instance.value(), 64, 0.2);
    ASSERT_TRUE(batch.ok()) << batch.error().str();
    for (const auto& result : batch.value()) {
      EXPECT_TRUE(ids.insert(result.task_id.value).second)
          << "duplicate task " << result.task_id.value;
    }
  }
  EXPECT_EQ(ids.size(), 20u);
  EXPECT_GT(fault.stats(fault::Site::kPushFrame).injected, 0u);

  harness.stop();
  server.stop();
  dispatcher.shutdown();
}

// ---- SO_REUSEPORT accept mode -----------------------------------------

TEST(TcpReuseport, FullStackServesFromKernelBalancedListeners) {
  RealClock clock;
  Dispatcher dispatcher(clock, DispatcherConfig{});
  TcpDispatcherServer server(dispatcher, nullptr, /*reactor_loops=*/2,
                             /*reuseport=*/true);
  ASSERT_TRUE(server.start().ok());
  ASSERT_GE(server.reactor().n_loops(), 2);

  std::vector<std::unique_ptr<TcpExecutorHarness>> pool;
  for (int e = 0; e < 4; ++e) {
    auto harness = std::make_unique<TcpExecutorHarness>(
        clock, "127.0.0.1", server.rpc_port(), server.push_port(),
        std::make_unique<NoopEngine>(), ExecutorOptions{});
    ASSERT_TRUE(harness->start().ok());
    pool.push_back(std::move(harness));
  }
  auto client = TcpDispatcherClient::connect("127.0.0.1", server.rpc_port(),
                                             server.push_port());
  ASSERT_TRUE(client.ok());
  auto session = FalkonSession::open(*client.value(), ClientId{1});
  ASSERT_TRUE(session.ok());
  auto results = session.value()->run(sleep_tasks(200), 30.0);
  ASSERT_TRUE(results.ok()) << results.error().str();
  std::set<std::uint64_t> ids;
  for (const auto& result : results.value()) ids.insert(result.task_id.value);
  EXPECT_EQ(ids.size(), 200u);

  pool.clear();
  server.stop();
  dispatcher.shutdown();
}

}  // namespace
}  // namespace falkon::core
