// End-to-end tests over real TCP on loopback: dispatcher server, remote
// executors (RPC pull + push notifications), and remote client.
#include <gtest/gtest.h>

#include <condition_variable>
#include <mutex>
#include <set>

#include "common/clock.h"
#include "core/client.h"
#include "core/service_tcp.h"

namespace falkon::core {
namespace {

std::vector<TaskSpec> sleep_tasks(int count) {
  std::vector<TaskSpec> tasks;
  for (int i = 1; i <= count; ++i) {
    tasks.push_back(make_sleep_task(TaskId{static_cast<std::uint64_t>(i)}, 0.0));
  }
  return tasks;
}

class TcpStackTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dispatcher_ = std::make_unique<Dispatcher>(clock_, DispatcherConfig{});
    server_ = std::make_unique<TcpDispatcherServer>(*dispatcher_);
    ASSERT_TRUE(server_->start().ok());
  }

  void TearDown() override {
    executors_.clear();
    server_->stop();
  }

  void add_executor(ExecutorOptions options = {}) {
    auto harness = std::make_unique<TcpExecutorHarness>(
        clock_, "127.0.0.1", server_->rpc_port(), server_->push_port(),
        std::make_unique<NoopEngine>(), options);
    ASSERT_TRUE(harness->start().ok());
    executors_.push_back(std::move(harness));
  }

  RealClock clock_;
  std::unique_ptr<Dispatcher> dispatcher_;
  std::unique_ptr<TcpDispatcherServer> server_;
  std::vector<std::unique_ptr<TcpExecutorHarness>> executors_;
};

TEST_F(TcpStackTest, RemoteClientRoundtrip) {
  add_executor();
  auto client = TcpDispatcherClient::connect("127.0.0.1", server_->rpc_port());
  ASSERT_TRUE(client.ok());

  auto session = FalkonSession::open(*client.value(), ClientId{1});
  ASSERT_TRUE(session.ok());
  auto results = session.value()->run(sleep_tasks(20), 30.0);
  ASSERT_TRUE(results.ok()) << results.error().str();
  EXPECT_EQ(results.value().size(), 20u);
  for (const auto& result : results.value()) EXPECT_TRUE(result.success());
}

TEST_F(TcpStackTest, MultipleRemoteExecutors) {
  for (int i = 0; i < 4; ++i) add_executor();
  auto client = TcpDispatcherClient::connect("127.0.0.1", server_->rpc_port());
  ASSERT_TRUE(client.ok());
  auto status = client.value()->status();
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status.value().registered_executors, 4u);

  auto session = FalkonSession::open(*client.value(), ClientId{1});
  ASSERT_TRUE(session.ok());
  auto results = session.value()->run(sleep_tasks(200), 30.0);
  ASSERT_TRUE(results.ok()) << results.error().str();
  std::set<std::uint64_t> ids;
  for (const auto& result : results.value()) ids.insert(result.task_id.value);
  EXPECT_EQ(ids.size(), 200u);
}

TEST_F(TcpStackTest, WorkSubmittedBeforeExecutorArrives) {
  auto client = TcpDispatcherClient::connect("127.0.0.1", server_->rpc_port());
  ASSERT_TRUE(client.ok());
  auto session = FalkonSession::open(*client.value(), ClientId{1});
  ASSERT_TRUE(session.ok());
  ASSERT_TRUE(session.value()->submit(sleep_tasks(10)).ok());

  // No executor yet: nothing completes.
  auto early = session.value()->wait(1, 0.1);
  EXPECT_FALSE(early.ok());

  add_executor();  // registration triggers notification pump
  auto results = session.value()->wait(10, 30.0);
  ASSERT_TRUE(results.ok()) << results.error().str();
  EXPECT_EQ(results.value().size(), 10u);
}

TEST_F(TcpStackTest, ExecutorIdleTimeoutDeregistersOverTcp) {
  ExecutorOptions options;
  options.idle_timeout_s = 0.05;
  add_executor(options);
  auto client = TcpDispatcherClient::connect("127.0.0.1", server_->rpc_port());
  ASSERT_TRUE(client.ok());
  for (int i = 0; i < 200; ++i) {
    auto status = client.value()->status();
    ASSERT_TRUE(status.ok());
    if (status.value().registered_executors == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  auto status = client.value()->status();
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status.value().registered_executors, 0u);
}

TEST_F(TcpStackTest, ErrorsPropagateToRemoteClient) {
  auto client = TcpDispatcherClient::connect("127.0.0.1", server_->rpc_port());
  ASSERT_TRUE(client.ok());
  auto bogus = client.value()->submit(InstanceId{999}, sleep_tasks(1));
  ASSERT_FALSE(bogus.ok());
  EXPECT_EQ(bogus.error().code, ErrorCode::kNotFound);
}

TEST_F(TcpStackTest, ClientNotificationsArriveOnResultDelivery) {
  add_executor();
  auto client = TcpDispatcherClient::connect("127.0.0.1", server_->rpc_port());
  ASSERT_TRUE(client.ok());
  auto instance = client.value()->create_instance(ClientId{1});
  ASSERT_TRUE(instance.ok());

  std::mutex mu;
  std::condition_variable cv;
  std::uint64_t last_ready = 0;
  TcpResultListener listener;
  ASSERT_TRUE(listener
                  .start("127.0.0.1", server_->push_port(), instance.value(),
                         [&](InstanceId, std::uint64_t ready) {
                           std::lock_guard lock(mu);
                           last_ready = std::max(last_ready, ready);
                           cv.notify_all();
                         })
                  .ok());
  // Let the subscription land before submitting.
  std::this_thread::sleep_for(std::chrono::milliseconds(30));

  ASSERT_TRUE(client.value()->submit(instance.value(), sleep_tasks(5)).ok());
  {
    std::unique_lock lock(mu);
    cv.wait_for(lock, std::chrono::seconds(5), [&] { return last_ready > 0; });
    EXPECT_GT(last_ready, 0u);
  }
  // Notification-driven pick-up: results are already there, zero timeout.
  auto results = client.value()->wait_results(instance.value(), 10, 0.0);
  ASSERT_TRUE(results.ok());
  EXPECT_FALSE(results.value().empty());
  listener.stop();
}

TEST_F(TcpStackTest, PollingModeExecutorNeedsNoPushChannel) {
  // Firewall-bypass mode (paper section 6): executor makes only outbound
  // RPC calls — it never subscribes on the notification port.
  ExecutorOptions options;
  options.poll_interval_s = 0.01;
  add_executor(options);
  auto client = TcpDispatcherClient::connect("127.0.0.1", server_->rpc_port());
  ASSERT_TRUE(client.ok());
  auto session = FalkonSession::open(*client.value(), ClientId{1});
  ASSERT_TRUE(session.ok());
  auto results = session.value()->run(sleep_tasks(30), 30.0);
  ASSERT_TRUE(results.ok()) << results.error().str();
  EXPECT_EQ(results.value().size(), 30u);
}

TEST_F(TcpStackTest, PollingModeIdleTimeoutStillReleases) {
  ExecutorOptions options;
  options.poll_interval_s = 0.01;
  options.idle_timeout_s = 0.06;
  add_executor(options);
  auto client = TcpDispatcherClient::connect("127.0.0.1", server_->rpc_port());
  ASSERT_TRUE(client.ok());
  for (int i = 0; i < 200; ++i) {
    auto status = client.value()->status();
    ASSERT_TRUE(status.ok());
    if (status.value().registered_executors == 0) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  auto status = client.value()->status();
  ASSERT_TRUE(status.ok());
  EXPECT_EQ(status.value().registered_executors, 0u);
}

TEST_F(TcpStackTest, ServerStopSurvivesActiveExecutors) {
  add_executor();
  add_executor();
  // Tear-down order in TearDown() stops executors before the server; this
  // test instead stops the server first and expects no crash/hang.
  server_->stop();
  executors_.clear();
  SUCCEED();
}

}  // namespace
}  // namespace falkon::core
