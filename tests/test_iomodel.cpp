// I/O model calibration tests (paper Figure 4 shapes) and data-cache tests.
#include <gtest/gtest.h>

#include "iomodel/data_cache.h"
#include "iomodel/io_model.h"

namespace falkon::iomodel {
namespace {

constexpr int kExecutors = 128;  // paper: 128 executors on 64 nodes

TaskSpec data_task(DataLocation location, IoMode mode, std::uint64_t bytes) {
  return falkon::make_data_task(TaskId{1}, 0.0, location, mode, bytes, bytes);
}

TEST(IoModel, TinyGpfsReadsAreFast) {
  IoModel model;
  const auto task = data_task(DataLocation::kSharedFs, IoMode::kRead, 1);
  // 1-byte GPFS reads must not throttle task throughput below the paper's
  // dispatch-limited ~487 tasks/s: per-task I/O time well under 1/487 * 128.
  EXPECT_LT(model.io_time_s(task, kExecutors), kExecutors / 487.0);
}

TEST(IoModel, GpfsWriteContentionCapsTaskRate) {
  IoModel model;
  const auto task = data_task(DataLocation::kSharedFs, IoMode::kReadWrite, 1);
  const double per_task = model.io_time_s(task, kExecutors);
  const double aggregate_rate = kExecutors / per_task;
  // Paper: ~150 tasks/s ceiling for GPFS read+write even at 1 byte.
  EXPECT_GT(aggregate_rate, 75.0);
  EXPECT_LT(aggregate_rate, 300.0);
}

TEST(IoModel, LargeTransferPlateausMatchPaper) {
  IoModel model;
  const std::uint64_t gig = 1ULL << 30;

  struct Case {
    DataLocation location;
    IoMode mode;
    double paper_mbps;
  };
  const Case cases[] = {
      {DataLocation::kSharedFs, IoMode::kReadWrite, 326.0},
      {DataLocation::kSharedFs, IoMode::kRead, 3067.0},
      {DataLocation::kLocalDisk, IoMode::kReadWrite, 32667.0},
      {DataLocation::kLocalDisk, IoMode::kRead, 52015.0},
  };
  for (const auto& c : cases) {
    const auto task = data_task(c.location, c.mode, gig);
    const double mbps = model.aggregate_mbps(task, kExecutors);
    EXPECT_GT(mbps, c.paper_mbps * 0.5)
        << "loc=" << static_cast<int>(c.location)
        << " mode=" << static_cast<int>(c.mode);
    EXPECT_LT(mbps, c.paper_mbps * 2.0)
        << "loc=" << static_cast<int>(c.location)
        << " mode=" << static_cast<int>(c.mode);
  }
}

/// Property: I/O time is monotonically non-decreasing in both data size and
/// concurrency, for every location/mode combination.
class IoMonotonicity
    : public ::testing::TestWithParam<std::tuple<DataLocation, IoMode>> {};

TEST_P(IoMonotonicity, TimeGrowsWithSizeAndConcurrency) {
  const auto [location, mode] = GetParam();
  IoModel model;
  double previous = 0.0;
  for (std::uint64_t bytes = 1; bytes <= (1ULL << 30); bytes *= 32) {
    const double t = model.io_time_s(data_task(location, mode, bytes), 64);
    EXPECT_GE(t, previous) << "bytes=" << bytes;
    previous = t;
  }
  for (int concurrency : {1, 2, 8, 32, 128}) {
    const double t1 = model.io_time_s(
        data_task(location, mode, 1 << 20), concurrency);
    const double t2 = model.io_time_s(
        data_task(location, mode, 1 << 20), concurrency * 2);
    EXPECT_LE(t1, t2 + 1e-12) << "concurrency=" << concurrency;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllShapes, IoMonotonicity,
    ::testing::Combine(::testing::Values(DataLocation::kSharedFs,
                                         DataLocation::kLocalDisk),
                       ::testing::Values(IoMode::kRead, IoMode::kReadWrite)));

TEST(IoModel, NoDataMeansNoIoTime) {
  IoModel model;
  TaskSpec task = falkon::make_sleep_task(TaskId{1}, 5.0);
  EXPECT_DOUBLE_EQ(model.io_time_s(task, 128), 0.0);
}

TEST(DataCache, HitMissAndLruEviction) {
  DataCache cache(100);
  cache.insert("a", 40);
  cache.insert("b", 40);
  EXPECT_TRUE(cache.access("a"));   // a is now MRU
  EXPECT_FALSE(cache.access("z"));  // miss
  cache.insert("c", 40);            // evicts b (LRU)
  EXPECT_TRUE(cache.contains("a"));
  EXPECT_FALSE(cache.contains("b"));
  EXPECT_TRUE(cache.contains("c"));
  EXPECT_EQ(cache.used_bytes(), 80u);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.misses(), 1u);
}

TEST(DataCache, OversizedObjectNotCached) {
  DataCache cache(10);
  cache.insert("huge", 11);
  EXPECT_FALSE(cache.contains("huge"));
  EXPECT_EQ(cache.used_bytes(), 0u);
}

TEST(DataCache, ReinsertUpdatesSize) {
  DataCache cache(100);
  cache.insert("a", 10);
  cache.insert("a", 60);
  EXPECT_EQ(cache.used_bytes(), 60u);
  EXPECT_EQ(cache.entries(), 1u);
}

TEST(DataCache, EraseAndClear) {
  DataCache cache(100);
  cache.insert("a", 10);
  cache.insert("b", 20);
  cache.erase("a");
  EXPECT_EQ(cache.used_bytes(), 20u);
  cache.clear();
  EXPECT_EQ(cache.entries(), 0u);
  EXPECT_EQ(cache.used_bytes(), 0u);
}

/// Property: used_bytes never exceeds capacity, whatever the insert stream.
TEST(DataCache, CapacityInvariantUnderRandomWorkload) {
  DataCache cache(1000);
  std::uint64_t state = 12345;
  for (int i = 0; i < 5000; ++i) {
    state = state * 6364136223846793005ULL + 1442695040888963407ULL;
    const auto object = "obj-" + std::to_string(state % 64);
    const auto size = (state >> 32) % 300;
    cache.insert(object, size);
    ASSERT_LE(cache.used_bytes(), 1000u);
  }
}

}  // namespace
}  // namespace falkon::iomodel
