// Dispatcher unit tests: the factory/instance client API, the hybrid
// push/pull executor protocol, piggy-backing, the replay policy, and
// exactly-once result delivery (paper sections 3.2-3.4).
#include <gtest/gtest.h>

#include <atomic>
#include <map>

#include "common/clock.h"
#include "core/dispatcher.h"

namespace falkon::core {
namespace {

/// Records notifications instead of waking a real executor.
struct RecordingSink final : ExecutorSink {
  std::atomic<int> notifications{0};
  std::atomic<std::uint64_t> last_key{0};
  void notify(ExecutorId, std::uint64_t resource_key) override {
    last_key.store(resource_key);
    notifications.fetch_add(1);
  }
};

std::vector<TaskSpec> sleep_tasks(std::uint64_t first_id, int count,
                                  double duration = 0.0) {
  std::vector<TaskSpec> tasks;
  for (int i = 0; i < count; ++i) {
    tasks.push_back(make_sleep_task(TaskId{first_id + static_cast<std::uint64_t>(i)},
                                    duration));
  }
  return tasks;
}

TaskResult success_for(const TaskSpec& spec) {
  TaskResult result;
  result.task_id = spec.id;
  result.exit_code = 0;
  result.state = TaskState::kCompleted;
  return result;
}

class DispatcherTest : public ::testing::Test {
 protected:
  DispatcherTest() : dispatcher_(clock_, DispatcherConfig{}) {}

  ExecutorId add_executor(std::shared_ptr<RecordingSink> sink = nullptr) {
    if (!sink) sink = std::make_shared<RecordingSink>();
    sinks_.push_back(sink);
    wire::RegisterRequest request;
    request.host = "test";
    auto id = dispatcher_.register_executor(request, sink);
    EXPECT_TRUE(id.ok());
    return id.value();
  }

  InstanceId make_instance() {
    auto instance = dispatcher_.create_instance(ClientId{1});
    EXPECT_TRUE(instance.ok());
    return instance.value();
  }

  ManualClock clock_;
  Dispatcher dispatcher_;
  std::vector<std::shared_ptr<RecordingSink>> sinks_;
};

TEST_F(DispatcherTest, FactoryInstanceLifecycle) {
  auto a = dispatcher_.create_instance(ClientId{1});
  auto b = dispatcher_.create_instance(ClientId{2});
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_NE(a.value(), b.value());
  EXPECT_TRUE(dispatcher_.destroy_instance(a.value()).ok());
  EXPECT_FALSE(dispatcher_.destroy_instance(a.value()).ok());  // double free
  auto submit = dispatcher_.submit(a.value(), sleep_tasks(1, 1));
  ASSERT_FALSE(submit.ok());
  EXPECT_EQ(submit.error().code, ErrorCode::kNotFound);
}

TEST_F(DispatcherTest, SubmitGetWorkDeliverRoundtrip) {
  const InstanceId instance = make_instance();
  const ExecutorId executor = add_executor();

  ASSERT_TRUE(dispatcher_.submit(instance, sleep_tasks(1, 3)).ok());
  EXPECT_EQ(dispatcher_.status().queued, 3u);

  auto work = dispatcher_.get_work(executor, 1);
  ASSERT_TRUE(work.ok());
  ASSERT_EQ(work.value().size(), 1u);
  EXPECT_EQ(work.value()[0].id, TaskId{1});
  EXPECT_EQ(dispatcher_.status().dispatched, 1u);
  EXPECT_EQ(dispatcher_.status().busy_executors, 1u);

  auto outcome = dispatcher_.deliver_results(
      executor, {success_for(work.value()[0])}, /*want_tasks=*/0);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().acknowledged, 1u);
  EXPECT_EQ(dispatcher_.status().completed, 1u);

  auto results = dispatcher_.wait_results(instance, 10, 0.01);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results.value().size(), 1u);
  EXPECT_EQ(results.value()[0].task_id, TaskId{1});
}

TEST_F(DispatcherTest, NotificationSentWhenWorkArrives) {
  auto sink = std::make_shared<RecordingSink>();
  add_executor(sink);
  const InstanceId instance = make_instance();
  ASSERT_TRUE(dispatcher_.submit(instance, sleep_tasks(1, 1)).ok());
  // The notification engine is asynchronous (thread pool).
  for (int i = 0; i < 200 && sink->notifications.load() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(sink->notifications.load(), 1);
}

TEST_F(DispatcherTest, PiggybackDeliversNextTaskWithAck) {
  const InstanceId instance = make_instance();
  const ExecutorId executor = add_executor();
  ASSERT_TRUE(dispatcher_.submit(instance, sleep_tasks(1, 2)).ok());

  auto work = dispatcher_.get_work(executor, 1);
  ASSERT_TRUE(work.ok());
  auto outcome = dispatcher_.deliver_results(
      executor, {success_for(work.value()[0])}, /*want_tasks=*/1);
  ASSERT_TRUE(outcome.ok());
  ASSERT_EQ(outcome.value().piggyback.size(), 1u);
  EXPECT_EQ(outcome.value().piggyback[0].id, TaskId{2});
  // Executor stays busy: the piggy-backed task is in flight.
  EXPECT_EQ(dispatcher_.status().busy_executors, 1u);
}

TEST_F(DispatcherTest, PiggybackDisabledByConfig) {
  DispatcherConfig config;
  config.piggyback = false;
  Dispatcher dispatcher(clock_, config);
  auto instance = dispatcher.create_instance(ClientId{1});
  wire::RegisterRequest reg;
  auto executor =
      dispatcher.register_executor(reg, std::make_shared<RecordingSink>());
  ASSERT_TRUE(instance.ok() && executor.ok());
  ASSERT_TRUE(dispatcher.submit(instance.value(), sleep_tasks(1, 2)).ok());
  auto work = dispatcher.get_work(executor.value(), 1);
  ASSERT_TRUE(work.ok());
  auto outcome = dispatcher.deliver_results(
      executor.value(), {success_for(work.value()[0])}, /*want_tasks=*/1);
  ASSERT_TRUE(outcome.ok());
  EXPECT_TRUE(outcome.value().piggyback.empty());
}

TEST_F(DispatcherTest, FailedTaskIsRetriedThenReported) {
  DispatcherConfig config;
  config.replay.max_retries = 2;
  Dispatcher dispatcher(clock_, config);
  auto instance = dispatcher.create_instance(ClientId{1});
  wire::RegisterRequest reg;
  auto executor =
      dispatcher.register_executor(reg, std::make_shared<RecordingSink>());
  ASSERT_TRUE(instance.ok() && executor.ok());
  ASSERT_TRUE(dispatcher.submit(instance.value(), sleep_tasks(7, 1)).ok());

  // Fail the task max_retries + 1 times.
  for (int attempt = 0; attempt < 3; ++attempt) {
    auto work = dispatcher.get_work(executor.value(), 1);
    ASSERT_TRUE(work.ok());
    ASSERT_EQ(work.value().size(), 1u) << "attempt " << attempt;
    TaskResult failure = success_for(work.value()[0]);
    failure.exit_code = 1;
    failure.state = TaskState::kFailed;
    ASSERT_TRUE(
        dispatcher.deliver_results(executor.value(), {failure}, 0).ok());
  }
  const auto status = dispatcher.status();
  EXPECT_EQ(status.retried, 2u);
  EXPECT_EQ(status.failed, 1u);
  EXPECT_EQ(status.queued, 0u);

  // The failure is reported to the client exactly once.
  auto results = dispatcher.wait_results(instance.value(), 10, 0.01);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results.value().size(), 1u);
  EXPECT_EQ(results.value()[0].state, TaskState::kFailed);
}

TEST_F(DispatcherTest, ReplayTimeoutRequeuesAndDropsLateDuplicate) {
  DispatcherConfig config;
  config.replay.response_timeout_s = 10.0;
  config.replay.max_retries = 3;
  Dispatcher dispatcher(clock_, config);
  auto instance = dispatcher.create_instance(ClientId{1});
  wire::RegisterRequest reg;
  auto slow = dispatcher.register_executor(reg, std::make_shared<RecordingSink>());
  auto fast = dispatcher.register_executor(reg, std::make_shared<RecordingSink>());
  ASSERT_TRUE(instance.ok() && slow.ok() && fast.ok());
  ASSERT_TRUE(dispatcher.submit(instance.value(), sleep_tasks(1, 1)).ok());

  auto work = dispatcher.get_work(slow.value(), 1);
  ASSERT_TRUE(work.ok());
  ASSERT_EQ(work.value().size(), 1u);

  EXPECT_EQ(dispatcher.check_replays(), 0);  // not yet overdue
  clock_.advance(11.0);
  EXPECT_EQ(dispatcher.check_replays(), 1);  // requeued
  EXPECT_EQ(dispatcher.status().queued, 1u);

  // The fast executor picks it up and completes it.
  auto retry = dispatcher.get_work(fast.value(), 1);
  ASSERT_TRUE(retry.ok());
  ASSERT_EQ(retry.value().size(), 1u);
  ASSERT_TRUE(dispatcher
                  .deliver_results(fast.value(), {success_for(retry.value()[0])}, 0)
                  .ok());

  // The slow executor's late duplicate is dropped.
  auto late = dispatcher.deliver_results(slow.value(),
                                         {success_for(work.value()[0])}, 0);
  ASSERT_TRUE(late.ok());
  EXPECT_EQ(late.value().acknowledged, 0u);
  EXPECT_EQ(dispatcher.status().completed, 1u);

  auto results = dispatcher.wait_results(instance.value(), 10, 0.01);
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results.value().size(), 1u);  // exactly once
}

TEST_F(DispatcherTest, DeregisterRequeuesInflightTasks) {
  const InstanceId instance = make_instance();
  const ExecutorId executor = add_executor();
  ASSERT_TRUE(dispatcher_.submit(instance, sleep_tasks(1, 1)).ok());
  auto work = dispatcher_.get_work(executor, 1);
  ASSERT_TRUE(work.ok());
  ASSERT_EQ(work.value().size(), 1u);
  ASSERT_TRUE(dispatcher_.deregister_executor(executor, "test").ok());
  EXPECT_EQ(dispatcher_.status().queued, 1u);
  EXPECT_EQ(dispatcher_.status().registered_executors, 0u);
}

TEST_F(DispatcherTest, RequestReleaseNotifiesIdleExecutorsOnly) {
  auto sink_idle = std::make_shared<RecordingSink>();
  auto sink_busy = std::make_shared<RecordingSink>();
  add_executor(sink_idle);
  const ExecutorId busy = add_executor(sink_busy);
  const InstanceId instance = make_instance();
  ASSERT_TRUE(dispatcher_.submit(instance, sleep_tasks(1, 1)).ok());
  ASSERT_TRUE(dispatcher_.get_work(busy, 1).ok());

  auto released = dispatcher_.request_release(5);
  ASSERT_EQ(released.size(), 1u);
  EXPECT_EQ(sink_idle->last_key.load(), kReleaseResourceKey);
  // A released executor is not offered further work.
  auto more = dispatcher_.request_release(5);
  EXPECT_TRUE(more.empty());
}

TEST_F(DispatcherTest, BundledSubmitKeepsFifoOrder) {
  const InstanceId instance = make_instance();
  const ExecutorId executor = add_executor();
  ASSERT_TRUE(dispatcher_.submit(instance, sleep_tasks(1, 100)).ok());
  DispatcherConfig config;
  for (std::uint64_t expected = 1; expected <= 100; ++expected) {
    auto work = dispatcher_.get_work(executor, 1);
    ASSERT_TRUE(work.ok());
    ASSERT_EQ(work.value().size(), 1u);
    EXPECT_EQ(work.value()[0].id, TaskId{expected});
    ASSERT_TRUE(dispatcher_
                    .deliver_results(executor, {success_for(work.value()[0])}, 0)
                    .ok());
  }
}

TEST_F(DispatcherTest, CompletionListenerSeesEveryResult) {
  std::atomic<int> seen{0};
  dispatcher_.set_completion_listener(
      [&](const TaskResult&, double) { seen.fetch_add(1); });
  const InstanceId instance = make_instance();
  const ExecutorId executor = add_executor();
  ASSERT_TRUE(dispatcher_.submit(instance, sleep_tasks(1, 5)).ok());
  for (int i = 0; i < 5; ++i) {
    auto work = dispatcher_.get_work(executor, 1);
    ASSERT_TRUE(work.ok());
    ASSERT_TRUE(dispatcher_
                    .deliver_results(executor, {success_for(work.value()[0])}, 0)
                    .ok());
  }
  EXPECT_EQ(seen.load(), 5);
}

TEST_F(DispatcherTest, QueueAndOverheadTimingsUseClock) {
  const InstanceId instance = make_instance();
  const ExecutorId executor = add_executor();
  ASSERT_TRUE(dispatcher_.submit(instance, sleep_tasks(1, 1)).ok());
  clock_.advance(5.0);  // task waits 5 s in the queue
  auto work = dispatcher_.get_work(executor, 1);
  ASSERT_TRUE(work.ok());
  clock_.advance(2.0);  // 2 s round trip on the executor
  TaskResult result = success_for(work.value()[0]);
  result.exec_time_s = 1.5;
  ASSERT_TRUE(dispatcher_.deliver_results(executor, {result}, 0).ok());

  auto results = dispatcher_.wait_results(instance, 1, 0.01);
  ASSERT_TRUE(results.ok());
  ASSERT_EQ(results.value().size(), 1u);
  EXPECT_DOUBLE_EQ(results.value()[0].queue_time_s, 5.0);
  EXPECT_DOUBLE_EQ(results.value()[0].overhead_s, 0.5);  // 2.0 - 1.5
}

TEST_F(DispatcherTest, DestroyInstanceDropsQueuedTasks) {
  const InstanceId instance = make_instance();
  ASSERT_TRUE(dispatcher_.submit(instance, sleep_tasks(1, 10)).ok());
  ASSERT_TRUE(dispatcher_.destroy_instance(instance).ok());
  EXPECT_EQ(dispatcher_.status().queued, 0u);
}

TEST_F(DispatcherTest, EstimateBalancedBundlingCapsRuntime) {
  DispatcherConfig config;
  config.max_tasks_per_dispatch = 10;
  config.max_bundle_runtime_s = 5.0;
  Dispatcher dispatcher(clock_, config);
  auto instance = dispatcher.create_instance(ClientId{1});
  wire::RegisterRequest reg;
  auto executor =
      dispatcher.register_executor(reg, std::make_shared<RecordingSink>());
  ASSERT_TRUE(instance.ok() && executor.ok());

  // Mixed durations: 2s, 2s, 2s, 9s, 1s ...
  std::vector<TaskSpec> tasks;
  for (double d : {2.0, 2.0, 2.0, 9.0, 1.0, 1.0}) {
    tasks.push_back(make_sleep_task(
        TaskId{static_cast<std::uint64_t>(tasks.size() + 1)}, d));
  }
  ASSERT_TRUE(dispatcher.submit(instance.value(), std::move(tasks)).ok());

  // First bundle: 2+2 = 4 <= 5, adding the third 2s task would hit 6 > 5.
  auto first = dispatcher.get_work(executor.value(), 10);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value().size(), 2u);

  // A single oversized task is still dispatched alone (progress guarantee).
  std::vector<TaskResult> results;
  for (const auto& spec : first.value()) results.push_back(success_for(spec));
  ASSERT_TRUE(dispatcher.deliver_results(executor.value(), results, 0).ok());
  auto second = dispatcher.get_work(executor.value(), 10);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().size(), 1u);  // the lone 2s task (2+9 > 5)
  results.clear();
  results.push_back(success_for(second.value()[0]));
  ASSERT_TRUE(dispatcher.deliver_results(executor.value(), results, 0).ok());
  auto third = dispatcher.get_work(executor.value(), 10);
  ASSERT_TRUE(third.ok());
  ASSERT_EQ(third.value().size(), 1u);
  EXPECT_DOUBLE_EQ(third.value()[0].estimated_runtime_s, 9.0);
}

/// Property sweep: N tasks through E executors with piggy-backing; every
/// task completes exactly once, in any interleaving.
class DispatcherExactlyOnce
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(DispatcherExactlyOnce, AllTasksCompleteExactlyOnce) {
  const auto [task_count, executor_count] = GetParam();
  ManualClock clock;
  Dispatcher dispatcher(clock, DispatcherConfig{});
  auto instance = dispatcher.create_instance(ClientId{1});
  ASSERT_TRUE(instance.ok());

  std::vector<ExecutorId> executors;
  for (int e = 0; e < executor_count; ++e) {
    wire::RegisterRequest reg;
    auto id = dispatcher.register_executor(reg, std::make_shared<RecordingSink>());
    ASSERT_TRUE(id.ok());
    executors.push_back(id.value());
  }
  ASSERT_TRUE(dispatcher.submit(instance.value(),
                                sleep_tasks(1, task_count)).ok());

  // Round-robin executors through get-work/deliver with piggy-backing.
  std::map<std::uint64_t, int> completions;
  int remaining = task_count;
  std::vector<std::vector<TaskSpec>> holding(executors.size());
  std::size_t turn = 0;
  int guard = task_count * 10 + 100;
  while (remaining > 0 && guard-- > 0) {
    const std::size_t e = turn++ % executors.size();
    if (holding[e].empty()) {
      auto work = dispatcher.get_work(executors[e], 1);
      ASSERT_TRUE(work.ok());
      holding[e] = work.take();
      if (holding[e].empty()) continue;
    }
    std::vector<TaskResult> results;
    for (auto& spec : holding[e]) {
      ++completions[spec.id.value];
      results.push_back(success_for(spec));
      --remaining;
    }
    holding[e].clear();
    auto ack = dispatcher.deliver_results(executors[e], std::move(results), 1);
    ASSERT_TRUE(ack.ok());
    holding[e] = std::move(ack.value().piggyback);
  }
  ASSERT_EQ(remaining, 0);
  EXPECT_EQ(completions.size(), static_cast<std::size_t>(task_count));
  for (const auto& [task, count] : completions) {
    EXPECT_EQ(count, 1) << "task " << task;
  }
  EXPECT_EQ(dispatcher.status().completed,
            static_cast<std::uint64_t>(task_count));
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, DispatcherExactlyOnce,
    ::testing::Combine(::testing::Values(1, 16, 128, 1000),
                       ::testing::Values(1, 4, 32)));

// ---- batched routing + push-mode result streaming ----

/// ClientSink double recording edge-triggered notifies {8} and pushed
/// ResultStream batches; `accept` false makes deliver() refuse the batch
/// (no subscriber on the push channel), which must drop the instance back
/// to polling.
struct RecordingClientSink final : ClientSink {
  std::mutex mu;
  std::condition_variable cv;
  int notifies{0};
  bool accept{true};
  std::vector<std::pair<std::uint64_t, std::size_t>> batches;  // seq, count
  std::size_t streamed{0};

  void notify(InstanceId, std::uint64_t) override {
    std::lock_guard lock(mu);
    ++notifies;
    cv.notify_all();
  }
  bool deliver(InstanceId, std::uint64_t seq,
               const std::vector<TaskResult>& results) override {
    std::lock_guard lock(mu);
    if (!accept) return false;
    batches.emplace_back(seq, results.size());
    streamed += results.size();
    cv.notify_all();
    return true;
  }
  bool wait_notifies(int n, double timeout_s = 5.0) {
    std::unique_lock lock(mu);
    return cv.wait_for(lock, std::chrono::duration<double>(timeout_s),
                       [&] { return notifies >= n; });
  }
  bool wait_streamed(std::size_t n, double timeout_s = 5.0) {
    std::unique_lock lock(mu);
    return cv.wait_for(lock, std::chrono::duration<double>(timeout_s),
                       [&] { return streamed >= n; });
  }
};

class DispatcherStreamingTest : public DispatcherTest {
 protected:
  DispatcherStreamingTest() : client_sink_(std::make_shared<RecordingClientSink>()) {
    dispatcher_.set_client_sink(client_sink_);
  }

  /// Pull `count` tasks and deliver their results as one bundle — the
  /// batched route_all path.
  void complete_tasks(ExecutorId executor, int count) {
    std::vector<TaskResult> results;
    for (int i = 0; i < count; ++i) {
      auto work = dispatcher_.get_work(executor, 1);
      ASSERT_TRUE(work.ok());
      ASSERT_EQ(work.value().size(), 1u);
      results.push_back(success_for(work.value()[0]));
    }
    ASSERT_TRUE(dispatcher_.deliver_results(executor, results, 0).ok());
  }

  std::shared_ptr<RecordingClientSink> client_sink_;
};

TEST_F(DispatcherStreamingTest, BundleRoutesAsOneNotify) {
  const InstanceId instance = make_instance();
  const ExecutorId executor = add_executor();
  ASSERT_TRUE(dispatcher_.submit(instance, sleep_tasks(1, 3)).ok());
  // Three results in one ResultBundle: one mailbox append, one
  // edge-triggered notify — not three.
  complete_tasks(executor, 3);
  ASSERT_TRUE(client_sink_->wait_notifies(1));
  auto results = dispatcher_.wait_results(instance, 10, 0.0);
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results.value().size(), 3u);
  {
    std::lock_guard lock(client_sink_->mu);
    EXPECT_EQ(client_sink_->notifies, 1);
  }
}

TEST_F(DispatcherStreamingTest, EdgeTriggeredNotifyRearmsAfterDrain) {
  const InstanceId instance = make_instance();
  const ExecutorId executor = add_executor();
  ASSERT_TRUE(dispatcher_.submit(instance, sleep_tasks(1, 3)).ok());

  complete_tasks(executor, 1);
  ASSERT_TRUE(client_sink_->wait_notifies(1));
  // A second landing on a non-empty mailbox is edge-suppressed.
  complete_tasks(executor, 1);
  auto results = dispatcher_.wait_results(instance, 10, 1.0);
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results.value().size(), 2u);
  {
    std::lock_guard lock(client_sink_->mu);
    EXPECT_EQ(client_sink_->notifies, 1);
  }
  // The lost-wakeup regression: a result landing right after the drain
  // (mailbox just went empty) must re-fire the notify, or a remote client
  // parks on its listener forever.
  complete_tasks(executor, 1);
  ASSERT_TRUE(client_sink_->wait_notifies(2));
  results = dispatcher_.wait_results(instance, 10, 1.0);
  ASSERT_TRUE(results.ok());
  EXPECT_EQ(results.value().size(), 1u);
}

TEST_F(DispatcherStreamingTest, SubscribeStreamsAcksAndRearms) {
  const InstanceId instance = make_instance();
  const ExecutorId executor = add_executor();
  auto cursor = dispatcher_.subscribe_results(instance, 0);
  ASSERT_TRUE(cursor.ok());
  EXPECT_EQ(cursor.value(), 0u);

  ASSERT_TRUE(dispatcher_.submit(instance, sleep_tasks(1, 3)).ok());
  complete_tasks(executor, 3);
  ASSERT_TRUE(client_sink_->wait_streamed(3));
  {
    std::lock_guard lock(client_sink_->mu);
    // Cumulative seq: the last batch's seq equals the total streamed.
    EXPECT_EQ(client_sink_->batches.back().first, client_sink_->streamed);
    EXPECT_EQ(client_sink_->notifies, 0);  // streaming replaces notify
  }

  // Un-acked results stay in the mailbox; the cumulative ack drops them.
  cursor = dispatcher_.subscribe_results(instance, 3);
  ASSERT_TRUE(cursor.ok());
  EXPECT_EQ(cursor.value(), 3u);
  auto polled = dispatcher_.wait_results(instance, 10, 0.0);
  ASSERT_TRUE(polled.ok());
  EXPECT_TRUE(polled.value().empty());

  // The drain stays armed: the next completion streams without any new
  // subscribe call.
  ASSERT_TRUE(dispatcher_.submit(instance, sleep_tasks(10, 1)).ok());
  complete_tasks(executor, 1);
  ASSERT_TRUE(client_sink_->wait_streamed(4));
}

TEST_F(DispatcherStreamingTest, RejectedPushFallsBackToPolling) {
  const InstanceId instance = make_instance();
  const ExecutorId executor = add_executor();
  {
    std::lock_guard lock(client_sink_->mu);
    client_sink_->accept = false;
  }
  ASSERT_TRUE(dispatcher_.subscribe_results(instance, 0).ok());
  ASSERT_TRUE(dispatcher_.submit(instance, sleep_tasks(1, 2)).ok());
  complete_tasks(executor, 2);
  // deliver() refused the batch: the cursor rolled back and every result
  // is still poll-able — nothing lost, nothing duplicated.
  auto polled = dispatcher_.wait_results(instance, 10, 5.0);
  ASSERT_TRUE(polled.ok());
  EXPECT_EQ(polled.value().size(), 2u);
  polled = dispatcher_.wait_results(instance, 10, 0.0);
  ASSERT_TRUE(polled.ok());
  EXPECT_TRUE(polled.value().empty());
}

TEST_F(DispatcherStreamingTest, PollOnStreamingInstanceStaysExactlyOnce) {
  const InstanceId instance = make_instance();
  const ExecutorId executor = add_executor();
  ASSERT_TRUE(dispatcher_.subscribe_results(instance, 0).ok());
  ASSERT_TRUE(dispatcher_.submit(instance, sleep_tasks(1, 2)).ok());
  complete_tasks(executor, 2);
  ASSERT_TRUE(client_sink_->wait_streamed(2));

  // Streamed but un-acked: the firewall-mode poll takes over and returns
  // the same two results (the client's task-id filter absorbs the overlap).
  auto polled = dispatcher_.wait_results(instance, 10, 0.0);
  ASSERT_TRUE(polled.ok());
  EXPECT_EQ(polled.value().size(), 2u);
  // A stale ack from before the poll must not discard anything.
  auto cursor = dispatcher_.subscribe_results(instance, 2);
  ASSERT_TRUE(cursor.ok());
  polled = dispatcher_.wait_results(instance, 10, 0.0);
  ASSERT_TRUE(polled.ok());
  EXPECT_TRUE(polled.value().empty());

  // Still streaming: the next completion is pushed again.
  ASSERT_TRUE(dispatcher_.submit(instance, sleep_tasks(10, 1)).ok());
  complete_tasks(executor, 1);
  ASSERT_TRUE(client_sink_->wait_streamed(3));
}

}  // namespace
}  // namespace falkon::core
