// Unit tests for the common substrate: ids, Result, clocks, queues, thread
// pool, statistics, RNG, config, strings.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "common/clock.h"
#include "common/config.h"
#include "common/ids.h"
#include "common/queue.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/strings.h"
#include "common/task.h"
#include "common/thread_pool.h"

namespace falkon {
namespace {

TEST(Ids, DefaultIsInvalidAndGeneratorIsMonotonic) {
  TaskId none;
  EXPECT_FALSE(none.valid());
  IdGenerator<TaskId> gen;
  TaskId a = gen.next();
  TaskId b = gen.next();
  EXPECT_TRUE(a.valid());
  EXPECT_LT(a, b);
  EXPECT_NE(a, b);
}

TEST(Ids, HashableInUnorderedContainers) {
  std::unordered_map<TaskId, int> map;
  map[TaskId{7}] = 1;
  map[TaskId{8}] = 2;
  EXPECT_EQ(map.at(TaskId{7}), 1);
  EXPECT_EQ(map.size(), 2u);
}

TEST(Result, ValueAndErrorPaths) {
  Result<int> good(42);
  ASSERT_TRUE(good.ok());
  EXPECT_EQ(good.value(), 42);

  Result<int> bad(make_error(ErrorCode::kTimeout, "too slow"));
  ASSERT_FALSE(bad.ok());
  EXPECT_EQ(bad.error().code, ErrorCode::kTimeout);
  EXPECT_NE(bad.error().str().find("TIMEOUT"), std::string::npos);

  Status ok = ok_status();
  EXPECT_TRUE(ok.ok());
}

TEST(Clock, ManualClockAdvancesAndWakesSleepers) {
  ManualClock clock(100.0);
  EXPECT_DOUBLE_EQ(clock.now_s(), 100.0);

  std::atomic<bool> woke{false};
  std::thread sleeper([&] {
    clock.sleep_s(5.0);
    woke.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(woke.load());
  clock.advance(5.0);
  sleeper.join();
  EXPECT_TRUE(woke.load());
  EXPECT_DOUBLE_EQ(clock.now_s(), 105.0);
}

TEST(Clock, ScaledClockCompressesTime) {
  ScaledClock clock(100.0);
  EXPECT_DOUBLE_EQ(clock.rate(), 100.0);
  const double t0 = clock.now_s();
  clock.sleep_s(1.0);  // 10 ms real
  const double elapsed = clock.now_s() - t0;
  EXPECT_GE(elapsed, 0.9);
  EXPECT_LT(elapsed, 20.0);  // generous for CI jitter
}

TEST(BlockingQueue, FifoOrderAndBatchPop) {
  BlockingQueue<int> queue;
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(queue.push(i).ok());
  EXPECT_EQ(queue.size(), 10u);
  auto batch = queue.pop_batch(4);
  ASSERT_EQ(batch.size(), 4u);
  EXPECT_EQ(batch.front(), 0);
  EXPECT_EQ(batch.back(), 3);
  auto one = queue.pop();
  ASSERT_TRUE(one.ok());
  EXPECT_EQ(one.value(), 4);
}

TEST(BlockingQueue, CloseDrainsThenFails) {
  BlockingQueue<int> queue;
  ASSERT_TRUE(queue.push(1).ok());
  queue.close();
  EXPECT_FALSE(queue.push(2).ok());
  auto drained = queue.pop();
  ASSERT_TRUE(drained.ok());
  EXPECT_EQ(drained.value(), 1);
  auto after = queue.pop();
  ASSERT_FALSE(after.ok());
  EXPECT_EQ(after.error().code, ErrorCode::kClosed);
}

TEST(BlockingQueue, PopForTimesOut) {
  BlockingQueue<int> queue;
  auto result = queue.pop_for(0.02);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.error().code, ErrorCode::kTimeout);
}

TEST(ThreadPool, RunsAllJobsAcrossThreads) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(pool.submit([&] { counter.fetch_add(1); }).ok());
  }
  pool.shutdown();
  EXPECT_EQ(counter.load(), 100);
  EXPECT_FALSE(pool.submit([] {}).ok());
}

TEST(Stats, AccumulatorMoments) {
  Accumulator acc;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) acc.add(x);
  EXPECT_EQ(acc.count(), 8u);
  EXPECT_DOUBLE_EQ(acc.mean(), 5.0);
  EXPECT_DOUBLE_EQ(acc.min(), 2.0);
  EXPECT_DOUBLE_EQ(acc.max(), 9.0);
  EXPECT_NEAR(acc.stddev(), 2.138, 1e-3);  // sample stddev
}

TEST(Stats, HistogramQuantiles) {
  Histogram hist(0.0, 100.0, 100);
  for (int i = 0; i < 1000; ++i) hist.add(static_cast<double>(i % 100));
  EXPECT_NEAR(hist.quantile(0.5), 50.0, 2.0);
  EXPECT_NEAR(hist.quantile(0.95), 95.0, 2.0);
  EXPECT_EQ(hist.moments().count(), 1000u);
}

TEST(Stats, HistogramUnderflowOverflowBins) {
  Histogram hist(0.0, 10.0, 10);
  hist.add(-5.0);   // below lo -> underflow, not bin 0
  hist.add(-0.01);  // just below lo
  hist.add(0.0);    // lo is inclusive
  hist.add(9.99);   // just below hi
  hist.add(10.0);   // hi is exclusive -> overflow
  hist.add(42.0);   // far above hi

  EXPECT_EQ(hist.underflow(), 2u);
  EXPECT_EQ(hist.overflow(), 2u);
  EXPECT_EQ(hist.bin_count(0), 1u);
  EXPECT_EQ(hist.bin_count(9), 1u);
  // Edge bins must not absorb out-of-range mass.
  std::size_t in_range = 0;
  for (std::size_t i = 0; i < hist.bins(); ++i) in_range += hist.bin_count(i);
  EXPECT_EQ(in_range, 2u);
  // Moments still see every sample.
  EXPECT_EQ(hist.moments().count(), 6u);
  EXPECT_DOUBLE_EQ(hist.moments().min(), -5.0);
  EXPECT_DOUBLE_EQ(hist.moments().max(), 42.0);
  // Quantiles resolve out-of-range mass to the range bounds.
  EXPECT_DOUBLE_EQ(hist.quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(hist.quantile(1.0), 10.0);
  // The ascii rendering surfaces the out-of-range mass.
  const std::string art = hist.ascii();
  EXPECT_NE(art.find("(underflow)"), std::string::npos);
  EXPECT_NE(art.find("(overflow)"), std::string::npos);
}

TEST(Stats, HistogramAllSamplesOutOfRange) {
  Histogram hist(0.0, 1.0, 4);
  hist.add(-1.0);
  hist.add(2.0);
  EXPECT_EQ(hist.underflow(), 1u);
  EXPECT_EQ(hist.overflow(), 1u);
  for (std::size_t i = 0; i < hist.bins(); ++i) EXPECT_EQ(hist.bin_count(i), 0u);
  EXPECT_EQ(hist.moments().count(), 2u);
  const std::string art = hist.ascii();
  EXPECT_NE(art.find("(underflow)"), std::string::npos);
  EXPECT_NE(art.find("(overflow)"), std::string::npos);
}

TEST(Stats, MovingAverageWindow) {
  MovingAverage ma(3);
  ma.add(3.0);
  EXPECT_DOUBLE_EQ(ma.value(), 3.0);
  ma.add(6.0);
  ma.add(9.0);
  EXPECT_DOUBLE_EQ(ma.value(), 6.0);
  ma.add(12.0);  // 3 drops out
  EXPECT_DOUBLE_EQ(ma.value(), 9.0);
}

TEST(Stats, TimeSeriesSampleAndIntegrate) {
  TimeSeries series;
  series.add(0.0, 1.0);
  series.add(10.0, 3.0);
  series.add(20.0, 0.0);
  EXPECT_DOUBLE_EQ(series.sample(5.0), 1.0);
  EXPECT_DOUBLE_EQ(series.sample(10.0), 3.0);
  EXPECT_DOUBLE_EQ(series.sample(-1.0, -7.0), -7.0);
  // integral: 1*10 + 3*10 + 0*10 = 40 over [0,30)
  EXPECT_DOUBLE_EQ(series.integrate(0.0, 30.0), 40.0);
}

TEST(Stats, ThroughputSamplerMovingAverage) {
  ThroughputSampler sampler(1.0);
  for (int t = 0; t < 10; ++t) {
    for (int k = 0; k < 5; ++k) sampler.record(t + 0.1 * k);
  }
  ASSERT_EQ(sampler.samples().size(), 10u);
  EXPECT_EQ(sampler.samples()[0], 5u);
  auto ma = sampler.moving_average(60);
  EXPECT_NEAR(ma.back(), 5.0, 1e-9);
}

TEST(Rng, DeterministicUnderSeed) {
  Rng a(42);
  Rng b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, UniformBoundsAndExponentialMean) {
  Rng rng(7);
  Accumulator acc;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform(2.0, 4.0);
    ASSERT_GE(u, 2.0);
    ASSERT_LT(u, 4.0);
    acc.add(rng.exponential(5.0));
  }
  EXPECT_NEAR(acc.mean(), 5.0, 0.2);
}

TEST(Config, ParseTypedValuesAndComments) {
  auto config = Config::parse(
      "# falkon config\n"
      "executors = 64\n"
      "idle_timeout_s = 15.5\n"
      "piggyback = true\n"
      "name = falkon-15 # trailing comment\n");
  ASSERT_TRUE(config.ok());
  EXPECT_EQ(config.value().get_int("executors", 0), 64);
  EXPECT_DOUBLE_EQ(config.value().get_double("idle_timeout_s", 0), 15.5);
  EXPECT_TRUE(config.value().get_bool("piggyback", false));
  EXPECT_EQ(config.value().get_string("name"), "falkon-15");
  EXPECT_EQ(config.value().get_int("missing", -3), -3);
}

TEST(Config, RejectsMalformedLines) {
  auto config = Config::parse("this is not a key value pair\n");
  ASSERT_FALSE(config.ok());
  EXPECT_EQ(config.error().code, ErrorCode::kInvalidArgument);
}

TEST(Strings, SplitTrimFormat) {
  auto parts = split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(trim("  hello \t"), "hello");
  EXPECT_EQ(strf("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(human_bytes(1ULL << 20), "1 MB");
  EXPECT_EQ(human_duration(7200.0), "2.00 h");
}

TEST(Task, SleepTaskBuilder) {
  auto task = make_sleep_task(TaskId{1}, 2.5);
  EXPECT_EQ(task.executable, "sleep");
  ASSERT_EQ(task.args.size(), 1u);
  EXPECT_DOUBLE_EQ(task.estimated_runtime_s, 2.5);
}

TEST(Task, StateNames) {
  EXPECT_STREQ(task_state_name(TaskState::kQueued), "QUEUED");
  EXPECT_STREQ(task_state_name(TaskState::kCompleted), "COMPLETED");
}

}  // namespace
}  // namespace falkon
