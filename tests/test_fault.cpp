// falkon::fault unit tests: deterministic per-site sampling, scripted
// events, stats, obs integration, and the retry backoff schedule.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "fault/backoff.h"
#include "fault/fault.h"
#include "obs/obs.h"

namespace falkon::fault {
namespace {

TEST(FaultInjector, NullPlanNeverInjects) {
  FaultInjector injector{FaultPlan{}};
  for (int i = 0; i < 1000; ++i) {
    EXPECT_FALSE(injector.sample(Site::kRpcRequest));
  }
  EXPECT_EQ(injector.total_injected(), 0u);
  EXPECT_EQ(injector.stats(Site::kRpcRequest).ops, 1000u);
}

TEST(FaultInjector, SameSeedSameDecisionSequence) {
  FaultPlan plan;
  plan.seed = 42;
  plan.with(Site::kExecutorTask, Action::kCrash, 0.3);
  plan.with(Site::kExecutorTask, Action::kSlow, 0.2, 1.5);

  FaultInjector a{plan};
  FaultInjector b{plan};
  for (int i = 0; i < 2000; ++i) {
    const Outcome oa = a.sample(Site::kExecutorTask);
    const Outcome ob = b.sample(Site::kExecutorTask);
    EXPECT_EQ(oa.action, ob.action);
    EXPECT_DOUBLE_EQ(oa.param, ob.param);
  }
  EXPECT_EQ(a.total_injected(), b.total_injected());
  EXPECT_GT(a.total_injected(), 0u);
}

TEST(FaultInjector, SitesHaveIndependentStreams) {
  FaultPlan plan;
  plan.seed = 7;
  plan.with(Site::kRpcReply, Action::kDrop, 0.5);
  plan.with(Site::kPushFrame, Action::kDrop, 0.5);

  // Interleaving order must not change each site's decision sequence:
  // sample site A 100 times with B interleaved, then compare against a
  // fresh injector sampling A alone.
  FaultInjector interleaved{plan};
  std::vector<Action> with_noise;
  for (int i = 0; i < 100; ++i) {
    with_noise.push_back(interleaved.sample(Site::kRpcReply).action);
    (void)interleaved.sample(Site::kPushFrame);
    (void)interleaved.sample(Site::kPushFrame);
  }
  FaultInjector alone{plan};
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(alone.sample(Site::kRpcReply).action, with_noise[i]);
  }
}

TEST(FaultInjector, ScriptedEventFiresAtExactOp) {
  FaultPlan plan;
  plan.at(Site::kDispatcherAck, Action::kDrop, 3);
  plan.at(Site::kDispatcherAck, Action::kDrop, 7);

  FaultInjector injector{plan};
  for (int op = 1; op <= 10; ++op) {
    const Outcome outcome = injector.sample(Site::kDispatcherAck);
    if (op == 3 || op == 7) {
      EXPECT_EQ(outcome.action, Action::kDrop) << "op " << op;
    } else {
      EXPECT_EQ(outcome.action, Action::kNone) << "op " << op;
    }
  }
  EXPECT_EQ(injector.stats(Site::kDispatcherAck).injected, 2u);
}

TEST(FaultInjector, ProbabilityRulesRoughlyMatchFrequency) {
  FaultPlan plan;
  plan.seed = 99;
  plan.with(Site::kRpcConnect, Action::kDrop, 0.25);
  FaultInjector injector{plan};
  int dropped = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (injector.sample(Site::kRpcConnect).action == Action::kDrop) ++dropped;
  }
  const double rate = static_cast<double>(dropped) / n;
  EXPECT_NEAR(rate, 0.25, 0.02);
  EXPECT_EQ(injector.stats(Site::kRpcConnect).injected,
            static_cast<std::uint64_t>(dropped));
}

TEST(FaultInjector, ThreadSafeUnderConcurrentSampling) {
  FaultPlan plan;
  plan.seed = 5;
  plan.with(Site::kRpcRequest, Action::kDrop, 0.1);
  FaultInjector injector{plan};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&injector] {
      for (int i = 0; i < 5000; ++i) (void)injector.sample(Site::kRpcRequest);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(injector.stats(Site::kRpcRequest).ops, 20000u);
}

TEST(FaultInjector, RegistersObsCounters) {
  obs::ObsConfig obs_config;
  obs::Obs obs{obs_config};
  FaultPlan plan;
  plan.at(Site::kExecutorTask, Action::kCrash, 1);
  FaultInjector injector{plan, &obs};
  (void)injector.sample(Site::kExecutorTask);
  (void)injector.sample(Site::kExecutorTask);
  EXPECT_EQ(
      obs.registry().counter("falkon.fault.injected.executor_task").value(),
      1u);
}

TEST(Backoff, GrowsGeometricallyAndCaps) {
  BackoffConfig config;
  config.base_s = 0.1;
  config.max_s = 1.0;
  config.multiplier = 2.0;
  config.jitter = 0.0;
  Backoff backoff{config, 1};
  EXPECT_DOUBLE_EQ(backoff.next_s(), 0.1);
  EXPECT_DOUBLE_EQ(backoff.next_s(), 0.2);
  EXPECT_DOUBLE_EQ(backoff.next_s(), 0.4);
  EXPECT_DOUBLE_EQ(backoff.next_s(), 0.8);
  EXPECT_DOUBLE_EQ(backoff.next_s(), 1.0);  // capped
  EXPECT_DOUBLE_EQ(backoff.next_s(), 1.0);
  EXPECT_EQ(backoff.attempt(), 6);
}

TEST(Backoff, ResetRestartsSchedule) {
  BackoffConfig config;
  config.base_s = 0.05;
  config.jitter = 0.0;
  Backoff backoff{config, 1};
  (void)backoff.next_s();
  (void)backoff.next_s();
  backoff.reset();
  EXPECT_EQ(backoff.attempt(), 0);
  EXPECT_DOUBLE_EQ(backoff.next_s(), 0.05);
}

TEST(Backoff, JitterStaysWithinBoundsAndIsDeterministic) {
  BackoffConfig config;
  config.base_s = 0.1;
  config.max_s = 10.0;
  config.multiplier = 2.0;
  config.jitter = 0.25;
  Backoff a{config, 77};
  Backoff b{config, 77};
  double expected_base = 0.1;
  for (int i = 0; i < 8; ++i) {
    const double da = a.next_s();
    const double db = b.next_s();
    EXPECT_DOUBLE_EQ(da, db);  // same seed, same jitter
    EXPECT_GE(da, expected_base * 0.75 - 1e-12);
    EXPECT_LE(da, expected_base * 1.25 + 1e-12);
    expected_base = std::min(expected_base * 2.0, 10.0);
  }
}

TEST(FaultNames, CoverAllSitesAndActions) {
  for (std::size_t i = 0; i < kSiteCount; ++i) {
    EXPECT_STRNE(site_name(static_cast<Site>(i)), "unknown");
  }
  EXPECT_STRNE(action_name(Action::kPreempt), "unknown");
}

}  // namespace
}  // namespace falkon::fault
