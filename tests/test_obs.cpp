// Tests for falkon::obs: metrics registry under concurrency, tracer ring
// semantics, and the exporters — including a golden-style check that a
// traced simulation run produces well-formed Chrome trace JSON covering
// all seven lifecycle stages for every task.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <map>
#include <stdexcept>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "obs/export.h"
#include "obs/metrics.h"
#include "obs/obs.h"
#include "obs/trace.h"
#include "sim/sim_falkon.h"

namespace falkon {
namespace {

using obs::Stage;

// ---------------------------------------------------------------------------
// Minimal JSON parser — enough to validate exporter output without pulling a
// dependency. Parses into a tagged tree; throws std::runtime_error on any
// syntax error, which the tests surface as a failure.

struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject } kind =
      Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string text;
  std::vector<JsonValue> items;                  // kArray
  std::map<std::string, JsonValue> fields;       // kObject

  [[nodiscard]] const JsonValue& at(const std::string& key) const {
    auto it = fields.find(key);
    if (it == fields.end()) throw std::runtime_error("missing key: " + key);
    return it->second;
  }
  [[nodiscard]] bool has(const std::string& key) const {
    return fields.count(key) != 0;
  }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : text_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != text_.size()) throw std::runtime_error("trailing junk");
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= text_.size()) throw std::runtime_error("unexpected end");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) {
      throw std::runtime_error(std::string("expected '") + c + "' at " +
                               std::to_string(pos_));
    }
    ++pos_;
  }

  JsonValue value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.text = string();
        return v;
      }
      case 't': literal("true"); return make_bool(true);
      case 'f': literal("false"); return make_bool(false);
      case 'n': literal("null"); return JsonValue{};
      default: return number();
    }
  }

  static JsonValue make_bool(bool b) {
    JsonValue v;
    v.kind = JsonValue::Kind::kBool;
    v.boolean = b;
    return v;
  }

  void literal(const char* word) {
    for (const char* p = word; *p; ++p) expect(*p);
  }

  JsonValue object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    for (;;) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      v.fields[key] = value();
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    for (;;) {
      v.items.push_back(value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string string() {
    expect('"');
    std::string out;
    for (;;) {
      if (pos_ >= text_.size()) throw std::runtime_error("unterminated string");
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) throw std::runtime_error("bad escape");
        char e = text_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'u': {
            if (pos_ + 4 > text_.size()) throw std::runtime_error("bad \\u");
            out += '?';  // tests never inspect non-ASCII content
            pos_ += 4;
            break;
          }
          default: throw std::runtime_error("bad escape char");
        }
      } else {
        out += c;
      }
    }
  }

  JsonValue number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) throw std::runtime_error("bad number");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = std::stod(text_.substr(start, pos_ - start));
    return v;
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

// ---------------------------------------------------------------------------
// Metrics

TEST(ObsMetrics, SeriesNameFoldsSortedLabels) {
  EXPECT_EQ(obs::series_name("falkon.tasks", {}), "falkon.tasks");
  EXPECT_EQ(obs::series_name("falkon.tasks", {{"stage", "exec"}}),
            "falkon.tasks{stage=exec}");
  // Labels are sorted, so registration order does not split a series.
  EXPECT_EQ(obs::series_name("m", {{"b", "2"}, {"a", "1"}}),
            obs::series_name("m", {{"a", "1"}, {"b", "2"}}));
}

TEST(ObsMetrics, RegistryReturnsStableHandles) {
  obs::Registry registry;
  obs::Counter& a = registry.counter("falkon.test.c");
  obs::Counter& b = registry.counter("falkon.test.c");
  EXPECT_EQ(&a, &b);
  obs::Counter& labeled = registry.counter("falkon.test.c", {{"k", "v"}});
  EXPECT_NE(&a, &labeled);
  obs::Histogram& h1 = registry.histogram("falkon.test.h", 1e-6, 1e3);
  obs::Histogram& h2 = registry.histogram("falkon.test.h", 1e-3, 1e2);
  EXPECT_EQ(&h1, &h2);  // first registration's range wins
  EXPECT_DOUBLE_EQ(h2.range_min(), 1e-6);
}

TEST(ObsMetrics, ConcurrentCounterIncrementsAreExact) {
  obs::Registry registry;
  obs::Counter& counter = registry.counter("falkon.test.concurrent");
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&counter] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) counter.inc();
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(counter.value(), kThreads * kPerThread);
}

TEST(ObsMetrics, ConcurrentGaugeAddIsExact) {
  obs::Gauge gauge;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&gauge] {
      for (int i = 0; i < kPerThread; ++i) gauge.add(1.0);
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_DOUBLE_EQ(gauge.value(), kThreads * kPerThread);
}

TEST(ObsMetrics, ConcurrentHistogramRecordsKeepExactCount) {
  obs::Histogram hist(1e-6, 1e3);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&hist, t] {
      for (int i = 0; i < kPerThread; ++i) {
        hist.record(1e-4 * static_cast<double>(1 + ((t + i) % 100)));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(hist.count(), static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(hist.underflow(), 0u);
  EXPECT_EQ(hist.overflow(), 0u);
  std::uint64_t bucket_total = 0;
  for (std::size_t i = 0; i < hist.buckets(); ++i) {
    bucket_total += hist.bucket_count(i);
  }
  EXPECT_EQ(bucket_total, hist.count());
  EXPECT_GE(hist.min(), 1e-4);
  EXPECT_LE(hist.max(), 1e-2 + 1e-9);
}

TEST(ObsMetrics, HistogramUnderflowOverflowAndQuantiles) {
  obs::Histogram hist(1e-3, 1e1);
  hist.record(1e-6);  // underflow
  hist.record(-1.0);  // negative -> underflow
  hist.record(1e2);   // overflow
  for (int i = 0; i < 100; ++i) hist.record(0.5);
  EXPECT_EQ(hist.underflow(), 2u);
  EXPECT_EQ(hist.overflow(), 1u);
  EXPECT_EQ(hist.count(), 103u);
  // The bulk sits at 0.5; p50 must land in its bucket.
  const double p50 = hist.quantile(0.5);
  EXPECT_GT(p50, 0.3);
  EXPECT_LT(p50, 0.7);
  // Quantiles inside the underflow/overflow mass pin to the range bounds.
  EXPECT_DOUBLE_EQ(hist.quantile(0.0), 1e-3);
  EXPECT_DOUBLE_EQ(hist.quantile(1.0), 1e1);
}

TEST(ObsMetrics, HistogramBucketsBracketRecordedValues) {
  obs::Histogram hist(1e-6, 1e4);
  for (double v : {1e-6, 3e-6, 1e-3, 0.5, 1.0, 42.0, 9999.0}) {
    hist.record(v);
    // Find the bucket the value landed in and check it brackets v.
    bool found = false;
    for (std::size_t i = 0; i < hist.buckets(); ++i) {
      if (hist.bucket_count(i) > 0 && hist.bucket_lower(i) <= v &&
          v < hist.bucket_upper(i)) {
        found = true;
        break;
      }
    }
    EXPECT_TRUE(found) << "no bucket brackets " << v;
  }
  EXPECT_EQ(hist.underflow(), 0u);
  EXPECT_EQ(hist.overflow(), 0u);
}

TEST(ObsMetrics, SnapshotContainsEverySeries) {
  obs::Registry registry;
  registry.counter("c.one").inc(3);
  registry.counter("c.two", {{"k", "v"}}).inc(7);
  registry.gauge("g.depth").set(42.0);
  registry.histogram("h.lat", 1e-6, 1e2).record(0.5);
  obs::Snapshot snap = registry.snapshot();
  ASSERT_EQ(snap.counters.size(), 2u);
  ASSERT_EQ(snap.gauges.size(), 1u);
  ASSERT_EQ(snap.histograms.size(), 1u);
  std::map<std::string, std::uint64_t> counters(snap.counters.begin(),
                                                snap.counters.end());
  EXPECT_EQ(counters.at("c.one"), 3u);
  EXPECT_EQ(counters.at("c.two{k=v}"), 7u);
  EXPECT_DOUBLE_EQ(snap.gauges[0].second, 42.0);
  EXPECT_EQ(snap.histograms[0].count, 1u);
}

// ---------------------------------------------------------------------------
// Tracer

TEST(ObsTrace, StageNamesCoverAllStages) {
  const std::set<std::string> names = {
      obs::stage_name(Stage::kSubmit),      obs::stage_name(Stage::kQueued),
      obs::stage_name(Stage::kNotify),      obs::stage_name(Stage::kGetWork),
      obs::stage_name(Stage::kExec),        obs::stage_name(Stage::kDeliverResult),
      obs::stage_name(Stage::kAck),         obs::stage_name(Stage::kDataFetch)};
  EXPECT_EQ(names.size(), obs::kStageCount);
}

TEST(ObsTrace, SpansKeepBeginEndOrdering) {
  obs::Tracer tracer(64);
  tracer.record(TaskId{1}, Stage::kQueued, 1.0, 2.5);
  tracer.record(TaskId{1}, Stage::kExec, 2.5, 4.0, /*actor=*/3);
  tracer.instant(TaskId{1}, Stage::kAck, 4.5);
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].stage, Stage::kQueued);
  EXPECT_EQ(events[1].stage, Stage::kExec);
  EXPECT_EQ(events[1].actor, 3u);
  EXPECT_EQ(events[2].stage, Stage::kAck);
  for (const auto& event : events) {
    EXPECT_LE(event.begin_s, event.end_s);
  }
  // Instant events are zero-length.
  EXPECT_DOUBLE_EQ(events[2].begin_s, events[2].end_s);
}

TEST(ObsTrace, RingOverflowCountsDropsAndKeepsNewest) {
  obs::Tracer tracer(8);
  ASSERT_EQ(tracer.capacity(), 8u);
  for (int i = 0; i < 20; ++i) {
    tracer.instant(TaskId{static_cast<std::uint64_t>(i + 1)}, Stage::kSubmit,
                   static_cast<double>(i));
  }
  EXPECT_EQ(tracer.recorded(), 20u);
  EXPECT_EQ(tracer.dropped(), 12u);
  const auto events = tracer.snapshot();
  ASSERT_EQ(events.size(), 8u);
  // Oldest-first snapshot of the newest 8 events: tasks 13..20.
  for (std::size_t i = 0; i < events.size(); ++i) {
    EXPECT_EQ(events[i].task, 13 + i);
  }
  tracer.clear();
  EXPECT_EQ(tracer.recorded(), 0u);
  EXPECT_EQ(tracer.dropped(), 0u);
  EXPECT_TRUE(tracer.snapshot().empty());
}

TEST(ObsTrace, DisabledTracerRecordsNothing) {
  obs::Tracer tracer(64, /*enabled=*/false);
  tracer.record(TaskId{1}, Stage::kExec, 0.0, 1.0);
  EXPECT_EQ(tracer.recorded(), 0u);
  tracer.set_enabled(true);
  tracer.record(TaskId{1}, Stage::kExec, 0.0, 1.0);
  EXPECT_EQ(tracer.recorded(), 1u);
}

TEST(ObsTrace, ObsConfigControlsTracerHandle) {
  obs::Obs off;  // default: tracing off
  EXPECT_EQ(off.tracer_if_enabled(), nullptr);
  obs::ObsConfig config;
  config.tracing = true;
  config.trace_capacity = 128;
  obs::Obs on(config);
  ASSERT_NE(on.tracer_if_enabled(), nullptr);
  EXPECT_EQ(on.tracer().capacity(), 128u);
}

TEST(ObsTrace, ConcurrentRecordsAllLand) {
  obs::Tracer tracer(1 << 14);
  constexpr int kThreads = 8;
  constexpr int kPerThread = 1000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&tracer, t] {
      for (int i = 0; i < kPerThread; ++i) {
        tracer.instant(TaskId{static_cast<std::uint64_t>(t * kPerThread + i)},
                       Stage::kExec, 0.0, static_cast<std::uint64_t>(t));
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(tracer.recorded(),
            static_cast<std::uint64_t>(kThreads * kPerThread));
  EXPECT_EQ(tracer.dropped(), 0u);
  EXPECT_EQ(tracer.snapshot().size(),
            static_cast<std::size_t>(kThreads * kPerThread));
}

// ---------------------------------------------------------------------------
// Exporters

TEST(ObsExport, MetricsJsonIsWellFormed) {
  obs::Registry registry;
  registry.counter("falkon.dispatcher.tasks_submitted").inc(10);
  registry.gauge("falkon.dispatcher.queue_depth").set(3.0);
  auto& hist = registry.histogram("falkon.task.queue_time_s", 1e-6, 1e4);
  hist.record(0.25);
  hist.record(0.5);
  std::ostringstream out;
  obs::write_metrics_json(registry.snapshot(), out);
  const JsonValue root = JsonParser(out.str()).parse();
  EXPECT_EQ(root.at("schema").text, "falkon.metrics.v1");
  EXPECT_DOUBLE_EQ(
      root.at("counters").at("falkon.dispatcher.tasks_submitted").number, 10.0);
  EXPECT_DOUBLE_EQ(root.at("gauges").at("falkon.dispatcher.queue_depth").number,
                   3.0);
  const JsonValue& h = root.at("histograms").at("falkon.task.queue_time_s");
  EXPECT_DOUBLE_EQ(h.at("count").number, 2.0);
  EXPECT_NEAR(h.at("mean").number, 0.375, 1e-9);
  EXPECT_TRUE(h.has("p99"));
}

TEST(ObsExport, HumanDumpListsEverySeries) {
  obs::Registry registry;
  registry.counter("falkon.a").inc(1);
  registry.gauge("falkon.b").set(2.0);
  registry.histogram("falkon.c", 1e-6, 1e2).record(0.5);
  const std::string dump = obs::human_dump(registry.snapshot());
  EXPECT_NE(dump.find("falkon.a"), std::string::npos);
  EXPECT_NE(dump.find("falkon.b"), std::string::npos);
  EXPECT_NE(dump.find("falkon.c"), std::string::npos);
}

TEST(ObsExport, ChromeTraceIsWellFormedJson) {
  obs::Tracer tracer(64);
  tracer.record(TaskId{1}, Stage::kQueued, 0.0, 0.5);
  tracer.record(TaskId{1}, Stage::kExec, 0.5, 1.0, /*actor=*/2);
  std::ostringstream out;
  obs::write_chrome_trace(tracer.snapshot(), out);
  const JsonValue root = JsonParser(out.str()).parse();
  const JsonValue& events = root.at("traceEvents");
  ASSERT_EQ(events.kind, JsonValue::Kind::kArray);
  // 2 span events + process_name + 2 thread_name metadata entries.
  EXPECT_EQ(events.items.size(), 5u);
  const JsonValue& exec = events.items[1];
  EXPECT_EQ(exec.at("name").text, "exec");
  EXPECT_EQ(exec.at("ph").text, "X");
  EXPECT_DOUBLE_EQ(exec.at("ts").number, 0.5e6);   // us
  EXPECT_DOUBLE_EQ(exec.at("dur").number, 0.5e6);  // us
  EXPECT_DOUBLE_EQ(exec.at("tid").number, 2.0);
  EXPECT_DOUBLE_EQ(exec.at("args").at("task").number, 1.0);
}

/// Golden test: a small traced simulation emits a Chrome trace that parses
/// and contains all seven lifecycle stages for every task.
TEST(ObsExport, SimulatedRunTraceIsStageComplete) {
  obs::ObsConfig obs_config;
  obs_config.tracing = true;
  obs_config.trace_capacity = 64 * 8;
  obs::Obs observer(obs_config);

  sim::SimFalkonConfig config;
  config.executors = 4;
  config.task_count = 50;
  config.client_bundle = 10;
  config.obs = &observer;
  const sim::SimFalkonResult result = sim::simulate_falkon(config);
  ASSERT_EQ(result.completed, config.task_count);
  EXPECT_EQ(observer.tracer().dropped(), 0u);

  std::ostringstream out;
  obs::write_chrome_trace(observer.tracer().snapshot(), out);
  const JsonValue root = JsonParser(out.str()).parse();

  // Collect, per task, the set of stage names seen.
  std::map<std::uint64_t, std::set<std::string>> stages_by_task;
  for (const JsonValue& event : root.at("traceEvents").items) {
    if (event.at("ph").text != "X") continue;
    const auto task =
        static_cast<std::uint64_t>(event.at("args").at("task").number);
    stages_by_task[task].insert(event.at("name").text);
    EXPECT_GE(event.at("dur").number, 0.0);
  }
  ASSERT_EQ(stages_by_task.size(), config.task_count);
  const std::set<std::string> expected = {"submit",  "queued",
                                          "notify",  "get_work",
                                          "exec",    "deliver_result",
                                          "ack"};
  for (const auto& [task, stages] : stages_by_task) {
    EXPECT_EQ(stages, expected) << "task " << task << " missing stages";
  }

  // The sim's registry counters agree with the run.
  obs::Snapshot snap = observer.registry().snapshot();
  std::map<std::string, std::uint64_t> counters(snap.counters.begin(),
                                                snap.counters.end());
  EXPECT_EQ(counters.at("falkon.sim.tasks_submitted"), config.task_count);
  EXPECT_EQ(counters.at("falkon.sim.tasks_completed"), config.task_count);
}

TEST(ObsExport, SaveFilesRoundTrip) {
  obs::Obs observer;
  observer.registry().counter("falkon.test.saved").inc(5);
  observer.tracer().set_enabled(true);
  observer.tracer().record(TaskId{1}, Stage::kExec, 0.0, 1.0);

  const std::string trace_path = "test_obs_trace.json";
  const std::string metrics_path = "test_obs_metrics.json";
  ASSERT_TRUE(obs::save_chrome_trace(observer.tracer(), trace_path).ok());
  ASSERT_TRUE(obs::save_metrics_json(observer.registry(), metrics_path).ok());

  auto slurp = [](const std::string& path) {
    std::ifstream in(path);
    std::ostringstream buf;
    buf << in.rdbuf();
    return buf.str();
  };
  EXPECT_NO_THROW(JsonParser(slurp(trace_path)).parse());
  EXPECT_NO_THROW(JsonParser(slurp(metrics_path)).parse());
  std::remove(trace_path.c_str());
  std::remove(metrics_path.c_str());
}

TEST(ObsExport, PeriodicDumperEmits) {
  obs::Registry registry;
  registry.counter("falkon.tick").inc();
  std::atomic<int> emissions{0};
  {
    obs::PeriodicDumper dumper(registry, 0.01,
                               [&emissions](const std::string& text) {
                                 EXPECT_FALSE(text.empty());
                                 emissions.fetch_add(1);
                               });
    while (emissions.load() == 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }  // destructor stops the thread
  EXPECT_GE(emissions.load(), 1);
}

}  // namespace
}  // namespace falkon
