// Workflow (Swift-lite) tests: DAG construction/validation, workload
// generators, and the engine end-to-end over both the Falkon provider and
// the GRAM4+LRM baseline provider.
#include <gtest/gtest.h>

#include <set>

#include "common/clock.h"
#include "core/service.h"
#include "workflow/engine.h"
#include "workflow/workloads.h"

namespace falkon::workflow {
namespace {

TEST(Dag, AddTaskAssignsSequentialIds) {
  WorkflowGraph graph;
  const auto a = graph.add_task(TaskSpec{}, "s1");
  const auto b = graph.add_task(TaskSpec{}, "s1", {a});
  EXPECT_EQ(graph.node(a).task.id, TaskId{1});
  EXPECT_EQ(graph.node(b).task.id, TaskId{2});
  EXPECT_TRUE(graph.validate().ok());
}

TEST(Dag, ValidateRejectsForwardDependency) {
  WorkflowGraph graph;
  TaskSpec task;
  graph.add_task(task, "s1", {0});  // self-dependency
  EXPECT_FALSE(graph.validate().ok());
}

TEST(Dag, CriticalPathAndIdealMakespan) {
  WorkflowGraph graph;
  TaskSpec t10;
  t10.estimated_runtime_s = 10.0;
  TaskSpec t5;
  t5.estimated_runtime_s = 5.0;
  const auto a = graph.add_task(t10, "s1");
  const auto b = graph.add_task(t5, "s1");
  graph.add_task(t5, "s2", {a, b});  // path a->c = 15
  EXPECT_DOUBLE_EQ(graph.critical_path_s(), 15.0);
  EXPECT_DOUBLE_EQ(graph.total_cpu_s(), 20.0);
  EXPECT_DOUBLE_EQ(graph.ideal_makespan_s(1), 20.0);
  EXPECT_DOUBLE_EQ(graph.ideal_makespan_s(8), 15.0);
}

TEST(Workloads, Synthetic18StageMatchesPaperFigure11) {
  const auto graph = make_synthetic_18stage();
  EXPECT_TRUE(graph.validate().ok());
  EXPECT_EQ(graph.size(), 1000u);                   // paper: 1,000 tasks
  EXPECT_EQ(graph.stages().size(), 18u);            // 18 stages
  EXPECT_NEAR(graph.total_cpu_s(), 17820.0, 2000);  // paper: 17,820 CPU s
  // Paper: "can complete in an ideal time of 1,260 secs on 32 machines".
  EXPECT_NEAR(graph.staged_ideal_makespan_s(32), 1260.0, 100.0);
}

TEST(Workloads, FmriTaskCountsMatchPaper) {
  // "from 120 volumes (480 tasks for the four stages) to 480 volumes
  // (1960 tasks)".
  EXPECT_EQ(make_fmri_workflow(120).size(), 480u);
  EXPECT_EQ(make_fmri_workflow(480).size(), 1960u);
  EXPECT_TRUE(make_fmri_workflow(240).validate().ok());
}

TEST(Workloads, MontageShapeMatchesPaper) {
  const auto graph = make_montage_workflow();
  EXPECT_TRUE(graph.validate().ok());
  // 487 inputs, 2,200 overlaps: mProject 487 + mDiff 2200 + mFit 2200 +
  // mBgModel 1 + mBackground 487 + mAddSub 16 + mAdd 1.
  EXPECT_EQ(graph.size(), 487u + 2200 + 2200 + 1 + 487 + 16 + 1);
  EXPECT_EQ(graph.stages().size(), 7u);
  // The final mAdd depends (transitively) on everything: critical path is
  // longer than any single stage's task.
  EXPECT_GT(graph.critical_path_s(), 60.0);
}

TEST(Workloads, StackingWorkloadShapeAndLocality) {
  const auto graph = workflow::make_stacking_workload(/*stacks=*/50,
                                                      /*images_per_stack=*/20);
  EXPECT_TRUE(graph.validate().ok());
  EXPECT_EQ(graph.size(), 50u * 21);  // 20 cutouts + 1 co-add per stack
  EXPECT_EQ(graph.stages().size(), 2u);
  // Locality exists: far fewer distinct objects than cutout tasks.
  std::set<std::string> objects;
  std::size_t cutouts = 0;
  for (const auto& node : graph.nodes()) {
    if (node.stage == "cutout") {
      ++cutouts;
      objects.insert(node.task.data_object);
    }
  }
  EXPECT_EQ(cutouts, 1000u);
  EXPECT_LT(objects.size(), cutouts / 2);
}

TEST(Workloads, MolDynEightStagesPlusSummary) {
  const auto graph = workflow::make_moldyn_workflow(100);
  EXPECT_TRUE(graph.validate().ok());
  EXPECT_EQ(graph.size(), 100u * 8 + 1);
  EXPECT_EQ(graph.stages().size(), 9u);
  // The per-molecule chain dominates the critical path (sum of the eight
  // step runtimes + summary).
  EXPECT_NEAR(graph.critical_path_s(), 5 + 2 + 3 + 60 + 120 + 240 + 600 + 30 + 20,
              1e-9);
}

TEST(Engine, StackingThroughDataAwareFalkon) {
  ScaledClock clock(2000.0);
  core::DispatcherConfig config;
  core::InProcFalkon falkon(clock, config,
                            std::make_unique<core::DataAwarePolicy>());
  iomodel::IoModel model;
  ASSERT_TRUE(falkon
                  .add_executors(8,
                                 [&model](Clock& c) {
                                   return std::make_unique<core::DataStagingEngine>(
                                       c, model, /*concurrency=*/8,
                                       /*cache=*/2ULL << 30);
                                 },
                                 core::ExecutorOptions{})
                  .ok());
  FalkonProvider provider(falkon.client(), ClientId{1});
  WorkflowEngine engine(clock, provider);
  EngineOptions options;
  options.deadline_s = 1e7;
  const auto graph = workflow::make_stacking_workload(20, 10, 60);
  auto stats = engine.run(graph, options);
  ASSERT_TRUE(stats.ok()) << stats.error().str();
  EXPECT_EQ(stats.value().tasks, graph.size());
  EXPECT_EQ(stats.value().failed, 0u);
}

TEST(Workloads, CatalogHasTwelveApplications) {
  EXPECT_EQ(swift_application_catalog().size(), 12u);
}

TEST(Engine, RunsDagThroughFalkonProviderRespectingDependencies) {
  RealClock clock;
  core::InProcFalkon falkon(clock, core::DispatcherConfig{});
  ASSERT_TRUE(falkon
                  .add_executors(4,
                                 [](Clock&) {
                                   return std::make_unique<core::NoopEngine>();
                                 },
                                 core::ExecutorOptions{})
                  .ok());
  FalkonProvider provider(falkon.client(), ClientId{1});

  // Diamond DAG repeated 50 times.
  WorkflowGraph graph;
  for (int i = 0; i < 50; ++i) {
    TaskSpec task;
    const auto top = graph.add_task(task, "top");
    const auto left = graph.add_task(task, "mid", {top});
    const auto right = graph.add_task(task, "mid", {top});
    graph.add_task(task, "bottom", {left, right});
  }

  WorkflowEngine engine(clock, provider);
  EngineOptions options;
  options.poll_slice_s = 0.2;
  options.deadline_s = 60.0;
  auto stats = engine.run(graph, options);
  ASSERT_TRUE(stats.ok()) << stats.error().str();
  EXPECT_EQ(stats.value().tasks, 200u);
  EXPECT_EQ(stats.value().failed, 0u);
  EXPECT_EQ(stats.value().stages.at("top").tasks, 50u);
  EXPECT_EQ(stats.value().stages.at("bottom").tasks, 50u);
  // A stage's first task cannot become ready before its dependencies'
  // stage started.
  EXPECT_LE(stats.value().stages.at("top").first_ready_s,
            stats.value().stages.at("bottom").first_ready_s);
}

TEST(Engine, BatchProviderRunsWorkflowThroughLrm) {
  ManualClock clock;
  lrm::LrmConfig lrm_config;
  lrm_config.poll_interval_s = 5.0;
  lrm_config.submit_overhead_s = 0.2;
  lrm_config.dispatch_overhead_s = 0.5;
  lrm_config.cleanup_overhead_s = 0.5;
  lrm_config.start_jitter_s = 0.0;
  lrm::BatchScheduler scheduler(clock, lrm_config, /*total_nodes=*/8);
  lrm::GramConfig gram_config;
  gram_config.request_overhead_s = 0.1;
  lrm::Gram4Gateway gram(clock, scheduler, gram_config);
  BatchProvider provider(clock, gram, scheduler);

  auto graph = make_sleep_workload(12, 2.0);

  // Drive the manual clock from a helper thread so provider.poll's
  // clock.sleep_s() calls make progress.
  std::atomic<bool> stop{false};
  std::thread ticker([&] {
    while (!stop.load()) {
      clock.advance(0.25);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  RealClock wall;  // the engine needs a makespan in *model* time: use clock
  WorkflowEngine engine(clock, provider);
  EngineOptions options;
  options.poll_slice_s = 1.0;
  options.deadline_s = 10000.0;
  auto stats = engine.run(graph, options);
  stop.store(true);
  ticker.join();
  (void)wall;

  ASSERT_TRUE(stats.ok()) << stats.error().str();
  EXPECT_EQ(stats.value().tasks, 12u);
  EXPECT_EQ(stats.value().failed, 0u);
  // 12 independent 2 s tasks on 8 nodes through a 5 s poll-cycle LRM: the
  // makespan is dominated by LRM machinery, far above the 4 s ideal.
  EXPECT_GT(stats.value().makespan_s, 4.0);
  // Per-task exec time includes the LRM prolog/epilog (GRAM-style
  // accounting).
  EXPECT_NEAR(stats.value().exec_time.mean(), 2.0 + 0.5 + 0.5, 0.2);
}

TEST(Engine, ClusteredProviderUsesFewJobs) {
  ManualClock clock;
  lrm::LrmConfig lrm_config;
  lrm_config.poll_interval_s = 5.0;
  lrm_config.submit_overhead_s = 0.2;
  lrm_config.dispatch_overhead_s = 0.5;
  lrm_config.cleanup_overhead_s = 0.5;
  lrm_config.start_jitter_s = 0.0;
  lrm::BatchScheduler scheduler(clock, lrm_config, 8);
  lrm::GramConfig gram_config;
  gram_config.request_overhead_s = 0.1;
  lrm::Gram4Gateway gram(clock, scheduler, gram_config);
  ClusteredBatchProvider provider(clock, gram, scheduler, /*clusters=*/4);

  auto graph = make_sleep_workload(20, 1.0);

  std::atomic<bool> stop{false};
  std::thread ticker([&] {
    while (!stop.load()) {
      clock.advance(0.25);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });
  WorkflowEngine engine(clock, provider);
  EngineOptions options;
  options.deadline_s = 10000.0;
  auto stats = engine.run(graph, options);
  stop.store(true);
  ticker.join();

  ASSERT_TRUE(stats.ok()) << stats.error().str();
  EXPECT_EQ(stats.value().tasks, 20u);
  // 20 tasks through 4 clusters = 4 LRM jobs, not 20.
  EXPECT_EQ(scheduler.stats().submitted, 4u);
}

}  // namespace
}  // namespace falkon::workflow
