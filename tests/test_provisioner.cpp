// Provisioner unit tests with a ManualClock: allocation lifecycle through
// GRAM + the LRM, all four acquisition policies (one-at-a-time, additive,
// exponential, all-at-once), pending-executor accounting, per-node lease
// release, centralized + idle-timeout de-registration, the min-executor
// floor, and the provisioning time series.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <mutex>

#include "common/clock.h"
#include "core/provisioner.h"

namespace falkon::core {
namespace {

/// Sink that records centralized-release requests (kReleaseResourceKey
/// pushes) so tests can simulate executor compliance.
struct RecordingSink final : ExecutorSink {
  RecordingSink(std::mutex& mu, std::vector<std::uint64_t>& released)
      : mu(mu), released(released) {}
  void notify(ExecutorId id, std::uint64_t resource_key) override {
    if (resource_key != kReleaseResourceKey) return;
    std::lock_guard lock(mu);
    released.push_back(id.value);
  }
  std::mutex& mu;
  std::vector<std::uint64_t>& released;
};

lrm::LrmConfig fast_lrm() {
  lrm::LrmConfig config;
  config.poll_interval_s = 10.0;
  config.submit_overhead_s = 0.5;
  config.dispatch_overhead_s = 1.0;
  config.cleanup_overhead_s = 1.0;
  config.start_jitter_s = 0.0;
  return config;
}

class ProvisionerTest : public ::testing::Test {
 protected:
  ProvisionerTest()
      : dispatcher_(clock_, DispatcherConfig{}),
        scheduler_(clock_, fast_lrm(), /*nodes=*/8),
        gram_(clock_, scheduler_, lrm::GramConfig{/*request_overhead_s=*/1.0,
                                                  /*notification_delay_s=*/0.0}) {}

  void make_provisioner(
      ProvisionerConfig config, const std::string& policy = "all-at-once",
      std::unique_ptr<CentralizedReleasePolicy> central = nullptr) {
    launch_per_node_ = std::max(1, config.executors_per_node);
    provisioner_ = std::make_unique<Provisioner>(
        clock_, dispatcher_, gram_, scheduler_, config,
        make_acquisition_policy(policy),
        [this](const lrm::JobContext& context, AllocationId allocation) {
          // Fake launcher: register one executor per node with the real
          // dispatcher and remember its lease for later exit simulation.
          int launched = 0;
          for (NodeId node : context.nodes) {
            for (int slot = 0; slot < launch_per_node_; ++slot) {
              wire::RegisterRequest request;
              request.node_id = node;
              request.allocation_id = allocation;
              auto id = dispatcher_.register_executor(
                  request,
                  std::make_shared<RecordingSink>(release_mu_, released_));
              if (id.ok()) {
                leases_.emplace_back(allocation, node);
                ids_.push_back(id.value());
                ++launched;
              }
            }
          }
          return launched;
        },
        std::move(central));
  }

  /// Ack one empty bundle per executor so every executor goes idle and the
  /// queue drains (each executor pulls + completes at most one task).
  void drain_queue() {
    for (auto id : ids_) {
      auto work = dispatcher_.get_work(id, 1);
      ASSERT_TRUE(work.ok());
      if (work.value().empty()) continue;
      TaskResult result;
      result.task_id = work.value()[0].id;
      ASSERT_TRUE(dispatcher_.deliver_results(id, {result}, 0).ok());
    }
  }

  /// Simulate the executor side of a de-registration (idle timeout firing
  /// or compliance with a centralized release request): deregister from the
  /// dispatcher and report the exit to the provisioner.
  void exit_executor(std::size_t slot, const std::string& reason) {
    (void)dispatcher_.deregister_executor(ids_[slot], reason);
    provisioner_->executor_exited(leases_[slot].first, leases_[slot].second);
  }

  void queue_tasks(int count) {
    auto instance = dispatcher_.create_instance(ClientId{1});
    ASSERT_TRUE(instance.ok());
    std::vector<TaskSpec> tasks;
    for (int i = 0; i < count; ++i) {
      tasks.push_back(make_sleep_task(TaskId{next_task_id_++}, 0.0));
    }
    ASSERT_TRUE(dispatcher_.submit(instance.value(), std::move(tasks)).ok());
    instance_ = instance.value();
  }

  /// Advance model time, stepping the provisioner each second.
  void advance(double seconds) {
    for (double t = 0; t < seconds; t += 1.0) {
      clock_.advance(1.0);
      provisioner_->step();
    }
  }

  ManualClock clock_;
  Dispatcher dispatcher_;
  lrm::BatchScheduler scheduler_;
  lrm::Gram4Gateway gram_;
  std::unique_ptr<Provisioner> provisioner_;
  std::vector<std::pair<AllocationId, NodeId>> leases_;
  std::vector<ExecutorId> ids_;
  std::mutex release_mu_;
  std::vector<std::uint64_t> released_;
  InstanceId instance_;
  std::uint64_t next_task_id_{1};
  int launch_per_node_{1};
};

TEST_F(ProvisionerTest, AllAtOnceRequestsOnceAndLaunches) {
  ProvisionerConfig config;
  config.max_executors = 8;
  config.poll_interval_s = 1.0;
  make_provisioner(config);

  queue_tasks(4);
  provisioner_->step();
  EXPECT_EQ(provisioner_->stats().allocations_requested, 1u);
  EXPECT_EQ(provisioner_->pending_executors(), 4);

  // GRAM (1 s) + eligibility (0.5 s) + LRM cycle (t=10) + prolog (1 s).
  advance(13.0);
  EXPECT_EQ(provisioner_->stats().executors_launched, 4u);
  EXPECT_EQ(provisioner_->pending_executors(), 0);
  EXPECT_EQ(dispatcher_.status().registered_executors, 4u);
  EXPECT_EQ(scheduler_.free_nodes(), 4);

  // Demand satisfied: no further allocations.
  advance(20.0);
  EXPECT_EQ(provisioner_->stats().allocations_requested, 1u);
}

TEST_F(ProvisionerTest, MaxExecutorsCapsAllocation) {
  ProvisionerConfig config;
  config.max_executors = 3;
  make_provisioner(config);
  queue_tasks(100);
  advance(15.0);
  EXPECT_EQ(provisioner_->stats().executors_launched, 3u);
  EXPECT_EQ(dispatcher_.status().registered_executors, 3u);
}

TEST_F(ProvisionerTest, MinExecutorFloorHeldWithoutDemand) {
  ProvisionerConfig config;
  config.min_executors = 3;
  config.max_executors = 8;
  make_provisioner(config);
  // No tasks at all.
  advance(15.0);
  EXPECT_EQ(dispatcher_.status().registered_executors, 3u);
}

TEST_F(ProvisionerTest, PerNodeLeaseReleasesNodeWhenExecutorExits) {
  ProvisionerConfig config;
  config.max_executors = 4;
  make_provisioner(config);
  queue_tasks(4);
  advance(13.0);
  ASSERT_EQ(leases_.size(), 4u);
  ASSERT_EQ(scheduler_.free_nodes(), 4);

  // Drain the queue so the provisioner does not re-acquire.
  for (auto id : ids_) {
    auto work = dispatcher_.get_work(id, 1);
    ASSERT_TRUE(work.ok());
    if (work.value().empty()) continue;
    TaskResult result;
    result.task_id = work.value()[0].id;
    ASSERT_TRUE(dispatcher_.deliver_results(id, {result}, 0).ok());
  }

  // Two executors exit: exactly their two nodes come back (after cleanup).
  (void)dispatcher_.deregister_executor(ids_[0], "idle");
  (void)dispatcher_.deregister_executor(ids_[1], "idle");
  provisioner_->executor_exited(leases_[0].first, leases_[0].second);
  provisioner_->executor_exited(leases_[1].first, leases_[1].second);
  advance(3.0);
  EXPECT_EQ(scheduler_.free_nodes(), 6);

  provisioner_->executor_exited(leases_[2].first, leases_[2].second);
  provisioner_->executor_exited(leases_[3].first, leases_[3].second);
  advance(3.0);
  EXPECT_EQ(scheduler_.free_nodes(), 8);
}

TEST_F(ProvisionerTest, OneAtATimeIssuesManyAllocations) {
  ProvisionerConfig config;
  config.max_executors = 8;
  make_provisioner(config, "one-at-a-time");
  queue_tasks(5);
  provisioner_->step();
  EXPECT_EQ(provisioner_->stats().allocations_requested, 5u);
  EXPECT_EQ(provisioner_->pending_executors(), 5);
}

TEST_F(ProvisionerTest, AdditiveGrowsRequestsArithmetically) {
  ProvisionerConfig config;
  config.max_executors = 8;
  make_provisioner(config, "additive");
  queue_tasks(6);
  provisioner_->step();
  // Deficit of 6 covered by arithmetically growing requests: 1 + 2 + 3.
  EXPECT_EQ(provisioner_->stats().allocations_requested, 3u);
  EXPECT_EQ(provisioner_->pending_executors(), 6);

  advance(13.0);
  EXPECT_EQ(provisioner_->stats().executors_launched, 6u);
  EXPECT_EQ(dispatcher_.status().registered_executors, 6u);
  // Demand covered: the ramp stops.
  advance(10.0);
  EXPECT_EQ(provisioner_->stats().allocations_requested, 3u);
}

TEST_F(ProvisionerTest, ExponentialDoublesRequestSizes) {
  ProvisionerConfig config;
  config.max_executors = 8;
  make_provisioner(config, "exponential");
  queue_tasks(7);
  provisioner_->step();
  // Deficit of 7 covered by doubling requests: 1 + 2 + 4.
  EXPECT_EQ(provisioner_->stats().allocations_requested, 3u);
  EXPECT_EQ(provisioner_->pending_executors(), 7);

  advance(13.0);
  EXPECT_EQ(provisioner_->stats().executors_launched, 7u);
  EXPECT_EQ(dispatcher_.status().registered_executors, 7u);
  advance(10.0);
  EXPECT_EQ(provisioner_->stats().allocations_requested, 3u);
}

TEST_F(ProvisionerTest, CentralizedReleaseDrainsIdleExecutorsToFloor) {
  ProvisionerConfig config;
  config.min_executors = 1;
  config.max_executors = 4;
  make_provisioner(config, "all-at-once",
                   std::make_unique<QueueThresholdReleasePolicy>(1));
  queue_tasks(4);
  advance(13.0);
  ASSERT_EQ(dispatcher_.status().registered_executors, 4u);

  // First pass completes every task; second pass pulls an empty reply for
  // each executor so notified-but-not-working entries settle back to idle.
  drain_queue();
  drain_queue();
  ASSERT_EQ(dispatcher_.status().queued, 0u);
  ASSERT_EQ(dispatcher_.status().idle_executors, 4u);

  // Queue empty: the threshold policy asks everything above the min floor
  // to release itself.
  provisioner_->step();
  std::vector<std::uint64_t> released;
  {
    std::lock_guard lock(release_mu_);
    released = released_;
  }
  EXPECT_EQ(released.size(), 3u);

  // Executors comply: deregister + exit; their nodes return to the LRM.
  for (std::size_t slot = 0; slot < ids_.size(); ++slot) {
    if (std::find(released.begin(), released.end(), ids_[slot].value) ==
        released.end()) {
      continue;
    }
    exit_executor(slot, "released");
  }
  advance(3.0);
  EXPECT_EQ(dispatcher_.status().registered_executors, 1u);
  EXPECT_EQ(scheduler_.free_nodes(), 7);
  // The floor survivor is never asked to release.
  {
    std::lock_guard lock(release_mu_);
    EXPECT_EQ(released_.size(), 3u);
  }
}

TEST_F(ProvisionerTest, IdleTimeoutDeregistrationFreesNodesAndReacquires) {
  ProvisionerConfig config;
  config.max_executors = 4;
  make_provisioner(config);
  queue_tasks(4);
  advance(13.0);
  ASSERT_EQ(dispatcher_.status().registered_executors, 4u);
  drain_queue();

  // Distributed release: every executor's idle timer fires; each one
  // deregisters itself and reports the exit, so all nodes come back.
  for (std::size_t slot = 0; slot < ids_.size(); ++slot) {
    exit_executor(slot, "idle timeout");
  }
  advance(3.0);
  EXPECT_EQ(dispatcher_.status().registered_executors, 0u);
  EXPECT_EQ(scheduler_.free_nodes(), 8);
  const auto allocations_before = provisioner_->stats().allocations_requested;

  // New demand after the pool drained away: the provisioner re-acquires
  // from zero.
  queue_tasks(2);
  advance(13.0);
  EXPECT_GT(provisioner_->stats().allocations_requested, allocations_before);
  EXPECT_EQ(dispatcher_.status().registered_executors, 2u);
}

TEST_F(ProvisionerTest, ExecutorsPerNodeRoundsUpNodes) {
  ProvisionerConfig config;
  config.max_executors = 8;
  config.executors_per_node = 2;
  make_provisioner(config);
  queue_tasks(5);  // needs ceil(5/2) = 3 nodes = 6 executors
  advance(13.0);
  EXPECT_EQ(provisioner_->stats().executors_launched, 6u);
  EXPECT_EQ(scheduler_.free_nodes(), 5);
}

TEST_F(ProvisionerTest, SeriesRecordProvisioningShape) {
  ProvisionerConfig config;
  config.max_executors = 4;
  make_provisioner(config);
  queue_tasks(4);
  advance(13.0);
  const auto& allocated = provisioner_->allocated_series();
  const auto& registered = provisioner_->registered_series();
  ASSERT_FALSE(allocated.empty());
  // Allocated (pending) peaked at 4 while the LRM worked, then fell to 0.
  double peak = 0;
  for (std::size_t i = 0; i < allocated.size(); ++i) {
    peak = std::max(peak, allocated.value_at(i));
  }
  EXPECT_EQ(peak, 4.0);
  EXPECT_EQ(allocated.last_value(), 0.0);
  EXPECT_EQ(registered.last_value(), 4.0);
}

}  // namespace
}  // namespace falkon::core
