// Policy tests: the five resource-acquisition strategies, release policies,
// and dispatch policies (paper section 3.1).
#include <gtest/gtest.h>

#include <numeric>

#include "core/policies.h"

namespace falkon::core {
namespace {

AcquisitionContext ctx(int queued, int busy, int idle, int pending, int max,
                       int lrm_free = 1000) {
  AcquisitionContext c;
  c.queued_tasks = queued;
  c.busy_executors = busy;
  c.idle_executors = idle;
  c.pending_executors = pending;
  c.max_executors = max;
  c.lrm_free_nodes = lrm_free;
  c.executors_per_node = 1;
  return c;
}

int total(const std::vector<int>& requests) {
  return std::accumulate(requests.begin(), requests.end(), 0);
}

TEST(Acquisition, AllAtOnceRequestsExactDeficit) {
  AllAtOncePolicy policy;
  auto plan = policy.plan(ctx(/*queued=*/10, /*busy=*/0, /*idle=*/0,
                              /*pending=*/0, /*max=*/32));
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0], 10);
}

TEST(Acquisition, AllAtOnceRespectsMaxAndSupply) {
  AllAtOncePolicy policy;
  // 100 queued, but cap is 32 and 20 executors already exist/are pending.
  auto plan = policy.plan(ctx(100, 4, 8, 8, 32));
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0], 12);  // 32 - (4+8+8)
}

TEST(Acquisition, NoDeficitMeansNoRequests) {
  AllAtOncePolicy policy;
  EXPECT_TRUE(policy.plan(ctx(0, 0, 4, 0, 32)).empty());
  EXPECT_TRUE(policy.plan(ctx(5, 0, 5, 0, 32)).empty());
  EXPECT_TRUE(policy.plan(ctx(5, 0, 0, 5, 32)).empty());
}

TEST(Acquisition, OneAtATimeIssuesUnitRequests) {
  OneAtATimePolicy policy;
  auto plan = policy.plan(ctx(5, 0, 0, 0, 32));
  EXPECT_EQ(plan.size(), 5u);
  for (int r : plan) EXPECT_EQ(r, 1);
}

TEST(Acquisition, AdditiveGrowsArithmetically) {
  AdditivePolicy policy(/*increment=*/1);
  auto plan = policy.plan(ctx(10, 0, 0, 0, 32));
  // 1+2+3+4 = 10
  EXPECT_EQ(plan, (std::vector<int>{1, 2, 3, 4}));
  EXPECT_EQ(total(plan), 10);
}

TEST(Acquisition, ExponentialGrowsGeometrically) {
  ExponentialPolicy policy;
  auto plan = policy.plan(ctx(10, 0, 0, 0, 32));
  // 1+2+4+3 = 10 (last request clamped to the remaining deficit)
  EXPECT_EQ(plan, (std::vector<int>{1, 2, 4, 3}));
}

TEST(Acquisition, SystemAvailableBoundsByFreeNodes) {
  SystemAvailablePolicy policy;
  auto plan = policy.plan(ctx(50, 0, 0, 0, 64, /*lrm_free=*/7));
  ASSERT_EQ(plan.size(), 1u);
  EXPECT_EQ(plan[0], 7);
}

/// Property: every strategy covers the deficit exactly when unconstrained,
/// and never over-requests.
class AcquisitionCoverage : public ::testing::TestWithParam<const char*> {};

TEST_P(AcquisitionCoverage, PlansSumToDeficit) {
  auto policy = make_acquisition_policy(GetParam());
  ASSERT_NE(policy, nullptr);
  for (int queued : {0, 1, 3, 17, 100, 1000}) {
    for (int supply : {0, 5, 50}) {
      auto c = ctx(queued, 0, supply, 0, 10000);
      const int expected = std::max(0, queued - supply);
      EXPECT_EQ(total(policy->plan(c)), expected)
          << GetParam() << " queued=" << queued << " supply=" << supply;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllStrategies, AcquisitionCoverage,
                         ::testing::Values("all-at-once", "one-at-a-time",
                                           "additive", "exponential",
                                           "available"));

TEST(Acquisition, FactoryRejectsUnknownName) {
  EXPECT_EQ(make_acquisition_policy("bogus"), nullptr);
}

TEST(Release, QueueThresholdReleasesAllWhenEmpty) {
  QueueThresholdReleasePolicy policy(/*threshold=*/5);
  ReleaseContext c;
  c.queued_tasks = 0;
  c.idle_executors = 8;
  c.registered_executors = 10;
  c.min_executors = 0;
  EXPECT_EQ(policy.executors_to_release(c), 8);
}

TEST(Release, QueueThresholdReleasesOneBelowThreshold) {
  QueueThresholdReleasePolicy policy(5);
  ReleaseContext c;
  c.queued_tasks = 3;
  c.idle_executors = 8;
  c.registered_executors = 10;
  EXPECT_EQ(policy.executors_to_release(c), 1);
  c.queued_tasks = 5;
  EXPECT_EQ(policy.executors_to_release(c), 0);
}

TEST(Release, RespectsMinimumExecutors) {
  QueueThresholdReleasePolicy policy(5);
  ReleaseContext c;
  c.queued_tasks = 0;
  c.idle_executors = 10;
  c.registered_executors = 10;
  c.min_executors = 8;
  EXPECT_EQ(policy.executors_to_release(c), 2);
}

TEST(Dispatch, NextAvailablePicksFirst) {
  NextAvailablePolicy policy;
  std::vector<ExecutorCandidate> idle(3);
  idle[0].id = ExecutorId{10};
  idle[1].id = ExecutorId{11};
  idle[2].id = ExecutorId{12};
  TaskSpec task;
  EXPECT_EQ(policy.select(task, idle), 0u);
}

TEST(Dispatch, DataAwarePrefersCacheHolder) {
  DataAwarePolicy policy;
  std::vector<ExecutorCandidate> idle(3);
  for (std::size_t i = 0; i < idle.size(); ++i) {
    idle[i].id = ExecutorId{i + 1};
    idle[i].has_cached = [](const std::string&) { return false; };
  }
  idle[2].has_cached = [](const std::string& object) {
    return object == "hot-object";
  };
  TaskSpec task;
  task.data_object = "hot-object";
  EXPECT_EQ(policy.select(task, idle), 2u);
  task.data_object = "cold-object";
  EXPECT_EQ(policy.select(task, idle), 0u);  // falls back to next-available
}

TEST(Dispatch, DataAwareTaskSelectionScansWindow) {
  DataAwarePolicy policy;
  ExecutorCandidate self;
  self.id = ExecutorId{1};
  self.has_cached = [](const std::string& object) { return object == "mine"; };

  TaskSpec t0;
  t0.data_object = "other";
  TaskSpec t1;
  t1.data_object = "mine";
  TaskSpec t2;
  std::vector<const TaskSpec*> window{&t0, &t1, &t2};
  EXPECT_EQ(policy.select_task(self, window), 1u);

  // Without a cached match, take the queue head (FIFO preserved).
  self.has_cached = [](const std::string&) { return false; };
  EXPECT_EQ(policy.select_task(self, window), 0u);
}

}  // namespace
}  // namespace falkon::core
