// Connection-scale soak for the sharded reactor: accept a 10k-connection
// fleet across multiple loops, heartbeat every connection, and tear it all
// down — the accept handoff, per-loop epoll registration, buffer pool, and
// close paths under real fd pressure. Labeled `soak`: runs in its own ci.sh
// stage, not in tier-1.
//
// The client fleet lives in a forked child process: 10k connections are
// 20k fds when both ends share one process, which busts the typical
// RLIMIT_NOFILE hard cap. Forking (before any reactor thread starts)
// gives each side its own descriptor table, and also makes the soak a
// genuine remote-peer test — the reactor sees real SYNs and FINs, not
// loopback shortcuts inside its own process.
#include <gtest/gtest.h>
#include <sys/resource.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <thread>
#include <vector>

#include "net/reactor.h"
#include "net/socket.h"
#include "obs/obs.h"
#include "wire/framing.h"

namespace falkon::net {
namespace {

constexpr int kTargetConns = 10000;

/// Child side: build the fleet, heartbeat every connection, then hold the
/// sockets open until the parent has finished its checks. Plain exit codes
/// instead of gtest — the parent asserts on them.
int run_client_fleet(std::uint16_t port, int go_fd, int done_fd) {
  char byte = 0;
  if (::read(go_fd, &byte, 1) != 1) return 10;  // reactor is up
  std::vector<TcpStream> clients;
  clients.reserve(kTargetConns);
  for (int i = 0; i < kTargetConns; ++i) {
    auto stream = TcpStream::connect("127.0.0.1", port);
    if (!stream.ok()) return 11;
    clients.push_back(stream.take());
    // Pace so the kernel accept backlog never overflows; the reactor
    // drains between batches.
    if (i % 256 == 255) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  const std::vector<std::uint8_t> beat = {0xfa, 0x1c, 0x04};
  for (std::size_t i = 0; i < clients.size(); ++i) {
    if (!wire::write_frame(clients[i], i + 1, beat).ok()) return 12;
  }
  wire::Frame frame;
  for (std::size_t i = 0; i < clients.size(); ++i) {
    if (!wire::read_frame(clients[i], frame).ok()) return 13;
    if (frame.corr != i + 1 || frame.payload != beat) return 14;
  }
  if (::write(done_fd, &byte, 1) != 1) return 15;  // fleet up + beaten
  if (::read(go_fd, &byte, 1) != 1) return 16;     // parent checks done
  clients.clear();                                 // 10k FINs at once
  return 0;
}

TEST(ReactorSoak, TenThousandConnectionAcceptAndHeartbeat) {
  // Each side needs kTargetConns fds plus headroom within its own limit.
  rlimit limit{};
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &limit), 0);
  const rlim_t needed = kTargetConns + 256u;
  if (limit.rlim_cur < needed) {
    rlimit raised = limit;
    raised.rlim_cur = needed < raised.rlim_max ? needed : raised.rlim_max;
    (void)::setrlimit(RLIMIT_NOFILE, &raised);
    ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &limit), 0);
    if (limit.rlim_cur < needed) {
      GTEST_SKIP() << "needs " << needed << " fds, limit is "
                   << limit.rlim_cur;
    }
  }

  auto listener = TcpListener::bind(0);
  ASSERT_TRUE(listener.ok());
  int go_pipe[2];
  int done_pipe[2];
  ASSERT_EQ(::pipe(go_pipe), 0);
  ASSERT_EQ(::pipe(done_pipe), 0);

  // Fork before the reactor spawns threads: the child is single-threaded
  // from birth, so it may allocate and block freely.
  const pid_t child = ::fork();
  ASSERT_GE(child, 0);
  if (child == 0) {
    // Do NOT TcpListener::close() here: it shutdown(2)s the shared socket,
    // which would kill the parent's listener too. _exit closes the child's
    // fd copies without touching socket state.
    ::close(go_pipe[1]);
    ::close(done_pipe[0]);
    ::_exit(run_client_fleet(listener.value().port(), go_pipe[0],
                             done_pipe[1]));
  }
  ::close(go_pipe[0]);
  ::close(done_pipe[1]);

  obs::Obs obs;
  Reactor reactor(ReactorOptions{.n_loops = 4, .obs = &obs});
  ASSERT_TRUE(reactor.start().ok());
  std::atomic<int> heartbeats{0};
  std::atomic<int> closes{0};
  reactor.add_listener(listener.value().fd(), [&](int fd) {
    reactor.adopt(
        fd,
        [&](const std::shared_ptr<Reactor::Conn>& conn, std::uint64_t corr,
            std::vector<std::uint8_t>&& payload) {
          heartbeats.fetch_add(1, std::memory_order_relaxed);
          (void)conn->send_frame(corr, payload);
          conn->recycle(std::move(payload));
        },
        [&](const std::shared_ptr<Reactor::Conn>&) {
          closes.fetch_add(1, std::memory_order_relaxed);
        });
  });

  char byte = 0;
  ASSERT_EQ(::write(go_pipe[1], &byte, 1), 1);
  // Child reports back once every connection is up and every heartbeat
  // echoed; budget generously — this is 10k connects + 20k frames through
  // one host.
  if (::read(done_pipe[0], &byte, 1) != 1) {
    int status = 0;
    ::waitpid(child, &status, 0);
    FAIL() << "client fleet died: exited=" << WIFEXITED(status)
           << " code=" << (WIFEXITED(status) ? WEXITSTATUS(status) : -1)
           << " signal=" << (WIFSIGNALED(status) ? WTERMSIG(status) : 0);
  }

  EXPECT_EQ(reactor.open_connections(),
            static_cast<std::size_t>(kTargetConns));
  EXPECT_EQ(heartbeats.load(), kTargetConns);
  // Round-robin placement holds at scale: every loop owns an equal share.
  reactor.barrier();
  const auto per_loop = reactor.connections_per_loop();
  ASSERT_EQ(per_loop.size(), 4u);
  for (std::size_t loop = 0; loop < per_loop.size(); ++loop) {
    EXPECT_EQ(per_loop[loop], static_cast<std::size_t>(kTargetConns / 4))
        << "loop " << loop;
  }

  // Release the child: it severs all 10k connections at once and the
  // reactor unwinds the fleet.
  ASSERT_EQ(::write(go_pipe[1], &byte, 1), 1);
  for (int spin = 0; spin < 30000 && reactor.open_connections() > 0; ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(reactor.open_connections(), 0u);
  EXPECT_EQ(closes.load(), kTargetConns);

  int status = 0;
  ASSERT_EQ(::waitpid(child, &status, 0), child);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 0);
  ::close(go_pipe[1]);
  ::close(done_pipe[0]);
  reactor.remove_listener(listener.value().fd());
  reactor.stop();
}

}  // namespace
}  // namespace falkon::net
