// falkon::testkit unit + integration coverage: generator determinism and
// ranges, fault-plan recoverability bounds, shrinking (monotone, minimal
// counterexample), the property harness, wire debug summaries, obs task
// grouping, and one smoke run per backend through the invariant checker.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>
#include <vector>

#include "obs/trace.h"
#include "testkit/testkit.h"
#include "wire/message.h"

namespace falkon::testkit {
namespace {

TEST(Workload, SameSeedGeneratesIdenticalSpec) {
  for (std::uint64_t seed : {1ULL, 42ULL, 987654321ULL}) {
    const WorkloadSpec a = generate_workload(seed);
    const WorkloadSpec b = generate_workload(seed);
    EXPECT_EQ(describe(a), describe(b));
    EXPECT_EQ(a.task_count, b.task_count);
    EXPECT_EQ(a.fault_intensity, b.fault_intensity);
  }
}

TEST(Workload, DifferentSeedsDiffer) {
  std::set<std::string> specs;
  for (std::uint64_t seed = 1; seed <= 50; ++seed) {
    specs.insert(describe(generate_workload(seed)));
  }
  // SplitMix64 diffusion: near-identical seeds still give distinct specs.
  EXPECT_GT(specs.size(), 45u);
}

TEST(Workload, GeneratedRangesAreRunnable) {
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    const WorkloadSpec spec = generate_workload(seed);
    EXPECT_GE(spec.task_count, 1u);
    EXPECT_LE(spec.task_count, 160u);
    EXPECT_GE(spec.executors, 1);
    EXPECT_LE(spec.executors, 8);
    EXPECT_GE(spec.client_bundle, 1);
    EXPECT_GE(spec.executor_bundle, 1u);
    EXPECT_GE(spec.max_tasks_per_dispatch, 1u);
    EXPECT_GE(spec.max_retries, 16);
    EXPECT_GE(spec.replay_timeout_s, 0.3);
    EXPECT_GE(spec.fault_intensity, 0.0);
    EXPECT_LE(spec.fault_intensity, 1.0);
  }
}

TEST(Workload, FaultPlanEmptyWithoutIntensity) {
  WorkloadSpec spec = generate_workload(7);
  spec.fault_intensity = 0.0;
  EXPECT_TRUE(fault_plan(spec).rules.empty());
}

TEST(Workload, FaultPlanIsRecoverableByConstruction) {
  // Every drawn rule stays under the recovery machinery's convergence
  // bounds: no probability above kRpcConnect's 0.10 ceiling, no hang
  // beyond 0.15 s, no slow-down beyond 0.02 s.
  for (std::uint64_t seed = 1; seed <= 300; ++seed) {
    const fault::FaultPlan plan = fault::random_plan(seed, 1.0);
    for (const auto& rule : plan.rules) {
      EXPECT_LE(rule.probability, 0.10) << fault::describe(plan);
      if (rule.action == fault::Action::kHang) {
        EXPECT_LE(rule.param, 0.15);
      }
      if (rule.action == fault::Action::kSlow) {
        EXPECT_LE(rule.param, 0.02);
      }
    }
  }
}

TEST(Workload, FaultPlanScalesWithIntensity) {
  std::size_t low = 0, high = 0;
  for (std::uint64_t seed = 1; seed <= 200; ++seed) {
    low += fault::random_plan(seed, 0.2).rules.size();
    high += fault::random_plan(seed, 1.0).rules.size();
  }
  EXPECT_LT(low, high);
  EXPECT_GT(high, 0u);
}

TEST(Shrinking, CandidatesAreStrictlySmaller) {
  for (std::uint64_t seed = 1; seed <= 100; ++seed) {
    const WorkloadSpec spec = generate_workload(seed);
    for (const WorkloadSpec& candidate : shrink_candidates(spec)) {
      EXPECT_LT(spec_size(candidate), spec_size(spec))
          << describe(spec) << " -> " << describe(candidate);
    }
  }
}

TEST(Shrinking, MinimalSpecHasNoCandidates) {
  WorkloadSpec minimal;
  minimal.task_count = 1;
  minimal.executors = 1;
  minimal.task_length_s = 0.0;
  minimal.client_bundle = 1;
  minimal.piggyback = true;
  minimal.max_tasks_per_dispatch = 1;
  minimal.executor_bundle = 1;
  minimal.adaptive_bundle = false;
  minimal.max_bundle_runtime_s = 0.0;
  minimal.fault_intensity = 0.0;
  EXPECT_TRUE(shrink_candidates(minimal).empty());
}

TEST(Harness, FindsAndShrinksToMinimalCounterexample) {
  // Synthetic property: fails iff task_count >= 20. The harness must find
  // a failing seed and shrink every other axis away, landing exactly on
  // the boundary.
  PropertyOptions options;
  options.base_seed = 1;
  options.cases = 50;
  const PropertyOutcome outcome =
      check_property("synthetic", options, [](const WorkloadSpec& spec) {
        std::vector<std::string> violations;
        if (spec.task_count >= 20) violations.push_back("task_count >= 20");
        return violations;
      });
  ASSERT_FALSE(outcome.passed);
  EXPECT_EQ(outcome.minimal.task_count, 20u);
  EXPECT_EQ(outcome.minimal.executors, 1);
  EXPECT_EQ(outcome.minimal.fault_intensity, 0.0);
  EXPECT_FALSE(outcome.minimal.adaptive_bundle);
  EXPECT_GT(outcome.shrink_steps, 0);
  EXPECT_NE(outcome.report("synthetic").find("FALKON_TEST_SEED="),
            std::string::npos);
}

TEST(Harness, PassingPropertyRunsAllCases) {
  PropertyOptions options;
  options.cases = 25;
  const PropertyOutcome outcome = check_property(
      "always-holds", options,
      [](const WorkloadSpec&) { return std::vector<std::string>{}; });
  EXPECT_TRUE(outcome.passed);
  EXPECT_EQ(outcome.cases_run, 25);
}

TEST(History, GroupByTaskPreservesRingOrderAndCounts) {
  obs::Tracer tracer(64);
  tracer.instant(TaskId{1}, obs::Stage::kSubmit, 0.0);
  tracer.instant(TaskId{2}, obs::Stage::kSubmit, 0.1);
  tracer.instant(TaskId{1}, obs::Stage::kQueued, 0.2);
  tracer.instant(TaskId{1}, obs::Stage::kGetWork, 0.3);
  tracer.instant(TaskId{2}, obs::Stage::kQueued, 0.4);
  const auto tasks = obs::group_by_task(tracer.snapshot());
  ASSERT_EQ(tasks.size(), 2u);
  EXPECT_EQ(tasks[0].task, 1u);
  EXPECT_EQ(tasks[0].events.size(), 3u);
  EXPECT_EQ(tasks[0].count(obs::Stage::kSubmit), 1u);
  EXPECT_EQ(tasks[0].count(obs::Stage::kGetWork), 1u);
  EXPECT_EQ(tasks[1].task, 2u);
  EXPECT_EQ(tasks[1].count(obs::Stage::kQueued), 1u);
  EXPECT_TRUE(tracer.complete());
}

TEST(History, InvariantCheckerFlagsViolations) {
  RunHistory history;
  history.backend = "synthetic";
  history.submitted = 3;
  history.completed = 1;
  history.failed = 1;  // conservation broken: 1 task lost
  history.queued_at_end = 1;
  history.result_ids = {7, 7};  // duplicate delivery
  history.quarantine_series = {0, 2, 1};  // quarantine went backwards
  history.has_bundle_counters = true;
  history.pending_bundles_gauge = 2.0;  // never drained
  history.bundles_issued = 5;
  history.bundles_retired = 3;
  const auto violations = check_invariants(history);
  const std::string joined = join_violations(violations);
  EXPECT_NE(joined.find("I1 conservation"), std::string::npos) << joined;
  EXPECT_NE(joined.find("I6 quarantine monotone"), std::string::npos);
  EXPECT_NE(joined.find("I7 bundles drain"), std::string::npos);
  EXPECT_NE(joined.find("I8 unique delivery"), std::string::npos);
}

TEST(History, DoubleAckIsCaught) {
  obs::Tracer tracer(64);
  tracer.instant(TaskId{1}, obs::Stage::kSubmit, 0.0);
  tracer.instant(TaskId{1}, obs::Stage::kQueued, 0.1);
  tracer.instant(TaskId{1}, obs::Stage::kGetWork, 0.1);
  tracer.instant(TaskId{1}, obs::Stage::kExec, 0.2);
  tracer.instant(TaskId{1}, obs::Stage::kDeliverResult, 0.3);
  tracer.instant(TaskId{1}, obs::Stage::kAck, 0.3);
  tracer.instant(TaskId{1}, obs::Stage::kAck, 0.4);  // double completion
  RunHistory history;
  history.backend = "synthetic";
  history.submitted = 1;
  history.completed = 1;
  history.events = tracer.snapshot();
  history.trace_complete = true;
  const auto violations = check_invariants(history);
  EXPECT_NE(join_violations(violations).find("I3 at-most-one-ack"),
            std::string::npos)
      << join_violations(violations);
}

TEST(Wire, DebugSummaryShowsProtocolFields) {
  wire::TaskBundle bundle;
  bundle.executor_id = ExecutorId{3};
  bundle.bundle_seq = 9;
  bundle.acknowledged = 2;
  bundle.tasks.resize(4);
  EXPECT_EQ(wire::debug_summary(bundle),
            "TaskBundle{executor=3, seq=9, acked=2, tasks=4}");

  wire::ResultBundle results;
  results.executor_id = ExecutorId{3};
  results.ack_seq = 9;
  results.want_tasks = wire::kAdaptiveWant;
  EXPECT_EQ(wire::debug_summary(results),
            "ResultBundle{executor=3, ack_seq=9, results=0, want=adaptive}");

  wire::GetWorkRequest get_work;
  get_work.executor_id = ExecutorId{1};
  get_work.max_tasks = wire::kAdaptiveBundle;
  EXPECT_EQ(wire::debug_summary(get_work),
            "GetWorkRequest{executor=1, max=adaptive}");

  wire::Notify release;
  release.executor_id = ExecutorId{5};
  release.resource_key = wire::kReleaseResourceKey;
  EXPECT_EQ(wire::debug_summary(release), "Notify{executor=5, release}");
}

// ---- backend smoke runs through the full checker ----

WorkloadSpec smoke_spec() {
  WorkloadSpec spec;
  spec.seed = 20260807;
  spec.task_count = 40;
  spec.executors = 3;
  spec.client_bundle = 16;
  spec.max_retries = 16;
  return spec;
}

TEST(Runners, SimSmokeHoldsInvariants) {
  const RunHistory history = run_sim(smoke_spec());
  EXPECT_EQ(history.completed, 40u);
  EXPECT_TRUE(history.trace_complete);
  const auto violations = check_invariants(history);
  EXPECT_TRUE(violations.empty()) << join_violations(violations);
}

TEST(Runners, SimIsDeterministic) {
  const RunHistory a = run_sim(smoke_spec());
  const RunHistory b = run_sim(smoke_spec());
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.retried, b.retried);
  ASSERT_EQ(a.events.size(), b.events.size());
  for (std::size_t i = 0; i < a.events.size(); ++i) {
    EXPECT_EQ(a.events[i].task, b.events[i].task);
    EXPECT_EQ(a.events[i].stage, b.events[i].stage);
    EXPECT_EQ(a.events[i].begin_s, b.events[i].begin_s);
  }
}

TEST(Runners, InprocSmokeHoldsInvariants) {
  const RunHistory history = run_inproc(smoke_spec());
  EXPECT_EQ(history.completed, 40u);
  EXPECT_EQ(history.result_ids.size(), 40u);
  const auto violations = check_invariants(history);
  EXPECT_TRUE(violations.empty()) << join_violations(violations);
}

TEST(Runners, TcpSmokeHoldsInvariantsIncludingBundleDrain) {
  WorkloadSpec spec = smoke_spec();
  spec.piggyback = true;
  spec.executor_bundle = 4;
  const RunHistory history = run_tcp(spec);
  EXPECT_EQ(history.completed, 40u);
  ASSERT_TRUE(history.has_bundle_counters);
  EXPECT_EQ(history.pending_bundles_gauge, 0.0);
  EXPECT_EQ(history.bundles_issued, history.bundles_retired);
  const auto violations = check_invariants(history);
  EXPECT_TRUE(violations.empty()) << join_violations(violations);
}

TEST(Runners, SimTcpConformanceOnSmokeSpec) {
  const RunHistory sim = run_sim(smoke_spec());
  const RunHistory tcp = run_tcp(smoke_spec());
  const auto violations =
      check_conformance(sim, tcp, /*require_all_complete=*/true);
  EXPECT_TRUE(violations.empty()) << join_violations(violations);
}

}  // namespace
}  // namespace falkon::testkit
