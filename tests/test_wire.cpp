// Codec, message, and framing tests, including property-style roundtrips
// over randomly generated protocol messages (TEST_P).
#include <gtest/gtest.h>

#include <algorithm>
#include <string>

#include "common/rng.h"
#include "wire/codec.h"
#include "wire/framing.h"
#include "wire/message.h"

namespace falkon::wire {
namespace {

TEST(Codec, PrimitiveRoundtrip) {
  Writer w;
  w.put_u8(0xab);
  w.put_u32(0xdeadbeef);
  w.put_u64(0x0123456789abcdefULL);
  w.put_double(-1.5e300);
  w.put_bool(true);
  w.put_string("falkon");
  Reader r(w.data());
  EXPECT_EQ(r.get_u8(), 0xab);
  EXPECT_EQ(r.get_u32(), 0xdeadbeefu);
  EXPECT_EQ(r.get_u64(), 0x0123456789abcdefULL);
  EXPECT_DOUBLE_EQ(r.get_double(), -1.5e300);
  EXPECT_TRUE(r.get_bool());
  EXPECT_EQ(r.get_string(), "falkon");
  EXPECT_TRUE(r.at_end());
}

TEST(Codec, VarintBoundaries) {
  for (std::uint64_t v :
       {0ULL, 1ULL, 127ULL, 128ULL, 16383ULL, 16384ULL, ~0ULL}) {
    Writer w;
    w.put_varint(v);
    Reader r(w.data());
    EXPECT_EQ(r.get_varint(), v);
  }
}

TEST(Codec, UnderrunThrows) {
  Writer w;
  w.put_u8(1);
  Reader r(w.data());
  r.get_u8();
  EXPECT_THROW(r.get_u32(), CodecError);
}

TEST(Codec, OversizedStringLengthThrows) {
  Writer w;
  w.put_varint(1'000'000);  // length prefix without the bytes
  Reader r(w.data());
  EXPECT_THROW(r.get_string(), CodecError);
}

TaskSpec sample_spec(std::uint64_t id) {
  TaskSpec spec;
  spec.id = TaskId{id};
  spec.executable = "/bin/echo";
  spec.args = {"hello", "world"};
  spec.working_dir = "/tmp";
  spec.env = {{"PATH", "/usr/bin"}, {"FALKON", "1"}};
  spec.estimated_runtime_s = 1.25;
  spec.data_location = DataLocation::kSharedFs;
  spec.io_mode = IoMode::kReadWrite;
  spec.input_bytes = 1 << 20;
  spec.output_bytes = 512;
  spec.data_object = "m16-tile-042.fits";
  spec.capture_output = true;
  spec.expect_cached = true;
  spec.data_source = "10.9.8.7:9444";
  return spec;
}

void expect_spec_eq(const TaskSpec& a, const TaskSpec& b) {
  EXPECT_EQ(a.id, b.id);
  EXPECT_EQ(a.executable, b.executable);
  EXPECT_EQ(a.args, b.args);
  EXPECT_EQ(a.working_dir, b.working_dir);
  EXPECT_EQ(a.env, b.env);
  EXPECT_DOUBLE_EQ(a.estimated_runtime_s, b.estimated_runtime_s);
  EXPECT_EQ(a.data_location, b.data_location);
  EXPECT_EQ(a.io_mode, b.io_mode);
  EXPECT_EQ(a.input_bytes, b.input_bytes);
  EXPECT_EQ(a.output_bytes, b.output_bytes);
  EXPECT_EQ(a.data_object, b.data_object);
  EXPECT_EQ(a.capture_output, b.capture_output);
  EXPECT_EQ(a.expect_cached, b.expect_cached);
  EXPECT_EQ(a.data_source, b.data_source);
}

TEST(Message, TaskSpecRoundtrip) {
  Writer w;
  encode_task_spec(w, sample_spec(99));
  Reader r(w.data());
  expect_spec_eq(decode_task_spec(r), sample_spec(99));
}

TEST(Message, TaskResultRoundtrip) {
  TaskResult result;
  result.task_id = TaskId{4};
  result.executor_id = ExecutorId{2};
  result.exit_code = -9;  // negative codes survive the u32 cast
  result.state = TaskState::kFailed;
  result.stdout_data = "out";
  result.stderr_data = "err";
  result.queue_time_s = 0.5;
  result.exec_time_s = 1.5;
  result.overhead_s = 0.01;

  Writer w;
  encode_task_result(w, result);
  Reader r(w.data());
  const TaskResult decoded = decode_task_result(r);
  EXPECT_EQ(decoded.task_id, result.task_id);
  EXPECT_EQ(decoded.exit_code, result.exit_code);
  EXPECT_EQ(decoded.state, result.state);
  EXPECT_EQ(decoded.stdout_data, "out");
  EXPECT_DOUBLE_EQ(decoded.exec_time_s, 1.5);
}

TEST(Message, SubmitRequestRoundtripPreservesBundle) {
  SubmitRequest request;
  request.instance_id = InstanceId{12};
  for (std::uint64_t i = 1; i <= 300; ++i) request.tasks.push_back(sample_spec(i));

  auto bytes = encode_message(request);
  auto decoded = decode_message(bytes);
  ASSERT_TRUE(decoded.ok());
  const auto* reply = std::get_if<SubmitRequest>(&decoded.value());
  ASSERT_NE(reply, nullptr);
  EXPECT_EQ(reply->instance_id, request.instance_id);
  ASSERT_EQ(reply->tasks.size(), 300u);
  expect_spec_eq(reply->tasks[123], request.tasks[123]);
}

TEST(Message, TypeTagsMatchEnum) {
  EXPECT_EQ(message_type(Message{Notify{}}), MsgType::kNotify);
  EXPECT_EQ(message_type(Message{StatusReply{}}), MsgType::kStatusReply);
  EXPECT_EQ(message_type(Message{ClientNotify{}}), MsgType::kClientNotify);
  EXPECT_EQ(message_type(Message{TaskBundle{}}), MsgType::kTaskBundle);
  EXPECT_EQ(message_type(Message{ResultBundle{}}), MsgType::kResultBundle);
}

TEST(Message, TaskBundleRoundtripPreservesSeqAndTasks) {
  TaskBundle bundle;
  bundle.executor_id = ExecutorId{42};
  bundle.bundle_seq = 0xabcdef0123456789ULL;
  bundle.acknowledged = 17;
  for (std::uint64_t i = 1; i <= 64; ++i) bundle.tasks.push_back(sample_spec(i));

  auto decoded = decode_message(encode_message(bundle));
  ASSERT_TRUE(decoded.ok());
  const auto* reply = std::get_if<TaskBundle>(&decoded.value());
  ASSERT_NE(reply, nullptr);
  EXPECT_EQ(reply->executor_id.value, 42u);
  EXPECT_EQ(reply->bundle_seq, 0xabcdef0123456789ULL);
  EXPECT_EQ(reply->acknowledged, 17u);
  ASSERT_EQ(reply->tasks.size(), 64u);
  expect_spec_eq(reply->tasks[31], bundle.tasks[31]);
}

TEST(Message, ResultBundleRoundtripPreservesAckAndSentinel) {
  ResultBundle bundle;
  bundle.executor_id = ExecutorId{7};
  bundle.ack_seq = 991;
  bundle.want_tasks = kAdaptiveWant;
  TaskResult result;
  result.task_id = TaskId{5};
  result.exit_code = 3;
  bundle.results.push_back(result);

  auto decoded = decode_message(encode_message(bundle));
  ASSERT_TRUE(decoded.ok());
  const auto* reply = std::get_if<ResultBundle>(&decoded.value());
  ASSERT_NE(reply, nullptr);
  EXPECT_EQ(reply->executor_id.value, 7u);
  EXPECT_EQ(reply->ack_seq, 991u);
  EXPECT_EQ(reply->want_tasks, kAdaptiveWant);
  ASSERT_EQ(reply->results.size(), 1u);
  EXPECT_EQ(reply->results[0].task_id.value, 5u);
}

TEST(Message, MalformedBufferIsProtocolError) {
  std::vector<std::uint8_t> garbage{0x05, 0x01};  // SubmitRequest, truncated
  auto decoded = decode_message(garbage);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, ErrorCode::kProtocolError);
}

TEST(Message, UnknownTypeTagIsProtocolError) {
  std::vector<std::uint8_t> garbage{0xee};
  auto decoded = decode_message(garbage);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, ErrorCode::kProtocolError);
}

/// Property test: every message kind roundtrips through encode/decode for
/// many randomized payloads.
class MessageRoundtrip : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MessageRoundtrip, RandomizedMessagesSurviveEncodeDecode) {
  Rng rng(GetParam());
  for (int iteration = 0; iteration < 50; ++iteration) {
    std::vector<Message> messages;
    messages.push_back(CreateInstanceRequest{ClientId{rng.next_u64()}});
    messages.push_back(CreateInstanceReply{InstanceId{rng.next_u64()}});
    {
      SubmitRequest m;
      m.instance_id = InstanceId{rng.next_u64()};
      const auto n = rng.uniform_int(0, 20);
      for (std::uint64_t i = 0; i < n; ++i) {
        m.tasks.push_back(sample_spec(rng.next_u64()));
      }
      messages.push_back(std::move(m));
    }
    {
      RegisterRequest m;
      m.node_id = NodeId{rng.next_u64()};
      m.host = "host-" + std::to_string(rng.uniform_int(0, 999));
      m.slots = static_cast<std::uint32_t>(rng.uniform_int(1, 16));
      m.allocation_id = AllocationId{rng.next_u64()};
      messages.push_back(std::move(m));
    }
    messages.push_back(Notify{ExecutorId{rng.next_u64()}, rng.next_u64()});
    {
      ResultRequest m;
      m.executor_id = ExecutorId{rng.next_u64()};
      TaskResult result;
      result.task_id = TaskId{rng.next_u64()};
      result.exit_code = static_cast<int>(rng.uniform_int(0, 255));
      m.results.push_back(result);
      m.want_tasks = static_cast<std::uint32_t>(rng.uniform_int(0, 4));
      messages.push_back(std::move(m));
    }
    {
      StatusReply m;
      m.queued_tasks = rng.next_u64() % 1000000;
      m.busy_executors = static_cast<std::uint32_t>(rng.uniform_int(0, 54000));
      messages.push_back(m);
    }
    {
      TaskBundle m;
      m.executor_id = ExecutorId{rng.next_u64()};
      m.bundle_seq = rng.next_u64();
      m.acknowledged = static_cast<std::uint32_t>(rng.uniform_int(0, 4096));
      const auto n = rng.uniform_int(0, 20);
      for (std::uint64_t i = 0; i < n; ++i) {
        m.tasks.push_back(sample_spec(rng.next_u64()));
      }
      messages.push_back(std::move(m));
    }
    {
      ResultBundle m;
      m.executor_id = ExecutorId{rng.next_u64()};
      m.ack_seq = rng.next_u64();
      const auto n = rng.uniform_int(0, 20);
      for (std::uint64_t i = 0; i < n; ++i) {
        TaskResult result;
        result.task_id = TaskId{rng.next_u64()};
        result.exit_code = static_cast<int>(rng.uniform_int(0, 255));
        m.results.push_back(result);
      }
      // Exercise the adaptive sentinel alongside ordinary counts.
      m.want_tasks = rng.bernoulli(0.2)
                         ? kAdaptiveWant
                         : static_cast<std::uint32_t>(rng.uniform_int(0, 16));
      messages.push_back(std::move(m));
    }
    // Epoch-carrying replication + election messages: the epoch must
    // survive the round trip bit-exactly (fencing compares it).
    {
      ReplFetch m;
      m.from_lsn = rng.next_u64();
      m.max_bytes = static_cast<std::uint32_t>(rng.next_u64());
      m.epoch = rng.next_u64();
      messages.push_back(m);
    }
    {
      ReplAppend m;
      m.first_lsn = rng.next_u64();
      m.last_lsn = rng.next_u64();
      m.payload.assign(rng.uniform_int(0, 64), 'r');
      m.epoch = rng.next_u64();
      messages.push_back(std::move(m));
    }
    {
      ReplSnapshot m;
      m.lsn = rng.next_u64();
      m.payload.assign(rng.uniform_int(0, 64), 's');
      m.epoch = rng.next_u64();
      messages.push_back(std::move(m));
    }
    messages.push_back(ReplAck{rng.next_u64(), rng.next_u64()});
    {
      ElectionPing m;
      m.epoch = rng.next_u64();
      m.rank = static_cast<std::uint32_t>(rng.uniform_int(0, 64));
      m.applied_lsn = rng.next_u64();
      messages.push_back(m);
    }
    {
      ElectionAck m;
      m.epoch = rng.next_u64();
      m.rank = static_cast<std::uint32_t>(rng.uniform_int(0, 64));
      m.applied_lsn = rng.next_u64();
      m.promoted = rng.bernoulli(0.5);
      messages.push_back(m);
    }
    // Data-diffusion messages (docs/DATA.md).
    {
      CacheDigest m;
      m.executor_id = ExecutorId{rng.next_u64()};
      m.generation = rng.next_u64();
      m.data_port = static_cast<std::uint32_t>(rng.uniform_int(0, 65535));
      const auto n = rng.uniform_int(0, 40);
      for (std::uint64_t i = 0; i < n; ++i) {
        m.objects.push_back("obj-" + std::to_string(rng.uniform_int(0, 999)));
      }
      messages.push_back(std::move(m));
    }
    messages.push_back(
        DataFetch{"blob-" + std::to_string(rng.uniform_int(0, 999))});
    {
      std::string payload(rng.uniform_int(0, 512), '\0');
      for (auto& c : payload) c = static_cast<char>(rng.next_u64());
      messages.push_back(make_data_fetch_reply(
          "blob-" + std::to_string(rng.uniform_int(0, 999)), rng.next_u64(),
          std::move(payload)));
    }
    messages.push_back(DataEvict{
        ExecutorId{rng.next_u64()},
        "obj-" + std::to_string(rng.uniform_int(0, 999))});
    // Push-mode result streaming (docs/PROTOCOL.md).
    messages.push_back(
        SubscribeResults{InstanceId{rng.next_u64()}, rng.next_u64()});
    {
      ResultStream m;
      m.instance_id = InstanceId{rng.next_u64()};
      m.seq = rng.next_u64();
      const auto n = rng.uniform_int(0, 16);
      for (std::uint64_t i = 0; i < n; ++i) {
        TaskResult result;
        result.task_id = TaskId{rng.next_u64()};
        result.executor_id = ExecutorId{rng.next_u64()};
        result.exit_code = static_cast<int>(rng.uniform_int(0, 2));
        m.results.push_back(std::move(result));
      }
      messages.push_back(std::move(m));
    }

    for (const auto& message : messages) {
      auto bytes = encode_message(message);
      auto decoded = decode_message(bytes);
      ASSERT_TRUE(decoded.ok()) << decoded.error().str();
      EXPECT_EQ(message_type(decoded.value()), message_type(message));
      // Re-encode must be byte-identical (canonical encoding).
      EXPECT_EQ(encode_message(decoded.value()), bytes);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MessageRoundtrip,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34));

/// Fuzz property: decoding arbitrary bytes, truncations of valid messages,
/// and bit-flipped valid messages never crashes — it yields either a valid
/// message or kProtocolError.
class DecoderFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DecoderFuzz, NeverCrashesOnHostileInput) {
  falkon::Rng rng(GetParam());
  // 1. Pure random bytes.
  for (int i = 0; i < 200; ++i) {
    std::vector<std::uint8_t> bytes(rng.uniform_int(0, 64));
    for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.next_u64());
    auto decoded = decode_message(bytes);
    if (!decoded.ok()) {
      EXPECT_EQ(decoded.error().code, ErrorCode::kProtocolError);
    }
  }
  // 2. Truncations of a valid message.
  SubmitRequest request;
  request.instance_id = InstanceId{1};
  for (std::uint64_t i = 1; i <= 5; ++i) request.tasks.push_back(sample_spec(i));
  const auto valid = encode_message(request);
  for (std::size_t cut = 0; cut < valid.size(); ++cut) {
    std::vector<std::uint8_t> truncated(valid.begin(),
                                        valid.begin() + static_cast<std::ptrdiff_t>(cut));
    auto decoded = decode_message(truncated);
    (void)decoded;  // must simply not crash; short prefixes may decode
  }
  // 3. Single-byte corruptions.
  for (int i = 0; i < 300; ++i) {
    auto corrupted = valid;
    const auto at = rng.uniform_int(0, corrupted.size() - 1);
    corrupted[at] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
    auto decoded = decode_message(corrupted);
    (void)decoded;  // either ok (harmless flip) or protocol error
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DecoderFuzz, ::testing::Values(11, 22, 33, 44));

/// Epoch-field fuzz: every epoch-carrying message survives truncation at
/// every byte boundary — including cuts through the (trailing) epoch
/// varint — and random corruption, yielding a clean decode or
/// kProtocolError, never a crash or a torn half-message.
class EpochFieldFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EpochFieldFuzz, TruncatedOrCorruptEpochFramesFailCleanly) {
  falkon::Rng rng(GetParam());
  // Large epochs stress the full varint width.
  const std::uint64_t epoch = rng.next_u64() | (1ull << 63);

  std::vector<Message> messages;
  {
    SubmitRequest m;
    m.instance_id = InstanceId{rng.next_u64()};
    m.tasks.push_back(sample_spec(rng.next_u64()));
    m.epoch = epoch;
    messages.push_back(std::move(m));
  }
  {
    ReplFetch m;
    m.from_lsn = rng.next_u64();
    m.epoch = epoch;
    messages.push_back(m);
  }
  {
    ReplAppend m;
    m.first_lsn = 1;
    m.last_lsn = 2;
    m.payload = "framed-records";
    m.epoch = epoch;
    messages.push_back(std::move(m));
  }
  {
    ReplSnapshot m;
    m.lsn = rng.next_u64();
    m.payload = "image";
    m.epoch = epoch;
    messages.push_back(std::move(m));
  }
  messages.push_back(ReplAck{rng.next_u64(), epoch});
  messages.push_back(ElectionPing{epoch, 3, rng.next_u64()});
  messages.push_back(ElectionAck{epoch, 3, rng.next_u64(), true});

  for (const auto& message : messages) {
    const auto valid = encode_message(message);

    // Truncation at every boundary: the trailing cuts land inside the
    // epoch varint itself.
    for (std::size_t cut = 0; cut < valid.size(); ++cut) {
      std::vector<std::uint8_t> truncated(
          valid.begin(), valid.begin() + static_cast<std::ptrdiff_t>(cut));
      auto decoded = decode_message(truncated);
      if (!decoded.ok()) {
        EXPECT_EQ(decoded.error().code, ErrorCode::kProtocolError);
      } else {
        // A shorter prefix that still decodes must not impersonate the
        // original stamped message.
        EXPECT_NE(encode_message(decoded.value()), valid);
      }
    }

    // Random byte corruption never crashes the decoder.
    for (int i = 0; i < 100; ++i) {
      auto corrupted = valid;
      const auto at = rng.uniform_int(0, corrupted.size() - 1);
      corrupted[at] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
      auto decoded = decode_message(corrupted);
      if (!decoded.ok()) {
        EXPECT_EQ(decoded.error().code, ErrorCode::kProtocolError);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EpochFieldFuzz, ::testing::Values(7, 19, 53));

/// In-memory ByteStream for framing tests.
class MemoryStream final : public ByteStream {
 public:
  Status write_all(const void* data, std::size_t size) override {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buffer_.insert(buffer_.end(), p, p + size);
    return ok_status();
  }
  Status read_exact(void* data, std::size_t size) override {
    if (buffer_.size() - read_pos_ < size) {
      return make_error(ErrorCode::kClosed, "eof");
    }
    std::memcpy(data, buffer_.data() + read_pos_, size);
    read_pos_ += size;
    return ok_status();
  }

 private:
  std::vector<std::uint8_t> buffer_;
  std::size_t read_pos_{0};
};

TEST(Framing, RoundtripMultipleFrames) {
  MemoryStream stream;
  ASSERT_TRUE(write_frame(stream, {1, 2, 3}).ok());
  ASSERT_TRUE(write_frame(stream, {}).ok());
  ASSERT_TRUE(write_frame(stream, std::vector<std::uint8_t>(1000, 7)).ok());

  auto f1 = read_frame(stream);
  ASSERT_TRUE(f1.ok());
  EXPECT_EQ(f1.value(), (std::vector<std::uint8_t>{1, 2, 3}));
  auto f2 = read_frame(stream);
  ASSERT_TRUE(f2.ok());
  EXPECT_TRUE(f2.value().empty());
  auto f3 = read_frame(stream);
  ASSERT_TRUE(f3.ok());
  EXPECT_EQ(f3.value().size(), 1000u);
  EXPECT_FALSE(read_frame(stream).ok());  // EOF
}

TEST(Framing, RejectsOversizedLength) {
  MemoryStream stream;
  const std::uint32_t huge = 0xffffffff;
  ASSERT_TRUE(stream.write_all(&huge, 4).ok());
  auto frame = read_frame(stream);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.error().code, ErrorCode::kProtocolError);
}

TEST(Framing, RejectsTruncatedPayloadAsProtocolError) {
  // A header promising 100 bytes followed by only 10: the reader must
  // report a clean protocol error (truncated frame), not a bare EOF that
  // looks like an orderly close.
  MemoryStream stream;
  const std::uint32_t length = 100;
  ASSERT_TRUE(stream.write_all(&length, 4).ok());
  const std::vector<std::uint8_t> partial(10, 0xaa);
  ASSERT_TRUE(stream.write_all(partial.data(), partial.size()).ok());
  auto frame = read_frame(stream);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.error().code, ErrorCode::kProtocolError);
  EXPECT_NE(frame.error().message.find("truncated"), std::string::npos);
}

TEST(Framing, CorrelationIdSurvivesRoundtrip) {
  MemoryStream stream;
  ASSERT_TRUE(write_frame(stream, 0xdeadbeefcafeULL, {1, 2, 3}).ok());
  ASSERT_TRUE(write_frame(stream, {4, 5}).ok());  // push-style frame: corr 0

  Frame frame;
  ASSERT_TRUE(read_frame(stream, frame).ok());
  EXPECT_EQ(frame.corr, 0xdeadbeefcafeULL);
  EXPECT_EQ(frame.payload, (std::vector<std::uint8_t>{1, 2, 3}));
  ASSERT_TRUE(read_frame(stream, frame).ok());
  EXPECT_EQ(frame.corr, 0u);
  EXPECT_EQ(frame.payload, (std::vector<std::uint8_t>{4, 5}));
}

TEST(Framing, GatheredWriteMatchesIndividualFrames) {
  // write_frames (the server's coalesced path) must put the same bytes on
  // the wire as one write_frame per PendingFrame.
  std::vector<PendingFrame> batch(3);
  batch[0] = PendingFrame{101, {0xaa}};
  batch[1] = PendingFrame{102, {}};
  batch[2] = PendingFrame{103, std::vector<std::uint8_t>(500, 0x55)};

  MemoryStream gathered;
  std::vector<std::uint8_t> scratch;
  ASSERT_TRUE(write_frames(gathered, batch.data(), batch.size(), scratch).ok());

  Frame frame;
  for (const auto& expected : batch) {
    ASSERT_TRUE(read_frame(gathered, frame).ok());
    EXPECT_EQ(frame.corr, expected.corr);
    EXPECT_EQ(frame.payload, expected.payload);
  }
  EXPECT_EQ(read_frame(gathered, frame).error().code, ErrorCode::kClosed);
}

TEST(Framing, CleanEofAtFrameBoundaryIsNotProtocolError) {
  // EOF between frames is an orderly close (kClosed), distinct from a
  // truncation inside a frame.
  MemoryStream stream;
  ASSERT_TRUE(write_frame(stream, {1, 2, 3}).ok());
  ASSERT_TRUE(read_frame(stream).ok());
  auto eof = read_frame(stream);
  ASSERT_FALSE(eof.ok());
  EXPECT_EQ(eof.error().code, ErrorCode::kClosed);
}

TEST(Message, HeartbeatRoundtrip) {
  HeartbeatRequest request;
  request.executor_id = ExecutorId{0xfeedULL};
  request.has_digest = true;
  request.digest_generation = 41;
  request.data_port = 9444;
  request.cached = {"obj-a", "obj-b"};
  auto bytes = encode_message(request);
  auto decoded = decode_message(bytes);
  ASSERT_TRUE(decoded.ok());
  const auto* reply = std::get_if<HeartbeatRequest>(&decoded.value());
  ASSERT_NE(reply, nullptr);
  EXPECT_EQ(reply->executor_id.value, 0xfeedULL);
  EXPECT_TRUE(reply->has_digest);
  EXPECT_EQ(reply->digest_generation, 41u);
  EXPECT_EQ(reply->data_port, 9444u);
  EXPECT_EQ(reply->cached, request.cached);
  EXPECT_EQ(message_type(decoded.value()), MsgType::kHeartbeatRequest);

  auto pong = decode_message(encode_message(HeartbeatReply{}));
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(message_type(pong.value()), MsgType::kHeartbeatReply);
}

TEST(Message, DataPlaneMessagesRoundtrip) {
  CacheDigest digest;
  digest.executor_id = ExecutorId{17};
  digest.generation = 5;
  digest.data_port = 40123;
  digest.objects = {"obj-a", "obj-b", "obj-c"};
  auto decoded = decode_message(encode_message(digest));
  ASSERT_TRUE(decoded.ok());
  const auto* d = std::get_if<CacheDigest>(&decoded.value());
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->executor_id.value, 17u);
  EXPECT_EQ(d->generation, 5u);
  EXPECT_EQ(d->data_port, 40123u);
  EXPECT_EQ(d->objects, digest.objects);

  auto fetch = decode_message(encode_message(DataFetch{"obj-b"}));
  ASSERT_TRUE(fetch.ok());
  ASSERT_NE(std::get_if<DataFetch>(&fetch.value()), nullptr);
  EXPECT_EQ(std::get_if<DataFetch>(&fetch.value())->object, "obj-b");

  const DataFetchReply reply =
      make_data_fetch_reply("obj-b", 1 << 20, "payload-bytes");
  EXPECT_EQ(reply.crc, crc32("payload-bytes", 13));
  auto fetched = decode_message(encode_message(reply));
  ASSERT_TRUE(fetched.ok());
  const auto* fr = std::get_if<DataFetchReply>(&fetched.value());
  ASSERT_NE(fr, nullptr);
  EXPECT_EQ(fr->object, "obj-b");
  EXPECT_EQ(fr->object_bytes, 1u << 20);
  EXPECT_EQ(fr->payload, "payload-bytes");
  EXPECT_EQ(fr->crc, reply.crc);

  auto evict = decode_message(encode_message(DataEvict{ExecutorId{17}, "obj-a"}));
  ASSERT_TRUE(evict.ok());
  const auto* ev = std::get_if<DataEvict>(&evict.value());
  ASSERT_NE(ev, nullptr);
  EXPECT_EQ(ev->executor_id.value, 17u);
  EXPECT_EQ(ev->object, "obj-a");
}

TEST(Message, DataFetchReplyCrcMismatchIsProtocolError) {
  // A payload byte flip must fail the embedded CRC at decode, and a
  // tampered CRC field must fail against the (intact) payload.
  const std::string payload = "the-object-bytes";
  const auto valid = encode_message(make_data_fetch_reply("obj-x", 4096, payload));
  {
    auto corrupted = valid;
    // Locate the payload bytes in the frame and flip one of them.
    const auto it = std::search(corrupted.begin(), corrupted.end(),
                                payload.begin(), payload.end());
    ASSERT_NE(it, corrupted.end());
    *(it + 4) ^= 0x40;
    auto decoded = decode_message(corrupted);
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.error().code, ErrorCode::kProtocolError);
  }
  {
    auto corrupted = valid;
    corrupted.back() ^= 0x01;  // trailing u32 CRC
    auto decoded = decode_message(corrupted);
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.error().code, ErrorCode::kProtocolError);
  }
}

TEST(Message, DataFetchReplyLengthMismatchFailsCleanly) {
  // A length prefix promising more payload than the frame carries must be
  // a clean protocol error (underrun), never an allocation or a crash.
  DataFetchReply reply = make_data_fetch_reply("obj-x", 64, "0123456789");
  auto bytes = encode_message(reply);
  // Drop the trailing 8 bytes (payload tail + CRC): the payload string's
  // length prefix now promises bytes past the end of the buffer.
  bytes.resize(bytes.size() - 8);
  auto decoded = decode_message(bytes);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.error().code, ErrorCode::kProtocolError);
}

TEST(Message, CacheDigestCountExceedingFrameIsProtocolError) {
  // Hand-craft a digest whose object count (or entry length) claims far
  // more than the buffer holds — the decoder must reject before
  // allocating, not tear down with a bad_alloc or over-read.
  const std::uint8_t tag = encode_message(CacheDigest{})[0];
  {
    Writer w;
    w.put_u64(1);              // executor_id
    w.put_u64(2);              // generation
    w.put_u32(0);              // data_port
    w.put_varint(1u << 30);    // a billion digest entries, zero bytes behind
    std::vector<std::uint8_t> bytes{tag};
    bytes.insert(bytes.end(), w.data().begin(), w.data().end());
    auto decoded = decode_message(bytes);
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.error().code, ErrorCode::kProtocolError);
  }
  {
    Writer w;
    w.put_u64(1);
    w.put_u64(2);
    w.put_u32(0);
    w.put_varint(1);            // one entry...
    w.put_varint(300'000'000);  // ...claiming to exceed the 256 MiB frame cap
    std::vector<std::uint8_t> bytes{tag};
    bytes.insert(bytes.end(), w.data().begin(), w.data().end());
    auto decoded = decode_message(bytes);
    ASSERT_FALSE(decoded.ok());
    EXPECT_EQ(decoded.error().code, ErrorCode::kProtocolError);
  }
}

/// Fuzz the four data-plane messages: truncation at every byte boundary
/// and random corruption must yield a clean decode or kProtocolError —
/// never a crash — mirroring EpochFieldFuzz for the data wire.
class DataPlaneWireFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(DataPlaneWireFuzz, TruncatedOrCorruptDataFramesFailCleanly) {
  falkon::Rng rng(GetParam());

  std::vector<Message> messages;
  {
    CacheDigest m;
    m.executor_id = ExecutorId{rng.next_u64()};
    m.generation = rng.next_u64();
    m.data_port = static_cast<std::uint32_t>(rng.uniform_int(1, 65535));
    const auto n = rng.uniform_int(1, 24);
    for (std::uint64_t i = 0; i < n; ++i) {
      m.objects.push_back("digest-obj-" + std::to_string(rng.next_u64()));
    }
    messages.push_back(std::move(m));
  }
  messages.push_back(DataFetch{"fetch-" + std::to_string(rng.next_u64())});
  {
    std::string payload(rng.uniform_int(1, 256), '\0');
    for (auto& c : payload) c = static_cast<char>(rng.next_u64());
    messages.push_back(
        make_data_fetch_reply("reply-" + std::to_string(rng.next_u64()),
                              rng.next_u64(), std::move(payload)));
  }
  messages.push_back(DataEvict{ExecutorId{rng.next_u64()},
                               "evict-" + std::to_string(rng.next_u64())});

  for (const auto& message : messages) {
    const auto valid = encode_message(message);

    for (std::size_t cut = 0; cut < valid.size(); ++cut) {
      std::vector<std::uint8_t> truncated(
          valid.begin(), valid.begin() + static_cast<std::ptrdiff_t>(cut));
      auto decoded = decode_message(truncated);
      if (!decoded.ok()) {
        EXPECT_EQ(decoded.error().code, ErrorCode::kProtocolError);
      } else {
        // A decodable prefix must not impersonate the full message.
        EXPECT_NE(encode_message(decoded.value()), valid);
      }
    }

    for (int i = 0; i < 200; ++i) {
      auto corrupted = valid;
      const auto at = rng.uniform_int(0, corrupted.size() - 1);
      corrupted[at] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
      auto decoded = decode_message(corrupted);
      if (!decoded.ok()) {
        EXPECT_EQ(decoded.error().code, ErrorCode::kProtocolError);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DataPlaneWireFuzz,
                         ::testing::Values(13, 37, 97));

/// Fuzz property over the *framing* layer: byte streams assembled from
/// valid frames and then mutated (bit flips, truncations, length tampering)
/// must never crash the reader — every frame either decodes or fails with a
/// clean error, and the reader never spins forever.
class FramingFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(FramingFuzz, MutatedFrameStreamsFailCleanly) {
  falkon::Rng rng(GetParam());
  // Assemble a pristine multi-frame stream of real protocol messages.
  std::vector<std::uint8_t> pristine;
  {
    struct Capture final : ByteStream {
      std::vector<std::uint8_t>* out;
      explicit Capture(std::vector<std::uint8_t>* out) : out(out) {}
      Status write_all(const void* data, std::size_t size) override {
        const auto* p = static_cast<const std::uint8_t*>(data);
        out->insert(out->end(), p, p + size);
        return ok_status();
      }
      Status read_exact(void*, std::size_t) override {
        return make_error(ErrorCode::kInternal, "write-only");
      }
    } capture{&pristine};
    (void)write_frame(capture, encode_message(Notify{ExecutorId{1}, 1}));
    (void)write_frame(capture, encode_message(GetWorkRequest{ExecutorId{1}, 4}));
    SubmitRequest submit;
    submit.instance_id = InstanceId{2};
    for (std::uint64_t i = 1; i <= 3; ++i) submit.tasks.push_back(sample_spec(i));
    (void)write_frame(capture, encode_message(submit));
    (void)write_frame(capture, encode_message(HeartbeatRequest{ExecutorId{9}}));
    TaskBundle bundle;
    bundle.executor_id = ExecutorId{4};
    bundle.bundle_seq = 12;
    bundle.tasks.push_back(sample_spec(8));
    // Pipelined frame with a non-zero correlation id in the header.
    (void)write_frame(capture, /*corr=*/0x1234, encode_message(bundle));
  }

  for (int round = 0; round < 300; ++round) {
    auto bytes = pristine;
    // Mutate: either truncate the stream or flip a handful of bits.
    if (rng.bernoulli(0.3)) {
      bytes.resize(rng.uniform_int(0, bytes.size()));
    } else {
      const auto flips = rng.uniform_int(1, 8);
      for (std::uint64_t f = 0; f < flips && !bytes.empty(); ++f) {
        const auto at = rng.uniform_int(0, bytes.size() - 1);
        bytes[at] ^= static_cast<std::uint8_t>(1u << rng.uniform_int(0, 7));
      }
    }
    MemoryStream stream;
    if (!bytes.empty()) {
      ASSERT_TRUE(stream.write_all(bytes.data(), bytes.size()).ok());
    }
    // Read frames until the stream errors; bounded by the frame count so a
    // corrupted length cannot make us loop forever.
    for (int frames = 0; frames < 16; ++frames) {
      auto frame = read_frame(stream);
      if (!frame.ok()) {
        EXPECT_TRUE(frame.error().code == ErrorCode::kProtocolError ||
                    frame.error().code == ErrorCode::kClosed)
            << frame.error().str();
        break;
      }
      auto decoded = decode_message(frame.value());
      if (!decoded.ok()) {
        EXPECT_EQ(decoded.error().code, ErrorCode::kProtocolError);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FramingFuzz, ::testing::Values(3, 17, 29, 71));

}  // namespace
}  // namespace falkon::wire
