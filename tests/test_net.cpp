// TCP substrate tests: sockets, the reactor event loop, RPC
// request/response, push notifications, and the watermark backpressure and
// fd-exhaustion paths of the server side.
#include <fcntl.h>
#include <gtest/gtest.h>
#include <sys/resource.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <vector>

#include "net/rpc.h"
#include "net/socket.h"
#include "obs/obs.h"
#include "wire/framing.h"

namespace falkon::net {
namespace {

TEST(Socket, ListenerPicksEphemeralPort) {
  auto listener = TcpListener::bind(0);
  ASSERT_TRUE(listener.ok());
  EXPECT_GT(listener.value().port(), 0);
}

TEST(Socket, ConnectRefusedOnClosedPort) {
  // Bind then immediately close to learn a (probably) dead port.
  auto listener = TcpListener::bind(0);
  ASSERT_TRUE(listener.ok());
  const std::uint16_t port = listener.value().port();
  listener.value().close();
  auto stream = TcpStream::connect("127.0.0.1", port);
  EXPECT_FALSE(stream.ok());
}

TEST(Rpc, EchoCallRoundtrip) {
  RpcServer server;
  ASSERT_TRUE(server
                  .start([](const wire::Message& request) -> wire::Message {
                    if (const auto* notify = std::get_if<wire::Notify>(&request)) {
                      return wire::Notify{notify->executor_id,
                                          notify->resource_key + 1};
                    }
                    return wire::ErrorReply{ErrorCode::kProtocolError, "?"};
                  })
                  .ok());

  auto client = RpcClient::connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  auto reply = client.value().call(wire::Notify{ExecutorId{5}, 41});
  ASSERT_TRUE(reply.ok());
  const auto* notify = std::get_if<wire::Notify>(&reply.value());
  ASSERT_NE(notify, nullptr);
  EXPECT_EQ(notify->resource_key, 42u);
  server.stop();
}

TEST(Rpc, ServerErrorReplySurfacesAsStatus) {
  RpcServer server;
  ASSERT_TRUE(server
                  .start([](const wire::Message&) -> wire::Message {
                    return wire::ErrorReply{ErrorCode::kNotFound, "nope"};
                  })
                  .ok());
  auto client = RpcClient::connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  auto reply = client.value().call(wire::StatusRequest{});
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.error().code, ErrorCode::kNotFound);
  server.stop();
}

TEST(Rpc, ManySequentialCallsOnOneConnection) {
  std::atomic<int> handled{0};
  RpcServer server;
  ASSERT_TRUE(server
                  .start([&](const wire::Message&) -> wire::Message {
                    handled.fetch_add(1);
                    return wire::StatusReply{};
                  })
                  .ok());
  auto client = RpcClient::connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(client.value().call(wire::StatusRequest{}).ok());
  }
  EXPECT_EQ(handled.load(), 200);
  server.stop();
}

TEST(Rpc, MultipleConcurrentClients) {
  RpcServer server;
  ASSERT_TRUE(server
                  .start([](const wire::Message&) -> wire::Message {
                    return wire::StatusReply{};
                  })
                  .ok());
  std::vector<std::thread> threads;
  std::atomic<int> successes{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      auto client = RpcClient::connect("127.0.0.1", server.port());
      if (!client.ok()) return;
      for (int i = 0; i < 50; ++i) {
        if (client.value().call(wire::StatusRequest{}).ok()) {
          successes.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(successes.load(), 8 * 50);
  server.stop();
}

TEST(Rpc, PipelinedCallsShareOneConnection) {
  // Many threads issue calls through ONE client: all calls multiplex over a
  // single connection (correlation ids demux the replies) and every caller
  // gets its own answer back.
  RpcServerOptions options;
  options.handler_threads = 4;
  RpcServer server;
  ASSERT_TRUE(server
                  .start(
                      [](const wire::Message& request) -> wire::Message {
                        const auto* notify = std::get_if<wire::Notify>(&request);
                        if (notify == nullptr) {
                          return wire::ErrorReply{ErrorCode::kProtocolError, "?"};
                        }
                        return wire::Notify{notify->executor_id,
                                            notify->resource_key * 2};
                      },
                      0, nullptr, options)
                  .ok());
  auto client = RpcClient::connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());

  std::atomic<int> correct{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < 50; ++i) {
        const std::uint64_t key = static_cast<std::uint64_t>(t) * 1000 + i;
        auto reply = client.value().call(wire::Notify{ExecutorId{1}, key});
        if (!reply.ok()) continue;
        const auto* notify = std::get_if<wire::Notify>(&reply.value());
        if (notify != nullptr && notify->resource_key == key * 2) {
          correct.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(correct.load(), 8 * 50);
  EXPECT_EQ(server.active_connections(), 1u);
  server.stop();
}

TEST(Rpc, OutOfOrderRepliesRouteByCorrelationId) {
  // A pooled server finishes a fast call while a slow one is still being
  // handled on the same connection; the fast reply overtakes the slow one
  // on the wire and the client must route both correctly.
  constexpr std::uint64_t kSlowKey = 1;
  constexpr std::uint64_t kFastKey = 2;
  RpcServerOptions options;
  options.handler_threads = 2;
  RpcServer server;
  ASSERT_TRUE(server
                  .start(
                      [&](const wire::Message& request) -> wire::Message {
                        const auto* notify = std::get_if<wire::Notify>(&request);
                        if (notify == nullptr) {
                          return wire::ErrorReply{ErrorCode::kProtocolError, "?"};
                        }
                        if (notify->resource_key == kSlowKey) {
                          std::this_thread::sleep_for(
                              std::chrono::milliseconds(300));
                        }
                        return *notify;
                      },
                      0, nullptr, options)
                  .ok());
  auto client = RpcClient::connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());

  std::mutex mu;
  std::vector<std::uint64_t> completion_order;
  std::thread slow([&] {
    auto reply = client.value().call(wire::Notify{ExecutorId{1}, kSlowKey});
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(std::get_if<wire::Notify>(&reply.value())->resource_key, kSlowKey);
    std::lock_guard lock(mu);
    completion_order.push_back(kSlowKey);
  });
  // Give the slow call time to reach the server before racing it.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  auto reply = client.value().call(wire::Notify{ExecutorId{1}, kFastKey});
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(std::get_if<wire::Notify>(&reply.value())->resource_key, kFastKey);
  {
    std::lock_guard lock(mu);
    completion_order.push_back(kFastKey);
  }
  slow.join();
  ASSERT_EQ(completion_order.size(), 2u);
  EXPECT_EQ(completion_order[0], kFastKey);  // overtook the slow call
  EXPECT_EQ(completion_order[1], kSlowKey);
  server.stop();
}

TEST(Rpc, CorruptReplyFailsOnlyItsOwnCall) {
  // Reply #3 is corrupted in-flight (payload bytes flipped, framing intact):
  // exactly that call fails with a protocol error; earlier and later calls
  // on the SAME connection succeed — the stream never desynchronises.
  fault::FaultPlan plan;
  plan.at(fault::Site::kRpcReply, fault::Action::kCorrupt, /*nth_op=*/3);
  fault::FaultInjector inject(plan);
  RpcServer server;
  ASSERT_TRUE(server
                  .start(
                      [](const wire::Message&) -> wire::Message {
                        return wire::StatusReply{};
                      },
                      0, &inject)
                  .ok());
  auto client = RpcClient::connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());

  for (int i = 1; i <= 5; ++i) {
    auto reply = client.value().call(wire::StatusRequest{});
    if (i == 3) {
      ASSERT_FALSE(reply.ok()) << "corrupted reply must fail its call";
      EXPECT_EQ(reply.error().code, ErrorCode::kProtocolError);
    } else {
      EXPECT_TRUE(reply.ok()) << "call " << i << ": " << (reply.ok() ? "" : reply.error().str());
    }
  }
  server.stop();
}

TEST(Rpc, DroppedReplyFailsEveryCallInFlight) {
  // A dropped reply severs the stream (fault semantics at kRpcReply): every
  // call in flight on that connection fails — they were all mapped to the
  // lost stream — and the client stays broken rather than silently hanging.
  fault::FaultPlan plan;
  plan.at(fault::Site::kRpcReply, fault::Action::kDrop, /*nth_op=*/2);
  fault::FaultInjector inject(plan);
  RpcServer server;
  ASSERT_TRUE(server
                  .start(
                      [](const wire::Message&) -> wire::Message {
                        return wire::StatusReply{};
                      },
                      0, &inject)
                  .ok());
  auto client = RpcClient::connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());

  ASSERT_TRUE(client.value().call(wire::StatusRequest{}).ok());

  // Two concurrent calls: reply #2's flush severs the connection, so BOTH
  // fail — one by the drop itself, the other by the stream's death.
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      if (!client.value().call(wire::StatusRequest{}).ok()) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 2);
  // The connection is gone for good; later calls fail fast, never hang.
  EXPECT_FALSE(client.value().call(wire::StatusRequest{}).ok());
  server.stop();
}

TEST(Rpc, InflightGaugeRegistersWithObs) {
  obs::Obs obs;
  RpcServer server;
  ASSERT_TRUE(server
                  .start([](const wire::Message&) -> wire::Message {
                    return wire::StatusReply{};
                  })
                  .ok());
  auto client = RpcClient::connect("127.0.0.1", server.port(), nullptr, &obs);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client.value().call(wire::StatusRequest{}).ok());
  // After a completed call the gauge exists and reads zero in flight.
  EXPECT_EQ(obs.registry().gauge("falkon.net.rpc.inflight").value(), 0.0);
  server.stop();
}

TEST(Push, SubscribeAndReceiveNotifications) {
  PushServer server;
  ASSERT_TRUE(server.start().ok());

  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::uint64_t> received;

  PushReceiver receiver;
  ASSERT_TRUE(receiver
                  .start("127.0.0.1", server.port(), /*key=*/77,
                         [&](const wire::Message& message) {
                           if (const auto* notify =
                                   std::get_if<wire::Notify>(&message)) {
                             std::lock_guard lock(mu);
                             received.push_back(notify->resource_key);
                             cv.notify_all();
                           }
                         })
                  .ok());

  // Subscription is asynchronous; wait for it to land.
  for (int i = 0; i < 100 && server.subscriber_count() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(server.subscriber_count(), 1u);

  for (std::uint64_t k = 1; k <= 5; ++k) {
    ASSERT_TRUE(server.push(77, wire::Notify{ExecutorId{77}, k}).ok());
  }
  {
    std::unique_lock lock(mu);
    cv.wait_for(lock, std::chrono::seconds(5),
                [&] { return received.size() == 5; });
    ASSERT_EQ(received.size(), 5u);
    EXPECT_EQ(received.back(), 5u);
  }
  receiver.stop();
  server.stop();
}

TEST(Push, PushToUnknownKeyFails) {
  PushServer server;
  ASSERT_TRUE(server.start().ok());
  auto status = server.push(12345, wire::Notify{});
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, ErrorCode::kNotFound);
  server.stop();
}

TEST(Reactor, TimersFireOnceAndPeriodicallyUntilCancelled) {
  Reactor reactor;
  ASSERT_TRUE(reactor.start().ok());
  std::atomic<int> once{0};
  std::atomic<int> ticks{0};
  reactor.add_timer(0.01, [&] { once.fetch_add(1); });
  const TimerId periodic = reactor.add_periodic(0.005, [&] {
    ticks.fetch_add(1);
  });
  for (int i = 0; i < 1000 && (once.load() < 1 || ticks.load() < 3); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(once.load(), 1);
  EXPECT_GE(ticks.load(), 3);
  reactor.cancel_timer(periodic);
  reactor.barrier();  // cancellation processed on the loop
  const int after_cancel = ticks.load();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(ticks.load(), after_cancel);
  reactor.stop();
}

// Satellite of the reactor migration: EMFILE on accept must pause the
// listener with backoff (counting falkon.net.accept_rejected) instead of
// spinning or dying, and the pending connection must complete once
// descriptors free up. Runs for both a single loop and a sharded reactor —
// with n_loops > 1 the backoff timer and the retried accept live on the
// listener's home loop while the adopted connection may land on another.
void run_accept_backoff_recovery(int n_loops) {
  obs::Obs obs;
  RpcServerOptions options;
  options.obs = &obs;
  options.n_loops = n_loops;
  RpcServer server;
  ASSERT_TRUE(server
                  .start(
                      [](const wire::Message&) -> wire::Message {
                        return wire::StatusReply{};
                      },
                      0, nullptr, options)
                  .ok());
  auto& rejected = obs.registry().counter("falkon.net.accept_rejected");
  ASSERT_EQ(rejected.value(), 0u);

  // Lower RLIMIT_NOFILE to just above current usage and hoard the rest,
  // keeping exactly one slot free for the client's own socket.
  rlimit old_limit{};
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &old_limit), 0);
  std::vector<int> hoard;
  {
    long used = 0;
    for (int fd = 0; fd < 4096; ++fd) {
      if (::fcntl(fd, F_GETFD) != -1) used = fd + 1;
    }
    rlimit tight = old_limit;
    tight.rlim_cur = static_cast<rlim_t>(used + 8);
    ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &tight), 0);
    int fd = -1;
    while ((fd = ::open("/dev/null", O_RDONLY)) >= 0) hoard.push_back(fd);
    ASSERT_FALSE(hoard.empty());
    ::close(hoard.back());  // the client's slot
    hoard.pop_back();
  }

  // The TCP handshake completes in the kernel backlog; accept4 in the
  // reactor hits EMFILE and backs off.
  auto stream = TcpStream::connect("127.0.0.1", server.port());
  ASSERT_TRUE(stream.ok());
  for (int i = 0; i < 1000 && rejected.value() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(rejected.value(), 1u);

  // Free the descriptors: the next backoff retry adopts the connection and
  // the exchange completes end to end.
  for (int fd : hoard) ::close(fd);
  hoard.clear();
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &old_limit), 0);
  ASSERT_TRUE(wire::write_frame(stream.value(), 1,
                                wire::encode_message(wire::StatusRequest{}))
                  .ok());
  wire::Frame frame;
  ASSERT_TRUE(wire::read_frame(stream.value(), frame).ok());
  EXPECT_EQ(frame.corr, 1u);
  auto reply = wire::decode_message(frame.payload);
  ASSERT_TRUE(reply.ok());
  EXPECT_TRUE(std::holds_alternative<wire::StatusReply>(reply.value()));
  server.stop();
}

TEST(Rpc, AcceptBackoffOnFdExhaustionThenRecovers) {
  run_accept_backoff_recovery(1);
}

TEST(Rpc, AcceptBackoffRecoversWithShardedLoops) {
  run_accept_backoff_recovery(2);
}

TEST(Rpc, WatermarkBackpressureDrainsOversizedRepliesInOrder) {
  // Oversized replies through a tiny SO_SNDBUF and a slow reader: the
  // connection outbox crosses the high watermark, the reactor stops
  // reading the connection (falkon.net.reactor.read_paused), and the
  // backlog drains through partial writev rounds without reordering or
  // corrupting a single frame.
  constexpr std::size_t kReplyBytes = 1u << 20;
  constexpr int kCalls = 6;
  obs::Obs obs;
  RpcServerOptions options;
  options.obs = &obs;
  options.sndbuf_bytes = 4096;
  options.high_watermark_bytes = 64 * 1024;
  options.low_watermark_bytes = 16 * 1024;
  RpcServer server;
  ASSERT_TRUE(server
                  .start(
                      [](const wire::Message& request) -> wire::Message {
                        const auto* notify =
                            std::get_if<wire::Notify>(&request);
                        if (notify == nullptr) {
                          return wire::ErrorReply{ErrorCode::kProtocolError,
                                                  "?"};
                        }
                        wire::WaitResultsReply reply;
                        TaskResult result;
                        result.task_id = TaskId{notify->resource_key};
                        result.stdout_data = std::string(
                            kReplyBytes,
                            static_cast<char>('a' + notify->resource_key % 26));
                        reply.results.push_back(std::move(result));
                        return reply;
                      },
                      0, nullptr, options)
                  .ok());

  auto stream = TcpStream::connect("127.0.0.1", server.port());
  ASSERT_TRUE(stream.ok());
  // Pipeline every request before reading a single reply byte, so the
  // replies (6 MiB total) pile up behind a ~4 KiB send buffer.
  for (std::uint64_t corr = 1; corr <= kCalls; ++corr) {
    ASSERT_TRUE(wire::write_frame(
                    stream.value(), corr,
                    wire::encode_message(wire::Notify{ExecutorId{corr}, corr}))
                    .ok());
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  wire::Frame frame;
  for (std::uint64_t corr = 1; corr <= kCalls; ++corr) {
    // Slow reader: let the outbox stay backed up between frames.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ASSERT_TRUE(wire::read_frame(stream.value(), frame).ok());
    // One shared handler worker => strict FIFO, replies arrive in request
    // order even though the transport stalled mid-frame many times.
    EXPECT_EQ(frame.corr, corr);
    auto reply = wire::decode_message(frame.payload);
    ASSERT_TRUE(reply.ok());
    const auto* results = std::get_if<wire::WaitResultsReply>(&reply.value());
    ASSERT_NE(results, nullptr);
    ASSERT_EQ(results->results.size(), 1u);
    EXPECT_EQ(results->results[0].task_id.value, corr);
    const std::string expected(
        kReplyBytes, static_cast<char>('a' + corr % 26));
    EXPECT_TRUE(results->results[0].stdout_data == expected)
        << "payload corrupted for corr " << corr;
  }
  EXPECT_GE(obs.registry().counter("falkon.net.reactor.read_paused").value(),
            1u);
  server.stop();
}

TEST(Push, SlowSubscriberShedsInsteadOfBlocking) {
  // A subscriber that never reads must not wedge the dispatcher: once its
  // outbox passes the high watermark, push() sheds notifications (counted
  // in falkon.net.push.backpressure_drops) and returns immediately.
  obs::Obs obs;
  PushServerOptions options;
  options.high_watermark_bytes = 64 * 1024;
  options.low_watermark_bytes = 16 * 1024;
  PushServer server;
  ASSERT_TRUE(server.start(0, nullptr, &obs, options).ok());

  auto stream = TcpStream::connect("127.0.0.1", server.port());
  ASSERT_TRUE(stream.ok());
  ASSERT_TRUE(wire::write_frame(stream.value(),
                                wire::encode_message(
                                    wire::Notify{ExecutorId{7}, 0}))
                  .ok());
  for (int i = 0; i < 200 && server.subscriber_count() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(server.subscriber_count(), 1u);

  auto& drops =
      obs.registry().counter("falkon.net.push.backpressure_drops");
  wire::WaitResultsReply big;
  TaskResult result;
  result.stdout_data = std::string(256 * 1024, 'x');
  big.results.push_back(std::move(result));
  for (int i = 0; i < 200 && drops.value() == 0; ++i) {
    // Never blocks and never errors: a full subscriber is shed, not waited
    // on (the stale-notification sweep re-delivers).
    ASSERT_TRUE(server.push(7, big).ok());
  }
  EXPECT_GE(drops.value(), 1u);
  EXPECT_EQ(server.subscriber_count(), 1u);
  server.stop();
}

TEST(Reactor, AcceptedConnectionsDistributeFairlyAcrossLoops) {
  // Round-robin accept handoff: with 4 loops and 12 connections every loop
  // must own exactly 3 — no loop is ever hot-spotted by placement alone.
  Reactor reactor(ReactorOptions{.n_loops = 4});
  ASSERT_TRUE(reactor.start().ok());
  auto listener = TcpListener::bind(0);
  ASSERT_TRUE(listener.ok());
  reactor.add_listener(listener.value().fd(), [&](int fd) {
    reactor.adopt(
        fd,
        [](const std::shared_ptr<Reactor::Conn>& conn, std::uint64_t corr,
           std::vector<std::uint8_t>&& payload) {
          (void)conn->send_frame(corr, payload);
          conn->recycle(std::move(payload));
        },
        [](const std::shared_ptr<Reactor::Conn>&) {});
  });

  std::vector<TcpStream> clients;
  for (int i = 0; i < 12; ++i) {
    auto stream = TcpStream::connect("127.0.0.1", listener.value().port());
    ASSERT_TRUE(stream.ok());
    clients.push_back(stream.take());
  }
  for (int i = 0; i < 1000 && reactor.open_connections() < 12; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(reactor.open_connections(), 12u);
  reactor.barrier();
  const auto per_loop = reactor.connections_per_loop();
  ASSERT_EQ(per_loop.size(), 4u);
  for (std::size_t loop = 0; loop < per_loop.size(); ++loop) {
    EXPECT_EQ(per_loop[loop], 3u) << "loop " << loop;
  }
  clients.clear();
  reactor.remove_listener(listener.value().fd());
  reactor.stop();
}

TEST(Reactor, ReuseportSiblingListenersKeepConnectionsOnAcceptingLoop) {
  // SO_REUSEPORT accept mode: one listener per loop on the same port, the
  // kernel balances accepts across them, and each accepted connection is
  // adopted on the loop that accepted it instead of being handed off
  // round-robin to another loop's thread.
  Reactor reactor(ReactorOptions{.n_loops = 2, .reuseport = true});
  ASSERT_TRUE(reactor.start().ok());
  auto primary = TcpListener::bind(0, /*reuseport=*/true);
  ASSERT_TRUE(primary.ok());
  auto sibling = TcpListener::bind(primary.value().port(), /*reuseport=*/true);
  ASSERT_TRUE(sibling.ok()) << sibling.error().str();
  auto on_accept = [&](int fd) {
    reactor.adopt(
        fd,
        [](const std::shared_ptr<Reactor::Conn>& conn, std::uint64_t corr,
           std::vector<std::uint8_t>&& payload) {
          (void)conn->send_frame(corr, payload);
          conn->recycle(std::move(payload));
        },
        [](const std::shared_ptr<Reactor::Conn>&) {});
  };
  reactor.add_listener(primary.value().fd(), on_accept);
  reactor.add_listener(sibling.value().fd(), on_accept);

  std::vector<TcpStream> clients;
  for (int i = 0; i < 32; ++i) {
    auto stream = TcpStream::connect("127.0.0.1", primary.value().port());
    ASSERT_TRUE(stream.ok());
    clients.push_back(stream.take());
  }
  for (int i = 0; i < 1000 && reactor.open_connections() < 32; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(reactor.open_connections(), 32u);
  reactor.barrier();
  const auto per_loop = reactor.connections_per_loop();
  ASSERT_EQ(per_loop.size(), 2u);
  EXPECT_EQ(per_loop[0] + per_loop[1], 32u);
  // The kernel's 4-tuple hash spreads 32 distinct source ports over both
  // listeners; all-on-one odds are ~2^-31, so both loops must own some.
  EXPECT_GE(per_loop[0], 1u);
  EXPECT_GE(per_loop[1], 1u);
  clients.clear();
  reactor.remove_listener(primary.value().fd());
  reactor.remove_listener(sibling.value().fd());
  reactor.stop();
}

TEST(Reactor, SetAffinityMigratesAndForeignThreadSendLandsOnOwner) {
  // Pinning a connection moves it to loops[key % n_loops]; a send_frame
  // issued from a thread that is not the owning loop (here: the test
  // thread) must still drain through the owner's flush path and arrive
  // intact on the wire.
  obs::Obs obs;
  Reactor reactor(ReactorOptions{.n_loops = 4, .obs = &obs});
  ASSERT_TRUE(reactor.start().ok());
  auto listener = TcpListener::bind(0);
  ASSERT_TRUE(listener.ok());
  std::mutex mu;
  std::vector<std::shared_ptr<Reactor::Conn>> conns;
  reactor.add_listener(listener.value().fd(), [&](int fd) {
    auto conn = reactor.adopt(
        fd,
        [](const std::shared_ptr<Reactor::Conn>&, std::uint64_t,
           std::vector<std::uint8_t>&&) {},
        [](const std::shared_ptr<Reactor::Conn>&) {});
    std::lock_guard<std::mutex> lock(mu);
    conns.push_back(std::move(conn));
  });

  std::vector<TcpStream> clients;
  for (int i = 0; i < 8; ++i) {
    auto stream = TcpStream::connect("127.0.0.1", listener.value().port());
    ASSERT_TRUE(stream.ok());
    clients.push_back(stream.take());
  }
  for (int i = 0; i < 1000 && reactor.open_connections() < 8; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(reactor.open_connections(), 8u);

  // Pin connection i to key 101 + i: owner becomes loop (101 + i) % 4 —
  // one over from where round-robin accept placed it, so every
  // connection genuinely migrates.
  {
    std::lock_guard<std::mutex> lock(mu);
    ASSERT_EQ(conns.size(), 8u);
    for (std::size_t i = 0; i < conns.size(); ++i) {
      conns[i]->set_affinity(101 + i);
    }
  }
  // Twice: the first barrier drains the migrate ops on the old owners
  // (which post registration ops to the targets), the second drains those
  // registrations.
  reactor.barrier();
  reactor.barrier();
  for (std::size_t i = 0; i < 8; ++i) {
    EXPECT_EQ(conns[i]->owner_loop_index(),
              static_cast<int>((101 + i) % 4))
        << "conn " << i;
  }
  // Migration preserved fairness: keys 101..108 cover each loop twice.
  const auto per_loop = reactor.connections_per_loop();
  for (std::size_t loop = 0; loop < per_loop.size(); ++loop) {
    EXPECT_EQ(per_loop[loop], 2u) << "loop " << loop;
  }
  EXPECT_GE(obs.registry().counter("falkon.net.reactor.migrations").value(),
            1u);

  // Foreign-thread sends: one frame to every connection, all from here.
  const std::vector<std::uint8_t> payload = {1, 2, 3, 4, 5};
  for (std::size_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(conns[i]->send_frame(i + 1, payload).ok());
  }
  wire::Frame frame;
  for (std::size_t i = 0; i < 8; ++i) {
    ASSERT_TRUE(wire::read_frame(clients[i], frame).ok());
    EXPECT_EQ(frame.corr, i + 1);
    EXPECT_EQ(frame.payload, payload);
  }
  clients.clear();
  reactor.remove_listener(listener.value().fd());
  reactor.stop();
}

TEST(Rpc, AffinityKeyPinsConnectionsToKeyedLoop) {
  // The RPC decode path applies the server's affinity_key extractor: four
  // connections whose requests all carry keys that map to loop 0 end up
  // owned by loop 0, regardless of where round-robin accept placed them.
  Reactor reactor(ReactorOptions{.n_loops = 4});
  ASSERT_TRUE(reactor.start().ok());
  RpcServerOptions options;
  options.reactor = &reactor;
  options.affinity_key = [](const wire::Message& request) -> std::uint64_t {
    const auto* notify = std::get_if<wire::Notify>(&request);
    return notify != nullptr ? notify->executor_id.value : 0;
  };
  RpcServer server;
  ASSERT_TRUE(server
                  .start([](const wire::Message&) -> wire::Message {
                    return wire::StatusReply{};
                  },
                  0, nullptr, options)
                  .ok());

  std::vector<RpcClient> clients;
  for (int i = 1; i <= 4; ++i) {
    auto client = RpcClient::connect("127.0.0.1", server.port());
    ASSERT_TRUE(client.ok());
    // Key 4*i: every connection maps to loop (4*i) % 4 == 0.
    ASSERT_TRUE(client.value()
                    .call(wire::Notify{ExecutorId{4u * static_cast<std::uint64_t>(i)}, 0})
                    .ok());
    clients.push_back(std::move(client.value()));
  }
  reactor.barrier();
  reactor.barrier();  // second pass covers migrate -> target registration
  const auto per_loop = reactor.connections_per_loop();
  ASSERT_EQ(per_loop.size(), 4u);
  EXPECT_EQ(per_loop[0], 4u);
  EXPECT_EQ(per_loop[1] + per_loop[2] + per_loop[3], 0u);
  for (auto& client : clients) client.close();
  server.stop();
  reactor.stop();
}

TEST(Rpc, WatermarkBackpressureIsolatedPerLoop) {
  // Two connections pinned to different loops: one wedges itself behind a
  // tiny SO_SNDBUF with oversized replies it never reads (its loop pauses
  // reading it), while the other keeps completing fast roundtrips — a
  // stalled connection's backlog must never leak backpressure into a loop
  // it does not live on.
  constexpr std::size_t kReplyBytes = 1u << 20;
  obs::Obs obs;
  RpcServerOptions options;
  options.obs = &obs;
  options.n_loops = 2;
  options.handler_threads = 2;
  options.sndbuf_bytes = 4096;
  options.high_watermark_bytes = 64 * 1024;
  options.low_watermark_bytes = 16 * 1024;
  options.affinity_key = [](const wire::Message& request) -> std::uint64_t {
    const auto* notify = std::get_if<wire::Notify>(&request);
    return notify != nullptr ? notify->executor_id.value : 0;
  };
  RpcServer server;
  ASSERT_TRUE(server
                  .start(
                      [](const wire::Message& request) -> wire::Message {
                        const auto* notify =
                            std::get_if<wire::Notify>(&request);
                        if (notify == nullptr) {
                          return wire::ErrorReply{ErrorCode::kProtocolError,
                                                  "?"};
                        }
                        if (notify->resource_key == 0) {
                          // Fast path: tiny echo.
                          return wire::StatusReply{};
                        }
                        wire::WaitResultsReply reply;
                        TaskResult result;
                        result.task_id = TaskId{notify->resource_key};
                        result.stdout_data = std::string(kReplyBytes, 'x');
                        reply.results.push_back(std::move(result));
                        return reply;
                      },
                      0, nullptr, options)
                  .ok());

  // Slow connection, pinned to loop 1 % 2 == 1: pipeline six 1 MiB replies
  // and never read a byte.
  auto slow = TcpStream::connect("127.0.0.1", server.port());
  ASSERT_TRUE(slow.ok());
  for (std::uint64_t corr = 1; corr <= 6; ++corr) {
    ASSERT_TRUE(wire::write_frame(
                    slow.value(), corr,
                    wire::encode_message(wire::Notify{ExecutorId{1}, corr}))
                    .ok());
  }
  auto& paused = obs.registry().counter("falkon.net.reactor.read_paused");
  for (int i = 0; i < 1000 && paused.value() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_GE(paused.value(), 1u);

  // Fast connection, pinned to loop 2 % 2 == 0: every echo completes while
  // the other loop's connection sits read-paused with a full outbox.
  auto fast = RpcClient::connect("127.0.0.1", server.port());
  ASSERT_TRUE(fast.ok());
  for (int i = 0; i < 100; ++i) {
    auto reply = fast.value().call(wire::Notify{ExecutorId{2}, 0});
    ASSERT_TRUE(reply.ok());
    ASSERT_TRUE(std::holds_alternative<wire::StatusReply>(reply.value()));
  }
  fast.value().close();
  server.stop();
}

TEST(Push, NotifyFromForeignThreadLandsOnOwningLoop) {
  // The product path of set_affinity: push subscribers migrate to
  // loops[key % n_loops] on subscribe, and PushServer::push() — called
  // from dispatcher threads that own no loop — must land every frame on
  // the subscriber's owning loop and out the right socket.
  Reactor reactor(ReactorOptions{.n_loops = 4});
  ASSERT_TRUE(reactor.start().ok());
  PushServerOptions options;
  options.reactor = &reactor;
  PushServer server;
  ASSERT_TRUE(server.start(0, nullptr, nullptr, options).ok());

  constexpr int kSubscribers = 8;
  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::uint64_t> received;
  std::vector<PushReceiver> receivers(kSubscribers);
  for (int key = 0; key < kSubscribers; ++key) {
    ASSERT_TRUE(receivers[static_cast<std::size_t>(key)]
                    .start("127.0.0.1", server.port(),
                           static_cast<std::uint64_t>(key),
                           [&, key](const wire::Message& message) {
                             const auto* notify =
                                 std::get_if<wire::Notify>(&message);
                             if (notify == nullptr) return;
                             std::lock_guard<std::mutex> lock(mu);
                             received.push_back(
                                 static_cast<std::uint64_t>(key) * 1000 +
                                 notify->resource_key);
                             cv.notify_all();
                           })
                    .ok());
  }
  for (int i = 0; i < 1000 && server.subscriber_count() < kSubscribers; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  ASSERT_EQ(server.subscriber_count(),
            static_cast<std::size_t>(kSubscribers));
  reactor.barrier();
  reactor.barrier();  // second pass covers migrate -> target registration
  // Subscription pinned each connection to key % 4 — two per loop.
  const auto per_loop = reactor.connections_per_loop();
  for (std::size_t loop = 0; loop < per_loop.size(); ++loop) {
    EXPECT_EQ(per_loop[loop], 2u) << "loop " << loop;
  }

  // Push to every key from this (non-loop) thread.
  for (int key = 0; key < kSubscribers; ++key) {
    ASSERT_TRUE(
        server
            .push(static_cast<std::uint64_t>(key),
                  wire::Notify{ExecutorId{static_cast<std::uint64_t>(key)},
                               static_cast<std::uint64_t>(key) + 7})
            .ok());
  }
  {
    std::unique_lock<std::mutex> lock(mu);
    ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5), [&] {
      return received.size() >= static_cast<std::size_t>(kSubscribers);
    }));
    std::vector<std::uint64_t> sorted = received;
    std::sort(sorted.begin(), sorted.end());
    for (int key = 0; key < kSubscribers; ++key) {
      EXPECT_EQ(sorted[static_cast<std::size_t>(key)],
                static_cast<std::uint64_t>(key) * 1000 +
                    static_cast<std::uint64_t>(key) + 7);
    }
  }
  for (auto& receiver : receivers) receiver.stop();
  server.stop();
  reactor.stop();
}

TEST(Push, DropSubscriberSeversChannel) {
  PushServer server;
  ASSERT_TRUE(server.start().ok());
  PushReceiver receiver;
  ASSERT_TRUE(receiver.start("127.0.0.1", server.port(), 9,
                             [](const wire::Message&) {}).ok());
  for (int i = 0; i < 100 && server.subscriber_count() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(server.subscriber_count(), 1u);
  server.drop_subscriber(9);
  EXPECT_EQ(server.subscriber_count(), 0u);
  EXPECT_FALSE(server.push(9, wire::Notify{}).ok());
  receiver.stop();
  server.stop();
}

}  // namespace
}  // namespace falkon::net
