// TCP substrate tests: sockets, RPC request/response, push notifications.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>

#include "net/rpc.h"
#include "net/socket.h"

namespace falkon::net {
namespace {

TEST(Socket, ListenerPicksEphemeralPort) {
  auto listener = TcpListener::bind(0);
  ASSERT_TRUE(listener.ok());
  EXPECT_GT(listener.value().port(), 0);
}

TEST(Socket, ConnectRefusedOnClosedPort) {
  // Bind then immediately close to learn a (probably) dead port.
  auto listener = TcpListener::bind(0);
  ASSERT_TRUE(listener.ok());
  const std::uint16_t port = listener.value().port();
  listener.value().close();
  auto stream = TcpStream::connect("127.0.0.1", port);
  EXPECT_FALSE(stream.ok());
}

TEST(Rpc, EchoCallRoundtrip) {
  RpcServer server;
  ASSERT_TRUE(server
                  .start([](const wire::Message& request) -> wire::Message {
                    if (const auto* notify = std::get_if<wire::Notify>(&request)) {
                      return wire::Notify{notify->executor_id,
                                          notify->resource_key + 1};
                    }
                    return wire::ErrorReply{ErrorCode::kProtocolError, "?"};
                  })
                  .ok());

  auto client = RpcClient::connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  auto reply = client.value().call(wire::Notify{ExecutorId{5}, 41});
  ASSERT_TRUE(reply.ok());
  const auto* notify = std::get_if<wire::Notify>(&reply.value());
  ASSERT_NE(notify, nullptr);
  EXPECT_EQ(notify->resource_key, 42u);
  server.stop();
}

TEST(Rpc, ServerErrorReplySurfacesAsStatus) {
  RpcServer server;
  ASSERT_TRUE(server
                  .start([](const wire::Message&) -> wire::Message {
                    return wire::ErrorReply{ErrorCode::kNotFound, "nope"};
                  })
                  .ok());
  auto client = RpcClient::connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  auto reply = client.value().call(wire::StatusRequest{});
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.error().code, ErrorCode::kNotFound);
  server.stop();
}

TEST(Rpc, ManySequentialCallsOnOneConnection) {
  std::atomic<int> handled{0};
  RpcServer server;
  ASSERT_TRUE(server
                  .start([&](const wire::Message&) -> wire::Message {
                    handled.fetch_add(1);
                    return wire::StatusReply{};
                  })
                  .ok());
  auto client = RpcClient::connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(client.value().call(wire::StatusRequest{}).ok());
  }
  EXPECT_EQ(handled.load(), 200);
  server.stop();
}

TEST(Rpc, MultipleConcurrentClients) {
  RpcServer server;
  ASSERT_TRUE(server
                  .start([](const wire::Message&) -> wire::Message {
                    return wire::StatusReply{};
                  })
                  .ok());
  std::vector<std::thread> threads;
  std::atomic<int> successes{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      auto client = RpcClient::connect("127.0.0.1", server.port());
      if (!client.ok()) return;
      for (int i = 0; i < 50; ++i) {
        if (client.value().call(wire::StatusRequest{}).ok()) {
          successes.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(successes.load(), 8 * 50);
  server.stop();
}

TEST(Rpc, PipelinedCallsShareOneConnection) {
  // Many threads issue calls through ONE client: all calls multiplex over a
  // single connection (correlation ids demux the replies) and every caller
  // gets its own answer back.
  RpcServerOptions options;
  options.handler_threads = 4;
  RpcServer server;
  ASSERT_TRUE(server
                  .start(
                      [](const wire::Message& request) -> wire::Message {
                        const auto* notify = std::get_if<wire::Notify>(&request);
                        if (notify == nullptr) {
                          return wire::ErrorReply{ErrorCode::kProtocolError, "?"};
                        }
                        return wire::Notify{notify->executor_id,
                                            notify->resource_key * 2};
                      },
                      0, nullptr, options)
                  .ok());
  auto client = RpcClient::connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());

  std::atomic<int> correct{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < 50; ++i) {
        const std::uint64_t key = static_cast<std::uint64_t>(t) * 1000 + i;
        auto reply = client.value().call(wire::Notify{ExecutorId{1}, key});
        if (!reply.ok()) continue;
        const auto* notify = std::get_if<wire::Notify>(&reply.value());
        if (notify != nullptr && notify->resource_key == key * 2) {
          correct.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(correct.load(), 8 * 50);
  EXPECT_EQ(server.active_connections(), 1u);
  server.stop();
}

TEST(Rpc, OutOfOrderRepliesRouteByCorrelationId) {
  // A pooled server finishes a fast call while a slow one is still being
  // handled on the same connection; the fast reply overtakes the slow one
  // on the wire and the client must route both correctly.
  constexpr std::uint64_t kSlowKey = 1;
  constexpr std::uint64_t kFastKey = 2;
  RpcServerOptions options;
  options.handler_threads = 2;
  RpcServer server;
  ASSERT_TRUE(server
                  .start(
                      [&](const wire::Message& request) -> wire::Message {
                        const auto* notify = std::get_if<wire::Notify>(&request);
                        if (notify == nullptr) {
                          return wire::ErrorReply{ErrorCode::kProtocolError, "?"};
                        }
                        if (notify->resource_key == kSlowKey) {
                          std::this_thread::sleep_for(
                              std::chrono::milliseconds(300));
                        }
                        return *notify;
                      },
                      0, nullptr, options)
                  .ok());
  auto client = RpcClient::connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());

  std::mutex mu;
  std::vector<std::uint64_t> completion_order;
  std::thread slow([&] {
    auto reply = client.value().call(wire::Notify{ExecutorId{1}, kSlowKey});
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(std::get_if<wire::Notify>(&reply.value())->resource_key, kSlowKey);
    std::lock_guard lock(mu);
    completion_order.push_back(kSlowKey);
  });
  // Give the slow call time to reach the server before racing it.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  auto reply = client.value().call(wire::Notify{ExecutorId{1}, kFastKey});
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(std::get_if<wire::Notify>(&reply.value())->resource_key, kFastKey);
  {
    std::lock_guard lock(mu);
    completion_order.push_back(kFastKey);
  }
  slow.join();
  ASSERT_EQ(completion_order.size(), 2u);
  EXPECT_EQ(completion_order[0], kFastKey);  // overtook the slow call
  EXPECT_EQ(completion_order[1], kSlowKey);
  server.stop();
}

TEST(Rpc, CorruptReplyFailsOnlyItsOwnCall) {
  // Reply #3 is corrupted in-flight (payload bytes flipped, framing intact):
  // exactly that call fails with a protocol error; earlier and later calls
  // on the SAME connection succeed — the stream never desynchronises.
  fault::FaultPlan plan;
  plan.at(fault::Site::kRpcReply, fault::Action::kCorrupt, /*nth_op=*/3);
  fault::FaultInjector inject(plan);
  RpcServer server;
  ASSERT_TRUE(server
                  .start(
                      [](const wire::Message&) -> wire::Message {
                        return wire::StatusReply{};
                      },
                      0, &inject)
                  .ok());
  auto client = RpcClient::connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());

  for (int i = 1; i <= 5; ++i) {
    auto reply = client.value().call(wire::StatusRequest{});
    if (i == 3) {
      ASSERT_FALSE(reply.ok()) << "corrupted reply must fail its call";
      EXPECT_EQ(reply.error().code, ErrorCode::kProtocolError);
    } else {
      EXPECT_TRUE(reply.ok()) << "call " << i << ": " << (reply.ok() ? "" : reply.error().str());
    }
  }
  server.stop();
}

TEST(Rpc, DroppedReplyFailsEveryCallInFlight) {
  // A dropped reply severs the stream (fault semantics at kRpcReply): every
  // call in flight on that connection fails — they were all mapped to the
  // lost stream — and the client stays broken rather than silently hanging.
  fault::FaultPlan plan;
  plan.at(fault::Site::kRpcReply, fault::Action::kDrop, /*nth_op=*/2);
  fault::FaultInjector inject(plan);
  RpcServer server;
  ASSERT_TRUE(server
                  .start(
                      [](const wire::Message&) -> wire::Message {
                        return wire::StatusReply{};
                      },
                      0, &inject)
                  .ok());
  auto client = RpcClient::connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());

  ASSERT_TRUE(client.value().call(wire::StatusRequest{}).ok());

  // Two concurrent calls: reply #2's flush severs the connection, so BOTH
  // fail — one by the drop itself, the other by the stream's death.
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      if (!client.value().call(wire::StatusRequest{}).ok()) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 2);
  // The connection is gone for good; later calls fail fast, never hang.
  EXPECT_FALSE(client.value().call(wire::StatusRequest{}).ok());
  server.stop();
}

TEST(Rpc, InflightGaugeRegistersWithObs) {
  obs::Obs obs;
  RpcServer server;
  ASSERT_TRUE(server
                  .start([](const wire::Message&) -> wire::Message {
                    return wire::StatusReply{};
                  })
                  .ok());
  auto client = RpcClient::connect("127.0.0.1", server.port(), nullptr, &obs);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client.value().call(wire::StatusRequest{}).ok());
  // After a completed call the gauge exists and reads zero in flight.
  EXPECT_EQ(obs.registry().gauge("falkon.net.rpc.inflight").value(), 0.0);
  server.stop();
}

TEST(Push, SubscribeAndReceiveNotifications) {
  PushServer server;
  ASSERT_TRUE(server.start().ok());

  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::uint64_t> received;

  PushReceiver receiver;
  ASSERT_TRUE(receiver
                  .start("127.0.0.1", server.port(), /*key=*/77,
                         [&](const wire::Message& message) {
                           if (const auto* notify =
                                   std::get_if<wire::Notify>(&message)) {
                             std::lock_guard lock(mu);
                             received.push_back(notify->resource_key);
                             cv.notify_all();
                           }
                         })
                  .ok());

  // Subscription is asynchronous; wait for it to land.
  for (int i = 0; i < 100 && server.subscriber_count() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(server.subscriber_count(), 1u);

  for (std::uint64_t k = 1; k <= 5; ++k) {
    ASSERT_TRUE(server.push(77, wire::Notify{ExecutorId{77}, k}).ok());
  }
  {
    std::unique_lock lock(mu);
    cv.wait_for(lock, std::chrono::seconds(5),
                [&] { return received.size() == 5; });
    ASSERT_EQ(received.size(), 5u);
    EXPECT_EQ(received.back(), 5u);
  }
  receiver.stop();
  server.stop();
}

TEST(Push, PushToUnknownKeyFails) {
  PushServer server;
  ASSERT_TRUE(server.start().ok());
  auto status = server.push(12345, wire::Notify{});
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, ErrorCode::kNotFound);
  server.stop();
}

TEST(Push, DropSubscriberSeversChannel) {
  PushServer server;
  ASSERT_TRUE(server.start().ok());
  PushReceiver receiver;
  ASSERT_TRUE(receiver.start("127.0.0.1", server.port(), 9,
                             [](const wire::Message&) {}).ok());
  for (int i = 0; i < 100 && server.subscriber_count() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(server.subscriber_count(), 1u);
  server.drop_subscriber(9);
  EXPECT_EQ(server.subscriber_count(), 0u);
  EXPECT_FALSE(server.push(9, wire::Notify{}).ok());
  receiver.stop();
  server.stop();
}

}  // namespace
}  // namespace falkon::net
