// TCP substrate tests: sockets, RPC request/response, push notifications.
#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <mutex>

#include "net/rpc.h"
#include "net/socket.h"

namespace falkon::net {
namespace {

TEST(Socket, ListenerPicksEphemeralPort) {
  auto listener = TcpListener::bind(0);
  ASSERT_TRUE(listener.ok());
  EXPECT_GT(listener.value().port(), 0);
}

TEST(Socket, ConnectRefusedOnClosedPort) {
  // Bind then immediately close to learn a (probably) dead port.
  auto listener = TcpListener::bind(0);
  ASSERT_TRUE(listener.ok());
  const std::uint16_t port = listener.value().port();
  listener.value().close();
  auto stream = TcpStream::connect("127.0.0.1", port);
  EXPECT_FALSE(stream.ok());
}

TEST(Rpc, EchoCallRoundtrip) {
  RpcServer server;
  ASSERT_TRUE(server
                  .start([](const wire::Message& request) -> wire::Message {
                    if (const auto* notify = std::get_if<wire::Notify>(&request)) {
                      return wire::Notify{notify->executor_id,
                                          notify->resource_key + 1};
                    }
                    return wire::ErrorReply{ErrorCode::kProtocolError, "?"};
                  })
                  .ok());

  auto client = RpcClient::connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  auto reply = client.value().call(wire::Notify{ExecutorId{5}, 41});
  ASSERT_TRUE(reply.ok());
  const auto* notify = std::get_if<wire::Notify>(&reply.value());
  ASSERT_NE(notify, nullptr);
  EXPECT_EQ(notify->resource_key, 42u);
  server.stop();
}

TEST(Rpc, ServerErrorReplySurfacesAsStatus) {
  RpcServer server;
  ASSERT_TRUE(server
                  .start([](const wire::Message&) -> wire::Message {
                    return wire::ErrorReply{ErrorCode::kNotFound, "nope"};
                  })
                  .ok());
  auto client = RpcClient::connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  auto reply = client.value().call(wire::StatusRequest{});
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.error().code, ErrorCode::kNotFound);
  server.stop();
}

TEST(Rpc, ManySequentialCallsOnOneConnection) {
  std::atomic<int> handled{0};
  RpcServer server;
  ASSERT_TRUE(server
                  .start([&](const wire::Message&) -> wire::Message {
                    handled.fetch_add(1);
                    return wire::StatusReply{};
                  })
                  .ok());
  auto client = RpcClient::connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(client.value().call(wire::StatusRequest{}).ok());
  }
  EXPECT_EQ(handled.load(), 200);
  server.stop();
}

TEST(Rpc, MultipleConcurrentClients) {
  RpcServer server;
  ASSERT_TRUE(server
                  .start([](const wire::Message&) -> wire::Message {
                    return wire::StatusReply{};
                  })
                  .ok());
  std::vector<std::thread> threads;
  std::atomic<int> successes{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      auto client = RpcClient::connect("127.0.0.1", server.port());
      if (!client.ok()) return;
      for (int i = 0; i < 50; ++i) {
        if (client.value().call(wire::StatusRequest{}).ok()) {
          successes.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(successes.load(), 8 * 50);
  server.stop();
}

TEST(Push, SubscribeAndReceiveNotifications) {
  PushServer server;
  ASSERT_TRUE(server.start().ok());

  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::uint64_t> received;

  PushReceiver receiver;
  ASSERT_TRUE(receiver
                  .start("127.0.0.1", server.port(), /*key=*/77,
                         [&](const wire::Message& message) {
                           if (const auto* notify =
                                   std::get_if<wire::Notify>(&message)) {
                             std::lock_guard lock(mu);
                             received.push_back(notify->resource_key);
                             cv.notify_all();
                           }
                         })
                  .ok());

  // Subscription is asynchronous; wait for it to land.
  for (int i = 0; i < 100 && server.subscriber_count() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(server.subscriber_count(), 1u);

  for (std::uint64_t k = 1; k <= 5; ++k) {
    ASSERT_TRUE(server.push(77, wire::Notify{ExecutorId{77}, k}).ok());
  }
  {
    std::unique_lock lock(mu);
    cv.wait_for(lock, std::chrono::seconds(5),
                [&] { return received.size() == 5; });
    ASSERT_EQ(received.size(), 5u);
    EXPECT_EQ(received.back(), 5u);
  }
  receiver.stop();
  server.stop();
}

TEST(Push, PushToUnknownKeyFails) {
  PushServer server;
  ASSERT_TRUE(server.start().ok());
  auto status = server.push(12345, wire::Notify{});
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, ErrorCode::kNotFound);
  server.stop();
}

TEST(Push, DropSubscriberSeversChannel) {
  PushServer server;
  ASSERT_TRUE(server.start().ok());
  PushReceiver receiver;
  ASSERT_TRUE(receiver.start("127.0.0.1", server.port(), 9,
                             [](const wire::Message&) {}).ok());
  for (int i = 0; i < 100 && server.subscriber_count() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(server.subscriber_count(), 1u);
  server.drop_subscriber(9);
  EXPECT_EQ(server.subscriber_count(), 0u);
  EXPECT_FALSE(server.push(9, wire::Notify{}).ok());
  receiver.stop();
  server.stop();
}

}  // namespace
}  // namespace falkon::net
