// TCP substrate tests: sockets, the reactor event loop, RPC
// request/response, push notifications, and the watermark backpressure and
// fd-exhaustion paths of the server side.
#include <fcntl.h>
#include <gtest/gtest.h>
#include <sys/resource.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <vector>

#include "net/rpc.h"
#include "net/socket.h"
#include "obs/obs.h"
#include "wire/framing.h"

namespace falkon::net {
namespace {

TEST(Socket, ListenerPicksEphemeralPort) {
  auto listener = TcpListener::bind(0);
  ASSERT_TRUE(listener.ok());
  EXPECT_GT(listener.value().port(), 0);
}

TEST(Socket, ConnectRefusedOnClosedPort) {
  // Bind then immediately close to learn a (probably) dead port.
  auto listener = TcpListener::bind(0);
  ASSERT_TRUE(listener.ok());
  const std::uint16_t port = listener.value().port();
  listener.value().close();
  auto stream = TcpStream::connect("127.0.0.1", port);
  EXPECT_FALSE(stream.ok());
}

TEST(Rpc, EchoCallRoundtrip) {
  RpcServer server;
  ASSERT_TRUE(server
                  .start([](const wire::Message& request) -> wire::Message {
                    if (const auto* notify = std::get_if<wire::Notify>(&request)) {
                      return wire::Notify{notify->executor_id,
                                          notify->resource_key + 1};
                    }
                    return wire::ErrorReply{ErrorCode::kProtocolError, "?"};
                  })
                  .ok());

  auto client = RpcClient::connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  auto reply = client.value().call(wire::Notify{ExecutorId{5}, 41});
  ASSERT_TRUE(reply.ok());
  const auto* notify = std::get_if<wire::Notify>(&reply.value());
  ASSERT_NE(notify, nullptr);
  EXPECT_EQ(notify->resource_key, 42u);
  server.stop();
}

TEST(Rpc, ServerErrorReplySurfacesAsStatus) {
  RpcServer server;
  ASSERT_TRUE(server
                  .start([](const wire::Message&) -> wire::Message {
                    return wire::ErrorReply{ErrorCode::kNotFound, "nope"};
                  })
                  .ok());
  auto client = RpcClient::connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  auto reply = client.value().call(wire::StatusRequest{});
  ASSERT_FALSE(reply.ok());
  EXPECT_EQ(reply.error().code, ErrorCode::kNotFound);
  server.stop();
}

TEST(Rpc, ManySequentialCallsOnOneConnection) {
  std::atomic<int> handled{0};
  RpcServer server;
  ASSERT_TRUE(server
                  .start([&](const wire::Message&) -> wire::Message {
                    handled.fetch_add(1);
                    return wire::StatusReply{};
                  })
                  .ok());
  auto client = RpcClient::connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(client.value().call(wire::StatusRequest{}).ok());
  }
  EXPECT_EQ(handled.load(), 200);
  server.stop();
}

TEST(Rpc, MultipleConcurrentClients) {
  RpcServer server;
  ASSERT_TRUE(server
                  .start([](const wire::Message&) -> wire::Message {
                    return wire::StatusReply{};
                  })
                  .ok());
  std::vector<std::thread> threads;
  std::atomic<int> successes{0};
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&] {
      auto client = RpcClient::connect("127.0.0.1", server.port());
      if (!client.ok()) return;
      for (int i = 0; i < 50; ++i) {
        if (client.value().call(wire::StatusRequest{}).ok()) {
          successes.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(successes.load(), 8 * 50);
  server.stop();
}

TEST(Rpc, PipelinedCallsShareOneConnection) {
  // Many threads issue calls through ONE client: all calls multiplex over a
  // single connection (correlation ids demux the replies) and every caller
  // gets its own answer back.
  RpcServerOptions options;
  options.handler_threads = 4;
  RpcServer server;
  ASSERT_TRUE(server
                  .start(
                      [](const wire::Message& request) -> wire::Message {
                        const auto* notify = std::get_if<wire::Notify>(&request);
                        if (notify == nullptr) {
                          return wire::ErrorReply{ErrorCode::kProtocolError, "?"};
                        }
                        return wire::Notify{notify->executor_id,
                                            notify->resource_key * 2};
                      },
                      0, nullptr, options)
                  .ok());
  auto client = RpcClient::connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());

  std::atomic<int> correct{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&, t] {
      for (std::uint64_t i = 0; i < 50; ++i) {
        const std::uint64_t key = static_cast<std::uint64_t>(t) * 1000 + i;
        auto reply = client.value().call(wire::Notify{ExecutorId{1}, key});
        if (!reply.ok()) continue;
        const auto* notify = std::get_if<wire::Notify>(&reply.value());
        if (notify != nullptr && notify->resource_key == key * 2) {
          correct.fetch_add(1);
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(correct.load(), 8 * 50);
  EXPECT_EQ(server.active_connections(), 1u);
  server.stop();
}

TEST(Rpc, OutOfOrderRepliesRouteByCorrelationId) {
  // A pooled server finishes a fast call while a slow one is still being
  // handled on the same connection; the fast reply overtakes the slow one
  // on the wire and the client must route both correctly.
  constexpr std::uint64_t kSlowKey = 1;
  constexpr std::uint64_t kFastKey = 2;
  RpcServerOptions options;
  options.handler_threads = 2;
  RpcServer server;
  ASSERT_TRUE(server
                  .start(
                      [&](const wire::Message& request) -> wire::Message {
                        const auto* notify = std::get_if<wire::Notify>(&request);
                        if (notify == nullptr) {
                          return wire::ErrorReply{ErrorCode::kProtocolError, "?"};
                        }
                        if (notify->resource_key == kSlowKey) {
                          std::this_thread::sleep_for(
                              std::chrono::milliseconds(300));
                        }
                        return *notify;
                      },
                      0, nullptr, options)
                  .ok());
  auto client = RpcClient::connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());

  std::mutex mu;
  std::vector<std::uint64_t> completion_order;
  std::thread slow([&] {
    auto reply = client.value().call(wire::Notify{ExecutorId{1}, kSlowKey});
    ASSERT_TRUE(reply.ok());
    EXPECT_EQ(std::get_if<wire::Notify>(&reply.value())->resource_key, kSlowKey);
    std::lock_guard lock(mu);
    completion_order.push_back(kSlowKey);
  });
  // Give the slow call time to reach the server before racing it.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  auto reply = client.value().call(wire::Notify{ExecutorId{1}, kFastKey});
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(std::get_if<wire::Notify>(&reply.value())->resource_key, kFastKey);
  {
    std::lock_guard lock(mu);
    completion_order.push_back(kFastKey);
  }
  slow.join();
  ASSERT_EQ(completion_order.size(), 2u);
  EXPECT_EQ(completion_order[0], kFastKey);  // overtook the slow call
  EXPECT_EQ(completion_order[1], kSlowKey);
  server.stop();
}

TEST(Rpc, CorruptReplyFailsOnlyItsOwnCall) {
  // Reply #3 is corrupted in-flight (payload bytes flipped, framing intact):
  // exactly that call fails with a protocol error; earlier and later calls
  // on the SAME connection succeed — the stream never desynchronises.
  fault::FaultPlan plan;
  plan.at(fault::Site::kRpcReply, fault::Action::kCorrupt, /*nth_op=*/3);
  fault::FaultInjector inject(plan);
  RpcServer server;
  ASSERT_TRUE(server
                  .start(
                      [](const wire::Message&) -> wire::Message {
                        return wire::StatusReply{};
                      },
                      0, &inject)
                  .ok());
  auto client = RpcClient::connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());

  for (int i = 1; i <= 5; ++i) {
    auto reply = client.value().call(wire::StatusRequest{});
    if (i == 3) {
      ASSERT_FALSE(reply.ok()) << "corrupted reply must fail its call";
      EXPECT_EQ(reply.error().code, ErrorCode::kProtocolError);
    } else {
      EXPECT_TRUE(reply.ok()) << "call " << i << ": " << (reply.ok() ? "" : reply.error().str());
    }
  }
  server.stop();
}

TEST(Rpc, DroppedReplyFailsEveryCallInFlight) {
  // A dropped reply severs the stream (fault semantics at kRpcReply): every
  // call in flight on that connection fails — they were all mapped to the
  // lost stream — and the client stays broken rather than silently hanging.
  fault::FaultPlan plan;
  plan.at(fault::Site::kRpcReply, fault::Action::kDrop, /*nth_op=*/2);
  fault::FaultInjector inject(plan);
  RpcServer server;
  ASSERT_TRUE(server
                  .start(
                      [](const wire::Message&) -> wire::Message {
                        return wire::StatusReply{};
                      },
                      0, &inject)
                  .ok());
  auto client = RpcClient::connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());

  ASSERT_TRUE(client.value().call(wire::StatusRequest{}).ok());

  // Two concurrent calls: reply #2's flush severs the connection, so BOTH
  // fail — one by the drop itself, the other by the stream's death.
  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&] {
      if (!client.value().call(wire::StatusRequest{}).ok()) {
        failures.fetch_add(1);
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 2);
  // The connection is gone for good; later calls fail fast, never hang.
  EXPECT_FALSE(client.value().call(wire::StatusRequest{}).ok());
  server.stop();
}

TEST(Rpc, InflightGaugeRegistersWithObs) {
  obs::Obs obs;
  RpcServer server;
  ASSERT_TRUE(server
                  .start([](const wire::Message&) -> wire::Message {
                    return wire::StatusReply{};
                  })
                  .ok());
  auto client = RpcClient::connect("127.0.0.1", server.port(), nullptr, &obs);
  ASSERT_TRUE(client.ok());
  ASSERT_TRUE(client.value().call(wire::StatusRequest{}).ok());
  // After a completed call the gauge exists and reads zero in flight.
  EXPECT_EQ(obs.registry().gauge("falkon.net.rpc.inflight").value(), 0.0);
  server.stop();
}

TEST(Push, SubscribeAndReceiveNotifications) {
  PushServer server;
  ASSERT_TRUE(server.start().ok());

  std::mutex mu;
  std::condition_variable cv;
  std::vector<std::uint64_t> received;

  PushReceiver receiver;
  ASSERT_TRUE(receiver
                  .start("127.0.0.1", server.port(), /*key=*/77,
                         [&](const wire::Message& message) {
                           if (const auto* notify =
                                   std::get_if<wire::Notify>(&message)) {
                             std::lock_guard lock(mu);
                             received.push_back(notify->resource_key);
                             cv.notify_all();
                           }
                         })
                  .ok());

  // Subscription is asynchronous; wait for it to land.
  for (int i = 0; i < 100 && server.subscriber_count() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(server.subscriber_count(), 1u);

  for (std::uint64_t k = 1; k <= 5; ++k) {
    ASSERT_TRUE(server.push(77, wire::Notify{ExecutorId{77}, k}).ok());
  }
  {
    std::unique_lock lock(mu);
    cv.wait_for(lock, std::chrono::seconds(5),
                [&] { return received.size() == 5; });
    ASSERT_EQ(received.size(), 5u);
    EXPECT_EQ(received.back(), 5u);
  }
  receiver.stop();
  server.stop();
}

TEST(Push, PushToUnknownKeyFails) {
  PushServer server;
  ASSERT_TRUE(server.start().ok());
  auto status = server.push(12345, wire::Notify{});
  ASSERT_FALSE(status.ok());
  EXPECT_EQ(status.error().code, ErrorCode::kNotFound);
  server.stop();
}

TEST(Reactor, TimersFireOnceAndPeriodicallyUntilCancelled) {
  Reactor reactor;
  ASSERT_TRUE(reactor.start().ok());
  std::atomic<int> once{0};
  std::atomic<int> ticks{0};
  reactor.add_timer(0.01, [&] { once.fetch_add(1); });
  const TimerId periodic = reactor.add_periodic(0.005, [&] {
    ticks.fetch_add(1);
  });
  for (int i = 0; i < 1000 && (once.load() < 1 || ticks.load() < 3); ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(once.load(), 1);
  EXPECT_GE(ticks.load(), 3);
  reactor.cancel_timer(periodic);
  reactor.barrier();  // cancellation processed on the loop
  const int after_cancel = ticks.load();
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(ticks.load(), after_cancel);
  reactor.stop();
}

TEST(Rpc, AcceptBackoffOnFdExhaustionThenRecovers) {
  // Satellite of the reactor migration: EMFILE on accept must pause the
  // listener with backoff (counting falkon.net.accept_rejected) instead of
  // spinning or dying, and the pending connection must complete once
  // descriptors free up.
  obs::Obs obs;
  RpcServerOptions options;
  options.obs = &obs;
  RpcServer server;
  ASSERT_TRUE(server
                  .start(
                      [](const wire::Message&) -> wire::Message {
                        return wire::StatusReply{};
                      },
                      0, nullptr, options)
                  .ok());
  auto& rejected = obs.registry().counter("falkon.net.accept_rejected");
  ASSERT_EQ(rejected.value(), 0u);

  // Lower RLIMIT_NOFILE to just above current usage and hoard the rest,
  // keeping exactly one slot free for the client's own socket.
  rlimit old_limit{};
  ASSERT_EQ(::getrlimit(RLIMIT_NOFILE, &old_limit), 0);
  std::vector<int> hoard;
  {
    long used = 0;
    for (int fd = 0; fd < 4096; ++fd) {
      if (::fcntl(fd, F_GETFD) != -1) used = fd + 1;
    }
    rlimit tight = old_limit;
    tight.rlim_cur = static_cast<rlim_t>(used + 8);
    ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &tight), 0);
    int fd = -1;
    while ((fd = ::open("/dev/null", O_RDONLY)) >= 0) hoard.push_back(fd);
    ASSERT_FALSE(hoard.empty());
    ::close(hoard.back());  // the client's slot
    hoard.pop_back();
  }

  // The TCP handshake completes in the kernel backlog; accept4 in the
  // reactor hits EMFILE and backs off.
  auto stream = TcpStream::connect("127.0.0.1", server.port());
  ASSERT_TRUE(stream.ok());
  for (int i = 0; i < 1000 && rejected.value() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_GE(rejected.value(), 1u);

  // Free the descriptors: the next backoff retry adopts the connection and
  // the exchange completes end to end.
  for (int fd : hoard) ::close(fd);
  hoard.clear();
  ASSERT_EQ(::setrlimit(RLIMIT_NOFILE, &old_limit), 0);
  ASSERT_TRUE(wire::write_frame(stream.value(), 1,
                                wire::encode_message(wire::StatusRequest{}))
                  .ok());
  wire::Frame frame;
  ASSERT_TRUE(wire::read_frame(stream.value(), frame).ok());
  EXPECT_EQ(frame.corr, 1u);
  auto reply = wire::decode_message(frame.payload);
  ASSERT_TRUE(reply.ok());
  EXPECT_TRUE(std::holds_alternative<wire::StatusReply>(reply.value()));
  server.stop();
}

TEST(Rpc, WatermarkBackpressureDrainsOversizedRepliesInOrder) {
  // Oversized replies through a tiny SO_SNDBUF and a slow reader: the
  // connection outbox crosses the high watermark, the reactor stops
  // reading the connection (falkon.net.reactor.read_paused), and the
  // backlog drains through partial writev rounds without reordering or
  // corrupting a single frame.
  constexpr std::size_t kReplyBytes = 1u << 20;
  constexpr int kCalls = 6;
  obs::Obs obs;
  RpcServerOptions options;
  options.obs = &obs;
  options.sndbuf_bytes = 4096;
  options.high_watermark_bytes = 64 * 1024;
  options.low_watermark_bytes = 16 * 1024;
  RpcServer server;
  ASSERT_TRUE(server
                  .start(
                      [](const wire::Message& request) -> wire::Message {
                        const auto* notify =
                            std::get_if<wire::Notify>(&request);
                        if (notify == nullptr) {
                          return wire::ErrorReply{ErrorCode::kProtocolError,
                                                  "?"};
                        }
                        wire::WaitResultsReply reply;
                        TaskResult result;
                        result.task_id = TaskId{notify->resource_key};
                        result.stdout_data = std::string(
                            kReplyBytes,
                            static_cast<char>('a' + notify->resource_key % 26));
                        reply.results.push_back(std::move(result));
                        return reply;
                      },
                      0, nullptr, options)
                  .ok());

  auto stream = TcpStream::connect("127.0.0.1", server.port());
  ASSERT_TRUE(stream.ok());
  // Pipeline every request before reading a single reply byte, so the
  // replies (6 MiB total) pile up behind a ~4 KiB send buffer.
  for (std::uint64_t corr = 1; corr <= kCalls; ++corr) {
    ASSERT_TRUE(wire::write_frame(
                    stream.value(), corr,
                    wire::encode_message(wire::Notify{ExecutorId{corr}, corr}))
                    .ok());
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));

  wire::Frame frame;
  for (std::uint64_t corr = 1; corr <= kCalls; ++corr) {
    // Slow reader: let the outbox stay backed up between frames.
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    ASSERT_TRUE(wire::read_frame(stream.value(), frame).ok());
    // One shared handler worker => strict FIFO, replies arrive in request
    // order even though the transport stalled mid-frame many times.
    EXPECT_EQ(frame.corr, corr);
    auto reply = wire::decode_message(frame.payload);
    ASSERT_TRUE(reply.ok());
    const auto* results = std::get_if<wire::WaitResultsReply>(&reply.value());
    ASSERT_NE(results, nullptr);
    ASSERT_EQ(results->results.size(), 1u);
    EXPECT_EQ(results->results[0].task_id.value, corr);
    const std::string expected(
        kReplyBytes, static_cast<char>('a' + corr % 26));
    EXPECT_TRUE(results->results[0].stdout_data == expected)
        << "payload corrupted for corr " << corr;
  }
  EXPECT_GE(obs.registry().counter("falkon.net.reactor.read_paused").value(),
            1u);
  server.stop();
}

TEST(Push, SlowSubscriberShedsInsteadOfBlocking) {
  // A subscriber that never reads must not wedge the dispatcher: once its
  // outbox passes the high watermark, push() sheds notifications (counted
  // in falkon.net.push.backpressure_drops) and returns immediately.
  obs::Obs obs;
  PushServerOptions options;
  options.high_watermark_bytes = 64 * 1024;
  options.low_watermark_bytes = 16 * 1024;
  PushServer server;
  ASSERT_TRUE(server.start(0, nullptr, &obs, options).ok());

  auto stream = TcpStream::connect("127.0.0.1", server.port());
  ASSERT_TRUE(stream.ok());
  ASSERT_TRUE(wire::write_frame(stream.value(),
                                wire::encode_message(
                                    wire::Notify{ExecutorId{7}, 0}))
                  .ok());
  for (int i = 0; i < 200 && server.subscriber_count() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(server.subscriber_count(), 1u);

  auto& drops =
      obs.registry().counter("falkon.net.push.backpressure_drops");
  wire::WaitResultsReply big;
  TaskResult result;
  result.stdout_data = std::string(256 * 1024, 'x');
  big.results.push_back(std::move(result));
  for (int i = 0; i < 200 && drops.value() == 0; ++i) {
    // Never blocks and never errors: a full subscriber is shed, not waited
    // on (the stale-notification sweep re-delivers).
    ASSERT_TRUE(server.push(7, big).ok());
  }
  EXPECT_GE(drops.value(), 1u);
  EXPECT_EQ(server.subscriber_count(), 1u);
  server.stop();
}

TEST(Push, DropSubscriberSeversChannel) {
  PushServer server;
  ASSERT_TRUE(server.start().ok());
  PushReceiver receiver;
  ASSERT_TRUE(receiver.start("127.0.0.1", server.port(), 9,
                             [](const wire::Message&) {}).ok());
  for (int i = 0; i < 100 && server.subscriber_count() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_EQ(server.subscriber_count(), 1u);
  server.drop_subscriber(9);
  EXPECT_EQ(server.subscriber_count(), 0u);
  EXPECT_FALSE(server.push(9, wire::Notify{}).ok());
  receiver.stop();
  server.stop();
}

}  // namespace
}  // namespace falkon::net
