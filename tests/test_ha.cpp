// HA integration suite (docs/HA.md): a journaled primary serving the
// replication protocol off its RPC port, a warm standby tailing it, and the
// full failover story — primary dies mid-run, the standby recovers the
// journal, takes over the primary's ports, executors re-register, the
// failover client rides out the downtime, and every task still completes
// exactly once.
#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/task.h"
#include "core/dispatcher.h"
#include "core/service_tcp.h"
#include "ha/async_journal.h"
#include "ha/failover_client.h"
#include "ha/journal.h"
#include "ha/standby.h"
#include "net/socket.h"
#include "obs/obs.h"
#include "testkit/history.h"
#include "testkit/runners.h"

namespace falkon::ha {
namespace {

namespace fs = std::filesystem;
using core::Dispatcher;
using core::DispatcherConfig;
using core::DispatcherStatus;
using core::ExecutorOptions;
using core::SleepEngine;
using core::TcpDispatcherServer;
using core::TcpExecutorHarness;

class TempDir {
 public:
  TempDir() {
    char pattern[] = "/tmp/falkon_ha_XXXXXX";
    const char* made = ::mkdtemp(pattern);
    EXPECT_NE(made, nullptr);
    path_ = made ? made : "";
  }
  ~TempDir() {
    if (!path_.empty()) {
      std::error_code ec;
      fs::remove_all(path_, ec);
    }
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

void nap_ms(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

DispatcherConfig primary_config(obs::Obs& obs, core::StateJournal* journal) {
  DispatcherConfig config;
  config.replay.response_timeout_s = 0.5;
  config.replay.max_retries = 100;
  config.heartbeat_timeout_s = 1.0;
  config.sweep_interval_s = 0.05;
  config.renotify_timeout_s = 0.2;
  config.obs = &obs;
  config.journal = journal;
  return config;
}

ExecutorOptions polling_executor(std::uint64_t node, obs::Obs& obs) {
  ExecutorOptions options;
  options.node_id = NodeId{node};
  // Polling (firewall) mode: the executor keeps calling get_work on its
  // own schedule, so it notices a takeover (kNotFound) without depending
  // on push notifications from a server it no longer knows.
  options.poll_interval_s = 0.03;
  options.heartbeat_interval_s = 0.1;
  options.link_retries = 30;
  options.register_retries = 30;
  options.backoff.base_s = 0.02;
  options.backoff.max_s = 0.25;
  options.obs = &obs;
  return options;
}

std::vector<TaskSpec> sleep_tasks(std::uint64_t count, double seconds) {
  std::vector<TaskSpec> tasks;
  for (std::uint64_t i = 1; i <= count; ++i) {
    tasks.push_back(make_sleep_task(TaskId{i}, seconds));
  }
  return tasks;
}

// ---- standby tailing (no failover) -----------------------------------------

TEST(HaStandby, TailsPrimaryAndAcksProgress) {
  TempDir primary_dir, standby_dir;
  RealClock clock;
  obs::Obs obs;

  Journal::Options jopts;
  jopts.dir = primary_dir.path();
  jopts.obs = &obs;
  auto journal = Journal::open(jopts);
  ASSERT_TRUE(journal.ok()) << journal.error().str();

  Dispatcher dispatcher(clock, primary_config(obs, journal.value().get()));
  TcpDispatcherServer server(dispatcher, &obs);
  ASSERT_TRUE(server.start().ok());
  server.set_replication_source(journal.value().get());

  StandbyOptions sopts;
  sopts.primary_rpc_port = server.rpc_port();
  sopts.standby_dir = standby_dir.path();
  sopts.poll_interval_s = 0.01;
  sopts.failover_after_s = 60.0;  // never promote in this test
  sopts.obs = &obs;
  Standby standby(clock, sopts);
  ASSERT_TRUE(standby.start().ok());

  // Generate journaled transitions: one executor works through a batch.
  auto instance = dispatcher.create_instance(ClientId{1});
  ASSERT_TRUE(instance.ok());
  ASSERT_TRUE(dispatcher.submit(instance.value(), sleep_tasks(50, 0.0)).ok());
  TcpExecutorHarness executor(clock, "127.0.0.1", server.rpc_port(),
                              server.push_port(),
                              std::make_unique<core::NoopEngine>(),
                              polling_executor(1, obs));
  ASSERT_TRUE(executor.start().ok());

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(20);
  while (dispatcher.status().completed < 50 ||
         standby.applied_lsn() < journal.value()->last_lsn()) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "standby lagging: applied=" << standby.applied_lsn()
        << " last_lsn=" << journal.value()->last_lsn();
    nap_ms(10);
  }

  EXPECT_FALSE(standby.promoted());
  EXPECT_EQ(standby.applied_lsn(), journal.value()->last_lsn());
  // The ack path fed the lag gauges.
  EXPECT_EQ(obs.registry().gauge("falkon.ha.repl.acked_lsn").value(),
            static_cast<double>(standby.applied_lsn()));
  EXPECT_EQ(obs.registry().gauge("falkon.ha.repl.lag").value(), 0.0);

  standby.stop();
  executor.stop();
  dispatcher.shutdown();
  server.stop();
}

TEST(HaStandby, CatchesUpViaSnapshotWhenBehindTail) {
  TempDir primary_dir, standby_dir;
  RealClock clock;
  obs::Obs obs;

  Journal::Options jopts;
  jopts.dir = primary_dir.path();
  jopts.repl_tail_bytes = 512;  // tail forgets almost immediately
  auto journal = Journal::open(jopts);
  ASSERT_TRUE(journal.ok());

  // Journal a pile of records *before* the standby connects — one submit
  // per task, so each is its own log record — and the standby's first
  // fetch (from LSN 1) lands far behind the in-memory tail and must be
  // answered with a full ReplSnapshot.
  Dispatcher dispatcher(clock, primary_config(obs, journal.value().get()));
  auto instance = dispatcher.create_instance(ClientId{1});
  ASSERT_TRUE(instance.ok());
  for (std::uint64_t i = 1; i <= 200; ++i) {
    std::vector<TaskSpec> one{make_sleep_task(TaskId{i}, 0.0)};
    ASSERT_TRUE(dispatcher.submit(instance.value(), one).ok());
  }
  const std::uint64_t piled_lsn = journal.value()->last_lsn();
  ASSERT_GT(piled_lsn, 10u);

  TcpDispatcherServer server(dispatcher, &obs);
  ASSERT_TRUE(server.start().ok());
  server.set_replication_source(journal.value().get());

  StandbyOptions sopts;
  sopts.primary_rpc_port = server.rpc_port();
  sopts.standby_dir = standby_dir.path();
  sopts.poll_interval_s = 0.01;
  sopts.failover_after_s = 60.0;
  Standby standby(clock, sopts);
  ASSERT_TRUE(standby.start().ok());

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (standby.applied_lsn() < piled_lsn) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "snapshot catch-up stalled at " << standby.applied_lsn();
    nap_ms(10);
  }
  EXPECT_GE(standby.applied_lsn(), piled_lsn);

  standby.stop();
  dispatcher.shutdown();
  server.stop();
}

// ---- submit-seq dedup ------------------------------------------------------

TEST(HaClient, DuplicateSubmitSeqIsAcknowledgedNotReenqueued) {
  RealClock clock;
  DispatcherConfig config;
  Dispatcher dispatcher(clock, config);
  auto instance = dispatcher.create_instance(ClientId{1});
  ASSERT_TRUE(instance.ok());

  auto first = dispatcher.submit(instance.value(), sleep_tasks(10, 0.0), 1);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(first.value(), 10u);
  EXPECT_EQ(dispatcher.status().submitted, 10u);

  // The retry of an already-journaled submit: acknowledged, not enqueued.
  auto dup = dispatcher.submit(instance.value(), sleep_tasks(10, 0.0), 1);
  ASSERT_TRUE(dup.ok());
  EXPECT_EQ(dup.value(), 10u);
  EXPECT_EQ(dispatcher.status().submitted, 10u);
  EXPECT_EQ(dispatcher.status().queued, 10u);

  // A higher seq is new work.
  std::vector<TaskSpec> more{make_sleep_task(TaskId{11}, 0.0)};
  ASSERT_TRUE(dispatcher.submit(instance.value(), more, 2).ok());
  EXPECT_EQ(dispatcher.status().submitted, 11u);

  dispatcher.shutdown();
}

// ---- full failover ---------------------------------------------------------

/// Run the takeover story end to end. `shared_log` selects how the standby
/// recovers: from the primary's journal directory (authoritative) or from
/// its warm in-memory image (bootstrap into its own directory).
/// `streamed_client` runs the failover client in push-mode result
/// streaming: the takeover severs the push connection, results keep
/// flowing through the polling fallback, and the client resubscribes
/// against the promoted dispatcher.
void run_failover_scenario(bool shared_log, bool streamed_client = false) {
  constexpr std::uint64_t kTasks = 200;
  constexpr int kExecutors = 3;

  TempDir primary_dir, standby_dir;
  RealClock clock;
  obs::Obs obs;

  Journal::Options jopts;
  jopts.dir = primary_dir.path();
  jopts.fsync = FsyncPolicy::kGroupCommit;
  auto journal = Journal::open(jopts);
  ASSERT_TRUE(journal.ok()) << journal.error().str();

  auto dispatcher = std::make_unique<Dispatcher>(
      clock, primary_config(obs, journal.value().get()));
  auto server = std::make_unique<TcpDispatcherServer>(*dispatcher, &obs);
  ASSERT_TRUE(server->start().ok());
  server->set_replication_source(journal.value().get());
  const std::uint16_t rpc_port = server->rpc_port();
  const std::uint16_t push_port = server->push_port();

  StandbyOptions sopts;
  sopts.primary_rpc_port = rpc_port;
  sopts.takeover_rpc_port = rpc_port;
  sopts.takeover_push_port = push_port;
  if (shared_log) sopts.shared_log_dir = primary_dir.path();
  sopts.standby_dir = standby_dir.path();
  sopts.poll_interval_s = 0.01;
  sopts.failover_after_s = 0.3;
  sopts.dispatcher = primary_config(obs, nullptr);  // journal filled in
  sopts.obs = &obs;
  Standby standby(clock, sopts);
  ASSERT_TRUE(standby.start().ok());

  std::vector<std::unique_ptr<TcpExecutorHarness>> fleet;
  for (int i = 0; i < kExecutors; ++i) {
    fleet.push_back(std::make_unique<TcpExecutorHarness>(
        clock, "127.0.0.1", rpc_port, push_port,
        std::make_unique<SleepEngine>(clock),
        polling_executor(static_cast<std::uint64_t>(i + 1), obs)));
    ASSERT_TRUE(fleet.back()->start().ok());
  }

  FailoverClientOptions copts;
  copts.rpc_port = rpc_port;
  if (streamed_client) copts.push_port = push_port;
  copts.max_attempts = 400;
  copts.backoff_initial_s = 0.01;
  copts.backoff_max_s = 0.2;
  copts.obs = &obs;
  FailoverClient client(copts);

  auto instance = client.create_instance(ClientId{1});
  ASSERT_TRUE(instance.ok()) << instance.error().str();
  EXPECT_EQ(client.streaming(instance.value()), streamed_client);
  auto accepted = client.submit(instance.value(), sleep_tasks(kTasks, 0.005));
  ASSERT_TRUE(accepted.ok()) << accepted.error().str();
  ASSERT_EQ(accepted.value(), kTasks);

  // Let the run get well underway, then kill the primary mid-flight: stop
  // serving, shut the dispatcher down, close its journal (fsync + release
  // the log directory for the standby).
  const auto kill_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  for (;;) {
    auto status = client.status();
    if (status.ok() && status.value().completed >= kTasks / 4) break;
    ASSERT_LT(std::chrono::steady_clock::now(), kill_deadline);
    nap_ms(10);
  }
  const DispatcherStatus at_kill = dispatcher->status();
  ASSERT_LT(at_kill.completed + at_kill.failed, kTasks)
      << "primary finished before the kill — lengthen the tasks";
  server->stop();
  server.reset();  // the server references the dispatcher: destroy it first
  dispatcher->shutdown();
  dispatcher.reset();
  journal.value().reset();

  ASSERT_TRUE(standby.wait_promoted(15.0))
      << "standby never promoted (applied_lsn=" << standby.applied_lsn()
      << ")";
  ASSERT_NE(standby.dispatcher(), nullptr);
  ASSERT_NE(standby.server(), nullptr);
  EXPECT_EQ(standby.server()->rpc_port(), rpc_port);

  // Takeover is continuous: counters picked up where the primary left off.
  const DispatcherStatus resumed = standby.dispatcher()->status();
  EXPECT_EQ(resumed.submitted, kTasks);
  EXPECT_GE(resumed.completed, shared_log ? at_kill.completed : 0);

  // The fleet re-registers against the promoted dispatcher and finishes
  // the remaining work.
  const auto finish_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  for (;;) {
    const DispatcherStatus status = standby.dispatcher()->status();
    if (status.completed + status.failed >= kTasks) break;
    ASSERT_LT(std::chrono::steady_clock::now(), finish_deadline)
        << "takeover stalled: completed=" << status.completed
        << " queued=" << status.queued
        << " dispatched=" << status.dispatched;
    nap_ms(20);
  }
  const DispatcherStatus final_status = standby.dispatcher()->status();
  EXPECT_EQ(final_status.completed, kTasks);
  EXPECT_EQ(final_status.failed, 0u);
  EXPECT_EQ(final_status.queued, 0u);
  EXPECT_EQ(final_status.dispatched, 0u);

  // Exactly-once delivery across the takeover: the failover client dedups
  // re-deliveries from the recovered mailbox, so collecting everything
  // yields each task id exactly once.
  std::set<std::uint64_t> ids;
  int idle_polls = 0;
  while (ids.size() < kTasks && idle_polls < 20) {
    auto batch = client.wait_results(instance.value(), 256, 0.25);
    if (!batch.ok() || batch.value().empty()) {
      ++idle_polls;
      continue;
    }
    idle_polls = 0;
    for (const auto& result : batch.value()) {
      EXPECT_TRUE(ids.insert(result.task_id.value).second)
          << "duplicate delivery of task " << result.task_id.value;
    }
  }
  EXPECT_EQ(ids.size(), kTasks);
  // A streamed client stays in streaming mode across the takeover (the
  // fallback poll that found results re-armed the push subscription
  // against the promoted dispatcher).
  EXPECT_EQ(client.streaming(instance.value()), streamed_client);

  // The client observed the outage and reconnected through it.
  EXPECT_GT(client.reconnects(), 0u);
  // At least one executor had to re-register with the new primary.
  std::uint64_t reregistrations = 0;
  for (auto& harness : fleet) {
    reregistrations += harness->runtime().stats().reregistrations;
  }
  EXPECT_GT(reregistrations, 0u);
  // Failover downtime was measured and published.
  EXPECT_GT(obs.registry().gauge("falkon.ha.standby.failover_s").value(), 0.0);

  for (auto& harness : fleet) harness->stop();
  standby.stop();
}

TEST(HaFailover, TakeoverFromSharedLogCompletesAllTasksExactlyOnce) {
  run_failover_scenario(/*shared_log=*/true);
}

TEST(HaFailover, TakeoverFromWarmImageCompletesAllTasksExactlyOnce) {
  run_failover_scenario(/*shared_log=*/false);
}

TEST(HaFailover, StreamedClientSurvivesTakeoverExactlyOnce) {
  run_failover_scenario(/*shared_log=*/true, /*streamed_client=*/true);
}

// ---- async group-commit journaling -----------------------------------------

TEST(HaAsyncJournal, BarrierImpliesDurabilityAcrossRestart) {
  TempDir dir;
  StateMachine shadow;
  Journal::Options jopts;
  jopts.dir = dir.path();
  {
    auto inner = Journal::open(jopts);
    ASSERT_TRUE(inner.ok()) << inner.error().str();
    // Tiny ring: a 200-record burst wraps it many times over, exercising
    // the producer-side backpressure path.
    AsyncJournal::Options aopts;
    aopts.queue_capacity = 8;
    AsyncJournal journal(inner.take(), aopts);

    const InstanceId instance{1};
    journal.on_instance_created(instance, ClientId{2});
    shadow.apply(RecInstanceCreated{instance, ClientId{2}});
    for (std::uint64_t i = 1; i <= 200; ++i) {
      std::vector<TaskSpec> one{make_sleep_task(TaskId{i}, 0.0)};
      journal.on_submit(instance, i, one);
      RecSubmit submit;
      submit.instance = instance;
      submit.submit_seq = i;
      submit.tasks = one;
      shadow.apply(submit);
    }
    journal.barrier();
    EXPECT_EQ(journal.backlog(), 0u);
  }  // destructor drains whatever barrier() left (nothing) and closes

  auto reopened = Journal::open(jopts);
  ASSERT_TRUE(reopened.ok()) << reopened.error().str();
  EXPECT_EQ(reopened.value()->last_lsn(), 201u);
  EXPECT_TRUE(
      images_equal(reopened.value()->recovered_image(), shadow.image()));
}

TEST(HaAsyncJournal, FetchDrainsThePipeFirst) {
  TempDir dir;
  Journal::Options jopts;
  jopts.dir = dir.path();
  auto inner = Journal::open(jopts);
  ASSERT_TRUE(inner.ok());
  AsyncJournal journal(inner.take());

  const InstanceId instance{1};
  journal.on_instance_created(instance, ClientId{2});
  for (std::uint64_t i = 1; i <= 50; ++i) {
    journal.on_submit(instance, i, {make_sleep_task(TaskId{i}, 0.0)});
  }

  // A replication fetch must never show a follower less than the producer
  // has enqueued: fetch barriers, so all 51 records are visible at once.
  const auto batch = journal.fetch(1, 1u << 20);
  EXPECT_FALSE(batch.is_snapshot);
  EXPECT_EQ(batch.first_lsn, 1u);
  EXPECT_EQ(batch.last_lsn, 51u);

  std::size_t frames = 0;
  ASSERT_TRUE(
      Wal::parse_frames(
          reinterpret_cast<const std::uint8_t*>(batch.payload.data()),
          batch.payload.size(),
          [&](const std::uint8_t*, std::size_t) { ++frames; })
          .ok());
  EXPECT_EQ(frames, 51u);
}

// ---- epoch fencing on the client -------------------------------------------

TEST(HaClient, ResyncsEpochAfterFenceRejection) {
  RealClock clock;
  obs::Obs obs;
  DispatcherConfig config;
  Dispatcher dispatcher(clock, config);
  TcpDispatcherServer server(dispatcher, &obs);
  ASSERT_TRUE(server.start().ok());
  server.set_epoch(3);

  FailoverClientOptions copts;
  copts.rpc_port = server.rpc_port();
  FailoverClient client(copts);
  auto instance = client.create_instance(ClientId{1});
  ASSERT_TRUE(instance.ok());

  // First submit is stamped with the pre-contact epoch 0 (always accepted)
  // and learns the server's regime from the ack.
  ASSERT_TRUE(client.submit(instance.value(), sleep_tasks(4, 0.0)).ok());
  EXPECT_EQ(client.epoch(), 3u);

  // The dispatcher moves to a newer regime; the client's next stamp (3) is
  // fenced off, re-synced via status(), and retried under epoch 4 with the
  // same submit_seq — accepted exactly once.
  server.set_epoch(4);
  auto accepted = client.submit(instance.value(), sleep_tasks(4, 0.0));
  ASSERT_TRUE(accepted.ok()) << accepted.error().str();
  EXPECT_EQ(client.epoch(), 4u);
  EXPECT_EQ(dispatcher.status().submitted, 8u);

  dispatcher.shutdown();
  server.stop();
}

// ---- election: chained replication and split-brain -------------------------

std::uint16_t reserve_port() {
  auto listener = net::TcpListener::bind(0);
  EXPECT_TRUE(listener.ok());
  if (!listener.ok()) return 0;
  const std::uint16_t port = listener.value().port();
  listener.value().close();
  return port;
}

TEST(HaChained, StandbyTailsAnotherStandby) {
  TempDir primary_dir, a_dir, b_dir;
  RealClock clock;
  obs::Obs obs;

  Journal::Options jopts;
  jopts.dir = primary_dir.path();
  auto journal = Journal::open(jopts);
  ASSERT_TRUE(journal.ok());

  Dispatcher dispatcher(clock, primary_config(obs, journal.value().get()));
  TcpDispatcherServer server(dispatcher, &obs);
  ASSERT_TRUE(server.start().ok());
  server.set_replication_source(journal.value().get());

  // Standby A tails the primary and serves its mirrored tail on its
  // election port; standby B tails A — the primary only ever sees one
  // follower.
  StandbyOptions aopts;
  aopts.primary_rpc_port = server.rpc_port();
  aopts.election_port = reserve_port();
  aopts.standby_dir = a_dir.path();
  aopts.poll_interval_s = 0.01;
  aopts.failover_after_s = 60.0;
  Standby a(clock, aopts);
  ASSERT_TRUE(a.start().ok());

  StandbyOptions bopts;
  bopts.primary_rpc_port = a.election_port();
  bopts.standby_dir = b_dir.path();
  bopts.poll_interval_s = 0.01;
  bopts.failover_after_s = 60.0;
  Standby b(clock, bopts);
  ASSERT_TRUE(b.start().ok());

  auto instance = dispatcher.create_instance(ClientId{1});
  ASSERT_TRUE(instance.ok());
  for (std::uint64_t i = 1; i <= 150; ++i) {
    std::vector<TaskSpec> one{make_sleep_task(TaskId{i}, 0.0)};
    ASSERT_TRUE(dispatcher.submit(instance.value(), one).ok());
  }
  const std::uint64_t last = journal.value()->last_lsn();

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(15);
  while (b.applied_lsn() < last) {
    ASSERT_LT(std::chrono::steady_clock::now(), deadline)
        << "chained standby stalled: a=" << a.applied_lsn()
        << " b=" << b.applied_lsn() << " want=" << last;
    nap_ms(10);
  }
  EXPECT_GE(a.applied_lsn(), last);
  EXPECT_GE(b.applied_lsn(), last);

  b.stop();
  a.stop();
  dispatcher.shutdown();
  server.stop();
}

TEST(HaElection, TwoStandbysExactlyOnePromotes) {
  constexpr std::uint64_t kTasks = 150;
  TempDir primary_dir, s0_dir, s1_dir;
  RealClock clock;
  obs::Obs obs;

  Journal::Options jopts;
  jopts.dir = primary_dir.path();
  auto journal = Journal::open(jopts);
  ASSERT_TRUE(journal.ok());

  auto dispatcher = std::make_unique<Dispatcher>(
      clock, primary_config(obs, journal.value().get()));
  auto server = std::make_unique<TcpDispatcherServer>(*dispatcher, &obs);
  ASSERT_TRUE(server->start().ok());
  server->set_replication_source(journal.value().get());
  const std::uint16_t rpc_port = server->rpc_port();
  const std::uint16_t push_port = server->push_port();

  const std::uint16_t eport0 = reserve_port();
  const std::uint16_t eport1 = reserve_port();
  const auto standby_options = [&](std::uint32_t rank, std::uint16_t my_port,
                                   std::uint16_t peer_port,
                                   std::uint32_t peer_rank,
                                   const std::string& dir) {
    StandbyOptions sopts;
    sopts.primary_rpc_port = rpc_port;
    sopts.rank = rank;
    sopts.election_port = my_port;
    sopts.peers.push_back({"127.0.0.1", peer_port, peer_rank});
    sopts.takeover_rpc_port = rpc_port;
    sopts.takeover_push_port = push_port;
    sopts.shared_log_dir = primary_dir.path();
    sopts.standby_dir = dir;
    sopts.poll_interval_s = 0.01;
    // Near-simultaneous timers on purpose: the election + journal fence
    // must serialise the promotion, not timing luck.
    sopts.failover_after_s = 0.3;
    sopts.dispatcher = primary_config(obs, nullptr);
    sopts.obs = &obs;
    return sopts;
  };
  Standby s0(clock, standby_options(0, eport0, eport1, 1, s0_dir.path()));
  Standby s1(clock, standby_options(1, eport1, eport0, 0, s1_dir.path()));
  ASSERT_TRUE(s0.start().ok());
  ASSERT_TRUE(s1.start().ok());

  std::vector<std::unique_ptr<TcpExecutorHarness>> fleet;
  for (int i = 0; i < 3; ++i) {
    fleet.push_back(std::make_unique<TcpExecutorHarness>(
        clock, "127.0.0.1", rpc_port, push_port,
        std::make_unique<SleepEngine>(clock),
        polling_executor(static_cast<std::uint64_t>(i + 1), obs)));
    ASSERT_TRUE(fleet.back()->start().ok());
  }

  FailoverClientOptions copts;
  copts.rpc_port = rpc_port;
  copts.max_attempts = 400;
  copts.obs = &obs;
  FailoverClient client(copts);
  auto instance = client.create_instance(ClientId{1});
  ASSERT_TRUE(instance.ok());
  ASSERT_TRUE(client.submit(instance.value(), sleep_tasks(kTasks, 0.005)).ok());

  // Kill the primary mid-run.
  const auto kill_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  for (;;) {
    auto status = client.status();
    if (status.ok() && status.value().completed >= kTasks / 4) break;
    ASSERT_LT(std::chrono::steady_clock::now(), kill_deadline);
    nap_ms(10);
  }
  server->stop();
  server.reset();
  dispatcher->shutdown();
  dispatcher.reset();
  journal.value().reset();

  // Exactly one standby wins: rank 0 (lowest alive). The loser must keep
  // standing by, then learn the winner's epoch by tailing it through the
  // taken-over endpoint.
  ASSERT_TRUE(s0.wait_promoted(15.0))
      << "rank-0 standby never promoted (applied=" << s0.applied_lsn() << ")";
  EXPECT_FALSE(s1.promoted()) << "split brain: both standbys promoted";
  EXPECT_EQ(s0.epoch(), 1u);

  const auto finish_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  for (;;) {
    const DispatcherStatus status = s0.dispatcher()->status();
    if (status.completed + status.failed >= kTasks) break;
    ASSERT_LT(std::chrono::steady_clock::now(), finish_deadline)
        << "takeover stalled: completed=" << status.completed;
    nap_ms(20);
  }
  EXPECT_EQ(s0.dispatcher()->status().completed, kTasks);
  EXPECT_FALSE(s1.promoted()) << "split brain: loser promoted after takeover";

  // Exactly-once delivery, same as the single-standby scenario.
  std::set<std::uint64_t> ids;
  int idle_polls = 0;
  while (ids.size() < kTasks && idle_polls < 20) {
    auto batch = client.wait_results(instance.value(), 256, 0.25);
    if (!batch.ok() || batch.value().empty()) {
      ++idle_polls;
      continue;
    }
    idle_polls = 0;
    for (const auto& result : batch.value()) {
      EXPECT_TRUE(ids.insert(result.task_id.value).second)
          << "duplicate delivery of task " << result.task_id.value;
    }
  }
  EXPECT_EQ(ids.size(), kTasks);
  // The client follows the promotion into the new regime on its next
  // epoch-bearing exchange.
  ASSERT_TRUE(client.status().ok());
  EXPECT_EQ(client.epoch(), 1u);

  // The loser eventually applies the winner's RecEpoch via replication.
  const auto learn_deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (s1.epoch() < 1) {
    ASSERT_LT(std::chrono::steady_clock::now(), learn_deadline)
        << "loser never learned the winner's epoch";
    nap_ms(10);
  }

  for (auto& harness : fleet) harness->stop();
  s1.stop();
  s0.stop();
}

// ---- soak: the testkit HA runner under the invariant model ------------------

TEST(HaSoak, PrimaryKillRunSatisfiesInvariants) {
  testkit::WorkloadSpec spec;
  spec.seed = 42;
  spec.task_count = 120;
  spec.executors = 4;
  spec.task_length_s = 0.01;
  spec.client_bundle = 16;
  spec.max_retries = 100;
  spec.replay_timeout_s = 0.5;
  spec.kill_primary_after = 0.3;

  const testkit::RunHistory history = testkit::run_tcp_ha(spec);
  const auto violations = testkit::check_invariants(history);
  EXPECT_TRUE(violations.empty()) << testkit::join_violations(violations);
  // Exactly one promotion: the seed primary plus one winner (I9 already
  // rejects epoch ties; this also rejects a second, later usurper).
  ASSERT_EQ(history.primary_epochs.size(), 2u)
      << "expected primary + exactly one promoted standby";
  EXPECT_EQ(history.primary_epochs[0], 0u);
  EXPECT_EQ(history.primary_epochs[1], 1u);
  EXPECT_EQ(history.completed, spec.task_count);
  EXPECT_EQ(history.result_ids.size(), spec.task_count);
}

}  // namespace
}  // namespace falkon::ha
