// WAL durability suite (docs/HA.md): torn-tail and corruption fuzzing
// against ha::Wal — recovery must stop at the last valid record and never
// crash, whatever garbage the tail holds — plus snapshot round-trips,
// record codec fuzz, and cold-restart recovery through ha::Journal
// (snapshot + replay reconstructs exactly the image a parallel
// StateMachine accumulated).
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/task.h"
#include "ha/journal.h"
#include "ha/state.h"
#include "ha/wal.h"

namespace falkon::ha {
namespace {

namespace fs = std::filesystem;

/// mkdtemp-backed scratch directory, recursively removed on destruction.
class TempDir {
 public:
  TempDir() {
    char pattern[] = "/tmp/falkon_wal_XXXXXX";
    const char* made = ::mkdtemp(pattern);
    EXPECT_NE(made, nullptr);
    path_ = made ? made : "";
  }
  ~TempDir() {
    if (!path_.empty()) {
      std::error_code ec;
      fs::remove_all(path_, ec);
    }
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

std::vector<std::uint8_t> payload_for(std::uint64_t lsn) {
  // Deterministic, length varies with lsn so frames straddle arbitrary
  // truncation points.
  std::vector<std::uint8_t> bytes(1 + (lsn * 7) % 97);
  for (std::size_t i = 0; i < bytes.size(); ++i) {
    bytes[i] = static_cast<std::uint8_t>((lsn * 131 + i * 31) & 0xff);
  }
  return bytes;
}

std::vector<std::uint8_t> read_all(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::vector<std::uint8_t>(std::istreambuf_iterator<char>(in),
                                   std::istreambuf_iterator<char>());
}

void write_all(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
}

/// Replay a directory and collect (lsn, payload) pairs.
struct Collected {
  ReplayStats stats;
  std::vector<std::pair<std::uint64_t, std::vector<std::uint8_t>>> records;
};

Collected collect(const std::string& dir, std::uint64_t from_lsn = 1) {
  Collected out;
  auto stats = Wal::replay(
      dir, from_lsn,
      [&](std::uint64_t lsn, const std::uint8_t* data, std::size_t size) {
        out.records.emplace_back(
            lsn, std::vector<std::uint8_t>(data, data + size));
        return true;
      });
  EXPECT_TRUE(stats.ok()) << stats.error().str();
  if (stats.ok()) out.stats = stats.value();
  return out;
}

// ---- basic append / replay -------------------------------------------------

TEST(Wal, AppendReplayRoundTrip) {
  TempDir dir;
  constexpr std::uint64_t kRecords = 50;
  {
    WalOptions options;
    options.dir = dir.path();
    auto wal = Wal::open(options);
    ASSERT_TRUE(wal.ok()) << wal.error().str();
    for (std::uint64_t i = 1; i <= kRecords; ++i) {
      auto lsn = wal.value()->append(payload_for(i));
      ASSERT_TRUE(lsn.ok()) << lsn.error().str();
      EXPECT_EQ(lsn.value(), i);  // LSNs are dense from 1
    }
    EXPECT_EQ(wal.value()->last_lsn(), kRecords);
    EXPECT_TRUE(wal.value()->sync().ok());
  }

  const Collected replayed = collect(dir.path());
  EXPECT_EQ(replayed.stats.records, kRecords);
  EXPECT_EQ(replayed.stats.first_lsn, 1u);
  EXPECT_EQ(replayed.stats.last_lsn, kRecords);
  EXPECT_FALSE(replayed.stats.torn_tail);
  ASSERT_EQ(replayed.records.size(), kRecords);
  for (std::uint64_t i = 1; i <= kRecords; ++i) {
    EXPECT_EQ(replayed.records[i - 1].first, i);
    EXPECT_EQ(replayed.records[i - 1].second, payload_for(i));
  }

  // from_lsn skips the prefix.
  const Collected tail = collect(dir.path(), kRecords - 4);
  EXPECT_EQ(tail.records.size(), 5u);
  EXPECT_EQ(tail.records.front().first, kRecords - 4);
}

TEST(Wal, ReopenContinuesLsnSequence) {
  TempDir dir;
  WalOptions options;
  options.dir = dir.path();
  {
    auto wal = Wal::open(options);
    ASSERT_TRUE(wal.ok());
    for (std::uint64_t i = 1; i <= 10; ++i) {
      ASSERT_TRUE(wal.value()->append(payload_for(i)).ok());
    }
  }
  {
    auto wal = Wal::open(options);
    ASSERT_TRUE(wal.ok());
    EXPECT_EQ(wal.value()->last_lsn(), 10u);
    EXPECT_EQ(wal.value()->next_lsn(), 11u);
    auto lsn = wal.value()->append(payload_for(11));
    ASSERT_TRUE(lsn.ok());
    EXPECT_EQ(lsn.value(), 11u);
  }
  EXPECT_EQ(collect(dir.path()).stats.records, 11u);
}

TEST(Wal, RotationAndCompaction) {
  TempDir dir;
  WalOptions options;
  options.dir = dir.path();
  options.segment_bytes = 512;  // force frequent rotation
  auto wal = Wal::open(options);
  ASSERT_TRUE(wal.ok());
  for (std::uint64_t i = 1; i <= 200; ++i) {
    ASSERT_TRUE(wal.value()->append(payload_for(i)).ok());
  }
  ASSERT_GT(wal.value()->segment_count(), 3u);

  // Compacting up to the last LSN drops every closed segment; the active
  // one always survives.
  wal.value()->compact(wal.value()->last_lsn());
  EXPECT_EQ(wal.value()->segment_count(), 1u);

  // The surviving records still replay cleanly and end at the same LSN.
  const Collected replayed = collect(dir.path());
  EXPECT_FALSE(replayed.stats.torn_tail);
  EXPECT_EQ(replayed.stats.last_lsn, 200u);
  EXPECT_GT(replayed.stats.first_lsn, 1u);
  for (const auto& [lsn, payload] : replayed.records) {
    EXPECT_EQ(payload, payload_for(lsn));
  }
}

TEST(Wal, FsyncPolicies) {
  for (const FsyncPolicy policy :
       {FsyncPolicy::kNone, FsyncPolicy::kEveryRecord,
        FsyncPolicy::kGroupCommit}) {
    TempDir dir;
    WalOptions options;
    options.dir = dir.path();
    options.fsync = policy;
    options.group_commit_interval_s = 0.001;
    auto wal = Wal::open(options);
    ASSERT_TRUE(wal.ok()) << fsync_policy_name(policy);
    for (std::uint64_t i = 1; i <= 20; ++i) {
      ASSERT_TRUE(wal.value()->append(payload_for(i)).ok());
    }
    EXPECT_TRUE(wal.value()->sync().ok());
    EXPECT_STRNE(fsync_policy_name(policy), "");
  }
}

TEST(Wal, InitialLsnStartsFreshLogMidSequence) {
  TempDir dir;
  WalOptions options;
  options.dir = dir.path();
  options.initial_lsn = 100;  // standby bootstrap continues numbering
  auto wal = Wal::open(options);
  ASSERT_TRUE(wal.ok());
  auto lsn = wal.value()->append(payload_for(100));
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(lsn.value(), 100u);
  const Collected replayed = collect(dir.path());
  EXPECT_EQ(replayed.stats.first_lsn, 100u);
  EXPECT_EQ(replayed.stats.last_lsn, 100u);
}

// ---- torn-tail / corruption fuzz ------------------------------------------

/// Seed one single-segment log with kRecords records and return the
/// pristine segment bytes plus its path.
struct SeededLog {
  std::string segment_path;
  std::vector<std::uint8_t> pristine;
  std::uint64_t records{0};
};

SeededLog seed_log(const std::string& dir, std::uint64_t records) {
  WalOptions options;
  options.dir = dir;
  auto wal = Wal::open(options);
  EXPECT_TRUE(wal.ok());
  for (std::uint64_t i = 1; i <= records; ++i) {
    EXPECT_TRUE(wal.value()->append(payload_for(i)).ok());
  }
  EXPECT_TRUE(wal.value()->sync().ok());
  SeededLog out;
  out.records = records;
  for (const auto& entry : fs::directory_iterator(dir)) {
    out.segment_path = entry.path().string();
  }
  EXPECT_FALSE(out.segment_path.empty());
  out.pristine = read_all(out.segment_path);
  return out;
}

/// The recovered log must be a valid prefix of the original: open() never
/// fails, every surviving record matches what was appended, and appending
/// afterwards continues from the recovered edge.
void expect_valid_prefix_recovery(const std::string& dir,
                                  std::uint64_t max_records) {
  WalOptions options;
  options.dir = dir;
  auto wal = Wal::open(options);
  ASSERT_TRUE(wal.ok()) << wal.error().str();
  const std::uint64_t recovered = wal.value()->last_lsn();
  EXPECT_LE(recovered, max_records);

  // Appending after recovery lands at recovered + 1 and replays back.
  auto lsn = wal.value()->append(payload_for(recovered + 1));
  ASSERT_TRUE(lsn.ok());
  EXPECT_EQ(lsn.value(), recovered + 1);
  wal.value().reset();

  const Collected replayed = collect(dir);
  EXPECT_FALSE(replayed.stats.torn_tail);  // open() truncated the tear away
  EXPECT_EQ(replayed.stats.last_lsn, recovered + 1);
  for (const auto& [record_lsn, payload] : replayed.records) {
    EXPECT_EQ(payload, payload_for(record_lsn)) << "lsn " << record_lsn;
  }
}

TEST(WalFuzz, TruncationAtEveryBoundaryRecoversValidPrefix) {
  TempDir seed_dir;
  const SeededLog log = seed_log(seed_dir.path(), 40);

  // Cut the segment at a spread of byte offsets, including mid-header,
  // mid-frame-header, and mid-payload cuts.
  for (std::size_t cut = 0; cut <= log.pristine.size();
       cut += (cut < 64 ? 1 : 13)) {
    TempDir dir;
    std::vector<std::uint8_t> bytes(log.pristine.begin(),
                                    log.pristine.begin() + cut);
    write_all(dir.path() + "/" + fs::path(log.segment_path).filename().string(),
              bytes);
    SCOPED_TRACE("cut at byte " + std::to_string(cut));
    expect_valid_prefix_recovery(dir.path(), log.records);
  }
}

TEST(WalFuzz, RandomByteFlipsNeverCrashRecovery) {
  TempDir seed_dir;
  const SeededLog log = seed_log(seed_dir.path(), 40);
  Rng rng{20260808};

  for (int trial = 0; trial < 200; ++trial) {
    TempDir dir;
    std::vector<std::uint8_t> bytes = log.pristine;
    // Flip 1-4 bytes anywhere: segment header, frame headers, payloads.
    const int flips = 1 + static_cast<int>(rng.next_u64() % 4);
    for (int i = 0; i < flips; ++i) {
      const std::size_t at = rng.next_u64() % bytes.size();
      bytes[at] ^= static_cast<std::uint8_t>(1 + (rng.next_u64() % 255));
    }
    write_all(dir.path() + "/" + fs::path(log.segment_path).filename().string(),
              bytes);
    SCOPED_TRACE("trial " + std::to_string(trial));
    // A flip inside the 16-byte segment header drops the whole segment;
    // anywhere else recovery keeps the longest clean prefix. Either way:
    // no crash, no invalid record surfaced (CRC catches the flip).
    expect_valid_prefix_recovery(dir.path(), log.records);
  }
}

TEST(WalFuzz, GarbageAppendedPastCleanTailIsDiscarded) {
  TempDir dir;
  const SeededLog log = seed_log(dir.path(), 10);
  std::vector<std::uint8_t> bytes = log.pristine;
  for (int i = 0; i < 37; ++i) {
    bytes.push_back(static_cast<std::uint8_t>(0xa5 ^ i));
  }
  write_all(log.segment_path, bytes);

  const Collected replayed = collect(dir.path());
  EXPECT_TRUE(replayed.stats.torn_tail);
  EXPECT_EQ(replayed.stats.records, 10u);  // stops at last valid record

  expect_valid_prefix_recovery(dir.path(), log.records);
}

TEST(WalFuzz, MissingMiddleSegmentStopsReplayAtGap) {
  TempDir dir;
  WalOptions options;
  options.dir = dir.path();
  options.segment_bytes = 512;
  {
    auto wal = Wal::open(options);
    ASSERT_TRUE(wal.ok());
    for (std::uint64_t i = 1; i <= 150; ++i) {
      ASSERT_TRUE(wal.value()->append(payload_for(i)).ok());
    }
    ASSERT_GT(wal.value()->segment_count(), 2u);
  }
  // Drop the second segment: records after the gap are unreachable.
  std::vector<std::string> segments;
  for (const auto& entry : fs::directory_iterator(dir.path())) {
    segments.push_back(entry.path().string());
  }
  std::sort(segments.begin(), segments.end());
  fs::remove(segments[1]);

  const Collected replayed = collect(dir.path());
  EXPECT_TRUE(replayed.stats.torn_tail);
  EXPECT_GT(replayed.stats.records, 0u);
  EXPECT_LT(replayed.stats.records, 150u);
  for (const auto& [lsn, payload] : replayed.records) {
    EXPECT_EQ(payload, payload_for(lsn));
  }
  // open() heals by discarding everything past the gap.
  expect_valid_prefix_recovery(dir.path(), 150);
}

// ---- frame helpers ---------------------------------------------------------

TEST(Wal, FrameHelpersRoundTripAndRejectTornBatch) {
  std::vector<std::uint8_t> batch;
  for (std::uint64_t i = 1; i <= 5; ++i) {
    const auto payload = payload_for(i);
    Wal::frame_record(batch, payload.data(), payload.size());
  }
  std::vector<std::vector<std::uint8_t>> parsed;
  ASSERT_TRUE(Wal::parse_frames(batch.data(), batch.size(),
                                [&](const std::uint8_t* data, std::size_t n) {
                                  parsed.emplace_back(data, data + n);
                                })
                  .ok());
  ASSERT_EQ(parsed.size(), 5u);
  for (std::uint64_t i = 1; i <= 5; ++i) {
    EXPECT_EQ(parsed[i - 1], payload_for(i));
  }

  // Unlike replay, a replication batch is strict: a torn or corrupt frame
  // is an error, not a crash edge.
  EXPECT_FALSE(Wal::parse_frames(batch.data(), batch.size() - 1,
                                 [](const std::uint8_t*, std::size_t) {})
                   .ok());
  batch[batch.size() - 1] ^= 0xff;
  EXPECT_FALSE(Wal::parse_frames(batch.data(), batch.size(),
                                 [](const std::uint8_t*, std::size_t) {})
                   .ok());
}

// ---- snapshots -------------------------------------------------------------

TEST(Snapshot, NewestWinsAndCorruptFallsBack) {
  TempDir dir;
  const std::vector<std::uint8_t> older{1, 2, 3};
  const std::vector<std::uint8_t> newer{9, 8, 7, 6};
  ASSERT_TRUE(write_snapshot(dir.path(), 10, 1, older).ok());
  ASSERT_TRUE(write_snapshot(dir.path(), 20, 2, newer).ok());

  auto loaded = load_latest_snapshot(dir.path());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->lsn, 20u);
  EXPECT_EQ(loaded->epoch, 2u);
  EXPECT_EQ(loaded->payload, newer);

  // Corrupt the newest: load falls back to the older one.
  for (const auto& entry : fs::directory_iterator(dir.path())) {
    if (entry.path().string().find("00000020") == std::string::npos) continue;
    auto bytes = read_all(entry.path().string());
    bytes.back() ^= 0xff;
    write_all(entry.path().string(), bytes);
  }
  loaded = load_latest_snapshot(dir.path());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->lsn, 10u);
  EXPECT_EQ(loaded->epoch, 1u);
  EXPECT_EQ(loaded->payload, older);
}

TEST(Snapshot, PrunesToNewestTwo) {
  TempDir dir;
  for (std::uint64_t lsn = 1; lsn <= 6; ++lsn) {
    ASSERT_TRUE(write_snapshot(dir.path(), lsn, lsn, {std::uint8_t(lsn)}).ok());
  }
  std::size_t count = 0;
  for (const auto& entry : fs::directory_iterator(dir.path())) {
    (void)entry;
    ++count;
  }
  EXPECT_EQ(count, 2u);
  auto loaded = load_latest_snapshot(dir.path());
  ASSERT_TRUE(loaded.has_value());
  EXPECT_EQ(loaded->lsn, 6u);
}

// ---- record codec ----------------------------------------------------------

std::vector<LogRecord> sample_records() {
  std::vector<LogRecord> records;
  records.push_back(RecInstanceCreated{InstanceId{1}, ClientId{7}});
  RecSubmit submit;
  submit.instance = InstanceId{1};
  submit.submit_seq = 3;
  submit.tasks = {make_sleep_task(TaskId{1}, 0.25),
                  make_data_task(TaskId{2}, 0.5, DataLocation::kSharedFs,
                                 IoMode::kReadWrite, 4096, 512)};
  records.push_back(submit);
  records.push_back(RecAssign{ExecutorId{9}, {TaskId{1}, TaskId{2}}});
  records.push_back(RecRequeue{{TaskId{2}}, true});
  TaskResult result;
  result.task_id = TaskId{1};
  result.executor_id = ExecutorId{9};
  result.exit_code = 0;
  result.state = TaskState::kCompleted;
  result.stdout_data = "out";
  result.exec_time_s = 0.125;
  records.push_back(RecComplete{InstanceId{1}, result, false});
  records.push_back(RecDelivered{InstanceId{1}, {TaskId{1}}});
  records.push_back(RecInstanceDestroyed{InstanceId{1}});
  return records;
}

TEST(RecordCodec, RoundTripEveryType) {
  for (const LogRecord& record : sample_records()) {
    const auto bytes = encode_record(record);
    auto decoded = decode_record(bytes.data(), bytes.size());
    ASSERT_TRUE(decoded.ok()) << record_summary(record);
    EXPECT_EQ(record_type(decoded.value()), record_type(record));
    EXPECT_EQ(encode_record(decoded.value()), bytes)
        << record_summary(record);
    EXPECT_FALSE(record_summary(decoded.value()).empty());
  }
}

TEST(RecordCodec, TruncationAndFlipsNeverCrash) {
  Rng rng{424242};
  for (const LogRecord& record : sample_records()) {
    const auto bytes = encode_record(record);
    // Every strict prefix must decode to an error (trailing bytes are an
    // error too, so only the exact encoding round-trips).
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
      auto decoded = decode_record(bytes.data(), cut);
      EXPECT_FALSE(decoded.ok()) << record_summary(record) << " cut " << cut;
    }
    for (int trial = 0; trial < 100; ++trial) {
      auto mutated = bytes;
      mutated[rng.next_u64() % mutated.size()] ^=
          static_cast<std::uint8_t>(1 + rng.next_u64() % 255);
      (void)decode_record(mutated.data(), mutated.size());  // must not crash
    }
  }
}

// ---- state machine: snapshot + replay equivalence --------------------------

std::vector<LogRecord> workload_records() {
  std::vector<LogRecord> records;
  records.push_back(RecInstanceCreated{InstanceId{1}, ClientId{5}});
  records.push_back(RecInstanceCreated{InstanceId{2}, ClientId{6}});
  for (std::uint64_t i = 1; i <= 20; ++i) {
    RecSubmit submit;
    submit.instance = InstanceId{1 + (i % 2)};
    submit.submit_seq = i;
    submit.tasks = {make_sleep_task(TaskId{i}, 0.01)};
    records.push_back(submit);
  }
  records.push_back(
      RecAssign{ExecutorId{1}, {TaskId{1}, TaskId{3}, TaskId{5}}});
  records.push_back(RecRequeue{{TaskId{3}}, true});
  for (std::uint64_t i = 1; i <= 10; ++i) {
    TaskResult result;
    result.task_id = TaskId{i};
    result.executor_id = ExecutorId{1};
    result.state = (i % 4 == 0) ? TaskState::kFailed : TaskState::kCompleted;
    result.exit_code = (i % 4 == 0) ? 1 : 0;
    records.push_back(
        RecComplete{InstanceId{1 + (i % 2)}, result, i % 7 == 0});
  }
  records.push_back(RecDelivered{InstanceId{1}, {TaskId{2}, TaskId{4}}});
  records.push_back(RecInstanceDestroyed{InstanceId{2}});
  return records;
}

TEST(StateMachine, SnapshotMidStreamThenReplayEqualsStraightReplay) {
  const std::vector<LogRecord> records = workload_records();
  StateMachine straight;
  for (const LogRecord& record : records) straight.apply(record);

  // Snapshot at every possible cut point: reset-from-image plus the suffix
  // must land on the identical canonical image.
  for (std::size_t cut = 0; cut <= records.size(); ++cut) {
    StateMachine prefix;
    for (std::size_t i = 0; i < cut; ++i) prefix.apply(records[i]);

    const auto bytes = encode_image(prefix.image());
    auto decoded = decode_image(bytes.data(), bytes.size());
    ASSERT_TRUE(decoded.ok()) << "cut " << cut;

    StateMachine resumed;
    resumed.reset(decoded.value());
    for (std::size_t i = cut; i < records.size(); ++i) {
      resumed.apply(records[i]);
    }
    EXPECT_TRUE(images_equal(resumed.image(), straight.image()))
        << "snapshot at record " << cut << " diverged";
  }
}

// ---- journal: cold restart -------------------------------------------------

/// Drive the same transitions into a journal and a shadow StateMachine.
void drive(core::StateJournal& journal, StateMachine& shadow,
           std::uint64_t tasks) {
  const InstanceId instance{1};
  journal.on_instance_created(instance, ClientId{3});
  shadow.apply(RecInstanceCreated{instance, ClientId{3}});
  std::vector<TaskSpec> specs;
  for (std::uint64_t i = 1; i <= tasks; ++i) {
    specs.push_back(make_sleep_task(TaskId{i}, 0.0));
  }
  journal.on_submit(instance, 1, specs);
  {
    RecSubmit submit;
    submit.instance = instance;
    submit.submit_seq = 1;
    submit.tasks = specs;
    shadow.apply(submit);
  }
  std::vector<TaskId> assigned;
  for (std::uint64_t i = 1; i <= tasks / 2; ++i) assigned.push_back(TaskId{i});
  journal.on_assign(ExecutorId{4}, assigned);
  shadow.apply(RecAssign{ExecutorId{4}, assigned});
  journal.on_requeue({TaskId{1}}, true);
  shadow.apply(RecRequeue{{TaskId{1}}, true});
  for (std::uint64_t i = 2; i <= tasks / 2; ++i) {
    TaskResult result;
    result.task_id = TaskId{i};
    result.executor_id = ExecutorId{4};
    journal.on_complete(instance, result, false);
    shadow.apply(RecComplete{instance, result, false});
  }
  journal.on_delivered(instance, {TaskId{2}});
  shadow.apply(RecDelivered{instance, {TaskId{2}}});
}

TEST(Journal, ColdRestartRecoversExactImage) {
  TempDir dir;
  StateMachine shadow;
  Journal::Options options;
  options.dir = dir.path();
  options.fsync = FsyncPolicy::kEveryRecord;
  {
    auto journal = Journal::open(options);
    ASSERT_TRUE(journal.ok()) << journal.error().str();
    drive(*journal.value(), shadow, 16);
    EXPECT_GT(journal.value()->last_lsn(), 0u);
  }
  auto reopened = Journal::open(options);
  ASSERT_TRUE(reopened.ok()) << reopened.error().str();
  EXPECT_TRUE(
      images_equal(reopened.value()->recovered_image(), shadow.image()));
  EXPECT_FALSE(reopened.value()->recovery_stats().torn_tail);
}

TEST(Journal, SnapshotCompactsAndStillRecoversExactImage) {
  TempDir dir;
  StateMachine shadow;
  Journal::Options options;
  options.dir = dir.path();
  options.snapshot_every = 8;    // snapshot + compact constantly
  options.segment_bytes = 1024;  // rotate constantly
  std::uint64_t wal_lsn = 0;
  {
    auto journal = Journal::open(options);
    ASSERT_TRUE(journal.ok());
    drive(*journal.value(), shadow, 64);
    ASSERT_TRUE(journal.value()->snapshot_now().ok());
    wal_lsn = journal.value()->last_lsn();
  }
  // Compaction actually removed covered segments: replay starts past 1.
  auto stats = Wal::replay(dir.path(), 1,
                           [](std::uint64_t, const std::uint8_t*,
                              std::size_t) { return true; });
  ASSERT_TRUE(stats.ok());
  EXPECT_GT(stats.value().first_lsn, 1u);

  auto reopened = Journal::open(options);
  ASSERT_TRUE(reopened.ok()) << reopened.error().str();
  EXPECT_EQ(reopened.value()->last_lsn(), wal_lsn);
  EXPECT_TRUE(
      images_equal(reopened.value()->recovered_image(), shadow.image()));
}

TEST(Journal, TornTailRecoversPrefixWithoutCrashing) {
  TempDir dir;
  Journal::Options options;
  options.dir = dir.path();
  options.fsync = FsyncPolicy::kEveryRecord;
  {
    auto journal = Journal::open(options);
    ASSERT_TRUE(journal.ok());
    StateMachine shadow;
    drive(*journal.value(), shadow, 16);
  }
  // Tear the WAL tail mid-frame.
  for (const auto& entry : fs::directory_iterator(dir.path())) {
    const std::string path = entry.path().string();
    if (path.find("wal-") == std::string::npos) continue;
    auto bytes = read_all(path);
    ASSERT_GT(bytes.size(), 5u);
    bytes.resize(bytes.size() - 5);
    write_all(path, bytes);
  }
  auto reopened = Journal::open(options);
  ASSERT_TRUE(reopened.ok()) << reopened.error().str();
  EXPECT_GT(reopened.value()->last_lsn(), 0u);
  // The journal accepts appends again after healing the tear.
  reopened.value()->on_instance_created(InstanceId{9}, ClientId{9});
  EXPECT_TRUE(reopened.value()->sync().ok());
}

TEST(Journal, BootstrapFromImageContinuesLsnNumbering) {
  TempDir dir;
  StateMachine warm;
  warm.apply(RecInstanceCreated{InstanceId{1}, ClientId{2}});
  {
    RecSubmit submit;
    submit.instance = InstanceId{1};
    submit.submit_seq = 4;
    submit.tasks = {make_sleep_task(TaskId{1}, 0.0)};
    warm.apply(submit);
  }

  Journal::Options options;
  options.dir = dir.path();
  auto journal = Journal::open(options, warm.image(), 57);
  ASSERT_TRUE(journal.ok()) << journal.error().str();
  EXPECT_EQ(journal.value()->last_lsn(), 57u);
  EXPECT_TRUE(images_equal(journal.value()->recovered_image(), warm.image()));

  // New records continue the primary's numbering.
  journal.value()->on_instance_created(InstanceId{2}, ClientId{3});
  EXPECT_EQ(journal.value()->last_lsn(), 58u);

  // And a plain reopen recovers bootstrap snapshot + appended records.
  journal.value().reset();
  auto reopened = Journal::open(options);
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ(reopened.value()->last_lsn(), 58u);
}

// ---- journal: promotion epochs ---------------------------------------------

TEST(JournalEpoch, PromoteEpochFencesSharedDirectory) {
  TempDir dir;
  Journal::Options options;
  options.dir = dir.path();
  {
    auto journal = Journal::open(options);
    ASSERT_TRUE(journal.ok());
    EXPECT_EQ(journal.value()->epoch(), 0u);
    StateMachine shadow;
    drive(*journal.value(), shadow, 8);
  }

  // First promoter wins: recovery appends RecEpoch{3} and fsyncs it before
  // open() returns — the append is the election commit point.
  options.promote_epoch = 3;
  {
    auto winner = Journal::open(options);
    ASSERT_TRUE(winner.ok()) << winner.error().str();
    EXPECT_EQ(winner.value()->epoch(), 3u);
  }
  EXPECT_EQ(read_log_epoch(dir.path()), 3u);

  // A racing promoter targeting the same (or an older) epoch loses the
  // fence: the directory already records an epoch >= its claim.
  auto loser = Journal::open(options);
  ASSERT_FALSE(loser.ok());
  EXPECT_EQ(loser.error().code, ErrorCode::kAlreadyExists);
  options.promote_epoch = 2;
  auto stale = Journal::open(options);
  ASSERT_FALSE(stale.ok());
  EXPECT_EQ(stale.error().code, ErrorCode::kAlreadyExists);

  // A later regime still gets through, and the epoch sticks across an
  // unfenced reopen.
  options.promote_epoch = 4;
  {
    auto next = Journal::open(options);
    ASSERT_TRUE(next.ok()) << next.error().str();
    EXPECT_EQ(next.value()->epoch(), 4u);
  }
  options.promote_epoch = 0;
  auto plain = Journal::open(options);
  ASSERT_TRUE(plain.ok());
  EXPECT_EQ(plain.value()->epoch(), 4u);
}

TEST(JournalEpoch, EpochSurvivesSnapshotCompaction) {
  TempDir dir;
  Journal::Options options;
  options.dir = dir.path();
  options.promote_epoch = 7;
  {
    auto journal = Journal::open(options);
    ASSERT_TRUE(journal.ok()) << journal.error().str();
    StateMachine shadow;
    drive(*journal.value(), shadow, 16);
    // Compaction may drop the segment holding RecEpoch{7}; the snapshot
    // header must carry the epoch forward.
    ASSERT_TRUE(journal.value()->snapshot_now().ok());
  }
  EXPECT_EQ(read_log_epoch(dir.path()), 7u);
  options.promote_epoch = 0;
  auto reopened = Journal::open(options);
  ASSERT_TRUE(reopened.ok()) << reopened.error().str();
  EXPECT_EQ(reopened.value()->epoch(), 7u);
}

TEST(JournalEpoch, BootstrapOpenHonoursPromoteEpoch) {
  TempDir dir;
  StateMachine warm;
  warm.apply(RecInstanceCreated{InstanceId{1}, ClientId{2}});

  Journal::Options options;
  options.dir = dir.path();
  options.promote_epoch = 5;
  auto journal = Journal::open(options, warm.image(), 12);
  ASSERT_TRUE(journal.ok()) << journal.error().str();
  EXPECT_EQ(journal.value()->epoch(), 5u);
  journal.value().reset();
  EXPECT_EQ(read_log_epoch(dir.path()), 5u);
}

}  // namespace
}  // namespace falkon::ha
