// Stress and chaos tests: many executors joining and leaving while flaky
// tasks flow, verifying the system-wide exactly-once-result invariant; and
// property sweeps over the simulator checking conservation laws.
#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <set>

#include "common/clock.h"
#include "common/rng.h"
#include "core/client.h"
#include "core/service.h"
#include "sim/sim_falkon.h"

namespace falkon {
namespace {

/// Randomly failing engine (p = failure probability per attempt).
class ChaosEngine final : public core::TaskEngine {
 public:
  ChaosEngine(std::uint64_t seed, double failure_probability)
      : rng_(seed), failure_probability_(failure_probability) {}

  TaskResult run(const TaskSpec& task) override {
    TaskResult result;
    result.task_id = task.id;
    bool fail;
    {
      std::lock_guard lock(mu_);
      fail = rng_.bernoulli(failure_probability_);
    }
    if (fail) {
      result.exit_code = 1;
      result.state = TaskState::kFailed;
    } else {
      result.exit_code = 0;
      result.state = TaskState::kCompleted;
    }
    return result;
  }

 private:
  std::mutex mu_;
  Rng rng_;
  double failure_probability_;
};

TEST(Stress, ChurningExecutorsAndFlakyTasksStayExactlyOnce) {
  RealClock clock;
  core::DispatcherConfig config;
  config.replay.max_retries = 25;  // flaky, not broken: retries always win
  core::InProcFalkon falkon(clock, config);

  std::atomic<std::uint64_t> seed{1};
  auto factory = [&](Clock&) {
    return std::make_unique<ChaosEngine>(seed.fetch_add(1), 0.2);
  };
  ASSERT_TRUE(falkon.add_executors(4, factory, core::ExecutorOptions{}).ok());

  auto session = core::FalkonSession::open(falkon.client(), ClientId{1});
  ASSERT_TRUE(session.ok());

  constexpr int kTasks = 2000;
  std::vector<TaskSpec> tasks;
  for (int i = 1; i <= kTasks; ++i) {
    tasks.push_back(make_sleep_task(TaskId{static_cast<std::uint64_t>(i)}, 0.0));
  }
  ASSERT_TRUE(session.value()->submit(std::move(tasks)).ok());

  // Churn: repeatedly release an executor and add a fresh one while the
  // workload drains.
  std::atomic<bool> stop{false};
  std::thread churner([&] {
    Rng rng(99);
    while (!stop.load()) {
      (void)falkon.dispatcher().request_release(1);
      (void)falkon.add_executors(1, factory, core::ExecutorOptions{});
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  });

  auto results = session.value()->wait(kTasks, 60.0);
  stop.store(true);
  churner.join();

  ASSERT_TRUE(results.ok()) << results.error().str();
  std::map<std::uint64_t, int> counts;
  for (const auto& result : results.value()) {
    ++counts[result.task_id.value];
    EXPECT_TRUE(result.success());
  }
  EXPECT_EQ(counts.size(), static_cast<std::size_t>(kTasks));
  for (const auto& [id, n] : counts) {
    EXPECT_EQ(n, 1) << "task " << id << " delivered " << n << " times";
  }
}

TEST(Stress, ManyExecutorsManyTasksInProc) {
  RealClock clock;
  core::InProcFalkon falkon(clock, core::DispatcherConfig{});
  ASSERT_TRUE(falkon
                  .add_executors(32,
                                 [](Clock&) {
                                   return std::make_unique<core::NoopEngine>();
                                 },
                                 core::ExecutorOptions{})
                  .ok());
  auto session = core::FalkonSession::open(falkon.client(), ClientId{1});
  ASSERT_TRUE(session.ok());
  std::vector<TaskSpec> tasks;
  for (int i = 1; i <= 20000; ++i) {
    tasks.push_back(make_sleep_task(TaskId{static_cast<std::uint64_t>(i)}, 0.0));
  }
  auto results = session.value()->run(std::move(tasks), 60.0);
  ASSERT_TRUE(results.ok()) << results.error().str();
  EXPECT_EQ(results.value().size(), 20000u);
  EXPECT_EQ(falkon.dispatcher().status().completed, 20000u);
  EXPECT_EQ(falkon.dispatcher().status().queued, 0u);
  EXPECT_EQ(falkon.dispatcher().status().dispatched, 0u);
}

TEST(Stress, ManyConcurrentInstances) {
  RealClock clock;
  core::InProcFalkon falkon(clock, core::DispatcherConfig{});
  ASSERT_TRUE(falkon
                  .add_executors(4,
                                 [](Clock&) {
                                   return std::make_unique<core::NoopEngine>();
                                 },
                                 core::ExecutorOptions{})
                  .ok());
  // 8 client threads, each with its own instance, interleaved.
  std::vector<std::thread> clients;
  std::atomic<int> failures{0};
  for (int c = 0; c < 8; ++c) {
    clients.emplace_back([&, c] {
      auto session = core::FalkonSession::open(
          falkon.client(), ClientId{static_cast<std::uint64_t>(c + 1)});
      if (!session.ok()) {
        failures.fetch_add(1);
        return;
      }
      std::vector<TaskSpec> tasks;
      for (int i = 1; i <= 200; ++i) {
        // Distinct id spaces per client.
        tasks.push_back(make_sleep_task(
            TaskId{static_cast<std::uint64_t>(c * 1000000 + i)}, 0.0));
      }
      auto results = session.value()->run(std::move(tasks), 60.0);
      if (!results.ok() || results.value().size() != 200) {
        failures.fetch_add(1);
        return;
      }
      // Results must belong to this client's id space only.
      for (const auto& result : results.value()) {
        if (result.task_id.value / 1000000 != static_cast<std::uint64_t>(c)) {
          failures.fetch_add(1);
          return;
        }
      }
    });
  }
  for (auto& thread : clients) thread.join();
  EXPECT_EQ(failures.load(), 0);
}

/// Simulator conservation properties across a configuration sweep.
class SimConservation
    : public ::testing::TestWithParam<std::tuple<int, double, bool>> {};

TEST_P(SimConservation, CompletesEverythingAndRespectsBounds) {
  const auto [executors, task_length, piggyback] = GetParam();
  sim::SimFalkonConfig config;
  config.executors = executors;
  config.task_length_s = task_length;
  config.piggyback = piggyback;
  config.task_count = static_cast<std::uint64_t>(executors) * 50;
  const auto result = sim::simulate_falkon(config);

  // Conservation: every submitted task completes exactly once.
  EXPECT_EQ(result.completed, config.task_count);
  std::uint64_t sampled = 0;
  for (auto s : result.throughput_samples) sampled += s;
  EXPECT_EQ(sampled, config.task_count);

  // Busy executors never exceed the pool.
  for (double busy : result.busy_series) {
    EXPECT_LE(busy, static_cast<double>(executors));
    EXPECT_GE(busy, 0.0);
  }

  // Makespan at least the obvious lower bounds.
  const double work_bound = static_cast<double>(config.task_count) *
                            task_length / executors;
  EXPECT_GE(result.makespan_s, work_bound - 1e-9);
  EXPECT_GE(result.overhead_stats.min(), 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, SimConservation,
    ::testing::Combine(::testing::Values(1, 16, 256),
                       ::testing::Values(0.0, 1.0, 30.0),
                       ::testing::Values(false, true)));

}  // namespace
}  // namespace falkon
