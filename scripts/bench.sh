#!/bin/sh
# Dispatch-path benchmark gate: build Release, run the Fig. 3 / Fig. 5
# benches (they write BENCH_*.json metric snapshots into the repo root),
# and compare every `bench.*` throughput gauge against the committed
# baselines in bench/baselines/.
#
# Throughput gauges are lower-bounded: a run must reach at least
# (1 - BENCH_TOLERANCE) of its baseline. Latency gauges (names ending in
# `_ms`, e.g. bench.micro.ha.failover_downtime_ms) are upper-bounded
# instead: a run must stay below (1 + BENCH_TOLERANCE) of its baseline.
# The default tolerance of 0.5 is deliberately loose — these benchmarks run
# on whatever noisy host CI got, and the regressions worth gating on (an
# accidentally serialised RPC path, a lock back in the hot loop, a
# synchronous fsync back under the dispatcher locks) move the numbers by
# multiples, not percents.
#
#   scripts/bench.sh            run + compare against baselines
#   scripts/bench.sh --update   run + rewrite the baselines
set -eu
cd "$(dirname "$0")/.."

TOL="${BENCH_TOLERANCE:-0.5}"
JOBS="$(nproc 2>/dev/null || echo 4)"
BENCHES="bench_fig3_throughput bench_fig5_bundling bench_ha"
SNAPSHOTS="BENCH_fig3_throughput.json BENCH_fig5_bundling.json BENCH_ha.json"

echo "== Release build (bench) =="
cmake -B build-bench -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
# shellcheck disable=SC2086
cmake --build build-bench -j "$JOBS" --target $BENCHES >/dev/null

for bench in $BENCHES; do
  echo "== $bench =="
  "./build-bench/bench/$bench"
done

if [ "${1:-}" = "--update" ]; then
  mkdir -p bench/baselines
  # shellcheck disable=SC2086
  cp $SNAPSHOTS bench/baselines/
  echo "baselines updated: bench/baselines/"
  exit 0
fi

# Pull "bench.*" gauges (name value per line) out of a metrics snapshot.
# The fig3 TCP curve now covers the paper's full x-axis (8..256 executors),
# but only the 1/4-executor points gate: the large-N columns are
# informational and far too host-sensitive to fail CI on.
extract() {
  sed -n 's/^ *"\(bench\.[^"]*\)": \([-0-9.eE+]*\),\{0,1\}$/\1 \2/p' "$1" |
    grep -Ev '^bench\.fig3\.[a-z_]+\{executors=(8|16|32|64|128|256)\}' || true
}

status=0
for name in $SNAPSHOTS; do
  base="bench/baselines/$name"
  if [ ! -f "$base" ]; then
    echo "missing baseline $base (run scripts/bench.sh --update)"
    status=1
    continue
  fi
  echo "== compare $name (tolerance $TOL) =="
  extract "$base" >"build-bench/base.$name.txt"
  extract "$name" >"build-bench/cur.$name.txt"
  if ! awk -v tol="$TOL" '
      NR == FNR { base[$1] = $2; next }
      ($1 in base) && base[$1] > 0 {
        if ($1 ~ /_ms(\{|$)/) {
          ceil = (1 + tol) * base[$1]
          if ($2 > ceil) {
            printf "FAIL %s: %.0f > ceiling %.0f (baseline %.0f)\n", $1, $2, ceil, base[$1]
            bad = 1
          } else {
            printf "ok   %s: %.0f (baseline %.0f)\n", $1, $2, base[$1]
          }
        } else {
          floor = (1 - tol) * base[$1]
          if ($2 < floor) {
            printf "FAIL %s: %.0f < floor %.0f (baseline %.0f)\n", $1, $2, floor, base[$1]
            bad = 1
          } else {
            printf "ok   %s: %.0f (baseline %.0f)\n", $1, $2, base[$1]
          }
        }
        seen[$1] = 1
      }
      END {
        for (k in base) if (!(k in seen)) {
          printf "FAIL %s: present in baseline but missing from run\n", k
          bad = 1
        }
        exit bad
      }' "build-bench/base.$name.txt" "build-bench/cur.$name.txt"; then
    status=1
  fi
done

if [ "$status" -ne 0 ]; then
  echo "BENCH FAILED"
  exit 1
fi
echo "BENCH OK"
