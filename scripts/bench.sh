#!/bin/sh
# Dispatch-path benchmark gate: build Release, run the Fig. 3 / Fig. 5
# benches (they write BENCH_*.json metric snapshots into the repo root),
# and compare every `bench.*` throughput gauge against the committed
# baselines in bench/baselines/.
#
# Throughput gauges are lower-bounded: a run must reach at least
# (1 - BENCH_TOLERANCE) of its baseline. Latency and footprint gauges
# (names ending in `_ms` or `_kb`, e.g. bench.micro.ha.failover_downtime_ms
# and bench.micro.connscale.rss_per_conn_kb) are upper-bounded instead: a
# run must stay below (1 + BENCH_TOLERANCE) of its baseline.
# The default tolerance of 0.5 is deliberately loose — these benchmarks run
# on whatever noisy host CI got, and the regressions worth gating on (an
# accidentally serialised RPC path, a lock back in the hot loop, a
# synchronous fsync back under the dispatcher locks) move the numbers by
# multiples, not percents.
#
#   scripts/bench.sh            run + compare against baselines
#   scripts/bench.sh --update   run + rewrite the baselines
set -eu
cd "$(dirname "$0")/.."

TOL="${BENCH_TOLERANCE:-0.5}"
# Separate, tighter tolerance for the fig3 shape check: the TCP curve must
# not collapse at scale (each 2^k point >= (1 - MONO_TOL) of the 2^(k-1)
# point), independent of how the absolute baseline numbers drift.
MONO_TOL="${BENCH_MONO_TOLERANCE:-0.20}"
JOBS="$(nproc 2>/dev/null || echo 4)"
BENCHES="bench_fig3_throughput bench_fig4_data_throughput bench_fig5_bundling bench_ha bench_micro"
SNAPSHOTS="BENCH_fig3_throughput.json BENCH_fig4.json BENCH_fig5_bundling.json BENCH_ha.json BENCH_micro.json"

echo "== Release build (bench) =="
cmake -B build-bench -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
# shellcheck disable=SC2086
cmake --build build-bench -j "$JOBS" --target $BENCHES >/dev/null

for bench in $BENCHES; do
  echo "== $bench =="
  if [ "$bench" = "bench_micro" ]; then
    # Only the connection-scale probe gates (per-connection RSS ceiling);
    # the full micro suite stays a local tool. 1024 connections needs a
    # raised fd ulimit, so the gated run stops at the paper-scale 256 point.
    "./build-bench/bench/$bench" --benchmark_filter='BM_ConnectionScale/(16|256)/'
  else
    "./build-bench/bench/$bench"
  fi
done

if [ "${1:-}" = "--update" ]; then
  mkdir -p bench/baselines
  # shellcheck disable=SC2086
  cp $SNAPSHOTS bench/baselines/
  echo "baselines updated: bench/baselines/"
  exit 0
fi

# Pull "bench.*" gauges (name value per line) out of a metrics snapshot.
# The fig3 TCP curve now covers the paper's full x-axis (8..256 executors),
# but only the 1/4-executor points gate absolutely: the large-N columns
# (including the stage_share breakdown gauges, which carry an extra
# `stage=` label) are informational here — their *shape* is gated by the
# monotonicity check below instead. Of the connection-scale probe only the
# per-connection RSS figure gates; threads/fds/rss_mb/notify_us are
# process-wide totals too host-sensitive to fail CI on.
extract() {
  sed -n 's/^ *"\(bench\.[^"]*\)": \([-0-9.eE+]*\),\{0,1\}$/\1 \2/p' "$1" |
    grep -Ev '^bench\.fig3\.[a-z_]+\{executors=(8|16|32|64|128|256)[,}]' |
    grep -Ev '^bench\.micro\.connscale\.(threads|fds|rss_mb|notify_us)\{' || true
}

status=0
for name in $SNAPSHOTS; do
  base="bench/baselines/$name"
  if [ ! -f "$base" ]; then
    echo "missing baseline $base (run scripts/bench.sh --update)"
    status=1
    continue
  fi
  echo "== compare $name (tolerance $TOL) =="
  extract "$base" >"build-bench/base.$name.txt"
  extract "$name" >"build-bench/cur.$name.txt"
  if ! awk -v tol="$TOL" '
      NR == FNR { base[$1] = $2; next }
      ($1 in base) && base[$1] > 0 {
        if ($1 ~ /_(ms|kb)(\{|$)/) {
          ceil = (1 + tol) * base[$1]
          if ($2 > ceil) {
            printf "FAIL %s: %.0f > ceiling %.0f (baseline %.0f)\n", $1, $2, ceil, base[$1]
            bad = 1
          } else {
            printf "ok   %s: %.0f (baseline %.0f)\n", $1, $2, base[$1]
          }
        } else {
          floor = (1 - tol) * base[$1]
          if ($2 < floor) {
            printf "FAIL %s: %.0f < floor %.0f (baseline %.0f)\n", $1, $2, floor, base[$1]
            bad = 1
          } else {
            printf "ok   %s: %.0f (baseline %.0f)\n", $1, $2, base[$1]
          }
        }
        seen[$1] = 1
      }
      END {
        for (k in base) if (!(k in seen)) {
          printf "FAIL %s: present in baseline but missing from run\n", k
          bad = 1
        }
        exit bad
      }' "build-bench/base.$name.txt" "build-bench/cur.$name.txt"; then
    status=1
  fi
done

# Shape gate on the fig3 TCP curve (paper fig. 3: throughput must hold up
# as the executor count doubles). Each doubling of the executor count may
# cost at most MONO_TOL of throughput; where the bench skips powers of two
# (16 -> 64 is two doublings) the allowance compounds per doubling — a
# curve that collapses at 64+ executors fails even if the small-N absolute
# gates pass.
echo "== fig3 TCP curve monotonicity (tolerance $MONO_TOL per doubling) =="
sed -n 's/^ *"bench\.fig3\.tcp_tasks_per_s{executors=\([0-9]*\)}": \([-0-9.eE+]*\),\{0,1\}$/\1 \2/p' \
    BENCH_fig3_throughput.json | sort -n >"build-bench/fig3_curve.txt"
if ! awk -v tol="$MONO_TOL" '
    {
      if (NR > 1) {
        doublings = log($1 / prev_n) / log(2)
        floor_v = prev_v * exp(doublings * log(1 - tol))
        if ($2 < floor_v) {
          printf "FAIL executors=%s: %.0f < floor %.0f (executors=%s point %.0f, %.1f doublings)\n",
                 $1, $2, floor_v, prev_n, prev_v, doublings
          bad = 1
        } else {
          printf "ok   executors=%s: %.0f tasks/s (floor %.0f)\n", $1, $2, floor_v
        }
      } else {
        printf "ok   executors=%s: %.0f tasks/s\n", $1, $2
      }
      prev_n = $1; prev_v = $2
    }
    END { if (NR < 2) { print "FAIL: fewer than 2 fig3 TCP points"; bad = 1 }
          exit bad }' "build-bench/fig3_curve.txt"; then
  status=1
fi

# Per-connection footprint scaling: the 256-connection RSS figure must stay
# within 2x of the 16-connection figure (section 3.2's "light-weight"
# claim — per-connection cost must not grow with the fleet).
echo "== per-connection RSS scaling (256 vs 16) =="
if ! awk '
    /"bench\.micro\.connscale\.rss_per_conn_kb\{executors=16\}"/ { r16 = $2 + 0 }
    /"bench\.micro\.connscale\.rss_per_conn_kb\{executors=256\}"/ { r256 = $2 + 0 }
    END {
      if (r16 <= 0 || r256 <= 0) { print "FAIL: rss_per_conn_kb gauges missing"; exit 1 }
      if (r256 > 2 * r16) {
        printf "FAIL rss_per_conn_kb: %.1f at 256 conns > 2x the %.1f at 16\n", r256, r16
        exit 1
      }
      printf "ok   rss_per_conn_kb: %.1f at 256 conns vs %.1f at 16\n", r256, r16
    }' BENCH_micro.json; then
  status=1
fi

# deliver_result stage-share ceiling (docs/PERFORMANCE.md): batched result
# routing + push-mode streaming attack the {8,9} leg, so the share of task
# wall-clock spent between exec end and client route at the 256-executor
# tail must not creep back up. Gated against the committed baseline share
# with a relative allowance — shares are ratios of the same traced run, so
# unlike absolute throughput they are host-insensitive.
SHARE_TOL="${BENCH_SHARE_TOLERANCE:-0.25}"
echo "== fig3 deliver_result stage-share ceiling at 256 executors (tolerance $SHARE_TOL) =="
if ! base_share=$(sed -n 's/^ *"bench\.fig3\.stage_share{executors=256,stage=deliver_result}": \([-0-9.eE+]*\),\{0,1\}$/\1/p' \
      bench/baselines/BENCH_fig3_throughput.json) || [ -z "$base_share" ]; then
  echo "FAIL: deliver_result stage-share missing from baseline"
  status=1
else
  cur_share=$(sed -n 's/^ *"bench\.fig3\.stage_share{executors=256,stage=deliver_result}": \([-0-9.eE+]*\),\{0,1\}$/\1/p' \
      BENCH_fig3_throughput.json)
  if [ -z "$cur_share" ]; then
    echo "FAIL: deliver_result stage-share missing from run"
    status=1
  elif ! awk -v cur="$cur_share" -v base="$base_share" -v tol="$SHARE_TOL" '
      BEGIN {
        ceil = base * (1 + tol)
        if (cur > ceil) {
          printf "FAIL deliver_result share: %.3f > ceiling %.3f (baseline %.3f)\n", cur, ceil, base
          exit 1
        }
        printf "ok   deliver_result share: %.3f (baseline %.3f, ceiling %.3f)\n", cur, base, ceil
      }'; then
    status=1
  fi
fi

# Data-diffusion locality gate (docs/DATA.md): with warm caches and
# good-cache-compute routing the TCP fleet must sustain at least 3x the
# all-miss shared-FS series — the ratio is host-independent (both series
# run on the same machine in the same process), so it gates hard where the
# absolute floors above stay loose.
echo "== fig4 data-diffusion warm/miss ratio (>= 3x) =="
if ! awk '
    /"bench\.fig4\.tcp_tasks_per_s\{cache=miss,executors=8\}"/ { miss = $2 + 0 }
    /"bench\.fig4\.tcp_tasks_per_s\{cache=warm,executors=8\}"/ { warm = $2 + 0 }
    END {
      if (miss <= 0 || warm <= 0) { print "FAIL: fig4 tcp gauges missing"; exit 1 }
      if (warm < 3 * miss) {
        printf "FAIL warm vs miss: %.0f tasks/s < 3x the all-miss %.0f\n", warm, miss
        exit 1
      }
      printf "ok   warm vs miss: %.0f tasks/s vs %.0f (%.1fx)\n", warm, miss, warm / miss
    }' BENCH_fig4.json; then
  status=1
fi

if [ "$status" -ne 0 ]; then
  echo "BENCH FAILED"
  exit 1
fi
echo "BENCH OK"
