#!/bin/sh
# CI entry point: build and test the two configurations that gate a change.
#
#   1. Release         — the configuration the benchmarks run in;
#   2. ASan + UBSan    — memory errors and UB across the whole test suite.
#
# An optional third pass (`scripts/ci.sh tsan`) builds with ThreadSanitizer
# and runs the concurrency-heavy suites (obs registry/tracer, dispatcher,
# executor, net reactor/TCP, stress, chaos) — slower, so it is opt-in.
#
# An optional benchmark pass (`scripts/ci.sh bench`) runs the dispatch-path
# benchmarks and gates on the committed baselines (scripts/bench.sh) —
# opt-in because throughput numbers only mean something on a quiet host.
#
# The chaos stage re-runs the fault-injection soak (test_chaos, fixed seeds
# — see docs/FAULTS.md) under each sanitizer explicitly, so a recovery-path
# regression fails CI with the soak's own diagnostics even when the rest of
# the suite passes.
#
# The prop stage re-runs the seeded property suites (ctest -L prop, see
# docs/TESTING.md) at a raised fixed budget, so every CI run scans more
# workloads than a default local ctest while staying reproducible.
#
# The ha stage (ctest -L ha, see docs/HA.md) does the same for the
# durability/failover stack — WAL torn-tail fuzzing, standby takeover, the
# primary-kill chaos case, the two-standby election/split-brain regression
# and the multi-standby double-failover soak (kill the primary, then kill
# the winning standby) — under ASan+UBSan, and again under TSan in the
# opt-in pass (the WAL append path, the replication tail thread, the
# election exchange and the promotion handoff are exactly the cross-thread
# sharing TSan is for).
#
# The data stage (ctest -L data, see docs/DATA.md) re-runs the
# data-diffusion stack — wire fuzz for the digest/fetch/evict messages and
# the end-to-end TCP locality/P2P-fetch suite — under ASan+UBSan, and the
# TCP suite again under TSan in the opt-in pass (digest application races
# the router's holder index; evictions race in-flight routing decisions).
#
# An optional coverage pass (`scripts/ci.sh coverage`) builds with gcov
# instrumentation, runs the tier-1 + prop suites, and reports line/branch
# coverage via gcovr when the tool is installed — informational only,
# never a gate (and skipped gracefully where gcovr is absent).
set -eu
cd "$(dirname "$0")/.."

JOBS="$(nproc 2>/dev/null || echo 4)"

echo "== Release build + ctest =="
cmake -B build-ci-release -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
cmake --build build-ci-release -j "$JOBS"
ctest --test-dir build-ci-release --output-on-failure -j "$JOBS"

echo "== Property suites (raised fixed budget) =="
FALKON_PROP_CASES=400 \
  ctest --test-dir build-ci-release --output-on-failure -L prop

echo "== ASan+UBSan build + ctest =="
cmake -B build-ci-asan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
      -DFALKON_ASAN=ON >/dev/null
cmake --build build-ci-asan -j "$JOBS"
ctest --test-dir build-ci-asan --output-on-failure -j "$JOBS"

echo "== Chaos soak under ASan+UBSan =="
ctest --test-dir build-ci-asan --output-on-failure -R 'test_chaos|test_fault'

echo "== Multi-standby double-failover chaos variant under ASan+UBSan =="
# Run the election chaos cases by themselves too: a split-brain or a
# stalled second election fails this stage with only its own output,
# instead of being buried in the full soak log.
build-ci-asan/tests/test_chaos --gtest_filter='ChaosHa.*'

echo "== HA durability/failover suite under ASan+UBSan =="
ctest --test-dir build-ci-asan --output-on-failure -L ha

echo "== Data-diffusion suite under ASan+UBSan =="
# ctest -L data (see docs/DATA.md): digest advertising over heartbeats,
# good-cache-compute routing, peer-to-peer fetch and the LRU evict path —
# the suites to re-run by themselves when touching the data plane.
ctest --test-dir build-ci-asan --output-on-failure -L data

echo "== Net + TCP suites with 2 reactor loops forced =="
# FALKON_REACTOR_LOOPS=2 (see core/service_tcp.h) overrides the auto loop
# count, so the multi-loop reactor paths — cross-loop accept handoff,
# affinity migration, sibling listeners, push-stream drains racing loop
# threads — run even on single-core CI hosts where auto resolves to 1.
FALKON_REACTOR_LOOPS=2 \
  ctest --test-dir build-ci-asan --output-on-failure -R 'test_net$|test_tcp'

if [ "${1:-}" = "bench" ]; then
  echo "== Benchmark gate =="
  scripts/bench.sh
fi

if [ "${1:-}" = "coverage" ]; then
  echo "== Coverage build + tier-1 and prop suites =="
  cmake -B build-ci-cov -S . -DCMAKE_BUILD_TYPE=Debug \
        -DFALKON_COVERAGE=ON >/dev/null
  cmake --build build-ci-cov -j "$JOBS"
  ctest --test-dir build-ci-cov --output-on-failure -j "$JOBS" \
        -L 'unit|integration'
  ctest --test-dir build-ci-cov --output-on-failure -L prop
  if command -v gcovr >/dev/null 2>&1; then
    echo "== Coverage report (informational, no gate) =="
    gcovr --root . --filter 'src/' build-ci-cov \
          --print-summary --txt build-ci-cov/coverage.txt || true
    echo "full report: build-ci-cov/coverage.txt"
  else
    echo "gcovr not installed; skipping coverage report"
  fi
fi

if [ "${1:-}" = "tsan" ]; then
  echo "== TSan build + concurrency suites =="
  cmake -B build-ci-tsan -S . -DCMAKE_BUILD_TYPE=RelWithDebInfo \
        -DFALKON_TSAN=ON >/dev/null
  cmake --build build-ci-tsan -j "$JOBS"
  # test_net/test_tcp cover the reactor: loop threads owning disjoint
  # connection sets while producers append to outboxes and handlers run on
  # the pool — exactly the sharing TSan is for. (test_net$ keeps the
  # 10k-connection test_net_soak out of the TSan pass: 20k fds at TSan
  # slowdown blows the time budget without adding new interleavings.)
  ctest --test-dir build-ci-tsan --output-on-failure -j "$JOBS" \
        -R 'test_obs|test_dispatcher|test_executor|test_stress|test_net$|test_tcp|test_wal|test_ha|test_dataaware'
  echo "== Sharded-reactor suites under TSan =="
  # The multi-loop paths alone first, so a race report names the shard
  # machinery (accept handoff, set_affinity migration, cross-thread flush
  # routing, per-loop buffer pools) instead of being buried in the suite.
  build-ci-tsan/tests/test_net --gtest_filter='Reactor.*:Rpc.AffinityKeyPinsConnectionsToKeyedLoop:Rpc.WatermarkBackpressureIsolatedPerLoop:Rpc.AcceptBackoffRecoversWithShardedLoops:Push.NotifyFromForeignThreadLandsOnOwningLoop'
  echo "== Net + TCP suites with 2 reactor loops forced under TSan =="
  # Same forced multi-loop coverage as the ASan stage: the streaming
  # client's receiver thread, the dispatcher's stream drain and two loop
  # threads all touch the mailbox/cursor state this PR added.
  FALKON_REACTOR_LOOPS=2 \
    ctest --test-dir build-ci-tsan --output-on-failure -R 'test_net$|test_tcp'
  echo "== Election and split-brain regression under TSan =="
  # The election path is all cross-thread: tail threads answering
  # ElectionPing while the failover timer promotes, two standbys racing
  # for the shared-directory fence. Run those cases alone first so a race
  # report names the election, then the full chaos soak.
  build-ci-tsan/tests/test_ha --gtest_filter='HaElection.*:HaSoak.*'
  build-ci-tsan/tests/test_chaos --gtest_filter='ChaosHa.*'
  echo "== Chaos soak under TSan =="
  ctest --test-dir build-ci-tsan --output-on-failure -R 'test_chaos|test_fault'
fi

echo "CI OK"
