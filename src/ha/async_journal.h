// ha::AsyncJournal — group-commit journaling off the dispatcher hot path
// (docs/HA.md).
//
// ha::Journal appends synchronously: every hook encodes, CRCs and writes
// under the dispatcher locks that guard the transition, so WAL latency is
// serialised into the dispatch path. AsyncJournal decouples them: hooks
// only move the LogRecord into a bounded MPSC ring (a Vyukov-style
// sequence-numbered cell array — producers claim a ticket with one
// fetch_add while the dispatcher lock is held, so ring order IS the
// dispatcher's linearisation order) and a single drain thread replays the
// ring into the wrapped Journal, which still honours its fsync policy.
//
// Durability contract: StateJournal::barrier() blocks until every record
// enqueued before the call has been handed to the inner journal. The
// dispatcher calls it after releasing its locks and before acknowledging a
// submit, so "submit acked" still implies "record reached the WAL" —
// exactly the guarantee the synchronous path gave (under kGroupCommit
// neither path implies fsync-on-ack; that is the policy's contract).
//
// Backpressure: a full ring blocks the producer (bounded by ring drain
// latency), which is never worse than the synchronous append it replaced.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "ha/journal.h"

namespace falkon::ha {

class AsyncJournal final : public core::StateJournal,
                           public core::ReplicationSource {
 public:
  struct Options {
    /// Ring capacity in records; rounded up to a power of two. A full ring
    /// blocks producers until the drain thread frees a cell.
    std::size_t queue_capacity{4096};
  };

  /// Wraps an opened Journal; the drain thread starts immediately.
  explicit AsyncJournal(std::unique_ptr<Journal> inner);
  AsyncJournal(std::unique_ptr<Journal> inner, Options options);
  /// Drains everything still queued, then stops the thread.
  ~AsyncJournal() override;

  AsyncJournal(const AsyncJournal&) = delete;
  AsyncJournal& operator=(const AsyncJournal&) = delete;

  [[nodiscard]] Journal& inner() { return *inner_; }
  [[nodiscard]] std::uint64_t epoch() const { return inner_->epoch(); }

  /// Records enqueued but not yet appended (observability / tests).
  [[nodiscard]] std::uint64_t backlog() const;

  // core::StateJournal -----------------------------------------------------
  void on_instance_created(InstanceId instance, ClientId client) override;
  void on_instance_destroyed(InstanceId instance) override;
  void on_submit(InstanceId instance, std::uint64_t submit_seq,
                 const std::vector<TaskSpec>& tasks) override;
  void on_assign(ExecutorId executor,
                 const std::vector<TaskId>& tasks) override;
  void on_requeue(const std::vector<TaskId>& tasks, bool retry) override;
  void on_complete(InstanceId instance, const TaskResult& result,
                   bool quarantined) override;
  void on_delivered(InstanceId instance,
                    const std::vector<TaskId>& tasks) override;
  void barrier() override;

  // core::ReplicationSource ------------------------------------------------
  /// Drains the ring first so a follower never observes the journal behind
  /// the dispatcher's acknowledged state.
  Batch fetch(std::uint64_t from_lsn, std::uint32_t max_bytes) override;
  void note_ack(std::uint64_t applied_lsn) override;

 private:
  struct Cell {
    std::atomic<std::uint64_t> seq{0};
    LogRecord record;
  };

  void enqueue(LogRecord record);
  void drain_loop();

  std::unique_ptr<Journal> inner_;
  std::vector<Cell> ring_;
  std::size_t mask_{0};

  /// Next ticket to claim (producers) / next cell to consume (drain).
  std::atomic<std::uint64_t> head_{0};
  std::atomic<std::uint64_t> tail_{0};
  /// Count of records fully handed to inner_ (barrier watermark).
  std::atomic<std::uint64_t> appended_{0};

  std::atomic<bool> stopping_{false};
  /// Wakeup plumbing: drain sleeps on a 1 ms tick when the ring stays
  /// empty; producers wake it early only when the backlog gets deep, and
  /// barrier() callers wake it explicitly (flush_requested_), then sleep
  /// until appended_ catches up to their ticket. The drain skips the
  /// barrier futex entirely while barrier_waiters_ is zero.
  std::mutex wake_mu_;
  std::condition_variable drain_cv_;    // producers -> drain thread
  std::condition_variable barrier_cv_;  // drain thread -> barrier()/dtor
  std::atomic<bool> drain_sleeping_{false};
  std::atomic<bool> flush_requested_{false};
  std::atomic<int> barrier_waiters_{0};

  /// Drain-thread-only scratch: records moved out of the ring for one
  /// Journal::append_records batch (kept across laps to reuse capacity).
  std::vector<LogRecord> batch_;

  std::thread drain_thread_;
};

}  // namespace falkon::ha
