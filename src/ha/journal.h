// ha::Journal — the durable dispatcher journal (docs/HA.md).
//
// Implements core::StateJournal on top of ha::Wal: every dispatcher
// transition becomes one LogRecord, applied to an in-memory StateMachine
// and appended to the segmented WAL under one mutex — so the WAL order,
// the state machine and the replication tail always agree. Periodically
// (snapshot_every records) the current image is written as a snapshot and
// fully-covered WAL segments are compacted, which bounds recovery to
// one snapshot load plus at most snapshot_every record replays per
// segment-rotation interval.
//
// It also implements core::ReplicationSource: a warm standby pulls the
// framed record tail (kept in memory, bounded by repl_tail_bytes) via
// ReplFetch, or a full image when it has fallen behind the tail.
//
// Lock discipline: mu_ is a leaf — hooks run under dispatcher locks and
// never call back out (core/journal.h contract).
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/result.h"
#include "core/journal.h"
#include "ha/state.h"
#include "ha/wal.h"
#include "obs/obs.h"

namespace falkon::ha {

// ---- snapshot files (snap-<lsn>.snap: "FSNP" v2, crc-checked) ----------

struct SnapshotInfo {
  std::uint64_t lsn{0};
  std::uint64_t epoch{0};  // promotion epoch at snapshot time (v1 files: 0)
  std::vector<std::uint8_t> payload;  // encode_image bytes
};

/// Write an image snapshot at `lsn` under `epoch` (temp file + rename:
/// readers never see a partial snapshot) and prune all but the newest two.
Status write_snapshot(const std::string& dir, std::uint64_t lsn,
                      std::uint64_t epoch,
                      const std::vector<std::uint8_t>& payload);

/// Newest snapshot that passes its CRC; corrupt ones are skipped in favour
/// of older ones. nullopt when none is loadable. Reads both the v2 header
/// (with epoch) and legacy v1 (epoch reported as 0).
[[nodiscard]] std::optional<SnapshotInfo> load_latest_snapshot(
    const std::string& dir);

/// Highest epoch recorded in `dir` (newest snapshot header and every
/// RecEpoch past it). This is the promotion fence: a promoting process
/// re-reads it after binding and aborts if someone recorded a higher
/// epoch. 0 when the directory is empty or pre-epoch.
[[nodiscard]] std::uint64_t read_log_epoch(const std::string& dir);

// ---- the journal --------------------------------------------------------

class Journal final : public core::StateJournal, public core::ReplicationSource {
 public:
  struct Options {
    std::string dir;  // holds wal-*.log segments and snap-*.snap files
    FsyncPolicy fsync{FsyncPolicy::kGroupCommit};
    double group_commit_interval_s{0.02};
    std::uint64_t segment_bytes{8ull << 20};
    /// Write a snapshot + compact every N appended records (0 disables).
    std::uint64_t snapshot_every{4096};
    /// In-memory framed-record tail served to pulling standbys; a follower
    /// further behind than this gets a full snapshot instead.
    std::size_t repl_tail_bytes{4u << 20};
    /// Non-zero: fence recovery to this epoch. open() fails with
    /// kAlreadyExists when the recovered epoch is already >= this
    /// value (another process won the promotion race), otherwise appends
    /// RecEpoch{promote_epoch} and fsyncs it before returning — the append
    /// IS the election commit point for processes sharing the directory.
    std::uint64_t promote_epoch{0};
    obs::Obs* obs{nullptr};
  };

  /// Recover from `dir`: load the newest good snapshot, let Wal::open
  /// repair any torn tail, replay records past the snapshot into the state
  /// machine. An empty directory yields an empty journal at LSN 0.
  static Result<std::unique_ptr<Journal>> open(Options options);

  /// Bootstrap a *fresh* directory from a warm in-memory image at
  /// `last_lsn` (standby promotion without a shared log directory): writes
  /// the image as the base snapshot and starts the WAL at last_lsn + 1.
  static Result<std::unique_ptr<Journal>> open(
      Options options, const core::DispatcherImage& bootstrap_image,
      std::uint64_t bootstrap_lsn);

  /// State reconstructed by open() — feed it to Dispatcher::restore()
  /// before attaching the journal to a live dispatcher.
  [[nodiscard]] core::DispatcherImage recovered_image() const;

  [[nodiscard]] std::uint64_t last_lsn() const;
  /// Current promotion epoch (recovered, possibly bumped by promote_epoch).
  [[nodiscard]] std::uint64_t epoch() const;
  /// Torn-tail / record-count diagnostics from recovery.
  [[nodiscard]] const ReplayStats& recovery_stats() const;

  Status sync();
  /// Force a snapshot + compaction now (tests, clean shutdown).
  Status snapshot_now();

  /// Apply + append one record under mu_. Every StateJournal hook funnels
  /// here; AsyncJournal's drain thread calls it directly when replaying
  /// its ring into this journal.
  void append_record(const LogRecord& record);

  /// Apply + append a run of records under one mu_ acquisition and one WAL
  /// write (Wal::append_frames). Semantically identical to calling
  /// append_record for each element in order; AsyncJournal's drain thread
  /// uses it to amortize the per-record syscall and lock costs across a
  /// ring batch. Records are consumed (payloads moved into the state
  /// machine after encoding) — the caller's vector holds moved-from
  /// records on return.
  void append_records(std::vector<LogRecord>& records);

  // core::StateJournal -----------------------------------------------------
  void on_instance_created(InstanceId instance, ClientId client) override;
  void on_instance_destroyed(InstanceId instance) override;
  void on_submit(InstanceId instance, std::uint64_t submit_seq,
                 const std::vector<TaskSpec>& tasks) override;
  void on_assign(ExecutorId executor,
                 const std::vector<TaskId>& tasks) override;
  void on_requeue(const std::vector<TaskId>& tasks, bool retry) override;
  void on_complete(InstanceId instance, const TaskResult& result,
                   bool quarantined) override;
  void on_delivered(InstanceId instance,
                    const std::vector<TaskId>& tasks) override;

  // core::ReplicationSource ------------------------------------------------
  Batch fetch(std::uint64_t from_lsn, std::uint32_t max_bytes) override;
  void note_ack(std::uint64_t applied_lsn) override;

 private:
  explicit Journal(Options options);

  Status snapshot_locked();
  /// Bump records_since_snapshot_ by `new_records` and snapshot when the
  /// cadence (scaled by StateMachine::live_size) is due.
  void maybe_snapshot_locked(std::uint64_t new_records);

  Options options_;
  mutable std::mutex mu_;
  std::unique_ptr<Wal> wal_;
  StateMachine sm_;
  core::DispatcherImage recovered_;
  std::uint64_t last_lsn_{0};
  std::uint64_t records_since_snapshot_{0};
  /// Reused record-encode buffer for append_records (guarded by mu_).
  wire::Writer scratch_writer_;

  /// A run of `count` consecutive framed records starting at first_lsn —
  /// one run per append_records batch (the batch's frame buffer moves in
  /// wholesale, no per-record tail allocation), one per single append.
  /// fetch() slices mid-run by walking frame headers.
  struct TailRun {
    std::uint64_t first_lsn{0};
    std::uint64_t count{0};
    std::vector<std::uint8_t> framed;  // [len][crc][payload] runs
  };
  std::deque<TailRun> tail_;
  std::size_t tail_bytes_{0};

  obs::Counter* m_records_{nullptr};
  obs::Counter* m_snapshots_{nullptr};
  obs::Gauge* m_last_lsn_{nullptr};
  obs::Gauge* m_acked_lsn_{nullptr};
  obs::Gauge* m_lag_{nullptr};
};

}  // namespace falkon::ha
