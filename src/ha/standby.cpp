#include "ha/standby.h"

#include <chrono>

#include "common/logging.h"
#include "net/rpc.h"

namespace falkon::ha {
namespace {

double monotonic_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void real_sleep_s(double seconds) {
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

}  // namespace

Standby::Standby(Clock& clock, StandbyOptions options)
    : clock_(clock), options_(std::move(options)) {
  if (options_.obs != nullptr) {
    auto& reg = options_.obs->registry();
    m_applied_ = &reg.gauge("falkon.ha.standby.applied_lsn");
    m_failover_s_ = &reg.gauge("falkon.ha.standby.failover_s");
  }
}

Standby::~Standby() { stop(); }

Status Standby::start() {
  if (options_.standby_dir.empty()) {
    return make_error(ErrorCode::kInvalidArgument, "standby_dir not set");
  }
  if (options_.primary_rpc_port == 0) {
    return make_error(ErrorCode::kInvalidArgument, "primary_rpc_port not set");
  }
  stopping_.store(false, std::memory_order_release);
  tail_thread_ = std::thread([this] { tail_loop(); });
  return ok_status();
}

void Standby::stop() {
  stopping_.store(true, std::memory_order_release);
  if (tail_thread_.joinable()) tail_thread_.join();
  if (server_) server_->stop();
}

bool Standby::wait_promoted(double timeout_s) {
  std::unique_lock lock(promote_mu_);
  promote_cv_.wait_for(lock, std::chrono::duration<double>(timeout_s),
                       [this] { return promoted(); });
  return promoted();
}

bool Standby::fetch_once() {
  if (!rpc_) {
    auto rpc = net::RpcClient::connect(options_.primary_host,
                                       options_.primary_rpc_port);
    if (!rpc.ok()) return false;
    rpc_ = std::make_unique<net::RpcClient>(rpc.take());
  }

  wire::ReplFetch fetch;
  fetch.from_lsn = applied_.load(std::memory_order_relaxed) + 1;
  fetch.max_bytes = options_.fetch_max_bytes;
  auto reply = rpc_->call(fetch);
  if (!reply.ok()) {
    rpc_.reset();
    return false;
  }
  saw_primary_ = true;

  bool caught_up = false;
  if (const auto* append = std::get_if<wire::ReplAppend>(&reply.value())) {
    if (append->payload.empty()) {
      caught_up = true;
    } else {
      std::uint64_t lsn = append->first_lsn;
      std::uint64_t applied = applied_.load(std::memory_order_relaxed);
      bool bad = false;
      auto st = Wal::parse_frames(
          reinterpret_cast<const std::uint8_t*>(append->payload.data()),
          append->payload.size(),
          [&](const std::uint8_t* payload, std::size_t size) {
            if (bad) return;
            auto record = decode_record(payload, size);
            if (!record.ok()) {
              bad = true;
              return;
            }
            if (lsn > applied) {
              sm_.apply(record.value());
              applied = lsn;
            }
            lsn += 1;
          });
      if (!st.ok() || bad) {
        LOG_WARN("ha", "standby: bad replication batch at lsn %llu",
                 static_cast<unsigned long long>(lsn));
        rpc_.reset();
        return false;
      }
      applied_.store(applied, std::memory_order_release);
    }
  } else if (const auto* snap =
                 std::get_if<wire::ReplSnapshot>(&reply.value())) {
    auto image = decode_image(
        reinterpret_cast<const std::uint8_t*>(snap->payload.data()),
        snap->payload.size());
    if (!image.ok()) {
      LOG_WARN("ha", "standby: bad replication snapshot at lsn %llu",
               static_cast<unsigned long long>(snap->lsn));
      rpc_.reset();
      return false;
    }
    sm_.reset(image.value());
    applied_.store(snap->lsn, std::memory_order_release);
  } else {
    rpc_.reset();  // protocol confusion: redial
    return false;
  }

  if (m_applied_ != nullptr) {
    m_applied_->set(
        static_cast<double>(applied_.load(std::memory_order_relaxed)));
  }
  wire::ReplAck ack;
  ack.applied_lsn = applied_.load(std::memory_order_relaxed);
  (void)rpc_->call(ack);  // best-effort progress report

  if (caught_up) real_sleep_s(options_.poll_interval_s);
  return true;
}

void Standby::tail_loop() {
  double first_failure_s = -1.0;
  while (!stopping_.load(std::memory_order_acquire)) {
    if (fetch_once()) {
      first_failure_s = -1.0;
      continue;
    }
    const double now = monotonic_s();
    if (first_failure_s < 0) first_failure_s = now;
    if (now - first_failure_s >= options_.failover_after_s &&
        (saw_primary_ || options_.promote_without_contact)) {
      promote();
      return;
    }
    real_sleep_s(options_.poll_interval_s);
  }
}

void Standby::promote() {
  const double start_s = monotonic_s();
  LOG_INFO("ha", "standby promoting: applied_lsn=%llu",
           static_cast<unsigned long long>(
               applied_.load(std::memory_order_relaxed)));

  // Recover the authoritative image. The shared log directory wins when
  // readable: it contains records appended after our last fetch.
  core::DispatcherImage image;
  bool recovered = false;
  if (!options_.shared_log_dir.empty()) {
    Journal::Options jopts = options_.journal;
    jopts.dir = options_.shared_log_dir;
    jopts.obs = options_.obs;
    auto journal = Journal::open(std::move(jopts));
    if (journal.ok()) {
      journal_ = journal.take();
      image = journal_->recovered_image();
      recovered = true;
    } else {
      LOG_WARN("ha", "standby: shared log unusable (%s), using warm image",
               journal.error().message.c_str());
    }
  }
  if (!recovered) {
    Journal::Options jopts = options_.journal;
    jopts.dir = options_.standby_dir;
    jopts.obs = options_.obs;
    auto journal = Journal::open(std::move(jopts), sm_.image(),
                                 applied_.load(std::memory_order_relaxed));
    if (!journal.ok()) {
      LOG_ERROR("ha", "standby: cannot persist warm image: %s",
                journal.error().message.c_str());
      return;
    }
    journal_ = journal.take();
    image = journal_->recovered_image();
  }

  core::DispatcherConfig config = options_.dispatcher;
  config.journal = journal_.get();
  if (config.obs == nullptr) config.obs = options_.obs;
  dispatcher_ = std::make_unique<core::Dispatcher>(clock_, config);
  dispatcher_->restore(image);

  // Take over the primary's endpoints. SO_REUSEADDR on the listeners makes
  // the rebind race only against a still-running primary, so retry until
  // the old process lets go.
  const double bind_deadline = monotonic_s() + options_.takeover_bind_timeout_s;
  for (;;) {
    // Fresh server object per attempt: a partially-started one (push port
    // bound, RPC port still held by the dying primary) tears itself down
    // through its destructor instead of needing restart semantics.
    server_ = std::make_unique<core::TcpDispatcherServer>(*dispatcher_,
                                                          options_.obs);
    server_->set_replication_source(journal_.get());
    auto st = server_->start(options_.takeover_rpc_port,
                             options_.takeover_push_port, options_.fault);
    if (st.ok()) break;
    server_.reset();
    if (monotonic_s() >= bind_deadline ||
        stopping_.load(std::memory_order_acquire)) {
      LOG_ERROR("ha", "standby: endpoint takeover failed: %s",
                st.error().message.c_str());
      return;
    }
    real_sleep_s(0.02);
  }

  if (m_failover_s_ != nullptr) m_failover_s_->set(monotonic_s() - start_s);
  LOG_INFO("ha", "standby promoted in %.3fs (queue=%zu, instances=%zu)",
           monotonic_s() - start_s, image.queue.size(),
           image.instances.size());
  {
    std::lock_guard lock(promote_mu_);
    promoted_.store(true, std::memory_order_release);
  }
  promote_cv_.notify_all();
}

}  // namespace falkon::ha
