#include "ha/standby.h"

#include <algorithm>
#include <chrono>

#include "common/logging.h"
#include "fault/fault.h"
#include "ha/wal.h"
#include "net/rpc.h"

namespace falkon::ha {
namespace {

double monotonic_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void real_sleep_s(double seconds) {
  std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
}

}  // namespace

Standby::Standby(Clock& clock, StandbyOptions options)
    : clock_(clock), options_(std::move(options)) {
  if (options_.obs != nullptr) {
    auto& reg = options_.obs->registry();
    m_applied_ = &reg.gauge("falkon.ha.standby.applied_lsn");
    m_failover_s_ = &reg.gauge("falkon.ha.standby.failover_s");
    m_elections_ = &reg.counter("falkon.ha.standby.elections");
    m_elections_lost_ = &reg.counter("falkon.ha.standby.elections_lost");
  }
}

Standby::~Standby() { stop(); }

Status Standby::start() {
  if (options_.standby_dir.empty()) {
    return make_error(ErrorCode::kInvalidArgument, "standby_dir not set");
  }
  if (options_.primary_rpc_port == 0) {
    return make_error(ErrorCode::kInvalidArgument, "primary_rpc_port not set");
  }
  if (options_.election_port != 0) {
    election_server_ = std::make_unique<net::RpcServer>();
    auto st = election_server_->start(
        [this](const wire::Message& request) { return serve_election(request); },
        options_.election_port);
    if (!st.ok()) {
      election_server_.reset();
      return st;
    }
  }
  stopping_.store(false, std::memory_order_release);
  tail_thread_ = std::thread([this] { tail_loop(); });
  return ok_status();
}

void Standby::stop() {
  stopping_.store(true, std::memory_order_release);
  if (tail_thread_.joinable()) tail_thread_.join();
  if (election_server_) election_server_->stop();
  if (server_) server_->stop();
}

bool Standby::wait_promoted(double timeout_s) {
  std::unique_lock lock(promote_mu_);
  promote_cv_.wait_for(lock, std::chrono::duration<double>(timeout_s),
                       [this] { return promoted(); });
  return promoted();
}

bool Standby::fetch_once() {
  if (!rpc_) {
    auto rpc = net::RpcClient::connect(options_.primary_host,
                                       options_.primary_rpc_port);
    if (!rpc.ok()) return false;
    rpc_ = std::make_unique<net::RpcClient>(rpc.take());
  }

  wire::ReplFetch fetch;
  fetch.from_lsn = applied_.load(std::memory_order_relaxed) + 1;
  fetch.max_bytes = options_.fetch_max_bytes;
  fetch.epoch = epoch_.load(std::memory_order_relaxed);
  auto reply = rpc_->call(fetch);
  if (!reply.ok()) {
    rpc_.reset();
    return false;
  }
  saw_primary_ = true;

  bool caught_up = false;
  if (const auto* append = std::get_if<wire::ReplAppend>(&reply.value())) {
    if (append->epoch != 0 &&
        append->epoch < epoch_.load(std::memory_order_relaxed)) {
      // A zombie source from a regime we have already outlived — its branch
      // of history is dead. Redial: DNS/port reuse may route us to the
      // current primary next time.
      rpc_.reset();
      return false;
    }
    if (append->payload.empty()) {
      caught_up = true;
    } else {
      std::lock_guard mirror(mirror_mu_);
      std::uint64_t lsn = append->first_lsn;
      std::uint64_t applied = applied_.load(std::memory_order_relaxed);
      bool bad = false;
      auto st = Wal::parse_frames(
          reinterpret_cast<const std::uint8_t*>(append->payload.data()),
          append->payload.size(),
          [&](const std::uint8_t* payload, std::size_t size) {
            if (bad) return;
            auto record = decode_record(payload, size);
            if (!record.ok()) {
              bad = true;
              return;
            }
            if (lsn > applied) {
              sm_.apply(record.value());
              applied = lsn;
              // Mirror the framed bytes for chained followers tailing us.
              ChainRecord chained;
              chained.lsn = lsn;
              Wal::frame_record(chained.framed, payload, size);
              chain_tail_bytes_ += chained.framed.size();
              chain_tail_.push_back(std::move(chained));
            }
            lsn += 1;
          });
      while (chain_tail_bytes_ > options_.chain_tail_bytes &&
             chain_tail_.size() > 1) {
        chain_tail_bytes_ -= chain_tail_.front().framed.size();
        chain_tail_.pop_front();
      }
      if (!st.ok() || bad) {
        LOG_WARN("ha", "standby: bad replication batch at lsn %llu",
                 static_cast<unsigned long long>(lsn));
        rpc_.reset();
        return false;
      }
      applied_.store(applied, std::memory_order_release);
      epoch_.store(sm_.epoch(), std::memory_order_release);
    }
  } else if (const auto* snap =
                 std::get_if<wire::ReplSnapshot>(&reply.value())) {
    if (snap->epoch != 0 &&
        snap->epoch < epoch_.load(std::memory_order_relaxed)) {
      rpc_.reset();
      return false;
    }
    auto image = decode_image(
        reinterpret_cast<const std::uint8_t*>(snap->payload.data()),
        snap->payload.size());
    if (!image.ok()) {
      LOG_WARN("ha", "standby: bad replication snapshot at lsn %llu",
               static_cast<unsigned long long>(snap->lsn));
      rpc_.reset();
      return false;
    }
    std::lock_guard mirror(mirror_mu_);
    sm_.reset(image.value());
    // The framed tail predates the snapshot: chained followers past this
    // point get a snapshot too.
    chain_tail_.clear();
    chain_tail_bytes_ = 0;
    applied_.store(snap->lsn, std::memory_order_release);
    epoch_.store(sm_.epoch(), std::memory_order_release);
  } else {
    rpc_.reset();  // protocol confusion: redial
    return false;
  }

  if (m_applied_ != nullptr) {
    m_applied_->set(
        static_cast<double>(applied_.load(std::memory_order_relaxed)));
  }
  wire::ReplAck ack;
  ack.applied_lsn = applied_.load(std::memory_order_relaxed);
  ack.epoch = epoch_.load(std::memory_order_relaxed);
  (void)rpc_->call(ack);  // best-effort progress report

  if (caught_up) real_sleep_s(options_.poll_interval_s);
  return true;
}

wire::Message Standby::serve_election(const wire::Message& request) {
  if (const auto* ping = std::get_if<wire::ElectionPing>(&request)) {
    (void)ping;
    wire::ElectionAck ack;
    ack.rank = options_.rank;
    ack.applied_lsn = applied_.load(std::memory_order_acquire);
    ack.promoted = promoted();
    ack.epoch = epoch_.load(std::memory_order_acquire);
    return ack;
  }
  if (const auto* fetch = std::get_if<wire::ReplFetch>(&request)) {
    if (promoted()) {
      // After promotion the authoritative log lives in journal_ and is
      // served by the takeover server; this mirror is frozen and stale.
      return wire::ErrorReply{ErrorCode::kUnavailable,
                              "standby promoted: fetch the primary endpoint"};
    }
    std::lock_guard mirror(mirror_mu_);
    const std::uint64_t my_epoch = sm_.epoch();
    if (fetch->epoch != 0 && fetch->epoch > my_epoch) {
      return wire::ErrorReply{ErrorCode::kUnavailable,
                              "stale replication source: follower epoch " +
                                  std::to_string(fetch->epoch) +
                                  " > source epoch " +
                                  std::to_string(my_epoch)};
    }
    const std::uint64_t last = applied_.load(std::memory_order_relaxed);
    if (fetch->from_lsn > last) {
      wire::ReplAppend reply;  // caught up (empty payload)
      reply.last_lsn = last;
      reply.epoch = my_epoch;
      return reply;
    }
    if (!chain_tail_.empty() && chain_tail_.front().lsn <= fetch->from_lsn) {
      std::string payload;
      std::uint64_t first = 0;
      std::uint64_t last_sent = 0;
      for (const ChainRecord& record : chain_tail_) {
        if (record.lsn < fetch->from_lsn) continue;
        if (first != 0 &&
            payload.size() + record.framed.size() > fetch->max_bytes) {
          break;
        }
        if (first == 0) first = record.lsn;
        payload.append(reinterpret_cast<const char*>(record.framed.data()),
                       record.framed.size());
        last_sent = record.lsn;
      }
      if (first != 0) {
        wire::ReplAppend reply;
        reply.first_lsn = first;
        reply.last_lsn = last_sent;
        reply.payload = std::move(payload);
        reply.epoch = my_epoch;
        return reply;
      }
    }
    // Follower behind our mirrored tail: ship the full warm image.
    wire::ReplSnapshot reply;
    reply.lsn = last;
    reply.epoch = my_epoch;
    const std::vector<std::uint8_t> image = encode_image(sm_.image());
    reply.payload.assign(reinterpret_cast<const char*>(image.data()),
                         image.size());
    return reply;
  }
  if (const auto* ack = std::get_if<wire::ReplAck>(&request)) {
    (void)ack;  // chained followers' progress is not tracked (yet)
    return wire::ReplAckReply{};
  }
  return wire::ErrorReply{ErrorCode::kProtocolError,
                          std::string("unhandled election request: ") +
                              wire::msg_type_name(wire::message_type(request))};
}

bool Standby::win_election() {
  if (m_elections_ != nullptr) m_elections_->inc();
  std::uint64_t max_epoch = epoch_.load(std::memory_order_acquire);
  bool win = true;
  for (const StandbyPeer& peer : options_.peers) {
    if (options_.fault != nullptr) {
      auto outcome = options_.fault->sample(fault::Site::kHaElection);
      if (outcome && outcome.action == fault::Action::kDrop) {
        continue;  // the ping is lost: this peer looks dead this round
      }
      if (outcome && outcome.action == fault::Action::kDelay) {
        real_sleep_s(outcome.param);
      }
    }
    auto rpc = net::RpcClient::connect(peer.host, peer.port);
    if (!rpc.ok()) continue;  // a dead peer cannot outrank us
    wire::ElectionPing ping;
    ping.epoch = max_epoch;
    ping.rank = options_.rank;
    ping.applied_lsn = applied_.load(std::memory_order_relaxed);
    auto reply = rpc.value().call(ping);
    if (!reply.ok()) continue;
    const auto* ack = std::get_if<wire::ElectionAck>(&reply.value());
    if (ack == nullptr) continue;
    max_epoch = std::max(max_epoch, ack->epoch);
    if (ack->promoted) {
      // Someone already took over (possibly the primary answering from the
      // takeover port): adopt the existing regime rather than fight it.
      win = false;
    } else if (ack->rank < options_.rank) {
      win = false;  // a live lower rank wins deterministically
    }
  }
  // The epoch we will fence to if we win: strictly above everything any
  // live participant has seen. Losers remember it too — their next fetch
  // accepts the winner's records without mistaking them for a zombie.
  election_epoch_ = max_epoch + 1;
  return win;
}

void Standby::tail_loop() {
  double first_failure_s = -1.0;
  while (!stopping_.load(std::memory_order_acquire)) {
    if (fetch_once()) {
      first_failure_s = -1.0;
      continue;
    }
    const double now = monotonic_s();
    if (first_failure_s < 0) first_failure_s = now;
    if (now - first_failure_s >= options_.failover_after_s &&
        (saw_primary_ || options_.promote_without_contact)) {
      if (win_election() && promote()) return;
      if (m_elections_lost_ != nullptr) m_elections_lost_->inc();
      // Lost the election or the promotion fence: the winner is taking over
      // the primary's endpoints, so keep tailing and restart the failover
      // clock from scratch.
      first_failure_s = -1.0;
    }
    real_sleep_s(options_.poll_interval_s);
  }
}

bool Standby::promote() {
  const double start_s = monotonic_s();
  const std::uint64_t new_epoch =
      std::max(election_epoch_, epoch_.load(std::memory_order_relaxed) + 1);
  LOG_INFO("ha", "standby promoting: rank=%u epoch=%llu applied_lsn=%llu",
           options_.rank, static_cast<unsigned long long>(new_epoch),
           static_cast<unsigned long long>(
               applied_.load(std::memory_order_relaxed)));

  // Recover the authoritative image. The shared log directory wins when
  // readable: it contains records appended after our last fetch.
  core::DispatcherImage image;
  bool recovered = false;
  if (!options_.shared_log_dir.empty()) {
    Journal::Options jopts = options_.journal;
    jopts.dir = options_.shared_log_dir;
    jopts.obs = options_.obs;
    // The epoch fence: the first process to append RecEpoch{new_epoch} to
    // the shared log owns the promotion; everyone else gets kAlreadyExists
    // here and stands down.
    jopts.promote_epoch = new_epoch;
    auto journal = Journal::open(std::move(jopts));
    if (journal.ok()) {
      journal_ = journal.take();
      image = journal_->recovered_image();
      recovered = true;
    } else if (journal.error().code == ErrorCode::kAlreadyExists) {
      LOG_INFO("ha", "standby: lost promotion fence (%s), standing down",
               journal.error().message.c_str());
      // Learn the regime that fenced us out: if the winner dies before we
      // can tail its RecEpoch, the next election must still bid above it.
      const std::uint64_t fenced = read_log_epoch(options_.shared_log_dir);
      if (fenced > epoch_.load(std::memory_order_relaxed)) {
        epoch_.store(fenced, std::memory_order_release);
      }
      return false;
    } else {
      LOG_WARN("ha", "standby: shared log unusable (%s), using warm image",
               journal.error().message.c_str());
    }
  }
  if (!recovered) {
    std::lock_guard mirror(mirror_mu_);
    Journal::Options jopts = options_.journal;
    jopts.dir = options_.standby_dir;
    jopts.obs = options_.obs;
    jopts.promote_epoch = new_epoch;
    auto journal = Journal::open(std::move(jopts), sm_.image(),
                                 applied_.load(std::memory_order_relaxed));
    if (!journal.ok()) {
      if (journal.error().code == ErrorCode::kAlreadyExists) {
        LOG_INFO("ha", "standby: lost promotion fence (%s), standing down",
                 journal.error().message.c_str());
        const std::uint64_t fenced = read_log_epoch(options_.standby_dir);
        if (fenced > epoch_.load(std::memory_order_relaxed)) {
          epoch_.store(fenced, std::memory_order_release);
        }
        return false;
      }
      LOG_ERROR("ha", "standby: cannot persist warm image: %s",
                journal.error().message.c_str());
      return false;
    }
    journal_ = journal.take();
    image = journal_->recovered_image();
  }

  core::DispatcherConfig config = options_.dispatcher;
  config.journal = journal_.get();
  if (config.obs == nullptr) config.obs = options_.obs;
  dispatcher_ = std::make_unique<core::Dispatcher>(clock_, config);
  dispatcher_->restore(image);

  // Take over the primary's endpoints. SO_REUSEADDR on the listeners makes
  // the rebind race only against a still-running primary, so retry until
  // the old process lets go.
  const double bind_deadline = monotonic_s() + options_.takeover_bind_timeout_s;
  for (;;) {
    // Fresh server object per attempt: a partially-started one (push port
    // bound, RPC port still held by the dying primary) tears itself down
    // through its destructor instead of needing restart semantics.
    server_ = std::make_unique<core::TcpDispatcherServer>(*dispatcher_,
                                                          options_.obs);
    server_->set_replication_source(journal_.get());
    server_->set_epoch(journal_->epoch());
    auto st = server_->start(options_.takeover_rpc_port,
                             options_.takeover_push_port, options_.fault);
    if (st.ok()) break;
    server_.reset();
    if (monotonic_s() >= bind_deadline ||
        stopping_.load(std::memory_order_acquire)) {
      LOG_ERROR("ha", "standby: endpoint takeover failed: %s",
                st.error().message.c_str());
      dispatcher_.reset();
      journal_.reset();
      return false;
    }
    real_sleep_s(0.02);
  }

  // Bind fence (docs/HA.md): between winning the journal fence and binding,
  // a competitor with shared-dir access may have recorded a higher epoch
  // (e.g. we promoted from the warm image because the shared log looked
  // unusable while they could read it). Re-read the shared log's epoch now
  // that we hold the port: if someone is ahead, serving would split-brain.
  if (!options_.shared_log_dir.empty()) {
    const std::uint64_t shared = read_log_epoch(options_.shared_log_dir);
    if (shared > journal_->epoch()) {
      LOG_INFO("ha",
               "standby: shared log fenced past epoch %llu after bind, "
               "standing down",
               static_cast<unsigned long long>(journal_->epoch()));
      if (shared > epoch_.load(std::memory_order_relaxed)) {
        epoch_.store(shared, std::memory_order_release);
      }
      server_->stop();
      server_.reset();
      dispatcher_.reset();
      journal_.reset();
      return false;
    }
  }

  epoch_.store(new_epoch, std::memory_order_release);
  if (m_failover_s_ != nullptr) m_failover_s_->set(monotonic_s() - start_s);
  LOG_INFO("ha", "standby promoted in %.3fs (epoch=%llu, queue=%zu, instances=%zu)",
           monotonic_s() - start_s,
           static_cast<unsigned long long>(new_epoch), image.queue.size(),
           image.instances.size());
  {
    std::lock_guard lock(promote_mu_);
    promoted_.store(true, std::memory_order_release);
  }
  promote_cv_.notify_all();
  return true;
}

}  // namespace falkon::ha
