#include "ha/failover_client.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/logging.h"

namespace falkon::ha {
namespace {

/// Errors that mean "the connection (or the dispatcher behind it) is gone,
/// dial again": connection-level failures plus kUnavailable from a server
/// that is still starting up. Everything else is an application answer.
bool transport_error(ErrorCode code) {
  switch (code) {
    case ErrorCode::kIoError:
    case ErrorCode::kClosed:
    case ErrorCode::kProtocolError:
    case ErrorCode::kUnavailable:
      return true;
    default:
      return false;
  }
}

template <class T>
Result<T> expect(Result<wire::Message> reply) {
  if (!reply.ok()) return reply.error();
  if (auto* value = std::get_if<T>(&reply.value())) return std::move(*value);
  if (auto* error = std::get_if<wire::ErrorReply>(&reply.value())) {
    return make_error(error->code, error->message);
  }
  return make_error(ErrorCode::kProtocolError,
                    std::string("unexpected reply: ") +
                        wire::msg_type_name(wire::message_type(reply.value())));
}

}  // namespace

FailoverClient::FailoverClient(FailoverClientOptions options)
    : options_(std::move(options)) {
  if (options_.obs != nullptr) {
    auto& reg = options_.obs->registry();
    m_reconnects_ = &reg.counter("falkon.ha.client.reconnects");
    m_dup_results_ = &reg.counter("falkon.ha.client.duplicate_results");
  }
}

std::uint64_t FailoverClient::reconnects() const {
  std::lock_guard lock(mu_);
  return reconnects_;
}

std::uint64_t FailoverClient::epoch() const {
  std::lock_guard lock(mu_);
  return epoch_;
}

void FailoverClient::learn_epoch(std::uint64_t epoch) {
  std::lock_guard lock(mu_);
  epoch_ = std::max(epoch_, epoch);
}

Result<wire::Message> FailoverClient::call(const wire::Message& request) {
  double backoff_s = options_.backoff_initial_s;
  Error last = make_error(ErrorCode::kUnavailable, "never attempted");
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff_s));
      backoff_s = std::min(backoff_s * 2.0, options_.backoff_max_s);
    }
    std::unique_lock lock(mu_);
    if (!rpc_) {
      auto rpc = net::RpcClient::connect(options_.host, options_.rpc_port,
                                         options_.fault);
      if (!rpc.ok()) {
        last = rpc.error();
        reconnects_ += 1;
        if (m_reconnects_ != nullptr) m_reconnects_->inc();
        continue;
      }
      rpc_ = std::make_unique<net::RpcClient>(rpc.take());
    }
    auto reply = rpc_->call(request);
    if (reply.ok()) return reply;
    last = reply.error();
    if (!transport_error(last.code)) return reply;
    if (last.code == ErrorCode::kUnavailable &&
        last.message.find("epoch mismatch") != std::string::npos) {
      // Not a dead connection but a fencing rejection: retrying the same
      // stamped request can never succeed. Surface it so submit() can
      // re-sync its epoch and re-stamp.
      return reply;
    }
    rpc_.reset();  // dial fresh next attempt (possibly the new primary)
    reconnects_ += 1;
    if (m_reconnects_ != nullptr) m_reconnects_->inc();
  }
  return make_error(last.code,
                    "gave up after " + std::to_string(options_.max_attempts) +
                        " attempts: " + last.message);
}

Result<InstanceId> FailoverClient::create_instance(ClientId client) {
  wire::CreateInstanceRequest request;
  request.client_id = client;
  auto reply = expect<wire::CreateInstanceReply>(call(request));
  if (!reply.ok()) return reply.error();
  return reply.value().instance_id;
}

Result<std::uint64_t> FailoverClient::submit(InstanceId instance,
                                             std::vector<TaskSpec> tasks) {
  wire::SubmitRequest request;
  request.instance_id = instance;
  request.tasks = std::move(tasks);
  {
    // The sequence makes the retried call idempotent: a dispatcher (old or
    // promoted) that journaled this sequence acks without re-enqueueing.
    std::lock_guard lock(mu_);
    request.submit_seq = ++submit_seq_;
  }
  for (int sync_attempts = 0;; ++sync_attempts) {
    {
      std::lock_guard lock(mu_);
      request.epoch = epoch_;
    }
    auto reply = expect<wire::SubmitReply>(call(request));
    if (reply.ok()) {
      learn_epoch(reply.value().epoch);
      return reply.value().accepted;
    }
    if (sync_attempts == 0 && reply.error().code == ErrorCode::kUnavailable &&
        reply.error().message.find("epoch mismatch") != std::string::npos) {
      // Our stamp is stale (a standby promoted since we last heard from a
      // dispatcher): learn the current epoch and re-send the same
      // submit_seq — the journal makes the retry idempotent.
      if (auto st = status(); !st.ok()) return reply.error();
      continue;
    }
    return reply.error();
  }
}

Result<std::vector<TaskResult>> FailoverClient::wait_results(
    InstanceId instance, std::uint32_t max_results, double timeout_s) {
  wire::WaitResultsRequest request;
  request.instance_id = instance;
  request.max_results = max_results;
  request.timeout_s = timeout_s;
  auto reply = expect<wire::WaitResultsReply>(call(request));
  if (!reply.ok()) return reply.error();
  std::vector<TaskResult> fresh;
  fresh.reserve(reply.value().results.size());
  std::lock_guard lock(mu_);
  for (TaskResult& result : reply.value().results) {
    if (seen_.insert(result.task_id.value).second) {
      fresh.push_back(std::move(result));
    } else if (m_dup_results_ != nullptr) {
      m_dup_results_->inc();
    }
  }
  return fresh;
}

Status FailoverClient::destroy_instance(InstanceId instance) {
  wire::DestroyInstanceRequest request;
  request.instance_id = instance;
  auto reply = expect<wire::DestroyInstanceReply>(call(request));
  if (!reply.ok()) return reply.error();
  return ok_status();
}

Result<core::DispatcherStatus> FailoverClient::status() {
  auto reply = expect<wire::StatusReply>(call(wire::StatusRequest{}));
  if (!reply.ok()) return reply.error();
  learn_epoch(reply.value().epoch);
  core::DispatcherStatus status;
  status.submitted = reply.value().submitted_tasks;
  status.queued = reply.value().queued_tasks;
  status.dispatched = reply.value().dispatched_tasks;
  status.completed = reply.value().completed_tasks;
  status.failed = reply.value().failed_tasks;
  status.retried = reply.value().retried_tasks;
  status.suspicions = reply.value().suspicions;
  status.false_suspicions = reply.value().false_suspicions;
  status.quarantined = reply.value().quarantined_tasks;
  status.registered_executors = reply.value().registered_executors;
  status.busy_executors = reply.value().busy_executors;
  status.idle_executors = reply.value().idle_executors;
  return status;
}

}  // namespace falkon::ha
