#include "ha/failover_client.h"

#include <algorithm>
#include <chrono>
#include <thread>

#include "common/logging.h"
#include "core/service_tcp.h"  // kClientKeyBase

namespace falkon::ha {
namespace {

/// Errors that mean "the connection (or the dispatcher behind it) is gone,
/// dial again": connection-level failures plus kUnavailable from a server
/// that is still starting up. Everything else is an application answer.
bool transport_error(ErrorCode code) {
  switch (code) {
    case ErrorCode::kIoError:
    case ErrorCode::kClosed:
    case ErrorCode::kProtocolError:
    case ErrorCode::kUnavailable:
      return true;
    default:
      return false;
  }
}

template <class T>
Result<T> expect(Result<wire::Message> reply) {
  if (!reply.ok()) return reply.error();
  if (auto* value = std::get_if<T>(&reply.value())) return std::move(*value);
  if (auto* error = std::get_if<wire::ErrorReply>(&reply.value())) {
    return make_error(error->code, error->message);
  }
  return make_error(ErrorCode::kProtocolError,
                    std::string("unexpected reply: ") +
                        wire::msg_type_name(wire::message_type(reply.value())));
}

}  // namespace

FailoverClient::FailoverClient(FailoverClientOptions options)
    : options_(std::move(options)) {
  if (options_.obs != nullptr) {
    auto& reg = options_.obs->registry();
    m_reconnects_ = &reg.counter("falkon.ha.client.reconnects");
    m_dup_results_ = &reg.counter("falkon.ha.client.duplicate_results");
  }
}

std::uint64_t FailoverClient::reconnects() const {
  std::lock_guard lock(mu_);
  return reconnects_;
}

std::uint64_t FailoverClient::epoch() const {
  std::lock_guard lock(mu_);
  return epoch_;
}

void FailoverClient::learn_epoch(std::uint64_t epoch) {
  std::lock_guard lock(mu_);
  epoch_ = std::max(epoch_, epoch);
}

Result<wire::Message> FailoverClient::call(const wire::Message& request) {
  double backoff_s = options_.backoff_initial_s;
  Error last = make_error(ErrorCode::kUnavailable, "never attempted");
  for (int attempt = 0; attempt < options_.max_attempts; ++attempt) {
    if (attempt > 0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(backoff_s));
      backoff_s = std::min(backoff_s * 2.0, options_.backoff_max_s);
    }
    std::unique_lock lock(mu_);
    if (!rpc_) {
      auto rpc = net::RpcClient::connect(options_.host, options_.rpc_port,
                                         options_.fault);
      if (!rpc.ok()) {
        last = rpc.error();
        reconnects_ += 1;
        if (m_reconnects_ != nullptr) m_reconnects_->inc();
        continue;
      }
      rpc_ = std::make_unique<net::RpcClient>(rpc.take());
    }
    auto reply = rpc_->call(request);
    if (reply.ok()) return reply;
    last = reply.error();
    if (!transport_error(last.code)) return reply;
    if (last.code == ErrorCode::kUnavailable &&
        last.message.find("epoch mismatch") != std::string::npos) {
      // Not a dead connection but a fencing rejection: retrying the same
      // stamped request can never succeed. Surface it so submit() can
      // re-sync its epoch and re-stamp.
      return reply;
    }
    rpc_.reset();  // dial fresh next attempt (possibly the new primary)
    reconnects_ += 1;
    if (m_reconnects_ != nullptr) m_reconnects_->inc();
  }
  return make_error(last.code,
                    "gave up after " + std::to_string(options_.max_attempts) +
                        " attempts: " + last.message);
}

Result<InstanceId> FailoverClient::create_instance(ClientId client) {
  wire::CreateInstanceRequest request;
  request.client_id = client;
  auto reply = expect<wire::CreateInstanceReply>(call(request));
  if (!reply.ok()) return reply.error();
  const InstanceId instance = reply.value().instance_id;
  if (options_.push_port != 0) {
    auto stream = std::make_shared<Stream>();
    {
      std::lock_guard lock(streams_mu_);
      streams_.emplace(instance.value, stream);
    }
    resubscribe(instance, stream);
  }
  return instance;
}

std::shared_ptr<FailoverClient::Stream> FailoverClient::find_stream(
    InstanceId instance) const {
  std::lock_guard lock(streams_mu_);
  auto it = streams_.find(instance.value);
  return it == streams_.end() ? nullptr : it->second;
}

bool FailoverClient::streaming(InstanceId instance) const {
  return find_stream(instance) != nullptr;
}

void FailoverClient::resubscribe(InstanceId instance,
                                 const std::shared_ptr<Stream>& stream) {
  std::lock_guard sub_lock(stream->sub_mu);
  stream->receiver.stop();
  (void)stream->receiver.start(
      options_.host, options_.push_port,
      core::kClientKeyBase + instance.value,
      [weak = std::weak_ptr<Stream>(stream)](const wire::Message& message) {
        auto live = weak.lock();
        if (live == nullptr) return;
        const auto* frame = std::get_if<wire::ResultStream>(&message);
        if (frame == nullptr) return;
        std::lock_guard lock(live->mu);
        if (!live->resync &&
            frame->seq == live->last_seq + frame->results.size()) {
          live->last_seq = frame->seq;
        } else {
          // Lost frame (or a stale pre-resubscribe frame): keep the
          // results — seen_ protects the caller — but never ack past a
          // gap; the next wait resubscribes and the tail re-streams.
          live->resync = true;
        }
        for (const auto& result : frame->results) {
          live->buffer.push_back(result);
        }
        live->cv.notify_all();
      });
  // Re-arm from zero even if the receiver failed to dial: a later
  // resubscribe retries both halves, and until then the polling fallback
  // keeps results flowing.
  wire::SubscribeResults request;
  request.instance_id = instance;
  request.ack_seq = 0;
  if (expect<wire::ResultStream>(call(request)).ok()) {
    std::lock_guard lock(stream->mu);
    stream->resync = false;
    stream->last_seq = 0;
    stream->acked_seq = 0;
  }
}

Result<std::uint64_t> FailoverClient::submit(InstanceId instance,
                                             std::vector<TaskSpec> tasks) {
  wire::SubmitRequest request;
  request.instance_id = instance;
  request.tasks = std::move(tasks);
  {
    // The sequence makes the retried call idempotent: a dispatcher (old or
    // promoted) that journaled this sequence acks without re-enqueueing.
    std::lock_guard lock(mu_);
    request.submit_seq = ++submit_seq_;
  }
  for (int sync_attempts = 0;; ++sync_attempts) {
    {
      std::lock_guard lock(mu_);
      request.epoch = epoch_;
    }
    auto reply = expect<wire::SubmitReply>(call(request));
    if (reply.ok()) {
      learn_epoch(reply.value().epoch);
      return reply.value().accepted;
    }
    if (sync_attempts == 0 && reply.error().code == ErrorCode::kUnavailable &&
        reply.error().message.find("epoch mismatch") != std::string::npos) {
      // Our stamp is stale (a standby promoted since we last heard from a
      // dispatcher): learn the current epoch and re-send the same
      // submit_seq — the journal makes the retry idempotent.
      if (auto st = status(); !st.ok()) return reply.error();
      continue;
    }
    return reply.error();
  }
}

Result<std::vector<TaskResult>> FailoverClient::wait_results(
    InstanceId instance, std::uint32_t max_results, double timeout_s) {
  if (auto stream = find_stream(instance)) {
    return wait_streamed(instance, stream, max_results, timeout_s);
  }
  wire::WaitResultsRequest request;
  request.instance_id = instance;
  request.max_results = max_results;
  request.timeout_s = timeout_s;
  auto reply = expect<wire::WaitResultsReply>(call(request));
  if (!reply.ok()) return reply.error();
  std::vector<TaskResult> fresh;
  fresh.reserve(reply.value().results.size());
  std::lock_guard lock(mu_);
  for (TaskResult& result : reply.value().results) {
    if (seen_.insert(result.task_id.value).second) {
      fresh.push_back(std::move(result));
    } else if (m_dup_results_ != nullptr) {
      m_dup_results_->inc();
    }
  }
  return fresh;
}

Result<std::vector<TaskResult>> FailoverClient::wait_streamed(
    InstanceId instance, const std::shared_ptr<Stream>& stream,
    std::uint32_t max_results, double timeout_s) {
  std::vector<TaskResult> raw;
  std::uint64_t ack = 0;
  bool resync = false;
  {
    std::unique_lock lock(stream->mu);
    stream->cv.wait_for(
        lock, std::chrono::duration<double>(std::max(0.0, timeout_s)),
        [&] { return !stream->buffer.empty() || stream->resync; });
    while (raw.size() < max_results && !stream->buffer.empty()) {
      raw.push_back(std::move(stream->buffer.front()));
      stream->buffer.pop_front();
    }
    // Batched cumulative acks (mirrors TcpDispatcherClient::wait_streamed):
    // one SubscribeResults round trip per kAckBatchResults results, or when
    // a resync is pending — not one per drain. Delayed acks only delay the
    // on_delivered journal barrier; after a takeover the un-acked tail
    // re-delivers and the seen_ filter absorbs it.
    constexpr std::uint64_t kAckBatchResults = 8192;
    const std::uint64_t pending = stream->last_seq - stream->acked_seq;
    if (pending > 0 && (pending >= kAckBatchResults || stream->resync)) {
      ack = stream->last_seq;
    }
    resync = stream->resync;
  }
  std::vector<TaskResult> fresh;
  fresh.reserve(raw.size());
  {
    std::lock_guard lock(mu_);
    for (TaskResult& result : raw) {
      if (seen_.insert(result.task_id.value).second) {
        fresh.push_back(std::move(result));
      } else if (m_dup_results_ != nullptr) {
        m_dup_results_->inc();
      }
    }
  }
  if (ack != 0) {
    std::lock_guard sub_lock(stream->sub_mu);
    // Cumulative ack; call() rides out a takeover, and a promoted
    // dispatcher that restored the instance in polling mode just clamps
    // the stale cursor harmlessly.
    wire::SubscribeResults request;
    request.instance_id = instance;
    request.ack_seq = ack;
    if (expect<wire::ResultStream>(call(request)).ok()) {
      std::lock_guard lock(stream->mu);
      stream->acked_seq = std::max(stream->acked_seq, ack);
    }
  }
  if (resync) resubscribe(instance, stream);
  if (!fresh.empty()) return fresh;
  // Push channel quiet for the whole timeout: one-shot poll. After a
  // takeover this is the path that keeps results flowing (the promoted
  // dispatcher restores instances unsubscribed), so a poll that finds
  // results while we believe we are streaming doubles as the signal to
  // resubscribe against the new regime.
  wire::WaitResultsRequest request;
  request.instance_id = instance;
  request.max_results = max_results;
  request.timeout_s = 0;
  auto reply = expect<wire::WaitResultsReply>(call(request));
  if (!reply.ok()) return reply.error();
  const bool polled_some = !reply.value().results.empty();
  {
    std::lock_guard lock(mu_);
    for (TaskResult& result : reply.value().results) {
      if (seen_.insert(result.task_id.value).second) {
        fresh.push_back(std::move(result));
      } else if (m_dup_results_ != nullptr) {
        m_dup_results_->inc();
      }
    }
  }
  if (polled_some) resubscribe(instance, stream);
  return fresh;
}

Status FailoverClient::destroy_instance(InstanceId instance) {
  std::shared_ptr<Stream> stream;
  {
    std::lock_guard lock(streams_mu_);
    auto it = streams_.find(instance.value);
    if (it != streams_.end()) {
      stream = std::move(it->second);
      streams_.erase(it);
    }
  }
  if (stream != nullptr) stream->receiver.stop();
  wire::DestroyInstanceRequest request;
  request.instance_id = instance;
  auto reply = expect<wire::DestroyInstanceReply>(call(request));
  if (!reply.ok()) return reply.error();
  return ok_status();
}

Result<core::DispatcherStatus> FailoverClient::status() {
  auto reply = expect<wire::StatusReply>(call(wire::StatusRequest{}));
  if (!reply.ok()) return reply.error();
  learn_epoch(reply.value().epoch);
  core::DispatcherStatus status;
  status.submitted = reply.value().submitted_tasks;
  status.queued = reply.value().queued_tasks;
  status.dispatched = reply.value().dispatched_tasks;
  status.completed = reply.value().completed_tasks;
  status.failed = reply.value().failed_tasks;
  status.retried = reply.value().retried_tasks;
  status.suspicions = reply.value().suspicions;
  status.false_suspicions = reply.value().false_suspicions;
  status.quarantined = reply.value().quarantined_tasks;
  status.registered_executors = reply.value().registered_executors;
  status.busy_executors = reply.value().busy_executors;
  status.idle_executors = reply.value().idle_executors;
  return status;
}

}  // namespace falkon::ha
