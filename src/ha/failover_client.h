// Failover-aware dispatcher client (docs/HA.md).
//
// A drop-in core::DispatcherClient that survives a dispatcher takeover:
// every RPC retries with exponential backoff across reconnects (the
// standby re-binds the same host:port), submits carry a strictly
// increasing per-client submit_seq so a retried SubmitRequest that already
// reached the old primary's journal is acknowledged instead of re-enqueued,
// and wait_results dedups by task id so mailbox re-delivery after a
// takeover cannot double-deliver a completion. Together with the
// dispatcher-side journaling this keeps completions exactly-once across
// failover.
//
// Epoch fencing: submits are stamped with the last dispatcher epoch the
// client learned (from SubmitReply/StatusReply); a server that rejects the
// stamp ("epoch mismatch") triggers one status() re-sync and a retry under
// the fresh epoch, so clients follow a promotion without manual
// reconfiguration — while a zombie primary can never accept a submit
// stamped by a newer regime.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>

#include "core/client.h"
#include "fault/fault.h"
#include "net/rpc.h"
#include "obs/obs.h"

namespace falkon::ha {

struct FailoverClientOptions {
  std::string host{"127.0.0.1"};
  std::uint16_t rpc_port{0};
  /// Non-zero opts into push-mode result streaming (docs/PROTOCOL.md):
  /// create_instance subscribes on the notification port and wait_results
  /// drains pushed ResultStream batches instead of polling. A takeover
  /// kills the push connection; results keep flowing through the polling
  /// fallback (dedup by task id preserves exactly-once) and the client
  /// resubscribes against the promoted dispatcher, which streams with a
  /// clean cursor after restore. The standby must re-bind the same
  /// notification port, as it does the RPC port.
  std::uint16_t push_port{0};
  /// Transport-level retries per call; with backoff below, the default
  /// rides out several seconds of takeover downtime.
  int max_attempts{200};
  double backoff_initial_s{0.01};
  double backoff_max_s{0.3};
  fault::FaultInjector* fault{nullptr};
  obs::Obs* obs{nullptr};
};

class FailoverClient final : public core::DispatcherClient {
 public:
  explicit FailoverClient(FailoverClientOptions options);

  Result<InstanceId> create_instance(ClientId client) override;
  Result<std::uint64_t> submit(InstanceId instance,
                               std::vector<TaskSpec> tasks) override;
  Result<std::vector<TaskResult>> wait_results(InstanceId instance,
                                               std::uint32_t max_results,
                                               double timeout_s) override;
  Status destroy_instance(InstanceId instance) override;
  Result<core::DispatcherStatus> status() override;

  /// Reconnects performed so far (each is one observed transport failure).
  [[nodiscard]] std::uint64_t reconnects() const;
  /// Last dispatcher epoch learned from a reply (0 until the first ack
  /// from an epoch-fenced server).
  [[nodiscard]] std::uint64_t epoch() const;

  /// True when the instance currently streams results over the push
  /// channel (always false unless options.push_port was set).
  [[nodiscard]] bool streaming(InstanceId instance) const;

 private:
  /// Per-instance push-stream state (see core::TcpDispatcherClient::Stream
  /// — same protocol, with the dedup filter shared in seen_).
  struct Stream {
    std::mutex mu;
    std::condition_variable cv;
    std::deque<TaskResult> buffer;
    std::uint64_t last_seq{0};
    std::uint64_t acked_seq{0};
    /// A seq gap was observed; freeze the ack cursor and resubscribe.
    bool resync{false};
    /// Serialises subscribe/ack RPCs and receiver restarts per instance.
    std::mutex sub_mu;
    /// Declared last: its destructor joins the read thread first.
    net::PushReceiver receiver;
  };

  /// One RPC with reconnect + backoff across transport failures.
  Result<wire::Message> call(const wire::Message& request);
  /// Fold a server-advertised epoch into epoch_ (monotone).
  void learn_epoch(std::uint64_t epoch);
  /// (Re)connect the push receiver and re-arm the dispatcher's drain with
  /// SubscribeResults{ack_seq=0}. Used at create_instance and whenever the
  /// push channel goes quiet while the mailbox still has results (the
  /// post-takeover signature: the promoted dispatcher restores instances
  /// in polling mode until the client resubscribes).
  void resubscribe(InstanceId instance, const std::shared_ptr<Stream>& stream);
  [[nodiscard]] std::shared_ptr<Stream> find_stream(InstanceId instance) const;
  Result<std::vector<TaskResult>> wait_streamed(
      InstanceId instance, const std::shared_ptr<Stream>& stream,
      std::uint32_t max_results, double timeout_s);

  FailoverClientOptions options_;
  mutable std::mutex streams_mu_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Stream>> streams_;
  mutable std::mutex mu_;
  std::unique_ptr<net::RpcClient> rpc_;
  std::uint64_t submit_seq_{0};
  std::uint64_t reconnects_{0};
  std::uint64_t epoch_{0};
  /// Task ids already handed to the caller (re-delivery dedup).
  std::unordered_set<std::uint64_t> seen_;
  obs::Counter* m_reconnects_{nullptr};
  obs::Counter* m_dup_results_{nullptr};
};

}  // namespace falkon::ha
