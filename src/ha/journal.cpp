#include "ha/journal.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/logging.h"

namespace falkon::ha {
namespace {

constexpr char kSnapMagic[4] = {'F', 'S', 'N', 'P'};
constexpr std::uint32_t kSnapVersionV1 = 1;
constexpr std::uint32_t kSnapVersion = 2;
// v2: magic + u32 version + u64 lsn + u64 epoch + u32 len + u32 crc
constexpr std::size_t kSnapHeaderBytes = 32;
// v1 (no epoch): magic + u32 version + u64 lsn + u32 len + u32 crc
constexpr std::size_t kSnapHeaderBytesV1 = 24;

std::string snapshot_path(const std::string& dir, std::uint64_t lsn) {
  char name[48];
  std::snprintf(name, sizeof(name), "snap-%020llu.snap",
                static_cast<unsigned long long>(lsn));
  return dir + "/" + name;
}

std::uint64_t parse_snapshot_name(const char* name) {
  unsigned long long lsn = 0;
  char tail[8] = {0};
  if (std::sscanf(name, "snap-%20llu.%4s", &lsn, tail) != 2) return 0;
  if (std::strcmp(tail, "snap") != 0) return 0;
  return lsn;
}

void put_u32(std::uint8_t* out, std::uint32_t v) {
  std::memcpy(out, &v, 4);
}

void put_u64(std::uint8_t* out, std::uint64_t v) {
  std::memcpy(out, &v, 8);
}

/// Sorted descending by lsn: newest first.
std::vector<std::pair<std::uint64_t, std::string>> list_snapshots(
    const std::string& dir) {
  std::vector<std::pair<std::uint64_t, std::string>> out;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return out;
  while (dirent* entry = ::readdir(d)) {
    const std::uint64_t lsn = parse_snapshot_name(entry->d_name);
    if (lsn != 0) out.emplace_back(lsn, dir + "/" + entry->d_name);
  }
  ::closedir(d);
  std::sort(out.begin(), out.end(), std::greater<>());
  return out;
}

}  // namespace

Status write_snapshot(const std::string& dir, std::uint64_t lsn,
                      std::uint64_t epoch,
                      const std::vector<std::uint8_t>& payload) {
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return make_error(ErrorCode::kIoError,
                      "mkdir " + dir + ": " + std::strerror(errno));
  }
  const std::string path = snapshot_path(dir, lsn);
  const std::string tmp = path + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return make_error(ErrorCode::kIoError,
                      "open " + tmp + ": " + std::strerror(errno));
  }
  std::uint8_t header[kSnapHeaderBytes];
  std::memcpy(header, kSnapMagic, 4);
  put_u32(header + 4, kSnapVersion);
  put_u64(header + 8, lsn);
  put_u64(header + 16, epoch);
  put_u32(header + 24, static_cast<std::uint32_t>(payload.size()));
  put_u32(header + 28, crc32(payload.data(), payload.size()));
  bool ok = ::write(fd, header, sizeof(header)) ==
            static_cast<ssize_t>(sizeof(header));
  ok = ok && ::write(fd, payload.data(), payload.size()) ==
                 static_cast<ssize_t>(payload.size());
  ok = ok && ::fsync(fd) == 0;
  const int err = errno;
  ::close(fd);
  if (!ok) {
    ::unlink(tmp.c_str());
    return make_error(ErrorCode::kIoError,
                      "write " + tmp + ": " + std::strerror(err));
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int rerr = errno;
    ::unlink(tmp.c_str());
    return make_error(ErrorCode::kIoError,
                      "rename " + path + ": " + std::strerror(rerr));
  }
  // Keep the newest two: the one just written plus one fallback in case it
  // is later found corrupt.
  const auto snaps = list_snapshots(dir);
  for (std::size_t i = 2; i < snaps.size(); ++i) {
    ::unlink(snaps[i].second.c_str());
  }
  return ok_status();
}

std::optional<SnapshotInfo> load_latest_snapshot(const std::string& dir) {
  for (const auto& [lsn, path] : list_snapshots(dir)) {
    const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
    if (fd < 0) continue;
    // Read the fixed v2 prefix up to the version field, then the rest of
    // whichever header layout the version selects.
    std::uint8_t header[kSnapHeaderBytes];
    if (::read(fd, header, kSnapHeaderBytesV1) !=
        static_cast<ssize_t>(kSnapHeaderBytesV1)) {
      ::close(fd);
      continue;
    }
    std::uint32_t version = 0;
    std::uint64_t stored_lsn = 0;
    std::uint64_t epoch = 0;
    std::uint32_t len = 0;
    std::uint32_t want_crc = 0;
    std::memcpy(&version, header + 4, 4);
    std::memcpy(&stored_lsn, header + 8, 8);
    if (version == kSnapVersionV1) {
      std::memcpy(&len, header + 16, 4);
      std::memcpy(&want_crc, header + 20, 4);
    } else if (version == kSnapVersion) {
      if (::read(fd, header + kSnapHeaderBytesV1,
                 kSnapHeaderBytes - kSnapHeaderBytesV1) !=
          static_cast<ssize_t>(kSnapHeaderBytes - kSnapHeaderBytesV1)) {
        ::close(fd);
        continue;
      }
      std::memcpy(&epoch, header + 16, 8);
      std::memcpy(&len, header + 24, 4);
      std::memcpy(&want_crc, header + 28, 4);
    }
    if (std::memcmp(header, kSnapMagic, 4) != 0 ||
        (version != kSnapVersionV1 && version != kSnapVersion) ||
        stored_lsn != lsn) {
      ::close(fd);
      continue;
    }
    std::vector<std::uint8_t> payload(len);
    std::size_t got = 0;
    while (got < len) {
      const ssize_t n = ::read(fd, payload.data() + got, len - got);
      if (n <= 0) break;
      got += static_cast<std::size_t>(n);
    }
    ::close(fd);
    if (got != len || crc32(payload.data(), len) != want_crc) {
      LOG_WARN("ha", "snapshot %s failed crc check, trying older",
               path.c_str());
      continue;
    }
    return SnapshotInfo{lsn, epoch, std::move(payload)};
  }
  return std::nullopt;
}

std::uint64_t read_log_epoch(const std::string& dir) {
  std::uint64_t epoch = 0;
  std::uint64_t base_lsn = 0;
  if (auto snap = load_latest_snapshot(dir)) {
    epoch = snap->epoch;
    base_lsn = snap->lsn;
  }
  (void)Wal::replay(dir, base_lsn + 1,
                    [&](std::uint64_t, const std::uint8_t* payload,
                        std::size_t size) {
                      auto record = decode_record(payload, size);
                      if (!record.ok()) return false;
                      if (const auto* bump =
                              std::get_if<RecEpoch>(&record.value())) {
                        epoch = std::max(epoch, bump->epoch);
                      }
                      return true;
                    });
  return epoch;
}

// ---------------------------------------------------------------- Journal

Journal::Journal(Options options) : options_(std::move(options)) {
  if (options_.obs != nullptr) {
    auto& reg = options_.obs->registry();
    m_records_ = &reg.counter("falkon.ha.journal.records");
    m_snapshots_ = &reg.counter("falkon.ha.snapshot.writes");
    m_last_lsn_ = &reg.gauge("falkon.ha.journal.last_lsn");
    m_acked_lsn_ = &reg.gauge("falkon.ha.repl.acked_lsn");
    m_lag_ = &reg.gauge("falkon.ha.repl.lag");
  }
}

Result<std::unique_ptr<Journal>> Journal::open(Options options) {
  std::unique_ptr<Journal> journal(new Journal(std::move(options)));
  std::uint64_t base_lsn = 0;
  if (auto snap = load_latest_snapshot(journal->options_.dir)) {
    auto image = decode_image(snap->payload.data(), snap->payload.size());
    if (!image.ok()) {
      return make_error(image.error().code,
                        "snapshot at lsn " + std::to_string(snap->lsn) + ": " +
                            image.error().message);
    }
    journal->sm_.reset(image.value());
    base_lsn = snap->lsn;
  }

  WalOptions wal_options;
  wal_options.dir = journal->options_.dir;
  wal_options.fsync = journal->options_.fsync;
  wal_options.group_commit_interval_s =
      journal->options_.group_commit_interval_s;
  wal_options.segment_bytes = journal->options_.segment_bytes;
  wal_options.initial_lsn = base_lsn + 1;
  wal_options.obs = journal->options_.obs;
  auto wal = Wal::open(std::move(wal_options));
  if (!wal.ok()) return wal.error();
  journal->wal_ = wal.take();

  // Fold every surviving record past the snapshot into the state machine.
  Status replay_status = ok_status();
  auto replayed = Wal::replay(
      journal->options_.dir, base_lsn + 1,
      [&](std::uint64_t lsn, const std::uint8_t* payload, std::size_t size) {
        auto record = decode_record(payload, size);
        if (!record.ok()) {
          replay_status = make_error(
              record.error().code, "record at lsn " + std::to_string(lsn) +
                                       ": " + record.error().message);
          return false;
        }
        journal->sm_.apply(record.value());
        return true;
      });
  if (!replayed.ok()) return replayed.error();
  if (!replay_status.ok()) return replay_status.error();

  journal->last_lsn_ = std::max(base_lsn, journal->wal_->last_lsn());

  // Epoch fence: first process to append (and fsync) the RecEpoch bump
  // owns the new epoch; everyone else arriving at the same directory sees
  // an epoch >= theirs and must stand down.
  if (journal->options_.promote_epoch != 0) {
    if (journal->sm_.epoch() >= journal->options_.promote_epoch) {
      return make_error(
          ErrorCode::kAlreadyExists,
          "journal already fenced at epoch " +
              std::to_string(journal->sm_.epoch()) + " (wanted " +
              std::to_string(journal->options_.promote_epoch) + ")");
    }
    journal->append_record(RecEpoch{journal->options_.promote_epoch});
    if (auto st = journal->wal_->sync(); !st.ok()) {
      return make_error(st.error().code,
                        "epoch fence fsync: " + st.error().message);
    }
  }
  journal->recovered_ = journal->sm_.image();
  if (journal->m_last_lsn_ != nullptr) {
    journal->m_last_lsn_->set(static_cast<double>(journal->last_lsn_));
  }
  LOG_INFO("ha",
           "journal recovered: lsn=%llu records_replayed=%llu torn_tail=%d",
           static_cast<unsigned long long>(journal->last_lsn_),
           static_cast<unsigned long long>(replayed.value().records),
           journal->wal_->recovery_stats().torn_tail ? 1 : 0);
  return journal;
}

Result<std::unique_ptr<Journal>> Journal::open(
    Options options, const core::DispatcherImage& bootstrap_image,
    std::uint64_t bootstrap_lsn) {
  const std::vector<std::uint8_t> payload = encode_image(bootstrap_image);
  if (auto st = write_snapshot(options.dir, bootstrap_lsn,
                               bootstrap_image.epoch, payload);
      !st.ok()) {
    return st.error();
  }
  return open(std::move(options));
}

core::DispatcherImage Journal::recovered_image() const {
  std::lock_guard lock(mu_);
  return recovered_;
}

std::uint64_t Journal::last_lsn() const {
  std::lock_guard lock(mu_);
  return last_lsn_;
}

std::uint64_t Journal::epoch() const {
  std::lock_guard lock(mu_);
  return sm_.epoch();
}

const ReplayStats& Journal::recovery_stats() const {
  return wal_->recovery_stats();
}

Status Journal::sync() { return wal_->sync(); }

Status Journal::snapshot_now() {
  std::lock_guard lock(mu_);
  return snapshot_locked();
}

Status Journal::snapshot_locked() {
  const std::vector<std::uint8_t> payload = encode_image(sm_.image());
  if (auto st = write_snapshot(options_.dir, last_lsn_, sm_.epoch(), payload);
      !st.ok()) {
    return st;
  }
  wal_->compact(last_lsn_);
  records_since_snapshot_ = 0;
  if (m_snapshots_ != nullptr) m_snapshots_->inc();
  return ok_status();
}

void Journal::append_record(const LogRecord& record) {
  std::lock_guard lock(mu_);
  sm_.apply(record);
  const std::vector<std::uint8_t> payload = encode_record(record);
  auto lsn = wal_->append(payload);
  if (lsn.ok()) {
    last_lsn_ = lsn.value();
  } else {
    // Disk trouble must not take the dispatcher down: keep the in-memory
    // LSN sequence advancing so replication stays consistent, and complain.
    last_lsn_ += 1;
    LOG_ERROR("ha", "wal append failed at lsn %llu: %s",
              static_cast<unsigned long long>(last_lsn_),
              lsn.error().message.c_str());
  }
  if (m_records_ != nullptr) m_records_->inc();
  if (m_last_lsn_ != nullptr) {
    m_last_lsn_->set(static_cast<double>(last_lsn_));
  }

  TailRun tail_run;
  tail_run.first_lsn = last_lsn_;
  tail_run.count = 1;
  Wal::frame_record(tail_run.framed, payload.data(), payload.size());
  tail_bytes_ += tail_run.framed.size();
  tail_.push_back(std::move(tail_run));
  while (tail_bytes_ > options_.repl_tail_bytes && tail_.size() > 1) {
    tail_bytes_ -= tail_.front().framed.size();
    tail_.pop_front();
  }

  maybe_snapshot_locked(1);
}

void Journal::append_records(std::vector<LogRecord>& records) {
  if (records.empty()) return;
  std::lock_guard lock(mu_);
  // One pass builds the exact segment bytes (concatenated frames), then a
  // single Wal::append_frames call commits the run: one write syscall and
  // one fsync-policy check per batch, and the frame buffer moves into the
  // repl tail wholesale — no per-record tail allocation. Records are
  // encoded before they are applied so apply can move their payloads
  // (task specs, results) into the state machine instead of copying.
  std::vector<std::uint8_t> frames;
  for (LogRecord& record : records) {
    encode_record(record, scratch_writer_);
    Wal::frame_record(frames, scratch_writer_.data().data(),
                      scratch_writer_.size());
    sm_.apply(std::move(record));
  }
  auto lsn = wal_->append_frames(frames.data(), frames.size(), records.size());
  if (lsn.ok()) {
    last_lsn_ = lsn.value();
  } else {
    // Same contract as append_record: disk trouble must not take the
    // dispatcher down, and the LSN sequence keeps advancing.
    last_lsn_ += records.size();
    LOG_ERROR("ha", "wal batch append failed at lsn %llu: %s",
              static_cast<unsigned long long>(last_lsn_),
              lsn.error().message.c_str());
  }
  TailRun tail_run;
  tail_run.first_lsn = last_lsn_ - records.size() + 1;
  tail_run.count = records.size();
  tail_run.framed = std::move(frames);
  tail_bytes_ += tail_run.framed.size();
  tail_.push_back(std::move(tail_run));
  while (tail_bytes_ > options_.repl_tail_bytes && tail_.size() > 1) {
    tail_bytes_ -= tail_.front().framed.size();
    tail_.pop_front();
  }
  if (m_records_ != nullptr) m_records_->inc(records.size());
  if (m_last_lsn_ != nullptr) {
    m_last_lsn_->set(static_cast<double>(last_lsn_));
  }
  maybe_snapshot_locked(records.size());
}

void Journal::maybe_snapshot_locked(std::uint64_t new_records) {
  // Snapshot cadence scales with the live image: writing an O(state)
  // snapshot every fixed interval turns a large backlog (e.g. 100k queued
  // tasks) into quadratic append cost. Requiring at least k * live_size()
  // records between snapshots caps the amortized snapshot cost at
  // (per-entry image cost) / k per append; recovery replay is bounded by
  // k * live_size records past the snapshot in exchange.
  constexpr std::uint64_t kSnapshotLiveMultiplier = 8;
  records_since_snapshot_ += new_records;
  if (options_.snapshot_every != 0 &&
      records_since_snapshot_ >=
          std::max<std::uint64_t>(options_.snapshot_every,
                                  kSnapshotLiveMultiplier * sm_.live_size())) {
    if (auto st = snapshot_locked(); !st.ok()) {
      LOG_WARN("ha", "periodic snapshot failed: %s",
               st.error().message.c_str());
      records_since_snapshot_ = 0;  // back off a full interval before retry
    }
  }
}

Journal::Batch Journal::fetch(std::uint64_t from_lsn, std::uint32_t max_bytes) {
  std::lock_guard lock(mu_);
  Batch batch;
  batch.epoch = sm_.epoch();
  batch.last_lsn = last_lsn_;
  if (from_lsn > last_lsn_) return batch;  // caught up: empty ReplAppend

  if (!tail_.empty() && tail_.front().first_lsn <= from_lsn) {
    std::string payload;
    std::uint64_t first = 0;
    std::uint64_t last = 0;
    for (const TailRun& run : tail_) {
      const std::uint64_t run_last = run.first_lsn + run.count - 1;
      if (run_last < from_lsn) continue;
      // Walk the run's frames: skip those below from_lsn, then append
      // frame by frame so the max_bytes cap still lands on a record
      // boundary.
      std::size_t off = 0;
      std::uint64_t lsn = run.first_lsn;
      for (; lsn < from_lsn; ++lsn) {
        off += Wal::frame_size(run.framed.data() + off);
      }
      bool full = false;
      for (; lsn <= run_last; ++lsn) {
        const std::size_t frame = Wal::frame_size(run.framed.data() + off);
        if (first != 0 && payload.size() + frame > max_bytes) {
          full = true;
          break;
        }
        if (first == 0) first = lsn;
        payload.append(
            reinterpret_cast<const char*>(run.framed.data() + off), frame);
        off += frame;
        last = lsn;
      }
      if (full) break;
    }
    if (first != 0) {
      batch.first_lsn = first;
      batch.last_lsn = last;
      batch.payload = std::move(payload);
      return batch;
    }
  }

  // The follower is behind the in-memory tail: ship the full image.
  batch.is_snapshot = true;
  batch.first_lsn = last_lsn_;
  batch.last_lsn = last_lsn_;
  const std::vector<std::uint8_t> image = encode_image(sm_.image());
  batch.payload.assign(reinterpret_cast<const char*>(image.data()),
                       image.size());
  return batch;
}

void Journal::note_ack(std::uint64_t applied_lsn) {
  std::lock_guard lock(mu_);
  if (m_acked_lsn_ != nullptr) {
    m_acked_lsn_->set(static_cast<double>(applied_lsn));
  }
  if (m_lag_ != nullptr) {
    m_lag_->set(applied_lsn >= last_lsn_
                    ? 0.0
                    : static_cast<double>(last_lsn_ - applied_lsn));
  }
}

// ---- StateJournal hooks: build the record, append under mu_ --------------

void Journal::on_instance_created(InstanceId instance, ClientId client) {
  append_record(RecInstanceCreated{instance, client});
}

void Journal::on_instance_destroyed(InstanceId instance) {
  append_record(RecInstanceDestroyed{instance});
}

void Journal::on_submit(InstanceId instance, std::uint64_t submit_seq,
                        const std::vector<TaskSpec>& tasks) {
  append_record(RecSubmit{instance, submit_seq, tasks});
}

void Journal::on_assign(ExecutorId executor,
                        const std::vector<TaskId>& tasks) {
  append_record(RecAssign{executor, tasks});
}

void Journal::on_requeue(const std::vector<TaskId>& tasks, bool retry) {
  append_record(RecRequeue{tasks, retry});
}

void Journal::on_complete(InstanceId instance, const TaskResult& result,
                          bool quarantined) {
  append_record(RecComplete{instance, result, quarantined});
}

void Journal::on_delivered(InstanceId instance,
                           const std::vector<TaskId>& tasks) {
  append_record(RecDelivered{instance, tasks});
}

}  // namespace falkon::ha
