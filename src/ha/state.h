// Log record types and the replicated dispatcher state machine (docs/HA.md).
//
// Every core::StateJournal hook maps to one LogRecord; the WAL stores their
// encodings, the replication channel ships the same framed bytes, and
// StateMachine folds them — in LSN order — into a core::DispatcherImage.
// Because the dispatcher journals each transition before it becomes
// visible (see core/journal.h), applying records 1..N yields exactly the
// durable state at LSN N: primary recovery, standby tailing and the
// falkon-wal tool all share this one apply function.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <variant>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "common/task.h"
#include "core/journal.h"
#include "wire/codec.h"

namespace falkon::ha {

// NOTE: RecType values equal LogRecord variant indices (record_type() casts
// the index) — new records must be appended at the end of BOTH lists.
enum class RecType : std::uint8_t {
  kInstanceCreated = 0,
  kInstanceDestroyed = 1,
  kSubmit = 2,
  kAssign = 3,
  kRequeue = 4,
  kComplete = 5,
  kDelivered = 6,
  kEpoch = 7,
};

[[nodiscard]] const char* record_type_name(RecType type);

struct RecInstanceCreated {
  InstanceId instance;
  ClientId client;
};

struct RecInstanceDestroyed {
  InstanceId instance;
};

struct RecSubmit {
  InstanceId instance;
  std::uint64_t submit_seq{0};  // 0: client not using dedup
  std::vector<TaskSpec> tasks;
};

struct RecAssign {
  ExecutorId executor;
  std::vector<TaskId> tasks;
};

struct RecRequeue {
  std::vector<TaskId> tasks;
  bool retry{false};  // attempt counter bumped
};

struct RecComplete {
  InstanceId instance;
  TaskResult result;
  bool quarantined{false};
};

struct RecDelivered {
  InstanceId instance;
  std::vector<TaskId> tasks;
};

/// Epoch bump: appended exactly once per promotion (or fenced restart)
/// before any other record of the new regime. A record's epoch is
/// positional — the value of the last RecEpoch preceding it — so the
/// steady-state append path pays nothing for fencing.
struct RecEpoch {
  std::uint64_t epoch{0};
};

using LogRecord =
    std::variant<RecInstanceCreated, RecInstanceDestroyed, RecSubmit,
                 RecAssign, RecRequeue, RecComplete, RecDelivered, RecEpoch>;

[[nodiscard]] RecType record_type(const LogRecord& record);

/// One-line summary ("Submit{instance=3, seq=7, tasks=16}") for the
/// falkon-wal dump tool and test failure messages.
[[nodiscard]] std::string record_summary(const LogRecord& record);

[[nodiscard]] std::vector<std::uint8_t> encode_record(const LogRecord& record);
/// Encode into a caller-owned Writer (clear()ed first): the journal's
/// batch append path reuses one Writer so per-record encoding stops
/// allocating once it has seen the largest record.
void encode_record(const LogRecord& record, wire::Writer& w);
/// kProtocolError on malformed input.
[[nodiscard]] Result<LogRecord> decode_record(const std::uint8_t* data,
                                              std::size_t size);

/// Snapshot / ReplSnapshot body: a whole DispatcherImage.
[[nodiscard]] std::vector<std::uint8_t> encode_image(
    const core::DispatcherImage& image);
[[nodiscard]] Result<core::DispatcherImage> decode_image(
    const std::uint8_t* data, std::size_t size);

/// Structural equality, for replay-equivalence tests (image order is
/// canonical: instances sorted by id, queue in submission order).
[[nodiscard]] bool images_equal(const core::DispatcherImage& a,
                                const core::DispatcherImage& b);

/// Folds log records into a DispatcherImage. Single-threaded by design —
/// callers (ha::Journal under its mutex, the standby's tail loop, replay in
/// tests/tools) serialise access.
class StateMachine {
 public:
  /// Back to empty.
  void reset();
  /// Load from a snapshot image.
  void reset(const core::DispatcherImage& image);

  /// Apply one record. Tolerates records for instances/tasks it no longer
  /// knows (the dispatcher counts completions for destroyed instances, and
  /// a snapshot may already incorporate part of a requeue run) — apply
  /// never throws on semantically-stale records.
  void apply(const LogRecord& record);
  /// Move-enabled variant for callers that own the record (the journal's
  /// batch append path): payload-carrying records (RecSubmit specs,
  /// RecComplete results) donate their contents instead of copying.
  void apply(LogRecord&& record);

  /// Canonical image of the current state (see images_equal for order).
  [[nodiscard]] core::DispatcherImage image() const;

  /// Non-terminal tasks currently tracked (queued or assigned).
  [[nodiscard]] std::size_t tasks_pending() const { return tasks_.size(); }

  /// Rough live-state size in records (pending tasks + undelivered results
  /// + instances) — the cost driver of image()/encode_image. The journal
  /// scales its snapshot cadence by this so compaction of a large state
  /// stays amortized O(1) per append instead of O(state) every interval.
  [[nodiscard]] std::size_t live_size() const;

  /// Highest epoch applied (last RecEpoch, or the snapshot's epoch).
  [[nodiscard]] std::uint64_t epoch() const { return epoch_; }

 private:
  struct InstanceState {
    ClientId client;
    std::uint64_t last_submit_seq{0};
    std::map<std::uint64_t, TaskResult> mailbox;  // by task id, stable order
  };
  struct TaskState {
    InstanceId instance;
    TaskSpec spec;
    int attempts{0};
    bool assigned{false};
    std::uint64_t order{0};  // submission/requeue order for the queue image
  };

  std::map<std::uint64_t, InstanceState> instances_;  // by instance id
  std::unordered_map<std::uint64_t, TaskState> tasks_;  // by task id
  std::uint64_t order_counter_{0};
  std::uint64_t next_instance_id_{0};
  std::uint64_t epoch_{0};
  std::uint64_t submitted_{0};
  std::uint64_t completed_{0};
  std::uint64_t failed_{0};
  std::uint64_t retried_{0};
  std::uint64_t quarantined_{0};
};

}  // namespace falkon::ha
