// Warm-standby dispatcher (docs/HA.md).
//
// A Standby tails the primary dispatcher's journal over the falkon-wire
// replication messages (ReplFetch -> ReplAppend / ReplSnapshot, served off
// the primary's existing RPC reactor): it keeps a StateMachine warm and
// acknowledges progress with ReplAck. When the primary stops answering for
// `failover_after_s` it runs a lease election among its configured peers
// (ElectionPing/ElectionAck on each standby's election port; deterministic
// lowest-rank-alive wins, solo fetch-timeout path when no peers are
// configured) and, if it wins, promotes itself — recover authoritative
// state under a bumped epoch, spin up a fresh Dispatcher seeded via
// restore(), and take over the primary's listen endpoints (SO_REUSEADDR +
// bind retry) so executors and clients reconnect to the same host:port
// they already know. Losers keep tailing and re-probe; the epoch fence in
// the journal (Journal::Options::promote_epoch) guarantees at most one
// winner per epoch even when the election messages race.
//
// The election port doubles as a chained replication endpoint: a standby
// answers ReplFetch from its own mirrored tail, so M standbys can form a
// chain (standby B tails standby A tails the primary) instead of each
// multiplying primary fetch load.
//
// Promotion recovers from `shared_log_dir` when the standby can see the
// primary's log directory (same-host deployments; authoritative — closes
// any replication lag), falling back to its warm in-memory image persisted
// into `standby_dir` otherwise (loses at most the replication lag, which
// ReplAck keeps observable as falkon.ha.repl.lag).
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "core/dispatcher.h"
#include "core/service_tcp.h"
#include "ha/journal.h"
#include "ha/state.h"

namespace falkon::ha {

/// Another standby participating in the lease election (and, for chained
/// replication, a possible upstream). `port` is the peer's election port.
struct StandbyPeer {
  std::string host{"127.0.0.1"};
  std::uint16_t port{0};
  std::uint32_t rank{0};
};

struct StandbyOptions {
  /// Upstream to tail: the primary's RPC port — or, for chained
  /// replication, another standby's election port (both speak ReplFetch).
  std::string primary_host{"127.0.0.1"};
  std::uint16_t primary_rpc_port{0};

  /// Election identity: lower rank wins. Ranks must be unique across the
  /// standby fleet.
  std::uint32_t rank{0};
  /// Port for this standby's election + chained-replication server
  /// (0 disables it: the standby can neither be pinged nor tailed).
  std::uint16_t election_port{0};
  /// The other standbys to consult before promoting. Empty = solo mode:
  /// promote on fetch timeout alone, exactly the pre-election behaviour.
  std::vector<StandbyPeer> peers;

  /// Endpoints to claim on promotion — the primary's advertised ports, so
  /// reconnecting peers need no re-configuration.
  std::uint16_t takeover_rpc_port{0};
  std::uint16_t takeover_push_port{0};

  /// Primary's journal directory when visible from this process (same-host
  /// failover); empty when the standby can only rely on replication.
  std::string shared_log_dir;
  /// The standby's own journal directory, used to persist the warm image
  /// when promoting without a readable shared_log_dir — and, either way,
  /// where the promoted dispatcher keeps journaling. Required.
  std::string standby_dir;
  /// Journal settings for the promoted dispatcher (dir is overridden by
  /// shared_log_dir / standby_dir above).
  Journal::Options journal;

  double poll_interval_s{0.02};
  std::uint32_t fetch_max_bytes{1u << 20};
  /// Bound on the framed-record tail mirrored for chained followers; a
  /// follower further behind gets a full snapshot (same contract as
  /// Journal::Options::repl_tail_bytes).
  std::size_t chain_tail_bytes{4u << 20};
  /// Promote after this long without a successful fetch.
  double failover_after_s{0.5};
  /// Promote even if the primary was never reachable (normally off: a
  /// standby that never saw a primary has nothing to recover and would
  /// race a healthy primary for the port).
  bool promote_without_contact{false};
  /// How long promotion retries binding the takeover ports (the dying
  /// primary's sockets may linger briefly).
  double takeover_bind_timeout_s{5.0};

  /// Configuration for the promoted dispatcher (journal/obs/fault fields
  /// are filled in by the standby).
  core::DispatcherConfig dispatcher;

  obs::Obs* obs{nullptr};
  fault::FaultInjector* fault{nullptr};
};

class Standby {
 public:
  Standby(Clock& clock, StandbyOptions options);
  ~Standby();

  Standby(const Standby&) = delete;
  Standby& operator=(const Standby&) = delete;

  /// Start tailing the primary.
  Status start();
  /// Stop tailing (and the promoted server, if any).
  void stop();

  [[nodiscard]] bool promoted() const {
    return promoted_.load(std::memory_order_acquire);
  }
  /// Block until promotion or timeout (real seconds); true when promoted.
  bool wait_promoted(double timeout_s);

  [[nodiscard]] std::uint64_t applied_lsn() const {
    return applied_.load(std::memory_order_acquire);
  }
  /// Highest epoch this standby has applied (bumps when it promotes).
  [[nodiscard]] std::uint64_t epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }
  /// This standby's election port (valid after start() when configured).
  [[nodiscard]] std::uint16_t election_port() const {
    return election_server_ != nullptr ? election_server_->port() : 0;
  }

  /// Valid only after promotion.
  [[nodiscard]] core::Dispatcher* dispatcher() { return dispatcher_.get(); }
  [[nodiscard]] core::TcpDispatcherServer* server() { return server_.get(); }

 private:
  void tail_loop();
  /// One ReplFetch exchange; false on transport failure.
  bool fetch_once();
  /// Ping every peer; true when this standby should promote (no live peer
  /// outranks us and none has promoted already). Vacuously true solo.
  bool win_election();
  /// false: promotion lost the epoch fence or the bind — keep standing by.
  bool promote();
  wire::Message serve_election(const wire::Message& request);

  Clock& clock_;
  StandbyOptions options_;

  std::thread tail_thread_;
  std::atomic<bool> stopping_{false};
  std::atomic<bool> promoted_{false};
  std::atomic<std::uint64_t> applied_{0};
  std::atomic<std::uint64_t> epoch_{0};
  std::mutex promote_mu_;
  std::condition_variable promote_cv_;

  std::unique_ptr<net::RpcClient> rpc_;
  /// Mirror state: guarded by mirror_mu_ — the tail thread applies to it
  /// and the election server serves chained ReplFetch from it.
  mutable std::mutex mirror_mu_;
  StateMachine sm_;
  struct ChainRecord {
    std::uint64_t lsn{0};
    std::vector<std::uint8_t> framed;
  };
  std::deque<ChainRecord> chain_tail_;
  std::size_t chain_tail_bytes_{0};
  bool saw_primary_{false};
  /// Tail thread only: the epoch this standby will claim if it wins —
  /// max(everything seen during the election) + 1.
  std::uint64_t election_epoch_{0};

  std::unique_ptr<net::RpcServer> election_server_;
  std::unique_ptr<Journal> journal_;
  std::unique_ptr<core::Dispatcher> dispatcher_;
  std::unique_ptr<core::TcpDispatcherServer> server_;

  obs::Gauge* m_applied_{nullptr};
  obs::Gauge* m_failover_s_{nullptr};
  obs::Counter* m_elections_{nullptr};
  obs::Counter* m_elections_lost_{nullptr};
};

}  // namespace falkon::ha
