// Segmented, CRC32-framed write-ahead log (docs/HA.md).
//
// Layout: the log directory holds segments named wal-<first_lsn>.log. A
// segment starts with a 16-byte header (magic "FWAL", version, first LSN)
// followed by records framed as [u32 len][u32 crc32][payload]. LSNs are
// dense and start at 1; a segment's records are exactly
// [first_lsn, next segment's first_lsn).
//
// Torn-tail recovery: a crash mid-write leaves a short or corrupt frame at
// the end of the last segment. open()/replay() stop at the last valid
// record — never crash on garbage — and open() physically truncates the
// tail (and discards any unreachable later segments) so appends continue
// from a clean edge.
//
// Fsync policy trades durability for append latency: kEveryRecord fsyncs
// each append (bounded loss: nothing), kGroupCommit fsyncs at most once
// per interval while writes flow (bounded loss: one interval), kNone
// leaves flushing to the OS. Records are written straight through write(2)
// with no userspace buffering, so a same-host reader (the standby's
// promote-time catch-up replay) sees every appended record even before it
// is fsynced.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "obs/obs.h"

namespace falkon::ha {

/// IEEE CRC-32 (reflected, poly 0xEDB88320) — the frame checksum.
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t size,
                                  std::uint32_t seed = 0);

enum class FsyncPolicy : std::uint8_t {
  kNone = 0,       // leave flushing to the OS
  kEveryRecord,    // fsync after every append
  kGroupCommit,    // fsync at most once per group_commit_interval_s
};

[[nodiscard]] const char* fsync_policy_name(FsyncPolicy policy);

struct WalOptions {
  std::string dir;
  FsyncPolicy fsync{FsyncPolicy::kNone};
  double group_commit_interval_s{0.02};
  /// Rotate to a new segment once the current one exceeds this.
  std::uint64_t segment_bytes{8ull << 20};
  /// First LSN to issue when the directory holds no segments (a standby
  /// bootstrapping a fresh log from a snapshot continues the primary's
  /// numbering instead of restarting at 1).
  std::uint64_t initial_lsn{1};
  /// Metrics: falkon.ha.wal.{appends,fsyncs,segments,fsync_s}.
  obs::Obs* obs{nullptr};
};

/// What a replay/open scan found.
struct ReplayStats {
  std::uint64_t records{0};
  std::uint64_t first_lsn{0};  // 0 when the log is empty
  std::uint64_t last_lsn{0};
  /// Replay stopped before the physical end of the log (short frame, CRC
  /// mismatch, insane length, or bad segment header).
  bool torn_tail{false};
};

class Wal {
 public:
  /// Scan `options.dir` (created if missing), truncate any torn tail, and
  /// open the log for appending after its last valid record.
  static Result<std::unique_ptr<Wal>> open(WalOptions options);
  ~Wal();

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Append one record; returns its LSN. Thread-safe.
  Result<std::uint64_t> append(const std::uint8_t* payload, std::size_t size);
  Result<std::uint64_t> append(const std::vector<std::uint8_t>& payload);

  /// Append `count` pre-framed records (concatenated frame_record output)
  /// with a single write and one fsync-policy check; returns the LSN of
  /// the last record. The group-commit fast path: AsyncJournal's drain
  /// batches its ring into one of these instead of one syscall per record.
  Result<std::uint64_t> append_frames(const std::uint8_t* frames,
                                      std::size_t size, std::size_t count);

  /// Flush to disk regardless of policy (rotation and close also sync).
  Status sync();

  /// Delete closed segments whose records are all <= upto_lsn (a snapshot
  /// at upto_lsn makes them redundant). The active segment always stays.
  void compact(std::uint64_t upto_lsn);

  [[nodiscard]] std::uint64_t last_lsn() const;
  [[nodiscard]] std::uint64_t next_lsn() const;
  [[nodiscard]] std::size_t segment_count() const;
  /// What open() found on disk (torn tail diagnostics).
  [[nodiscard]] const ReplayStats& recovery_stats() const { return recovered_; }

  /// Stream every valid record with lsn >= from_lsn, in LSN order, from a
  /// cold directory (no Wal instance needed — recovery and the falkon-wal
  /// tool both use this). The callback returns false to stop early. Replay
  /// stops at the first invalid frame; that is reported via
  /// ReplayStats::torn_tail, not an error.
  using ReplayFn = std::function<bool(
      std::uint64_t lsn, const std::uint8_t* payload, std::size_t size)>;
  static Result<ReplayStats> replay(const std::string& dir,
                                    std::uint64_t from_lsn,
                                    const ReplayFn& fn);

  // ---- frame helpers (shared with the replication path) ----

  /// Append one [len][crc][payload] frame to `out` — the exact bytes a
  /// segment stores, reused as the ReplAppend payload encoding.
  static void frame_record(std::vector<std::uint8_t>& out,
                           const std::uint8_t* payload, std::size_t size);

  /// Total on-disk size of the frame starting at `frame` (header +
  /// payload), for walking concatenated frame runs.
  static std::size_t frame_size(const std::uint8_t* frame);

  /// Strict parse of concatenated frames (replication batches): unlike
  /// replay, any malformed frame is an error — a torn frame inside an RPC
  /// payload means corruption, not a crash edge.
  static Status parse_frames(
      const std::uint8_t* data, std::size_t size,
      const std::function<void(const std::uint8_t* payload,
                               std::size_t size)>& fn);

 private:
  struct Segment {
    std::uint64_t first_lsn{0};
    std::string path;
  };

  explicit Wal(WalOptions options);

  Status open_segment_locked(std::uint64_t first_lsn);
  Status rotate_locked();
  Status sync_locked();

  WalOptions options_;
  mutable std::mutex mu_;
  int fd_{-1};
  std::uint64_t next_lsn_{1};
  std::uint64_t segment_size_{0};
  std::vector<Segment> segments_;  // sorted by first_lsn; back() is active
  double last_sync_monotonic_s_{0.0};
  ReplayStats recovered_;

  obs::Counter* m_appends_{nullptr};
  obs::Counter* m_fsyncs_{nullptr};
  obs::Gauge* m_segments_{nullptr};
  obs::Histogram* m_fsync_s_{nullptr};
};

}  // namespace falkon::ha
