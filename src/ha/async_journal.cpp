#include "ha/async_journal.h"

#include <chrono>

namespace falkon::ha {
namespace {

std::size_t round_up_pow2(std::size_t v) {
  std::size_t p = 1;
  while (p < v) p <<= 1;
  return p;
}

}  // namespace

AsyncJournal::AsyncJournal(std::unique_ptr<Journal> inner)
    : AsyncJournal(std::move(inner), Options()) {}

AsyncJournal::AsyncJournal(std::unique_ptr<Journal> inner, Options options)
    : inner_(std::move(inner)),
      ring_(round_up_pow2(options.queue_capacity < 2 ? 2
                                                     : options.queue_capacity)),
      mask_(ring_.size() - 1) {
  // Vyukov sequencing: cell i is writable when seq == ticket, readable when
  // seq == ticket + 1; the drain thread resets it to ticket + ring size.
  for (std::size_t i = 0; i < ring_.size(); ++i) {
    ring_[i].seq.store(i, std::memory_order_relaxed);
  }
  drain_thread_ = std::thread([this] { drain_loop(); });
}

AsyncJournal::~AsyncJournal() {
  barrier();  // nothing enqueued after this: the dispatcher is detached
  stopping_.store(true, std::memory_order_release);
  {
    std::lock_guard lock(wake_mu_);
    drain_cv_.notify_all();
  }
  if (drain_thread_.joinable()) drain_thread_.join();
}

std::uint64_t AsyncJournal::backlog() const {
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  const std::uint64_t appended = appended_.load(std::memory_order_acquire);
  return head > appended ? head - appended : 0;
}

void AsyncJournal::enqueue(LogRecord record) {
  const std::uint64_t ticket =
      head_.fetch_add(1, std::memory_order_acq_rel);
  Cell& cell = ring_[ticket & mask_];
  // Ring full (drain lagging a whole lap): wait for our cell to free up.
  // Spin briefly, then yield — bounded by inner append latency.
  for (int spins = 0;
       cell.seq.load(std::memory_order_acquire) != ticket; ++spins) {
    if (spins > 128) std::this_thread::yield();
  }
  cell.record = std::move(record);
  cell.seq.store(ticket + 1, std::memory_order_release);
  // Wake the drain only when the backlog gets deep: a sleeping drain picks
  // up a shallow trickle on its own 1 ms tick, and a futex round trip per
  // record is exactly the hot-path cost this class exists to remove (on a
  // single-core host it also donates the producer's timeslice away).
  // barrier() wakes the drain explicitly, so ack latency never rides the
  // tick.
  if (drain_sleeping_.load(std::memory_order_acquire) &&
      ticket + 1 - appended_.load(std::memory_order_acquire) >=
          ring_.size() / 4) {
    std::lock_guard lock(wake_mu_);
    drain_cv_.notify_one();
  }
}

void AsyncJournal::drain_loop() {
  std::uint64_t next = 0;
  for (;;) {
    // Drain a batch: move every ready cell out (producers blocked on a
    // full ring resume immediately), hand the whole run to the inner
    // journal as one append_frames write, and publish the barrier
    // watermark plus its futex wakeup once per batch, not per record.
    batch_.clear();
    for (std::uint64_t claimed = next; batch_.size() < 256; ++claimed) {
      Cell& cell = ring_[claimed & mask_];
      if (cell.seq.load(std::memory_order_acquire) != claimed + 1) break;
      batch_.push_back(std::move(cell.record));
      cell.record = LogRecord{};  // drop payload before freeing the cell
      cell.seq.store(claimed + ring_.size(), std::memory_order_release);
    }
    if (!batch_.empty()) {
      inner_->append_records(batch_);
      next += batch_.size();
      appended_.store(next, std::memory_order_release);
      if (barrier_waiters_.load(std::memory_order_acquire) > 0) {
        std::lock_guard lock(wake_mu_);
        barrier_cv_.notify_all();
      }
      continue;
    }
    // Ring empty: spin a little for the common submit burst, then sleep.
    Cell& cell = ring_[next & mask_];
    bool got = false;
    for (int spins = 0; spins < 64; ++spins) {
      if (cell.seq.load(std::memory_order_acquire) == next + 1) {
        got = true;
        break;
      }
    }
    if (got) continue;
    if (stopping_.load(std::memory_order_acquire) &&
        head_.load(std::memory_order_acquire) == next) {
      return;
    }
    std::unique_lock lock(wake_mu_);
    drain_sleeping_.store(true, std::memory_order_release);
    drain_cv_.wait_for(lock, std::chrono::milliseconds(1), [&] {
      return cell.seq.load(std::memory_order_acquire) == next + 1 ||
             flush_requested_.load(std::memory_order_acquire) ||
             stopping_.load(std::memory_order_acquire);
    });
    drain_sleeping_.store(false, std::memory_order_release);
    flush_requested_.store(false, std::memory_order_release);
  }
}

void AsyncJournal::barrier() {
  const std::uint64_t target = head_.load(std::memory_order_acquire);
  if (appended_.load(std::memory_order_acquire) >= target) return;
  barrier_waiters_.fetch_add(1, std::memory_order_acq_rel);
  {
    std::unique_lock lock(wake_mu_);
    flush_requested_.store(true, std::memory_order_release);
    drain_cv_.notify_one();
    barrier_cv_.wait(lock, [&] {
      return appended_.load(std::memory_order_acquire) >= target;
    });
  }
  barrier_waiters_.fetch_sub(1, std::memory_order_acq_rel);
}

// ---- StateJournal hooks: move the record into the ring -------------------

void AsyncJournal::on_instance_created(InstanceId instance, ClientId client) {
  enqueue(RecInstanceCreated{instance, client});
}

void AsyncJournal::on_instance_destroyed(InstanceId instance) {
  enqueue(RecInstanceDestroyed{instance});
}

void AsyncJournal::on_submit(InstanceId instance, std::uint64_t submit_seq,
                             const std::vector<TaskSpec>& tasks) {
  enqueue(RecSubmit{instance, submit_seq, tasks});
}

void AsyncJournal::on_assign(ExecutorId executor,
                             const std::vector<TaskId>& tasks) {
  enqueue(RecAssign{executor, tasks});
}

void AsyncJournal::on_requeue(const std::vector<TaskId>& tasks, bool retry) {
  enqueue(RecRequeue{tasks, retry});
}

void AsyncJournal::on_complete(InstanceId instance, const TaskResult& result,
                               bool quarantined) {
  enqueue(RecComplete{instance, result, quarantined});
}

void AsyncJournal::on_delivered(InstanceId instance,
                                const std::vector<TaskId>& tasks) {
  enqueue(RecDelivered{instance, tasks});
}

// ---- ReplicationSource ---------------------------------------------------

AsyncJournal::Batch AsyncJournal::fetch(std::uint64_t from_lsn,
                                        std::uint32_t max_bytes) {
  barrier();  // followers must never see the journal behind acked state
  return inner_->fetch(from_lsn, max_bytes);
}

void AsyncJournal::note_ack(std::uint64_t applied_lsn) {
  inner_->note_ack(applied_lsn);
}

}  // namespace falkon::ha
