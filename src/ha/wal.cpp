#include "ha/wal.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <array>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <dirent.h>

namespace falkon::ha {
namespace {

constexpr char kMagic[4] = {'F', 'W', 'A', 'L'};
constexpr std::uint32_t kVersion = 1;
constexpr std::size_t kHeaderBytes = 16;  // magic + u32 version + u64 first_lsn
constexpr std::size_t kFrameHeaderBytes = 8;  // u32 len + u32 crc
// A record bigger than this is treated as corruption, not data: the
// dispatcher's largest record is a submit bundle, far below this.
constexpr std::uint32_t kMaxRecordBytes = 64u << 20;

double monotonic_s() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

void put_u32(std::uint8_t* out, std::uint32_t v) {
  out[0] = static_cast<std::uint8_t>(v);
  out[1] = static_cast<std::uint8_t>(v >> 8);
  out[2] = static_cast<std::uint8_t>(v >> 16);
  out[3] = static_cast<std::uint8_t>(v >> 24);
}

std::uint32_t get_u32(const std::uint8_t* in) {
  return static_cast<std::uint32_t>(in[0]) |
         (static_cast<std::uint32_t>(in[1]) << 8) |
         (static_cast<std::uint32_t>(in[2]) << 16) |
         (static_cast<std::uint32_t>(in[3]) << 24);
}

void put_u64(std::uint8_t* out, std::uint64_t v) {
  put_u32(out, static_cast<std::uint32_t>(v));
  put_u32(out + 4, static_cast<std::uint32_t>(v >> 32));
}

std::uint64_t get_u64(const std::uint8_t* in) {
  return static_cast<std::uint64_t>(get_u32(in)) |
         (static_cast<std::uint64_t>(get_u32(in + 4)) << 32);
}

std::string segment_path(const std::string& dir, std::uint64_t first_lsn) {
  char name[48];
  std::snprintf(name, sizeof(name), "wal-%020llu.log",
                static_cast<unsigned long long>(first_lsn));
  return dir + "/" + name;
}

/// Parse "wal-<lsn>.log"; returns 0 for anything else (LSNs start at 1).
std::uint64_t parse_segment_name(const char* name) {
  unsigned long long lsn = 0;
  char tail[8] = {0};
  if (std::sscanf(name, "wal-%20llu.%3s", &lsn, tail) != 2) return 0;
  if (std::strcmp(tail, "log") != 0) return 0;
  return lsn;
}

Status read_file(const std::string& path, std::vector<std::uint8_t>& out) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return make_error(ErrorCode::kIoError,
                      "open " + path + ": " + std::strerror(errno));
  }
  out.clear();
  std::array<std::uint8_t, 64 * 1024> buf;
  for (;;) {
    const ssize_t n = ::read(fd, buf.data(), buf.size());
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      return make_error(ErrorCode::kIoError,
                        "read " + path + ": " + std::strerror(err));
    }
    if (n == 0) break;
    out.insert(out.end(), buf.data(), buf.data() + n);
  }
  ::close(fd);
  return ok_status();
}

struct SegmentScan {
  std::uint64_t records{0};      // valid records found
  std::size_t valid_bytes{0};    // header + valid frames
  bool clean{true};              // no torn tail / corruption after the last
                                 // valid record
  bool header_ok{false};
};

/// Walk one segment's bytes, invoking fn per valid record; stops at the
/// first invalid frame.
SegmentScan scan_segment(const std::uint8_t* data, std::size_t size,
                         std::uint64_t expect_first_lsn,
                         const Wal::ReplayFn* fn, std::uint64_t from_lsn) {
  SegmentScan scan;
  if (size < kHeaderBytes || std::memcmp(data, kMagic, 4) != 0 ||
      get_u32(data + 4) != kVersion ||
      get_u64(data + 8) != expect_first_lsn) {
    scan.clean = false;
    return scan;
  }
  scan.header_ok = true;
  scan.valid_bytes = kHeaderBytes;
  std::size_t off = kHeaderBytes;
  std::uint64_t lsn = expect_first_lsn;
  while (off < size) {
    if (size - off < kFrameHeaderBytes) {
      scan.clean = false;  // torn frame header
      break;
    }
    const std::uint32_t len = get_u32(data + off);
    const std::uint32_t want_crc = get_u32(data + off + 4);
    if (len > kMaxRecordBytes || size - off - kFrameHeaderBytes < len) {
      scan.clean = false;  // insane length or torn payload
      break;
    }
    const std::uint8_t* payload = data + off + kFrameHeaderBytes;
    if (crc32(payload, len) != want_crc) {
      scan.clean = false;  // corrupted record
      break;
    }
    if (fn != nullptr && lsn >= from_lsn) {
      if (!(*fn)(lsn, payload, len)) {
        // Early stop requested: report progress so far, still "clean".
        scan.records += 1;
        scan.valid_bytes = off + kFrameHeaderBytes + len;
        return scan;
      }
    }
    scan.records += 1;
    off += kFrameHeaderBytes + len;
    scan.valid_bytes = off;
    lsn += 1;
  }
  return scan;
}

/// Sorted (by first_lsn) list of segment files in dir.
std::vector<std::pair<std::uint64_t, std::string>> list_segments(
    const std::string& dir) {
  std::vector<std::pair<std::uint64_t, std::string>> out;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return out;
  while (dirent* entry = ::readdir(d)) {
    const std::uint64_t lsn = parse_segment_name(entry->d_name);
    if (lsn != 0) out.emplace_back(lsn, dir + "/" + entry->d_name);
  }
  ::closedir(d);
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) {
  static const auto table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t crc = ~seed;
  const auto* p = static_cast<const std::uint8_t*>(data);
  for (std::size_t i = 0; i < size; ++i) {
    crc = table[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

const char* fsync_policy_name(FsyncPolicy policy) {
  switch (policy) {
    case FsyncPolicy::kNone: return "none";
    case FsyncPolicy::kEveryRecord: return "every_record";
    case FsyncPolicy::kGroupCommit: return "group_commit";
  }
  return "unknown";
}

void Wal::frame_record(std::vector<std::uint8_t>& out,
                       const std::uint8_t* payload, std::size_t size) {
  std::uint8_t header[kFrameHeaderBytes];
  put_u32(header, static_cast<std::uint32_t>(size));
  put_u32(header + 4, crc32(payload, size));
  out.insert(out.end(), header, header + kFrameHeaderBytes);
  out.insert(out.end(), payload, payload + size);
}

std::size_t Wal::frame_size(const std::uint8_t* frame) {
  return kFrameHeaderBytes + get_u32(frame);
}

Status Wal::parse_frames(
    const std::uint8_t* data, std::size_t size,
    const std::function<void(const std::uint8_t*, std::size_t)>& fn) {
  std::size_t off = 0;
  while (off < size) {
    if (size - off < kFrameHeaderBytes) {
      return make_error(ErrorCode::kProtocolError, "truncated frame header");
    }
    const std::uint32_t len = get_u32(data + off);
    const std::uint32_t want_crc = get_u32(data + off + 4);
    if (len > kMaxRecordBytes || size - off - kFrameHeaderBytes < len) {
      return make_error(ErrorCode::kProtocolError, "truncated frame payload");
    }
    const std::uint8_t* payload = data + off + kFrameHeaderBytes;
    if (crc32(payload, len) != want_crc) {
      return make_error(ErrorCode::kProtocolError, "frame crc mismatch");
    }
    fn(payload, len);
    off += kFrameHeaderBytes + len;
  }
  return ok_status();
}

Result<ReplayStats> Wal::replay(const std::string& dir, std::uint64_t from_lsn,
                                const ReplayFn& fn) {
  ReplayStats stats;
  const auto segments = list_segments(dir);
  std::vector<std::uint8_t> bytes;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const auto& [first_lsn, path] = segments[i];
    if (stats.first_lsn == 0) stats.first_lsn = first_lsn;
    // A gap between segments means the earlier one is incomplete relative
    // to the later one's name — treat everything from the gap on as
    // unreachable tail.
    if (stats.last_lsn != 0 && first_lsn != stats.last_lsn + 1) {
      stats.torn_tail = true;
      break;
    }
    if (auto st = read_file(path, bytes); !st.ok()) return st.error();
    const SegmentScan scan =
        scan_segment(bytes.data(), bytes.size(), first_lsn, &fn, from_lsn);
    stats.records += scan.records;
    if (scan.records > 0) stats.last_lsn = first_lsn + scan.records - 1;
    if (!scan.clean) {
      stats.torn_tail = true;
      break;
    }
    // An empty-but-valid segment can only be the last one; a later segment
    // after it would create a gap caught above.
    if (scan.records == 0 && i + 1 < segments.size()) {
      stats.torn_tail = true;
      break;
    }
  }
  if (stats.records == 0) stats.first_lsn = 0;
  return stats;
}

Wal::Wal(WalOptions options) : options_(std::move(options)) {
  if (options_.obs != nullptr) {
    auto& reg = options_.obs->registry();
    m_appends_ = &reg.counter("falkon.ha.wal.appends");
    m_fsyncs_ = &reg.counter("falkon.ha.wal.fsyncs");
    m_segments_ = &reg.gauge("falkon.ha.wal.segments");
    m_fsync_s_ = &reg.histogram("falkon.ha.wal.fsync_s", 1e-6, 1.0);
  }
}

Wal::~Wal() {
  std::lock_guard lock(mu_);
  if (fd_ >= 0) {
    ::fsync(fd_);
    ::close(fd_);
    fd_ = -1;
  }
}

Result<std::unique_ptr<Wal>> Wal::open(WalOptions options) {
  if (options.dir.empty()) {
    return make_error(ErrorCode::kInvalidArgument, "wal dir not set");
  }
  if (::mkdir(options.dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return make_error(ErrorCode::kIoError, "mkdir " + options.dir + ": " +
                                               std::strerror(errno));
  }
  std::unique_ptr<Wal> wal(new Wal(std::move(options)));

  const auto segments = list_segments(wal->options_.dir);
  std::vector<std::uint8_t> bytes;
  std::uint64_t last_lsn = 0;
  bool torn = false;
  for (std::size_t i = 0; i < segments.size(); ++i) {
    const auto& [first_lsn, path] = segments[i];
    if (torn || (last_lsn != 0 && first_lsn != last_lsn + 1) ||
        (last_lsn == 0 && i > 0)) {
      // Unreachable past a torn/missing predecessor: discard entirely.
      wal->recovered_.torn_tail = true;
      ::unlink(path.c_str());
      torn = true;
      continue;
    }
    if (auto st = read_file(path, bytes); !st.ok()) return st.error();
    const SegmentScan scan =
        scan_segment(bytes.data(), bytes.size(), first_lsn, nullptr, 0);
    if (!scan.header_ok) {
      // Garbage segment: drop it and everything after.
      wal->recovered_.torn_tail = true;
      ::unlink(path.c_str());
      torn = true;
      continue;
    }
    if (wal->recovered_.first_lsn == 0) wal->recovered_.first_lsn = first_lsn;
    wal->recovered_.records += scan.records;
    if (scan.records > 0) last_lsn = first_lsn + scan.records - 1;
    if (!scan.clean) {
      // Torn tail: truncate this segment to its last valid record and
      // drop any later segments.
      wal->recovered_.torn_tail = true;
      if (::truncate(path.c_str(),
                     static_cast<off_t>(scan.valid_bytes)) != 0) {
        return make_error(ErrorCode::kIoError, "truncate " + path + ": " +
                                                   std::strerror(errno));
      }
      torn = true;
    }
    wal->segments_.push_back(Segment{first_lsn, path});
    wal->segment_size_ = scan.valid_bytes;
  }
  wal->recovered_.last_lsn = last_lsn;
  if (wal->recovered_.records == 0) wal->recovered_.first_lsn = 0;

  std::lock_guard lock(wal->mu_);
  if (wal->segments_.empty()) {
    wal->next_lsn_ = std::max<std::uint64_t>(wal->options_.initial_lsn, 1);
    if (auto st = wal->open_segment_locked(wal->next_lsn_); !st.ok()) {
      return st.error();
    }
  } else {
    wal->next_lsn_ = last_lsn == 0 ? wal->segments_.back().first_lsn
                                   : last_lsn + 1;
    // Reopen the last segment for appending.
    const int fd = ::open(wal->segments_.back().path.c_str(),
                          O_WRONLY | O_APPEND | O_CLOEXEC);
    if (fd < 0) {
      return make_error(ErrorCode::kIoError,
                        "open " + wal->segments_.back().path + ": " +
                            std::strerror(errno));
    }
    wal->fd_ = fd;
  }
  if (wal->m_segments_ != nullptr) {
    wal->m_segments_->set(static_cast<double>(wal->segments_.size()));
  }
  return wal;
}

Status Wal::open_segment_locked(std::uint64_t first_lsn) {
  const std::string path = segment_path(options_.dir, first_lsn);
  const int fd =
      ::open(path.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return make_error(ErrorCode::kIoError,
                      "open " + path + ": " + std::strerror(errno));
  }
  std::uint8_t header[kHeaderBytes];
  std::memcpy(header, kMagic, 4);
  put_u32(header + 4, kVersion);
  put_u64(header + 8, first_lsn);
  if (::write(fd, header, sizeof(header)) !=
      static_cast<ssize_t>(sizeof(header))) {
    const int err = errno;
    ::close(fd);
    return make_error(ErrorCode::kIoError,
                      "write " + path + ": " + std::strerror(err));
  }
  fd_ = fd;
  segment_size_ = kHeaderBytes;
  segments_.push_back(Segment{first_lsn, path});
  if (m_segments_ != nullptr) {
    m_segments_->set(static_cast<double>(segments_.size()));
  }
  return ok_status();
}

Status Wal::rotate_locked() {
  if (fd_ >= 0) {
    ::fsync(fd_);  // a closed segment is always durable
    ::close(fd_);
    fd_ = -1;
  }
  return open_segment_locked(next_lsn_);
}

Status Wal::sync_locked() {
  if (fd_ < 0) return ok_status();
  const double start = monotonic_s();
  // fdatasync, not fsync: the append path only needs the data and the file
  // size durable (the size IS how recovery finds the tail), not mtime and
  // friends — skipping the metadata journal commit roughly halves the
  // group-commit CPU bill on ext-family filesystems.
  if (::fdatasync(fd_) != 0) {
    return make_error(ErrorCode::kIoError,
                      std::string("fdatasync: ") + std::strerror(errno));
  }
  last_sync_monotonic_s_ = monotonic_s();
  if (m_fsyncs_ != nullptr) m_fsyncs_->inc();
  if (m_fsync_s_ != nullptr) m_fsync_s_->record(last_sync_monotonic_s_ - start);
  return ok_status();
}

Result<std::uint64_t> Wal::append(const std::uint8_t* payload,
                                  std::size_t size) {
  if (size > kMaxRecordBytes) {
    return make_error(ErrorCode::kInvalidArgument, "record too large");
  }
  std::lock_guard lock(mu_);
  if (fd_ < 0) return make_error(ErrorCode::kClosed, "wal closed");
  if (segment_size_ >= options_.segment_bytes) {
    if (auto st = rotate_locked(); !st.ok()) return st.error();
  }
  // One writev-shaped buffer per append keeps the frame atomic-ish on
  // disk; a crash can still tear it, which is exactly what recovery
  // handles.
  std::uint8_t header[kFrameHeaderBytes];
  put_u32(header, static_cast<std::uint32_t>(size));
  put_u32(header + 4, crc32(payload, size));
  struct iovec iov[2] = {
      {header, sizeof(header)},
      {const_cast<std::uint8_t*>(payload), size},
  };
  const ssize_t want = static_cast<ssize_t>(sizeof(header) + size);
  if (::writev(fd_, iov, 2) != want) {
    return make_error(ErrorCode::kIoError,
                      std::string("writev: ") + std::strerror(errno));
  }
  segment_size_ += static_cast<std::uint64_t>(want);
  const std::uint64_t lsn = next_lsn_++;
  if (m_appends_ != nullptr) m_appends_->inc();

  switch (options_.fsync) {
    case FsyncPolicy::kNone:
      break;
    case FsyncPolicy::kEveryRecord:
      if (auto st = sync_locked(); !st.ok()) return st.error();
      break;
    case FsyncPolicy::kGroupCommit:
      if (monotonic_s() - last_sync_monotonic_s_ >=
          options_.group_commit_interval_s) {
        if (auto st = sync_locked(); !st.ok()) return st.error();
      }
      break;
  }
  return lsn;
}

Result<std::uint64_t> Wal::append(const std::vector<std::uint8_t>& payload) {
  return append(payload.data(), payload.size());
}

Result<std::uint64_t> Wal::append_frames(const std::uint8_t* frames,
                                         std::size_t size, std::size_t count) {
  if (count == 0) {
    return make_error(ErrorCode::kInvalidArgument, "empty frame batch");
  }
  std::lock_guard lock(mu_);
  if (fd_ < 0) return make_error(ErrorCode::kClosed, "wal closed");
  // Rotation check once per batch: a batch may overshoot segment_bytes by
  // its own size, which recovery and compaction are indifferent to.
  if (segment_size_ >= options_.segment_bytes) {
    if (auto st = rotate_locked(); !st.ok()) return st.error();
  }
  if (::write(fd_, frames, size) != static_cast<ssize_t>(size)) {
    return make_error(ErrorCode::kIoError,
                      std::string("write: ") + std::strerror(errno));
  }
  segment_size_ += static_cast<std::uint64_t>(size);
  next_lsn_ += count;
  const std::uint64_t lsn = next_lsn_ - 1;
  if (m_appends_ != nullptr) m_appends_->inc(count);

  switch (options_.fsync) {
    case FsyncPolicy::kNone:
      break;
    case FsyncPolicy::kEveryRecord:
      if (auto st = sync_locked(); !st.ok()) return st.error();
      break;
    case FsyncPolicy::kGroupCommit:
      if (monotonic_s() - last_sync_monotonic_s_ >=
          options_.group_commit_interval_s) {
        if (auto st = sync_locked(); !st.ok()) return st.error();
      }
      break;
  }
  return lsn;
}

Status Wal::sync() {
  std::lock_guard lock(mu_);
  return sync_locked();
}

void Wal::compact(std::uint64_t upto_lsn) {
  std::lock_guard lock(mu_);
  // A closed segment's records end at the next segment's first_lsn - 1.
  while (segments_.size() > 1 && segments_[1].first_lsn - 1 <= upto_lsn) {
    ::unlink(segments_.front().path.c_str());
    segments_.erase(segments_.begin());
  }
  if (m_segments_ != nullptr) {
    m_segments_->set(static_cast<double>(segments_.size()));
  }
}

std::uint64_t Wal::last_lsn() const {
  std::lock_guard lock(mu_);
  return next_lsn_ - 1;
}

std::uint64_t Wal::next_lsn() const {
  std::lock_guard lock(mu_);
  return next_lsn_;
}

std::size_t Wal::segment_count() const {
  std::lock_guard lock(mu_);
  return segments_.size();
}

}  // namespace falkon::ha
