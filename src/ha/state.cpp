#include "ha/state.h"

#include <algorithm>

#include "wire/message.h"

namespace falkon::ha {
namespace {

using wire::Reader;
using wire::Writer;

void encode_task_ids(Writer& w, const std::vector<TaskId>& ids) {
  w.put_varint(ids.size());
  for (TaskId id : ids) w.put_u64(id.value);
}

std::vector<TaskId> decode_task_ids(Reader& r) {
  const std::uint64_t n = r.get_varint();
  if (n > r.remaining()) throw wire::CodecError("task id count exceeds buffer");
  std::vector<TaskId> ids;
  ids.reserve(static_cast<std::size_t>(n));
  for (std::uint64_t i = 0; i < n; ++i) ids.push_back(TaskId{r.get_u64()});
  return ids;
}

struct EncodeVisitor {
  Writer& w;

  void operator()(const RecInstanceCreated& r) const {
    w.put_u64(r.instance.value);
    w.put_u64(r.client.value);
  }
  void operator()(const RecInstanceDestroyed& r) const {
    w.put_u64(r.instance.value);
  }
  void operator()(const RecSubmit& r) const {
    w.put_u64(r.instance.value);
    w.put_u64(r.submit_seq);
    w.put_varint(r.tasks.size());
    for (const TaskSpec& spec : r.tasks) wire::encode_task_spec(w, spec);
  }
  void operator()(const RecAssign& r) const {
    w.put_u64(r.executor.value);
    encode_task_ids(w, r.tasks);
  }
  void operator()(const RecRequeue& r) const {
    encode_task_ids(w, r.tasks);
    w.put_bool(r.retry);
  }
  void operator()(const RecComplete& r) const {
    w.put_u64(r.instance.value);
    wire::encode_task_result(w, r.result);
    w.put_bool(r.quarantined);
  }
  void operator()(const RecDelivered& r) const {
    w.put_u64(r.instance.value);
    encode_task_ids(w, r.tasks);
  }
  void operator()(const RecEpoch& r) const { w.put_u64(r.epoch); }
};

LogRecord decode_record_or_throw(Reader& r) {
  const auto type = static_cast<RecType>(r.get_u8());
  switch (type) {
    case RecType::kInstanceCreated: {
      RecInstanceCreated rec;
      rec.instance = InstanceId{r.get_u64()};
      rec.client = ClientId{r.get_u64()};
      return rec;
    }
    case RecType::kInstanceDestroyed: {
      RecInstanceDestroyed rec;
      rec.instance = InstanceId{r.get_u64()};
      return rec;
    }
    case RecType::kSubmit: {
      RecSubmit rec;
      rec.instance = InstanceId{r.get_u64()};
      rec.submit_seq = r.get_u64();
      const std::uint64_t n = r.get_varint();
      if (n > r.remaining()) throw wire::CodecError("task count");
      rec.tasks.reserve(static_cast<std::size_t>(n));
      for (std::uint64_t i = 0; i < n; ++i) {
        rec.tasks.push_back(wire::decode_task_spec(r));
      }
      return rec;
    }
    case RecType::kAssign: {
      RecAssign rec;
      rec.executor = ExecutorId{r.get_u64()};
      rec.tasks = decode_task_ids(r);
      return rec;
    }
    case RecType::kRequeue: {
      RecRequeue rec;
      rec.tasks = decode_task_ids(r);
      rec.retry = r.get_bool();
      return rec;
    }
    case RecType::kComplete: {
      RecComplete rec;
      rec.instance = InstanceId{r.get_u64()};
      rec.result = wire::decode_task_result(r);
      rec.quarantined = r.get_bool();
      return rec;
    }
    case RecType::kDelivered: {
      RecDelivered rec;
      rec.instance = InstanceId{r.get_u64()};
      rec.tasks = decode_task_ids(r);
      return rec;
    }
    case RecType::kEpoch: {
      RecEpoch rec;
      rec.epoch = r.get_u64();
      return rec;
    }
  }
  throw wire::CodecError("unknown record type");
}

}  // namespace

const char* record_type_name(RecType type) {
  switch (type) {
    case RecType::kInstanceCreated: return "InstanceCreated";
    case RecType::kInstanceDestroyed: return "InstanceDestroyed";
    case RecType::kSubmit: return "Submit";
    case RecType::kAssign: return "Assign";
    case RecType::kRequeue: return "Requeue";
    case RecType::kComplete: return "Complete";
    case RecType::kDelivered: return "Delivered";
    case RecType::kEpoch: return "Epoch";
  }
  return "unknown";
}

RecType record_type(const LogRecord& record) {
  return static_cast<RecType>(record.index());
}

std::string record_summary(const LogRecord& record) {
  struct Visitor {
    std::string operator()(const RecInstanceCreated& r) const {
      return "InstanceCreated{instance=" + r.instance.str() +
             ", client=" + r.client.str() + "}";
    }
    std::string operator()(const RecInstanceDestroyed& r) const {
      return "InstanceDestroyed{instance=" + r.instance.str() + "}";
    }
    std::string operator()(const RecSubmit& r) const {
      return "Submit{instance=" + r.instance.str() +
             ", seq=" + std::to_string(r.submit_seq) +
             ", tasks=" + std::to_string(r.tasks.size()) + "}";
    }
    std::string operator()(const RecAssign& r) const {
      return "Assign{executor=" + r.executor.str() +
             ", tasks=" + std::to_string(r.tasks.size()) + "}";
    }
    std::string operator()(const RecRequeue& r) const {
      return std::string("Requeue{tasks=") + std::to_string(r.tasks.size()) +
             ", retry=" + (r.retry ? "true" : "false") + "}";
    }
    std::string operator()(const RecComplete& r) const {
      return "Complete{instance=" + r.instance.str() +
             ", task=" + r.result.task_id.str() +
             ", state=" + task_state_name(r.result.state) +
             ", exit=" + std::to_string(r.result.exit_code) +
             (r.quarantined ? ", quarantined" : "") + "}";
    }
    std::string operator()(const RecDelivered& r) const {
      return "Delivered{instance=" + r.instance.str() +
             ", tasks=" + std::to_string(r.tasks.size()) + "}";
    }
    std::string operator()(const RecEpoch& r) const {
      return "Epoch{epoch=" + std::to_string(r.epoch) + "}";
    }
  };
  return std::visit(Visitor{}, record);
}

std::vector<std::uint8_t> encode_record(const LogRecord& record) {
  Writer w;
  w.put_u8(static_cast<std::uint8_t>(record.index()));
  std::visit(EncodeVisitor{w}, record);
  return w.take();
}

void encode_record(const LogRecord& record, Writer& w) {
  w.clear();
  w.put_u8(static_cast<std::uint8_t>(record.index()));
  std::visit(EncodeVisitor{w}, record);
}

Result<LogRecord> decode_record(const std::uint8_t* data, std::size_t size) {
  try {
    Reader r(data, size);
    LogRecord record = decode_record_or_throw(r);
    if (!r.at_end()) throw wire::CodecError("trailing bytes");
    return record;
  } catch (const wire::CodecError& e) {
    return make_error(ErrorCode::kProtocolError,
                      std::string("log record: ") + e.what());
  }
}

std::vector<std::uint8_t> encode_image(const core::DispatcherImage& image) {
  Writer w;
  w.put_u64(image.epoch);
  w.put_u64(image.next_instance_id);
  w.put_u64(image.submitted);
  w.put_u64(image.completed);
  w.put_u64(image.failed);
  w.put_u64(image.retried);
  w.put_u64(image.quarantined);
  w.put_varint(image.instances.size());
  for (const core::InstanceImage& inst : image.instances) {
    w.put_u64(inst.id.value);
    w.put_u64(inst.client.value);
    w.put_u64(inst.last_submit_seq);
    w.put_varint(inst.mailbox.size());
    for (const TaskResult& result : inst.mailbox) {
      wire::encode_task_result(w, result);
    }
  }
  w.put_varint(image.queue.size());
  for (const core::QueuedTaskImage& task : image.queue) {
    w.put_u64(task.instance.value);
    w.put_u32(static_cast<std::uint32_t>(task.attempts));
    wire::encode_task_spec(w, task.spec);
  }
  return w.take();
}

Result<core::DispatcherImage> decode_image(const std::uint8_t* data,
                                           std::size_t size) {
  try {
    Reader r(data, size);
    core::DispatcherImage image;
    image.epoch = r.get_u64();
    image.next_instance_id = r.get_u64();
    image.submitted = r.get_u64();
    image.completed = r.get_u64();
    image.failed = r.get_u64();
    image.retried = r.get_u64();
    image.quarantined = r.get_u64();
    const std::uint64_t n_instances = r.get_varint();
    if (n_instances > r.remaining()) throw wire::CodecError("instance count");
    image.instances.reserve(static_cast<std::size_t>(n_instances));
    for (std::uint64_t i = 0; i < n_instances; ++i) {
      core::InstanceImage inst;
      inst.id = InstanceId{r.get_u64()};
      inst.client = ClientId{r.get_u64()};
      inst.last_submit_seq = r.get_u64();
      const std::uint64_t n_mail = r.get_varint();
      if (n_mail > r.remaining()) throw wire::CodecError("mailbox count");
      inst.mailbox.reserve(static_cast<std::size_t>(n_mail));
      for (std::uint64_t k = 0; k < n_mail; ++k) {
        inst.mailbox.push_back(wire::decode_task_result(r));
      }
      image.instances.push_back(std::move(inst));
    }
    const std::uint64_t n_queue = r.get_varint();
    if (n_queue > r.remaining()) throw wire::CodecError("queue count");
    image.queue.reserve(static_cast<std::size_t>(n_queue));
    for (std::uint64_t i = 0; i < n_queue; ++i) {
      core::QueuedTaskImage task;
      task.instance = InstanceId{r.get_u64()};
      task.attempts = static_cast<int>(r.get_u32());
      task.spec = wire::decode_task_spec(r);
      image.queue.push_back(std::move(task));
    }
    if (!r.at_end()) throw wire::CodecError("trailing bytes");
    return image;
  } catch (const wire::CodecError& e) {
    return make_error(ErrorCode::kProtocolError,
                      std::string("state image: ") + e.what());
  }
}

bool images_equal(const core::DispatcherImage& a,
                  const core::DispatcherImage& b) {
  // Canonical encodings compare byte-for-byte; both producers (StateMachine
  // and snapshot load/store) emit canonical order.
  return encode_image(a) == encode_image(b);
}

// ------------------------------------------------------------ StateMachine

void StateMachine::reset() {
  instances_.clear();
  tasks_.clear();
  order_counter_ = 0;
  next_instance_id_ = 0;
  epoch_ = 0;
  submitted_ = completed_ = failed_ = retried_ = quarantined_ = 0;
}

void StateMachine::reset(const core::DispatcherImage& image) {
  reset();
  epoch_ = image.epoch;
  next_instance_id_ = image.next_instance_id;
  submitted_ = image.submitted;
  completed_ = image.completed;
  failed_ = image.failed;
  retried_ = image.retried;
  quarantined_ = image.quarantined;
  for (const core::InstanceImage& inst : image.instances) {
    InstanceState& state = instances_[inst.id.value];
    state.client = inst.client;
    state.last_submit_seq = inst.last_submit_seq;
    for (const TaskResult& result : inst.mailbox) {
      state.mailbox[result.task_id.value] = result;
    }
  }
  for (const core::QueuedTaskImage& task : image.queue) {
    const std::uint64_t id = task.spec.id.value;
    tasks_[id] =
        TaskState{task.instance, task.spec, task.attempts, false,
                  order_counter_++};
  }
}

void StateMachine::apply(const LogRecord& record) {
  struct Visitor {
    StateMachine& sm;

    void operator()(const RecInstanceCreated& r) {
      InstanceState& state = sm.instances_[r.instance.value];
      state.client = r.client;
      sm.next_instance_id_ =
          std::max(sm.next_instance_id_, r.instance.value);
    }
    void operator()(const RecInstanceDestroyed& r) {
      sm.instances_.erase(r.instance.value);
      for (auto it = sm.tasks_.begin(); it != sm.tasks_.end();) {
        if (it->second.instance == r.instance) {
          it = sm.tasks_.erase(it);
        } else {
          ++it;
        }
      }
    }
    void operator()(const RecSubmit& r) {
      auto it = sm.instances_.find(r.instance.value);
      if (it == sm.instances_.end()) return;  // destroyed since
      if (r.submit_seq != 0) {
        it->second.last_submit_seq =
            std::max(it->second.last_submit_seq, r.submit_seq);
      }
      sm.submitted_ += r.tasks.size();
      for (const TaskSpec& spec : r.tasks) {
        sm.tasks_[spec.id.value] =
            TaskState{r.instance, spec, 0, false, sm.order_counter_++};
      }
    }
    void operator()(const RecAssign& r) {
      for (TaskId id : r.tasks) {
        auto it = sm.tasks_.find(id.value);
        if (it != sm.tasks_.end()) it->second.assigned = true;
      }
    }
    void operator()(const RecRequeue& r) {
      for (TaskId id : r.tasks) {
        auto it = sm.tasks_.find(id.value);
        if (it == sm.tasks_.end()) continue;
        it->second.assigned = false;
        it->second.order = sm.order_counter_++;
        if (r.retry) {
          it->second.attempts += 1;
          sm.retried_ += 1;
        }
      }
    }
    void operator()(const RecComplete& r) {
      if (r.quarantined) {
        sm.failed_ += 1;
        sm.quarantined_ += 1;
      } else if (r.result.success()) {
        sm.completed_ += 1;
      } else {
        sm.failed_ += 1;
      }
      sm.tasks_.erase(r.result.task_id.value);
      auto it = sm.instances_.find(r.instance.value);
      if (it != sm.instances_.end()) {
        it->second.mailbox[r.result.task_id.value] = r.result;
      }
    }
    void operator()(const RecDelivered& r) {
      auto it = sm.instances_.find(r.instance.value);
      if (it == sm.instances_.end()) return;
      for (TaskId id : r.tasks) it->second.mailbox.erase(id.value);
    }
    void operator()(const RecEpoch& r) {
      sm.epoch_ = std::max(sm.epoch_, r.epoch);
    }
  };
  std::visit(Visitor{*this}, record);
}

void StateMachine::apply(LogRecord&& record) {
  if (auto* submit = std::get_if<RecSubmit>(&record)) {
    auto it = instances_.find(submit->instance.value);
    if (it == instances_.end()) return;  // destroyed since
    if (submit->submit_seq != 0) {
      it->second.last_submit_seq =
          std::max(it->second.last_submit_seq, submit->submit_seq);
    }
    submitted_ += submit->tasks.size();
    for (TaskSpec& spec : submit->tasks) {
      const std::uint64_t id = spec.id.value;
      tasks_[id] = TaskState{submit->instance, std::move(spec), 0, false,
                             order_counter_++};
    }
    return;
  }
  if (auto* complete = std::get_if<RecComplete>(&record)) {
    if (complete->quarantined) {
      failed_ += 1;
      quarantined_ += 1;
    } else if (complete->result.success()) {
      completed_ += 1;
    } else {
      failed_ += 1;
    }
    tasks_.erase(complete->result.task_id.value);
    auto it = instances_.find(complete->instance.value);
    if (it != instances_.end()) {
      const std::uint64_t id = complete->result.task_id.value;
      it->second.mailbox[id] = std::move(complete->result);
    }
    return;
  }
  apply(static_cast<const LogRecord&>(record));
}

std::size_t StateMachine::live_size() const {
  std::size_t size = tasks_.size() + instances_.size();
  for (const auto& [id, instance] : instances_) {
    size += instance.mailbox.size();
  }
  return size;
}

core::DispatcherImage StateMachine::image() const {
  core::DispatcherImage image;
  image.epoch = epoch_;
  image.next_instance_id = next_instance_id_;
  image.submitted = submitted_;
  image.completed = completed_;
  image.failed = failed_;
  image.retried = retried_;
  image.quarantined = quarantined_;
  image.instances.reserve(instances_.size());
  for (const auto& [id, state] : instances_) {
    core::InstanceImage inst;
    inst.id = InstanceId{id};
    inst.client = state.client;
    inst.last_submit_seq = state.last_submit_seq;
    inst.mailbox.reserve(state.mailbox.size());
    for (const auto& [task_id, result] : state.mailbox) {
      inst.mailbox.push_back(result);
    }
    image.instances.push_back(std::move(inst));
  }
  std::vector<const TaskState*> ordered;
  ordered.reserve(tasks_.size());
  for (const auto& [id, task] : tasks_) ordered.push_back(&task);
  std::sort(ordered.begin(), ordered.end(),
            [](const TaskState* a, const TaskState* b) {
              return a->order < b->order;
            });
  image.queue.reserve(ordered.size());
  for (const TaskState* task : ordered) {
    image.queue.push_back(
        core::QueuedTaskImage{task->instance, task->spec, task->attempts});
  }
  return image;
}

}  // namespace falkon::ha
