#include "fault/fault.h"

#include <string>

namespace falkon::fault {

const char* site_name(Site site) {
  switch (site) {
    case Site::kRpcConnect: return "rpc_connect";
    case Site::kRpcRequest: return "rpc_request";
    case Site::kRpcReply: return "rpc_reply";
    case Site::kPushFrame: return "push_frame";
    case Site::kExecutorTask: return "executor_task";
    case Site::kDispatcherNotify: return "dispatcher_notify";
    case Site::kDispatcherAck: return "dispatcher_ack";
    case Site::kLrmAllocate: return "lrm_allocate";
    case Site::kLrmPreempt: return "lrm_preempt";
  }
  return "unknown";
}

const char* action_name(Action action) {
  switch (action) {
    case Action::kNone: return "none";
    case Action::kDrop: return "drop";
    case Action::kTruncate: return "truncate";
    case Action::kCorrupt: return "corrupt";
    case Action::kDelay: return "delay";
    case Action::kCrash: return "crash";
    case Action::kHang: return "hang";
    case Action::kSlow: return "slow";
    case Action::kReject: return "reject";
    case Action::kPreempt: return "preempt";
  }
  return "unknown";
}

FaultInjector::FaultInjector(FaultPlan plan, obs::Obs* obs) {
  for (std::size_t i = 0; i < kSiteCount; ++i) {
    SiteState& state = sites_[i];
    // Distinct stream per site: SplitMix64 diffuses any seed difference,
    // a multiplied site index keeps the streams far apart even for
    // adjacent plan seeds.
    state.rng = Rng(plan.seed ^ (0x51ed2701a41c5e37ULL * (i + 1)));
    if (obs != nullptr) {
      state.m_injected = &obs->registry().counter(
          std::string("falkon.fault.injected.") +
          site_name(static_cast<Site>(i)));
    }
  }
  for (const auto& rule : plan.rules) {
    sites_[static_cast<std::size_t>(rule.site)].rules.push_back(rule);
  }
  for (const auto& event : plan.script) {
    sites_[static_cast<std::size_t>(event.site)].script.push_back(event);
  }
}

Outcome FaultInjector::sample(Site site) {
  SiteState& state = sites_[static_cast<std::size_t>(site)];
  std::lock_guard lock(state.mu);
  const std::uint64_t op = ++state.ops;
  Outcome outcome;
  for (const auto& event : state.script) {
    if (event.at_op == op) {
      outcome = Outcome{event.action, event.param};
      break;
    }
  }
  // Always draw, even when a scripted event overrides or no rule fires:
  // the stream advances exactly once per operation, so the schedule at
  // this site depends only on the operation index.
  const double draw = state.rng.next_double();
  if (!outcome) {
    double threshold = 0.0;
    for (const auto& rule : state.rules) {
      threshold += rule.probability;
      if (draw < threshold) {
        outcome = Outcome{rule.action, rule.param};
        break;
      }
    }
  }
  if (outcome) {
    ++state.injected;
    if (state.m_injected) state.m_injected->inc();
  }
  return outcome;
}

SiteStats FaultInjector::stats(Site site) const {
  const SiteState& state = sites_[static_cast<std::size_t>(site)];
  std::lock_guard lock(state.mu);
  return SiteStats{state.ops, state.injected};
}

std::uint64_t FaultInjector::total_injected() const {
  std::uint64_t total = 0;
  for (const auto& state : sites_) {
    std::lock_guard lock(state.mu);
    total += state.injected;
  }
  return total;
}

}  // namespace falkon::fault
