#include "fault/fault.h"

#include <algorithm>
#include <string>

namespace falkon::fault {

const char* site_name(Site site) {
  switch (site) {
    case Site::kRpcConnect: return "rpc_connect";
    case Site::kRpcRequest: return "rpc_request";
    case Site::kRpcReply: return "rpc_reply";
    case Site::kPushFrame: return "push_frame";
    case Site::kExecutorTask: return "executor_task";
    case Site::kDispatcherNotify: return "dispatcher_notify";
    case Site::kDispatcherAck: return "dispatcher_ack";
    case Site::kLrmAllocate: return "lrm_allocate";
    case Site::kLrmPreempt: return "lrm_preempt";
    case Site::kHaPrimary: return "ha_primary";
    case Site::kHaElection: return "ha_election";
  }
  return "unknown";
}

const char* action_name(Action action) {
  switch (action) {
    case Action::kNone: return "none";
    case Action::kDrop: return "drop";
    case Action::kTruncate: return "truncate";
    case Action::kCorrupt: return "corrupt";
    case Action::kDelay: return "delay";
    case Action::kCrash: return "crash";
    case Action::kHang: return "hang";
    case Action::kSlow: return "slow";
    case Action::kReject: return "reject";
    case Action::kPreempt: return "preempt";
  }
  return "unknown";
}

std::string describe(const FaultPlan& plan) {
  std::string out = "FaultPlan{seed=" + std::to_string(plan.seed);
  for (const auto& rule : plan.rules) {
    out += ", " + std::string(site_name(rule.site)) + ":" +
           action_name(rule.action) + " p=" + std::to_string(rule.probability);
    if (rule.param != 0.0) out += " param=" + std::to_string(rule.param);
  }
  for (const auto& event : plan.script) {
    out += ", " + std::string(site_name(event.site)) + ":" +
           action_name(event.action) + " @op " + std::to_string(event.at_op);
    if (event.param != 0.0) out += " param=" + std::to_string(event.param);
  }
  return out + "}";
}

FaultPlan random_plan(std::uint64_t seed, double intensity) {
  FaultPlan plan;
  plan.seed = seed;
  if (intensity <= 0.0) return plan;
  const double level = std::min(intensity, 1.0);
  // Independent stream from the injector's own site streams so a plan and
  // its execution never share draws.
  Rng rng(seed ^ 0xa076'1d64'78bd'642fULL);

  // The recoverable menu: each candidate's probability ceiling is chosen so
  // the recovery machinery (replay timeout, heartbeat detector, renotify
  // sweep, link retries) converges. Params are real-time-safe (the TCP
  // backend runs these against a RealClock).
  struct Candidate {
    Site site;
    Action action;
    double max_probability;
    double max_param;
  };
  static constexpr Candidate kMenu[] = {
      {Site::kRpcConnect, Action::kDrop, 0.10, 0.0},
      {Site::kRpcRequest, Action::kDrop, 0.02, 0.0},
      {Site::kRpcRequest, Action::kCorrupt, 0.02, 0.0},
      {Site::kRpcReply, Action::kDrop, 0.01, 0.0},
      {Site::kPushFrame, Action::kDrop, 0.10, 0.0},
      {Site::kExecutorTask, Action::kCrash, 0.01, 0.0},
      {Site::kExecutorTask, Action::kHang, 0.005, 0.15},
      {Site::kExecutorTask, Action::kSlow, 0.03, 0.02},
      {Site::kDispatcherNotify, Action::kDrop, 0.03, 0.0},
      {Site::kDispatcherAck, Action::kDrop, 0.02, 0.0},
  };
  for (const Candidate& candidate : kMenu) {
    // Roughly half the menu at full intensity, scaled down with it.
    if (!rng.bernoulli(0.55 * level)) continue;
    const double probability =
        candidate.max_probability * level * rng.uniform(0.25, 1.0);
    const double param =
        candidate.max_param > 0 ? candidate.max_param * rng.uniform(0.2, 1.0)
                                : 0.0;
    plan.rules.push_back(
        FaultRule{candidate.site, candidate.action, probability, param});
  }
  return plan;
}

FaultInjector::FaultInjector(FaultPlan plan, obs::Obs* obs) {
  for (std::size_t i = 0; i < kSiteCount; ++i) {
    SiteState& state = sites_[i];
    // Distinct stream per site: SplitMix64 diffuses any seed difference,
    // a multiplied site index keeps the streams far apart even for
    // adjacent plan seeds.
    state.rng = Rng(plan.seed ^ (0x51ed2701a41c5e37ULL * (i + 1)));
    if (obs != nullptr) {
      state.m_injected = &obs->registry().counter(
          std::string("falkon.fault.injected.") +
          site_name(static_cast<Site>(i)));
    }
  }
  for (const auto& rule : plan.rules) {
    sites_[static_cast<std::size_t>(rule.site)].rules.push_back(rule);
  }
  for (const auto& event : plan.script) {
    sites_[static_cast<std::size_t>(event.site)].script.push_back(event);
  }
}

Outcome FaultInjector::sample(Site site) {
  SiteState& state = sites_[static_cast<std::size_t>(site)];
  std::lock_guard lock(state.mu);
  const std::uint64_t op = ++state.ops;
  Outcome outcome;
  for (const auto& event : state.script) {
    if (event.at_op == op) {
      outcome = Outcome{event.action, event.param};
      break;
    }
  }
  // Always draw, even when a scripted event overrides or no rule fires:
  // the stream advances exactly once per operation, so the schedule at
  // this site depends only on the operation index.
  const double draw = state.rng.next_double();
  if (!outcome) {
    double threshold = 0.0;
    for (const auto& rule : state.rules) {
      threshold += rule.probability;
      if (draw < threshold) {
        outcome = Outcome{rule.action, rule.param};
        break;
      }
    }
  }
  if (outcome) {
    ++state.injected;
    if (state.m_injected) state.m_injected->inc();
  }
  return outcome;
}

SiteStats FaultInjector::stats(Site site) const {
  const SiteState& state = sites_[static_cast<std::size_t>(site)];
  std::lock_guard lock(state.mu);
  return SiteStats{state.ops, state.injected};
}

std::uint64_t FaultInjector::total_injected() const {
  std::uint64_t total = 0;
  for (const auto& state : sites_) {
    std::lock_guard lock(state.mu);
    total += state.injected;
  }
  return total;
}

}  // namespace falkon::fault
