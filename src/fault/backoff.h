// Exponential backoff with jitter.
//
// Recovery paths (RPC reconnect, executor re-registration, result
// redelivery) must not hammer a struggling dispatcher in lock-step — the
// classic retry-storm failure. Delays grow geometrically and each is
// jittered by a seeded Rng so a fleet of executors that died together
// spreads its retries out, deterministically under a fixed seed.
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/rng.h"

namespace falkon::fault {

struct BackoffConfig {
  double base_s{0.05};     // first delay
  double max_s{2.0};       // cap on any delay
  double multiplier{2.0};  // geometric growth per attempt
  /// Fractional jitter: each delay is drawn uniformly from
  /// [d * (1 - jitter), d * (1 + jitter)], clamped to max_s.
  double jitter{0.25};
};

class Backoff {
 public:
  explicit Backoff(BackoffConfig config = {}, std::uint64_t seed = 1)
      : config_(config), rng_(seed) {}

  /// Delay before the next retry; grows with each call until reset().
  double next_s() {
    double delay = config_.base_s;
    for (int i = 0; i < attempt_; ++i) delay *= config_.multiplier;
    delay = std::min(delay, config_.max_s);
    ++attempt_;
    if (config_.jitter > 0.0) {
      delay *= rng_.uniform(1.0 - config_.jitter, 1.0 + config_.jitter);
      delay = std::min(delay, config_.max_s);
    }
    return std::max(delay, 0.0);
  }

  /// Call after a successful attempt so the next failure starts small.
  void reset() { attempt_ = 0; }

  [[nodiscard]] int attempt() const { return attempt_; }

 private:
  BackoffConfig config_;
  Rng rng_;
  int attempt_{0};
};

}  // namespace falkon::fault
