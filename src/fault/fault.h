// Deterministic, seeded fault injection.
//
// The paper's companion reliability work (Zhao et al., "Realizing Fast,
// Scalable and Reliable Scientific Computations in Grid Environments")
// shows Falkon deployments survive worker churn only because the stack
// retries failed tasks and replaces dead workers. To test that machinery
// we need to *provoke* failures on demand, reproducibly: a FaultPlan is a
// seed plus probabilistic rules and scripted one-shot events, and a
// FaultInjector turns it into per-site decisions.
//
// Determinism: every Site owns an independent SplitMix64 stream seeded
// from (plan.seed, site), and decisions depend only on the site's own
// operation counter — so the Nth operation at a site draws the same
// outcome no matter how threads interleave across sites. The DES consumes
// the streams single-threaded and is bit-reproducible; the threaded stack
// gets a reproducible fault *schedule* per site and asserts invariants.
//
// Hooks follow the obs::Obs* discipline: every config takes a nullable
// `fault::FaultInjector*`, and a null pointer costs one predicted branch
// per hook (zero-cost production path).
#pragma once

#include <array>
#include <cstdint>
#include <mutex>
#include <vector>

#include "common/rng.h"
#include "obs/obs.h"

namespace falkon::fault {

/// Where a fault can strike. One entry per hook point in the stack.
enum class Site : std::uint8_t {
  kRpcConnect = 0,    // client connection establishment
  kRpcRequest,        // request frame leaving an RPC client
  kRpcReply,          // reply frame leaving the RPC server
  kPushFrame,         // notification frame on the push channel
  kExecutorTask,      // executor about to run a task
  kDispatcherNotify,  // dispatcher scheduling a notification
  kDispatcherAck,     // dispatcher ingesting delivered results
  kLrmAllocate,       // GRAM allocation request
  kLrmPreempt,        // running LRM job, sampled once per scheduling cycle
  kHaPrimary,         // primary dispatcher liveness, sampled by HA harnesses
                      // once per chaos round (kCrash = kill the primary);
                      // never drawn by random_plan — only scripted/explicit
                      // plans schedule a takeover
  kHaElection,        // one election ping leaving a standby (kDrop = the
                      // peer looks dead this round); never drawn by
                      // random_plan — scripted plans partition elections
};
inline constexpr std::size_t kSiteCount = 11;

[[nodiscard]] const char* site_name(Site site);

/// What happens when a fault strikes. Not every action is meaningful at
/// every site; hooks ignore actions they cannot express.
enum class Action : std::uint8_t {
  kNone = 0,
  kDrop,      // lose the message / refuse the connection
  kTruncate,  // cut the frame short mid-payload, then sever
  kCorrupt,   // flip payload bytes (length prefix kept intact)
  kDelay,     // add `param` seconds of latency
  kCrash,     // executor dies mid-task without deregistering
  kHang,      // executor stalls `param` seconds mid-task (heartbeats live)
  kSlow,      // slow node: `param` extra seconds on this task
  kReject,    // LRM refuses the allocation request
  kPreempt,   // LRM preempts the running job's nodes
};

[[nodiscard]] const char* action_name(Action action);

/// Probabilistic rule: each operation at `site` suffers `action` with
/// `probability`, independently.
struct FaultRule {
  Site site{Site::kRpcConnect};
  Action action{Action::kNone};
  double probability{0.0};
  double param{0.0};
};

/// Scripted one-shot: exactly the `at_op`-th operation (1-based) at `site`
/// suffers `action`. Scripted events take precedence over rules.
struct ScriptedFault {
  Site site{Site::kRpcConnect};
  Action action{Action::kNone};
  std::uint64_t at_op{1};
  double param{0.0};
};

/// A reproducible chaos schedule: seed + rules + script. Value type; build
/// one, hand it to a FaultInjector, reuse it for a bit-identical rerun.
struct FaultPlan {
  std::uint64_t seed{1};
  std::vector<FaultRule> rules;
  std::vector<ScriptedFault> script;

  FaultPlan& with(Site site, Action action, double probability,
                  double param = 0.0) {
    rules.push_back(FaultRule{site, action, probability, param});
    return *this;
  }
  FaultPlan& at(Site site, Action action, std::uint64_t nth_op,
                double param = 0.0) {
    script.push_back(ScriptedFault{site, action, nth_op, param});
    return *this;
  }
};

/// One line per rule/scripted event, for counterexample dumps and logs.
[[nodiscard]] std::string describe(const FaultPlan& plan);

/// Draw a reproducible chaos schedule from a single seed (the testkit's
/// workload generator uses this to give every generated workload its own
/// fault plan). `intensity` in [0, 1] scales both how many rules are drawn
/// and their probabilities; 0 yields an empty plan.
///
/// Every drawn rule is *recoverable*: probabilities and delay/hang params
/// are bounded so a stack with replay + heartbeat recovery enabled (and a
/// generous retry budget) still drives every task to completion — which is
/// what lets conformance runs demand "all tasks complete" even under
/// faults. Sites that only make sense against real transports (connect /
/// request / reply / push faults) are included; the DES simply never
/// samples them.
[[nodiscard]] FaultPlan random_plan(std::uint64_t seed, double intensity);

/// The decision for one operation. Contextually convertible to bool:
/// true when a fault should be injected.
struct Outcome {
  Action action{Action::kNone};
  double param{0.0};
  explicit operator bool() const { return action != Action::kNone; }
};

struct SiteStats {
  std::uint64_t ops{0};
  std::uint64_t injected{0};
};

/// Thread-safe decision engine over a FaultPlan. Each site is independent:
/// its own mutex, own RNG stream, own operation counter — sampling one
/// site never perturbs another, which is what makes the schedule stable
/// under thread interleaving.
class FaultInjector {
 public:
  /// `obs` (optional) receives falkon.fault.injected.<site> counters.
  explicit FaultInjector(FaultPlan plan, obs::Obs* obs = nullptr);

  FaultInjector(const FaultInjector&) = delete;
  FaultInjector& operator=(const FaultInjector&) = delete;

  /// Record one operation at `site` and decide its fate.
  Outcome sample(Site site);

  [[nodiscard]] SiteStats stats(Site site) const;
  [[nodiscard]] std::uint64_t total_injected() const;

 private:
  struct SiteState {
    mutable std::mutex mu;
    Rng rng{1};
    std::uint64_t ops{0};
    std::uint64_t injected{0};
    std::vector<FaultRule> rules;
    std::vector<ScriptedFault> script;
    obs::Counter* m_injected{nullptr};
  };

  std::array<SiteState, kSiteCount> sites_;
};

}  // namespace falkon::fault
