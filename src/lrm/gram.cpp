#include "lrm/gram.h"

#include <algorithm>

namespace falkon::lrm {

const char* gram_job_state_name(GramJobState state) {
  switch (state) {
    case GramJobState::kPending: return "PENDING";
    case GramJobState::kActive: return "ACTIVE";
    case GramJobState::kDone: return "DONE";
    case GramJobState::kFailed: return "FAILED";
  }
  return "UNKNOWN";
}

Gram4Gateway::Gram4Gateway(Clock& clock, BatchScheduler& scheduler,
                           GramConfig config)
    : clock_(clock), scheduler_(scheduler), config_(config) {}

Result<JobId> Gram4Gateway::submit(JobSpec spec, GramStateCallback on_state) {
  std::vector<JobSpec> specs;
  specs.push_back(std::move(spec));
  auto ids = submit_batch(std::move(specs), std::move(on_state));
  if (!ids.ok()) return ids.error();
  return ids.value().front();
}

Result<std::vector<JobId>> Gram4Gateway::submit_batch(
    std::vector<JobSpec> specs, GramStateCallback on_state) {
  if (specs.empty()) {
    return make_error(ErrorCode::kInvalidArgument, "empty GRAM batch");
  }
  if (config_.fault != nullptr) {
    const fault::Outcome outcome =
        config_.fault->sample(fault::Site::kLrmAllocate);
    if (outcome.action == fault::Action::kReject) {
      // The LRM turned the request away (quota, down queue, maintenance);
      // the provisioner is expected to retry on a later poll cycle.
      return make_error(ErrorCode::kUnavailable,
                        "injected allocation rejection");
    }
  }
  std::lock_guard lock(mu_);
  const double now = clock_.now_s();
  // Requests serialise on the gateway: each takes request_overhead_s of
  // gateway time, starting when the previous request finished. A batch is
  // one request.
  gateway_free_s_ = std::max(gateway_free_s_, now) + config_.request_overhead_s;

  std::vector<JobId> ids;
  ids.reserve(specs.size());
  for (auto& spec : specs) {
    PendingRequest request;
    request.gram_id = gram_ids_.next();
    request.spec = std::move(spec);
    request.on_state = on_state;
    request.ready_s = gateway_free_s_;
    ids.push_back(request.gram_id);
    if (request.on_state) {
      request.on_state(request.gram_id, GramJobState::kPending);
    }
    pending_.push_back(std::move(request));
  }
  return ids;
}

void Gram4Gateway::step() {
  std::vector<PendingRequest> due;
  {
    std::lock_guard lock(mu_);
    const double now = clock_.now_s();
    while (!pending_.empty() && pending_.front().ready_s <= now) {
      due.push_back(std::move(pending_.front()));
      pending_.pop_front();
    }
  }
  for (auto& request : due) {
    JobSpec spec = std::move(request.spec);
    const JobId gram_id = request.gram_id;
    GramStateCallback on_state = std::move(request.on_state);
    const double delay = config_.notification_delay_s;
    (void)delay;  // notifications are delivered by the LRM callbacks below

    if (on_state) {
      auto user_on_start = spec.on_start;
      spec.on_start = [on_state, gram_id, user_on_start](const JobContext& ctx) {
        on_state(gram_id, GramJobState::kActive);
        if (user_on_start) user_on_start(ctx);
      };
      auto user_on_done = spec.on_done;
      spec.on_done = [on_state, gram_id, user_on_done](JobId lrm_id, bool killed) {
        on_state(gram_id, killed ? GramJobState::kFailed : GramJobState::kDone);
        if (user_on_done) user_on_done(lrm_id, killed);
      };
    }

    auto submitted = scheduler_.submit(std::move(spec));
    std::lock_guard lock(mu_);
    ++requests_issued_;
    if (submitted.ok()) {
      lrm_job_of_[gram_id] = submitted.value();
    } else if (on_state) {
      on_state(gram_id, GramJobState::kFailed);
    }
  }
}

std::optional<double> Gram4Gateway::next_event_time() const {
  std::lock_guard lock(mu_);
  if (pending_.empty()) return std::nullopt;
  return pending_.front().ready_s;
}

int Gram4Gateway::pending_requests() const {
  std::lock_guard lock(mu_);
  return static_cast<int>(pending_.size());
}

std::uint64_t Gram4Gateway::requests_issued() const {
  std::lock_guard lock(mu_);
  return requests_issued_;
}

}  // namespace falkon::lrm
