// Batch-scheduler (LRM) substrate.
//
// Models the heavyweight local resource managers the paper compares against
// and provisions through (PBS v2.1.8, Condor v6.7.2/v6.9.3): a FIFO job
// queue served by a periodic scheduling cycle (the paper observed a ~60 s
// PBS polling loop), per-job dispatch and cleanup overheads, walltime
// enforcement, and node accounting. The overheads are the whole point: they
// are what makes per-task LRM submission slow (0.45-0.49 tasks/sec) and what
// Falkon's multi-level scheduling amortises away.
//
// The scheduler is clock-driven: all state transitions happen in step(),
// which processes everything due at clock.now_s(). Tests drive it with a
// ManualClock; the real deployment drives it with a background thread.
#pragma once

#include <atomic>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "common/ids.h"
#include "common/result.h"
#include "common/rng.h"
#include "fault/fault.h"

namespace falkon::lrm {

struct LrmConfig {
  std::string name{"pbs"};

  /// Scheduling-cycle period: queued jobs are only examined on cycle
  /// boundaries, quantising start times (paper section 4.6 attributes
  /// 5-65 s allocation latency to the PBS polling loop).
  double poll_interval_s{60.0};

  /// Delay between submit() and the job being visible to the scheduler
  /// (queue ingestion, validation, accounting).
  double submit_overhead_s{1.0};

  /// Per-job prolog on the allocated nodes (stage-in, start daemons).
  double dispatch_overhead_s{1.0};

  /// Per-job epilog before nodes become free for the next job.
  double cleanup_overhead_s{1.0};

  /// Uniform jitter added to dispatch overhead, modelling daemon wakeup
  /// skew across nodes.
  double start_jitter_s{0.0};

  /// Cap on jobs one scheduling cycle may start (many LRMs throttle
  /// concurrent submissions per user; 0 = unlimited).
  int max_starts_per_cycle{0};

  /// Fault injection (node preemption at Site::kLrmPreempt, sampled once
  /// per running job per step); nullptr in production.
  fault::FaultInjector* fault{nullptr};
};

/// Paper-calibrated presets. Throughputs: PBS 0.45 tasks/s, Condor v6.7.2
/// 0.49 tasks/s (measured, Table 2), Condor v6.9.3 11 tasks/s (derived,
/// 0.0909 s/task). For the two production systems the measured 100-task
/// batches took 224 s / 203 s on 64 nodes, i.e. the bottleneck was the
/// serial per-job overhead stream, which the presets encode.
[[nodiscard]] LrmConfig pbs_v218_profile();
[[nodiscard]] LrmConfig condor_v672_profile();
[[nodiscard]] LrmConfig condor_v693_profile();

enum class JobState : std::uint8_t {
  kQueued = 0,
  kStarting,    // nodes assigned, prolog running
  kRunning,     // user payload active
  kCompleting,  // epilog running, nodes still held
  kDone,
  kCancelled,
};

[[nodiscard]] const char* job_state_name(JobState state);

struct JobContext {
  JobId job_id;
  std::vector<NodeId> nodes;
  double start_time_s{0.0};
};

struct JobSpec {
  int nodes{1};
  /// Maximum runtime; job is killed at start+walltime if still running.
  /// <= 0 disables enforcement.
  double walltime_s{0.0};
  /// If >= 0 the job self-completes after this long (modeled payload).
  /// If < 0 the job runs until complete(job_id) is called (payload is
  /// external, e.g. Falkon executors that release themselves).
  double run_time_s{-1.0};
  /// Invoked (without the scheduler lock) when the job enters kRunning.
  std::function<void(const JobContext&)> on_start;
  /// Invoked (without the scheduler lock) when the job reaches kDone or
  /// kCancelled; `killed` is true for walltime kills and cancels.
  std::function<void(JobId, bool killed)> on_done;
};

struct JobTimes {
  double submit_s{0.0};
  double eligible_s{0.0};  // after submit overhead
  double start_s{-1.0};    // entered kStarting (nodes assigned)
  double active_s{-1.0};   // entered kRunning (payload started)
  double end_s{-1.0};      // payload finished / killed
  double done_s{-1.0};     // nodes released
};

struct LrmStats {
  std::uint64_t submitted{0};
  std::uint64_t started{0};
  std::uint64_t completed{0};
  std::uint64_t killed{0};
  std::uint64_t cancelled{0};
  double node_seconds_allocated{0.0};  // start_s .. done_s, per node
  double node_seconds_payload{0.0};    // active_s .. end_s, per node
};

class BatchScheduler {
 public:
  BatchScheduler(Clock& clock, LrmConfig config, int total_nodes,
                 std::uint64_t seed = 1);
  ~BatchScheduler();

  BatchScheduler(const BatchScheduler&) = delete;
  BatchScheduler& operator=(const BatchScheduler&) = delete;

  Result<JobId> submit(JobSpec spec);
  Status cancel(JobId job_id);

  /// External payload completion (for run_time_s < 0 jobs).
  Status complete(JobId job_id);

  /// Process every transition due at the current clock time. Thread-safe.
  void step();

  /// Earliest future time at which step() has work to do, or nullopt.
  [[nodiscard]] std::optional<double> next_event_time() const;

  /// Drive step() from a background thread every tick (real/scaled clock).
  void start_driver(double tick_s);
  void stop_driver();

  [[nodiscard]] int total_nodes() const { return total_nodes_; }
  [[nodiscard]] int free_nodes() const;
  [[nodiscard]] int queued_jobs() const;
  [[nodiscard]] int active_jobs() const;  // starting+running+completing
  [[nodiscard]] JobState state(JobId job_id) const;
  [[nodiscard]] std::optional<JobTimes> times(JobId job_id) const;
  [[nodiscard]] LrmStats stats() const;
  [[nodiscard]] const LrmConfig& config() const { return config_; }

 private:
  struct Job {
    JobId id;
    JobSpec spec;
    JobState state{JobState::kQueued};
    JobTimes times;
    std::vector<NodeId> nodes;
    double next_transition_s{-1.0};  // due time for the pending transition
  };

  // All *_locked helpers require mu_ held.
  void run_cycle_locked(double cycle_time,
                        std::vector<std::function<void()>>& callbacks);
  void process_transitions_locked(double now,
                                  std::vector<std::function<void()>>& callbacks);
  void finish_job_locked(Job& job, double now, bool killed,
                         std::vector<std::function<void()>>& callbacks);
  [[nodiscard]] std::vector<NodeId> take_nodes_locked(int count);
  void return_nodes_locked(const std::vector<NodeId>& nodes);

  Clock& clock_;
  LrmConfig config_;
  int total_nodes_;
  Rng rng_;

  mutable std::mutex mu_;
  std::deque<NodeId> free_nodes_;
  std::deque<JobId> queue_;  // FIFO of queued job ids
  std::map<JobId, Job> jobs_;
  IdGenerator<JobId> job_ids_;
  double next_cycle_s_;
  LrmStats stats_;

  std::thread driver_;
  std::atomic<bool> driver_stop_{false};
};

}  // namespace falkon::lrm
