#include "lrm/batch_scheduler.h"

#include <algorithm>
#include <cassert>

#include "common/logging.h"
#include "common/strings.h"

namespace falkon::lrm {

LrmConfig pbs_v218_profile() {
  // Calibration: 100 sleep-0 tasks took ~224 s on 64 free nodes => ~2.2 s of
  // serial scheduler work per job. PBS runs a coarse scheduling cycle; the
  // paper measured allocation latencies of 5-65 s consistent with a 60 s
  // poll loop for jobs that miss a cycle.
  LrmConfig config;
  config.name = "pbs-2.1.8";
  config.poll_interval_s = 60.0;
  config.submit_overhead_s = 0.5;
  config.dispatch_overhead_s = 1.2;
  config.cleanup_overhead_s = 1.0;
  config.start_jitter_s = 0.5;
  config.max_starts_per_cycle = 28;  // ~0.45 job/s sustained
  return config;
}

LrmConfig condor_v672_profile() {
  // 100 sleep-0 tasks in ~203 s => ~2.0 s/job serial overhead; Condor's
  // negotiator cycle is shorter than PBS's poll loop.
  LrmConfig config;
  config.name = "condor-6.7.2";
  config.poll_interval_s = 20.0;
  config.submit_overhead_s = 0.4;
  config.dispatch_overhead_s = 1.1;
  config.cleanup_overhead_s = 0.9;
  config.start_jitter_s = 0.4;
  config.max_starts_per_cycle = 10;  // ~0.49 job/s sustained
  return config;
}

LrmConfig condor_v693_profile() {
  // Derived from the cited 11 tasks/s (0.0909 s per-task overhead).
  LrmConfig config;
  config.name = "condor-6.9.3";
  config.poll_interval_s = 2.0;
  config.submit_overhead_s = 0.02;
  config.dispatch_overhead_s = 0.05;
  config.cleanup_overhead_s = 0.02;
  config.start_jitter_s = 0.01;
  config.max_starts_per_cycle = 22;  // ~11 job/s sustained
  return config;
}

const char* job_state_name(JobState state) {
  switch (state) {
    case JobState::kQueued: return "QUEUED";
    case JobState::kStarting: return "STARTING";
    case JobState::kRunning: return "RUNNING";
    case JobState::kCompleting: return "COMPLETING";
    case JobState::kDone: return "DONE";
    case JobState::kCancelled: return "CANCELLED";
  }
  return "UNKNOWN";
}

BatchScheduler::BatchScheduler(Clock& clock, LrmConfig config, int total_nodes,
                               std::uint64_t seed)
    : clock_(clock),
      config_(std::move(config)),
      total_nodes_(total_nodes),
      rng_(seed),
      next_cycle_s_(clock.now_s() + config_.poll_interval_s) {
  for (int i = 1; i <= total_nodes_; ++i) {
    free_nodes_.push_back(NodeId{static_cast<std::uint64_t>(i)});
  }
}

BatchScheduler::~BatchScheduler() { stop_driver(); }

Result<JobId> BatchScheduler::submit(JobSpec spec) {
  if (spec.nodes < 1 || spec.nodes > total_nodes_) {
    return make_error(ErrorCode::kInvalidArgument,
                      strf("job needs %d nodes, cluster has %d", spec.nodes,
                           total_nodes_));
  }
  std::lock_guard lock(mu_);
  const double now = clock_.now_s();
  Job job;
  job.id = job_ids_.next();
  job.spec = std::move(spec);
  job.times.submit_s = now;
  job.times.eligible_s = now + config_.submit_overhead_s;
  const JobId id = job.id;
  queue_.push_back(id);
  jobs_.emplace(id, std::move(job));
  ++stats_.submitted;
  return id;
}

Status BatchScheduler::cancel(JobId job_id) {
  std::vector<std::function<void()>> callbacks;
  {
    std::lock_guard lock(mu_);
    auto it = jobs_.find(job_id);
    if (it == jobs_.end()) {
      return make_error(ErrorCode::kNotFound, "no such job");
    }
    Job& job = it->second;
    if (job.state == JobState::kDone || job.state == JobState::kCancelled) {
      return ok_status();
    }
    const double now = clock_.now_s();
    if (job.state == JobState::kQueued) {
      queue_.erase(std::remove(queue_.begin(), queue_.end(), job_id),
                   queue_.end());
    } else {
      return_nodes_locked(job.nodes);
      stats_.node_seconds_allocated +=
          static_cast<double>(job.nodes.size()) * (now - job.times.start_s);
      job.nodes.clear();
    }
    job.state = JobState::kCancelled;
    job.times.end_s = now;
    job.times.done_s = now;
    job.next_transition_s = -1.0;
    ++stats_.cancelled;
    if (job.spec.on_done) {
      auto callback = job.spec.on_done;
      callbacks.emplace_back([callback, job_id] { callback(job_id, true); });
    }
  }
  for (auto& callback : callbacks) callback();
  return ok_status();
}

Status BatchScheduler::complete(JobId job_id) {
  std::lock_guard lock(mu_);
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return make_error(ErrorCode::kNotFound, "no such job");
  Job& job = it->second;
  const double now = clock_.now_s();
  switch (job.state) {
    case JobState::kRunning:
      job.times.end_s = now;
      job.state = JobState::kCompleting;
      job.next_transition_s = now + config_.cleanup_overhead_s;
      return ok_status();
    case JobState::kStarting:
      // Payload declared finished before the prolog ended: complete as soon
      // as the job becomes active.
      job.spec.run_time_s = 0.0;
      return ok_status();
    default:
      return make_error(ErrorCode::kInvalidArgument,
                        strf("job in state %s cannot complete",
                             job_state_name(job.state)));
  }
}

void BatchScheduler::step() {
  std::vector<std::function<void()>> callbacks;
  {
    std::lock_guard lock(mu_);
    const double now = clock_.now_s();
    // Process cycles and transitions in chronological order so that a
    // scheduling cycle observes the node releases that precede it.
    for (;;) {
      double next_transition = -1.0;
      for (const auto& [id, job] : jobs_) {
        if (job.next_transition_s >= 0 &&
            (next_transition < 0 || job.next_transition_s < next_transition)) {
          next_transition = job.next_transition_s;
        }
      }
      const bool cycle_due = next_cycle_s_ <= now;
      const bool transition_due = next_transition >= 0 && next_transition <= now;
      if (!cycle_due && !transition_due) break;

      if (transition_due &&
          (!cycle_due || next_transition <= next_cycle_s_)) {
        process_transitions_locked(next_transition, callbacks);
      } else {
        run_cycle_locked(next_cycle_s_, callbacks);
        next_cycle_s_ += config_.poll_interval_s;
      }
    }
    if (config_.fault != nullptr) {
      // Node preemption: the LRM reclaims a running allocation (higher
      // priority job, node drain). Modeled as a walltime-style kill — the
      // job enters cleanup and its on_done fires with killed=true.
      for (auto& [id, job] : jobs_) {
        if (job.state != JobState::kRunning) continue;
        const fault::Outcome outcome =
            config_.fault->sample(fault::Site::kLrmPreempt);
        if (outcome.action != fault::Action::kPreempt) continue;
        job.times.end_s = now;
        job.state = JobState::kCompleting;
        job.next_transition_s = now + config_.cleanup_overhead_s;
        job.spec.run_time_s = -2.0;  // sentinel: killed
      }
    }
  }
  for (auto& callback : callbacks) callback();
}

std::optional<double> BatchScheduler::next_event_time() const {
  std::lock_guard lock(mu_);
  std::optional<double> next;
  if (!queue_.empty()) next = next_cycle_s_;
  for (const auto& [id, job] : jobs_) {
    if (job.next_transition_s >= 0 &&
        (!next || job.next_transition_s < *next)) {
      next = job.next_transition_s;
    }
  }
  return next;
}

void BatchScheduler::start_driver(double tick_s) {
  stop_driver();
  driver_stop_.store(false);
  driver_ = std::thread([this, tick_s] {
    while (!driver_stop_.load()) {
      step();
      clock_.sleep_s(tick_s);
    }
  });
}

void BatchScheduler::stop_driver() {
  driver_stop_.store(true);
  if (driver_.joinable()) driver_.join();
}

int BatchScheduler::free_nodes() const {
  std::lock_guard lock(mu_);
  return static_cast<int>(free_nodes_.size());
}

int BatchScheduler::queued_jobs() const {
  std::lock_guard lock(mu_);
  return static_cast<int>(queue_.size());
}

int BatchScheduler::active_jobs() const {
  std::lock_guard lock(mu_);
  int active = 0;
  for (const auto& [id, job] : jobs_) {
    if (job.state == JobState::kStarting || job.state == JobState::kRunning ||
        job.state == JobState::kCompleting) {
      ++active;
    }
  }
  return active;
}

JobState BatchScheduler::state(JobId job_id) const {
  std::lock_guard lock(mu_);
  auto it = jobs_.find(job_id);
  return it == jobs_.end() ? JobState::kCancelled : it->second.state;
}

std::optional<JobTimes> BatchScheduler::times(JobId job_id) const {
  std::lock_guard lock(mu_);
  auto it = jobs_.find(job_id);
  if (it == jobs_.end()) return std::nullopt;
  return it->second.times;
}

LrmStats BatchScheduler::stats() const {
  std::lock_guard lock(mu_);
  return stats_;
}

void BatchScheduler::run_cycle_locked(
    double cycle_time, std::vector<std::function<void()>>& callbacks) {
  (void)callbacks;
  int starts = 0;
  while (!queue_.empty()) {
    if (config_.max_starts_per_cycle > 0 &&
        starts >= config_.max_starts_per_cycle) {
      break;
    }
    const JobId head_id = queue_.front();
    auto it = jobs_.find(head_id);
    assert(it != jobs_.end());
    Job& job = it->second;
    if (job.times.eligible_s > cycle_time) break;  // not yet ingested
    if (static_cast<int>(free_nodes_.size()) < job.spec.nodes) {
      break;  // strict FIFO: head blocks the queue, as in stock PBS
    }
    queue_.pop_front();
    job.nodes = take_nodes_locked(job.spec.nodes);
    job.state = JobState::kStarting;
    job.times.start_s = cycle_time;
    const double jitter = config_.start_jitter_s > 0
                              ? rng_.uniform(0.0, config_.start_jitter_s)
                              : 0.0;
    job.next_transition_s =
        cycle_time + config_.dispatch_overhead_s + jitter;
    ++starts;
  }
}

void BatchScheduler::process_transitions_locked(
    double now, std::vector<std::function<void()>>& callbacks) {
  for (auto& [id, job] : jobs_) {
    if (job.next_transition_s < 0 || job.next_transition_s > now) continue;
    const double at = job.next_transition_s;
    switch (job.state) {
      case JobState::kStarting: {
        job.state = JobState::kRunning;
        job.times.active_s = at;
        ++stats_.started;
        double payload_end = -1.0;
        if (job.spec.run_time_s >= 0) payload_end = at + job.spec.run_time_s;
        double walltime_end = -1.0;
        if (job.spec.walltime_s > 0) {
          walltime_end = job.times.start_s + job.spec.walltime_s;
        }
        if (payload_end >= 0 && walltime_end >= 0) {
          job.next_transition_s = std::min(payload_end, walltime_end);
        } else if (payload_end >= 0) {
          job.next_transition_s = payload_end;
        } else if (walltime_end >= 0) {
          job.next_transition_s = walltime_end;
        } else {
          job.next_transition_s = -1.0;
        }
        if (job.spec.on_start) {
          JobContext context{job.id, job.nodes, at};
          auto callback = job.spec.on_start;
          callbacks.emplace_back(
              [callback, context = std::move(context)] { callback(context); });
        }
        break;
      }
      case JobState::kRunning: {
        const bool payload_finished =
            job.spec.run_time_s >= 0 &&
            at >= job.times.active_s + job.spec.run_time_s - 1e-9;
        job.times.end_s = at;
        job.state = JobState::kCompleting;
        job.next_transition_s = at + config_.cleanup_overhead_s;
        if (!payload_finished) {
          // Walltime kill; remember it for the finish bookkeeping by
          // encoding end-before-payload in stats at finish time.
          job.spec.run_time_s = -2.0;  // sentinel: killed
        }
        break;
      }
      case JobState::kCompleting: {
        finish_job_locked(job, at, job.spec.run_time_s == -2.0, callbacks);
        break;
      }
      default:
        job.next_transition_s = -1.0;
        break;
    }
  }
}

void BatchScheduler::finish_job_locked(
    Job& job, double now, bool killed,
    std::vector<std::function<void()>>& callbacks) {
  return_nodes_locked(job.nodes);
  const auto node_count = static_cast<double>(job.nodes.size());
  stats_.node_seconds_allocated += node_count * (now - job.times.start_s);
  if (job.times.active_s >= 0 && job.times.end_s >= job.times.active_s) {
    stats_.node_seconds_payload +=
        node_count * (job.times.end_s - job.times.active_s);
  }
  job.nodes.clear();
  job.state = JobState::kDone;
  job.times.done_s = now;
  job.next_transition_s = -1.0;
  if (killed) {
    ++stats_.killed;
  } else {
    ++stats_.completed;
  }
  if (job.spec.on_done) {
    auto callback = job.spec.on_done;
    const JobId id = job.id;
    callbacks.emplace_back([callback, id, killed] { callback(id, killed); });
  }
}

std::vector<NodeId> BatchScheduler::take_nodes_locked(int count) {
  std::vector<NodeId> nodes;
  nodes.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    nodes.push_back(free_nodes_.front());
    free_nodes_.pop_front();
  }
  return nodes;
}

void BatchScheduler::return_nodes_locked(const std::vector<NodeId>& nodes) {
  for (auto node : nodes) free_nodes_.push_back(node);
}

}  // namespace falkon::lrm
