// GRAM4 gateway model.
//
// The paper's provisioner issues resource requests "via GRAM4 to abstract
// LRM details" (section 3.2), and the GRAM4+PBS baseline submits every task
// as a separate GRAM4 job (section 4.6). GRAM adds its own per-request
// processing cost on top of the LRM (the paper measured ~0.5 requests/sec
// handled on TG_ANL), plus job state notifications (Pending -> Active ->
// Done) that clients observe with some delay.
#pragma once

#include <functional>
#include <map>
#include <mutex>

#include "fault/fault.h"
#include "lrm/batch_scheduler.h"

namespace falkon::lrm {

enum class GramJobState : std::uint8_t { kPending = 0, kActive, kDone, kFailed };

[[nodiscard]] const char* gram_job_state_name(GramJobState state);

struct GramConfig {
  /// Serial request-processing cost (authentication, job-description
  /// parsing, LRM handoff). ~0.5 req/s measured on TG_ANL => ~2 s each.
  double request_overhead_s{2.0};
  /// Delay before a state-change notification reaches the subscriber.
  double notification_delay_s{0.2};
  /// Fault injection (allocation rejection at Site::kLrmAllocate);
  /// nullptr in production.
  fault::FaultInjector* fault{nullptr};
};

/// Callback invoked on GRAM state changes (after notification delay).
using GramStateCallback = std::function<void(JobId, GramJobState)>;

class Gram4Gateway {
 public:
  Gram4Gateway(Clock& clock, BatchScheduler& scheduler, GramConfig config);

  /// Submit a job through GRAM. The job reaches the LRM queue only after
  /// the gateway's serialised request-processing time has elapsed; requests
  /// queue behind each other on the gateway, as on a real GRAM head node.
  Result<JobId> submit(JobSpec spec, GramStateCallback on_state = nullptr);

  /// Submit several LRM jobs as ONE GRAM request (the "all-at-once"
  /// acquisition strategy: a single request for n resources). The batch
  /// pays the request-processing overhead once; its jobs release their
  /// nodes independently.
  Result<std::vector<JobId>> submit_batch(std::vector<JobSpec> specs,
                                          GramStateCallback on_state = nullptr);

  /// Process due gateway work (hand pending requests to the LRM). The
  /// underlying scheduler must be stepped separately.
  void step();

  [[nodiscard]] std::optional<double> next_event_time() const;
  [[nodiscard]] int pending_requests() const;
  [[nodiscard]] std::uint64_t requests_issued() const;

 private:
  struct PendingRequest {
    JobId gram_id;
    JobSpec spec;
    GramStateCallback on_state;
    double ready_s;  // when the gateway finishes processing this request
  };

  Clock& clock_;
  BatchScheduler& scheduler_;
  GramConfig config_;

  mutable std::mutex mu_;
  std::deque<PendingRequest> pending_;
  IdGenerator<JobId> gram_ids_;
  /// Maps gateway-issued ids to LRM job ids once forwarded.
  std::map<JobId, JobId> lrm_job_of_;
  double gateway_free_s_{0.0};  // time the gateway finishes current work
  std::uint64_t requests_issued_{0};
};

}  // namespace falkon::lrm
