#include "net/reactor.h"

#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <future>
#include <utility>

#include "net/socket.h"

namespace falkon::net {

namespace {

constexpr int kMaxEvents = 64;
constexpr int kMaxIov = 64;
// Bytes decoded per connection per readiness event before yielding, so one
// fire-hosing peer cannot starve the other connections on the loop.
constexpr std::size_t kReadBudget = 256 * 1024;
// epoll_wait timeout when no timer is pending.
constexpr int kIdleTimeoutMs = 100;
constexpr double kAcceptBackoffMinS = 0.05;
constexpr double kAcceptBackoffMaxS = 1.0;
// Minimum spacing between shrink-on-idle pool trims per loop.
constexpr double kPoolTrimIntervalS = 1.0;

// Which reactor loop the current thread is, if it is a loop thread at all.
// Reuseport accept mode uses this to keep a kernel-balanced accepted
// connection on the loop whose listener accepted it (void* because
// Reactor::Loop is private at namespace scope).
thread_local const void* tls_reactor = nullptr;
thread_local void* tls_loop = nullptr;

}  // namespace

struct Reactor::Timer {
  TimerId id{0};
  std::uint64_t deadline_tick{0};
  double period_s{0.0};  // > 0: periodic
  TimerFn fn;
};

/// Size-classed free lists of byte buffers, one pool per loop. The owning
/// loop thread is the dominant caller (decode buffers, write completions,
/// close-time recycle) but producers acquire send chunks and handlers may
/// recycle decoded payloads from pool threads, so the pool keeps its own
/// leaf mutex — never held while any other lock is taken.
struct Reactor::BufferPool {
  static constexpr std::size_t kNClasses = 7;
  static constexpr std::size_t kClassBytes[kNClasses] = {
      256, 1u << 10, 4u << 10, 16u << 10, 64u << 10, 256u << 10, 1u << 20};
  /// Per-class retention cap: bounds worst-case pooled memory per loop at
  /// sum(class_bytes) * kMaxPerClass (~43 MB) though trim-on-idle keeps the
  /// steady state far below it.
  static constexpr std::size_t kMaxPerClass = 64;

  std::mutex mu;
  std::array<std::vector<std::vector<std::uint8_t>>, kNClasses> free_lists;

  /// Smallest class that fits `n` bytes, or -1 when larger than every class
  /// (then the allocation is unpooled).
  static int class_for_size(std::size_t n) {
    for (std::size_t c = 0; c < kNClasses; ++c) {
      if (n <= kClassBytes[c]) return static_cast<int>(c);
    }
    return -1;
  }

  /// Largest class whose buffers fit inside `capacity`, or -1 for tiny
  /// one-off vectors not worth keeping.
  static int class_for_capacity(std::size_t capacity) {
    int best = -1;
    for (std::size_t c = 0; c < kNClasses; ++c) {
      if (kClassBytes[c] <= capacity) best = static_cast<int>(c);
    }
    return best;
  }

  std::vector<std::uint8_t> acquire(Reactor& reactor, std::size_t n) {
    const int cls = class_for_size(n);
    if (cls >= 0) {
      std::unique_lock<std::mutex> lock(mu);
      auto& list = free_lists[static_cast<std::size_t>(cls)];
      if (!list.empty()) {
        std::vector<std::uint8_t> buf = std::move(list.back());
        list.pop_back();
        lock.unlock();
        reactor.pool_bytes_.fetch_sub(
            static_cast<std::int64_t>(buf.capacity()),
            std::memory_order_relaxed);
        if (reactor.m_pool_hits_ != nullptr) reactor.m_pool_hits_->inc();
        if (reactor.m_pool_bytes_ != nullptr) {
          reactor.m_pool_bytes_->set(static_cast<double>(
              reactor.pool_bytes_.load(std::memory_order_relaxed)));
        }
        buf.resize(n);  // capacity >= class size >= n: no reallocation
        return buf;
      }
    }
    if (reactor.m_pool_misses_ != nullptr) reactor.m_pool_misses_->inc();
    std::vector<std::uint8_t> buf;
    if (cls >= 0) buf.reserve(kClassBytes[static_cast<std::size_t>(cls)]);
    buf.resize(n);
    return buf;
  }

  void release(Reactor& reactor, std::vector<std::uint8_t>&& buf) {
    const std::size_t capacity = buf.capacity();
    const int cls = class_for_capacity(capacity);
    // Oversized one-offs (beyond 2x the largest class) are returned to the
    // allocator rather than pinned in the pool forever.
    if (cls < 0 || capacity > 2 * kClassBytes[kNClasses - 1]) return;
    buf.clear();
    {
      std::lock_guard<std::mutex> lock(mu);
      auto& list = free_lists[static_cast<std::size_t>(cls)];
      if (list.size() >= kMaxPerClass) return;
      list.push_back(std::move(buf));
    }
    reactor.pool_bytes_.fetch_add(static_cast<std::int64_t>(capacity),
                                  std::memory_order_relaxed);
    if (reactor.m_pool_bytes_ != nullptr) {
      reactor.m_pool_bytes_->set(static_cast<double>(
          reactor.pool_bytes_.load(std::memory_order_relaxed)));
    }
  }

  /// Shrink-on-idle: drop half of every free list (called from the owning
  /// loop when epoll has been idle), so a burst's buffers drain back to the
  /// allocator instead of sitting hot forever.
  void trim(Reactor& reactor) {
    std::int64_t freed = 0;
    bool any = false;
    {
      std::lock_guard<std::mutex> lock(mu);
      for (auto& list : free_lists) {
        const std::size_t keep = list.size() / 2;
        while (list.size() > keep) {
          freed += static_cast<std::int64_t>(list.back().capacity());
          list.pop_back();
          any = true;
        }
      }
    }
    if (!any) return;
    reactor.pool_bytes_.fetch_sub(freed, std::memory_order_relaxed);
    if (reactor.m_pool_trims_ != nullptr) reactor.m_pool_trims_->inc();
    if (reactor.m_pool_bytes_ != nullptr) {
      reactor.m_pool_bytes_->set(static_cast<double>(
          reactor.pool_bytes_.load(std::memory_order_relaxed)));
    }
  }
};

constexpr std::size_t Reactor::BufferPool::kClassBytes[];

struct Reactor::Loop {
  // Hashed timer wheel: 1 ms ticks over 512 slots; entries keep an absolute
  // deadline tick so multi-rotation timers just stay in their slot until the
  // cursor passes them with the right deadline.
  static constexpr std::size_t kWheelSlots = 512;
  static constexpr double kTickS = 0.001;

  Reactor* reactor{nullptr};
  int index{0};
  int epfd{-1};
  int evfd{-1};
  std::thread thread;

  std::mutex ops_mu;
  std::vector<std::function<void()>> ops;
  /// Flush requests: the allocation-free fast path for "this connection has
  /// output queued" — a shared_ptr enqueue instead of a std::function per
  /// send. Drained alongside ops, same eventfd wake.
  std::vector<std::shared_ptr<Conn>> flush_q;
  bool wake_pending{false};
  bool stopped{false};

  // ---- loop-thread-only ----
  std::unordered_map<int, std::shared_ptr<Conn>> conns;
  struct ListenerState {
    AcceptHandler on_accept;
    bool armed{true};
    double backoff_s{0.0};
  };
  std::unordered_map<int, ListenerState> listeners;
  std::array<std::vector<Timer>, kWheelSlots> wheel;
  std::size_t n_timers{0};
  std::uint64_t cursor_tick{0};
  std::chrono::steady_clock::time_point t0;
  BufferPool pool;
  double last_trim_s{0.0};

  [[nodiscard]] double now_s() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
        .count();
  }
  [[nodiscard]] std::uint64_t now_tick() const {
    return static_cast<std::uint64_t>(now_s() / kTickS);
  }

  void insert_timer(Timer timer) {
    wheel[timer.deadline_tick % kWheelSlots].push_back(std::move(timer));
    ++n_timers;
  }

  void remove_timer(TimerId id) {
    for (auto& slot : wheel) {
      for (std::size_t i = 0; i < slot.size(); ++i) {
        if (slot[i].id == id) {
          slot.erase(slot.begin() + static_cast<std::ptrdiff_t>(i));
          --n_timers;
          return;
        }
      }
    }
  }

  /// Fire every timer whose deadline has passed. Periodic timers re-insert
  /// themselves; fns run after extraction so they may add or cancel timers.
  void advance_timers() {
    if (n_timers == 0) {
      cursor_tick = now_tick();
      return;
    }
    const std::uint64_t target = now_tick();
    std::vector<Timer> due;
    while (cursor_tick < target) {
      ++cursor_tick;
      auto& slot = wheel[cursor_tick % kWheelSlots];
      for (std::size_t i = 0; i < slot.size();) {
        if (slot[i].deadline_tick <= cursor_tick) {
          due.push_back(std::move(slot[i]));
          slot.erase(slot.begin() + static_cast<std::ptrdiff_t>(i));
          --n_timers;
        } else {
          ++i;
        }
      }
    }
    for (auto& timer : due) {
      if (timer.period_s > 0.0) {
        Timer next = timer;
        auto period_ticks = static_cast<std::uint64_t>(timer.period_s / kTickS);
        next.deadline_tick = cursor_tick + std::max<std::uint64_t>(1, period_ticks);
        insert_timer(std::move(next));
      }
      timer.fn();
    }
  }

  /// Milliseconds until the nearest deadline (timer population is small —
  /// a handful of sweep/backoff/pause entries — so a full scan is cheap).
  [[nodiscard]] int next_timeout_ms() const {
    if (n_timers == 0) return kIdleTimeoutMs;
    std::uint64_t nearest = UINT64_MAX;
    for (const auto& slot : wheel) {
      for (const auto& timer : slot) {
        nearest = std::min(nearest, timer.deadline_tick);
      }
    }
    const std::uint64_t now = now_tick();
    if (nearest <= now) return 0;
    const std::uint64_t delta = nearest - now;
    return static_cast<int>(std::min<std::uint64_t>(delta, kIdleTimeoutMs));
  }
};

Reactor::Reactor(ReactorOptions options) : options_(options) {
  if (options_.n_loops < 1) options_.n_loops = 1;
  if (options_.low_watermark_bytes > options_.high_watermark_bytes) {
    options_.low_watermark_bytes = options_.high_watermark_bytes / 2;
  }
  if (options_.obs != nullptr) {
    auto& reg = options_.obs->registry();
    m_wakeups_ = &reg.counter("falkon.net.reactor.wakeups");
    m_accept_rejected_ = &reg.counter("falkon.net.accept_rejected");
    m_read_paused_ = &reg.counter("falkon.net.reactor.read_paused");
    m_coalesced_ = &reg.counter("falkon.net.frames_coalesced");
    m_migrations_ = &reg.counter("falkon.net.reactor.migrations");
    m_pool_hits_ = &reg.counter("falkon.net.pool.hits");
    m_pool_misses_ = &reg.counter("falkon.net.pool.misses");
    m_pool_trims_ = &reg.counter("falkon.net.pool.trims");
    m_pool_bytes_ = &reg.gauge("falkon.net.pool.bytes");
    m_epoll_batch_ =
        &reg.histogram("falkon.net.reactor.epoll_batch", 1.0, 64.0);
    m_writable_stall_ =
        &reg.histogram("falkon.net.reactor.writable_stall_s", 1e-6, 10.0);
    m_connections_ = &reg.gauge("falkon.net.reactor.connections");
  }
}

Reactor::~Reactor() { stop(); }

Status Reactor::start() {
  if (started_) return ok_status();
  for (int i = 0; i < options_.n_loops; ++i) {
    auto loop = std::make_unique<Loop>();
    loop->reactor = this;
    loop->index = i;
    loop->t0 = std::chrono::steady_clock::now();
    loop->epfd = ::epoll_create1(EPOLL_CLOEXEC);
    loop->evfd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (loop->epfd < 0 || loop->evfd < 0) {
      if (loop->epfd >= 0) ::close(loop->epfd);
      if (loop->evfd >= 0) ::close(loop->evfd);
      loops_.clear();
      return make_error(ErrorCode::kIoError,
                        "reactor: epoll/eventfd setup failed: " +
                            std::string(std::strerror(errno)));
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = loop->evfd;
    ::epoll_ctl(loop->epfd, EPOLL_CTL_ADD, loop->evfd, &ev);
    loops_.push_back(std::move(loop));
  }
  for (auto& loop : loops_) {
    loop->thread = std::thread([this, raw = loop.get()] { run_loop(*raw); });
  }
  started_ = true;
  return ok_status();
}

void Reactor::stop() {
  if (!started_) return;
  stopping_.store(true, std::memory_order_release);
  for (auto& loop : loops_) {
    std::uint64_t one = 1;
    [[maybe_unused]] auto n = ::write(loop->evfd, &one, sizeof(one));
  }
  for (auto& loop : loops_) {
    if (loop->thread.joinable()) loop->thread.join();
    ::close(loop->epfd);
    ::close(loop->evfd);
  }
  loops_.clear();
  {
    std::lock_guard<std::mutex> lock(homes_mu_);
    timer_home_.clear();
    listener_home_.clear();
  }
  started_ = false;
  stopping_.store(false, std::memory_order_release);
}

Reactor::Loop& Reactor::loop_for_new_conn() {
  if (options_.reuseport && tls_reactor == this && tls_loop != nullptr) {
    // Reuseport accept mode: the kernel already load-balanced this
    // connection onto the accepting loop's listener — adopting it right
    // here skips the cross-thread handoff.
    return *static_cast<Loop*>(tls_loop);
  }
  const std::size_t i =
      next_loop_.fetch_add(1, std::memory_order_relaxed) % loops_.size();
  return *loops_[i];
}

Reactor::Loop& Reactor::loop_for_key(std::uint64_t key) {
  return *loops_[key % loops_.size()];
}

bool Reactor::post(Loop& loop, std::function<void()> op) {
  bool wake = false;
  {
    std::lock_guard<std::mutex> lock(loop.ops_mu);
    if (loop.stopped) return false;
    loop.ops.push_back(std::move(op));
    if (!loop.wake_pending) {
      loop.wake_pending = true;
      wake = true;
    }
  }
  if (wake) {
    std::uint64_t one = 1;
    [[maybe_unused]] auto n = ::write(loop.evfd, &one, sizeof(one));
  }
  return true;
}

void Reactor::request_flush(const std::shared_ptr<Conn>& conn) {
  Loop* target = conn->loop_.load(std::memory_order_acquire);
  if (target == nullptr) return;
  bool wake = false;
  {
    std::lock_guard<std::mutex> lock(target->ops_mu);
    // A stopped loop closes every connection on shutdown; nothing to flush.
    if (target->stopped) return;
    target->flush_q.push_back(conn);
    if (!target->wake_pending) {
      target->wake_pending = true;
      wake = true;
    }
  }
  if (wake) {
    std::uint64_t one = 1;
    [[maybe_unused]] auto n = ::write(target->evfd, &one, sizeof(one));
  }
}

void Reactor::post_to_owner(
    const std::shared_ptr<Conn>& conn,
    std::function<void(Loop&, const std::shared_ptr<Conn>&)> op) {
  Loop* target = conn->loop_.load(std::memory_order_acquire);
  if (target == nullptr) return;
  post(*target, [this, target, conn, op = std::move(op)]() mutable {
    // A migration may have rebound the connection between enqueue and
    // execution; chase it to the current owner so the op never touches a
    // loop that no longer holds the fd.
    if (conn->loop_.load(std::memory_order_acquire) != target) {
      post_to_owner(conn, std::move(op));
      return;
    }
    op(*target, conn);
  });
}

void Reactor::migrate(Loop& from, const std::shared_ptr<Conn>& conn,
                      Loop& target) {
  if (&from == &target || conn->closed_) return;
  if (!conn->registered_) {
    // Adoption registration always lands before any migration op on the
    // same queue; an unregistered conn here means registration failed —
    // just retarget the pointer.
    conn->loop_.store(&target, std::memory_order_release);
    return;
  }
  ::epoll_ctl(from.epfd, EPOLL_CTL_DEL, conn->fd_, nullptr);
  from.conns.erase(conn->fd_);
  conn->loop_.store(&target, std::memory_order_release);
  if (m_migrations_ != nullptr) m_migrations_->inc();
  const bool posted = post(target, [this, &target, conn] {
    if (conn->closed_) return;
    epoll_event ev{};
    ev.events = 0;
    if (conn->read_on_ && !conn->read_paused_bp_) ev.events |= EPOLLIN;
    if (conn->epollout_) ev.events |= EPOLLOUT;
    ev.data.fd = conn->fd_;
    if (::epoll_ctl(target.epfd, EPOLL_CTL_ADD, conn->fd_, &ev) != 0) {
      do_close(target, conn);
      return;
    }
    target.conns[conn->fd_] = conn;
    loop_flush(target, conn);  // output may have queued mid-migration
  });
  if (!posted) {
    // Target loop already shut down; sever here (do_close tolerates the fd
    // being absent from this loop's registry).
    do_close(from, conn);
  }
}

std::shared_ptr<Reactor::Conn> Reactor::adopt(int fd, FrameHandler on_frame,
                                              CloseHandler on_close) {
  auto conn = std::make_shared<Conn>();
  conn->reactor_ = this;
  conn->fd_ = fd;
  conn->on_frame_ = std::move(on_frame);
  conn->on_close_ = std::move(on_close);
  if (loops_.empty()) {
    ::close(fd);
    std::lock_guard<std::mutex> lock(conn->mu_);
    conn->dead_ = true;
    conn->fd_ = -1;
    return conn;
  }
  Loop& loop = loop_for_new_conn();
  conn->loop_.store(&loop, std::memory_order_release);
  (void)set_nonblocking(fd);
  const bool posted = post(loop, [this, &loop, conn] {
    bool dead;
    {
      std::lock_guard<std::mutex> lock(conn->mu_);
      dead = conn->dead_;
    }
    if (dead) {  // closed before registration landed
      ::close(conn->fd_);
      conn->fd_ = -1;
      return;
    }
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = conn->fd_;
    if (::epoll_ctl(loop.epfd, EPOLL_CTL_ADD, conn->fd_, &ev) != 0) {
      ::close(conn->fd_);
      conn->fd_ = -1;
      std::lock_guard<std::mutex> lock(conn->mu_);
      conn->dead_ = true;
      return;
    }
    loop.conns[conn->fd_] = conn;
    conn->registered_ = true;
    open_conns_.fetch_add(1, std::memory_order_relaxed);
    if (m_connections_ != nullptr) {
      m_connections_->set(static_cast<double>(
          open_conns_.load(std::memory_order_relaxed)));
    }
    loop_flush(loop, conn);  // sends may have queued before registration
  });
  if (!posted) {
    ::close(fd);
    std::lock_guard<std::mutex> lock(conn->mu_);
    conn->dead_ = true;
    conn->fd_ = -1;
  }
  return conn;
}

void Reactor::add_listener(int listen_fd, AcceptHandler on_accept) {
  if (loops_.empty()) return;
  const std::size_t index =
      next_listener_loop_.fetch_add(1, std::memory_order_relaxed) %
      loops_.size();
  Loop& loop = *loops_[index];
  {
    std::lock_guard<std::mutex> lock(homes_mu_);
    listener_home_[listen_fd] = static_cast<int>(index);
  }
  (void)set_nonblocking(listen_fd);
  post(loop, [this, &loop, listen_fd, handler = std::move(on_accept)]() mutable {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.fd = listen_fd;
    if (::epoll_ctl(loop.epfd, EPOLL_CTL_ADD, listen_fd, &ev) != 0) return;
    Loop::ListenerState state;
    state.on_accept = std::move(handler);
    loop.listeners.emplace(listen_fd, std::move(state));
  });
}

void Reactor::remove_listener(int listen_fd) {
  if (loops_.empty()) return;
  int index = 0;
  {
    std::lock_guard<std::mutex> lock(homes_mu_);
    auto it = listener_home_.find(listen_fd);
    if (it != listener_home_.end()) {
      index = it->second;
      listener_home_.erase(it);
    }
  }
  Loop& loop = *loops_[static_cast<std::size_t>(index)];
  post(loop, [&loop, listen_fd] {
    auto it = loop.listeners.find(listen_fd);
    if (it == loop.listeners.end()) return;
    if (it->second.armed) {
      ::epoll_ctl(loop.epfd, EPOLL_CTL_DEL, listen_fd, nullptr);
    }
    loop.listeners.erase(it);
  });
}

Reactor::Loop& Reactor::loop_for_timer(TimerId id) {
  const std::size_t index =
      next_timer_loop_.fetch_add(1, std::memory_order_relaxed) % loops_.size();
  {
    std::lock_guard<std::mutex> lock(homes_mu_);
    timer_home_[id] = static_cast<int>(index);
  }
  return *loops_[index];
}

TimerId Reactor::add_timer(double delay_s, TimerFn fn) {
  const TimerId id = next_timer_.fetch_add(1, std::memory_order_relaxed);
  if (loops_.empty()) return id;
  Loop& loop = loop_for_timer(id);
  post(loop, [this, &loop, id, delay_s, fn = std::move(fn)]() mutable {
    Timer timer;
    timer.id = id;
    // One-shot: retire the home entry when it fires so the map stays small.
    timer.fn = [this, id, fn = std::move(fn)] {
      {
        std::lock_guard<std::mutex> lock(homes_mu_);
        timer_home_.erase(id);
      }
      fn();
    };
    auto ticks = static_cast<std::uint64_t>(delay_s / Loop::kTickS);
    timer.deadline_tick = loop.now_tick() + std::max<std::uint64_t>(1, ticks);
    loop.insert_timer(std::move(timer));
  });
  return id;
}

TimerId Reactor::add_periodic(double interval_s, TimerFn fn) {
  const TimerId id = next_timer_.fetch_add(1, std::memory_order_relaxed);
  if (loops_.empty()) return id;
  Loop& loop = loop_for_timer(id);
  post(loop, [&loop, id, interval_s, fn = std::move(fn)]() mutable {
    Timer timer;
    timer.id = id;
    timer.period_s = interval_s;
    timer.fn = std::move(fn);
    auto ticks = static_cast<std::uint64_t>(interval_s / Loop::kTickS);
    timer.deadline_tick = loop.now_tick() + std::max<std::uint64_t>(1, ticks);
    loop.insert_timer(std::move(timer));
  });
  return id;
}

void Reactor::cancel_timer(TimerId id) {
  if (loops_.empty()) return;
  int index = 0;
  {
    std::lock_guard<std::mutex> lock(homes_mu_);
    auto it = timer_home_.find(id);
    if (it == timer_home_.end()) return;  // already fired (one-shot) or bogus
    index = it->second;
    timer_home_.erase(it);
  }
  Loop& loop = *loops_[static_cast<std::size_t>(index)];
  post(loop, [&loop, id] { loop.remove_timer(id); });
}

void Reactor::barrier() {
  std::vector<std::future<void>> futures;
  for (auto& loop : loops_) {
    auto promise = std::make_shared<std::promise<void>>();
    auto future = promise->get_future();
    if (post(*loop, [promise] { promise->set_value(); })) {
      futures.push_back(std::move(future));
    }
  }
  for (auto& future : futures) future.wait();
}

std::size_t Reactor::open_connections() const {
  return open_conns_.load(std::memory_order_relaxed);
}

std::vector<std::size_t> Reactor::connections_per_loop() {
  std::vector<std::size_t> out(loops_.size(), 0);
  std::vector<std::future<void>> futures;
  for (std::size_t i = 0; i < loops_.size(); ++i) {
    Loop* loop = loops_[i].get();
    auto promise = std::make_shared<std::promise<void>>();
    auto future = promise->get_future();
    if (post(*loop, [&out, i, loop, promise] {
          out[i] = loop->conns.size();
          promise->set_value();
        })) {
      futures.push_back(std::move(future));
    }
  }
  for (auto& future : futures) future.wait();
  return out;
}

// ---------------------------------------------------------------------------
// Loop body
// ---------------------------------------------------------------------------

void Reactor::run_loop(Loop& loop) {
  tls_reactor = this;
  tls_loop = &loop;
  epoll_event events[kMaxEvents];
  while (true) {
    // Drain posted operations and flush requests.
    std::vector<std::function<void()>> batch;
    std::vector<std::shared_ptr<Conn>> flushes;
    {
      std::lock_guard<std::mutex> lock(loop.ops_mu);
      std::swap(batch, loop.ops);
      std::swap(flushes, loop.flush_q);
      loop.wake_pending = false;
    }
    for (auto& op : batch) op();
    for (auto& conn : flushes) {
      if (conn->loop_.load(std::memory_order_acquire) != &loop) {
        request_flush(conn);  // migrated after the request: chase it
        continue;
      }
      {
        std::lock_guard<std::mutex> lock(conn->mu_);
        conn->flush_requested_ = false;
      }
      loop_flush(loop, conn);
    }
    if (stopping_.load(std::memory_order_acquire)) break;

    loop.advance_timers();

    int timeout = loop.next_timeout_ms();
    {
      std::lock_guard<std::mutex> lock(loop.ops_mu);
      if (!loop.ops.empty() || !loop.flush_q.empty()) {
        timeout = 0;  // op posted from a timer/callback
      }
    }
    const int n = ::epoll_wait(loop.epfd, events, kMaxEvents, timeout);
    if (m_wakeups_ != nullptr) m_wakeups_->inc();
    if (n < 0) {
      if (errno == EINTR) continue;
      break;  // epoll fd itself failed; nothing recoverable
    }
    if (n > 0 && m_epoll_batch_ != nullptr) {
      m_epoll_batch_->record(static_cast<double>(n));
    }
    if (n == 0 && timeout > 0 &&
        loop.now_s() - loop.last_trim_s >= kPoolTrimIntervalS) {
      // Idle wake-up with nothing to do: give pooled buffers back.
      loop.last_trim_s = loop.now_s();
      loop.pool.trim(*this);
    }
    for (int i = 0; i < n; ++i) {
      const int fd = events[i].data.fd;
      const std::uint32_t mask = events[i].events;
      if (fd == loop.evfd) {
        std::uint64_t drained = 0;
        [[maybe_unused]] auto r = ::read(loop.evfd, &drained, sizeof(drained));
        continue;
      }
      if (auto lit = loop.listeners.find(fd); lit != loop.listeners.end()) {
        do_accept(loop, fd);
        continue;
      }
      auto cit = loop.conns.find(fd);
      if (cit == loop.conns.end()) continue;  // closed earlier in this batch
      std::shared_ptr<Conn> conn = cit->second;
      if ((mask & (EPOLLIN | EPOLLHUP | EPOLLERR)) != 0) {
        handle_readable(loop, conn);
      }
      if (!conn->closed_ && (mask & EPOLLOUT) != 0) {
        handle_writable(loop, conn);
      }
    }
  }

  // Shutdown: refuse further posts, run stragglers, close every connection
  // (firing on_close on this thread, as documented). Pending flush requests
  // are dropped — the close below discards queued output anyway.
  {
    std::lock_guard<std::mutex> lock(loop.ops_mu);
    loop.stopped = true;
  }
  std::vector<std::function<void()>> rest;
  {
    std::lock_guard<std::mutex> lock(loop.ops_mu);
    std::swap(rest, loop.ops);
    loop.flush_q.clear();
  }
  for (auto& op : rest) op();
  std::vector<std::shared_ptr<Conn>> remaining;
  remaining.reserve(loop.conns.size());
  for (auto& [fd, conn] : loop.conns) remaining.push_back(conn);
  for (auto& conn : remaining) do_close(loop, conn);
  for (auto& [fd, state] : loop.listeners) {
    if (state.armed) ::epoll_ctl(loop.epfd, EPOLL_CTL_DEL, fd, nullptr);
  }
  loop.listeners.clear();
}

void Reactor::do_accept(Loop& loop, int listen_fd) {
  auto it = loop.listeners.find(listen_fd);
  if (it == loop.listeners.end()) return;
  while (true) {
    const int fd =
        ::accept4(listen_fd, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd >= 0) {
      int yes = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &yes, sizeof(yes));
      it->second.backoff_s = 0.0;
      it->second.on_accept(fd);
      // The handler may have removed the listener (server stopping).
      it = loop.listeners.find(listen_fd);
      if (it == loop.listeners.end()) return;
      continue;
    }
    if (errno == EINTR || errno == ECONNABORTED || errno == EPROTO) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;
    if (errno == EMFILE || errno == ENFILE || errno == ENOBUFS ||
        errno == ENOMEM) {
      // Out of descriptors: spinning on accept would peg the loop without
      // ever succeeding. Withdraw the listener and retry after a backoff —
      // pending connections sit in the kernel backlog meanwhile.
      if (m_accept_rejected_ != nullptr) m_accept_rejected_->inc();
      double& backoff = it->second.backoff_s;
      backoff = (backoff <= 0.0)
                    ? kAcceptBackoffMinS
                    : std::min(backoff * 2.0, kAcceptBackoffMaxS);
      ::epoll_ctl(loop.epfd, EPOLL_CTL_DEL, listen_fd, nullptr);
      it->second.armed = false;
      Timer timer;
      timer.id = next_timer_.fetch_add(1, std::memory_order_relaxed);
      auto ticks = static_cast<std::uint64_t>(backoff / Loop::kTickS);
      timer.deadline_tick =
          loop.now_tick() + std::max<std::uint64_t>(1, ticks);
      timer.fn = [this, &loop, listen_fd] {
        auto lit = loop.listeners.find(listen_fd);
        if (lit == loop.listeners.end()) return;  // removed while backed off
        epoll_event ev{};
        ev.events = EPOLLIN;
        ev.data.fd = listen_fd;
        if (::epoll_ctl(loop.epfd, EPOLL_CTL_ADD, listen_fd, &ev) == 0) {
          lit->second.armed = true;
        }
        do_accept(loop, listen_fd);  // drain whatever queued during backoff
      };
      loop.insert_timer(std::move(timer));
      return;
    }
    // Listener closed or unusable (EBADF, EINVAL): withdraw it.
    if (it->second.armed) {
      ::epoll_ctl(loop.epfd, EPOLL_CTL_DEL, listen_fd, nullptr);
    }
    loop.listeners.erase(it);
    return;
  }
}

void Reactor::update_epoll(Loop& loop, const std::shared_ptr<Conn>& conn) {
  if (!conn->registered_ || conn->closed_) return;
  epoll_event ev{};
  ev.events = 0;
  if (conn->read_on_ && !conn->read_paused_bp_) ev.events |= EPOLLIN;
  if (conn->epollout_) ev.events |= EPOLLOUT;
  ev.data.fd = conn->fd_;
  ::epoll_ctl(loop.epfd, EPOLL_CTL_MOD, conn->fd_, &ev);
}

void Reactor::handle_readable(Loop& loop, const std::shared_ptr<Conn>& conn) {
  if (conn->closed_ || !conn->read_on_) return;
  std::size_t budget = kReadBudget;
  while (budget > 0 && !conn->closed_ && !conn->read_paused_bp_) {
    std::uint8_t* dst;
    std::size_t want;
    if (!conn->reading_payload_) {
      dst = conn->header_ + conn->header_got_;
      want = wire::kFrameHeaderBytes - conn->header_got_;
    } else {
      dst = conn->payload_.data() + conn->payload_got_;
      want = conn->cur_len_ - conn->payload_got_;
    }
    const ssize_t n = ::recv(conn->fd_, dst, std::min(want, budget), 0);
    if (n == 0) {  // peer closed
      do_close(loop, conn);
      return;
    }
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      do_close(loop, conn);
      return;
    }
    budget -= static_cast<std::size_t>(n);
    if (!conn->reading_payload_) {
      conn->header_got_ += static_cast<std::size_t>(n);
      if (conn->header_got_ < wire::kFrameHeaderBytes) continue;
      std::uint32_t len = 0;
      std::uint64_t corr = 0;
      for (int b = 0; b < 4; ++b) {
        len |= static_cast<std::uint32_t>(conn->header_[b]) << (8 * b);
      }
      for (int b = 0; b < 8; ++b) {
        corr |= static_cast<std::uint64_t>(conn->header_[4 + b]) << (8 * b);
      }
      if (len > wire::kMaxFrameBytes) {  // corrupted length; don't allocate it
        do_close(loop, conn);
        return;
      }
      conn->header_got_ = 0;
      conn->cur_corr_ = corr;
      conn->cur_len_ = len;
      conn->payload_got_ = 0;
      if (len == 0) {
        deliver_frame(loop, conn, corr, {});
        continue;
      }
      conn->payload_ = loop.pool.acquire(*this, len);
      conn->reading_payload_ = true;
    } else {
      conn->payload_got_ += static_cast<std::size_t>(n);
      if (conn->payload_got_ < conn->cur_len_) continue;
      conn->reading_payload_ = false;
      std::vector<std::uint8_t> payload = std::move(conn->payload_);
      conn->payload_ = {};
      deliver_frame(loop, conn, conn->cur_corr_, std::move(payload));
    }
  }
}

void Reactor::deliver_frame(Loop& loop, const std::shared_ptr<Conn>& conn,
                            std::uint64_t corr,
                            std::vector<std::uint8_t>&& payload) {
  if (conn->on_frame_) conn->on_frame_(conn, corr, std::move(payload));
  maybe_update_read_interest(loop, conn);
}

void Reactor::maybe_update_read_interest(Loop& loop,
                                         const std::shared_ptr<Conn>& conn) {
  if (conn->closed_) return;
  std::size_t queued;
  {
    std::lock_guard<std::mutex> lock(conn->mu_);
    queued = conn->queued_;
  }
  if (!conn->read_paused_bp_ && queued >= options_.high_watermark_bytes) {
    conn->read_paused_bp_ = true;
    if (m_read_paused_ != nullptr) m_read_paused_->inc();
    update_epoll(loop, conn);
  } else if (conn->read_paused_bp_ && queued <= options_.low_watermark_bytes) {
    conn->read_paused_bp_ = false;
    update_epoll(loop, conn);
  }
}

void Reactor::handle_writable(Loop& loop, const std::shared_ptr<Conn>& conn) {
  if (conn->closed_) return;
  if (conn->epollout_) {
    conn->epollout_ = false;
    if (conn->stall_start_ >= 0.0) {
      if (m_writable_stall_ != nullptr) {
        m_writable_stall_->record(loop.now_s() - conn->stall_start_);
      }
      conn->stall_start_ = -1.0;
    }
    update_epoll(loop, conn);
  }
  loop_flush(loop, conn);
}

void Reactor::arm_writable(Loop& loop, const std::shared_ptr<Conn>& conn) {
  if (conn->epollout_) return;
  conn->epollout_ = true;
  conn->stall_start_ = loop.now_s();
  update_epoll(loop, conn);
}

void Reactor::loop_flush(Loop& loop, const std::shared_ptr<Conn>& conn) {
  if (conn->closed_ || !conn->registered_) return;
  if (conn->output_paused_.load(std::memory_order_acquire) || conn->epollout_) {
    return;
  }

  // Fully-written buffers, recycled into this loop's pool once the
  // connection mutex is back off (the pool mutex is a leaf).
  std::vector<std::vector<std::uint8_t>> done_bufs;

  while (true) {
    iovec iov[kMaxIov];
    int niov = 0;
    std::size_t gathered = 0;
    double pause_s = 0.0;
    {
      // Producers only push_back, which never invalidates references to
      // existing deque elements, so the gathered pointers stay valid after
      // the lock is dropped; only this thread pops.
      std::lock_guard<std::mutex> lock(conn->mu_);
      std::size_t off = conn->front_off_;
      for (const auto& chunk : conn->outbox_) {
        if (chunk.pause_s > 0.0) {
          if (niov == 0) pause_s = chunk.pause_s;
          break;
        }
        if (niov == kMaxIov) break;
        iov[niov].iov_base =
            const_cast<std::uint8_t*>(chunk.bytes.data()) + off;
        iov[niov].iov_len = chunk.bytes.size() - off;
        gathered += iov[niov].iov_len;
        ++niov;
        off = 0;
      }
      if (pause_s > 0.0) conn->outbox_.pop_front();
    }
    if (pause_s > 0.0) {
      // Fault-injected delay: park the outbox on the timer wheel instead of
      // sleeping a thread. Bytes queued behind the marker wait it out. The
      // timer stays on this loop even if the connection migrates, so the
      // resume goes through request_flush to reach the then-current owner.
      conn->output_paused_.store(true, std::memory_order_release);
      Timer timer;
      timer.id = next_timer_.fetch_add(1, std::memory_order_relaxed);
      auto ticks = static_cast<std::uint64_t>(pause_s / Loop::kTickS);
      timer.deadline_tick = loop.now_tick() + std::max<std::uint64_t>(1, ticks);
      timer.fn = [this, conn] {
        conn->output_paused_.store(false, std::memory_order_release);
        request_flush(conn);
      };
      loop.insert_timer(std::move(timer));
      break;
    }
    if (niov == 0) break;  // outbox drained

    const ssize_t n = ::writev(conn->fd_, iov, niov);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        arm_writable(loop, conn);
        break;
      }
      do_close(loop, conn);
      return;
    }
    std::size_t frames_done = 0;
    {
      std::lock_guard<std::mutex> lock(conn->mu_);
      conn->queued_ -= static_cast<std::size_t>(n);
      std::size_t left = static_cast<std::size_t>(n);
      while (left > 0) {
        auto& front = conn->outbox_.front();
        const std::size_t remain = front.bytes.size() - conn->front_off_;
        if (left >= remain) {
          left -= remain;
          conn->front_off_ = 0;
          done_bufs.push_back(std::move(front.bytes));
          conn->outbox_.pop_front();
          ++frames_done;
        } else {
          conn->front_off_ += left;
          left = 0;
        }
      }
    }
    if (frames_done > 1 && m_coalesced_ != nullptr) {
      m_coalesced_->inc(frames_done - 1);
    }
    if (static_cast<std::size_t>(n) < gathered) {  // partial write
      arm_writable(loop, conn);
      break;
    }
  }

  for (auto& buf : done_bufs) loop.pool.release(*this, std::move(buf));

  bool drained;
  bool close_after;
  {
    std::lock_guard<std::mutex> lock(conn->mu_);
    drained = conn->outbox_.empty();
    close_after = conn->close_after_flush_;
  }
  if (drained && close_after &&
      !conn->output_paused_.load(std::memory_order_acquire) &&
      !conn->epollout_) {
    do_close(loop, conn);
    return;
  }
  maybe_update_read_interest(loop, conn);
}

void Reactor::do_close(Loop& loop, const std::shared_ptr<Conn>& conn) {
  if (conn->closed_) return;
  conn->closed_ = true;
  std::deque<Conn::OutChunk> discarded;
  {
    std::lock_guard<std::mutex> lock(conn->mu_);
    conn->dead_ = true;
    discarded.swap(conn->outbox_);
    conn->queued_ = 0;
  }
  // Recycle whatever the connection was holding — unsent output and the
  // in-progress decode buffer go back to the owning loop's pool.
  for (auto& chunk : discarded) {
    if (!chunk.bytes.empty() || chunk.bytes.capacity() > 0) {
      loop.pool.release(*this, std::move(chunk.bytes));
    }
  }
  if (conn->payload_.capacity() > 0) {
    loop.pool.release(*this, std::move(conn->payload_));
    conn->payload_ = {};
  }
  if (conn->registered_) {
    ::epoll_ctl(loop.epfd, EPOLL_CTL_DEL, conn->fd_, nullptr);
    loop.conns.erase(conn->fd_);
    open_conns_.fetch_sub(1, std::memory_order_relaxed);
    if (m_connections_ != nullptr) {
      m_connections_->set(static_cast<double>(
          open_conns_.load(std::memory_order_relaxed)));
    }
  }
  ::close(conn->fd_);
  conn->fd_ = -1;
  if (conn->on_close_) conn->on_close_(conn);
  conn->on_frame_ = nullptr;
  conn->on_close_ = nullptr;
}

// ---------------------------------------------------------------------------
// Conn
// ---------------------------------------------------------------------------

Status Reactor::Conn::send_frame(std::uint64_t corr,
                                 const std::vector<std::uint8_t>& payload) {
  const std::size_t total = wire::kFrameHeaderBytes + payload.size();
  std::vector<std::uint8_t> bytes;
  Loop* loop = loop_.load(std::memory_order_acquire);
  if (loop != nullptr) {
    bytes = loop->pool.acquire(*reactor_, total);
  } else {
    bytes.resize(total);
  }
  wire::put_frame_header(bytes.data(), corr,
                         static_cast<std::uint32_t>(payload.size()));
  if (!payload.empty()) {
    std::memcpy(bytes.data() + wire::kFrameHeaderBytes, payload.data(),
                payload.size());
  }
  return send_raw(std::move(bytes));
}

Status Reactor::Conn::send_raw(std::vector<std::uint8_t> bytes) {
  bool need_post = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (dead_) return make_error(ErrorCode::kClosed, "connection closed");
    queued_ += bytes.size();
    OutChunk chunk;
    chunk.bytes = std::move(bytes);
    outbox_.push_back(std::move(chunk));
    if (!flush_requested_) {
      flush_requested_ = true;
      need_post = true;
    }
  }
  if (need_post) reactor_->request_flush(shared_from_this());
  return ok_status();
}

void Reactor::Conn::set_affinity(std::uint64_t key) {
  Reactor* reactor = reactor_;
  if (reactor == nullptr || reactor->loops_.size() <= 1) return;
  Loop& target = reactor->loop_for_key(key);
  if (loop_.load(std::memory_order_acquire) == &target) return;
  reactor->post_to_owner(
      shared_from_this(),
      [reactor, &target](Loop& owner, const std::shared_ptr<Conn>& conn) {
        reactor->migrate(owner, conn, target);
      });
}

void Reactor::Conn::recycle(std::vector<std::uint8_t>&& buffer) {
  Reactor* reactor = reactor_;
  Loop* loop = loop_.load(std::memory_order_acquire);
  if (reactor == nullptr || loop == nullptr) return;
  loop->pool.release(*reactor, std::move(buffer));
}

int Reactor::Conn::owner_loop_index() const {
  Loop* loop = loop_.load(std::memory_order_acquire);
  return loop != nullptr ? loop->index : -1;
}

void Reactor::Conn::pause_output(double delay_s) {
  bool need_post = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (dead_) return;
    OutChunk marker;
    marker.pause_s = delay_s;
    outbox_.push_back(std::move(marker));
    if (!flush_requested_) {
      flush_requested_ = true;
      need_post = true;
    }
  }
  if (need_post) reactor_->request_flush(shared_from_this());
}

void Reactor::Conn::close_after_flush() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (dead_) return;
    dead_ = true;
    close_after_flush_ = true;
  }
  reactor_->post_to_owner(
      shared_from_this(),
      [](Loop& owner, const std::shared_ptr<Conn>& conn) {
        if (conn->closed_) return;
        conn->read_on_ = false;
        conn->reactor_->update_epoll(owner, conn);
        conn->reactor_->loop_flush(owner, conn);
      });
}

void Reactor::Conn::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (dead_ && close_after_flush_) {
      close_after_flush_ = false;  // upgrade a graceful close to immediate
    } else if (dead_) {
      return;
    }
    dead_ = true;
  }
  reactor_->post_to_owner(shared_from_this(),
                          [](Loop& owner, const std::shared_ptr<Conn>& conn) {
                            conn->reactor_->do_close(owner, conn);
                          });
}

std::size_t Reactor::Conn::queued_bytes() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_;
}

bool Reactor::Conn::overloaded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queued_ >= reactor_->options_.high_watermark_bytes;
}

}  // namespace falkon::net
