#include "net/rpc.h"

#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <optional>
#include <thread>

#include "common/logging.h"

namespace falkon::net {
namespace {

void corrupt_payload(std::vector<std::uint8_t>& payload) {
  // Flip payload bytes only: the peer reads a well-framed message that
  // fails to decode, exercising the protocol-error path without
  // desynchronising the stream. The type byte lands outside the enum so
  // corruption is always detected, never silently misread.
  if (!payload.empty()) {
    payload[0] ^= 0x80;
    payload[payload.size() / 2] ^= 0xff;
  }
}

/// Write a header promising the full payload, deliver only half, then
/// sever: the peer's read_frame sees a truncated frame.
void truncate_and_sever(TcpStream& stream, std::uint64_t corr,
                        const std::vector<std::uint8_t>& payload) {
  std::uint8_t header[wire::kFrameHeaderBytes];
  wire::put_frame_header(header, corr,
                         static_cast<std::uint32_t>(payload.size()));
  (void)stream.write_all(header, wire::kFrameHeaderBytes);
  if (payload.size() > 1) {
    (void)stream.write_all(payload.data(), payload.size() / 2);
  }
  stream.shutdown();
}

/// The reactor-side equivalent: a raw byte run whose header promises the
/// full payload but whose body stops halfway. Queued through send_raw and
/// followed by close_after_flush, the peer sees a truncated frame.
std::vector<std::uint8_t> truncated_frame_bytes(
    std::uint64_t corr, const std::vector<std::uint8_t>& payload) {
  const std::size_t half = payload.size() > 1 ? payload.size() / 2 : 0;
  std::vector<std::uint8_t> bytes(wire::kFrameHeaderBytes + half);
  wire::put_frame_header(bytes.data(), corr,
                         static_cast<std::uint32_t>(payload.size()));
  if (half > 0) {
    std::memcpy(bytes.data() + wire::kFrameHeaderBytes, payload.data(), half);
  }
  return bytes;
}

/// Apply a sampled fault to an outgoing frame on a blocking stream (client
/// request path). A clean ok_status() means the caller should write
/// `payload` normally (it may have been corrupted in place — framing stays
/// aligned because the length prefix is intact); an error means the fault
/// consumed the frame and severed the stream.
Status apply_frame_fault(fault::FaultInjector* injector, fault::Site site,
                         TcpStream& stream, std::uint64_t corr,
                         std::vector<std::uint8_t>& payload) {
  if (injector == nullptr) return ok_status();
  const fault::Outcome outcome = injector->sample(site);
  switch (outcome.action) {
    case fault::Action::kDrop:
      stream.shutdown();
      return make_error(ErrorCode::kIoError, "injected connection drop");
    case fault::Action::kDelay:
      std::this_thread::sleep_for(
          std::chrono::duration<double>(std::max(outcome.param, 0.0)));
      return ok_status();
    case fault::Action::kCorrupt:
      corrupt_payload(payload);
      return ok_status();
    case fault::Action::kTruncate:
      truncate_and_sever(stream, corr, payload);
      return make_error(ErrorCode::kIoError, "injected frame truncation");
    default:
      return ok_status();
  }
}

}  // namespace

// ---- RpcServer -------------------------------------------------------

RpcServer::~RpcServer() { stop(); }

Status RpcServer::start(RpcHandler handler, std::uint16_t port,
                        fault::FaultInjector* fault, RpcServerOptions options) {
  const bool reuseport = options.reactor != nullptr
                             ? options.reactor->options().reuseport
                             : options.reuseport;
  auto listener = TcpListener::bind(port, reuseport);
  if (!listener.ok()) return listener.error();
  listener_ = listener.take();
  handler_ = std::move(handler);
  affinity_key_ = std::move(options.affinity_key);
  fault_ = fault;
  sndbuf_bytes_ = options.sndbuf_bytes;
  // Handlers may block (wait_results); they always run off-loop, so even
  // handler_threads == 0 gets one worker — that also preserves strict FIFO
  // handling, which several protocol tests rely on.
  pool_ = std::make_unique<ThreadPool>(std::max<std::size_t>(1, options.handler_threads),
                                       "rpc");
  if (options.reactor != nullptr) {
    reactor_ = options.reactor;
  } else {
    ReactorOptions ropts;
    ropts.n_loops = options.n_loops;
    ropts.high_watermark_bytes = options.high_watermark_bytes;
    ropts.low_watermark_bytes = options.low_watermark_bytes;
    ropts.obs = options.obs;
    ropts.reuseport = options.reuseport;
    owned_reactor_ = std::make_unique<Reactor>(ropts);
    if (auto status = owned_reactor_->start(); !status.ok()) {
      listener_.close();
      return status;
    }
    reactor_ = owned_reactor_.get();
  }
  reactor_->add_listener(listener_.fd(), [this](int fd) { on_accept(fd); });
  if (reuseport) {
    // One sibling listener per remaining loop; consecutive add_listener
    // calls land on consecutive loops, so the set covers every loop and
    // the kernel's reuseport hash spreads accepts across them.
    for (int i = 1; i < reactor_->n_loops(); ++i) {
      auto sibling = TcpListener::bind(listener_.port(), true);
      if (!sibling.ok()) break;  // degraded, never fatal: primary accepts
      siblings_.push_back(sibling.take());
      reactor_->add_listener(siblings_.back().fd(),
                             [this](int fd) { on_accept(fd); });
    }
  }
  started_ = true;
  return ok_status();
}

void RpcServer::stop() {
  if (!started_) return;
  stopping_.store(true);
  reactor_->remove_listener(listener_.fd());
  for (auto& sibling : siblings_) reactor_->remove_listener(sibling.fd());
  {
    std::lock_guard lock(mu_);
    for (auto& weak : connections_) {
      if (auto conn = weak.lock()) conn->close();
    }
  }
  // After the barrier every close has been processed and no frame or close
  // callback is still running on a loop thread.
  reactor_->barrier();
  listener_.close();
  for (auto& sibling : siblings_) sibling.close();
  siblings_.clear();
  // Handlers still in flight enqueue replies into severed connections and
  // fail harmlessly; shutdown() drains them before returning.
  if (pool_) pool_->shutdown();
  if (owned_reactor_) owned_reactor_->stop();
  started_ = false;
}

std::size_t RpcServer::active_connections() const {
  std::lock_guard lock(mu_);
  std::size_t alive = 0;
  for (const auto& weak : connections_) {
    if (!weak.expired()) ++alive;
  }
  return alive;
}

void RpcServer::on_accept(int fd) {
  if (stopping_.load()) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
    return;
  }
  if (sndbuf_bytes_ > 0) (void)set_send_buffer(fd, sndbuf_bytes_);
  auto conn = reactor_->adopt(
      fd,
      [this](const std::shared_ptr<Reactor::Conn>& c, std::uint64_t corr,
             std::vector<std::uint8_t>&& payload) {
        on_frame(c, corr, std::move(payload));
      },
      [this](const std::shared_ptr<Reactor::Conn>& c) { on_close(c); });
  std::lock_guard lock(mu_);
  connections_.erase(
      std::remove_if(connections_.begin(), connections_.end(),
                     [](const std::weak_ptr<Reactor::Conn>& weak) {
                       return weak.expired();
                     }),
      connections_.end());
  connections_.push_back(conn);
}

void RpcServer::on_frame(const std::shared_ptr<Reactor::Conn>& conn,
                         std::uint64_t corr,
                         std::vector<std::uint8_t>&& payload) {
  // Decode on the pool too: a large TaskBundle deserialisation would
  // otherwise stall every other connection on this loop.
  auto submitted =
      pool_->submit([this, conn, corr, payload = std::move(payload)] mutable {
        auto request = wire::decode_message(payload);
        // Decoding deep-copies; the raw buffer can go back to the pool now.
        conn->recycle(std::move(payload));
        if (!request.ok()) {
          enqueue_reply(conn, corr,
                        wire::ErrorReply{ErrorCode::kProtocolError,
                                         request.error().message});
          return;
        }
        if (affinity_key_) {
          // Pin the connection to the loop that owns this executor's shard.
          // A no-op once the connection is already there, so calling per
          // request costs one atomic load.
          const std::uint64_t key = affinity_key_(request.value());
          if (key != 0) conn->set_affinity(key);
        }
        enqueue_reply(conn, corr, handler_(request.value()));
      });
  if (!submitted.ok()) conn->close();  // pool closed: server stopping
}

void RpcServer::on_close(const std::shared_ptr<Reactor::Conn>& conn) {
  std::lock_guard lock(mu_);
  connections_.erase(
      std::remove_if(connections_.begin(), connections_.end(),
                     [&](const std::weak_ptr<Reactor::Conn>& weak) {
                       auto locked = weak.lock();
                       return locked == nullptr || locked == conn;
                     }),
      connections_.end());
}

void RpcServer::enqueue_reply(const std::shared_ptr<Reactor::Conn>& conn,
                              std::uint64_t corr, const wire::Message& reply) {
  // The reused thread-local Writer stops allocating once it has grown to
  // the largest reply; send_frame copies exactly one framed buffer out.
  thread_local wire::Writer scratch;
  wire::encode_message_into(scratch, reply);
  if (fault_ != nullptr) {
    // Reply-site faults, reactor flavor: the outbox already serialises the
    // stream, so "frames ahead of the faulted one were logically sent"
    // falls out of close_after_flush, and delay becomes a pause marker on
    // the timer wheel instead of a sleeping thread.
    const fault::Outcome outcome = fault_->sample(fault::Site::kRpcReply);
    switch (outcome.action) {
      case fault::Action::kCorrupt:
        corrupt_payload(scratch.buffer());
        break;
      case fault::Action::kDelay:
        conn->pause_output(std::max(outcome.param, 0.0));
        break;
      case fault::Action::kDrop:
        conn->close_after_flush();
        return;
      case fault::Action::kTruncate:
        (void)conn->send_raw(truncated_frame_bytes(corr, scratch.data()));
        conn->close_after_flush();
        return;
      default:
        break;
    }
  }
  (void)conn->send_frame(corr, scratch.data());
}

// ---- RpcClient -------------------------------------------------------

struct RpcClient::Impl {
  TcpStream stream;
  fault::FaultInjector* fault{nullptr};
  obs::Gauge* m_inflight{nullptr};

  struct CallState {
    std::mutex mu;
    std::condition_variable cv;
    bool done{false};
    std::optional<Result<wire::Message>> reply;
  };

  std::mutex write_mu;  // serialises frame writes (and request faults)
  std::mutex mu;        // guards pending/next_corr/broken
  std::unordered_map<std::uint64_t, std::shared_ptr<CallState>> pending;
  std::uint64_t next_corr{1};
  bool broken{false};
  Error broken_error{ErrorCode::kClosed, "connection closed"};
  std::thread reader;

  static void complete(const std::shared_ptr<CallState>& cs,
                       Result<wire::Message> reply) {
    {
      std::lock_guard lock(cs->mu);
      cs->reply.emplace(std::move(reply));
      cs->done = true;
    }
    cs->cv.notify_all();
  }

  void set_inflight_locked() {
    if (m_inflight != nullptr) {
      m_inflight->set(static_cast<double>(pending.size()));
    }
  }

  void fail_all(const Error& error) {
    std::unordered_map<std::uint64_t, std::shared_ptr<CallState>> orphans;
    {
      std::lock_guard lock(mu);
      broken = true;
      broken_error = error;
      orphans.swap(pending);
      set_inflight_locked();
    }
    for (auto& [corr, cs] : orphans) complete(cs, error);
  }

  void reader_loop() {
    wire::Frame frame;
    for (;;) {
      if (auto status = wire::read_frame(stream, frame); !status.ok()) {
        // Stream-level failure: every call in flight was mapped to this
        // connection, so all of them fail with the stream's error.
        fail_all(status.error());
        return;
      }
      std::shared_ptr<CallState> cs;
      {
        std::lock_guard lock(mu);
        auto it = pending.find(frame.corr);
        if (it != pending.end()) {
          cs = std::move(it->second);
          pending.erase(it);
          set_inflight_locked();
        }
      }
      if (!cs) continue;  // reply to an abandoned call
      auto decoded = wire::decode_message(frame.payload);
      if (!decoded.ok()) {
        // Corrupt payload inside intact framing: only the correlated call
        // fails; the stream stays aligned and later replies still route.
        complete(cs, decoded.error());
        continue;
      }
      if (const auto* error = std::get_if<wire::ErrorReply>(&decoded.value())) {
        complete(cs, Error{error->code, error->message});
        continue;
      }
      complete(cs, decoded.take());
    }
  }
};

RpcClient::RpcClient(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
RpcClient::RpcClient(RpcClient&&) noexcept = default;
RpcClient& RpcClient::operator=(RpcClient&&) noexcept = default;

RpcClient::~RpcClient() {
  if (!impl_) return;
  impl_->stream.shutdown();
  if (impl_->reader.joinable()) impl_->reader.join();
}

Result<RpcClient> RpcClient::connect(const std::string& host,
                                     std::uint16_t port,
                                     fault::FaultInjector* fault,
                                     obs::Obs* obs) {
  if (fault != nullptr) {
    const fault::Outcome outcome = fault->sample(fault::Site::kRpcConnect);
    if (outcome.action == fault::Action::kDrop) {
      return make_error(ErrorCode::kUnavailable, "injected connect refusal");
    }
    if (outcome.action == fault::Action::kDelay) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(std::max(outcome.param, 0.0)));
    }
  }
  auto stream = TcpStream::connect(host, port);
  if (!stream.ok()) return stream.error();
  auto impl = std::make_unique<Impl>();
  impl->stream = stream.take();
  impl->fault = fault;
  if (obs != nullptr) {
    impl->m_inflight = &obs->registry().gauge("falkon.net.rpc.inflight");
  }
  auto* raw = impl.get();
  impl->reader = std::thread([raw] { raw->reader_loop(); });
  return RpcClient(std::move(impl));
}

Result<wire::Message> RpcClient::call(const wire::Message& request) {
  Impl* impl = impl_.get();
  auto cs = std::make_shared<Impl::CallState>();
  std::uint64_t corr;
  {
    std::lock_guard lock(impl->mu);
    if (impl->broken) return impl->broken_error;
    corr = impl->next_corr++;
    impl->pending.emplace(corr, cs);
    impl->set_inflight_locked();
  }
  thread_local wire::Writer scratch;
  wire::encode_message_into(scratch, request);
  Status wrote = ok_status();
  {
    std::lock_guard lock(impl->write_mu);
    wrote = apply_frame_fault(impl->fault, fault::Site::kRpcRequest,
                              impl->stream, corr, scratch.buffer());
    if (wrote.ok()) {
      wrote = wire::write_frame(impl->stream, corr, scratch.buffer());
    }
  }
  if (!wrote.ok()) {
    {
      std::lock_guard lock(impl->mu);
      impl->pending.erase(corr);
      impl->set_inflight_locked();
    }
    return wrote.error();
  }
  std::unique_lock lock(cs->mu);
  cs->cv.wait(lock, [&] { return cs->done; });
  return std::move(*cs->reply);
}

void RpcClient::close() {
  if (impl_) impl_->stream.shutdown();
}

// ---- PushServer ------------------------------------------------------

PushServer::~PushServer() { stop(); }

Status PushServer::start(std::uint16_t port, fault::FaultInjector* fault,
                         obs::Obs* obs, PushServerOptions options) {
  const bool reuseport = options.reactor != nullptr
                             ? options.reactor->options().reuseport
                             : options.reuseport;
  auto listener = TcpListener::bind(port, reuseport);
  if (!listener.ok()) return listener.error();
  listener_ = listener.take();
  fault_ = fault;
  if (obs != nullptr) {
    m_bp_drops_ =
        &obs->registry().counter("falkon.net.push.backpressure_drops");
  }
  if (options.reactor != nullptr) {
    reactor_ = options.reactor;
  } else {
    ReactorOptions ropts;
    ropts.n_loops = options.n_loops;
    ropts.high_watermark_bytes = options.high_watermark_bytes;
    ropts.low_watermark_bytes = options.low_watermark_bytes;
    ropts.obs = obs;
    ropts.reuseport = options.reuseport;
    owned_reactor_ = std::make_unique<Reactor>(ropts);
    if (auto status = owned_reactor_->start(); !status.ok()) {
      listener_.close();
      return status;
    }
    reactor_ = owned_reactor_.get();
  }
  reactor_->add_listener(listener_.fd(), [this](int fd) { on_accept(fd); });
  if (reuseport) {
    for (int i = 1; i < reactor_->n_loops(); ++i) {
      auto sibling = TcpListener::bind(listener_.port(), true);
      if (!sibling.ok()) break;  // degraded, never fatal: primary accepts
      siblings_.push_back(sibling.take());
      reactor_->add_listener(siblings_.back().fd(),
                             [this](int fd) { on_accept(fd); });
    }
  }
  started_ = true;
  return ok_status();
}

void PushServer::stop() {
  if (!started_) return;
  stopping_.store(true);
  reactor_->remove_listener(listener_.fd());
  for (auto& sibling : siblings_) reactor_->remove_listener(sibling.fd());
  {
    std::lock_guard lock(mu_);
    subscribers_.clear();
    for (auto& weak : connections_) {
      if (auto conn = weak.lock()) conn->close();
    }
  }
  reactor_->barrier();
  listener_.close();
  for (auto& sibling : siblings_) sibling.close();
  siblings_.clear();
  if (owned_reactor_) owned_reactor_->stop();
  started_ = false;
}

void PushServer::on_accept(int fd) {
  if (stopping_.load()) {
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
    return;
  }
  auto conn = reactor_->adopt(
      fd,
      [this](const std::shared_ptr<Reactor::Conn>& c, std::uint64_t /*corr*/,
             std::vector<std::uint8_t>&& payload) {
        on_frame(c, std::move(payload));
      },
      [this](const std::shared_ptr<Reactor::Conn>& c) { on_close(c); });
  std::lock_guard lock(mu_);
  connections_.erase(
      std::remove_if(connections_.begin(), connections_.end(),
                     [](const std::weak_ptr<Reactor::Conn>& weak) {
                       return weak.expired();
                     }),
      connections_.end());
  connections_.push_back(conn);
}

void PushServer::on_frame(const std::shared_ptr<Reactor::Conn>& conn,
                          std::vector<std::uint8_t>&& payload) {
  // The only executor->dispatcher traffic on this channel is the tiny
  // subscription Notify; decode it inline on the loop (no handshake
  // threads). Anything else is a protocol violation and severs the
  // connection.
  auto message = wire::decode_message(payload);
  conn->recycle(std::move(payload));
  if (!message.ok()) {
    conn->close();
    return;
  }
  const auto* notify = std::get_if<wire::Notify>(&message.value());
  if (notify == nullptr) {
    conn->close();
    return;
  }
  std::shared_ptr<Reactor::Conn> displaced;
  {
    std::lock_guard lock(mu_);
    if (stopping_.load()) {
      conn->close();
      return;
    }
    auto& slot = subscribers_[notify->executor_id.value];
    if (slot != conn) displaced = std::move(slot);
    slot = conn;
  }
  // The subscription key is the push key for the connection's lifetime;
  // migrate it to the key's loop so pushes for this executor are enqueued
  // and flushed on the same shard that owns its RPC connection.
  conn->set_affinity(notify->executor_id.value);
  if (displaced) displaced->close();
}

void PushServer::on_close(const std::shared_ptr<Reactor::Conn>& conn) {
  std::lock_guard lock(mu_);
  for (auto it = subscribers_.begin(); it != subscribers_.end(); ++it) {
    if (it->second == conn) {
      subscribers_.erase(it);
      break;
    }
  }
  connections_.erase(
      std::remove_if(connections_.begin(), connections_.end(),
                     [&](const std::weak_ptr<Reactor::Conn>& weak) {
                       auto locked = weak.lock();
                       return locked == nullptr || locked == conn;
                     }),
      connections_.end());
}

Status PushServer::push(std::uint64_t key, const wire::Message& message) {
  std::shared_ptr<Reactor::Conn> conn;
  {
    std::lock_guard lock(mu_);
    auto it = subscribers_.find(key);
    if (it == subscribers_.end()) {
      return make_error(ErrorCode::kNotFound,
                        "no subscriber with key " + std::to_string(key));
    }
    conn = it->second;
  }
  auto payload = wire::encode_message(message);
  if (fault_ != nullptr) {
    const fault::Outcome outcome = fault_->sample(fault::Site::kPushFrame);
    if (outcome.action == fault::Action::kDrop) {
      // A lost notification: reported as sent, never delivered. The
      // subscriber stays connected; the dispatcher's stale-notification
      // sweep is what recovers the executor.
      return ok_status();
    }
    if (outcome.action == fault::Action::kDelay) {
      conn->pause_output(std::max(outcome.param, 0.0));
    } else if (outcome.action == fault::Action::kCorrupt) {
      corrupt_payload(payload);
    }
  }
  if (conn->overloaded()) {
    // Slow subscriber past the high watermark: shed the notification
    // instead of buffering without bound. Like an injected drop, the
    // renotify sweep recovers the executor if the hint mattered.
    if (m_bp_drops_ != nullptr) m_bp_drops_->inc();
    return ok_status();
  }
  return conn->send_frame(0, payload);
}

void PushServer::drop_subscriber(std::uint64_t key) {
  std::shared_ptr<Reactor::Conn> conn;
  {
    std::lock_guard lock(mu_);
    auto it = subscribers_.find(key);
    if (it != subscribers_.end()) {
      conn = std::move(it->second);
      subscribers_.erase(it);
    }
  }
  if (conn) conn->close();
}

std::size_t PushServer::subscriber_count() const {
  std::lock_guard lock(mu_);
  return subscribers_.size();
}

// ---- PushReceiver ----------------------------------------------------

PushReceiver::~PushReceiver() { stop(); }

Status PushReceiver::start(const std::string& host, std::uint16_t port,
                           std::uint64_t key, Callback callback) {
  auto stream = TcpStream::connect(host, port);
  if (!stream.ok()) return stream.error();
  stream_ = std::make_shared<TcpStream>(stream.take());
  callback_ = std::move(callback);

  // Subscribe: a Notify frame carrying our key, flowing executor->dispatcher.
  wire::Notify subscribe;
  subscribe.executor_id = ExecutorId{key};
  if (auto status =
          wire::write_frame(*stream_, wire::encode_message(subscribe));
      !status.ok()) {
    return status;
  }
  read_thread_ = std::thread([this] { read_loop(); });
  return ok_status();
}

void PushReceiver::stop() {
  stopping_.store(true);
  if (stream_) stream_->shutdown();
  if (read_thread_.joinable()) read_thread_.join();
}

void PushReceiver::read_loop() {
  wire::Frame frame;
  for (;;) {
    if (auto status = wire::read_frame(*stream_, frame); !status.ok()) return;
    auto message = wire::decode_message(frame.payload);
    if (!message.ok()) continue;
    if (stopping_.load()) return;
    callback_(message.value());
  }
}

}  // namespace falkon::net
