#include "net/rpc.h"

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstring>
#include <optional>
#include <thread>

#include "common/logging.h"

namespace falkon::net {
namespace {

/// Frames drained from a connection outbox per gathered write. Bounds the
/// latency a just-enqueued reply waits behind a long drain while still
/// amortising the syscall across a burst.
constexpr std::size_t kMaxCoalesce = 16;

void corrupt_payload(std::vector<std::uint8_t>& payload) {
  // Flip payload bytes only: the peer reads a well-framed message that
  // fails to decode, exercising the protocol-error path without
  // desynchronising the stream. The type byte lands outside the enum so
  // corruption is always detected, never silently misread.
  if (!payload.empty()) {
    payload[0] ^= 0x80;
    payload[payload.size() / 2] ^= 0xff;
  }
}

/// Write a header promising the full payload, deliver only half, then
/// sever: the peer's read_frame sees a truncated frame.
void truncate_and_sever(TcpStream& stream, std::uint64_t corr,
                        const std::vector<std::uint8_t>& payload) {
  std::uint8_t header[wire::kFrameHeaderBytes];
  wire::put_frame_header(header, corr,
                         static_cast<std::uint32_t>(payload.size()));
  (void)stream.write_all(header, wire::kFrameHeaderBytes);
  if (payload.size() > 1) {
    (void)stream.write_all(payload.data(), payload.size() / 2);
  }
  stream.shutdown();
}

/// Apply a sampled fault to an outgoing frame. A clean ok_status() means
/// the caller should write `payload` normally (it may have been corrupted
/// in place — framing stays aligned because the length prefix is intact);
/// an error means the fault consumed the frame and severed the stream.
Status apply_frame_fault(fault::FaultInjector* injector, fault::Site site,
                         TcpStream& stream, std::uint64_t corr,
                         std::vector<std::uint8_t>& payload) {
  if (injector == nullptr) return ok_status();
  const fault::Outcome outcome = injector->sample(site);
  switch (outcome.action) {
    case fault::Action::kDrop:
      stream.shutdown();
      return make_error(ErrorCode::kIoError, "injected connection drop");
    case fault::Action::kDelay:
      std::this_thread::sleep_for(
          std::chrono::duration<double>(std::max(outcome.param, 0.0)));
      return ok_status();
    case fault::Action::kCorrupt:
      corrupt_payload(payload);
      return ok_status();
    case fault::Action::kTruncate:
      truncate_and_sever(stream, corr, payload);
      return make_error(ErrorCode::kIoError, "injected frame truncation");
    default:
      return ok_status();
  }
}

}  // namespace

// ---- RpcServer -------------------------------------------------------

RpcServer::~RpcServer() { stop(); }

Status RpcServer::start(RpcHandler handler, std::uint16_t port,
                        fault::FaultInjector* fault, RpcServerOptions options) {
  auto listener = TcpListener::bind(port);
  if (!listener.ok()) return listener.error();
  listener_ = listener.take();
  handler_ = std::move(handler);
  fault_ = fault;
  if (options.handler_threads > 0) {
    pool_ = std::make_unique<ThreadPool>(options.handler_threads, "rpc");
  }
  if (options.obs != nullptr) {
    m_coalesced_ =
        &options.obs->registry().counter("falkon.net.frames_coalesced");
  }
  started_ = true;
  accept_thread_ = std::thread([this] { accept_loop(); });
  return ok_status();
}

void RpcServer::stop() {
  if (!started_) return;
  stopping_.store(true);
  listener_.close();
  {
    std::lock_guard lock(mu_);
    for (auto& weak : connections_) {
      if (auto conn = weak.lock()) conn->stream->shutdown();
    }
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::list<ConnThread> threads;
  {
    std::lock_guard lock(mu_);
    threads.swap(connection_threads_);
  }
  for (auto& entry : threads) {
    if (entry.thread.joinable()) entry.thread.join();
  }
  // Handlers still in flight enqueue replies into severed connections and
  // fail harmlessly; shutdown() drains them before returning.
  if (pool_) pool_->shutdown();
  started_ = false;
}

std::size_t RpcServer::active_connections() const {
  std::lock_guard lock(mu_);
  std::size_t alive = 0;
  for (const auto& weak : connections_) {
    if (!weak.expired()) ++alive;
  }
  return alive;
}

void RpcServer::reap_finished_locked() {
  for (auto it = connection_threads_.begin();
       it != connection_threads_.end();) {
    if (it->done->load()) {
      if (it->thread.joinable()) it->thread.join();
      it = connection_threads_.erase(it);
    } else {
      ++it;
    }
  }
  connections_.erase(
      std::remove_if(connections_.begin(), connections_.end(),
                     [](const std::weak_ptr<Conn>& weak) {
                       return weak.expired();
                     }),
      connections_.end());
}

void RpcServer::accept_loop() {
  for (;;) {
    auto accepted = listener_.accept();
    if (!accepted.ok()) {
      if (stopping_.load()) return;
      LOG_WARN("rpc", "accept failed: %s", accepted.error().str().c_str());
      return;
    }
    auto conn = std::make_shared<Conn>();
    conn->stream = std::make_shared<TcpStream>(accepted.take());
    std::lock_guard lock(mu_);
    if (stopping_.load()) {
      conn->stream->shutdown();
      return;
    }
    // A long-lived dispatcher accepts one connection per executor ever
    // launched: reap finished reader threads here so the thread list tracks
    // live connections instead of growing without bound.
    reap_finished_locked();
    connections_.push_back(conn);
    auto done = std::make_shared<std::atomic<bool>>(false);
    ConnThread entry;
    entry.done = done;
    entry.thread = std::thread([this, conn, done] {
      serve_connection(conn);
      done->store(true);
    });
    connection_threads_.push_back(std::move(entry));
  }
}

void RpcServer::serve_connection(const std::shared_ptr<Conn>& conn) {
  wire::Frame frame;
  for (;;) {
    if (auto status = wire::read_frame(*conn->stream, frame); !status.ok()) {
      return;  // peer closed or connection severed
    }
    auto request = wire::decode_message(frame.payload);
    if (!request.ok()) {
      enqueue_reply(*conn, frame.corr,
                    wire::ErrorReply{ErrorCode::kProtocolError,
                                     request.error().message});
      continue;
    }
    if (pool_) {
      const std::uint64_t corr = frame.corr;
      auto submitted =
          pool_->submit([this, conn, corr, message = request.take()] {
            handle_request(conn, corr, message);
          });
      if (!submitted.ok()) return;  // pool closed: server stopping
    } else {
      handle_request(conn, frame.corr, request.value());
    }
  }
}

void RpcServer::handle_request(const std::shared_ptr<Conn>& conn,
                               std::uint64_t corr,
                               const wire::Message& request) {
  enqueue_reply(*conn, corr, handler_(request));
}

void RpcServer::enqueue_reply(Conn& conn, std::uint64_t corr,
                              const wire::Message& reply) {
  // The reused thread-local Writer stops allocating once it has grown to
  // the largest reply; the outbox copy is sized exactly.
  thread_local wire::Writer scratch;
  wire::encode_message_into(scratch, reply);
  wire::PendingFrame frame;
  frame.corr = corr;
  frame.payload = scratch.data();
  {
    std::lock_guard lock(conn.out_mu);
    if (conn.dead) return;
    conn.outbox.push_back(std::move(frame));
  }
  flush_outbox(conn);
}

void RpcServer::flush_outbox(Conn& conn) {
  // Caller-drains: whichever thread enqueues while nobody is writing takes
  // the writer role and drains the outbox in coalesced batches; later
  // enqueuers see `writing` and leave their frame for the active drainer.
  std::unique_lock lock(conn.out_mu);
  if (conn.writing || conn.dead) return;
  conn.writing = true;
  std::vector<wire::PendingFrame> batch;
  while (!conn.outbox.empty() && !conn.dead) {
    batch.clear();
    const std::size_t n = std::min(conn.outbox.size(), kMaxCoalesce);
    for (std::size_t i = 0; i < n; ++i) {
      batch.push_back(std::move(conn.outbox.front()));
      conn.outbox.pop_front();
    }
    lock.unlock();
    Status status = write_batch_faulted(conn, batch);
    lock.lock();
    if (!status.ok()) {
      conn.dead = true;
      conn.outbox.clear();
    }
  }
  conn.writing = false;
}

// Defined out of the header's sight: only flush_outbox calls this, under
// the `writing` flag, so header_scratch has a single writer at a time.
Status RpcServer::write_batch_faulted(Conn& conn,
                                      std::vector<wire::PendingFrame>& batch) {
  if (fault_ == nullptr) {
    if (batch.size() > 1 && m_coalesced_ != nullptr) {
      m_coalesced_->inc(batch.size() - 1);
    }
    return wire::write_frames(*conn.stream, batch.data(), batch.size(),
                              conn.header_scratch);
  }
  // Fault-injected path: sample each frame's fate in enqueue order, writing
  // the clean run so far before a fault that severs or delays the stream —
  // frames ahead of the faulted one were already logically sent.
  std::size_t begin = 0;
  auto flush_run = [&](std::size_t end) -> Status {
    if (end <= begin) return ok_status();
    if (end - begin > 1 && m_coalesced_ != nullptr) {
      m_coalesced_->inc(end - begin - 1);
    }
    auto status = wire::write_frames(*conn.stream, batch.data() + begin,
                                     end - begin, conn.header_scratch);
    begin = end;
    return status;
  };
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const fault::Outcome outcome = fault_->sample(fault::Site::kRpcReply);
    switch (outcome.action) {
      case fault::Action::kCorrupt:
        corrupt_payload(batch[i].payload);
        break;
      case fault::Action::kDelay: {
        if (auto status = flush_run(i); !status.ok()) return status;
        std::this_thread::sleep_for(
            std::chrono::duration<double>(std::max(outcome.param, 0.0)));
        break;
      }
      case fault::Action::kDrop:
        (void)flush_run(i);
        conn.stream->shutdown();
        return make_error(ErrorCode::kIoError, "injected connection drop");
      case fault::Action::kTruncate:
        (void)flush_run(i);
        truncate_and_sever(*conn.stream, batch[i].corr, batch[i].payload);
        return make_error(ErrorCode::kIoError, "injected frame truncation");
      default:
        break;
    }
  }
  return flush_run(batch.size());
}

// ---- RpcClient -------------------------------------------------------

struct RpcClient::Impl {
  TcpStream stream;
  fault::FaultInjector* fault{nullptr};
  obs::Gauge* m_inflight{nullptr};

  struct CallState {
    std::mutex mu;
    std::condition_variable cv;
    bool done{false};
    std::optional<Result<wire::Message>> reply;
  };

  std::mutex write_mu;  // serialises frame writes (and request faults)
  std::mutex mu;        // guards pending/next_corr/broken
  std::unordered_map<std::uint64_t, std::shared_ptr<CallState>> pending;
  std::uint64_t next_corr{1};
  bool broken{false};
  Error broken_error{ErrorCode::kClosed, "connection closed"};
  std::thread reader;

  static void complete(const std::shared_ptr<CallState>& cs,
                       Result<wire::Message> reply) {
    {
      std::lock_guard lock(cs->mu);
      cs->reply.emplace(std::move(reply));
      cs->done = true;
    }
    cs->cv.notify_all();
  }

  void set_inflight_locked() {
    if (m_inflight != nullptr) {
      m_inflight->set(static_cast<double>(pending.size()));
    }
  }

  void fail_all(const Error& error) {
    std::unordered_map<std::uint64_t, std::shared_ptr<CallState>> orphans;
    {
      std::lock_guard lock(mu);
      broken = true;
      broken_error = error;
      orphans.swap(pending);
      set_inflight_locked();
    }
    for (auto& [corr, cs] : orphans) complete(cs, error);
  }

  void reader_loop() {
    wire::Frame frame;
    for (;;) {
      if (auto status = wire::read_frame(stream, frame); !status.ok()) {
        // Stream-level failure: every call in flight was mapped to this
        // connection, so all of them fail with the stream's error.
        fail_all(status.error());
        return;
      }
      std::shared_ptr<CallState> cs;
      {
        std::lock_guard lock(mu);
        auto it = pending.find(frame.corr);
        if (it != pending.end()) {
          cs = std::move(it->second);
          pending.erase(it);
          set_inflight_locked();
        }
      }
      if (!cs) continue;  // reply to an abandoned call
      auto decoded = wire::decode_message(frame.payload);
      if (!decoded.ok()) {
        // Corrupt payload inside intact framing: only the correlated call
        // fails; the stream stays aligned and later replies still route.
        complete(cs, decoded.error());
        continue;
      }
      if (const auto* error = std::get_if<wire::ErrorReply>(&decoded.value())) {
        complete(cs, Error{error->code, error->message});
        continue;
      }
      complete(cs, decoded.take());
    }
  }
};

RpcClient::RpcClient(std::unique_ptr<Impl> impl) : impl_(std::move(impl)) {}
RpcClient::RpcClient(RpcClient&&) noexcept = default;
RpcClient& RpcClient::operator=(RpcClient&&) noexcept = default;

RpcClient::~RpcClient() {
  if (!impl_) return;
  impl_->stream.shutdown();
  if (impl_->reader.joinable()) impl_->reader.join();
}

Result<RpcClient> RpcClient::connect(const std::string& host,
                                     std::uint16_t port,
                                     fault::FaultInjector* fault,
                                     obs::Obs* obs) {
  if (fault != nullptr) {
    const fault::Outcome outcome = fault->sample(fault::Site::kRpcConnect);
    if (outcome.action == fault::Action::kDrop) {
      return make_error(ErrorCode::kUnavailable, "injected connect refusal");
    }
    if (outcome.action == fault::Action::kDelay) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(std::max(outcome.param, 0.0)));
    }
  }
  auto stream = TcpStream::connect(host, port);
  if (!stream.ok()) return stream.error();
  auto impl = std::make_unique<Impl>();
  impl->stream = stream.take();
  impl->fault = fault;
  if (obs != nullptr) {
    impl->m_inflight = &obs->registry().gauge("falkon.net.rpc.inflight");
  }
  auto* raw = impl.get();
  impl->reader = std::thread([raw] { raw->reader_loop(); });
  return RpcClient(std::move(impl));
}

Result<wire::Message> RpcClient::call(const wire::Message& request) {
  Impl* impl = impl_.get();
  auto cs = std::make_shared<Impl::CallState>();
  std::uint64_t corr;
  {
    std::lock_guard lock(impl->mu);
    if (impl->broken) return impl->broken_error;
    corr = impl->next_corr++;
    impl->pending.emplace(corr, cs);
    impl->set_inflight_locked();
  }
  thread_local wire::Writer scratch;
  wire::encode_message_into(scratch, request);
  Status wrote = ok_status();
  {
    std::lock_guard lock(impl->write_mu);
    wrote = apply_frame_fault(impl->fault, fault::Site::kRpcRequest,
                              impl->stream, corr, scratch.buffer());
    if (wrote.ok()) {
      wrote = wire::write_frame(impl->stream, corr, scratch.buffer());
    }
  }
  if (!wrote.ok()) {
    {
      std::lock_guard lock(impl->mu);
      impl->pending.erase(corr);
      impl->set_inflight_locked();
    }
    return wrote.error();
  }
  std::unique_lock lock(cs->mu);
  cs->cv.wait(lock, [&] { return cs->done; });
  return std::move(*cs->reply);
}

void RpcClient::close() {
  if (impl_) impl_->stream.shutdown();
}

// ---- PushServer ------------------------------------------------------

PushServer::~PushServer() { stop(); }

Status PushServer::start(std::uint16_t port, fault::FaultInjector* fault,
                         obs::Obs* obs) {
  auto listener = TcpListener::bind(port);
  if (!listener.ok()) return listener.error();
  listener_ = listener.take();
  fault_ = fault;
  if (obs != nullptr) {
    m_coalesced_ = &obs->registry().counter("falkon.net.frames_coalesced");
  }
  started_ = true;
  accept_thread_ = std::thread([this] { accept_loop(); });
  return ok_status();
}

void PushServer::stop() {
  if (!started_) return;
  stopping_.store(true);
  listener_.close();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::list<HandshakeThread> threads;
  {
    std::lock_guard lock(mu_);
    for (auto& [key, sub] : subscribers_) sub->stream->shutdown();
    subscribers_.clear();
    threads.swap(handshake_threads_);
  }
  for (auto& entry : threads) {
    if (entry.thread.joinable()) entry.thread.join();
  }
  started_ = false;
}

void PushServer::reap_finished_locked() {
  for (auto it = handshake_threads_.begin(); it != handshake_threads_.end();) {
    if (it->done->load()) {
      if (it->thread.joinable()) it->thread.join();
      it = handshake_threads_.erase(it);
    } else {
      ++it;
    }
  }
}

void PushServer::accept_loop() {
  for (;;) {
    auto accepted = listener_.accept();
    if (!accepted.ok()) return;
    auto stream = std::make_shared<TcpStream>(accepted.take());
    std::lock_guard lock(mu_);
    if (stopping_.load()) {
      stream->shutdown();
      return;
    }
    reap_finished_locked();
    // The subscription frame is read on its own thread so a slow or broken
    // client cannot stall the accept loop.
    auto done = std::make_shared<std::atomic<bool>>(false);
    HandshakeThread entry;
    entry.done = done;
    entry.thread = std::thread([this, stream, done] {
      auto frame = wire::read_frame(*stream);
      if (frame.ok()) {
        auto message = wire::decode_message(frame.value());
        if (message.ok()) {
          if (const auto* notify =
                  std::get_if<wire::Notify>(&message.value())) {
            std::lock_guard inner(mu_);
            if (!stopping_.load()) {
              auto sub = std::make_shared<Subscriber>();
              sub->stream = stream;
              subscribers_[notify->executor_id.value] = std::move(sub);
            }
          }
        }
      }
      done->store(true);
    });
    handshake_threads_.push_back(std::move(entry));
  }
}

Status PushServer::push(std::uint64_t key, const wire::Message& message) {
  std::shared_ptr<Subscriber> sub;
  {
    std::lock_guard lock(mu_);
    auto it = subscribers_.find(key);
    if (it == subscribers_.end()) {
      return make_error(ErrorCode::kNotFound,
                        "no subscriber with key " + std::to_string(key));
    }
    sub = it->second;
  }
  auto payload = wire::encode_message(message);
  if (fault_ != nullptr) {
    const fault::Outcome outcome = fault_->sample(fault::Site::kPushFrame);
    if (outcome.action == fault::Action::kDrop) {
      // A lost notification: reported as sent, never delivered. The
      // subscriber stays connected; the dispatcher's stale-notification
      // sweep is what recovers the executor.
      return ok_status();
    }
    if (outcome.action == fault::Action::kDelay) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(std::max(outcome.param, 0.0)));
    } else if (outcome.action == fault::Action::kCorrupt) {
      corrupt_payload(payload);
    }
  }
  {
    std::lock_guard lock(sub->out_mu);
    if (sub->dead) {
      return make_error(ErrorCode::kClosed, "subscriber channel severed");
    }
    wire::PendingFrame frame;
    frame.payload = std::move(payload);
    sub->outbox.push_back(std::move(frame));
  }
  return flush_subscriber(*sub, m_coalesced_);
}

Status PushServer::flush_subscriber(Subscriber& sub, obs::Counter* coalesced) {
  std::unique_lock lock(sub.out_mu);
  if (sub.writing || sub.dead) return ok_status();
  sub.writing = true;
  Status result = ok_status();
  std::vector<wire::PendingFrame> batch;
  while (!sub.outbox.empty() && !sub.dead) {
    batch.clear();
    const std::size_t n = std::min(sub.outbox.size(), kMaxCoalesce);
    for (std::size_t i = 0; i < n; ++i) {
      batch.push_back(std::move(sub.outbox.front()));
      sub.outbox.pop_front();
    }
    lock.unlock();
    if (batch.size() > 1 && coalesced != nullptr) {
      coalesced->inc(batch.size() - 1);
    }
    auto status = wire::write_frames(*sub.stream, batch.data(), batch.size(),
                                     sub.header_scratch);
    lock.lock();
    if (!status.ok()) {
      result = status;
      sub.dead = true;
      sub.outbox.clear();
    }
  }
  sub.writing = false;
  return result;
}

void PushServer::drop_subscriber(std::uint64_t key) {
  std::lock_guard lock(mu_);
  auto it = subscribers_.find(key);
  if (it != subscribers_.end()) {
    it->second->stream->shutdown();
    {
      std::lock_guard inner(it->second->out_mu);
      it->second->dead = true;
    }
    subscribers_.erase(it);
  }
}

std::size_t PushServer::subscriber_count() const {
  std::lock_guard lock(mu_);
  return subscribers_.size();
}

// ---- PushReceiver ----------------------------------------------------

PushReceiver::~PushReceiver() { stop(); }

Status PushReceiver::start(const std::string& host, std::uint16_t port,
                           std::uint64_t key, Callback callback) {
  auto stream = TcpStream::connect(host, port);
  if (!stream.ok()) return stream.error();
  stream_ = std::make_shared<TcpStream>(stream.take());
  callback_ = std::move(callback);

  // Subscribe: a Notify frame carrying our key, flowing executor->dispatcher.
  wire::Notify subscribe;
  subscribe.executor_id = ExecutorId{key};
  if (auto status =
          wire::write_frame(*stream_, wire::encode_message(subscribe));
      !status.ok()) {
    return status;
  }
  read_thread_ = std::thread([this] { read_loop(); });
  return ok_status();
}

void PushReceiver::stop() {
  stopping_.store(true);
  if (stream_) stream_->shutdown();
  if (read_thread_.joinable()) read_thread_.join();
}

void PushReceiver::read_loop() {
  wire::Frame frame;
  for (;;) {
    if (auto status = wire::read_frame(*stream_, frame); !status.ok()) return;
    auto message = wire::decode_message(frame.payload);
    if (!message.ok()) continue;
    if (stopping_.load()) return;
    callback_(message.value());
  }
}

}  // namespace falkon::net
