#include "net/rpc.h"

#include <algorithm>
#include <chrono>
#include <cstring>
#include <thread>

#include "common/logging.h"

namespace falkon::net {
namespace {

/// Apply a sampled fault to an outgoing frame. A clean ok_status() means
/// the caller should write `payload` normally (it may have been corrupted
/// in place — framing stays aligned because the length prefix is intact);
/// an error means the fault consumed the frame and severed the stream.
Status apply_frame_fault(fault::FaultInjector* injector, fault::Site site,
                         TcpStream& stream,
                         std::vector<std::uint8_t>& payload) {
  if (injector == nullptr) return ok_status();
  const fault::Outcome outcome = injector->sample(site);
  switch (outcome.action) {
    case fault::Action::kDrop:
      stream.shutdown();
      return make_error(ErrorCode::kIoError, "injected connection drop");
    case fault::Action::kDelay:
      std::this_thread::sleep_for(
          std::chrono::duration<double>(std::max(outcome.param, 0.0)));
      return ok_status();
    case fault::Action::kCorrupt:
      // Flip payload bytes only: the peer reads a well-framed message that
      // fails to decode, exercising the protocol-error path without
      // desynchronising the stream. The type byte lands outside the enum
      // so corruption is always detected, never silently misread.
      if (!payload.empty()) {
        payload[0] ^= 0x80;
        payload[payload.size() / 2] ^= 0xff;
      }
      return ok_status();
    case fault::Action::kTruncate: {
      // Write a header promising the full payload, deliver only half, then
      // sever: the peer's read_frame sees a truncated frame.
      const auto length = static_cast<std::uint32_t>(payload.size());
      std::uint8_t header[4];
      std::memcpy(header, &length, 4);
      (void)stream.write_all(header, 4);
      if (length > 1) (void)stream.write_all(payload.data(), length / 2);
      stream.shutdown();
      return make_error(ErrorCode::kIoError, "injected frame truncation");
    }
    default:
      return ok_status();
  }
}

}  // namespace

RpcServer::~RpcServer() { stop(); }

Status RpcServer::start(RpcHandler handler, std::uint16_t port,
                        fault::FaultInjector* fault) {
  auto listener = TcpListener::bind(port);
  if (!listener.ok()) return listener.error();
  listener_ = listener.take();
  handler_ = std::move(handler);
  fault_ = fault;
  started_ = true;
  accept_thread_ = std::thread([this] { accept_loop(); });
  return ok_status();
}

void RpcServer::stop() {
  if (!started_) return;
  stopping_.store(true);
  listener_.close();
  {
    std::lock_guard lock(mu_);
    for (auto& weak : connections_) {
      if (auto stream = weak.lock()) stream->shutdown();
    }
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard lock(mu_);
    threads.swap(connection_threads_);
  }
  for (auto& t : threads) {
    if (t.joinable()) t.join();
  }
  started_ = false;
}

std::size_t RpcServer::active_connections() const {
  std::lock_guard lock(mu_);
  std::size_t alive = 0;
  for (const auto& weak : connections_) {
    if (!weak.expired()) ++alive;
  }
  return alive;
}

void RpcServer::accept_loop() {
  for (;;) {
    auto accepted = listener_.accept();
    if (!accepted.ok()) {
      if (stopping_.load()) return;
      LOG_WARN("rpc", "accept failed: %s", accepted.error().str().c_str());
      return;
    }
    auto stream = std::make_shared<TcpStream>(accepted.take());
    std::lock_guard lock(mu_);
    if (stopping_.load()) {
      stream->shutdown();
      return;
    }
    connections_.push_back(stream);
    connection_threads_.emplace_back(
        [this, stream] { serve_connection(stream); });
  }
}

void RpcServer::serve_connection(std::shared_ptr<TcpStream> stream) {
  for (;;) {
    auto frame = wire::read_frame(*stream);
    if (!frame.ok()) return;  // peer closed or connection severed

    auto request = wire::decode_message(frame.value());
    wire::Message reply;
    if (!request.ok()) {
      reply = wire::ErrorReply{ErrorCode::kProtocolError,
                               request.error().message};
    } else {
      reply = handler_(request.value());
    }
    auto payload = wire::encode_message(reply);
    if (!apply_frame_fault(fault_, fault::Site::kRpcReply, *stream, payload)
             .ok()) {
      return;  // reply lost: the client sees a dead connection and retries
    }
    if (auto status = wire::write_frame(*stream, payload); !status.ok()) {
      return;
    }
  }
}

Result<RpcClient> RpcClient::connect(const std::string& host,
                                     std::uint16_t port,
                                     fault::FaultInjector* fault) {
  if (fault != nullptr) {
    const fault::Outcome outcome = fault->sample(fault::Site::kRpcConnect);
    if (outcome.action == fault::Action::kDrop) {
      return make_error(ErrorCode::kUnavailable, "injected connect refusal");
    }
    if (outcome.action == fault::Action::kDelay) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(std::max(outcome.param, 0.0)));
    }
  }
  auto stream = TcpStream::connect(host, port);
  if (!stream.ok()) return stream.error();
  return RpcClient(stream.take(), fault);
}

Result<wire::Message> RpcClient::call(const wire::Message& request) {
  std::lock_guard lock(mu_);
  auto payload = wire::encode_message(request);
  if (auto status =
          apply_frame_fault(fault_, fault::Site::kRpcRequest, stream_, payload);
      !status.ok()) {
    return status.error();
  }
  if (auto status = wire::write_frame(stream_, payload); !status.ok()) {
    return status.error();
  }
  auto frame = wire::read_frame(stream_);
  if (!frame.ok()) return frame.error();
  auto reply = wire::decode_message(frame.value());
  if (!reply.ok()) return reply.error();
  if (const auto* error = std::get_if<wire::ErrorReply>(&reply.value())) {
    return make_error(error->code, error->message);
  }
  return reply;
}

void RpcClient::close() { stream_.shutdown(); }

PushServer::~PushServer() { stop(); }

Status PushServer::start(std::uint16_t port, fault::FaultInjector* fault) {
  auto listener = TcpListener::bind(port);
  if (!listener.ok()) return listener.error();
  listener_ = listener.take();
  fault_ = fault;
  started_ = true;
  accept_thread_ = std::thread([this] { accept_loop(); });
  return ok_status();
}

void PushServer::stop() {
  if (!started_) return;
  stopping_.store(true);
  listener_.close();
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::thread> threads;
  {
    std::lock_guard lock(mu_);
    for (auto& [key, stream] : subscribers_) stream->shutdown();
    subscribers_.clear();
    threads.swap(handshake_threads_);
  }
  for (auto& t : threads) {
    if (t.joinable()) t.join();
  }
  started_ = false;
}

void PushServer::accept_loop() {
  for (;;) {
    auto accepted = listener_.accept();
    if (!accepted.ok()) return;
    auto stream = std::make_shared<TcpStream>(accepted.take());
    std::lock_guard lock(mu_);
    if (stopping_.load()) {
      stream->shutdown();
      return;
    }
    // The subscription frame is read on its own thread so a slow or broken
    // client cannot stall the accept loop.
    handshake_threads_.emplace_back([this, stream] {
      auto frame = wire::read_frame(*stream);
      if (!frame.ok()) return;
      auto message = wire::decode_message(frame.value());
      if (!message.ok()) return;
      const auto* notify = std::get_if<wire::Notify>(&message.value());
      if (notify == nullptr) return;
      std::lock_guard inner(mu_);
      if (stopping_.load()) return;
      subscribers_[notify->executor_id.value] = stream;
    });
  }
}

Status PushServer::push(std::uint64_t key, const wire::Message& message) {
  std::shared_ptr<TcpStream> stream;
  {
    std::lock_guard lock(mu_);
    auto it = subscribers_.find(key);
    if (it == subscribers_.end()) {
      return make_error(ErrorCode::kNotFound,
                        "no subscriber with key " + std::to_string(key));
    }
    stream = it->second;
  }
  auto payload = wire::encode_message(message);
  if (fault_ != nullptr) {
    const fault::Outcome outcome = fault_->sample(fault::Site::kPushFrame);
    if (outcome.action == fault::Action::kDrop) {
      // A lost notification: reported as sent, never delivered. The
      // subscriber stays connected; the dispatcher's stale-notification
      // sweep is what recovers the executor.
      return ok_status();
    }
    if (outcome.action == fault::Action::kDelay) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(std::max(outcome.param, 0.0)));
    } else if (outcome.action == fault::Action::kCorrupt && !payload.empty()) {
      payload[0] ^= 0x80;
      payload[payload.size() / 2] ^= 0xff;
    }
  }
  return wire::write_frame(*stream, payload);
}

void PushServer::drop_subscriber(std::uint64_t key) {
  std::lock_guard lock(mu_);
  auto it = subscribers_.find(key);
  if (it != subscribers_.end()) {
    it->second->shutdown();
    subscribers_.erase(it);
  }
}

std::size_t PushServer::subscriber_count() const {
  std::lock_guard lock(mu_);
  return subscribers_.size();
}

PushReceiver::~PushReceiver() { stop(); }

Status PushReceiver::start(const std::string& host, std::uint16_t port,
                           std::uint64_t key, Callback callback) {
  auto stream = TcpStream::connect(host, port);
  if (!stream.ok()) return stream.error();
  stream_ = std::make_shared<TcpStream>(stream.take());
  callback_ = std::move(callback);

  // Subscribe: a Notify frame carrying our key, flowing executor->dispatcher.
  wire::Notify subscribe;
  subscribe.executor_id = ExecutorId{key};
  if (auto status =
          wire::write_frame(*stream_, wire::encode_message(subscribe));
      !status.ok()) {
    return status;
  }
  read_thread_ = std::thread([this] { read_loop(); });
  return ok_status();
}

void PushReceiver::stop() {
  stopping_.store(true);
  if (stream_) stream_->shutdown();
  if (read_thread_.joinable()) read_thread_.join();
}

void PushReceiver::read_loop() {
  for (;;) {
    auto frame = wire::read_frame(*stream_);
    if (!frame.ok()) return;
    auto message = wire::decode_message(frame.value());
    if (!message.ok()) continue;
    if (stopping_.load()) return;
    callback_(message.value());
  }
}

}  // namespace falkon::net
