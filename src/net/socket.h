// RAII TCP sockets (IPv4). The original Falkon used GT4 web services plus a
// custom TCP notification protocol; this layer provides the raw transport
// for both roles in our implementation.
#pragma once

#include <cstdint>
#include <string>

#include "common/result.h"
#include "wire/framing.h"

namespace falkon::net {

/// Owning file descriptor.
class FdHandle {
 public:
  FdHandle() = default;
  explicit FdHandle(int fd) : fd_(fd) {}
  ~FdHandle() { reset(); }

  FdHandle(const FdHandle&) = delete;
  FdHandle& operator=(const FdHandle&) = delete;
  FdHandle(FdHandle&& other) noexcept : fd_(other.release()) {}
  FdHandle& operator=(FdHandle&& other) noexcept {
    if (this != &other) {
      reset();
      fd_ = other.release();
    }
    return *this;
  }

  [[nodiscard]] int get() const { return fd_; }
  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  int release() {
    int fd = fd_;
    fd_ = -1;
    return fd;
  }
  void reset();

 private:
  int fd_{-1};
};

/// Connected TCP stream; implements the framing layer's ByteStream.
class TcpStream final : public wire::ByteStream {
 public:
  TcpStream() = default;
  explicit TcpStream(FdHandle fd) : fd_(std::move(fd)) {}

  static Result<TcpStream> connect(const std::string& host, std::uint16_t port);

  Status write_all(const void* data, std::size_t size) override;
  Status write_gather(const ConstBuf* bufs, std::size_t count) override;
  Status read_exact(void* data, std::size_t size) override;

  /// Abort in-flight reads/writes from another thread (shutdown(2)).
  void shutdown();

  [[nodiscard]] bool valid() const { return fd_.valid(); }
  /// Raw descriptor, for poll()-style readiness checks (still owned here).
  [[nodiscard]] int fd() const { return fd_.get(); }

 private:
  FdHandle fd_;
};

/// Listening socket. Port 0 picks an ephemeral port, readable via port().
class TcpListener {
 public:
  /// `reuseport` additionally sets SO_REUSEPORT before binding, letting
  /// several sibling listeners share one port (the reactor's reuseport
  /// accept mode: one listener per event loop, kernel-balanced). Strictly
  /// opt-in — HA standby takeover relies on the default exclusive bind.
  static Result<TcpListener> bind(std::uint16_t port, bool reuseport = false);

  Result<TcpStream> accept();

  /// Unblock accept() from another thread; further accepts fail kClosed.
  void close();

  [[nodiscard]] std::uint16_t port() const { return port_; }
  [[nodiscard]] bool valid() const { return fd_.valid(); }
  /// Raw descriptor, for registering with an event loop (still owned here).
  [[nodiscard]] int fd() const { return fd_.get(); }

  TcpListener() = default;

 private:
  FdHandle fd_;
  std::uint16_t port_{0};
};

/// Put a descriptor into non-blocking mode (reactor-managed sockets).
Status set_nonblocking(int fd);

/// Set SO_SNDBUF. Tests shrink it to force partial writes and EAGAIN on the
/// reactor's write path; the kernel may round the value up.
Status set_send_buffer(int fd, int bytes);

}  // namespace falkon::net
