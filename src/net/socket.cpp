#include "net/socket.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/strings.h"

namespace falkon::net {
namespace {

Error errno_error(const char* operation) {
  return make_error(ErrorCode::kIoError,
                    strf("%s: %s", operation, std::strerror(errno)));
}

}  // namespace

void FdHandle::reset() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<TcpStream> TcpStream::connect(const std::string& host,
                                     std::uint16_t port) {
  FdHandle fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return errno_error("socket");

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return make_error(ErrorCode::kInvalidArgument, "bad address: " + host);
  }
  if (::connect(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return errno_error("connect");
  }
  // Dispatch messages are small and latency-sensitive: disable Nagle.
  int one = 1;
  ::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpStream(std::move(fd));
}

Status TcpStream::write_all(const void* data, std::size_t size) {
  const auto* p = static_cast<const std::uint8_t*>(data);
  std::size_t sent = 0;
  while (sent < size) {
    const ssize_t n = ::send(fd_.get(), p + sent, size - sent, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno_error("send");
    }
    sent += static_cast<std::size_t>(n);
  }
  return ok_status();
}

Status TcpStream::write_gather(const ConstBuf* bufs, std::size_t count) {
  // One sendmsg(2) per batch of coalesced frames (falling back to partial
  // resume on short writes). iovec mirrors ConstBuf's layout by construction,
  // but the kernel may scribble nothing — we copy so the retry loop can
  // advance base/len without mutating the caller's spans.
  constexpr std::size_t kMaxIov = 64;
  iovec iov[kMaxIov];
  std::size_t offset = 0;
  while (offset < count) {
    const std::size_t chunk = std::min(count - offset, kMaxIov);
    std::size_t used = 0;
    std::size_t pending = 0;
    for (std::size_t i = 0; i < chunk; ++i) {
      const auto& buf = bufs[offset + i];
      if (buf.size == 0) continue;
      iov[used].iov_base = const_cast<void*>(buf.data);
      iov[used].iov_len = buf.size;
      pending += buf.size;
      ++used;
    }
    offset += chunk;
    std::size_t first = 0;
    while (pending > 0) {
      msghdr msg{};
      msg.msg_iov = iov + first;
      msg.msg_iovlen = used - first;
      const ssize_t n = ::sendmsg(fd_.get(), &msg, MSG_NOSIGNAL);
      if (n < 0) {
        if (errno == EINTR) continue;
        return errno_error("sendmsg");
      }
      pending -= static_cast<std::size_t>(n);
      std::size_t advanced = static_cast<std::size_t>(n);
      while (advanced > 0 && advanced >= iov[first].iov_len) {
        advanced -= iov[first].iov_len;
        ++first;
      }
      if (advanced > 0) {
        iov[first].iov_base =
            static_cast<std::uint8_t*>(iov[first].iov_base) + advanced;
        iov[first].iov_len -= advanced;
      }
    }
  }
  return ok_status();
}

Status TcpStream::read_exact(void* data, std::size_t size) {
  auto* p = static_cast<std::uint8_t*>(data);
  std::size_t received = 0;
  while (received < size) {
    const ssize_t n = ::recv(fd_.get(), p + received, size - received, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno_error("recv");
    }
    if (n == 0) {
      return make_error(ErrorCode::kClosed, "peer closed connection");
    }
    received += static_cast<std::size_t>(n);
  }
  return ok_status();
}

void TcpStream::shutdown() {
  if (fd_.valid()) ::shutdown(fd_.get(), SHUT_RDWR);
}

Result<TcpListener> TcpListener::bind(std::uint16_t port, bool reuseport) {
  FdHandle fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return errno_error("socket");

  int one = 1;
  ::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  if (reuseport) {
    if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEPORT, &one, sizeof(one)) !=
        0) {
      return errno_error("setsockopt(SO_REUSEPORT)");
    }
  }

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd.get(), reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return errno_error("bind");
  }
  if (::listen(fd.get(), 1024) != 0) return errno_error("listen");

  socklen_t len = sizeof(addr);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return errno_error("getsockname");
  }

  TcpListener listener;
  listener.fd_ = std::move(fd);
  listener.port_ = ntohs(addr.sin_port);
  return listener;
}

Result<TcpStream> TcpListener::accept() {
  const int fd = ::accept(fd_.get(), nullptr, nullptr);
  if (fd < 0) {
    if (errno == EBADF || errno == EINVAL) {
      return make_error(ErrorCode::kClosed, "listener closed");
    }
    return errno_error("accept");
  }
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return TcpStream(FdHandle(fd));
}

void TcpListener::close() {
  if (fd_.valid()) {
    ::shutdown(fd_.get(), SHUT_RDWR);
    fd_.reset();
  }
}

Status set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0) {
    return errno_error("fcntl(O_NONBLOCK)");
  }
  return ok_status();
}

Status set_send_buffer(int fd, int bytes) {
  if (::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &bytes, sizeof(bytes)) != 0) {
    return errno_error("setsockopt(SO_SNDBUF)");
  }
  return ok_status();
}

}  // namespace falkon::net
