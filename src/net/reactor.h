// falkon::net::Reactor — sharded epoll event loops for the server side of
// the stack.
//
// Before this existed every accepted connection cost the dispatcher two
// threads (a blocking reader plus a transient handshake thread); at a few
// hundred registered executors a single-core host spends its cycles
// context-switching instead of dispatching. The reactor replaces all of
// that with readiness-driven I/O across `n_loops` truly independent event
// loops: each loop owns its own epoll fd, eventfd wakeup, timer wheel,
// pooled buffer allocator, and a disjoint set of connections — no
// connection is ever touched by two loop threads, so there is no
// cross-loop mutex traffic on the data path. Reads are decoded
// incrementally into frames and writes drain from a per-connection outbox
// of pre-framed chunks. Handlers never run socket syscalls and the loop
// threads never block — producers enqueue and request a flush through a
// per-loop pending list + eventfd, completions re-arm EPOLLOUT the same
// way.
//
// Connection placement: accepted fds are handed off round-robin, then a
// server that learns a connection's identity (an executor id, a push
// subscription key) pins it with Conn::set_affinity(key) — the connection
// migrates to loops[key % n_loops], which lets callers align loop
// ownership with the dispatcher's executor_shards registry so a task
// notify/push is enqueued and flushed entirely within one shard.
//
// Buffers: each loop owns a size-classed pool (falkon.net.pool.*) serving
// outbox chunks and inbound decode buffers. Chunks recycle when written
// out or on close; idle loops shrink their pools. This bounds the
// per-connection memory the old always-malloc scheme leaked into
// fragmented heaps at high fan-in.
//
// Slow readers are handled with high/low watermarks instead of unbounded
// queues: once a connection's outbox passes the high watermark the loop
// stops reading new requests from it (EPOLLIN off) until the backlog
// drains below the low watermark. Push-style callers can also consult
// Conn::overloaded() and shed load instead.
//
// A per-loop timer wheel carries the stack's coarse timers — the
// dispatcher's recovery sweep, accept backoff after fd exhaustion, and the
// fault injector's delay action (a pause marker in the outbox rather than
// a sleeping thread), so injected latency never stalls a loop.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "obs/obs.h"
#include "wire/framing.h"

namespace falkon::net {

using TimerId = std::uint64_t;

struct ReactorOptions {
  /// Event-loop threads. One loop holds hundreds of connections cheaply;
  /// raise to shard very large fleets — pick a divisor of the dispatcher's
  /// executor_shards so affinity keys land consistently.
  int n_loops{1};
  /// Backpressure watermarks, bytes buffered per connection: above high the
  /// loop stops reading that connection's requests, below low it resumes.
  std::size_t high_watermark_bytes{8u << 20};
  std::size_t low_watermark_bytes{1u << 20};
  /// Metrics (falkon.net.reactor.*, falkon.net.pool.*,
  /// falkon.net.accept_rejected, falkon.net.frames_coalesced); nullptr
  /// disables at zero cost.
  obs::Obs* obs{nullptr};
  /// Accept mode. false (default): one listener per server, accepted fds
  /// handed off round-robin across loops. true: servers bind one
  /// SO_REUSEPORT sibling listener per loop (add_listener pins successive
  /// listeners to successive loops, so N consecutive registrations cover
  /// all N loops) and adopt() keeps each accepted connection on the loop
  /// that accepted it — the kernel's reuseport hash replaces the cross-
  /// thread handoff entirely.
  bool reuseport{false};
};

/// Readiness-driven event loops owning sockets, timers, and per-connection
/// frame state. Servers adopt accepted fds as Conn objects and get called
/// back with complete frames; everything socket-shaped happens on the
/// owning loop thread.
class Reactor {
 public:
  class Conn;

  /// A complete frame arrived. Runs on the connection's loop thread — do
  /// not block; hand real work to a pool. The payload is moved out; give
  /// it back with Conn::recycle() once decoded to keep the buffer pool
  /// warm.
  using FrameHandler = std::function<void(const std::shared_ptr<Conn>&,
                                          std::uint64_t corr,
                                          std::vector<std::uint8_t>&& payload)>;
  /// The connection died (peer close, write error, protocol error, or
  /// explicit close). Fired exactly once, on the loop thread, after the fd
  /// is withdrawn — no frame callback follows it.
  using CloseHandler = std::function<void(const std::shared_ptr<Conn>&)>;
  /// An accepted socket (already non-blocking, TCP_NODELAY set). Ownership
  /// of the fd transfers to the handler; runs on the listener's loop thread.
  using AcceptHandler = std::function<void(int fd)>;
  using TimerFn = std::function<void()>;

  explicit Reactor(ReactorOptions options = {});
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Spawn the loop threads. Must be called before anything else.
  Status start();

  /// Stop all loops, close every adopted connection (firing on_close on
  /// the loop thread), join the threads. Idempotent.
  void stop();

  /// Take ownership of a connected non-blocking fd. The connection is
  /// registered with a loop asynchronously (round-robin placement; see
  /// Conn::set_affinity); sends enqueued before the registration lands are
  /// flushed after it.
  std::shared_ptr<Conn> adopt(int fd, FrameHandler on_frame,
                              CloseHandler on_close);

  /// Watch a listening fd (not owned) and call on_accept for every
  /// accepted connection. Listeners are spread round-robin across loops;
  /// accepted connections still round-robin over every loop. On
  /// EMFILE/ENFILE the reactor pauses accepting with exponential backoff
  /// (counting falkon.net.accept_rejected) instead of spinning, and
  /// re-arms via the owning loop's timer wheel.
  void add_listener(int listen_fd, AcceptHandler on_accept);

  /// Stop watching a listening fd. Asynchronous; follow with barrier()
  /// before closing the fd.
  void remove_listener(int listen_fd);

  /// One-shot timer; fires ~delay_s seconds from now. Timers are homed
  /// round-robin across loops (each loop advances its own wheel).
  TimerId add_timer(double delay_s, TimerFn fn);
  /// Periodic timer (first firing after interval_s).
  TimerId add_periodic(double interval_s, TimerFn fn);
  void cancel_timer(TimerId id);

  /// Wait until every loop has drained its pending operation queue. After
  /// this returns, all close()/remove_listener()/set_affinity() calls
  /// issued before it have taken effect and their callbacks have run.
  void barrier();

  [[nodiscard]] std::size_t open_connections() const;
  [[nodiscard]] int n_loops() const { return options_.n_loops; }
  /// Registered-connection count per loop (test/introspection; answered by
  /// each loop thread via barrier-style ops).
  [[nodiscard]] std::vector<std::size_t> connections_per_loop();
  [[nodiscard]] const ReactorOptions& options() const { return options_; }

 private:
  struct Loop;
  struct Timer;
  struct BufferPool;

  Loop& loop_for_new_conn();
  Loop& loop_for_key(std::uint64_t key);
  /// Pick a home loop for a new public timer (round-robin) and record it so
  /// cancel_timer can find the right wheel.
  Loop& loop_for_timer(TimerId id);
  /// Enqueue an operation on a loop thread; false if the loop has stopped.
  bool post(Loop& loop, std::function<void()> op);
  /// Ask the current owner loop to flush `conn`'s outbox. Allocation-free
  /// fast path (a shared_ptr in the owner's pending list); ownership is
  /// re-checked at execution so a request racing a migration chases the
  /// connection to its new loop.
  void request_flush(const std::shared_ptr<Conn>& conn);
  /// Run `op(owner_loop, conn)` on the loop that owns `conn` right now,
  /// re-posting if a migration moved the connection in between.
  void post_to_owner(const std::shared_ptr<Conn>& conn,
                     std::function<void(Loop&, const std::shared_ptr<Conn>&)> op);
  /// Move a registered connection to `target` (runs on the current owner).
  void migrate(Loop& from, const std::shared_ptr<Conn>& conn, Loop& target);

  // Loop-thread-only machinery (see reactor.cpp).
  void run_loop(Loop& loop);
  void do_accept(Loop& loop, int listen_fd);
  void do_close(Loop& loop, const std::shared_ptr<Conn>& conn);
  void handle_readable(Loop& loop, const std::shared_ptr<Conn>& conn);
  void handle_writable(Loop& loop, const std::shared_ptr<Conn>& conn);
  void deliver_frame(Loop& loop, const std::shared_ptr<Conn>& conn,
                     std::uint64_t corr, std::vector<std::uint8_t>&& payload);
  void loop_flush(Loop& loop, const std::shared_ptr<Conn>& conn);
  void arm_writable(Loop& loop, const std::shared_ptr<Conn>& conn);
  void update_epoll(Loop& loop, const std::shared_ptr<Conn>& conn);
  void maybe_update_read_interest(Loop& loop,
                                  const std::shared_ptr<Conn>& conn);

  friend class Conn;

  ReactorOptions options_;
  std::vector<std::unique_ptr<Loop>> loops_;
  std::atomic<std::size_t> next_loop_{0};
  std::atomic<std::size_t> next_listener_loop_{0};
  std::atomic<std::size_t> next_timer_loop_{0};
  std::atomic<std::uint64_t> next_timer_{1};
  std::atomic<std::size_t> open_conns_{0};
  std::atomic<bool> stopping_{false};
  bool started_{false};

  /// Where each public timer / listener lives, so cancel_timer and
  /// remove_listener reach the right loop. Cold-path only.
  std::mutex homes_mu_;
  std::unordered_map<TimerId, int> timer_home_;
  std::unordered_map<int, int> listener_home_;

  /// Pooled bytes across all loops (mirrors falkon.net.pool.bytes).
  std::atomic<std::int64_t> pool_bytes_{0};

  // Metric handles (null when options_.obs is null).
  obs::Counter* m_wakeups_{nullptr};
  obs::Counter* m_accept_rejected_{nullptr};
  obs::Counter* m_read_paused_{nullptr};
  obs::Counter* m_coalesced_{nullptr};
  obs::Counter* m_migrations_{nullptr};
  obs::Counter* m_pool_hits_{nullptr};
  obs::Counter* m_pool_misses_{nullptr};
  obs::Counter* m_pool_trims_{nullptr};
  obs::Gauge* m_pool_bytes_{nullptr};
  obs::Histogram* m_epoll_batch_{nullptr};
  obs::Histogram* m_writable_stall_{nullptr};
  obs::Gauge* m_connections_{nullptr};
};

/// One adopted connection. Producers (handler pool threads, push callers)
/// only touch the outbox under its mutex; all socket I/O and frame
/// assembly happen on the owning loop thread.
class Reactor::Conn : public std::enable_shared_from_this<Reactor::Conn> {
 public:
  /// Queue one framed message (12-byte header + payload) for write.
  /// kClosed once the connection is dead.
  Status send_frame(std::uint64_t corr, const std::vector<std::uint8_t>& payload);

  /// Queue pre-encoded raw bytes (fault paths write deliberately broken
  /// frames through this).
  Status send_raw(std::vector<std::uint8_t> bytes);

  /// Pin this connection to loops[key % n_loops] and migrate it there if
  /// another loop currently owns it. Callers use the executor id as the
  /// key so reactor-loop ownership lines up with the dispatcher's
  /// executor_shards partition — a notify/push then never crosses loops.
  /// Asynchronous and idempotent; safe from any thread.
  void set_affinity(std::uint64_t key);

  /// Return a decoded payload buffer to the owning loop's pool. Optional —
  /// dropping the vector is always correct — but handlers that recycle
  /// keep the decode path allocation-free.
  void recycle(std::vector<std::uint8_t>&& buffer);

  /// Insert a pause marker: output enqueued after this point waits
  /// delay_s seconds (served by the loop's timer wheel — the loop thread
  /// never sleeps). This is the fault injector's kDelay on the reactor path.
  void pause_output(double delay_s);

  /// Reject new sends now, flush what is queued, then sever. Reading stops
  /// immediately.
  void close_after_flush();

  /// Sever now; queued output is discarded. on_close fires asynchronously
  /// on the loop thread.
  void close();

  [[nodiscard]] std::size_t queued_bytes() const;
  /// True when the outbox is past the high watermark (slow reader); push
  /// paths use this to shed load instead of buffering without bound.
  [[nodiscard]] bool overloaded() const;
  [[nodiscard]] int fd() const { return fd_; }
  /// Index of the loop that owns this connection right now (test
  /// introspection; racy against in-flight migrations — barrier() first).
  [[nodiscard]] int owner_loop_index() const;

 private:
  friend class Reactor;
  struct OutChunk {
    std::vector<std::uint8_t> bytes;
    double pause_s{0.0};  // > 0: pause marker, bytes empty
  };

  Reactor* reactor_{nullptr};
  /// Owning loop. Atomic because producers read it to route flush
  /// requests while a migration op rebinds it; every op re-checks
  /// ownership on the loop thread before touching loop state.
  std::atomic<Loop*> loop_{nullptr};
  int fd_{-1};
  FrameHandler on_frame_;
  CloseHandler on_close_;

  // ---- producer-shared state (guarded by mu_) ----
  mutable std::mutex mu_;
  std::deque<OutChunk> outbox_;
  std::size_t queued_{0};
  bool dead_{false};
  bool flush_requested_{false};
  bool close_after_flush_{false};

  /// Cleared by the fault injector's pause timer, which may fire on the
  /// loop that owned the connection when the pause began.
  std::atomic<bool> output_paused_{false};

  // ---- loop-thread-only state (owner loop; handed over through the
  // ops-queue happens-before edge on migration) ----
  std::size_t front_off_{0};
  bool registered_{false};
  bool closed_{false};
  bool epollout_{false};
  bool read_on_{true};
  bool read_paused_bp_{false};
  double stall_start_{-1.0};
  std::uint8_t header_[wire::kFrameHeaderBytes];
  std::size_t header_got_{0};
  std::uint64_t cur_corr_{0};
  std::uint32_t cur_len_{0};
  std::vector<std::uint8_t> payload_;
  std::size_t payload_got_{0};
  bool reading_payload_{false};
};

}  // namespace falkon::net
