// falkon::net::Reactor — an epoll-based event loop for the server side of
// the stack.
//
// Before this existed every accepted connection cost the dispatcher two
// threads (a blocking reader plus a transient handshake thread); at a few
// hundred registered executors a single-core host spends its cycles
// context-switching instead of dispatching. The reactor replaces all of
// that with readiness-driven I/O: one loop thread (n_loops to shard very
// large fleets) owns every connection's socket, reads are decoded
// incrementally into frames, and writes drain from a per-connection outbox
// of pre-framed chunks. Handlers never run socket syscalls and the loop
// thread never blocks — producers enqueue and wake the loop through an
// eventfd, completions re-arm EPOLLOUT the same way.
//
// Slow readers are handled with high/low watermarks instead of unbounded
// queues: once a connection's outbox passes the high watermark the loop
// stops reading new requests from it (EPOLLIN off) until the backlog
// drains below the low watermark. Push-style callers can also consult
// Conn::overloaded() and shed load instead.
//
// A per-loop timer wheel carries the stack's coarse timers — the
// dispatcher's recovery sweep, accept backoff after fd exhaustion, and the
// fault injector's delay action (a pause marker in the outbox rather than
// a sleeping thread), so injected latency never stalls the loop.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "obs/obs.h"
#include "wire/framing.h"

namespace falkon::net {

using TimerId = std::uint64_t;

struct ReactorOptions {
  /// Event-loop threads. One loop holds hundreds of connections cheaply;
  /// raise only when a single core saturates on pure frame I/O.
  int n_loops{1};
  /// Backpressure watermarks, bytes buffered per connection: above high the
  /// loop stops reading that connection's requests, below low it resumes.
  std::size_t high_watermark_bytes{8u << 20};
  std::size_t low_watermark_bytes{1u << 20};
  /// Metrics (falkon.net.reactor.*, falkon.net.accept_rejected,
  /// falkon.net.frames_coalesced); nullptr disables at zero cost.
  obs::Obs* obs{nullptr};
};

/// Readiness-driven event loop owning sockets, timers, and per-connection
/// frame state. Servers adopt accepted fds as Conn objects and get called
/// back with complete frames; everything socket-shaped happens on a loop
/// thread.
class Reactor {
 public:
  class Conn;

  /// A complete frame arrived. Runs on the connection's loop thread — do
  /// not block; hand real work to a pool. The payload is moved out.
  using FrameHandler = std::function<void(const std::shared_ptr<Conn>&,
                                          std::uint64_t corr,
                                          std::vector<std::uint8_t>&& payload)>;
  /// The connection died (peer close, write error, protocol error, or
  /// explicit close). Fired exactly once, on the loop thread, after the fd
  /// is withdrawn — no frame callback follows it.
  using CloseHandler = std::function<void(const std::shared_ptr<Conn>&)>;
  /// An accepted socket (already non-blocking, TCP_NODELAY set). Ownership
  /// of the fd transfers to the handler; runs on the listener's loop thread.
  using AcceptHandler = std::function<void(int fd)>;
  using TimerFn = std::function<void()>;

  explicit Reactor(ReactorOptions options = {});
  ~Reactor();

  Reactor(const Reactor&) = delete;
  Reactor& operator=(const Reactor&) = delete;

  /// Spawn the loop threads. Must be called before anything else.
  Status start();

  /// Stop all loops, close every adopted connection (firing on_close on
  /// the loop thread), join the threads. Idempotent.
  void stop();

  /// Take ownership of a connected non-blocking fd. The connection is
  /// registered with a loop asynchronously; sends enqueued before the
  /// registration lands are flushed after it.
  std::shared_ptr<Conn> adopt(int fd, FrameHandler on_frame,
                              CloseHandler on_close);

  /// Watch a listening fd (not owned) and call on_accept for every
  /// accepted connection. On EMFILE/ENFILE the reactor pauses accepting
  /// with exponential backoff (counting falkon.net.accept_rejected)
  /// instead of spinning, and re-arms via the timer wheel.
  void add_listener(int listen_fd, AcceptHandler on_accept);

  /// Stop watching a listening fd. Asynchronous; follow with barrier()
  /// before closing the fd.
  void remove_listener(int listen_fd);

  /// One-shot timer on the primary loop; fires ~delay_s seconds from now.
  TimerId add_timer(double delay_s, TimerFn fn);
  /// Periodic timer on the primary loop (first firing after interval_s).
  TimerId add_periodic(double interval_s, TimerFn fn);
  void cancel_timer(TimerId id);

  /// Wait until every loop has drained its pending operation queue. After
  /// this returns, all close()/remove_listener() calls issued before it
  /// have taken effect and their callbacks have run.
  void barrier();

  [[nodiscard]] std::size_t open_connections() const;
  [[nodiscard]] const ReactorOptions& options() const { return options_; }

 private:
  struct Loop;
  struct Timer;

  Loop& loop_for_new_conn();
  /// Enqueue an operation on a loop thread; false if the loop has stopped.
  bool post(Loop& loop, std::function<void()> op);

  // Loop-thread-only machinery (see reactor.cpp).
  void run_loop(Loop& loop);
  void do_accept(Loop& loop, int listen_fd);
  void do_close(Loop& loop, const std::shared_ptr<Conn>& conn);
  void handle_readable(Loop& loop, const std::shared_ptr<Conn>& conn);
  void handle_writable(Loop& loop, const std::shared_ptr<Conn>& conn);
  void deliver_frame(Loop& loop, const std::shared_ptr<Conn>& conn,
                     std::uint64_t corr, std::vector<std::uint8_t>&& payload);
  void loop_flush(Loop& loop, const std::shared_ptr<Conn>& conn);
  void arm_writable(Loop& loop, const std::shared_ptr<Conn>& conn);
  void update_epoll(Loop& loop, const std::shared_ptr<Conn>& conn);
  void maybe_update_read_interest(Loop& loop,
                                  const std::shared_ptr<Conn>& conn);

  ReactorOptions options_;
  std::vector<std::unique_ptr<Loop>> loops_;
  std::atomic<std::size_t> next_loop_{0};
  std::atomic<std::uint64_t> next_timer_{1};
  std::atomic<std::size_t> open_conns_{0};
  std::atomic<bool> stopping_{false};
  bool started_{false};

  // Metric handles (null when options_.obs is null).
  obs::Counter* m_wakeups_{nullptr};
  obs::Counter* m_accept_rejected_{nullptr};
  obs::Counter* m_read_paused_{nullptr};
  obs::Counter* m_coalesced_{nullptr};
  obs::Histogram* m_epoll_batch_{nullptr};
  obs::Histogram* m_writable_stall_{nullptr};
  obs::Gauge* m_connections_{nullptr};
};

/// One adopted connection. Producers (handler pool threads, push callers)
/// only touch the outbox under its mutex; all socket I/O and frame
/// assembly happen on the owning loop thread.
class Reactor::Conn : public std::enable_shared_from_this<Reactor::Conn> {
 public:
  /// Queue one framed message (12-byte header + payload) for write.
  /// kClosed once the connection is dead.
  Status send_frame(std::uint64_t corr, const std::vector<std::uint8_t>& payload);

  /// Queue pre-encoded raw bytes (fault paths write deliberately broken
  /// frames through this).
  Status send_raw(std::vector<std::uint8_t> bytes);

  /// Insert a pause marker: output enqueued after this point waits
  /// delay_s seconds (served by the loop's timer wheel — the loop thread
  /// never sleeps). This is the fault injector's kDelay on the reactor path.
  void pause_output(double delay_s);

  /// Reject new sends now, flush what is queued, then sever. Reading stops
  /// immediately.
  void close_after_flush();

  /// Sever now; queued output is discarded. on_close fires asynchronously
  /// on the loop thread.
  void close();

  [[nodiscard]] std::size_t queued_bytes() const;
  /// True when the outbox is past the high watermark (slow reader); push
  /// paths use this to shed load instead of buffering without bound.
  [[nodiscard]] bool overloaded() const;
  [[nodiscard]] int fd() const { return fd_; }

 private:
  friend class Reactor;
  struct OutChunk {
    std::vector<std::uint8_t> bytes;
    double pause_s{0.0};  // > 0: pause marker, bytes empty
  };

  Reactor* reactor_{nullptr};
  Loop* loop_{nullptr};
  int fd_{-1};
  FrameHandler on_frame_;
  CloseHandler on_close_;

  // ---- producer-shared state (guarded by mu_) ----
  mutable std::mutex mu_;
  std::deque<OutChunk> outbox_;
  std::size_t queued_{0};
  bool dead_{false};
  bool flush_requested_{false};
  bool close_after_flush_{false};

  // ---- loop-thread-only state ----
  std::size_t front_off_{0};
  bool registered_{false};
  bool closed_{false};
  bool epollout_{false};
  bool read_on_{true};
  bool read_paused_bp_{false};
  bool output_paused_{false};
  double stall_start_{-1.0};
  std::uint8_t header_[wire::kFrameHeaderBytes];
  std::size_t header_got_{0};
  std::uint64_t cur_corr_{0};
  std::uint32_t cur_len_{0};
  std::vector<std::uint8_t> payload_;
  std::size_t payload_got_{0};
  bool reading_payload_{false};
};

}  // namespace falkon::net
