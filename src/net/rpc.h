// Request/response RPC and push-notification channels over TCP.
//
// This is the C++ stand-in for the GT4 WS container of the original Falkon:
//   * RpcServer/RpcClient carry the WS-style request/response operations
//     (submit, get-work, deliver-result, status, ...);
//   * PushServer/PushReceiver carry the custom TCP notification protocol of
//     paper section 3.3 (implementation alternative 2: the executor is a
//     plain client that subscribes for notifications).
//
// The RPC channel is *pipelined*: every frame carries a correlation id, the
// client keeps many calls outstanding on one connection and a reader thread
// demuxes replies to per-call waiters. The server side runs on the
// falkon::net::Reactor — one epoll loop owns every accepted connection, so
// a dispatcher holding hundreds of registered executors costs loop + pool
// threads, not two threads per connection. Handlers run on a shared pool
// (the loop thread never blocks); replies drain through per-connection
// outboxes as gathered writes with watermark backpressure.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.h"
#include "fault/fault.h"
#include "net/reactor.h"
#include "net/socket.h"
#include "obs/obs.h"
#include "wire/message.h"

namespace falkon::net {

/// Server-side request handler: one message in, one message out.
using RpcHandler = std::function<wire::Message(const wire::Message&)>;

struct RpcServerOptions {
  /// Handler pool size. 0 means one shared handler thread (strict FIFO
  /// through a single worker, what unit tests expect); N > 0 gives a pool
  /// of N so a blocking handler (wait_results) cannot stall pipelined
  /// calls behind it and replies genuinely reorder. Handlers never run on
  /// the reactor loop thread.
  std::size_t handler_threads{0};
  /// Optional metrics sink (falkon.net.frames_coalesced plus the
  /// falkon.net.reactor.* family when the server owns its reactor).
  obs::Obs* obs{nullptr};
  /// Run on this shared reactor instead of owning one (the TCP service
  /// shares a single loop between RPC and push). Watermark/n_loops fields
  /// below only apply to an owned reactor.
  Reactor* reactor{nullptr};
  int n_loops{1};
  std::size_t high_watermark_bytes{8u << 20};
  std::size_t low_watermark_bytes{1u << 20};
  /// Owned-reactor mirror of ReactorOptions::reuseport. With a shared
  /// reactor the flag is read from its options instead. When the effective
  /// reactor runs reuseport accept mode and has more than one loop, the
  /// server binds one SO_REUSEPORT sibling listener per loop and the
  /// kernel balances accepts across them.
  bool reuseport{false};
  /// Test-only: shrink SO_SNDBUF on accepted sockets to force the
  /// partial-write/EAGAIN paths.
  int sndbuf_bytes{0};
  /// Optional connection-affinity extractor: given a decoded request,
  /// return a nonzero shard key (typically the executor id it carries) and
  /// the connection is pinned to reactor loop `key % n_loops` — the same
  /// modulo partition the dispatcher registry uses, so one executor's whole
  /// exchange stays on one loop. Return 0 for requests that carry no key.
  std::function<std::uint64_t(const wire::Message&)> affinity_key;
};

/// Accepts connections on the reactor and serves framed request/response
/// exchanges. Connections are reactor-owned Conn objects (no per-connection
/// threads); requests are decoded and handled on the shared pool, and
/// replies drain through the connection outbox as coalesced gathered writes.
class RpcServer {
 public:
  RpcServer() = default;
  ~RpcServer();

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  /// Bind (port 0 = ephemeral) and start accepting. `fault` (optional,
  /// test-only) injects reply-frame faults at Site::kRpcReply.
  Status start(RpcHandler handler, std::uint16_t port = 0,
               fault::FaultInjector* fault = nullptr,
               RpcServerOptions options = {});

  /// Stop accepting, sever all connections, drain the handler pool.
  /// Idempotent.
  void stop();

  [[nodiscard]] std::uint16_t port() const { return listener_.port(); }
  [[nodiscard]] std::size_t active_connections() const;

 private:
  void on_accept(int fd);
  void on_frame(const std::shared_ptr<Reactor::Conn>& conn,
                std::uint64_t corr, std::vector<std::uint8_t>&& payload);
  void on_close(const std::shared_ptr<Reactor::Conn>& conn);
  void enqueue_reply(const std::shared_ptr<Reactor::Conn>& conn,
                     std::uint64_t corr, const wire::Message& reply);

  TcpListener listener_;
  /// Reuseport accept mode: additional listeners sharing listener_'s port,
  /// one per remaining reactor loop.
  std::vector<TcpListener> siblings_;
  RpcHandler handler_;
  std::function<std::uint64_t(const wire::Message&)> affinity_key_;
  fault::FaultInjector* fault_{nullptr};
  std::unique_ptr<ThreadPool> pool_;
  std::unique_ptr<Reactor> owned_reactor_;
  Reactor* reactor_{nullptr};
  int sndbuf_bytes_{0};
  mutable std::mutex mu_;
  std::vector<std::weak_ptr<Reactor::Conn>> connections_;
  std::atomic<bool> stopping_{false};
  bool started_{false};
};

/// Pipelined RPC client: many outstanding calls share one connection. Each
/// call takes a fresh correlation id and parks on its own waiter; a reader
/// thread demuxes reply frames by correlation id. Out-of-order replies (a
/// pooled server finishing a fast call before a slow one) route correctly.
///
/// Failure semantics: a frame that fails to *decode* (corrupt payload,
/// intact framing) fails only the call it correlates to; a stream-level
/// error (drop, truncation, peer death) fails every call in flight on the
/// connection, which is exactly the set mapped to the lost stream.
class RpcClient {
 public:
  /// `fault` (optional, test-only) injects connect faults at
  /// Site::kRpcConnect and request-frame faults at Site::kRpcRequest.
  /// `obs` (optional) exposes the falkon.net.rpc.inflight gauge.
  static Result<RpcClient> connect(const std::string& host, std::uint16_t port,
                                   fault::FaultInjector* fault = nullptr,
                                   obs::Obs* obs = nullptr);

  RpcClient(RpcClient&&) noexcept;
  RpcClient& operator=(RpcClient&&) noexcept;
  ~RpcClient();

  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  /// Send a request, wait for the reply. Safe to call from many threads
  /// concurrently; calls overlap on the wire. An ErrorReply from the server
  /// is surfaced as a failed Status with the carried code.
  Result<wire::Message> call(const wire::Message& request);

  /// Sever the connection; in-flight and future calls fail.
  void close();

 private:
  struct Impl;
  explicit RpcClient(std::unique_ptr<Impl> impl);

  std::unique_ptr<Impl> impl_;
};

struct PushServerOptions {
  /// Run on this shared reactor instead of owning one. Watermark/n_loops
  /// fields only apply to an owned reactor.
  Reactor* reactor{nullptr};
  int n_loops{1};
  std::size_t high_watermark_bytes{8u << 20};
  std::size_t low_watermark_bytes{1u << 20};
  /// Owned-reactor mirror of ReactorOptions::reuseport (see
  /// RpcServerOptions::reuseport).
  bool reuseport{false};
};

/// Dispatcher-side notification fan-out. Executors connect and send one
/// subscription frame (a Notify carrying their executor id); afterwards the
/// dispatcher pushes frames to them by key. Connections are reactor-owned:
/// the subscription frame is decoded on the loop (no handshake threads) and
/// pushes drain through the connection outbox, which also serialises the
/// stream so concurrent pushes can never interleave bytes mid-frame. A
/// subscriber whose outbox is past the high watermark has new notifications
/// shed (falkon.net.push.backpressure_drops) — a lost notification is
/// recoverable, the dispatcher's stale-notification sweep re-sends it.
class PushServer {
 public:
  PushServer() = default;
  ~PushServer();

  PushServer(const PushServer&) = delete;
  PushServer& operator=(const PushServer&) = delete;

  /// `fault` (optional, test-only) injects push-frame faults at
  /// Site::kPushFrame (drop = the notification silently vanishes).
  /// `obs` (optional) feeds falkon.net.frames_coalesced and
  /// falkon.net.push.backpressure_drops.
  Status start(std::uint16_t port = 0, fault::FaultInjector* fault = nullptr,
               obs::Obs* obs = nullptr, PushServerOptions options = {});
  void stop();

  /// Push a message to subscriber `key`; kNotFound if no such subscriber.
  Status push(std::uint64_t key, const wire::Message& message);

  void drop_subscriber(std::uint64_t key);
  [[nodiscard]] std::size_t subscriber_count() const;
  [[nodiscard]] std::uint16_t port() const { return listener_.port(); }

 private:
  void on_accept(int fd);
  void on_frame(const std::shared_ptr<Reactor::Conn>& conn,
                std::vector<std::uint8_t>&& payload);
  void on_close(const std::shared_ptr<Reactor::Conn>& conn);

  TcpListener listener_;
  /// Reuseport accept mode: additional listeners sharing listener_'s port,
  /// one per remaining reactor loop.
  std::vector<TcpListener> siblings_;
  fault::FaultInjector* fault_{nullptr};
  obs::Counter* m_bp_drops_{nullptr};
  std::unique_ptr<Reactor> owned_reactor_;
  Reactor* reactor_{nullptr};
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Reactor::Conn>>
      subscribers_;
  std::vector<std::weak_ptr<Reactor::Conn>> connections_;
  std::atomic<bool> stopping_{false};
  bool started_{false};
};

/// Executor-side notification listener: connects, subscribes, then invokes
/// a callback for every pushed message on a background thread.
class PushReceiver {
 public:
  using Callback = std::function<void(const wire::Message&)>;

  PushReceiver() = default;
  ~PushReceiver();

  PushReceiver(const PushReceiver&) = delete;
  PushReceiver& operator=(const PushReceiver&) = delete;

  Status start(const std::string& host, std::uint16_t port, std::uint64_t key,
               Callback callback);
  void stop();

 private:
  void read_loop();

  std::shared_ptr<TcpStream> stream_;
  Callback callback_;
  std::thread read_thread_;
  std::atomic<bool> stopping_{false};
};

}  // namespace falkon::net
