// Request/response RPC and push-notification channels over TCP.
//
// This is the C++ stand-in for the GT4 WS container of the original Falkon:
//   * RpcServer/RpcClient carry the WS-style request/response operations
//     (submit, get-work, deliver-result, status, ...);
//   * PushServer/PushReceiver carry the custom TCP notification protocol of
//     paper section 3.3 (implementation alternative 2: the executor is a
//     plain client that subscribes for notifications).
//
// The RPC channel is *pipelined*: every frame carries a correlation id, the
// client keeps many calls outstanding on one connection and a reader thread
// demuxes replies to per-call waiters, and the server coalesces pending
// reply frames into single gathered writes. This is where the paper's
// dispatch-rate headroom comes from — per-call latency no longer serialises
// the connection.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/thread_pool.h"
#include "fault/fault.h"
#include "net/socket.h"
#include "obs/obs.h"
#include "wire/message.h"

namespace falkon::net {

/// Server-side request handler: one message in, one message out.
using RpcHandler = std::function<wire::Message(const wire::Message&)>;

struct RpcServerOptions {
  /// 0: handle requests inline on the connection's reader thread (strict
  /// per-connection FIFO, what unit tests expect). N > 0: a shared pool of
  /// N handler threads, so a blocking handler (wait_results) cannot stall
  /// pipelined calls behind it and replies genuinely reorder.
  std::size_t handler_threads{0};
  /// Optional metrics sink: falkon.net.frames_coalesced.
  obs::Obs* obs{nullptr};
};

/// Accepts connections and serves framed request/response exchanges. Each
/// connection gets a reader thread; handlers run inline or on a shared pool
/// (RpcServerOptions::handler_threads), and replies are queued per
/// connection and flushed in coalesced gathered writes.
class RpcServer {
 public:
  RpcServer() = default;
  ~RpcServer();

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  /// Bind (port 0 = ephemeral) and start the accept loop. `fault`
  /// (optional, test-only) injects reply-frame faults at Site::kRpcReply.
  Status start(RpcHandler handler, std::uint16_t port = 0,
               fault::FaultInjector* fault = nullptr,
               RpcServerOptions options = {});

  /// Stop accepting, sever all connections, join all threads. Idempotent.
  void stop();

  [[nodiscard]] std::uint16_t port() const { return listener_.port(); }
  [[nodiscard]] std::size_t active_connections() const;

 private:
  struct Conn {
    std::shared_ptr<TcpStream> stream;
    std::mutex out_mu;
    std::deque<wire::PendingFrame> outbox;
    bool writing{false};
    bool dead{false};
    std::vector<std::uint8_t> header_scratch;
  };
  struct ConnThread {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };

  void accept_loop();
  void reap_finished_locked();
  void serve_connection(const std::shared_ptr<Conn>& conn);
  void handle_request(const std::shared_ptr<Conn>& conn, std::uint64_t corr,
                      const wire::Message& request);
  void enqueue_reply(Conn& conn, std::uint64_t corr,
                     const wire::Message& reply);
  void flush_outbox(Conn& conn);
  Status write_batch_faulted(Conn& conn,
                             std::vector<wire::PendingFrame>& batch);

  TcpListener listener_;
  RpcHandler handler_;
  fault::FaultInjector* fault_{nullptr};
  std::unique_ptr<ThreadPool> pool_;
  obs::Counter* m_coalesced_{nullptr};
  std::thread accept_thread_;
  mutable std::mutex mu_;
  std::list<ConnThread> connection_threads_;
  std::vector<std::weak_ptr<Conn>> connections_;
  std::atomic<bool> stopping_{false};
  bool started_{false};
};

/// Pipelined RPC client: many outstanding calls share one connection. Each
/// call takes a fresh correlation id and parks on its own waiter; a reader
/// thread demuxes reply frames by correlation id. Out-of-order replies (a
/// pooled server finishing a fast call before a slow one) route correctly.
///
/// Failure semantics: a frame that fails to *decode* (corrupt payload,
/// intact framing) fails only the call it correlates to; a stream-level
/// error (drop, truncation, peer death) fails every call in flight on the
/// connection, which is exactly the set mapped to the lost stream.
class RpcClient {
 public:
  /// `fault` (optional, test-only) injects connect faults at
  /// Site::kRpcConnect and request-frame faults at Site::kRpcRequest.
  /// `obs` (optional) exposes the falkon.net.rpc.inflight gauge.
  static Result<RpcClient> connect(const std::string& host, std::uint16_t port,
                                   fault::FaultInjector* fault = nullptr,
                                   obs::Obs* obs = nullptr);

  RpcClient(RpcClient&&) noexcept;
  RpcClient& operator=(RpcClient&&) noexcept;
  ~RpcClient();

  RpcClient(const RpcClient&) = delete;
  RpcClient& operator=(const RpcClient&) = delete;

  /// Send a request, wait for the reply. Safe to call from many threads
  /// concurrently; calls overlap on the wire. An ErrorReply from the server
  /// is surfaced as a failed Status with the carried code.
  Result<wire::Message> call(const wire::Message& request);

  /// Sever the connection; in-flight and future calls fail.
  void close();

 private:
  struct Impl;
  explicit RpcClient(std::unique_ptr<Impl> impl);

  std::unique_ptr<Impl> impl_;
};

/// Dispatcher-side notification fan-out. Executors connect and send one
/// subscription frame (a Notify carrying their executor id); afterwards the
/// dispatcher pushes frames to them by key. Pushes to one subscriber from
/// many notifier threads are queued and flushed as coalesced writes — the
/// outbox also serialises the stream, so concurrent pushes can never
/// interleave bytes mid-frame.
class PushServer {
 public:
  PushServer() = default;
  ~PushServer();

  PushServer(const PushServer&) = delete;
  PushServer& operator=(const PushServer&) = delete;

  /// `fault` (optional, test-only) injects push-frame faults at
  /// Site::kPushFrame (drop = the notification silently vanishes).
  /// `obs` (optional) feeds falkon.net.frames_coalesced.
  Status start(std::uint16_t port = 0, fault::FaultInjector* fault = nullptr,
               obs::Obs* obs = nullptr);
  void stop();

  /// Push a message to subscriber `key`; kNotFound if no such subscriber.
  Status push(std::uint64_t key, const wire::Message& message);

  void drop_subscriber(std::uint64_t key);
  [[nodiscard]] std::size_t subscriber_count() const;
  [[nodiscard]] std::uint16_t port() const { return listener_.port(); }

 private:
  struct Subscriber {
    std::shared_ptr<TcpStream> stream;
    std::mutex out_mu;
    std::deque<wire::PendingFrame> outbox;
    bool writing{false};
    bool dead{false};
    std::vector<std::uint8_t> header_scratch;
  };
  struct HandshakeThread {
    std::thread thread;
    std::shared_ptr<std::atomic<bool>> done;
  };

  void accept_loop();
  void reap_finished_locked();
  static Status flush_subscriber(Subscriber& sub, obs::Counter* coalesced);

  TcpListener listener_;
  fault::FaultInjector* fault_{nullptr};
  obs::Counter* m_coalesced_{nullptr};
  std::thread accept_thread_;
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Subscriber>> subscribers_;
  std::list<HandshakeThread> handshake_threads_;
  std::atomic<bool> stopping_{false};
  bool started_{false};
};

/// Executor-side notification listener: connects, subscribes, then invokes
/// a callback for every pushed message on a background thread.
class PushReceiver {
 public:
  using Callback = std::function<void(const wire::Message&)>;

  PushReceiver() = default;
  ~PushReceiver();

  PushReceiver(const PushReceiver&) = delete;
  PushReceiver& operator=(const PushReceiver&) = delete;

  Status start(const std::string& host, std::uint16_t port, std::uint64_t key,
               Callback callback);
  void stop();

 private:
  void read_loop();

  std::shared_ptr<TcpStream> stream_;
  Callback callback_;
  std::thread read_thread_;
  std::atomic<bool> stopping_{false};
};

}  // namespace falkon::net
