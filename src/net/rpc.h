// Request/response RPC and push-notification channels over TCP.
//
// This is the C++ stand-in for the GT4 WS container of the original Falkon:
//   * RpcServer/RpcClient carry the WS-style request/response operations
//     (submit, get-work, deliver-result, status, ...);
//   * PushServer/PushReceiver carry the custom TCP notification protocol of
//     paper section 3.3 (implementation alternative 2: the executor is a
//     plain client that subscribes for notifications).
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <vector>

#include "fault/fault.h"
#include "net/socket.h"
#include "wire/message.h"

namespace falkon::net {

/// Server-side request handler: one message in, one message out.
using RpcHandler = std::function<wire::Message(const wire::Message&)>;

/// Accepts connections and serves framed request/response exchanges, one
/// thread per connection (adequate for hundreds of executors on loopback;
/// the paper's GT4 container was likewise thread-pool based).
class RpcServer {
 public:
  RpcServer() = default;
  ~RpcServer();

  RpcServer(const RpcServer&) = delete;
  RpcServer& operator=(const RpcServer&) = delete;

  /// Bind (port 0 = ephemeral) and start the accept loop. `fault`
  /// (optional, test-only) injects reply-frame faults at Site::kRpcReply.
  Status start(RpcHandler handler, std::uint16_t port = 0,
               fault::FaultInjector* fault = nullptr);

  /// Stop accepting, sever all connections, join all threads. Idempotent.
  void stop();

  [[nodiscard]] std::uint16_t port() const { return listener_.port(); }
  [[nodiscard]] std::size_t active_connections() const;

 private:
  void accept_loop();
  void serve_connection(std::shared_ptr<TcpStream> stream);

  TcpListener listener_;
  RpcHandler handler_;
  fault::FaultInjector* fault_{nullptr};
  std::thread accept_thread_;
  mutable std::mutex mu_;
  std::vector<std::thread> connection_threads_;
  std::vector<std::weak_ptr<TcpStream>> connections_;
  std::atomic<bool> stopping_{false};
  bool started_{false};
};

/// Blocking RPC client; one outstanding call at a time per connection.
class RpcClient {
 public:
  /// `fault` (optional, test-only) injects connect faults at
  /// Site::kRpcConnect and request-frame faults at Site::kRpcRequest.
  static Result<RpcClient> connect(const std::string& host, std::uint16_t port,
                                   fault::FaultInjector* fault = nullptr);

  /// Send a request, wait for the reply. An ErrorReply from the server is
  /// surfaced as a failed Status with the carried code.
  Result<wire::Message> call(const wire::Message& request);

  void close();

 private:
  RpcClient(TcpStream stream, fault::FaultInjector* fault)
      : stream_(std::move(stream)), fault_(fault) {}

  std::mutex mu_;
  TcpStream stream_;
  fault::FaultInjector* fault_{nullptr};

 public:
  RpcClient(RpcClient&& other) noexcept
      : stream_(std::move(other.stream_)), fault_(other.fault_) {}
};

/// Dispatcher-side notification fan-out. Executors connect and send one
/// subscription frame (a Notify carrying their executor id); afterwards the
/// dispatcher pushes frames to them by key.
class PushServer {
 public:
  PushServer() = default;
  ~PushServer();

  PushServer(const PushServer&) = delete;
  PushServer& operator=(const PushServer&) = delete;

  /// `fault` (optional, test-only) injects push-frame faults at
  /// Site::kPushFrame (drop = the notification silently vanishes).
  Status start(std::uint16_t port = 0, fault::FaultInjector* fault = nullptr);
  void stop();

  /// Push a message to subscriber `key`; kNotFound if no such subscriber.
  Status push(std::uint64_t key, const wire::Message& message);

  void drop_subscriber(std::uint64_t key);
  [[nodiscard]] std::size_t subscriber_count() const;
  [[nodiscard]] std::uint16_t port() const { return listener_.port(); }

 private:
  void accept_loop();

  TcpListener listener_;
  fault::FaultInjector* fault_{nullptr};
  std::thread accept_thread_;
  mutable std::mutex mu_;
  std::unordered_map<std::uint64_t, std::shared_ptr<TcpStream>> subscribers_;
  std::vector<std::thread> handshake_threads_;
  std::atomic<bool> stopping_{false};
  bool started_{false};
};

/// Executor-side notification listener: connects, subscribes, then invokes
/// a callback for every pushed message on a background thread.
class PushReceiver {
 public:
  using Callback = std::function<void(const wire::Message&)>;

  PushReceiver() = default;
  ~PushReceiver();

  PushReceiver(const PushReceiver&) = delete;
  PushReceiver& operator=(const PushReceiver&) = delete;

  Status start(const std::string& host, std::uint16_t port, std::uint64_t key,
               Callback callback);
  void stop();

 private:
  void read_loop();

  std::shared_ptr<TcpStream> stream_;
  Callback callback_;
  std::thread read_thread_;
  std::atomic<bool> stopping_{false};
};

}  // namespace falkon::net
