// Workload generators for the paper's evaluation.
//
//   * sleep workloads            — microbenchmarks (sections 4.1-4.5);
//   * 18-stage synthetic         — dynamic provisioning study (Figure 11,
//                                  Tables 3/4, Figures 12/13);
//   * fMRI AIRSN pipeline        — section 5.1 (Figure 14);
//   * Montage mosaic pipeline    — section 5.2 (Figure 15);
//   * Swift application catalog  — Table 5.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "workflow/dag.h"

namespace falkon::workflow {

/// `count` independent sleep tasks of the given length.
[[nodiscard]] WorkflowGraph make_sleep_workload(std::size_t count,
                                                double task_length_s);

/// The 18-stage synthetic workload of Figure 11. Reconstructed from the
/// paper's description: exponential ramp over the first stages, a drop at
/// stage 8 (one long 120 s task), a surge of short tasks in stages 9
/// (6 s) and 10 (12 s), a drop at 11, a modest increase at 12, a linear
/// decrease over 13-14 and an exponential decrease to a single task at 18.
/// Totals: 1,000 tasks; ~19.4k CPU-seconds (paper: 17,820 — the figure's
/// exact per-stage counts are not published); staged ideal on 32 machines
/// ~1,284 s (paper: 1,260 s). Stages are barriers (stage i+1 depends on
/// stage i completing), matching the figure.
[[nodiscard]] WorkflowGraph make_synthetic_18stage();

/// Per-stage shape of the 18-stage workload (for printing Figure 11).
struct SyntheticStage {
  int tasks;
  double task_length_s;
};
[[nodiscard]] std::vector<SyntheticStage> synthetic_18stage_shape();

/// fMRI AIRSN pipeline (section 5.1): a four-step per-volume chain
/// (reorient -> realign -> reslice -> smooth). `volumes` volumes yield
/// 4*volumes tasks ("120 volumes (480 tasks) ... 480 volumes (1960
/// tasks)"; the paper's 1960 includes stage-level aggregation tasks, which
/// we include as a final per-run average step when volumes >= 240).
/// Tasks run "a few seconds" each.
[[nodiscard]] WorkflowGraph make_fmri_workflow(int volumes,
                                               double task_length_s = 3.0);

/// Montage mosaic of the 3x3 degree M16 region (section 5.2): 487 input
/// images, ~2,200 overlapping pairs. Stages: mProject (487), mDiff (2,200),
/// mFit (2,200), mBgModel (1), mBackground (487), mAddSub (`coadd_tiles`,
/// the parallelised first co-add step), mAdd (1). Runtimes are synthetic
/// but proportioned like the application's (reprojection dominates
/// per-task cost; diff/fit are very short — the "many small tasks" the
/// paper highlights).
[[nodiscard]] WorkflowGraph make_montage_workflow(int input_images = 487,
                                                  int overlaps = 2200,
                                                  int coadd_tiles = 16,
                                                  std::uint64_t seed = 7);

/// AstroPortal sky-survey stacking service (Table 5 "SDSS: Stacking,
/// AstroPortal"; the acknowledgements name it as the challenge problem
/// that inspired Falkon: "perform many small tasks in Grid environments").
/// Two stages per stacking request: `images_per_stack` cutout reads of
/// shared-FS image objects (drawn with reuse from a catalog of
/// `catalog_images`, so data-aware dispatch has locality to exploit),
/// then one co-add per stack.
[[nodiscard]] WorkflowGraph make_stacking_workload(int stacks,
                                                   int images_per_stack = 20,
                                                   int catalog_images = 200,
                                                   std::uint64_t seed = 11);

/// MolDyn molecular-dynamics pipeline (Table 5: "1Ks ~ 20Ks" tasks, 8
/// stages): per-molecule chains of preparation, equilibration and
/// production steps with a final cross-molecule analysis.
[[nodiscard]] WorkflowGraph make_moldyn_workflow(int molecules);

/// Table 5 catalog: Swift applications and their task-graph scale.
struct SwiftApplication {
  std::string name;
  std::string tasks_per_workflow;
  std::string stages;
};
[[nodiscard]] std::vector<SwiftApplication> swift_application_catalog();

}  // namespace falkon::workflow
