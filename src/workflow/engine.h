// Workflow engine: releases ready tasks to a Provider as their
// dependencies complete (the Karajan/Swift execution loop of section 5).
#pragma once

#include <map>
#include <string>

#include "common/clock.h"
#include "common/stats.h"
#include "workflow/dag.h"
#include "workflow/provider.h"

namespace falkon::workflow {

struct StageStats {
  std::size_t tasks{0};
  double first_ready_s{-1.0};
  double last_done_s{-1.0};
  Accumulator exec_time;
  Accumulator queue_time;
};

struct WorkflowRunStats {
  double makespan_s{0.0};
  std::size_t tasks{0};
  std::size_t failed{0};
  Accumulator queue_time;   // per-task, as reported by the provider
  Accumulator exec_time;    // per-task, as reported by the provider
  std::map<std::string, StageStats> stages;

  /// Table 3 metric: exec_time / (exec_time + queue_time), on means.
  [[nodiscard]] double execution_time_fraction() const {
    const double denominator = exec_time.mean() + queue_time.mean();
    return denominator > 0 ? exec_time.mean() / denominator : 0.0;
  }
};

struct EngineOptions {
  /// Provider poll slice per loop (model seconds).
  double poll_slice_s{1.0};
  /// Abort if the workflow has not finished after this much model time.
  double deadline_s{1e9};
  /// Invoked once per engine loop, for driving co-located components (e.g.
  /// FalkonCluster::step when not using background drivers).
  std::function<void()> on_tick;
};

class WorkflowEngine {
 public:
  WorkflowEngine(Clock& clock, Provider& provider)
      : clock_(clock), provider_(provider) {}

  /// Execute the graph to completion; per-task timings come from the
  /// provider's TaskResults.
  Result<WorkflowRunStats> run(const WorkflowGraph& graph,
                               EngineOptions options = {});

 private:
  Clock& clock_;
  Provider& provider_;
};

}  // namespace falkon::workflow
