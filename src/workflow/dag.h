// Task-graph model ("Swift-lite").
//
// The paper's applications reach Falkon through the Swift parallel
// programming system and the Karajan workflow engine: data-driven task
// graphs whose ready tasks are dispatched as their inputs become available
// (section 1). This module provides the graph; engine.h executes it
// through a pluggable provider (Falkon, GRAM4+PBS, clustered GRAM4+PBS),
// mirroring Swift's provider abstraction (section 3.5).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/task.h"

namespace falkon::workflow {

struct WorkflowNode {
  TaskSpec task;
  std::string stage;               // e.g. "mProject", "stage-9"
  std::vector<std::size_t> deps;   // indices of prerequisite nodes
};

class WorkflowGraph {
 public:
  /// Add a task whose prerequisites must already be in the graph (this
  /// ordering restriction makes cycles unrepresentable). Task ids are
  /// assigned by the graph (index + 1). Returns the node index.
  std::size_t add_task(TaskSpec task, std::string stage,
                       std::vector<std::size_t> deps = {});

  [[nodiscard]] std::size_t size() const { return nodes_.size(); }
  [[nodiscard]] const WorkflowNode& node(std::size_t index) const {
    return nodes_[index];
  }
  [[nodiscard]] const std::vector<WorkflowNode>& nodes() const { return nodes_; }

  /// Distinct stage labels in first-appearance order.
  [[nodiscard]] std::vector<std::string> stages() const;

  /// Structural checks: dependency indices in range and strictly smaller
  /// than the dependent node's index.
  [[nodiscard]] Status validate() const;

  /// Sum of estimated runtimes (the workload's CPU-seconds).
  [[nodiscard]] double total_cpu_s() const;

  /// Length of the longest dependency chain, weighted by runtime: no
  /// schedule on any number of processors can beat this.
  [[nodiscard]] double critical_path_s() const;

  /// Lower bound on makespan with `processors`: max(critical path,
  /// total work / processors).
  [[nodiscard]] double ideal_makespan_s(int processors) const;

  /// Per-stage ideal: sum over stages of ceil(count/processors)*duration,
  /// assuming stages are executed as barriers (how the paper computes the
  /// 1,260 s ideal for the 18-stage workload on 32 machines).
  [[nodiscard]] double staged_ideal_makespan_s(int processors) const;

 private:
  std::vector<WorkflowNode> nodes_;
};

}  // namespace falkon::workflow
