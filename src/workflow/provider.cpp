#include "workflow/provider.h"

#include <algorithm>

namespace falkon::workflow {

FalkonProvider::FalkonProvider(core::DispatcherClient& client,
                               ClientId client_id,
                               core::SessionOptions options) {
  auto session = core::FalkonSession::open(client, client_id, options);
  if (session.ok()) {
    session_ = session.take();
  } else {
    open_error_ = session.error();
  }
}

Status FalkonProvider::submit(std::vector<TaskSpec> tasks) {
  if (!session_) return open_error_;
  return session_->submit(std::move(tasks));
}

std::vector<TaskResult> FalkonProvider::poll(double timeout_s) {
  if (!session_) return {};
  auto batch = session_->wait(1, timeout_s);
  if (!batch.ok()) return {};
  return batch.take();
}

BatchProvider::BatchProvider(Clock& clock, lrm::Gram4Gateway& gram,
                             lrm::BatchScheduler& scheduler)
    : clock_(clock), gram_(gram), scheduler_(scheduler) {}

Status BatchProvider::submit(std::vector<TaskSpec> tasks) {
  for (auto& task : tasks) {
    {
      std::lock_guard lock(mu_);
      submit_time_[task.id.value] = clock_.now_s();
    }
    lrm::JobSpec spec;
    spec.nodes = 1;
    spec.run_time_s = std::max(0.0, task.estimated_runtime_s);
    // Capture by value: the provider outlives all in-flight jobs.
    TaskSpec captured = task;
    spec.on_done = [this, captured](JobId job, bool killed) {
      finish_task(captured, job, killed);
    };
    auto job = gram_.submit(std::move(spec));
    if (!job.ok()) return job.error();
  }
  return ok_status();
}

void BatchProvider::finish_task(const TaskSpec& task, JobId, bool killed) {
  TaskResult result;
  result.task_id = task.id;
  result.exit_code = killed ? 1 : 0;
  result.state = killed ? TaskState::kFailed : TaskState::kCompleted;
  const double now = clock_.now_s();
  std::lock_guard lock(mu_);
  const auto it = submit_time_.find(task.id.value);
  const double submitted = it != submit_time_.end() ? it->second : now;
  if (it != submit_time_.end()) submit_time_.erase(it);
  // GRAM-style accounting: everything after node assignment counts as
  // "execution". We only have the completion event here, so split on the
  // task's nominal runtime: the remainder before it is queue/overhead. To
  // stay faithful to Table 3's methodology, charge the LRM's per-job
  // overheads to exec_time and the rest to queue_time.
  const double prolog = scheduler_.config().dispatch_overhead_s;
  const double epilog = scheduler_.config().cleanup_overhead_s;
  result.exec_time_s = task.estimated_runtime_s + prolog + epilog;
  result.queue_time_s =
      std::max(0.0, (now - submitted) - result.exec_time_s);
  result.overhead_s = prolog + epilog;
  completed_.push_back(std::move(result));
}

std::vector<TaskResult> BatchProvider::poll(double timeout_s) {
  const double slice = 0.25;  // model seconds per driver step
  double waited = 0.0;
  for (;;) {
    gram_.step();
    scheduler_.step();
    {
      std::lock_guard lock(mu_);
      if (!completed_.empty()) {
        std::vector<TaskResult> out(completed_.begin(), completed_.end());
        completed_.clear();
        return out;
      }
    }
    if (waited >= timeout_s) return {};
    clock_.sleep_s(std::min(slice, timeout_s - waited));
    waited += slice;
  }
}

ClusteredBatchProvider::ClusteredBatchProvider(Clock& clock,
                                               lrm::Gram4Gateway& gram,
                                               lrm::BatchScheduler& scheduler,
                                               int clusters, int min_cluster)
    : clock_(clock),
      gram_(gram),
      scheduler_(scheduler),
      clusters_(std::max(1, clusters)),
      min_cluster_(std::max(1, min_cluster)) {}

Status ClusteredBatchProvider::submit(std::vector<TaskSpec> tasks) {
  std::lock_guard lock(mu_);
  const double now = clock_.now_s();
  for (auto& task : tasks) buffer_.emplace_back(std::move(task), now);
  return flush_locked();
}

Status ClusteredBatchProvider::flush_locked() {
  if (buffer_.empty()) return ok_status();
  // Group everything buffered into at most clusters_ jobs of at least
  // min_cluster_ tasks each.
  const int available = static_cast<int>(buffer_.size());
  const int bundles = std::clamp(available / min_cluster_, 1, clusters_);
  std::vector<std::vector<std::pair<TaskSpec, double>>> groups(
      static_cast<std::size_t>(bundles));
  for (std::size_t i = 0; i < buffer_.size(); ++i) {
    groups[i % groups.size()].push_back(std::move(buffer_[i]));
  }
  buffer_.clear();

  for (auto& group : groups) {
    double bundle_runtime = 0.0;
    for (const auto& [task, ready] : group) {
      bundle_runtime += std::max(0.0, task.estimated_runtime_s);
    }
    lrm::JobSpec spec;
    spec.nodes = 1;
    spec.run_time_s = bundle_runtime;
    auto captured =
        std::make_shared<std::vector<std::pair<TaskSpec, double>>>(
            std::move(group));
    spec.on_done = [this, captured](JobId, bool killed) {
      const double now = clock_.now_s();
      std::lock_guard lock(mu_);
      for (const auto& [task, ready] : *captured) {
        TaskResult result;
        result.task_id = task.id;
        result.exit_code = killed ? 1 : 0;
        result.state = killed ? TaskState::kFailed : TaskState::kCompleted;
        result.exec_time_s = task.estimated_runtime_s;
        result.queue_time_s =
            std::max(0.0, now - ready - task.estimated_runtime_s);
        completed_.push_back(std::move(result));
      }
    };
    auto job = gram_.submit(std::move(spec));
    if (!job.ok()) return job.error();
  }
  return ok_status();
}

std::vector<TaskResult> ClusteredBatchProvider::poll(double timeout_s) {
  const double slice = 0.25;
  double waited = 0.0;
  for (;;) {
    gram_.step();
    scheduler_.step();
    {
      std::lock_guard lock(mu_);
      (void)flush_locked();
      if (!completed_.empty()) {
        std::vector<TaskResult> out(completed_.begin(), completed_.end());
        completed_.clear();
        return out;
      }
    }
    if (waited >= timeout_s) return {};
    clock_.sleep_s(std::min(slice, timeout_s - waited));
    waited += slice;
  }
}

}  // namespace falkon::workflow
