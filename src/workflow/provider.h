// Execution providers (the Swift "provider" abstraction, paper section 3.5).
//
// A Provider takes ready tasks from the workflow engine, runs them on some
// substrate, and hands completed TaskResults back on poll(). Three
// providers reproduce the paper's comparisons:
//   * FalkonProvider          — submits to a Falkon dispatcher (the paper's
//                               840-line "Falkon provider" for Swift);
//   * BatchProvider           — one GRAM4 job per task against the LRM
//                               substrate (the GRAM4+PBS baseline);
//   * ClusteredBatchProvider  — packs tasks into k sequential bundles, each
//                               a single GRAM4 job (the "clustering"
//                               configuration of Figures 14/15).
#pragma once

#include <deque>
#include <memory>
#include <mutex>
#include <vector>

#include "core/client.h"
#include "lrm/gram.h"

namespace falkon::workflow {

class Provider {
 public:
  virtual ~Provider() = default;
  [[nodiscard]] virtual const char* name() const = 0;

  /// Hand ready tasks to the substrate; non-blocking.
  virtual Status submit(std::vector<TaskSpec> tasks) = 0;

  /// Collect finished tasks, waiting up to timeout_s (model time) for at
  /// least one; may return empty. Also drives any clock-stepped substrate.
  virtual std::vector<TaskResult> poll(double timeout_s) = 0;
};

/// Runs tasks through a Falkon dispatcher (in-proc or TCP client).
class FalkonProvider final : public Provider {
 public:
  FalkonProvider(core::DispatcherClient& client, ClientId client_id,
                 core::SessionOptions options = {});

  [[nodiscard]] const char* name() const override { return "falkon"; }
  Status submit(std::vector<TaskSpec> tasks) override;
  std::vector<TaskResult> poll(double timeout_s) override;

 private:
  std::unique_ptr<core::FalkonSession> session_;
  Status open_error_{ok_status()};
};

/// One GRAM4+LRM job per task. The reported TaskResult timings mirror what
/// GRAM exposes: queue_time = submit -> node assignment, exec_time = node
/// assignment -> node release (which is why short tasks look so slow on
/// this path — the per-job prolog/epilog is charged to "execution").
class BatchProvider final : public Provider {
 public:
  BatchProvider(Clock& clock, lrm::Gram4Gateway& gram,
                lrm::BatchScheduler& scheduler);

  [[nodiscard]] const char* name() const override { return "gram4+lrm"; }
  Status submit(std::vector<TaskSpec> tasks) override;
  std::vector<TaskResult> poll(double timeout_s) override;

 private:
  void finish_task(const TaskSpec& task, JobId gram_job, bool killed);

  Clock& clock_;
  lrm::Gram4Gateway& gram_;
  lrm::BatchScheduler& scheduler_;
  std::mutex mu_;
  std::deque<TaskResult> completed_;
  std::map<std::uint64_t, double> submit_time_;  // by task id
};

/// Swift-style task clustering: ready tasks accumulate in a buffer, and
/// each poll cycle flushes the buffer into at most `clusters` LRM jobs
/// (each at least `min_cluster` tasks, run sequentially on one node). This
/// amortises the GRAM+LRM per-job overhead across many tasks — the
/// "clustering" configuration of Figures 14/15 that the paper credits with
/// a >4x improvement over one-job-per-task.
class ClusteredBatchProvider final : public Provider {
 public:
  ClusteredBatchProvider(Clock& clock, lrm::Gram4Gateway& gram,
                         lrm::BatchScheduler& scheduler, int clusters,
                         int min_cluster = 1);

  [[nodiscard]] const char* name() const override { return "gram4+clustering"; }
  Status submit(std::vector<TaskSpec> tasks) override;
  std::vector<TaskResult> poll(double timeout_s) override;

 private:
  Status flush_locked();

  Clock& clock_;
  lrm::Gram4Gateway& gram_;
  lrm::BatchScheduler& scheduler_;
  int clusters_;
  int min_cluster_;
  std::mutex mu_;
  std::vector<std::pair<TaskSpec, double>> buffer_;  // task, ready time
  std::deque<TaskResult> completed_;
};

}  // namespace falkon::workflow
