#include "workflow/dag.h"

#include <algorithm>
#include <cmath>
#include <map>

namespace falkon::workflow {

std::size_t WorkflowGraph::add_task(TaskSpec task, std::string stage,
                                    std::vector<std::size_t> deps) {
  const std::size_t index = nodes_.size();
  task.id = TaskId{index + 1};
  WorkflowNode node;
  node.task = std::move(task);
  node.stage = std::move(stage);
  node.deps = std::move(deps);
  nodes_.push_back(std::move(node));
  return index;
}

std::vector<std::string> WorkflowGraph::stages() const {
  std::vector<std::string> out;
  for (const auto& node : nodes_) {
    if (std::find(out.begin(), out.end(), node.stage) == out.end()) {
      out.push_back(node.stage);
    }
  }
  return out;
}

Status WorkflowGraph::validate() const {
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    for (std::size_t dep : nodes_[i].deps) {
      if (dep >= i) {
        return make_error(ErrorCode::kInvalidArgument,
                          "node " + std::to_string(i) +
                              " depends on non-earlier node " +
                              std::to_string(dep));
      }
    }
  }
  return ok_status();
}

double WorkflowGraph::total_cpu_s() const {
  double total = 0.0;
  for (const auto& node : nodes_) total += node.task.estimated_runtime_s;
  return total;
}

double WorkflowGraph::critical_path_s() const {
  std::vector<double> finish(nodes_.size(), 0.0);
  double best = 0.0;
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    double start = 0.0;
    for (std::size_t dep : nodes_[i].deps) start = std::max(start, finish[dep]);
    finish[i] = start + nodes_[i].task.estimated_runtime_s;
    best = std::max(best, finish[i]);
  }
  return best;
}

double WorkflowGraph::ideal_makespan_s(int processors) const {
  processors = std::max(processors, 1);
  return std::max(critical_path_s(), total_cpu_s() / processors);
}

double WorkflowGraph::staged_ideal_makespan_s(int processors) const {
  processors = std::max(processors, 1);
  // stage label -> (count, max duration)
  std::map<std::string, std::pair<std::size_t, double>> per_stage;
  std::vector<std::string> order = stages();
  for (const auto& node : nodes_) {
    auto& [count, duration] = per_stage[node.stage];
    ++count;
    duration = std::max(duration, node.task.estimated_runtime_s);
  }
  double total = 0.0;
  for (const auto& stage : order) {
    const auto& [count, duration] = per_stage[stage];
    total += std::ceil(static_cast<double>(count) / processors) * duration;
  }
  return total;
}

}  // namespace falkon::workflow
