#include "workflow/workloads.h"

#include <algorithm>

#include "common/strings.h"

namespace falkon::workflow {

WorkflowGraph make_sleep_workload(std::size_t count, double task_length_s) {
  WorkflowGraph graph;
  for (std::size_t i = 0; i < count; ++i) {
    TaskSpec task;
    task.executable = "sleep";
    task.args = {std::to_string(task_length_s)};
    task.estimated_runtime_s = task_length_s;
    task.capture_output = false;
    graph.add_task(std::move(task), "sleep");
  }
  return graph;
}

std::vector<SyntheticStage> synthetic_18stage_shape() {
  return {
      {1, 60.0},    // 1: exponential ramp ...
      {2, 60.0},    // 2
      {4, 60.0},    // 3
      {8, 60.0},    // 4
      {16, 60.0},   // 5
      {32, 60.0},   // 6
      {64, 60.0},   // 7
      {1, 120.0},   // 8: sudden drop, one long task
      {500, 6.0},   // 9: surge of many short tasks
      {284, 12.0},  // 10: second surge
      {1, 60.0},    // 11: drop
      {32, 60.0},   // 12: modest increase
      {24, 60.0},   // 13: linear decrease ...
      {16, 60.0},   // 14
      {8, 60.0},    // 15: exponential decrease ...
      {4, 60.0},    // 16
      {2, 60.0},    // 17
      {1, 60.0},    // 18
  };
}

WorkflowGraph make_synthetic_18stage() {
  WorkflowGraph graph;
  const auto shape = synthetic_18stage_shape();
  std::vector<std::size_t> previous_stage;
  for (std::size_t s = 0; s < shape.size(); ++s) {
    std::vector<std::size_t> this_stage;
    for (int t = 0; t < shape[s].tasks; ++t) {
      TaskSpec task;
      task.executable = "sleep";
      task.args = {std::to_string(shape[s].task_length_s)};
      task.estimated_runtime_s = shape[s].task_length_s;
      task.capture_output = false;
      // Stage barrier: every task depends on the whole previous stage.
      this_stage.push_back(graph.add_task(
          std::move(task), strf("stage-%02zu", s + 1), previous_stage));
    }
    previous_stage = std::move(this_stage);
  }
  return graph;
}

WorkflowGraph make_fmri_workflow(int volumes, double task_length_s) {
  WorkflowGraph graph;
  const char* stages[4] = {"reorient", "realign", "reslice", "smooth"};
  std::vector<std::size_t> previous(static_cast<std::size_t>(volumes));
  for (int step = 0; step < 4; ++step) {
    for (int v = 0; v < volumes; ++v) {
      TaskSpec task;
      task.executable = stages[step];
      task.args = {strf("volume-%04d", v)};
      task.estimated_runtime_s = task_length_s;
      task.data_object = strf("vol-%04d-step%d", v, step);
      task.capture_output = false;
      std::vector<std::size_t> deps;
      if (step > 0) deps.push_back(previous[static_cast<std::size_t>(v)]);
      previous[static_cast<std::size_t>(v)] =
          graph.add_task(std::move(task), stages[step], std::move(deps));
    }
  }
  // Per-run average step for the larger problem sizes (keeps task counts in
  // line with the paper's 480 volumes -> 1960 tasks: 4*480 + 480/12).
  if (volumes >= 240) {
    for (int group = 0; group < volumes / 12; ++group) {
      TaskSpec task;
      task.executable = "average";
      task.estimated_runtime_s = task_length_s;
      task.capture_output = false;
      std::vector<std::size_t> deps;
      for (int k = 0; k < 12; ++k) {
        deps.push_back(previous[static_cast<std::size_t>(group * 12 + k)]);
      }
      graph.add_task(std::move(task), "average", std::move(deps));
    }
  }
  return graph;
}

WorkflowGraph make_montage_workflow(int input_images, int overlaps,
                                    int coadd_tiles, std::uint64_t seed) {
  WorkflowGraph graph;
  Rng rng(seed);

  // Stage 1: mProject — reproject every input image (the expensive step).
  std::vector<std::size_t> project(static_cast<std::size_t>(input_images));
  for (int i = 0; i < input_images; ++i) {
    TaskSpec task;
    task.executable = "mProject";
    task.args = {strf("raw-%04d.fits", i)};
    task.estimated_runtime_s = rng.uniform(60.0, 100.0);
    task.data_object = strf("proj-%04d.fits", i);
    task.capture_output = false;
    project[static_cast<std::size_t>(i)] =
        graph.add_task(std::move(task), "mProject");
  }

  // Stage 2+3: mDiff / mFit over overlapping pairs — many tiny tasks.
  std::vector<std::size_t> fits;
  fits.reserve(static_cast<std::size_t>(overlaps));
  for (int j = 0; j < overlaps; ++j) {
    const auto a = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::uint64_t>(input_images - 1)));
    auto b = static_cast<std::size_t>(
        rng.uniform_int(0, static_cast<std::uint64_t>(input_images - 1)));
    if (b == a) b = (b + 1) % static_cast<std::size_t>(input_images);
    TaskSpec diff;
    diff.executable = "mDiff";
    diff.estimated_runtime_s = rng.uniform(3.0, 8.0);
    diff.capture_output = false;
    const std::size_t diff_index = graph.add_task(
        std::move(diff), "mDiff",
        {project[std::min(a, b)], project[std::max(a, b)]});

    TaskSpec fit;
    fit.executable = "mFitplane";
    fit.estimated_runtime_s = rng.uniform(2.0, 5.0);
    fit.capture_output = false;
    fits.push_back(graph.add_task(std::move(fit), "mFit", {diff_index}));
  }

  // Stage 4: mBgModel — single global background solve over all fits.
  TaskSpec bg_model;
  bg_model.executable = "mBgModel";
  bg_model.estimated_runtime_s = 60.0;
  bg_model.capture_output = false;
  const std::size_t bg_index =
      graph.add_task(std::move(bg_model), "mBgModel", fits);

  // Stage 5: mBackground — correct every projected image.
  std::vector<std::size_t> corrected(static_cast<std::size_t>(input_images));
  for (int i = 0; i < input_images; ++i) {
    TaskSpec task;
    task.executable = "mBackground";
    task.estimated_runtime_s = rng.uniform(10.0, 20.0);
    task.capture_output = false;
    corrected[static_cast<std::size_t>(i)] = graph.add_task(
        std::move(task), "mBackground",
        {project[static_cast<std::size_t>(i)], bg_index});
  }

  // Stage 6: the co-add, decomposed into parallel tiles ("to enhance
  // concurrency, we decompose the co-add into two steps").
  std::vector<std::size_t> tiles;
  coadd_tiles = std::max(1, coadd_tiles);
  for (int t = 0; t < coadd_tiles; ++t) {
    std::vector<std::size_t> deps;
    for (int i = t; i < input_images; i += coadd_tiles) {
      deps.push_back(corrected[static_cast<std::size_t>(i)]);
    }
    TaskSpec task;
    task.executable = "mAddSub";
    task.estimated_runtime_s = rng.uniform(40.0, 80.0);
    task.capture_output = false;
    tiles.push_back(graph.add_task(std::move(task), "mAddSub", std::move(deps)));
  }

  // Stage 7: final mAdd — sequential in the Swift version (the paper notes
  // only the MPI version parallelised the second co-add step).
  TaskSpec add;
  add.executable = "mAdd";
  add.estimated_runtime_s = 180.0;
  add.capture_output = false;
  graph.add_task(std::move(add), "mAdd", tiles);

  return graph;
}

WorkflowGraph make_stacking_workload(int stacks, int images_per_stack,
                                     int catalog_images, std::uint64_t seed) {
  WorkflowGraph graph;
  Rng rng(seed);
  for (int s = 0; s < stacks; ++s) {
    std::vector<std::size_t> cutouts;
    cutouts.reserve(static_cast<std::size_t>(images_per_stack));
    for (int i = 0; i < images_per_stack; ++i) {
      // Popular-object skew: half the accesses hit a small hot subset of
      // the image catalog, giving caches something to win on.
      const auto image =
          rng.bernoulli(0.5)
              ? rng.uniform_int(0, static_cast<std::uint64_t>(
                                       std::max(1, catalog_images / 10) - 1))
              : rng.uniform_int(0, static_cast<std::uint64_t>(catalog_images - 1));
      TaskSpec cutout = make_data_task(
          TaskId{}, /*compute_s=*/0.3, DataLocation::kSharedFs, IoMode::kRead,
          /*input=*/8ULL << 20, /*output=*/0);
      cutout.executable = "getCutout";
      cutout.data_object = strf("sdss-image-%04llu",
                                static_cast<unsigned long long>(image));
      cutouts.push_back(graph.add_task(std::move(cutout), "cutout"));
    }
    TaskSpec coadd;
    coadd.executable = "doStacking";
    coadd.estimated_runtime_s = 1.0;
    coadd.capture_output = false;
    graph.add_task(std::move(coadd), "stack", std::move(cutouts));
  }
  return graph;
}

WorkflowGraph make_moldyn_workflow(int molecules) {
  WorkflowGraph graph;
  // Eight stages per molecule, alternating cheap setup and long dynamics
  // steps, plus a final whole-set analysis task.
  struct Step {
    const char* name;
    double runtime_s;
  };
  const Step steps[8] = {
      {"antechamber", 5.0}, {"parmchk", 2.0},   {"tleap", 3.0},
      {"minimize", 60.0},   {"heat", 120.0},    {"equilibrate", 240.0},
      {"production", 600.0}, {"analysis", 30.0},
  };
  std::vector<std::size_t> last(static_cast<std::size_t>(molecules));
  for (int step = 0; step < 8; ++step) {
    for (int m = 0; m < molecules; ++m) {
      TaskSpec task;
      task.executable = steps[step].name;
      task.args = {strf("mol-%05d", m)};
      task.estimated_runtime_s = steps[step].runtime_s;
      task.capture_output = false;
      std::vector<std::size_t> deps;
      if (step > 0) deps.push_back(last[static_cast<std::size_t>(m)]);
      last[static_cast<std::size_t>(m)] = graph.add_task(
          std::move(task), steps[step].name, std::move(deps));
    }
  }
  TaskSpec summary;
  summary.executable = "free-energy-summary";
  summary.estimated_runtime_s = 20.0;
  summary.capture_output = false;
  graph.add_task(std::move(summary), "summary",
                 std::vector<std::size_t>(last.begin(), last.end()));
  return graph;
}

std::vector<SwiftApplication> swift_application_catalog() {
  return {
      {"ATLAS: High Energy Physics Event Simulation", "500K", "1"},
      {"fMRI DBIC: AIRSN Image Processing", "100s", "12"},
      {"FOAM: Ocean/Atmosphere Model", "2000", "3"},
      {"GADU: Genomics", "40K", "4"},
      {"HNL: fMRI Aphasia Study", "500", "4"},
      {"NVO/NASA: Photorealistic Montage/Morphology", "1000s", "16"},
      {"QuarkNet/I2U2: Physics Science Education", "10s", "3~6"},
      {"RadCAD: Radiology Classifier Training", "1000s", "5"},
      {"SIDGrid: EEG Wavelet Processing, Gaze Analysis", "100s", "20"},
      {"SDSS: Coadd, Cluster Search", "40K, 500K", "2, 8"},
      {"SDSS: Stacking, AstroPortal", "10Ks ~ 100Ks", "2 ~ 4"},
      {"MolDyn: Molecular Dynamics", "1Ks ~ 20Ks", "8"},
  };
}

}  // namespace falkon::workflow
