#include "workflow/engine.h"

#include <vector>

namespace falkon::workflow {

Result<WorkflowRunStats> WorkflowEngine::run(const WorkflowGraph& graph,
                                             EngineOptions options) {
  if (auto status = graph.validate(); !status.ok()) return status.error();

  const std::size_t n = graph.size();
  std::vector<int> missing_deps(n, 0);
  std::vector<std::vector<std::size_t>> children(n);
  for (std::size_t i = 0; i < n; ++i) {
    missing_deps[i] = static_cast<int>(graph.node(i).deps.size());
    for (std::size_t dep : graph.node(i).deps) children[dep].push_back(i);
  }

  WorkflowRunStats stats;
  stats.tasks = n;
  const double start = clock_.now_s();

  auto release = [&](const std::vector<std::size_t>& indices) -> Status {
    if (indices.empty()) return ok_status();
    std::vector<TaskSpec> batch;
    batch.reserve(indices.size());
    const double now = clock_.now_s();
    for (std::size_t index : indices) {
      const auto& node = graph.node(index);
      auto& stage = stats.stages[node.stage];
      ++stage.tasks;
      if (stage.first_ready_s < 0) stage.first_ready_s = now - start;
      batch.push_back(node.task);
    }
    return provider_.submit(std::move(batch));
  };

  // Seed with the initially ready tasks.
  std::vector<std::size_t> ready;
  for (std::size_t i = 0; i < n; ++i) {
    if (missing_deps[i] == 0) ready.push_back(i);
  }
  if (auto status = release(ready); !status.ok()) return status.error();

  std::size_t done = 0;
  while (done < n) {
    if (clock_.now_s() - start > options.deadline_s) {
      return make_error(ErrorCode::kTimeout,
                        "workflow deadline exceeded with " +
                            std::to_string(done) + "/" + std::to_string(n) +
                            " tasks done");
    }
    if (options.on_tick) options.on_tick();
    auto results = provider_.poll(options.poll_slice_s);
    std::vector<std::size_t> newly_ready;
    for (const auto& result : results) {
      if (!result.task_id.valid() || result.task_id.value > n) continue;
      const std::size_t index = result.task_id.value - 1;
      ++done;
      stats.queue_time.add(result.queue_time_s);
      stats.exec_time.add(result.exec_time_s);
      auto& stage = stats.stages[graph.node(index).stage];
      stage.exec_time.add(result.exec_time_s);
      stage.queue_time.add(result.queue_time_s);
      stage.last_done_s = clock_.now_s() - start;
      if (!result.success()) ++stats.failed;
      for (std::size_t child : children[index]) {
        if (--missing_deps[child] == 0) newly_ready.push_back(child);
      }
    }
    if (auto status = release(newly_ready); !status.ok()) {
      return status.error();
    }
  }
  stats.makespan_s = clock_.now_s() - start;
  return stats;
}

}  // namespace falkon::workflow
