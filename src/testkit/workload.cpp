#include "testkit/workload.h"

#include <algorithm>

#include "common/rng.h"

namespace falkon::testkit {

WorkloadSpec generate_workload(std::uint64_t seed) {
  // Offset stream so spec draws never collide with fault::random_plan's
  // (which XORs its own constant into the same seed).
  Rng rng(seed ^ 0x9e3779b97f4a7c15ULL);

  WorkloadSpec spec;
  spec.seed = seed;
  spec.task_count = rng.uniform_int(1, 160);
  spec.executors = static_cast<int>(rng.uniform_int(1, 8));
  // Mostly instant tasks; occasionally short sleeps so execution genuinely
  // overlaps dispatch.
  spec.task_length_s = rng.bernoulli(0.25) ? rng.uniform(0.001, 0.02) : 0.0;

  spec.client_bundle = static_cast<int>(rng.uniform_int(1, 64));
  spec.piggyback = rng.bernoulli(0.7);
  spec.max_tasks_per_dispatch =
      static_cast<std::uint32_t>(rng.uniform_int(1, 8));
  spec.executor_bundle = static_cast<std::uint32_t>(rng.uniform_int(1, 8));
  spec.adaptive_bundle = rng.bernoulli(0.3);
  spec.max_adaptive_bundle =
      static_cast<std::uint32_t>(rng.uniform_int(4, 64));
  spec.max_bundle_runtime_s = rng.bernoulli(0.2) ? rng.uniform(0.01, 0.5) : 0.0;

  // Generous budget: recoverable fault plans must converge well inside it.
  spec.max_retries = static_cast<int>(rng.uniform_int(16, 64));
  spec.replay_timeout_s = rng.uniform(0.3, 1.0);
  spec.supervise = true;

  // Roughly a quarter of all cases exercise data-aware routing.
  spec.data_objects =
      rng.bernoulli(0.25) ? static_cast<int>(rng.uniform_int(1, 12)) : 0;

  // Roughly a third of all cases carry faults.
  spec.fault_intensity = rng.bernoulli(0.35) ? rng.uniform(0.2, 1.0) : 0.0;
  return spec;
}

fault::FaultPlan fault_plan(const WorkloadSpec& spec) {
  if (!spec.faulty()) return fault::FaultPlan{spec.seed, {}, {}};
  return fault::random_plan(spec.seed, spec.fault_intensity);
}

std::string describe(const WorkloadSpec& spec) {
  std::string out = "WorkloadSpec{";
  out += ".seed=" + std::to_string(spec.seed);
  out += ", .task_count=" + std::to_string(spec.task_count);
  out += ", .executors=" + std::to_string(spec.executors);
  out += ", .task_length_s=" + std::to_string(spec.task_length_s);
  out += ", .client_bundle=" + std::to_string(spec.client_bundle);
  out += ", .piggyback=" + std::string(spec.piggyback ? "true" : "false");
  out += ", .max_tasks_per_dispatch=" +
         std::to_string(spec.max_tasks_per_dispatch);
  out += ", .executor_bundle=" + std::to_string(spec.executor_bundle);
  out += ", .adaptive_bundle=" +
         std::string(spec.adaptive_bundle ? "true" : "false");
  out += ", .max_adaptive_bundle=" + std::to_string(spec.max_adaptive_bundle);
  out += ", .max_bundle_runtime_s=" + std::to_string(spec.max_bundle_runtime_s);
  out += ", .max_retries=" + std::to_string(spec.max_retries);
  out += ", .replay_timeout_s=" + std::to_string(spec.replay_timeout_s);
  out += ", .supervise=" + std::string(spec.supervise ? "true" : "false");
  out += ", .data_objects=" + std::to_string(spec.data_objects);
  out += ", .fault_intensity=" + std::to_string(spec.fault_intensity);
  out += ", .kill_primary_after=" + std::to_string(spec.kill_primary_after);
  return out + "}";
}

std::uint64_t spec_size(const WorkloadSpec& spec) {
  // Dominated by task count, then fleet size, then knob complexity. Each
  // "complex" knob adds one so disabling it strictly shrinks.
  std::uint64_t size = spec.task_count * 16;
  size += static_cast<std::uint64_t>(spec.executors) * 4;
  if (spec.faulty()) size += 8;
  if (spec.task_length_s > 0) size += 1;
  if (spec.adaptive_bundle) size += 1;
  if (spec.max_tasks_per_dispatch > 1) size += 1;
  if (spec.executor_bundle > 1) size += 1;
  if (spec.max_bundle_runtime_s > 0) size += 1;
  if (spec.client_bundle > 1) size += 1;
  if (!spec.piggyback) size += 1;
  if (spec.data_objects > 0) size += 2;  // data plane + locality routing
  if (spec.kill_primary_after > 0) size += 8;  // a takeover dominates knobs
  return size;
}

std::vector<WorkloadSpec> shrink_candidates(const WorkloadSpec& spec) {
  std::vector<WorkloadSpec> out;
  const auto push = [&](auto&& mutate) {
    WorkloadSpec candidate = spec;
    mutate(candidate);
    if (spec_size(candidate) < spec_size(spec)) out.push_back(candidate);
  };

  // Aggressive first: halve the workload, then the fleet, then strip the
  // fault plan, then simplify knobs one at a time.
  if (spec.task_count > 1) {
    push([](WorkloadSpec& s) { s.task_count /= 2; });
    push([](WorkloadSpec& s) { s.task_count -= 1; });
  }
  if (spec.executors > 1) {
    push([](WorkloadSpec& s) { s.executors = std::max(1, s.executors / 2); });
    push([](WorkloadSpec& s) { s.executors -= 1; });
  }
  if (spec.faulty()) push([](WorkloadSpec& s) { s.fault_intensity = 0.0; });
  if (spec.data_objects > 0) {
    push([](WorkloadSpec& s) { s.data_objects = 0; });
  }
  if (spec.kill_primary_after > 0) {
    push([](WorkloadSpec& s) { s.kill_primary_after = 0.0; });
  }
  if (spec.task_length_s > 0) push([](WorkloadSpec& s) { s.task_length_s = 0.0; });
  if (spec.adaptive_bundle) {
    push([](WorkloadSpec& s) { s.adaptive_bundle = false; });
  }
  if (spec.max_tasks_per_dispatch > 1) {
    push([](WorkloadSpec& s) { s.max_tasks_per_dispatch = 1; });
  }
  if (spec.executor_bundle > 1) {
    push([](WorkloadSpec& s) { s.executor_bundle = 1; });
  }
  if (spec.max_bundle_runtime_s > 0) {
    push([](WorkloadSpec& s) { s.max_bundle_runtime_s = 0.0; });
  }
  if (spec.client_bundle > 1) push([](WorkloadSpec& s) { s.client_bundle = 1; });
  if (!spec.piggyback) push([](WorkloadSpec& s) { s.piggyback = true; });
  return out;
}

}  // namespace falkon::testkit
