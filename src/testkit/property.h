// falkon::testkit — the property harness.
//
// A Property maps a WorkloadSpec to a list of violations (empty = holds).
// check_property drives it over `cases` seeded workloads; on the first
// failure it prints the seed (replayable with FALKON_TEST_SEED=<n>) and
// greedily shrinks the failing spec through shrink_candidates until no
// strictly-smaller mutation still fails, so the report carries a *minimal*
// counterexample alongside the original.
//
// Environment knobs (read per check_property call):
//   FALKON_TEST_SEED=<n>   replay exactly seed n (one case, no scan)
//   FALKON_PROP_CASES=<n>  override the case budget (ci.sh's prop stage
//                          raises it; a plain ctest run uses the default)
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "testkit/workload.h"

namespace falkon::testkit {

using Property = std::function<std::vector<std::string>(const WorkloadSpec&)>;

struct PropertyOptions {
  /// First seed of the scan; case i uses base_seed + i. Fixed per suite so
  /// every ctest invocation re-checks the same seed block (deterministic CI)
  /// while different suites cover different blocks.
  std::uint64_t base_seed{1};
  /// Seeded cases to run (before env overrides).
  int cases{100};
  /// Bound on shrink iterations (each iteration re-runs the property once
  /// per candidate until one fails).
  int max_shrink_steps{64};
};

struct PropertyOutcome {
  bool passed{true};
  int cases_run{0};
  /// Set on failure.
  std::uint64_t failing_seed{0};
  WorkloadSpec original;       // the spec generated from failing_seed
  WorkloadSpec minimal;        // after shrinking (== original if unshrinkable)
  std::vector<std::string> violations;  // from the minimal spec
  int shrink_steps{0};

  /// Failure report: seed, replay instructions, original and minimal specs,
  /// violations — the string tests hand to ASSERT_TRUE.
  [[nodiscard]] std::string report(const std::string& name) const;
};

/// Run `property` over seeded workloads. Prints one line per failure to
/// stderr (seed + replay hint) as it happens; details go in the outcome.
[[nodiscard]] PropertyOutcome check_property(const std::string& name,
                                             const PropertyOptions& options,
                                             const Property& property);

/// Shrink `spec` against `property` alone (exposed for harness tests and
/// for shrinking externally-found counterexamples).
[[nodiscard]] PropertyOutcome shrink_failure(const std::string& name,
                                             const WorkloadSpec& spec,
                                             const PropertyOptions& options,
                                             const Property& property);

}  // namespace falkon::testkit
