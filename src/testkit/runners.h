// falkon::testkit — backend runners.
//
// Each runner executes one WorkloadSpec end-to-end on a different backend
// and returns the RunHistory the checkers consume:
//
//   run_sim     the DES (sim::simulate_falkon) — model time, single thread,
//               bit-reproducible under the spec's seed
//   run_inproc  real Dispatcher + LocalExecutorHarness fleet — threads and
//               locks, no wire
//   run_tcp     full loopback-TCP deployment (TcpDispatcherServer +
//               TcpExecutorHarness) — the production protocol, including
//               bundle_seq retirement
//
// All three enable obs tracing with a ring sized to hold the whole run, so
// the resulting histories are complete protocol transcripts. Threaded
// runners supervise the fleet (respawning crashed executors, like a
// provisioner holding an allocation at size) and bound the run with a real
// deadline: a stall is reported through RunHistory::run_error rather than
// hanging the property harness.
#pragma once

#include "testkit/history.h"
#include "testkit/workload.h"

namespace falkon::testkit {

/// Run the spec through the discrete-event simulation.
[[nodiscard]] RunHistory run_sim(const WorkloadSpec& spec);

/// Run the spec on a real dispatcher with in-process executors.
[[nodiscard]] RunHistory run_inproc(const WorkloadSpec& spec);

/// Run the spec on the loopback-TCP stack. `deadline_s` bounds wall time.
[[nodiscard]] RunHistory run_tcp(const WorkloadSpec& spec,
                                 double deadline_s = 60.0);

}  // namespace falkon::testkit
