// falkon::testkit — backend runners.
//
// Each runner executes one WorkloadSpec end-to-end on a different backend
// and returns the RunHistory the checkers consume:
//
//   run_sim     the DES (sim::simulate_falkon) — model time, single thread,
//               bit-reproducible under the spec's seed
//   run_inproc  real Dispatcher + LocalExecutorHarness fleet — threads and
//               locks, no wire
//   run_tcp     full loopback-TCP deployment (TcpDispatcherServer +
//               TcpExecutorHarness) — the production protocol, including
//               bundle_seq retirement
//
// All three enable obs tracing with a ring sized to hold the whole run, so
// the resulting histories are complete protocol transcripts. Threaded
// runners supervise the fleet (respawning crashed executors, like a
// provisioner holding an allocation at size) and bound the run with a real
// deadline: a stall is reported through RunHistory::run_error rather than
// hanging the property harness.
#pragma once

#include "testkit/history.h"
#include "testkit/workload.h"

namespace falkon::testkit {

/// Run the spec through the discrete-event simulation.
[[nodiscard]] RunHistory run_sim(const WorkloadSpec& spec);

/// Run the spec on a real dispatcher with in-process executors.
[[nodiscard]] RunHistory run_inproc(const WorkloadSpec& spec);

/// Run the spec on the loopback-TCP stack. `deadline_s` bounds wall time.
[[nodiscard]] RunHistory run_tcp(const WorkloadSpec& spec,
                                 double deadline_s = 60.0);

/// HA-runner knobs beyond the spec (the spec itself carries
/// kill_primary_after so property shrinking can turn the takeover off).
struct HaRunOptions {
  /// Election-capable warm standbys tailing the primary.
  int standbys{2};
  /// After the first takeover has settled, kill the winning standby too,
  /// forcing a second election among the survivors (needs standbys >= 2).
  bool kill_winner_too{false};
  /// Journal the primary through ha::AsyncJournal (group commit off the
  /// hot path); false = synchronous ha::Journal.
  bool async_journal{true};
  double deadline_s{90.0};
};

/// Run the spec on the loopback-TCP stack with a journaled primary and a
/// fleet of warm standbys; honours spec.kill_primary_after by killing the
/// primary mid-run and riding the election/takeover with an
/// ha::FailoverClient. Fills ha_run/primary_epochs so check_invariants
/// exercises I9 (one primary per epoch) and I10 (exactly-once across
/// promotion).
[[nodiscard]] RunHistory run_tcp_ha(const WorkloadSpec& spec,
                                    const HaRunOptions& ha = {});

}  // namespace falkon::testkit
