// falkon::testkit — protocol histories and the dispatcher invariant model.
//
// A RunHistory is everything one backend run leaves behind: the dispatcher's
// terminal accounting, the obs lifecycle trace (replayed offline from the
// lock-free ring, so checking never perturbs the hot path), the result ids
// the client actually picked up, and — for the TCP backend — the bundle_seq
// lifecycle counters.
//
// check_invariants encodes the dispatcher state machine the paper relies on
// (§4.3: no task lost, none double-completed across millions of tasks):
//
//   I1  conservation        submitted == completed + failed; queue and
//                           in-flight set empty at quiesce
//   I2  exactly-one-submit  every traced task has exactly one kSubmit
//   I3  at-most-one-ack     no un-retried double completion: <= 1 kAck per
//                           task, and completed tasks account for all acks
//   I4  stage ordering      kSubmit first; no kExec before the first
//                           kGetWork; kAck never precedes a kDeliverResult
//                           (kNotify excluded: the real dispatcher records
//                           it for the queue head at pump time, which may
//                           not be the task the woken executor pulls)
//   I5  retry budget        dispatch attempts per task <= max_retries + 1
//                           (only checkable when no failure detector
//                           requeues occurred — those are not replays)
//   I6  quarantine monotone sampled quarantine counter never decreases
//   I7  bundles drain       pending_bundles gauge reads 0 at quiesce and
//                           bundle_seqs issued == retired (TCP backend)
//   I8  unique delivery     no result id delivered to the client twice
//   I9  one-primary-per-epoch (HA runs) promotion epochs strictly increase:
//                           no two dispatchers ever served the same epoch
//   I10 exactly-once-across-promotion (HA runs) despite takeovers the
//                           client collected every submitted task exactly
//                           once — dupes caught by I8, loss caught here
//
// check_conformance compares two histories of the *same* WorkloadSpec (DES
// vs threaded stack): same task set, both quiescent, same per-task terminal
// ack discipline, and — for recoverable fault plans — full completion on
// both sides.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace falkon::testkit {

/// Everything one run leaves behind for the checkers.
struct RunHistory {
  std::string backend;  // "sim" | "inproc" | "tcp"

  // Terminal dispatcher accounting (DispatcherStatus / SimFalkonResult).
  std::uint64_t submitted{0};
  std::uint64_t completed{0};
  std::uint64_t failed{0};
  std::uint64_t retried{0};
  std::uint64_t quarantined{0};
  std::uint64_t suspicions{0};
  std::uint64_t queued_at_end{0};
  std::uint64_t dispatched_at_end{0};

  /// Retry budget the run was configured with; < 0 = unbounded (I5 skipped).
  int max_retries{-1};

  /// Lifecycle trace, oldest first. Only meaningful when trace_complete.
  std::vector<obs::SpanEvent> events;
  /// Ring kept every event (Tracer::complete()); checkers demand this.
  bool trace_complete{false};

  /// Result ids the client picked up, in delivery order. May be shorter
  /// than `completed` when reply frames were lost; never contains dupes.
  std::vector<std::uint64_t> result_ids;

  /// TCP backend only (has_bundle_counters): bundle_seq lifecycle.
  bool has_bundle_counters{false};
  double pending_bundles_gauge{0.0};
  std::uint64_t bundles_issued{0};
  std::uint64_t bundles_retired{0};

  /// Periodic samples of the quarantine counter during the run (I6).
  std::vector<std::uint64_t> quarantine_series;

  /// HA runs only (ha_run): the epoch of every dispatcher that served as
  /// primary during the run, in serving order — the seed primary first,
  /// then each promoted standby. I9 demands strict increase.
  bool ha_run{false};
  std::vector<std::uint64_t> primary_epochs;

  /// Fault-injector decisions that fired during the run (0 for fault-free
  /// specs). Lets suites assert their fault-bearing cases actually bit.
  std::uint64_t injected_faults{0};

  /// Non-empty when the runner itself failed (stall past deadline, refused
  /// connection, ...). Checkers surface it as a violation.
  std::string run_error;
};

/// Replay `history` through the invariant model. Returns human-readable
/// violations; empty = all invariants hold.
[[nodiscard]] std::vector<std::string> check_invariants(
    const RunHistory& history);

/// Compare two histories of the same workload. `require_all_complete`
/// demands completed == submitted on both sides (valid for fault-free specs
/// and for fault::random_plan's recoverable-by-construction plans under a
/// generous retry budget).
[[nodiscard]] std::vector<std::string> check_conformance(
    const RunHistory& a, const RunHistory& b, bool require_all_complete);

/// Render violations for a test failure message, one per line.
[[nodiscard]] std::string join_violations(
    const std::vector<std::string>& violations);

}  // namespace falkon::testkit
