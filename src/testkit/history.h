// falkon::testkit — protocol histories and the dispatcher invariant model.
//
// A RunHistory is everything one backend run leaves behind: the dispatcher's
// terminal accounting, the obs lifecycle trace (replayed offline from the
// lock-free ring, so checking never perturbs the hot path), the result ids
// the client actually picked up, and — for the TCP backend — the bundle_seq
// lifecycle counters.
//
// check_invariants encodes the dispatcher state machine the paper relies on
// (§4.3: no task lost, none double-completed across millions of tasks):
//
//   I1  conservation        submitted == completed + failed; queue and
//                           in-flight set empty at quiesce
//   I2  exactly-one-submit  every traced task has exactly one kSubmit
//   I3  at-most-one-ack     no un-retried double completion: <= 1 kAck per
//                           task, and completed tasks account for all acks
//   I4  stage ordering      kSubmit first; no kExec before the first
//                           kGetWork; kAck never precedes a kDeliverResult
//                           (kNotify excluded: the real dispatcher records
//                           it for the queue head at pump time, which may
//                           not be the task the woken executor pulls)
//   I5  retry budget        dispatch attempts per task <= max_retries + 1
//                           (only checkable when no failure detector
//                           requeues occurred — those are not replays)
//   I6  quarantine monotone sampled quarantine counter never decreases
//   I7  bundles drain       pending_bundles gauge reads 0 at quiesce and
//                           bundle_seqs issued == retired (TCP backend)
//   I8  unique delivery     no result id delivered to the client twice
//   I9  one-primary-per-epoch (HA runs) promotion epochs strictly increase:
//                           no two dispatchers ever served the same epoch
//   I10 exactly-once-across-promotion (HA runs) despite takeovers the
//                           client collected every submitted task exactly
//                           once — dupes caught by I8, loss caught here
//   I11 route-on-advertised (data runs) the dispatcher only made locality
//                           picks on digest entries that were advertised
//                           and not yet evicted (stale_route_errors == 0;
//                           executor-side digest_stale misses are the
//                           *legal* race and stay out of scope)
//   I12 bounded deferral    (data runs) locality never starved the queue
//                           head: every task dispatched within
//                           max_locality_wait_s of becoming runnable
//                           (locality_overwait == 0)
//
// check_conformance compares two histories of the *same* WorkloadSpec (DES
// vs threaded stack): same task set, both quiescent, same per-task terminal
// ack discipline, and — for recoverable fault plans — full completion on
// both sides.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/trace.h"

namespace falkon::testkit {

/// Everything one run leaves behind for the checkers.
struct RunHistory {
  std::string backend;  // "sim" | "inproc" | "tcp"

  // Terminal dispatcher accounting (DispatcherStatus / SimFalkonResult).
  std::uint64_t submitted{0};
  std::uint64_t completed{0};
  std::uint64_t failed{0};
  std::uint64_t retried{0};
  std::uint64_t quarantined{0};
  std::uint64_t suspicions{0};
  std::uint64_t queued_at_end{0};
  std::uint64_t dispatched_at_end{0};

  /// Retry budget the run was configured with; < 0 = unbounded (I5 skipped).
  int max_retries{-1};

  /// Lifecycle trace, oldest first. Only meaningful when trace_complete.
  std::vector<obs::SpanEvent> events;
  /// Ring kept every event (Tracer::complete()); checkers demand this.
  bool trace_complete{false};

  /// Result ids the client picked up, in delivery order. May be shorter
  /// than `completed` when reply frames were lost; never contains dupes.
  std::vector<std::uint64_t> result_ids;

  /// TCP backend only (has_bundle_counters): bundle_seq lifecycle.
  bool has_bundle_counters{false};
  double pending_bundles_gauge{0.0};
  std::uint64_t bundles_issued{0};
  std::uint64_t bundles_retired{0};

  /// Periodic samples of the quarantine counter during the run (I6).
  std::vector<std::uint64_t> quarantine_series;

  /// HA runs only (ha_run): the epoch of every dispatcher that served as
  /// primary during the run, in serving order — the seed primary first,
  /// then each promoted standby. I9 demands strict increase.
  bool ha_run{false};
  std::vector<std::uint64_t> primary_epochs;

  /// Data-diffusion runs only (data_run): locality-router self-checks and
  /// executor cache-staleness accounting (docs/DATA.md).
  bool data_run{false};
  /// Locality wait bound the run was configured with; < 0 = none (I12
  /// skipped).
  double max_locality_wait_s{-1.0};
  /// Dispatcher: non-head locality picks whose object was not advertised —
  /// I11 demands 0.
  std::uint64_t stale_route_errors{0};
  /// Dispatcher: non-head picks made past the wait bound — I12 demands 0.
  std::uint64_t locality_overwait{0};
  /// Executor side: tasks routed as expect_cached whose object had been
  /// evicted meanwhile. The legal heartbeat-staleness race; recorded so
  /// suites can assert the fallback fired, never an invariant violation.
  std::uint64_t digest_stale{0};
  /// Dispatcher: kDataEvict notices applied to the cache mirror.
  std::uint64_t data_evictions{0};

  /// Fault-injector decisions that fired during the run (0 for fault-free
  /// specs). Lets suites assert their fault-bearing cases actually bit.
  std::uint64_t injected_faults{0};

  /// Non-empty when the runner itself failed (stall past deadline, refused
  /// connection, ...). Checkers surface it as a violation.
  std::string run_error;
};

/// Replay `history` through the invariant model. Returns human-readable
/// violations; empty = all invariants hold.
[[nodiscard]] std::vector<std::string> check_invariants(
    const RunHistory& history);

/// Compare two histories of the same workload. `require_all_complete`
/// demands completed == submitted on both sides (valid for fault-free specs
/// and for fault::random_plan's recoverable-by-construction plans under a
/// generous retry budget).
[[nodiscard]] std::vector<std::string> check_conformance(
    const RunHistory& a, const RunHistory& b, bool require_all_complete);

/// Render violations for a test failure message, one per line.
[[nodiscard]] std::string join_violations(
    const std::vector<std::string>& violations);

}  // namespace falkon::testkit
