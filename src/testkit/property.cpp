#include "testkit/property.h"

#include <cstdlib>
#include <iostream>

namespace falkon::testkit {
namespace {

bool env_u64(const char* name, std::uint64_t& out) {
  const char* raw = std::getenv(name);
  if (raw == nullptr || *raw == '\0') return false;
  char* end = nullptr;
  const unsigned long long value = std::strtoull(raw, &end, 10);
  if (end == raw) return false;
  out = static_cast<std::uint64_t>(value);
  return true;
}

}  // namespace

std::string PropertyOutcome::report(const std::string& name) const {
  if (passed) return name + ": all " + std::to_string(cases_run) + " cases hold";
  std::string out = name + " failed at seed " + std::to_string(failing_seed) +
                    " (replay: FALKON_TEST_SEED=" +
                    std::to_string(failing_seed) + ")\n";
  out += "  original: " + describe(original) + "\n";
  out += "  minimal (after " + std::to_string(shrink_steps) +
         " shrink steps): " + describe(minimal) + "\n";
  out += "  violations:\n";
  for (const auto& violation : violations) {
    out += "    - " + violation + "\n";
  }
  return out;
}

PropertyOutcome shrink_failure(const std::string& name,
                               const WorkloadSpec& spec,
                               const PropertyOptions& options,
                               const Property& property) {
  PropertyOutcome outcome;
  outcome.passed = false;
  outcome.failing_seed = spec.seed;
  outcome.original = spec;
  outcome.minimal = spec;
  outcome.violations = property(spec);

  // Greedy descent: take the first strictly-smaller candidate that still
  // fails, restart from it. Terminates because spec_size strictly
  // decreases each step.
  for (int step = 0; step < options.max_shrink_steps; ++step) {
    bool descended = false;
    for (const WorkloadSpec& candidate : shrink_candidates(outcome.minimal)) {
      const std::vector<std::string> violations = property(candidate);
      if (!violations.empty()) {
        outcome.minimal = candidate;
        outcome.violations = violations;
        ++outcome.shrink_steps;
        descended = true;
        break;
      }
    }
    if (!descended) break;
  }
  if (outcome.violations.empty()) {
    // The "failure" did not reproduce on the unmodified spec (flaky
    // property) — report the original violations' absence explicitly.
    outcome.violations.push_back(
        "(failure did not reproduce when re-running the original spec)");
  }
  std::cerr << "[testkit] " << name << ": seed " << spec.seed
            << " fails; minimal: " << describe(outcome.minimal) << "\n";
  return outcome;
}

PropertyOutcome check_property(const std::string& name,
                               const PropertyOptions& options,
                               const Property& property) {
  std::uint64_t replay_seed = 0;
  if (env_u64("FALKON_TEST_SEED", replay_seed)) {
    const WorkloadSpec spec = generate_workload(replay_seed);
    std::cerr << "[testkit] " << name << ": replaying seed " << replay_seed
              << ": " << describe(spec) << "\n";
    const std::vector<std::string> violations = property(spec);
    PropertyOutcome outcome;
    outcome.cases_run = 1;
    if (violations.empty()) return outcome;
    return shrink_failure(name, spec, options, property);
  }

  std::uint64_t cases = static_cast<std::uint64_t>(options.cases);
  (void)env_u64("FALKON_PROP_CASES", cases);

  PropertyOutcome outcome;
  for (std::uint64_t i = 0; i < cases; ++i) {
    const std::uint64_t seed = options.base_seed + i;
    const WorkloadSpec spec = generate_workload(seed);
    const std::vector<std::string> violations = property(spec);
    ++outcome.cases_run;
    if (!violations.empty()) {
      std::cerr << "[testkit] " << name << ": case " << i << " (seed " << seed
                << ") failed; shrinking. Replay: FALKON_TEST_SEED=" << seed
                << "\n";
      return shrink_failure(name, spec, options, property);
    }
  }
  return outcome;
}

}  // namespace falkon::testkit
