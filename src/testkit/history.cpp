#include "testkit/history.h"

#include <algorithm>
#include <set>
#include <unordered_set>

namespace falkon::testkit {
namespace {

using obs::Stage;

std::string task_str(std::uint64_t task) {
  return "task " + std::to_string(task);
}

/// First ring index of `stage` within one task's events, or -1.
long first_index_of(const obs::TaskHistory& history, Stage stage) {
  for (std::size_t i = 0; i < history.events.size(); ++i) {
    if (history.events[i].stage == stage) return static_cast<long>(i);
  }
  return -1;
}

void check_task_ordering(const obs::TaskHistory& history,
                         const std::string& backend,
                         std::vector<std::string>& violations) {
  const auto bad = [&](const std::string& what) {
    violations.push_back("[" + backend + "] I4 ordering: " +
                         task_str(history.task) + " " + what);
  };

  // I2: exactly one submit, and it opens the task's history.
  if (history.count(Stage::kSubmit) != 1) {
    violations.push_back("[" + backend + "] I2 exactly-one-submit: " +
                         task_str(history.task) + " has " +
                         std::to_string(history.count(Stage::kSubmit)) +
                         " kSubmit events");
  } else if (history.events.front().stage != Stage::kSubmit) {
    bad("does not begin with kSubmit (first stage: " +
        std::string(obs::stage_name(history.events.front().stage)) + ")");
  }

  const long first_get_work = first_index_of(history, Stage::kGetWork);
  const long first_deliver = first_index_of(history, Stage::kDeliverResult);
  const long first_ack = first_index_of(history, Stage::kAck);
  const long first_exec = first_index_of(history, Stage::kExec);

  if (first_exec >= 0 && (first_get_work < 0 || first_exec < first_get_work)) {
    bad("executed before any dispatch (kExec precedes first kGetWork)");
  }
  if (first_ack >= 0 && (first_deliver < 0 || first_ack < first_deliver)) {
    bad("acknowledged before any result delivery");
  }
  if (history.count(Stage::kExec) > 0 && history.count(Stage::kGetWork) == 0) {
    bad("executed without ever being dispatched");
  }
}

}  // namespace

std::vector<std::string> check_invariants(const RunHistory& history) {
  std::vector<std::string> violations;
  const std::string& b = history.backend;
  const auto violate = [&](const std::string& what) {
    violations.push_back("[" + b + "] " + what);
  };

  if (!history.run_error.empty()) {
    violate("runner failed: " + history.run_error);
  }

  // I1 conservation: every submitted task reached exactly one terminal
  // state and nothing is left queued or in flight.
  if (history.completed + history.failed != history.submitted) {
    violate("I1 conservation: submitted=" + std::to_string(history.submitted) +
            " != completed=" + std::to_string(history.completed) +
            " + failed=" + std::to_string(history.failed));
  }
  if (history.queued_at_end != 0) {
    violate("I1 conservation: " + std::to_string(history.queued_at_end) +
            " tasks still queued at quiesce");
  }
  if (history.dispatched_at_end != 0) {
    violate("I1 conservation: " + std::to_string(history.dispatched_at_end) +
            " tasks still in flight at quiesce");
  }

  // I6 quarantine monotone.
  for (std::size_t i = 1; i < history.quarantine_series.size(); ++i) {
    if (history.quarantine_series[i] < history.quarantine_series[i - 1]) {
      violate("I6 quarantine monotone: sample " + std::to_string(i) +
              " dropped from " +
              std::to_string(history.quarantine_series[i - 1]) + " to " +
              std::to_string(history.quarantine_series[i]));
      break;
    }
  }

  // I7 bundles drain (TCP backend).
  if (history.has_bundle_counters) {
    if (history.pending_bundles_gauge != 0.0) {
      violate("I7 bundles drain: pending_bundles gauge reads " +
              std::to_string(history.pending_bundles_gauge) + " at quiesce");
    }
    if (history.bundles_issued != history.bundles_retired) {
      violate("I7 bundles drain: issued=" +
              std::to_string(history.bundles_issued) + " != retired=" +
              std::to_string(history.bundles_retired));
    }
  }

  // I8 unique delivery.
  {
    std::unordered_set<std::uint64_t> seen;
    for (const std::uint64_t id : history.result_ids) {
      if (!seen.insert(id).second) {
        violate("I8 unique delivery: " + task_str(id) +
                " delivered to the client twice");
      }
    }
  }

  // I9 one-primary-per-epoch (HA runs): the epoch fence means promotion
  // epochs strictly increase across the run — two primaries sharing an
  // epoch is a split brain.
  if (history.ha_run) {
    for (std::size_t i = 1; i < history.primary_epochs.size(); ++i) {
      if (history.primary_epochs[i] <= history.primary_epochs[i - 1]) {
        violate("I9 one-primary-per-epoch: primary " + std::to_string(i) +
                " served epoch " + std::to_string(history.primary_epochs[i]) +
                " after epoch " +
                std::to_string(history.primary_epochs[i - 1]));
      }
    }
  }

  // I10 exactly-once-across-promotion (HA runs): nothing lost to the
  // takeover — the client collected a result for every submitted task
  // (uniqueness is I8's half of exactly-once).
  if (history.ha_run && history.run_error.empty() &&
      history.result_ids.size() != history.submitted) {
    violate("I10 exactly-once-across-promotion: client collected " +
            std::to_string(history.result_ids.size()) + " results for " +
            std::to_string(history.submitted) + " submitted tasks");
  }

  // I11 route-on-advertised (data runs): the locality router must never
  // have picked a task for an executor whose mirror did not advertise the
  // task's object at pick time — routing on evicted or never-advertised
  // entries is exactly the bug the digest generations exist to prevent.
  if (history.data_run && history.stale_route_errors != 0) {
    violate("I11 route-on-advertised: " +
            std::to_string(history.stale_route_errors) +
            " locality picks on unadvertised digest entries");
  }

  // I12 bounded deferral (data runs): with a configured wait bound, the
  // queue head must never have been passed over once older than the bound.
  if (history.data_run && history.max_locality_wait_s >= 0 &&
      history.locality_overwait != 0) {
    violate("I12 bounded deferral: " +
            std::to_string(history.locality_overwait) +
            " locality picks past max_locality_wait_s=" +
            std::to_string(history.max_locality_wait_s));
  }

  // Trace-replay invariants need the full history.
  if (!history.trace_complete) return violations;
  const std::vector<obs::TaskHistory> tasks =
      obs::group_by_task(history.events);

  // Trace agrees with the dispatcher's own accounting.
  if (tasks.size() != history.submitted) {
    violate("I2 exactly-one-submit: trace knows " +
            std::to_string(tasks.size()) + " tasks but the dispatcher " +
            "accepted " + std::to_string(history.submitted));
  }

  std::uint64_t acked_tasks = 0;
  for (const obs::TaskHistory& task : tasks) {
    check_task_ordering(task, b, violations);

    // I3 at-most-one-ack.
    const std::uint32_t acks = task.count(Stage::kAck);
    if (acks > 1) {
      violate("I3 at-most-one-ack: " + task_str(task.task) + " acked " +
              std::to_string(acks) + " times");
    }
    if (acks > 0) ++acked_tasks;

    // I5 retry budget: each dispatch attempt records one kGetWork. Failure-
    // detector requeues are recoveries, not replays, so the budget is only
    // checkable on runs without suspicions.
    if (history.max_retries >= 0 && history.suspicions == 0) {
      const std::uint32_t attempts = task.count(Stage::kGetWork);
      if (attempts >
          static_cast<std::uint32_t>(history.max_retries) + 1) {
        violate("I5 retry budget: " + task_str(task.task) + " dispatched " +
                std::to_string(attempts) + " times, budget " +
                std::to_string(history.max_retries + 1));
      }
    }
  }

  // I3 (aggregate): terminal acks and completions tell the same story. The
  // runners' engines never fail a task on their own, so every completion is
  // acked and every ack is a completion.
  if (acked_tasks != history.completed) {
    violate("I3 at-most-one-ack: " + std::to_string(acked_tasks) +
            " tasks acked but " + std::to_string(history.completed) +
            " completed");
  }

  // I8 (trace side): delivered result ids must name submitted tasks.
  {
    std::unordered_set<std::uint64_t> known;
    for (const obs::TaskHistory& task : tasks) known.insert(task.task);
    for (const std::uint64_t id : history.result_ids) {
      if (known.find(id) == known.end()) {
        violate("I8 unique delivery: client received unknown " +
                task_str(id));
      }
    }
  }

  return violations;
}

std::vector<std::string> check_conformance(const RunHistory& a,
                                           const RunHistory& b,
                                           bool require_all_complete) {
  std::vector<std::string> violations;
  const std::string pair = "[" + a.backend + " vs " + b.backend + "] ";

  if (!a.trace_complete || !b.trace_complete) {
    violations.push_back(pair + "conformance needs complete traces (" +
                         a.backend + ": " +
                         (a.trace_complete ? "complete" : "wrapped") + ", " +
                         b.backend + ": " +
                         (b.trace_complete ? "complete" : "wrapped") + ")");
    return violations;
  }

  // Same task set on both sides.
  std::set<std::uint64_t> tasks_a, tasks_b;
  for (const auto& t : obs::group_by_task(a.events)) tasks_a.insert(t.task);
  for (const auto& t : obs::group_by_task(b.events)) tasks_b.insert(t.task);
  if (tasks_a != tasks_b) {
    std::string only_a, only_b;
    for (const auto t : tasks_a) {
      if (tasks_b.find(t) == tasks_b.end()) only_a += " " + std::to_string(t);
    }
    for (const auto t : tasks_b) {
      if (tasks_a.find(t) == tasks_a.end()) only_b += " " + std::to_string(t);
    }
    violations.push_back(pair + "task sets differ: only in " + a.backend +
                         ":" + (only_a.empty() ? " -" : only_a) +
                         "; only in " + b.backend + ":" +
                         (only_b.empty() ? " -" : only_b));
  }

  if (a.submitted != b.submitted) {
    violations.push_back(pair + "submitted " + std::to_string(a.submitted) +
                         " vs " + std::to_string(b.submitted));
  }

  if (require_all_complete) {
    for (const RunHistory* h : {&a, &b}) {
      if (h->completed != h->submitted || h->failed != 0) {
        violations.push_back(pair + h->backend + " did not fully complete: " +
                             std::to_string(h->completed) + "/" +
                             std::to_string(h->submitted) + " completed, " +
                             std::to_string(h->failed) + " failed");
      }
    }
    // With full completion demanded, the per-task ack discipline must be
    // identical: exactly one terminal ack per task on both sides.
    for (const RunHistory* h : {&a, &b}) {
      for (const auto& task : obs::group_by_task(h->events)) {
        if (task.count(obs::Stage::kAck) != 1 ||
            task.count(obs::Stage::kExec) < 1) {
          violations.push_back(pair + h->backend + " " + task_str(task.task) +
                               ": expected >=1 kExec and exactly 1 kAck, got " +
                               std::to_string(task.count(obs::Stage::kExec)) +
                               "/" + std::to_string(task.count(obs::Stage::kAck)));
        }
      }
    }
  }

  return violations;
}

std::string join_violations(const std::vector<std::string>& violations) {
  std::string out;
  for (const auto& v : violations) {
    out += "  - " + v + "\n";
  }
  return out;
}

}  // namespace falkon::testkit
