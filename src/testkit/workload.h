// falkon::testkit — seeded property-based workload generation.
//
// A WorkloadSpec is the *entire* input of one property case: task count,
// runtimes, bundling/policy knobs, a fault intensity (expanded into a
// fault::FaultPlan via fault::random_plan) and provisioner-ish fleet knobs.
// Every field is drawn from a single SplitMix64 seed by generate_workload,
// so a failing case is fully described by one integer — the seed printed
// on failure — and `FALKON_TEST_SEED=<n>` replays it exactly.
//
// Shrinking operates on the spec, not the seed: shrink_candidates returns
// strictly "smaller" mutations of a failing spec (fewer tasks, fewer
// executors, no faults, simpler bundling), and the property harness
// (property.h) greedily descends until no mutation still fails. The
// minimal spec is what goes into the bug report — and into tests as a
// regression case, via the plain aggregate literal printed by describe().
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "fault/fault.h"

namespace falkon::testkit {

/// One generated property case. Plain aggregate: regression tests write
/// shrunk counterexamples as braced literals.
struct WorkloadSpec {
  /// Generator seed; also seeds the fault plan and any runner RNG needs.
  std::uint64_t seed{1};

  // ---- workload shape ----
  std::uint64_t task_count{32};
  int executors{4};
  /// Homogeneous task runtime. Kept tiny: the threaded runners sleep for
  /// real (scaled) time.
  double task_length_s{0.0};

  // ---- client/dispatcher/wire policy knobs ----
  int client_bundle{16};
  bool piggyback{true};
  std::uint32_t max_tasks_per_dispatch{1};
  /// Executor-side fixed bundle request (GetWork max_tasks); >= 1.
  std::uint32_t executor_bundle{1};
  /// Adaptive wire bundling (kAdaptiveBundle/kAdaptiveWant sentinels).
  bool adaptive_bundle{false};
  std::uint32_t max_adaptive_bundle{32};
  double max_bundle_runtime_s{0.0};

  // ---- recovery policy ----
  int max_retries{8};
  double replay_timeout_s{2.0};
  /// Fleet supervision (threaded runners): respawn crashed executors, like
  /// a provisioner holding the allocation at size.
  bool supervise{true};

  // ---- data diffusion (docs/DATA.md) ----
  /// Distinct data objects attached round-robin to tasks (0 = dataless
  /// workload). Data-bearing runs use the good-cache-compute policy with a
  /// bounded locality wait, so invariants I11/I12 get exercised.
  int data_objects{0};

  // ---- fault model ----
  /// 0 = fault-free; otherwise expanded by fault_plan() below. Recoverable
  /// by construction (see fault::random_plan), so properties may demand
  /// full completion even for fault-bearing specs.
  double fault_intensity{0.0};

  // ---- HA failover (consumed by run_tcp_ha; ignored elsewhere) ----
  /// Kill the primary dispatcher once this fraction of tasks has completed
  /// (0 disables). A standby is expected to win the election, take over the
  /// primary's endpoints under a bumped epoch, and finish the workload.
  double kill_primary_after{0.0};

  [[nodiscard]] bool faulty() const { return fault_intensity > 0.0; }
};

/// Draw a complete spec from one seed. Deterministic; ranges are sized so
/// any spec finishes in well under a second in the DES and a few seconds
/// in the threaded runners.
[[nodiscard]] WorkloadSpec generate_workload(std::uint64_t seed);

/// The spec's fault plan: empty when fault_intensity == 0, otherwise
/// fault::random_plan(seed, intensity) — every rule recoverable.
[[nodiscard]] fault::FaultPlan fault_plan(const WorkloadSpec& spec);

/// One line, every field — pasteable as an aggregate literal.
[[nodiscard]] std::string describe(const WorkloadSpec& spec);

/// Strictly-smaller mutations of `spec`, most aggressive first (halve the
/// task count before fiddling with knobs). Each candidate changes exactly
/// one axis; the harness re-runs the property on each and recurses on the
/// first that still fails.
[[nodiscard]] std::vector<WorkloadSpec> shrink_candidates(
    const WorkloadSpec& spec);

/// Total "size" of a spec — the measure shrinking minimises. Monotone:
/// every shrink_candidates entry has a strictly smaller size.
[[nodiscard]] std::uint64_t spec_size(const WorkloadSpec& spec);

}  // namespace falkon::testkit
