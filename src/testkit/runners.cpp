#include "testkit/runners.h"

#include <algorithm>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "core/client.h"
#include "core/service.h"
#include "core/service_tcp.h"
#include "core/task_engine.h"
#include "sim/sim_falkon.h"

namespace falkon::testkit {
namespace {

/// Ring sized for the largest generated workload at a generous retry
/// budget; Tracer::complete() still guards every checker.
constexpr std::size_t kTraceCapacity = 1 << 17;

obs::ObsConfig trace_config() {
  obs::ObsConfig config;
  config.tracing = true;
  config.trace_capacity = kTraceCapacity;
  return config;
}

void nap_ms(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

core::DispatcherConfig dispatcher_config(const WorkloadSpec& spec,
                                         obs::Obs& obs,
                                         fault::FaultInjector* injector) {
  core::DispatcherConfig config;
  config.replay.response_timeout_s = spec.replay_timeout_s;
  config.replay.max_retries = spec.max_retries;
  config.piggyback = spec.piggyback;
  config.max_tasks_per_dispatch = spec.max_tasks_per_dispatch;
  config.max_bundle_runtime_s = spec.max_bundle_runtime_s;
  config.max_adaptive_bundle = spec.max_adaptive_bundle;
  config.obs = &obs;
  // Background recovery always on: the sweep drives replay timeouts for
  // fault-free specs too (where it simply never fires) and renotify covers
  // lost push frames.
  config.sweep_interval_s = 0.05;
  config.renotify_timeout_s = 0.3;
  if (spec.faulty()) {
    config.heartbeat_timeout_s = 0.6;
    config.quarantine_threshold = 6;
    config.fault = injector;
  }
  return config;
}

core::ExecutorOptions executor_options(const WorkloadSpec& spec,
                                       std::uint64_t node, obs::Obs& obs,
                                       fault::FaultInjector* injector) {
  core::ExecutorOptions options;
  options.node_id = NodeId{node};
  options.max_bundle = spec.executor_bundle;
  options.piggyback_tasks = spec.piggyback ? spec.executor_bundle : 0;
  options.adaptive_bundle = spec.adaptive_bundle;
  options.obs = &obs;
  if (spec.faulty()) {
    options.heartbeat_interval_s = 0.15;
    options.link_retries = 6;
    options.register_retries = 6;
    options.backoff.base_s = 0.02;
    options.backoff.max_s = 0.2;
    options.fault = injector;
  }
  return options;
}

std::vector<TaskSpec> make_tasks(const WorkloadSpec& spec) {
  std::vector<TaskSpec> tasks;
  tasks.reserve(static_cast<std::size_t>(spec.task_count));
  for (std::uint64_t i = 1; i <= spec.task_count; ++i) {
    tasks.push_back(make_sleep_task(TaskId{i}, spec.task_length_s));
  }
  return tasks;
}

void fill_terminal_status(RunHistory& history,
                          const core::DispatcherStatus& status) {
  history.submitted = status.submitted;
  history.completed = status.completed;
  history.failed = status.failed;
  history.retried = status.retried;
  history.quarantined = status.quarantined;
  history.suspicions = status.suspicions;
  history.queued_at_end = status.queued;
  history.dispatched_at_end = status.dispatched;
}

/// Poll `status()` until every submitted task is terminal, supervising the
/// fleet via `respawn(slot)` and sampling the quarantine counter for I6.
/// Returns false on deadline (run_error is set).
template <class StatusFn, class RespawnFn>
bool drive_to_quiesce(RunHistory& history, const WorkloadSpec& spec,
                      double deadline_s, const StatusFn& status,
                      const RespawnFn& respawn) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(static_cast<long>(deadline_s * 1000));
  for (;;) {
    const core::DispatcherStatus now = status();
    history.quarantine_series.push_back(now.quarantined);
    if (now.submitted >= spec.task_count &&
        now.completed + now.failed >= now.submitted) {
      return true;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      history.run_error =
          "stalled: completed=" + std::to_string(now.completed) +
          " failed=" + std::to_string(now.failed) +
          " queued=" + std::to_string(now.queued) +
          " dispatched=" + std::to_string(now.dispatched) + " of " +
          std::to_string(spec.task_count);
      return false;
    }
    if (spec.supervise) {
      for (int slot = 0; slot < spec.executors; ++slot) respawn(slot);
    }
    nap_ms(5);
  }
}

}  // namespace

RunHistory run_sim(const WorkloadSpec& spec) {
  obs::Obs obs{trace_config()};
  const fault::FaultPlan plan = fault_plan(spec);
  std::unique_ptr<fault::FaultInjector> injector;
  if (spec.faulty()) {
    injector = std::make_unique<fault::FaultInjector>(plan, &obs);
  }

  sim::SimFalkonConfig config;
  config.executors = spec.executors;
  config.task_count = spec.task_count;
  config.task_length_s = spec.task_length_s;
  config.client_bundle = spec.client_bundle;
  config.piggyback = spec.piggyback;
  config.seed = spec.seed;
  config.replay_timeout_s = spec.replay_timeout_s;
  config.max_retries = spec.max_retries;
  config.obs = &obs;
  config.fault = injector.get();

  const sim::SimFalkonResult result = sim::simulate_falkon(config);

  RunHistory history;
  history.backend = "sim";
  history.submitted = spec.task_count;
  history.completed = result.completed;
  history.failed = result.failed;
  history.retried = result.retried;
  history.max_retries = spec.max_retries;
  if (injector) history.injected_faults = injector->total_injected();
  history.events = obs.tracer().snapshot();
  history.trace_complete = obs.tracer().complete();
  return history;
}

RunHistory run_inproc(const WorkloadSpec& spec) {
  RunHistory history;
  history.backend = "inproc";
  history.max_retries = spec.max_retries;

  obs::Obs obs{trace_config()};
  const fault::FaultPlan plan = fault_plan(spec);
  std::unique_ptr<fault::FaultInjector> injector;
  if (spec.faulty()) {
    injector = std::make_unique<fault::FaultInjector>(plan, &obs);
  }

  RealClock clock;
  core::Dispatcher dispatcher(clock,
                              dispatcher_config(spec, obs, injector.get()));
  core::LocalDispatcherClient client(dispatcher);

  // Fleet with supervision: a slot whose runtime exited (injected crash or
  // false suspicion) is respawned as a fresh executor.
  std::uint64_t next_node = 1;
  std::vector<std::unique_ptr<core::LocalExecutorHarness>> fleet(
      static_cast<std::size_t>(spec.executors));
  const auto respawn = [&](int slot) {
    auto& cell = fleet[static_cast<std::size_t>(slot)];
    if (cell && cell->runtime().running()) return;
    cell.reset();
    auto harness = std::make_unique<core::LocalExecutorHarness>(
        clock, dispatcher, std::make_unique<core::SleepEngine>(clock),
        executor_options(spec, next_node++, obs, injector.get()));
    if (harness->start().ok()) cell = std::move(harness);
  };
  for (int slot = 0; slot < spec.executors; ++slot) respawn(slot);

  const auto instance = client.create_instance(ClientId{1});
  if (!instance.ok()) {
    history.run_error = "create_instance: " + instance.error().str();
    return history;
  }

  // Client-dispatcher bundling {1,2}.
  const std::vector<TaskSpec> tasks = make_tasks(spec);
  for (std::size_t at = 0; at < tasks.size();
       at += static_cast<std::size_t>(spec.client_bundle)) {
    const std::size_t end = std::min(
        tasks.size(), at + static_cast<std::size_t>(spec.client_bundle));
    auto accepted = client.submit(
        instance.value(), {tasks.begin() + static_cast<long>(at),
                           tasks.begin() + static_cast<long>(end)});
    if (!accepted.ok()) {
      history.run_error = "submit: " + accepted.error().str();
      return history;
    }
  }

  drive_to_quiesce(history, spec, /*deadline_s=*/60.0,
                   [&] { return dispatcher.status(); }, respawn);

  // Pick up every routed result (failures included — replay exhaustion and
  // quarantine also deliver a terminal TaskResult).
  int idle_polls = 0;
  while (history.run_error.empty() &&
         history.result_ids.size() < spec.task_count && idle_polls < 5) {
    auto batch = client.wait_results(instance.value(), 256, 0.2);
    if (!batch.ok() || batch.value().empty()) {
      ++idle_polls;
      continue;
    }
    idle_polls = 0;
    for (const auto& result : batch.value()) {
      history.result_ids.push_back(result.task_id.value);
    }
  }

  const core::DispatcherStatus status = dispatcher.status();
  for (auto& harness : fleet) harness.reset();
  dispatcher.shutdown();

  if (injector) history.injected_faults = injector->total_injected();
  fill_terminal_status(history, status);
  history.events = obs.tracer().snapshot();
  history.trace_complete = obs.tracer().complete();
  return history;
}

RunHistory run_tcp(const WorkloadSpec& spec, double deadline_s) {
  RunHistory history;
  history.backend = "tcp";
  history.max_retries = spec.max_retries;

  obs::Obs obs{trace_config()};
  const fault::FaultPlan plan = fault_plan(spec);
  std::unique_ptr<fault::FaultInjector> injector;
  if (spec.faulty()) {
    injector = std::make_unique<fault::FaultInjector>(plan, &obs);
  }

  RealClock clock;
  core::Dispatcher dispatcher(clock,
                              dispatcher_config(spec, obs, injector.get()));
  core::TcpDispatcherServer server(dispatcher, &obs);
  if (auto status = server.start(0, 0, injector.get()); !status.ok()) {
    history.run_error = "server start: " + status.error().str();
    return history;
  }

  std::uint64_t next_node = 1;
  std::vector<std::unique_ptr<core::TcpExecutorHarness>> fleet(
      static_cast<std::size_t>(spec.executors));
  const auto respawn = [&](int slot) {
    auto& cell = fleet[static_cast<std::size_t>(slot)];
    if (cell && cell->runtime().running()) return;
    cell.reset();
    auto harness = std::make_unique<core::TcpExecutorHarness>(
        clock, "127.0.0.1", server.rpc_port(), server.push_port(),
        std::make_unique<core::SleepEngine>(clock),
        executor_options(spec, next_node++, obs, injector.get()));
    if (harness->start().ok()) cell = std::move(harness);
  };
  for (int slot = 0; slot < spec.executors; ++slot) respawn(slot);

  // Client over real TCP. The client stub carries no injector, so requests
  // always reach the dispatcher — but the server may drop reply frames
  // (Site::kRpcReply), so reads retry on a fresh connection and submits are
  // confirmed through the (idempotent) status call instead of re-sending.
  std::unique_ptr<core::TcpDispatcherClient> client;
  const auto redial = [&]() -> bool {
    for (int attempt = 0; attempt < 100; ++attempt) {
      auto connected =
          core::TcpDispatcherClient::connect("127.0.0.1", server.rpc_port());
      if (connected.ok()) {
        client = connected.take();
        return true;
      }
      nap_ms(10);
    }
    return false;
  };
  const auto reliable = [&](const auto& fn) -> bool {
    for (int attempt = 0; attempt < 200; ++attempt) {
      if (client == nullptr && !redial()) break;
      if (fn(*client)) return true;
      client.reset();
      nap_ms(10);
    }
    return false;
  };

  InstanceId instance;
  if (!reliable([&](core::TcpDispatcherClient& c) {
        auto created = c.create_instance(ClientId{1});
        if (created.ok()) instance = created.value();
        return created.ok();
      })) {
    history.run_error = "create_instance never succeeded";
    return history;
  }

  const std::vector<TaskSpec> tasks = make_tasks(spec);
  std::uint64_t confirmed = 0;
  for (std::size_t at = 0; at < tasks.size();
       at += static_cast<std::size_t>(spec.client_bundle)) {
    const std::size_t end = std::min(
        tasks.size(), at + static_cast<std::size_t>(spec.client_bundle));
    if (client == nullptr && !redial()) break;
    // Send once; a lost reply must not trigger a blind re-send (that would
    // duplicate task ids). The status poll below confirms acceptance.
    (void)client->submit(instance, {tasks.begin() + static_cast<long>(at),
                                    tasks.begin() + static_cast<long>(end)});
    confirmed += end - at;
    const std::uint64_t want = confirmed;
    if (!reliable([&](core::TcpDispatcherClient& c) {
          auto status = c.status();
          return status.ok() && status.value().submitted >= want;
        })) {
      history.run_error = "submit of bundle at " + std::to_string(at) +
                          " never confirmed";
      return history;
    }
  }

  drive_to_quiesce(history, spec, deadline_s,
                   [&] { return dispatcher.status(); }, respawn);

  int idle_polls = 0;
  while (history.run_error.empty() &&
         history.result_ids.size() < spec.task_count && idle_polls < 8) {
    std::vector<TaskResult> batch;
    const bool got = reliable([&](core::TcpDispatcherClient& c) {
      auto results = c.wait_results(instance, 256, 0.2);
      if (!results.ok()) return false;
      batch = std::move(results.value());
      return true;
    });
    if (!got || batch.empty()) {
      ++idle_polls;
      continue;
    }
    idle_polls = 0;
    for (const auto& result : batch) {
      history.result_ids.push_back(result.task_id.value);
    }
  }

  const core::DispatcherStatus status = dispatcher.status();
  // Orderly fleet teardown *before* reading the bundle ledger: deregister
  // (or removal via the sink hook) must retire every outstanding
  // bundle_seq — exactly invariant I7.
  for (auto& harness : fleet) harness.reset();

  obs::Registry& reg = obs.registry();
  history.has_bundle_counters = true;
  history.pending_bundles_gauge =
      reg.gauge("falkon.net.rpc.pending_bundles").value();
  history.bundles_issued = reg.counter("falkon.net.rpc.bundles_issued").value();
  history.bundles_retired =
      reg.counter("falkon.net.rpc.bundles_retired").value();

  dispatcher.shutdown();
  server.stop();

  if (injector) history.injected_faults = injector->total_injected();
  fill_terminal_status(history, status);
  history.events = obs.tracer().snapshot();
  history.trace_complete = obs.tracer().complete();
  return history;
}

}  // namespace falkon::testkit
