#include "testkit/runners.h"

#include <cstdlib>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <limits>
#include <memory>
#include <thread>
#include <vector>

#include "common/clock.h"
#include "core/client.h"
#include "core/data_plane.h"
#include "core/policies.h"
#include "core/service.h"
#include "core/service_tcp.h"
#include "core/task_engine.h"
#include "ha/async_journal.h"
#include "ha/failover_client.h"
#include "ha/journal.h"
#include "ha/standby.h"
#include "net/socket.h"
#include "sim/sim_falkon.h"

namespace falkon::testkit {
namespace {

/// Ring sized for the largest generated workload at a generous retry
/// budget; Tracer::complete() still guards every checker.
constexpr std::size_t kTraceCapacity = 1 << 17;

obs::ObsConfig trace_config() {
  obs::ObsConfig config;
  config.tracing = true;
  config.trace_capacity = kTraceCapacity;
  return config;
}

void nap_ms(int ms) {
  std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

/// Locality wait bound for data-bearing specs — small enough that I12
/// keeps the run moving, large enough that deferrals genuinely happen.
constexpr double kLocalityWaitS = 0.25;

core::DispatcherConfig dispatcher_config(const WorkloadSpec& spec,
                                         obs::Obs& obs,
                                         fault::FaultInjector* injector) {
  core::DispatcherConfig config;
  config.replay.response_timeout_s = spec.replay_timeout_s;
  config.replay.max_retries = spec.max_retries;
  config.piggyback = spec.piggyback;
  config.max_tasks_per_dispatch = spec.max_tasks_per_dispatch;
  config.max_bundle_runtime_s = spec.max_bundle_runtime_s;
  config.max_adaptive_bundle = spec.max_adaptive_bundle;
  config.obs = &obs;
  // Background recovery always on: the sweep drives replay timeouts for
  // fault-free specs too (where it simply never fires) and renotify covers
  // lost push frames.
  config.sweep_interval_s = 0.05;
  config.renotify_timeout_s = 0.3;
  if (spec.faulty()) {
    config.heartbeat_timeout_s = 0.6;
    config.quarantine_threshold = 6;
    config.fault = injector;
  }
  return config;
}

core::ExecutorOptions executor_options(const WorkloadSpec& spec,
                                       std::uint64_t node, obs::Obs& obs,
                                       fault::FaultInjector* injector) {
  core::ExecutorOptions options;
  options.node_id = NodeId{node};
  // The registered host seeds peer data_source endpoints on data runs, and
  // the socket layer speaks numeric IPv4 only — the "localhost" default
  // would fail every loopback P2P fetch over to the shared FS.
  options.host = "127.0.0.1";
  options.max_bundle = spec.executor_bundle;
  options.piggyback_tasks = spec.piggyback ? spec.executor_bundle : 0;
  options.adaptive_bundle = spec.adaptive_bundle;
  options.obs = &obs;
  if (spec.faulty()) {
    options.heartbeat_interval_s = 0.15;
    options.link_retries = 6;
    options.register_retries = 6;
    options.backoff.base_s = 0.02;
    options.backoff.max_s = 0.2;
    options.fault = injector;
  }
  return options;
}

std::vector<TaskSpec> make_tasks(const WorkloadSpec& spec) {
  std::vector<TaskSpec> tasks;
  tasks.reserve(static_cast<std::size_t>(spec.task_count));
  for (std::uint64_t i = 1; i <= spec.task_count; ++i) {
    if (spec.data_objects > 0) {
      // Data-bearing workload: every task reads one of `data_objects`
      // shared-FS objects (round-robin), small enough that the modeled
      // staging time keeps threaded runs fast.
      TaskSpec task = make_data_task(
          TaskId{i}, spec.task_length_s, DataLocation::kSharedFs,
          IoMode::kRead, /*input_bytes=*/256ULL << 10, /*output_bytes=*/0);
      task.data_object =
          "obj-" + std::to_string(i % static_cast<std::uint64_t>(
                                          spec.data_objects));
      task.capture_output = false;
      tasks.push_back(std::move(task));
    } else {
      tasks.push_back(make_sleep_task(TaskId{i}, spec.task_length_s));
    }
  }
  return tasks;
}

void fill_terminal_status(RunHistory& history,
                          const core::DispatcherStatus& status) {
  history.submitted = status.submitted;
  history.completed = status.completed;
  history.failed = status.failed;
  history.retried = status.retried;
  history.quarantined = status.quarantined;
  history.suspicions = status.suspicions;
  history.queued_at_end = status.queued;
  history.dispatched_at_end = status.dispatched;
}

/// Poll `status()` until every submitted task is terminal, supervising the
/// fleet via `respawn(slot)` and sampling the quarantine counter for I6.
/// Returns false on deadline (run_error is set).
template <class StatusFn, class RespawnFn>
bool drive_to_quiesce(RunHistory& history, const WorkloadSpec& spec,
                      double deadline_s, const StatusFn& status,
                      const RespawnFn& respawn) {
  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(static_cast<long>(deadline_s * 1000));
  for (;;) {
    const core::DispatcherStatus now = status();
    history.quarantine_series.push_back(now.quarantined);
    if (now.submitted >= spec.task_count &&
        now.completed + now.failed >= now.submitted) {
      return true;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      history.run_error =
          "stalled: completed=" + std::to_string(now.completed) +
          " failed=" + std::to_string(now.failed) +
          " queued=" + std::to_string(now.queued) +
          " dispatched=" + std::to_string(now.dispatched) + " of " +
          std::to_string(spec.task_count);
      return false;
    }
    if (spec.supervise) {
      for (int slot = 0; slot < spec.executors; ++slot) respawn(slot);
    }
    nap_ms(5);
  }
}

}  // namespace

RunHistory run_sim(const WorkloadSpec& spec) {
  obs::Obs obs{trace_config()};
  const fault::FaultPlan plan = fault_plan(spec);
  std::unique_ptr<fault::FaultInjector> injector;
  if (spec.faulty()) {
    injector = std::make_unique<fault::FaultInjector>(plan, &obs);
  }

  sim::SimFalkonConfig config;
  config.executors = spec.executors;
  config.task_count = spec.task_count;
  config.task_length_s = spec.task_length_s;
  config.client_bundle = spec.client_bundle;
  config.piggyback = spec.piggyback;
  config.seed = spec.seed;
  config.replay_timeout_s = spec.replay_timeout_s;
  config.max_retries = spec.max_retries;
  config.obs = &obs;
  config.fault = injector.get();

  const sim::SimFalkonResult result = sim::simulate_falkon(config);

  RunHistory history;
  history.backend = "sim";
  history.submitted = spec.task_count;
  history.completed = result.completed;
  history.failed = result.failed;
  history.retried = result.retried;
  history.max_retries = spec.max_retries;
  if (injector) history.injected_faults = injector->total_injected();
  history.events = obs.tracer().snapshot();
  history.trace_complete = obs.tracer().complete();
  return history;
}

RunHistory run_inproc(const WorkloadSpec& spec) {
  RunHistory history;
  history.backend = "inproc";
  history.max_retries = spec.max_retries;

  obs::Obs obs{trace_config()};
  const fault::FaultPlan plan = fault_plan(spec);
  std::unique_ptr<fault::FaultInjector> injector;
  if (spec.faulty()) {
    injector = std::make_unique<fault::FaultInjector>(plan, &obs);
  }

  RealClock clock;
  core::Dispatcher dispatcher(clock,
                              dispatcher_config(spec, obs, injector.get()));
  core::LocalDispatcherClient client(dispatcher);

  // Fleet with supervision: a slot whose runtime exited (injected crash or
  // false suspicion) is respawned as a fresh executor.
  std::uint64_t next_node = 1;
  std::vector<std::unique_ptr<core::LocalExecutorHarness>> fleet(
      static_cast<std::size_t>(spec.executors));
  const auto respawn = [&](int slot) {
    auto& cell = fleet[static_cast<std::size_t>(slot)];
    if (cell && cell->runtime().running()) return;
    cell.reset();
    auto harness = std::make_unique<core::LocalExecutorHarness>(
        clock, dispatcher, std::make_unique<core::SleepEngine>(clock),
        executor_options(spec, next_node++, obs, injector.get()));
    if (harness->start().ok()) cell = std::move(harness);
  };
  for (int slot = 0; slot < spec.executors; ++slot) respawn(slot);

  const auto instance = client.create_instance(ClientId{1});
  if (!instance.ok()) {
    history.run_error = "create_instance: " + instance.error().str();
    return history;
  }

  // Client-dispatcher bundling {1,2}.
  const std::vector<TaskSpec> tasks = make_tasks(spec);
  for (std::size_t at = 0; at < tasks.size();
       at += static_cast<std::size_t>(spec.client_bundle)) {
    const std::size_t end = std::min(
        tasks.size(), at + static_cast<std::size_t>(spec.client_bundle));
    auto accepted = client.submit(
        instance.value(), {tasks.begin() + static_cast<long>(at),
                           tasks.begin() + static_cast<long>(end)});
    if (!accepted.ok()) {
      history.run_error = "submit: " + accepted.error().str();
      return history;
    }
  }

  drive_to_quiesce(history, spec, /*deadline_s=*/60.0,
                   [&] { return dispatcher.status(); }, respawn);

  // Pick up every routed result (failures included — replay exhaustion and
  // quarantine also deliver a terminal TaskResult).
  int idle_polls = 0;
  while (history.run_error.empty() &&
         history.result_ids.size() < spec.task_count && idle_polls < 5) {
    auto batch = client.wait_results(instance.value(), 256, 0.2);
    if (!batch.ok() || batch.value().empty()) {
      ++idle_polls;
      continue;
    }
    idle_polls = 0;
    for (const auto& result : batch.value()) {
      history.result_ids.push_back(result.task_id.value);
    }
  }

  const core::DispatcherStatus status = dispatcher.status();
  for (auto& harness : fleet) harness.reset();
  dispatcher.shutdown();

  if (injector) history.injected_faults = injector->total_injected();
  fill_terminal_status(history, status);
  history.events = obs.tracer().snapshot();
  history.trace_complete = obs.tracer().complete();
  return history;
}

RunHistory run_tcp(const WorkloadSpec& spec, double deadline_s) {
  RunHistory history;
  history.backend = "tcp";
  history.max_retries = spec.max_retries;

  obs::Obs obs{trace_config()};
  const fault::FaultPlan plan = fault_plan(spec);
  std::unique_ptr<fault::FaultInjector> injector;
  if (spec.faulty()) {
    injector = std::make_unique<fault::FaultInjector>(plan, &obs);
  }

  RealClock clock;
  const bool data_run = spec.data_objects > 0;
  core::DispatcherConfig dconfig = dispatcher_config(spec, obs, injector.get());
  std::unique_ptr<core::DispatchPolicy> policy;
  if (data_run) {
    // Data-bearing specs run the locality router end to end: the
    // good-cache-compute policy plus the I12 wait bound.
    dconfig.max_locality_wait_s = kLocalityWaitS;
    policy = std::make_unique<core::GoodCacheComputePolicy>();
  }
  core::Dispatcher dispatcher(clock, dconfig, std::move(policy));
  core::TcpDispatcherServer server(dispatcher, &obs);
  if (auto status = server.start(0, 0, injector.get()); !status.ok()) {
    history.run_error = "server start: " + status.error().str();
    return history;
  }

  const iomodel::IoModel io_model;
  std::uint64_t next_node = 1;
  // Data runs: one cache plane per fleet slot, advertising over the real
  // wire and serving peer fetches. Declared before the fleet so every
  // plane outlives the harness (and engine) that references it.
  std::vector<std::unique_ptr<core::DataPlane>> planes(
      static_cast<std::size_t>(spec.executors));
  std::vector<std::unique_ptr<core::TcpExecutorHarness>> fleet(
      static_cast<std::size_t>(spec.executors));
  const auto respawn = [&](int slot) {
    auto& cell = fleet[static_cast<std::size_t>(slot)];
    if (cell && cell->runtime().running()) return;
    cell.reset();
    core::ExecutorOptions eopts =
        executor_options(spec, next_node++, obs, injector.get());
    std::unique_ptr<core::TaskEngine> engine;
    core::P2pDataEngine* data_engine = nullptr;
    if (data_run) {
      auto& plane = planes[static_cast<std::size_t>(slot)];
      plane = std::make_unique<core::DataPlane>(
          core::DataPlaneOptions{.obs = &obs});
      auto owned = std::make_unique<core::P2pDataEngine>(
          clock, io_model, spec.executors, *plane, &obs);
      data_engine = owned.get();
      engine = std::move(owned);
      eopts.data = plane.get();
    } else {
      engine = std::make_unique<core::SleepEngine>(clock);
    }
    auto harness = std::make_unique<core::TcpExecutorHarness>(
        clock, "127.0.0.1", server.rpc_port(), server.push_port(),
        std::move(engine), eopts);
    if (harness->start().ok()) {
      if (data_engine != nullptr) {
        data_engine->set_actor(harness->runtime().id().value);
      }
      cell = std::move(harness);
    }
  };
  for (int slot = 0; slot < spec.executors; ++slot) respawn(slot);

  // Client over real TCP. The client stub carries no injector, so requests
  // always reach the dispatcher — but the server may drop reply frames
  // (Site::kRpcReply), so reads retry on a fresh connection and submits are
  // confirmed through the (idempotent) status call instead of re-sending.
  std::unique_ptr<core::TcpDispatcherClient> client;
  const auto redial = [&]() -> bool {
    for (int attempt = 0; attempt < 100; ++attempt) {
      auto connected =
          core::TcpDispatcherClient::connect("127.0.0.1", server.rpc_port());
      if (connected.ok()) {
        client = connected.take();
        return true;
      }
      nap_ms(10);
    }
    return false;
  };
  const auto reliable = [&](const auto& fn) -> bool {
    for (int attempt = 0; attempt < 200; ++attempt) {
      if (client == nullptr && !redial()) break;
      if (fn(*client)) return true;
      client.reset();
      nap_ms(10);
    }
    return false;
  };

  InstanceId instance;
  if (!reliable([&](core::TcpDispatcherClient& c) {
        auto created = c.create_instance(ClientId{1});
        if (created.ok()) instance = created.value();
        return created.ok();
      })) {
    history.run_error = "create_instance never succeeded";
    return history;
  }

  const std::vector<TaskSpec> tasks = make_tasks(spec);
  std::uint64_t confirmed = 0;
  for (std::size_t at = 0; at < tasks.size();
       at += static_cast<std::size_t>(spec.client_bundle)) {
    const std::size_t end = std::min(
        tasks.size(), at + static_cast<std::size_t>(spec.client_bundle));
    if (client == nullptr && !redial()) break;
    // Send once; a lost reply must not trigger a blind re-send (that would
    // duplicate task ids). The status poll below confirms acceptance.
    (void)client->submit(instance, {tasks.begin() + static_cast<long>(at),
                                    tasks.begin() + static_cast<long>(end)});
    confirmed += end - at;
    const std::uint64_t want = confirmed;
    if (!reliable([&](core::TcpDispatcherClient& c) {
          auto status = c.status();
          return status.ok() && status.value().submitted >= want;
        })) {
      history.run_error = "submit of bundle at " + std::to_string(at) +
                          " never confirmed";
      return history;
    }
  }

  drive_to_quiesce(history, spec, deadline_s,
                   [&] { return dispatcher.status(); }, respawn);

  int idle_polls = 0;
  while (history.run_error.empty() &&
         history.result_ids.size() < spec.task_count && idle_polls < 8) {
    std::vector<TaskResult> batch;
    const bool got = reliable([&](core::TcpDispatcherClient& c) {
      auto results = c.wait_results(instance, 256, 0.2);
      if (!results.ok()) return false;
      batch = std::move(results.value());
      return true;
    });
    if (!got || batch.empty()) {
      ++idle_polls;
      continue;
    }
    idle_polls = 0;
    for (const auto& result : batch) {
      history.result_ids.push_back(result.task_id.value);
    }
  }

  const core::DispatcherStatus status = dispatcher.status();
  // Orderly fleet teardown *before* reading the bundle ledger: deregister
  // (or removal via the sink hook) must retire every outstanding
  // bundle_seq — exactly invariant I7.
  for (auto& harness : fleet) harness.reset();
  // Crash-injected slots die without a deregister, so their unacked
  // bundle_seqs retire only when the failure detector removes them
  // (heartbeat timeout + sweep). Tasks can all finish before that — the
  // replay timeout is allowed to be shorter than the heartbeat timeout —
  // so wait for the executor table to settle before reading the ledger.
  {
    const auto settle_deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (dispatcher.status().registered_executors != 0 &&
           std::chrono::steady_clock::now() < settle_deadline) {
      nap_ms(5);
    }
  }

  obs::Registry& reg = obs.registry();
  history.has_bundle_counters = true;
  history.pending_bundles_gauge =
      reg.gauge("falkon.net.rpc.pending_bundles").value();
  history.bundles_issued = reg.counter("falkon.net.rpc.bundles_issued").value();
  history.bundles_retired =
      reg.counter("falkon.net.rpc.bundles_retired").value();

  if (data_run) {
    const core::Dispatcher::DataStats data = dispatcher.data_stats();
    history.data_run = true;
    history.max_locality_wait_s = dconfig.max_locality_wait_s;
    history.stale_route_errors = data.stale_routes;
    history.locality_overwait = data.locality_overwait;
    history.data_evictions = data.evictions;
    history.digest_stale = reg.counter("falkon.data.digest_stale").value();
  }

  dispatcher.shutdown();
  server.stop();

  if (injector) history.injected_faults = injector->total_injected();
  fill_terminal_status(history, status);
  history.events = obs.tracer().snapshot();
  history.trace_complete = obs.tracer().complete();
  return history;
}

namespace {

/// Self-deleting scratch directory holding the HA run's journals.
class ScratchDir {
 public:
  ScratchDir() {
    char pattern[] = "/tmp/falkon_tk_XXXXXX";
    if (const char* made = ::mkdtemp(pattern)) path_ = made;
  }
  ~ScratchDir() {
    if (!path_.empty()) {
      std::error_code ec;
      std::filesystem::remove_all(path_, ec);
    }
  }
  [[nodiscard]] const std::string& path() const { return path_; }

 private:
  std::string path_;
};

/// Reserve a free loopback port: bind ephemeral, note it, release. The
/// election mesh needs every standby's port known before any is built.
std::uint16_t reserve_port() {
  auto listener = net::TcpListener::bind(0);
  if (!listener.ok()) return 0;
  const std::uint16_t port = listener.value().port();
  listener.value().close();
  return port;
}

}  // namespace

RunHistory run_tcp_ha(const WorkloadSpec& spec, const HaRunOptions& ha) {
  RunHistory history;
  history.backend = "tcp-ha";
  history.ha_run = true;
  // Takeover requeues re-dispatch in-flight tasks outside the retry
  // budget, so the per-task kGetWork count is not I5-accountable here.
  history.max_retries = -1;

  obs::Obs obs{trace_config()};
  const fault::FaultPlan plan = fault_plan(spec);
  std::unique_ptr<fault::FaultInjector> injector;
  if (spec.faulty()) {
    injector = std::make_unique<fault::FaultInjector>(plan, &obs);
  }

  ScratchDir scratch;
  if (scratch.path().empty()) {
    history.run_error = "mkdtemp failed";
    return history;
  }
  const std::string primary_dir = scratch.path() + "/primary";
  std::error_code ec;
  std::filesystem::create_directories(primary_dir, ec);

  RealClock clock;

  // Primary: journaled dispatcher, optionally with group commit moved off
  // the submit/complete hot path via AsyncJournal.
  ha::Journal::Options jopts = {};
  jopts.dir = primary_dir;
  jopts.obs = &obs;
  auto opened = ha::Journal::open(jopts);
  if (!opened.ok()) {
    history.run_error = "journal open: " + opened.error().str();
    return history;
  }
  const std::uint64_t primary_epoch = opened.value()->epoch();
  std::unique_ptr<ha::AsyncJournal> async_journal;
  std::unique_ptr<ha::Journal> sync_journal;
  core::StateJournal* journal = nullptr;
  core::ReplicationSource* repl = nullptr;
  if (ha.async_journal) {
    async_journal = std::make_unique<ha::AsyncJournal>(opened.take());
    journal = async_journal.get();
    repl = async_journal.get();
  } else {
    sync_journal = opened.take();
    journal = sync_journal.get();
    repl = sync_journal.get();
  }

  core::DispatcherConfig dconfig = dispatcher_config(spec, obs, injector.get());
  dconfig.journal = journal;
  auto dispatcher = std::make_unique<core::Dispatcher>(clock, dconfig);
  auto server = std::make_unique<core::TcpDispatcherServer>(*dispatcher, &obs);
  if (auto status = server->start(0, 0, injector.get()); !status.ok()) {
    history.run_error = "server start: " + status.error().str();
    return history;
  }
  server->set_replication_source(repl);
  server->set_epoch(primary_epoch);
  history.primary_epochs.push_back(primary_epoch);
  const std::uint16_t rpc_port = server->rpc_port();
  const std::uint16_t push_port = server->push_port();

  // Standby fleet: full election mesh, every standby fencing through the
  // primary's (shared, same-host) log directory.
  const int standby_count = std::max(1, ha.standbys);
  std::vector<std::uint16_t> election_ports(
      static_cast<std::size_t>(standby_count));
  for (auto& port : election_ports) port = reserve_port();
  std::vector<std::unique_ptr<ha::Standby>> standbys;
  for (int i = 0; i < standby_count; ++i) {
    ha::StandbyOptions sopts;
    sopts.primary_host = "127.0.0.1";
    sopts.primary_rpc_port = rpc_port;
    sopts.rank = static_cast<std::uint32_t>(i);
    sopts.election_port = election_ports[static_cast<std::size_t>(i)];
    for (int j = 0; j < standby_count; ++j) {
      if (j == i) continue;
      sopts.peers.push_back({"127.0.0.1",
                             election_ports[static_cast<std::size_t>(j)],
                             static_cast<std::uint32_t>(j)});
    }
    sopts.takeover_rpc_port = rpc_port;
    sopts.takeover_push_port = push_port;
    sopts.shared_log_dir = primary_dir;
    sopts.standby_dir = scratch.path() + "/standby" + std::to_string(i);
    std::filesystem::create_directories(sopts.standby_dir, ec);
    sopts.poll_interval_s = 0.02;
    sopts.failover_after_s = 0.35;
    sopts.dispatcher = dispatcher_config(spec, obs, injector.get());
    sopts.obs = &obs;
    sopts.fault = injector.get();
    auto standby = std::make_unique<ha::Standby>(clock, std::move(sopts));
    if (auto status = standby->start(); !status.ok()) {
      history.run_error = "standby start: " + status.error().str();
      return history;
    }
    standbys.push_back(std::move(standby));
  }

  std::uint64_t next_node = 1;
  std::vector<std::unique_ptr<core::TcpExecutorHarness>> fleet(
      static_cast<std::size_t>(spec.executors));
  const auto respawn = [&](int slot) {
    auto& cell = fleet[static_cast<std::size_t>(slot)];
    if (cell && cell->runtime().running()) return;
    cell.reset();
    core::ExecutorOptions eopts =
        executor_options(spec, next_node++, obs, injector.get());
    // Survive the takeover window: a generous link budget so in-flight
    // calls ride out the downtime, and a fast takeover probe so push-mode
    // executors rediscover the promoted dispatcher without polling.
    eopts.link_retries = std::max(eopts.link_retries, 8);
    eopts.register_retries = std::max(eopts.register_retries, 8);
    eopts.backoff.base_s = 0.02;
    eopts.backoff.max_s = 0.2;
    eopts.takeover_probe_s = 0.1;
    auto harness = std::make_unique<core::TcpExecutorHarness>(
        clock, "127.0.0.1", rpc_port, push_port,
        std::make_unique<core::SleepEngine>(clock), eopts);
    if (harness->start().ok()) cell = std::move(harness);
  };
  for (int slot = 0; slot < spec.executors; ++slot) respawn(slot);

  // The failover client carries the epoch protocol and submit_seq
  // idempotence; one submit call per bundle is exactly-once end to end.
  ha::FailoverClientOptions copts;
  copts.host = "127.0.0.1";
  copts.rpc_port = rpc_port;
  copts.obs = &obs;
  ha::FailoverClient client(copts);

  auto created = client.create_instance(ClientId{1});
  if (!created.ok()) {
    history.run_error = "create_instance: " + created.error().str();
    return history;
  }
  const InstanceId instance = created.value();

  const std::vector<TaskSpec> tasks = make_tasks(spec);
  for (std::size_t at = 0; at < tasks.size();
       at += static_cast<std::size_t>(spec.client_bundle)) {
    const std::size_t end = std::min(
        tasks.size(), at + static_cast<std::size_t>(spec.client_bundle));
    auto accepted = client.submit(
        instance, {tasks.begin() + static_cast<long>(at),
                   tasks.begin() + static_cast<long>(end)});
    if (!accepted.ok()) {
      history.run_error = "submit: " + accepted.error().str();
      return history;
    }
  }

  // Drive to quiesce with the kill schedule folded in. Promotions are
  // recorded the moment they are observed so primary_epochs keeps serving
  // order (I9).
  const std::uint64_t kill_at =
      spec.kill_primary_after > 0
          ? static_cast<std::uint64_t>(spec.kill_primary_after *
                                       static_cast<double>(spec.task_count))
          : std::numeric_limits<std::uint64_t>::max();
  bool primary_killed = spec.kill_primary_after <= 0;
  bool winner_killed = !ha.kill_winner_too || standby_count < 2;
  int winner = -1;
  std::chrono::steady_clock::time_point winner_seen{};
  std::vector<bool> recorded(standbys.size(), false);
  const auto record_promotions = [&] {
    for (std::size_t i = 0; i < standbys.size(); ++i) {
      if (recorded[i] || standbys[i] == nullptr || !standbys[i]->promoted()) {
        continue;
      }
      recorded[i] = true;
      history.primary_epochs.push_back(standbys[i]->epoch());
      if (winner < 0) winner = static_cast<int>(i);
    }
  };

  const auto deadline =
      std::chrono::steady_clock::now() +
      std::chrono::milliseconds(static_cast<long>(ha.deadline_s * 1000));
  core::DispatcherStatus last{};
  for (;;) {
    if (auto status = client.status(); status.ok()) last = status.value();
    history.quarantine_series.push_back(last.quarantined);
    record_promotions();

    if (!primary_killed && last.completed >= kill_at) {
      // Kill the primary: stop serving, then release the journal (the
      // AsyncJournal destructor drains) so the election winner can fence
      // and recover the shared directory.
      server->stop();
      server.reset();
      dispatcher->shutdown();
      dispatcher.reset();
      async_journal.reset();
      sync_journal.reset();
      primary_killed = true;
    }

    if (primary_killed && !winner_killed && winner >= 0) {
      if (winner_seen == std::chrono::steady_clock::time_point{}) {
        winner_seen = std::chrono::steady_clock::now();
      } else if (std::chrono::steady_clock::now() - winner_seen >
                 std::chrono::milliseconds(300)) {
        auto& victim = standbys[static_cast<std::size_t>(winner)];
        victim->stop();
        if (victim->dispatcher() != nullptr) {
          victim->dispatcher()->shutdown();
        }
        victim.reset();  // releases the shared dir for the next winner
        winner_killed = true;
        winner = -1;
      }
    }

    if (primary_killed && winner_killed &&
        last.submitted >= spec.task_count &&
        last.completed + last.failed >= last.submitted) {
      break;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      history.run_error =
          "stalled: completed=" + std::to_string(last.completed) +
          " failed=" + std::to_string(last.failed) +
          " queued=" + std::to_string(last.queued) +
          " dispatched=" + std::to_string(last.dispatched) + " of " +
          std::to_string(spec.task_count);
      break;
    }
    if (spec.supervise) {
      for (int slot = 0; slot < spec.executors; ++slot) respawn(slot);
    }
    nap_ms(5);
  }
  record_promotions();

  // Collect every result through the failover client (dedups re-delivery
  // across the takeover; I10 demands one per submitted task).
  int idle_polls = 0;
  while (history.run_error.empty() &&
         history.result_ids.size() < spec.task_count && idle_polls < 10) {
    auto batch = client.wait_results(instance, 256, 0.2);
    if (!batch.ok() || batch.value().empty()) {
      ++idle_polls;
      continue;
    }
    idle_polls = 0;
    for (const auto& result : batch.value()) {
      history.result_ids.push_back(result.task_id.value);
    }
  }

  core::DispatcherStatus final_status = last;
  if (auto status = client.status(); status.ok()) final_status = status.value();
  record_promotions();

  // Orderly teardown: fleet first (deregister against whoever serves),
  // then standbys, then whatever remains of the original primary.
  for (auto& harness : fleet) harness.reset();
  for (auto& standby : standbys) {
    if (standby == nullptr) continue;
    standby->stop();
    if (standby->dispatcher() != nullptr) standby->dispatcher()->shutdown();
    standby.reset();
  }
  if (server != nullptr) server->stop();
  server.reset();
  if (dispatcher != nullptr) dispatcher->shutdown();
  dispatcher.reset();
  async_journal.reset();
  sync_journal.reset();

  if (injector) history.injected_faults = injector->total_injected();
  fill_terminal_status(history, final_status);
  history.events = obs.tracer().snapshot();
  history.trace_complete = obs.tracer().complete();
  return history;
}

}  // namespace falkon::testkit
