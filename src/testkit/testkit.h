// falkon::testkit — umbrella header.
//
// Seeded property-based testing for the Falkon reproduction: workload
// generation with automatic shrinking (workload.h), protocol histories and
// the dispatcher invariant model replayed from the obs trace ring
// (history.h), backend runners for DES / in-process / loopback-TCP
// (runners.h), and the property harness with seed replay (property.h).
// See docs/TESTING.md.
#pragma once

#include "testkit/history.h"
#include "testkit/property.h"
#include "testkit/runners.h"
#include "testkit/workload.h"
