#include "iomodel/data_cache.h"

namespace falkon::iomodel {

bool DataCache::access(const std::string& object) {
  auto it = map_.find(object);
  if (it == map_.end()) {
    ++misses_;
    return false;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return true;
}

void DataCache::insert(const std::string& object, std::uint64_t bytes) {
  if (bytes > capacity_) return;
  auto it = map_.find(object);
  if (it != map_.end()) {
    used_ -= it->second->bytes;
    it->second->bytes = bytes;
    used_ += bytes;
    lru_.splice(lru_.begin(), lru_, it->second);
    evict_to_fit(0);
    return;
  }
  evict_to_fit(bytes);
  lru_.push_front(Entry{object, bytes});
  map_[object] = lru_.begin();
  used_ += bytes;
}

bool DataCache::contains(const std::string& object) const {
  return map_.count(object) > 0;
}

void DataCache::erase(const std::string& object) {
  auto it = map_.find(object);
  if (it == map_.end()) return;
  used_ -= it->second->bytes;
  lru_.erase(it->second);
  map_.erase(it);
}

void DataCache::clear() {
  lru_.clear();
  map_.clear();
  used_ = 0;
}

std::vector<std::string> DataCache::objects() const {
  std::vector<std::string> out;
  out.reserve(lru_.size());
  for (const Entry& e : lru_) out.push_back(e.object);
  return out;
}

std::vector<std::string> DataCache::take_evictions() {
  std::vector<std::string> out;
  out.swap(evicted_);
  return out;
}

void DataCache::evict_to_fit(std::uint64_t incoming_bytes) {
  while (!lru_.empty() && used_ + incoming_bytes > capacity_) {
    Entry& victim = lru_.back();
    used_ -= victim.bytes;
    map_.erase(victim.object);
    evicted_.push_back(std::move(victim.object));
    lru_.pop_back();
  }
}

}  // namespace falkon::iomodel
