// Storage substrate models.
//
// Section 4.2 of the paper measures Falkon task throughput when tasks stage
// data from either the GPFS shared file system (8 I/O nodes in the paper's
// testbed) or the compute node's local disk, reading or reading+writing
// between 1 B and 1 GB per task. We model the two mechanisms that determine
// those curves:
//   * aggregate bandwidth saturation — concurrent accessors share the file
//     system's aggregate bandwidth;
//   * operation-rate limits — GPFS serialises concurrent writes through its
//     I/O nodes, capping aggregate write *operations* per second regardless
//     of data size (the paper observed 150 tasks/s for 1-byte read+write).
//
// Units follow the paper: bandwidths in megabits/s ("Mb/s" in Figure 4).
#pragma once

#include <cstdint>

#include "common/task.h"

namespace falkon::iomodel {

struct SharedFsConfig {
  int io_servers{8};
  /// Aggregate read bandwidth (paper plateau: 3,067 Mb/s).
  double aggregate_read_mbps{3067.0};
  /// Aggregate bandwidth for read+write workloads (paper plateau: 326 Mb/s;
  /// GPFS write traffic is drastically slower under concurrency).
  double aggregate_write_mbps{326.0};
  /// Aggregate metadata/lock-limited operation rates.
  double read_ops_per_s{20000.0};
  double write_ops_per_s{150.0};
};

struct LocalDiskConfig {
  /// Per-node bandwidths (paper plateaus over 64 nodes: read 52,015 Mb/s
  /// => ~813 Mb/s per node; read+write 32,667 Mb/s => ~510 Mb/s per node).
  double node_read_mbps{813.0};
  double node_write_mbps{510.0};
  double node_ops_per_s{5000.0};
};

/// Computes per-task I/O time under a given concurrency level. Stateless;
/// both the simulation and the real DataStagingEngine consult it.
class IoModel {
 public:
  IoModel() = default;
  IoModel(SharedFsConfig shared, LocalDiskConfig local,
          int executors_per_node = 2)
      : shared_(shared), local_(local), executors_per_node_(executors_per_node) {}

  /// Time one task spends on I/O when `concurrency` tasks of the same shape
  /// access storage simultaneously (e.g. 128 executors all reading GPFS).
  [[nodiscard]] double io_time_s(const TaskSpec& task, int concurrency) const;

  /// Aggregate data throughput in Mb/s for a homogeneous workload: bits
  /// moved per task / per-task time * concurrency.
  [[nodiscard]] double aggregate_mbps(const TaskSpec& task, int concurrency) const;

  [[nodiscard]] const SharedFsConfig& shared_config() const { return shared_; }
  [[nodiscard]] const LocalDiskConfig& local_config() const { return local_; }

 private:
  [[nodiscard]] double shared_read_time(std::uint64_t bytes, int conc) const;
  [[nodiscard]] double shared_write_time(std::uint64_t bytes, int conc) const;
  [[nodiscard]] double local_read_time(std::uint64_t bytes, int conc) const;
  [[nodiscard]] double local_write_time(std::uint64_t bytes, int conc) const;

  SharedFsConfig shared_{};
  LocalDiskConfig local_{};
  int executors_per_node_{2};
};

[[nodiscard]] inline double bytes_to_megabits(std::uint64_t bytes) {
  return static_cast<double>(bytes) * 8.0 / 1e6;
}

}  // namespace falkon::iomodel
