// Per-executor local data cache.
//
// Paper section 6 (future work): "We plan to implement data caching
// mechanisms in Falkon executors, so that executors can populate local
// caches with data that tasks require", feeding a data-aware dispatcher.
// We implement it: an LRU cache of named data objects with byte-capacity
// eviction. The data-aware dispatch policy asks the dispatcher-side mirror
// of each executor's cache which executor already holds a task's input.
#pragma once

#include <cstdint>
#include <list>
#include <string>
#include <unordered_map>
#include <vector>

namespace falkon::iomodel {

class DataCache {
 public:
  explicit DataCache(std::uint64_t capacity_bytes)
      : capacity_(capacity_bytes) {}

  /// True if the object is cached; refreshes LRU position and counts a hit
  /// or miss.
  bool access(const std::string& object);

  /// Insert (or refresh) an object; evicts LRU entries to fit. Objects
  /// larger than the capacity are not cached.
  void insert(const std::string& object, std::uint64_t bytes);

  /// Non-mutating lookup (no LRU refresh, no stats) — used by the
  /// dispatcher's data-aware policy to probe remote cache contents.
  [[nodiscard]] bool contains(const std::string& object) const;

  void erase(const std::string& object);
  void clear();

  /// Snapshot of cached object names, most-recently-used first. Used to
  /// build the cache digest advertised to the dispatcher.
  [[nodiscard]] std::vector<std::string> objects() const;

  /// Drain the names evicted by capacity pressure since the last call.
  /// Explicit erase()/clear() are caller-initiated and are not recorded —
  /// the caller already knows about those.
  [[nodiscard]] std::vector<std::string> take_evictions();

  [[nodiscard]] std::uint64_t used_bytes() const { return used_; }
  [[nodiscard]] std::uint64_t capacity_bytes() const { return capacity_; }
  [[nodiscard]] std::size_t entries() const { return map_.size(); }
  [[nodiscard]] std::uint64_t hits() const { return hits_; }
  [[nodiscard]] std::uint64_t misses() const { return misses_; }
  [[nodiscard]] double hit_rate() const {
    const auto total = hits_ + misses_;
    return total == 0 ? 0.0 : static_cast<double>(hits_) / static_cast<double>(total);
  }

 private:
  struct Entry {
    std::string object;
    std::uint64_t bytes;
  };

  void evict_to_fit(std::uint64_t incoming_bytes);

  std::uint64_t capacity_;
  std::uint64_t used_{0};
  std::list<Entry> lru_;  // front = most recently used
  std::unordered_map<std::string, std::list<Entry>::iterator> map_;
  std::uint64_t hits_{0};
  std::uint64_t misses_{0};
  std::vector<std::string> evicted_;  // capacity-pressure victims, undrained
};

}  // namespace falkon::iomodel
