#include "iomodel/io_model.h"

#include <algorithm>

namespace falkon::iomodel {

double IoModel::shared_read_time(std::uint64_t bytes, int conc) const {
  conc = std::max(conc, 1);
  // Operation setup serialises through the I/O nodes...
  const double op_time = static_cast<double>(conc) / shared_.read_ops_per_s;
  // ...then the transfer shares aggregate bandwidth.
  const double transfer =
      bytes_to_megabits(bytes) /
      (shared_.aggregate_read_mbps / static_cast<double>(conc));
  return op_time + transfer;
}

double IoModel::shared_write_time(std::uint64_t bytes, int conc) const {
  conc = std::max(conc, 1);
  const double op_time = static_cast<double>(conc) / shared_.write_ops_per_s;
  const double transfer =
      bytes_to_megabits(bytes) /
      (shared_.aggregate_write_mbps / static_cast<double>(conc));
  return op_time + transfer;
}

double IoModel::local_read_time(std::uint64_t bytes, int conc) const {
  // Concurrency on local disk is per node, not global.
  const int node_conc = std::clamp(std::min(conc, executors_per_node_), 1,
                                   executors_per_node_);
  const double op_time = static_cast<double>(node_conc) / local_.node_ops_per_s;
  const double transfer =
      bytes_to_megabits(bytes) /
      (local_.node_read_mbps / static_cast<double>(node_conc));
  return op_time + transfer;
}

double IoModel::local_write_time(std::uint64_t bytes, int conc) const {
  const int node_conc = std::clamp(std::min(conc, executors_per_node_), 1,
                                   executors_per_node_);
  const double op_time = static_cast<double>(node_conc) / local_.node_ops_per_s;
  const double transfer =
      bytes_to_megabits(bytes) /
      (local_.node_write_mbps / static_cast<double>(node_conc));
  return op_time + transfer;
}

double IoModel::io_time_s(const TaskSpec& task, int concurrency) const {
  if (task.data_location == DataLocation::kNone ||
      task.io_mode == IoMode::kNone) {
    return 0.0;
  }
  double total = 0.0;
  const bool shared = task.data_location == DataLocation::kSharedFs;
  if (task.io_mode == IoMode::kRead || task.io_mode == IoMode::kReadWrite) {
    total += shared ? shared_read_time(task.input_bytes, concurrency)
                    : local_read_time(task.input_bytes, concurrency);
  }
  if (task.io_mode == IoMode::kReadWrite) {
    total += shared ? shared_write_time(task.output_bytes, concurrency)
                    : local_write_time(task.output_bytes, concurrency);
  }
  return total;
}

double IoModel::aggregate_mbps(const TaskSpec& task, int concurrency) const {
  const double t = io_time_s(task, concurrency) + task.estimated_runtime_s;
  if (t <= 0) return 0.0;
  const double bits_per_task = bytes_to_megabits(
      task.input_bytes +
      (task.io_mode == IoMode::kReadWrite ? task.output_bytes : 0));
  return bits_per_task / t * static_cast<double>(std::max(concurrency, 1));
}

}  // namespace falkon::iomodel
