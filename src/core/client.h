// Client-side API.
//
// DispatcherClient is the transport-neutral client view of the dispatcher
// (in-process direct calls or TCP RPC). FalkonSession is the user-facing
// convenience: it owns one dispatcher instance (the "EPR" from the factory
// pattern), splits submissions into bundles (client-dispatcher bundling,
// section 3.4), and accumulates results.
#pragma once

#include <memory>
#include <vector>

#include "common/ids.h"
#include "common/result.h"
#include "common/task.h"
#include "core/dispatcher.h"

namespace falkon::core {

class DispatcherClient {
 public:
  virtual ~DispatcherClient() = default;

  virtual Result<InstanceId> create_instance(ClientId client) = 0;
  virtual Result<std::uint64_t> submit(InstanceId instance,
                                       std::vector<TaskSpec> tasks) = 0;
  virtual Result<std::vector<TaskResult>> wait_results(InstanceId instance,
                                                       std::uint32_t max_results,
                                                       double timeout_s) = 0;
  virtual Status destroy_instance(InstanceId instance) = 0;
  virtual Result<DispatcherStatus> status() = 0;
};

/// Direct in-process client.
class LocalDispatcherClient final : public DispatcherClient {
 public:
  explicit LocalDispatcherClient(Dispatcher& dispatcher)
      : dispatcher_(dispatcher) {}

  Result<InstanceId> create_instance(ClientId client) override {
    return dispatcher_.create_instance(client);
  }
  Result<std::uint64_t> submit(InstanceId instance,
                               std::vector<TaskSpec> tasks) override {
    return dispatcher_.submit(instance, std::move(tasks));
  }
  Result<std::vector<TaskResult>> wait_results(InstanceId instance,
                                               std::uint32_t max_results,
                                               double timeout_s) override {
    return dispatcher_.wait_results(instance, max_results, timeout_s);
  }
  Status destroy_instance(InstanceId instance) override {
    return dispatcher_.destroy_instance(instance);
  }
  Result<DispatcherStatus> status() override { return dispatcher_.status(); }

 private:
  Dispatcher& dispatcher_;
};

struct SessionOptions {
  /// Tasks per submit message (client-dispatcher bundling). The paper finds
  /// a sweet spot below ~300 tasks per bundle.
  std::size_t bundle_size{100};
  /// Default wait_results timeout slice.
  double poll_timeout_s{1.0};
};

class FalkonSession {
 public:
  /// Create an instance on the dispatcher; destroyed with the session.
  static Result<std::unique_ptr<FalkonSession>> open(DispatcherClient& client,
                                                     ClientId client_id,
                                                     SessionOptions options = {});
  ~FalkonSession();

  FalkonSession(const FalkonSession&) = delete;
  FalkonSession& operator=(const FalkonSession&) = delete;

  /// Submit tasks, bundling them per SessionOptions.
  Status submit(std::vector<TaskSpec> tasks);

  /// Wait until `count` results arrived (across calls) or `deadline_s`
  /// model-seconds elapsed; returns the newly collected results.
  Result<std::vector<TaskResult>> wait(std::size_t count, double deadline_s);

  /// submit + wait for exactly tasks.size() results.
  Result<std::vector<TaskResult>> run(std::vector<TaskSpec> tasks,
                                      double deadline_s);

  [[nodiscard]] InstanceId instance() const { return instance_; }
  [[nodiscard]] std::uint64_t submitted() const { return submitted_; }
  [[nodiscard]] std::uint64_t received() const { return received_; }

 private:
  FalkonSession(DispatcherClient& client, InstanceId instance,
                SessionOptions options)
      : client_(client), instance_(instance), options_(options) {}

  DispatcherClient& client_;
  InstanceId instance_;
  SessionOptions options_;
  std::uint64_t submitted_{0};
  std::uint64_t received_{0};
};

}  // namespace falkon::core
