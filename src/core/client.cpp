#include "core/client.h"

#include <algorithm>

namespace falkon::core {

Result<std::unique_ptr<FalkonSession>> FalkonSession::open(
    DispatcherClient& client, ClientId client_id, SessionOptions options) {
  auto instance = client.create_instance(client_id);
  if (!instance.ok()) return instance.error();
  if (options.bundle_size == 0) options.bundle_size = 1;
  return std::unique_ptr<FalkonSession>(
      new FalkonSession(client, instance.value(), options));
}

FalkonSession::~FalkonSession() { (void)client_.destroy_instance(instance_); }

Status FalkonSession::submit(std::vector<TaskSpec> tasks) {
  std::size_t at = 0;
  while (at < tasks.size()) {
    const std::size_t n = std::min(options_.bundle_size, tasks.size() - at);
    std::vector<TaskSpec> bundle(
        std::make_move_iterator(tasks.begin() + static_cast<std::ptrdiff_t>(at)),
        std::make_move_iterator(tasks.begin() +
                                static_cast<std::ptrdiff_t>(at + n)));
    auto accepted = client_.submit(instance_, std::move(bundle));
    if (!accepted.ok()) return accepted.error();
    submitted_ += accepted.value();
    at += n;
  }
  return ok_status();
}

Result<std::vector<TaskResult>> FalkonSession::wait(std::size_t count,
                                                    double deadline_s) {
  std::vector<TaskResult> collected;
  // deadline_s bounds *idle* waiting: the budget resets whenever results
  // arrive, so a long healthy run is never cut off mid-stream.
  double idle_waited = 0.0;
  while (collected.size() < count) {
    const double slice =
        std::min(options_.poll_timeout_s, deadline_s - idle_waited);
    if (slice <= 0) {
      return make_error(
          ErrorCode::kTimeout,
          "timed out with " + std::to_string(collected.size()) + "/" +
              std::to_string(count) + " results");
    }
    auto batch = client_.wait_results(
        instance_, static_cast<std::uint32_t>(count - collected.size()), slice);
    if (!batch.ok()) return batch.error();
    if (batch.value().empty()) {
      idle_waited += slice;
    } else {
      idle_waited = 0.0;
    }
    for (auto& result : batch.value()) {
      collected.push_back(std::move(result));
    }
  }
  received_ += collected.size();
  return collected;
}

Result<std::vector<TaskResult>> FalkonSession::run(std::vector<TaskSpec> tasks,
                                                   double deadline_s) {
  const std::size_t count = tasks.size();
  if (auto status = submit(std::move(tasks)); !status.ok()) {
    return status.error();
  }
  return wait(count, deadline_s);
}

}  // namespace falkon::core
