// Executor-side data plane for data diffusion (docs/DATA.md).
//
// The paper's data-diffusion follow-up caches popular objects on executor
// local disks and routes tasks to their data. This module is the TCP half
// of that story:
//   * DataPlane   — owns the executor's iomodel::DataCache LRU, serves
//                   kDataFetch requests from peers over a net::RpcServer
//                   (riding the shared reactor machinery: per-loop buffer
//                   pools, affinity by object key), and produces the
//                   compact cache digest piggybacked on registration and
//                   heartbeats plus the kDataEvict notices for objects the
//                   LRU dropped;
//   * P2pDataEngine — a TaskEngine that stages each task's input through
//                   the DataPlane: local-cache hit, else peer-to-peer
//                   fetch from the dispatcher-stamped data_source, else
//                   the shared-FS IoModel — charging modeled I/O time the
//                   same way DataStagingEngine does, and counting
//                   falkon.data.digest_stale when the dispatcher routed on
//                   a digest entry the LRU has since evicted.
//
// Payloads on the wire are deterministic synthetic blobs (capped at
// kMaxFetchPayload) — the IoModel remains the source of truth for *time*;
// object_bytes carries the modeled size separately from the frame size.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/clock.h"
#include "common/result.h"
#include "common/task.h"
#include "core/task_engine.h"
#include "iomodel/data_cache.h"
#include "iomodel/io_model.h"
#include "net/rpc.h"
#include "obs/obs.h"

namespace falkon::core {

/// Cap on the synthetic payload carried by one kDataFetchReply. Modeled
/// object sizes (task.input_bytes) routinely exceed this; the wire carries
/// a representative blob while object_bytes reports the modeled size.
inline constexpr std::uint64_t kMaxFetchPayload = 64u * 1024;

struct DataPlaneOptions {
  /// LRU capacity of the local cache.
  std::uint64_t cache_capacity_bytes{1ull << 30};
  /// Port for the P2P fetch server (0 = ephemeral).
  std::uint16_t port{0};
  /// Reactor loops for the fetch server's owned reactor.
  int n_loops{1};
  /// Observability (falkon.data.* counters); nullptr disables.
  obs::Obs* obs{nullptr};
};

class DataPlane {
 public:
  explicit DataPlane(DataPlaneOptions options = {});
  ~DataPlane();

  DataPlane(const DataPlane&) = delete;
  DataPlane& operator=(const DataPlane&) = delete;

  /// Start the P2P fetch server; port() is valid afterwards.
  Status start();
  void stop();
  [[nodiscard]] std::uint16_t port() const;

  // ---- local cache (thread-safe) ----

  /// LRU-refreshing lookup; counts a hit or miss.
  bool access(const std::string& object);
  /// Insert (or refresh) an object of `bytes` modeled size; LRU evictions
  /// become pending kDataEvict notices.
  void insert(const std::string& object, std::uint64_t bytes);
  [[nodiscard]] bool contains(const std::string& object) const;
  void erase(const std::string& object);

  [[nodiscard]] std::uint64_t cache_hits() const;
  [[nodiscard]] std::uint64_t cache_misses() const;
  [[nodiscard]] std::size_t entries() const;

  // ---- digest / evict advertising ----

  struct Digest {
    /// Monotone per-plane sequence; bumps on every cache mutation so the
    /// dispatcher can drop reordered digests (invariant I11).
    std::uint64_t generation{0};
    std::vector<std::string> objects;  // MRU first
  };
  [[nodiscard]] Digest digest() const;

  /// Drain object names the LRU evicted since the last call — the caller
  /// turns each into a kDataEvict notice to the dispatcher.
  std::vector<std::string> take_evict_notices();

  // ---- peer-to-peer client side ----

  /// Fetch `object` from a peer's data plane at "host:port". On success
  /// returns the peer's modeled object size; the caller decides whether to
  /// insert. CRC of the payload is verified at decode.
  Result<std::uint64_t> fetch_from(const std::string& endpoint,
                                   const std::string& object);

  [[nodiscard]] std::uint64_t fetches_ok() const {
    return n_fetch_ok_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t fetches_failed() const {
    return n_fetch_fail_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t fetches_served() const {
    return n_fetch_served_.load(std::memory_order_relaxed);
  }

  /// Deterministic synthetic payload for `object` — every holder produces
  /// identical bytes, so a fetched blob is checkable against any peer.
  [[nodiscard]] static std::string payload_for(const std::string& object,
                                               std::uint64_t object_bytes);

 private:
  wire::Message handle(const wire::Message& request);

  DataPlaneOptions options_;

  mutable std::mutex mu_;
  iomodel::DataCache cache_;
  /// Modeled size per cached object (the DataCache tracks totals only).
  std::unordered_map<std::string, std::uint64_t> bytes_;
  std::vector<std::string> pending_evicts_;
  std::uint64_t generation_{0};

  net::RpcServer server_;
  bool started_{false};

  std::atomic<std::uint64_t> n_fetch_ok_{0};
  std::atomic<std::uint64_t> n_fetch_fail_{0};
  std::atomic<std::uint64_t> n_fetch_served_{0};

  obs::Counter* m_hits_{nullptr};
  obs::Counter* m_misses_{nullptr};
  obs::Counter* m_fetches_{nullptr};
  obs::Counter* m_fetch_bytes_{nullptr};
  obs::Counter* m_fetch_served_{nullptr};
  obs::Counter* m_fetch_failures_{nullptr};
};

/// Data-diffusion task engine: stages the input via the local DataPlane
/// cache, then a P2P fetch from the dispatcher-stamped alternate holder,
/// then the shared-FS IoModel; charges modeled I/O + compute time like
/// DataStagingEngine. Thread-safe.
class P2pDataEngine final : public TaskEngine {
 public:
  P2pDataEngine(Clock& clock, const iomodel::IoModel& model, int concurrency,
                DataPlane& data, obs::Obs* obs = nullptr);

  [[nodiscard]] TaskResult run(const TaskSpec& task) override;

  void set_concurrency(int concurrency) { concurrency_.store(concurrency); }
  /// ExecutorId recorded as the actor of kDataFetch trace spans.
  void set_actor(std::uint64_t actor) {
    actor_.store(actor, std::memory_order_relaxed);
  }

  /// Tasks routed here as expect_cached whose object the LRU had already
  /// evicted (dispatcher raced a heartbeat) — they fell back to fetch.
  [[nodiscard]] std::uint64_t digest_stale() const {
    return n_stale_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t p2p_fetches() const {
    return n_p2p_.load(std::memory_order_relaxed);
  }

 private:
  Clock& clock_;
  const iomodel::IoModel& model_;
  std::atomic<int> concurrency_;
  DataPlane& data_;
  std::atomic<std::uint64_t> actor_{0};
  std::atomic<std::uint64_t> n_stale_{0};
  std::atomic<std::uint64_t> n_p2p_{0};
  obs::Tracer* tracer_{nullptr};
  obs::Counter* m_stale_{nullptr};
};

}  // namespace falkon::core
