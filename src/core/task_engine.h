// Task execution engines.
//
// The executor hands each received TaskSpec to a TaskEngine. Engines:
//   * NoopEngine        — returns immediately ("sleep 0" microbenchmarks);
//   * SleepEngine       — honours sleep durations on the executor's clock
//                         (so a ScaledClock compresses the paper's
//                         480-second tasks into milliseconds);
//   * ShellEngine       — real fork/exec of the command with STDOUT/STDERR
//                         capture, the production engine (the Java original
//                         did a Java exec);
//   * DataStagingEngine — charges I/O time from the IoModel (and optionally
//                         a local cache) before the compute time, for the
//                         section 4.2 experiments.
#pragma once

#include <atomic>
#include <memory>
#include <mutex>

#include "common/clock.h"
#include "common/task.h"
#include "iomodel/data_cache.h"
#include "iomodel/io_model.h"

namespace falkon::core {

class TaskEngine {
 public:
  virtual ~TaskEngine() = default;

  /// Execute the task; fills exit_code/state/outputs and exec_time_s.
  /// Must be thread-safe: multiple executor slots may call concurrently.
  [[nodiscard]] virtual TaskResult run(const TaskSpec& task) = 0;
};

class NoopEngine final : public TaskEngine {
 public:
  [[nodiscard]] TaskResult run(const TaskSpec& task) override;
};

/// Interprets "sleep N" commands (and any task with estimated_runtime_s)
/// by sleeping on the provided clock.
class SleepEngine final : public TaskEngine {
 public:
  explicit SleepEngine(Clock& clock) : clock_(clock) {}
  [[nodiscard]] TaskResult run(const TaskSpec& task) override;

  /// Duration a sleep task requests, parsed from args or the estimate.
  [[nodiscard]] static double sleep_duration_s(const TaskSpec& task);

 private:
  Clock& clock_;
};

/// Real process execution: fork/exec with pipe-captured output.
class ShellEngine final : public TaskEngine {
 public:
  [[nodiscard]] TaskResult run(const TaskSpec& task) override;
};

/// Models data staging per the IoModel; the executor-local DataCache
/// short-circuits reads of objects staged by earlier tasks (paper section 6
/// data-diffusion precursor). `concurrency` approximates how many peers
/// contend for the same storage and is set by the deployment.
class DataStagingEngine final : public TaskEngine {
 public:
  DataStagingEngine(Clock& clock, const iomodel::IoModel& model,
                    int concurrency, std::uint64_t cache_capacity_bytes = 0);
  [[nodiscard]] TaskResult run(const TaskSpec& task) override;

  void set_concurrency(int concurrency) { concurrency_.store(concurrency); }
  [[nodiscard]] std::uint64_t cache_hits() const;
  [[nodiscard]] std::uint64_t cache_misses() const;

 private:
  Clock& clock_;
  const iomodel::IoModel& model_;
  std::atomic<int> concurrency_;
  mutable std::mutex cache_mu_;
  std::unique_ptr<iomodel::DataCache> cache_;
};

}  // namespace falkon::core
