#include "core/data_plane.h"

#include <algorithm>

#include "common/logging.h"
#include "common/strings.h"

namespace falkon::core {

DataPlane::DataPlane(DataPlaneOptions options)
    : options_(options), cache_(options.cache_capacity_bytes) {
  if (options_.obs != nullptr) {
    obs::Registry& reg = options_.obs->registry();
    m_hits_ = &reg.counter("falkon.data.cache_hits");
    m_misses_ = &reg.counter("falkon.data.cache_misses");
    m_fetches_ = &reg.counter("falkon.data.fetches");
    m_fetch_bytes_ = &reg.counter("falkon.data.fetch_bytes");
    m_fetch_served_ = &reg.counter("falkon.data.fetches_served");
    m_fetch_failures_ = &reg.counter("falkon.data.fetch_failures");
  }
}

DataPlane::~DataPlane() { stop(); }

Status DataPlane::start() {
  if (started_) return ok_status();
  net::RpcServerOptions server_options;
  server_options.obs = options_.obs;
  server_options.n_loops = options_.n_loops;
  // Pin each object's fetch traffic to one loop, mirroring how the
  // dispatcher pins an executor's exchange.
  server_options.affinity_key = [](const wire::Message& message) -> std::uint64_t {
    if (const auto* fetch = std::get_if<wire::DataFetch>(&message)) {
      return std::hash<std::string>{}(fetch->object) | 1u;
    }
    return 0;
  };
  auto status = server_.start(
      [this](const wire::Message& request) { return handle(request); },
      options_.port, /*fault=*/nullptr, std::move(server_options));
  if (!status.ok()) return status;
  started_ = true;
  return ok_status();
}

void DataPlane::stop() {
  if (!started_) return;
  started_ = false;
  server_.stop();
}

std::uint16_t DataPlane::port() const { return server_.port(); }

bool DataPlane::access(const std::string& object) {
  bool hit;
  {
    std::lock_guard lock(mu_);
    hit = cache_.access(object);
  }
  if (hit) {
    if (m_hits_) m_hits_->inc();
  } else {
    if (m_misses_) m_misses_->inc();
  }
  return hit;
}

void DataPlane::insert(const std::string& object, std::uint64_t bytes) {
  std::lock_guard lock(mu_);
  cache_.insert(object, bytes);
  ++generation_;
  if (cache_.contains(object)) {
    bytes_[object] = bytes;
  }
  for (auto& victim : cache_.take_evictions()) {
    bytes_.erase(victim);
    pending_evicts_.push_back(std::move(victim));
  }
}

bool DataPlane::contains(const std::string& object) const {
  std::lock_guard lock(mu_);
  return cache_.contains(object);
}

void DataPlane::erase(const std::string& object) {
  std::lock_guard lock(mu_);
  if (!cache_.contains(object)) return;
  cache_.erase(object);
  bytes_.erase(object);
  pending_evicts_.push_back(object);
  ++generation_;
}

std::uint64_t DataPlane::cache_hits() const {
  std::lock_guard lock(mu_);
  return cache_.hits();
}

std::uint64_t DataPlane::cache_misses() const {
  std::lock_guard lock(mu_);
  return cache_.misses();
}

std::size_t DataPlane::entries() const {
  std::lock_guard lock(mu_);
  return cache_.entries();
}

DataPlane::Digest DataPlane::digest() const {
  std::lock_guard lock(mu_);
  Digest digest;
  digest.generation = generation_;
  digest.objects = cache_.objects();
  return digest;
}

std::vector<std::string> DataPlane::take_evict_notices() {
  std::lock_guard lock(mu_);
  std::vector<std::string> out;
  out.swap(pending_evicts_);
  return out;
}

Result<std::uint64_t> DataPlane::fetch_from(const std::string& endpoint,
                                            const std::string& object) {
  if (m_fetches_) m_fetches_->inc();
  const auto colon = endpoint.rfind(':');
  if (colon == std::string::npos || colon + 1 >= endpoint.size()) {
    if (m_fetch_failures_) m_fetch_failures_->inc();
    n_fetch_fail_.fetch_add(1, std::memory_order_relaxed);
    return make_error(ErrorCode::kInvalidArgument,
                      "bad data endpoint: " + endpoint);
  }
  const std::string host = endpoint.substr(0, colon);
  const int port = std::atoi(endpoint.c_str() + colon + 1);
  if (port <= 0 || port > 65535) {
    if (m_fetch_failures_) m_fetch_failures_->inc();
    n_fetch_fail_.fetch_add(1, std::memory_order_relaxed);
    return make_error(ErrorCode::kInvalidArgument,
                      "bad data port in endpoint: " + endpoint);
  }
  auto client = net::RpcClient::connect(host, static_cast<std::uint16_t>(port));
  if (!client.ok()) {
    if (m_fetch_failures_) m_fetch_failures_->inc();
    n_fetch_fail_.fetch_add(1, std::memory_order_relaxed);
    return client.error();
  }
  wire::DataFetch request;
  request.object = object;
  auto reply = client.value().call(wire::Message{std::move(request)});
  if (!reply.ok()) {
    if (m_fetch_failures_) m_fetch_failures_->inc();
    n_fetch_fail_.fetch_add(1, std::memory_order_relaxed);
    return reply.error();
  }
  const auto* fetched = std::get_if<wire::DataFetchReply>(&reply.value());
  if (fetched == nullptr || fetched->object != object) {
    if (m_fetch_failures_) m_fetch_failures_->inc();
    n_fetch_fail_.fetch_add(1, std::memory_order_relaxed);
    return make_error(ErrorCode::kProtocolError,
                      "unexpected reply to data fetch");
  }
  // The payload CRC was verified at decode; cross-check the deterministic
  // blob so a peer serving wrong-but-self-consistent bytes is caught too.
  if (fetched->payload != payload_for(object, fetched->object_bytes)) {
    if (m_fetch_failures_) m_fetch_failures_->inc();
    n_fetch_fail_.fetch_add(1, std::memory_order_relaxed);
    return make_error(ErrorCode::kProtocolError,
                      "data fetch payload mismatch for " + object);
  }
  if (m_fetch_bytes_) m_fetch_bytes_->inc(fetched->payload.size());
  n_fetch_ok_.fetch_add(1, std::memory_order_relaxed);
  return fetched->object_bytes;
}

std::string DataPlane::payload_for(const std::string& object,
                                   std::uint64_t object_bytes) {
  const auto n = static_cast<std::size_t>(
      std::min<std::uint64_t>(std::max<std::uint64_t>(object_bytes, 16),
                              kMaxFetchPayload));
  // FNV-1a of the name seeds an xorshift stream: deterministic per object,
  // independent of which holder serves it.
  std::uint64_t h = 1469598103934665603ull;
  for (const char c : object) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  std::uint64_t x = h != 0 ? h : 0x9e3779b97f4a7c15ull;
  std::string out;
  out.reserve(n);
  while (out.size() < n) {
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    out.push_back(static_cast<char>(x & 0xff));
  }
  return out;
}

wire::Message DataPlane::handle(const wire::Message& request) {
  if (const auto* fetch = std::get_if<wire::DataFetch>(&request)) {
    std::uint64_t object_bytes = 0;
    bool found = false;
    {
      std::lock_guard lock(mu_);
      auto it = bytes_.find(fetch->object);
      if (it != bytes_.end() && cache_.contains(fetch->object)) {
        object_bytes = it->second;
        found = true;
      }
    }
    if (!found) {
      if (m_fetch_failures_) m_fetch_failures_->inc();
      return wire::ErrorReply{ErrorCode::kNotFound,
                              "object not cached: " + fetch->object};
    }
    n_fetch_served_.fetch_add(1, std::memory_order_relaxed);
    if (m_fetch_served_) m_fetch_served_->inc();
    auto reply = wire::make_data_fetch_reply(
        fetch->object, object_bytes, payload_for(fetch->object, object_bytes));
    if (m_fetch_bytes_) m_fetch_bytes_->inc(reply.payload.size());
    return reply;
  }
  return wire::ErrorReply{ErrorCode::kInvalidArgument,
                          "unexpected message on data channel"};
}

P2pDataEngine::P2pDataEngine(Clock& clock, const iomodel::IoModel& model,
                             int concurrency, DataPlane& data, obs::Obs* obs)
    : clock_(clock), model_(model), concurrency_(concurrency), data_(data) {
  if (obs != nullptr) {
    tracer_ = &obs->tracer();
    m_stale_ = &obs->registry().counter("falkon.data.digest_stale");
  }
}

TaskResult P2pDataEngine::run(const TaskSpec& task) {
  const double start = clock_.now_s();
  double io_time = 0.0;
  const bool reads = task.io_mode == IoMode::kRead ||
                     task.io_mode == IoMode::kReadWrite;
  if (!task.data_object.empty() && reads) {
    if (data_.access(task.data_object)) {
      // Local hit: only the cheap local read (plus any write) remains.
      TaskSpec local = task;
      local.data_location = DataLocation::kLocalDisk;
      io_time = model_.io_time_s(local, concurrency_.load());
    } else {
      if (task.expect_cached) {
        // The dispatcher routed on a digest entry we have since evicted
        // (heartbeat staleness race) — fall back to fetching, never fail.
        n_stale_.fetch_add(1, std::memory_order_relaxed);
        if (m_stale_) m_stale_->inc();
      }
      const double fetch_start = clock_.now_s();
      bool fetched = false;
      if (!task.data_source.empty()) {
        fetched = data_.fetch_from(task.data_source, task.data_object).ok();
        if (fetched) n_p2p_.fetch_add(1, std::memory_order_relaxed);
      }
      if (fetched) {
        // Peer copy landed on local disk; charge the local read. The real
        // socket exchange above already cost wall-clock time.
        TaskSpec local = task;
        local.data_location = DataLocation::kLocalDisk;
        io_time = model_.io_time_s(local, concurrency_.load());
      } else {
        io_time = model_.io_time_s(task, concurrency_.load());
      }
      if (tracer_) {
        tracer_->record(task.id, obs::Stage::kDataFetch, fetch_start,
                        clock_.now_s(),
                        actor_.load(std::memory_order_relaxed));
      }
      data_.insert(task.data_object, task.input_bytes);
    }
  } else {
    io_time = model_.io_time_s(task, concurrency_.load());
  }
  const double total = io_time + task.estimated_runtime_s;
  if (total > 0) clock_.sleep_s(total);

  TaskResult result;
  result.task_id = task.id;
  result.exit_code = 0;
  result.state = TaskState::kCompleted;
  result.exec_time_s = clock_.now_s() - start;
  return result;
}

}  // namespace falkon::core
