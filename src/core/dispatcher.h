// The Falkon dispatcher (paper sections 3.2-3.4).
//
// "The dispatcher accepts tasks from clients and implements the dispatch
// policy." It is deliberately *streamlined*: no multiple queues, no
// priorities, no accounting — a single FIFO wait queue per service, an
// executor registry, and a notification engine. That narrowness is the
// paper's core claim: it buys 2-3 orders of magnitude in dispatch
// throughput over full-featured LRMs.
//
// Client side (factory/instance pattern): create_instance() returns an
// InstanceId (the "EPR"); submit/wait_results/destroy operate on it.
// Executor side (hybrid push/pull, section 3.3): the dispatcher pushes a
// notification through an ExecutorSink {3}; the executor pulls work with
// get_work {4,5}, executes, and delivers results {6}; the acknowledgement
// {7} optionally piggy-backs the next task(s) (section 3.4).
//
// Locking (the dispatch hot path is sharded; there is no global lock):
//   * The executor registry is split into `executor_shards` shards, each a
//     mutex + id->entry map. A shard mutex only guards map membership;
//     entry state lives behind the entry's own mutex, so concurrent
//     get_work/deliver_results for different executors never contend.
//   * The wait queue has its own mutex (`queue_mu_`), instances another
//     (`inst_mu_`). Lock order: inst_mu_ -> queue_mu_, entry->mu ->
//     queue_mu_; shard mutexes and instance mutexes are leaves; two entry
//     mutexes are never held together.
//   * Counters are atomics; busy_ is maintained incrementally on state
//     transitions instead of recounted under a global lock.
//   * Result routing and the completion listener run outside all
//     dispatcher locks.
#pragma once

#include <atomic>
#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <set>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/clock.h"
#include "common/ids.h"
#include "common/result.h"
#include "common/stats.h"
#include "common/task.h"
#include "common/thread_pool.h"
#include "core/journal.h"
#include "core/policies.h"
#include "fault/fault.h"
#include "obs/obs.h"
#include "wire/message.h"

namespace falkon::core {

/// Release sentinel (see wire/message.h), re-exported for core users.
using wire::kReleaseResourceKey;

struct DispatcherConfig {
  /// Threads in the notification engine (paper: "a pool of threads operate
  /// to send out notifications").
  int notify_threads{4};
  ReplayPolicy replay;
  /// Piggy-back new tasks on result acknowledgements (section 3.4).
  bool piggyback{true};
  /// Dispatcher->executor bundling cap per exchange. The paper keeps this
  /// at 1 ("every task is transmitted individually from dispatcher to an
  /// executor") because it lacks runtime estimates; larger values enable
  /// the ablation.
  std::uint32_t max_tasks_per_dispatch{1};

  /// Estimate-balanced bundling (section 3.4: load imbalance from
  /// dispatcher-executor bundling "can be addressed by having clients
  /// assign each task an estimated runtime"): a bundle stops growing once
  /// its summed estimated runtime reaches this budget, so one executor is
  /// never handed many long tasks. 0 disables the budget (count-only cap).
  double max_bundle_runtime_s{0.0};

  /// Cap for adaptively sized bundles: when an executor requests
  /// wire::kAdaptiveBundle / wire::kAdaptiveWant, the dispatcher targets
  /// clamp(queue_depth / registered_executors, 1, max_adaptive_bundle)
  /// tasks per exchange (still honouring max_bundle_runtime_s). Adaptive
  /// requests deliberately ignore max_tasks_per_dispatch.
  std::uint32_t max_adaptive_bundle{256};

  /// Shards in the executor registry. Executor ids hash onto shards, so
  /// exchanges from different executors proceed under different locks.
  /// Values < 1 are treated as 1.
  int executor_shards{8};

  /// Locality deferral bound (docs/DATA.md, invariant I12): when > 0 and
  /// the task at the head of the wait queue has been runnable longer than
  /// this, locality-seeking policies (good-cache-compute, data-aware) are
  /// overridden and the head is dispatched to the next executor that asks,
  /// so cache affinity can never starve a task. 0 disables the bound.
  double max_locality_wait_s{0.0};

  /// Observability context (metrics + lifecycle tracing); nullptr disables
  /// all instrumentation at zero cost. See docs/OBSERVABILITY.md.
  obs::Obs* obs{nullptr};

  // ---- failure detection & recovery (docs/FAULTS.md) ----

  /// Failure detector: deregister an executor whose last heartbeat (or
  /// registration) is older than this, requeueing its in-flight tasks.
  /// 0 disables the detector.
  double heartbeat_timeout_s{0.0};
  /// Background recovery sweep period (model time). When > 0 a sweeper
  /// thread runs replay timeouts, the failure detector and stale-
  /// notification resends automatically; 0 keeps the manual-only
  /// check_replays() behaviour.
  double sweep_interval_s{0.0};
  /// Re-send the notification of an executor stuck in the notified state
  /// longer than this (0 disables) — recovers notifications lost on the
  /// push channel.
  double renotify_timeout_s{0.0};
  /// Poison-task quarantine: permanently fail a task once this many
  /// distinct executors died while holding it (0 disables), so one bad
  /// task cannot kill the worker pool executor by executor.
  int quarantine_threshold{0};
  /// Fault injection (lost notifications, lost acks); nullptr in
  /// production — same zero-cost discipline as `obs`.
  fault::FaultInjector* fault{nullptr};

  // ---- durability & failover (docs/HA.md) ----

  /// Write-ahead journal receiving every state transition; nullptr (the
  /// default) disables journaling entirely — same zero-cost discipline as
  /// `obs` and `fault`. Typically an ha::Journal; must outlive the
  /// dispatcher.
  StateJournal* journal{nullptr};
};

struct DispatcherStatus {
  std::uint64_t submitted{0};
  std::uint64_t queued{0};
  std::uint64_t dispatched{0};  // currently on executors
  std::uint64_t completed{0};
  std::uint64_t failed{0};
  std::uint64_t retried{0};
  /// Failure-detector verdicts: executors deregistered for missing
  /// heartbeats, and how many of those later proved alive (false
  /// positives: a heartbeat or delivery arrived after the suspicion).
  std::uint64_t suspicions{0};
  std::uint64_t false_suspicions{0};
  /// Tasks permanently failed by the poison-task quarantine.
  std::uint64_t quarantined{0};
  std::uint32_t registered_executors{0};
  std::uint32_t busy_executors{0};
  std::uint32_t idle_executors{0};

  [[nodiscard]] wire::StatusReply to_wire() const;
};

/// How the dispatcher pushes notifications to one executor. In-process
/// deployments wake the executor runtime directly; the TCP deployment
/// writes a frame on the notification channel.
class ExecutorSink {
 public:
  virtual ~ExecutorSink() = default;
  virtual void notify(ExecutorId id, std::uint64_t resource_key) = 0;

  /// Called after the dispatcher has unlinked `id` (deregistration, failure
  /// detection, poison-blame eviction) so transports can release any
  /// per-executor state — push subscriptions, unretired bundle sequence
  /// numbers. Invoked outside the dispatcher's entry locks; default no-op.
  virtual void on_removed(ExecutorId id) { (void)id; }
};

/// How the dispatcher notifies clients that results are ready for pick-up
/// (message {8} of paper Figure 2). Optional: clients may instead poll
/// wait_results (the paper's firewall-bypass mode).
class ClientSink {
 public:
  virtual ~ClientSink() = default;
  virtual void notify(InstanceId instance, std::uint64_t results_ready) = 0;

  /// Push a drained mailbox batch to a streaming subscriber (a ResultStream
  /// frame on the push channel — docs/PROTOCOL.md). Returns false when the
  /// batch could not be handed to the transport (no push channel, unknown
  /// subscription key): the dispatcher rolls its streaming cursor back and
  /// the results stay in the mailbox for wait_results polling. A transport
  /// that accepted the frame but lost it downstream (backpressure shed,
  /// severed connection) may still return true — loss is recovered by the
  /// ack protocol, never by this return value.
  virtual bool deliver(InstanceId instance, std::uint64_t seq,
                       const std::vector<TaskResult>& results) {
    (void)instance;
    (void)seq;
    (void)results;
    return false;
  }
};

class Dispatcher {
 public:
  Dispatcher(Clock& clock, DispatcherConfig config,
             std::unique_ptr<DispatchPolicy> policy = nullptr);
  ~Dispatcher();

  Dispatcher(const Dispatcher&) = delete;
  Dispatcher& operator=(const Dispatcher&) = delete;

  // ---- client operations (factory/instance pattern) ----
  Result<InstanceId> create_instance(ClientId client);
  Status destroy_instance(InstanceId instance);

  /// Bundled submit {1,2}; returns the number of tasks accepted.
  /// `submit_seq` (optional) is a per-instance, strictly increasing client
  /// sequence number for exactly-once submission across failover: a seq at
  /// or below the instance's high-water mark is a duplicate of a submit the
  /// dispatcher already journaled (the client retried after losing the
  /// reply), and is acknowledged without enqueueing anything. 0 disables
  /// dedup for this call.
  Result<std::uint64_t> submit(InstanceId instance, std::vector<TaskSpec> tasks,
                               std::uint64_t submit_seq = 0);

  /// Seed a freshly constructed dispatcher from a recovered image (cold
  /// restart from WAL+snapshot, or standby promotion — docs/HA.md). Must be
  /// called before any clients or executors are attached; the configured
  /// journal is NOT replayed into (it already contains this state).
  void restore(const DispatcherImage& image);

  /// Blocking result pick-up {9,10}: waits until at least one result is
  /// available (or timeout), returns up to `max_results`.
  Result<std::vector<TaskResult>> wait_results(InstanceId instance,
                                               std::uint32_t max_results,
                                               double timeout_s);

  /// Enter or acknowledge push-mode result streaming (SubscribeResults —
  /// docs/PROTOCOL.md). `ack_seq == 0` (re)subscribes: the streaming
  /// cursor resets and the whole mailbox backlog is re-pushed (the client
  /// dedups by task id, so re-delivery is safe). `ack_seq > 0` cumulatively
  /// acknowledges every streamed result with seq <= ack_seq; acknowledged
  /// results leave the mailbox and are journaled as delivered at that
  /// point — the HA `on_delivered` barrier moves from poll time to ack
  /// time, never disappears. Returns the current push cursor (total
  /// results streamed since the last subscribe).
  Result<std::uint64_t> subscribe_results(InstanceId instance,
                                          std::uint64_t ack_seq);

  // ---- executor operations ----
  Result<ExecutorId> register_executor(const wire::RegisterRequest& request,
                                       std::shared_ptr<ExecutorSink> sink);
  Status deregister_executor(ExecutorId executor, const std::string& reason);

  /// Liveness beacon from an executor. kNotFound if the executor is not
  /// registered (e.g. the failure detector already removed it — the
  /// executor should re-register).
  Status heartbeat(ExecutorId executor);

  /// Pull work {4,5}: up to `max_tasks` tasks for this executor (respecting
  /// the dispatch policy's task selection, e.g. data-aware).
  /// `max_tasks == wire::kAdaptiveBundle` asks the dispatcher to size the
  /// bundle from current queue depth.
  Result<std::vector<TaskSpec>> get_work(ExecutorId executor,
                                         std::uint32_t max_tasks);

  struct DeliverOutcome {
    std::uint64_t acknowledged{0};
    std::vector<TaskSpec> piggyback;
  };

  /// Deliver results {6} and acknowledge {7}, optionally piggy-backing up
  /// to `want_tasks` new tasks in the acknowledgement (or an adaptively
  /// sized bundle for wire::kAdaptiveWant).
  Result<DeliverOutcome> deliver_results(ExecutorId executor,
                                         std::vector<TaskResult> results,
                                         std::uint32_t want_tasks);

  /// Record that `executor` now holds `object` in its local cache (mirror
  /// consulted by the data-aware policy).
  void note_cached_object(ExecutorId executor, const std::string& object);

  /// Replace the dispatcher's mirror of an executor's cache with an
  /// advertised digest (registration piggyback, kHeartbeatRequest piggyback
  /// or a standalone kCacheDigest). `generation` is the executor's digest
  /// sequence number: a digest at or below the last applied generation is
  /// stale (reordered on the wire) and ignored. `data_port` updates the
  /// executor's P2P fetch endpoint (0 keeps the current one).
  void apply_digest(ExecutorId executor, std::uint64_t generation,
                    std::uint32_t data_port,
                    const std::vector<std::string>& objects);

  /// Remove one object from an executor's mirrored cache (kDataEvict
  /// notice) so the locality router stops routing on it (invariant I11).
  /// kNotFound when the executor is unknown or never advertised the object
  /// (the transport answers with an ErrorReply; the connection survives).
  Status evict_cached_object(ExecutorId executor, const std::string& object);

  /// Data-diffusion self-check counters (docs/DATA.md). stale_routes and
  /// locality_overwait are invariant violations (I11/I12) and must read 0;
  /// locality_deferrals counts non-head locality picks (diagnostic).
  struct DataStats {
    std::uint64_t stale_routes{0};
    std::uint64_t locality_overwait{0};
    std::uint64_t locality_deferrals{0};
    std::uint64_t digests_applied{0};
    std::uint64_t evictions{0};
  };
  [[nodiscard]] DataStats data_stats() const;

  // ---- provisioner operations ----
  [[nodiscard]] DispatcherStatus status() const;

  /// Number of executor-registry shards (config.executor_shards clamped).
  /// Transport layers align their event-loop partitioning with this so an
  /// executor's notify/push stays within one shard end to end.
  [[nodiscard]] std::size_t executor_shard_count() const {
    return shard_count_;
  }

  /// Replay policy enforcement: requeue dispatched tasks whose response
  /// timeout elapsed; tasks already out of retry budget are failed
  /// permanently so they cannot linger on a black-holed executor forever.
  /// Returns the number of tasks requeued. Runs automatically when
  /// config.sweep_interval_s > 0; otherwise call periodically (the
  /// provisioner's poll loop does).
  int check_replays();

  /// Failure detector: deregister executors whose heartbeat is older than
  /// config.heartbeat_timeout_s and requeue (or quarantine) their
  /// in-flight tasks. Returns the number of executors removed. Runs
  /// automatically when the sweeper is enabled.
  int check_liveness();

  /// Re-send notifications to executors stuck in the notified state past
  /// config.renotify_timeout_s (lost-notification recovery). Runs
  /// automatically when the sweeper is enabled.
  void renotify_stale();

  /// One full recovery sweep (replay timeouts + failure detector + stale
  /// renotify), exactly what one sweeper-thread iteration runs. Public so
  /// an external timer (the TCP service's reactor wheel) can drive the
  /// cadence instead of a dedicated thread. No-op after shutdown.
  void sweep_once();

  /// Hand the sweep cadence to an external timer: stops and joins the
  /// internal sweeper thread. Returns false (and does nothing) when no
  /// sweeping is configured (sweep_interval_s <= 0). The caller must then
  /// invoke sweep_once() every sweep_interval_real_s() seconds and call
  /// resume_internal_sweeper() when its timer goes away.
  bool adopt_external_sweeper();

  /// Restart the internal sweeper thread after adopt_external_sweeper().
  void resume_internal_sweeper();

  /// The sweep period in real seconds (config interval is model time).
  [[nodiscard]] double sweep_interval_real_s() const;

  /// Centralized release: push a release request to `count` idle executors;
  /// returns ids actually asked.
  std::vector<ExecutorId> request_release(int count);

  /// Invoked for every task result accepted (before retry filtering), with
  /// the dispatcher clock's timestamp; benches use it for throughput
  /// sampling. Must be set before executors start. Called without locks.
  void set_completion_listener(
      std::function<void(const TaskResult&, double now_s)> listener);

  /// Install the client-notification channel {8}; notifications are sent
  /// from the notification engine's thread pool whenever results land in
  /// an instance's mailbox.
  void set_client_sink(std::shared_ptr<ClientSink> sink);

  /// Per-task overhead statistics (round-trip minus execution time).
  [[nodiscard]] Accumulator overhead_stats() const;

  void shutdown();

 private:
  struct QueuedTask {
    InstanceId instance;
    TaskSpec spec;
    double enqueue_s{0.0};
    int attempts{0};
    /// Distinct executors that died while holding this task (quarantine).
    std::vector<std::uint64_t> killers;
  };

  struct DispatchedTask {
    InstanceId instance;
    TaskSpec spec;
    ExecutorId executor;
    double enqueue_s{0.0};
    double dispatch_s{0.0};
    int attempts{0};
    std::vector<std::uint64_t> killers;
  };

  enum class ExecState : std::uint8_t { kIdle, kNotified, kBusy };

  struct ExecutorEntry {
    ExecutorId id;
    wire::RegisterRequest info;
    std::shared_ptr<ExecutorSink> sink;

    /// Guards every mutable field below. Held while exchanging work with
    /// this executor; never held together with another entry's mutex.
    std::mutex mu;
    /// Set when the entry has been unlinked from its shard; a caller that
    /// grabbed the shared_ptr just before removal sees it and treats the
    /// executor as deregistered.
    bool removed{false};
    ExecState state{ExecState::kIdle};
    std::uint32_t inflight{0};
    double registered_s{0.0};
    double last_heartbeat_s{0.0};
    /// When the pending notification was sent (-1: none outstanding);
    /// drives the stale-notification resend.
    double notified_s{-1.0};
    /// Copy-on-write: candidates snapshot the set, so the data-aware
    /// policy can probe it after the entry lock is released.
    std::shared_ptr<const std::unordered_set<std::string>> cached_objects;
    /// Highest digest generation applied for this executor; stale digests
    /// (wire reordering) are dropped.
    std::uint64_t digest_generation{0};
    bool release_requested{false};
    /// This executor's in-flight tasks (by TaskId). Sharded counterpart of
    /// the old global dispatched map: a late duplicate from an executor
    /// that no longer owns the task misses here and is dropped.
    std::unordered_map<std::uint64_t, DispatchedTask> dispatched;
    /// Prefetched tasks claimed for this executor while the queue lock was
    /// already held; the next adaptive exchange serves them without
    /// touching queue_mu_. Reclaimed into the queue whenever the executor
    /// goes idle, times out, or deregisters.
    std::deque<QueuedTask> outbox;
  };

  struct Shard {
    std::mutex mu;
    std::unordered_map<std::uint64_t, std::shared_ptr<ExecutorEntry>> entries;
  };

  /// Per-instance result mailbox; shared_ptr so waiters survive destroy.
  struct Instance {
    ClientId client;
    /// Submit-dedup high-water mark (docs/HA.md); guarded by inst_mu_ —
    /// submit() and restore() both hold it, wait paths never touch this.
    std::uint64_t last_submit_seq{0};
    std::mutex mu;
    std::condition_variable cv;
    std::deque<TaskResult> results;
    bool open{true};

    // ---- push-mode streaming state (docs/PROTOCOL.md), guarded by mu ----
    // Invariant: streamed-but-unacknowledged results form a contiguous
    // FRONT prefix of `results` of length `streamed_prefix` — new results
    // append at the back, the drain extends the prefix toward the back,
    // and only acks/polls pop the front. Results therefore never leave the
    // mailbox at push time; a lost ResultStream frame costs re-delivery
    // (client-side task-id dedup), never loss.
    bool streaming{false};
    std::size_t streamed_prefix{0};
    std::uint64_t stream_pushed{0};  // cumulative results pushed since subscribe
    std::uint64_t stream_acked{0};   // cumulative results acknowledged
    bool drain_scheduled{false};     // edge trigger for the pool drain task
    /// Bumped whenever the cursors above are reset (resubscribe, poll on a
    /// streaming instance). The drain releases `mu` while a frame is in
    /// flight; on push failure it rolls its cursor advance back only if the
    /// regime is still the one it advanced — a reset in between already
    /// re-accounted for every mailbox result.
    std::uint64_t stream_epoch{0};
  };

  /// A result ready to be routed to its instance mailbox once dispatcher
  /// locks are released (route_all resolves the instance then).
  struct PendingRoute {
    InstanceId instance_id;
    TaskResult result;
  };

  Shard& shard_for(std::uint64_t executor_value);
  std::shared_ptr<ExecutorEntry> find_entry(std::uint64_t executor_value);
  std::vector<std::shared_ptr<ExecutorEntry>> snapshot_entries();

  /// Lock an entry, recording the wait in falkon.dispatcher.lock_wait_s
  /// when the acquisition actually contended.
  std::unique_lock<std::mutex> lock_entry(ExecutorEntry& entry);

  // Requires entry.mu held. State transition keeping busy_ incremental
  // and, for first-idle policies, the ordered idle set in sync.
  void set_state_locked(ExecutorEntry& entry, ExecState next);

  /// Drop an executor from the ordered idle set (removal, release request).
  /// idle_mu_ is a leaf: taken under entry mutexes, never holds another.
  void idle_erase(std::uint64_t executor_value);

  /// Add an executor to the ordered idle set. Caller guarantees the entry
  /// is idle, not removed and not release-requested.
  void idle_insert(std::uint64_t executor_value);

  // Requires entry.mu held.
  void cache_insert_locked(ExecutorEntry& entry, const std::string& object);

  // Requires entry.mu held. Removes one object from the COW cached set.
  void cache_erase_locked(ExecutorEntry& entry, const std::string& object);

  /// "host:port" of an executor other than `exclude` that holds `object`
  /// per the holders index, or "" when none. Takes data_mu_ then a shard
  /// mutex (both leaves; caller may hold an entry mutex, never another
  /// entry's).
  std::string alternate_holder(const std::string& object,
                               std::uint64_t exclude);

  // holders_ index maintenance; take data_mu_ internally (leaf).
  void holders_add(const std::string& object, std::uint64_t executor_value);
  void holders_remove(const std::string& object, std::uint64_t executor_value);

  ExecutorCandidate candidate_of(const ExecutorEntry& entry);

  /// Bookkeeping for an operation naming an unregistered executor: clears
  /// a pending suspicion (false positive) and returns kNotFound.
  Error unknown_executor(std::uint64_t executor_value);

  /// Offer the queue head to idle executors, chosen by the dispatch
  /// policy, until either runs out. Takes no lock on entry; safe to call
  /// from any thread.
  void pump_notifications();

  /// Remove one executor and requeue its in-flight tasks; with `blame` set
  /// the executor's death is charged to those tasks and ones past the
  /// quarantine threshold are failed permanently into `to_route`. Returns
  /// false when the executor was not registered.
  bool remove_executor(std::uint64_t executor_value, const std::string& reason,
                       bool blame, std::vector<PendingRoute>& to_route);

  /// Route a delivery batch to its instance mailboxes: one inst_mu_
  /// acquisition resolving every distinct instance, then per instance one
  /// mailbox lock, one bulk append, and one wake-up (an edge-triggered
  /// ClientNotify for polling instances, a scheduled stream drain for
  /// streaming ones) — a 256-task ResultBundle costs 1 lock acquisition,
  /// not 256.
  void route_all(std::vector<PendingRoute>& to_route);

  /// Append `results` to one instance's mailbox and wake its consumers.
  void deliver_batch(InstanceId instance_id,
                     const std::shared_ptr<Instance>& instance,
                     std::vector<TaskResult> results);

  /// Requires instance->mu held: schedule a stream drain on the notify
  /// pool unless one is already pending (edge trigger).
  void schedule_drain_locked(InstanceId instance_id,
                             const std::shared_ptr<Instance>& instance);

  /// Push the unstreamed mailbox suffix to the client sink as a chain of
  /// capped ResultStream frames. With `flush` (the notify-pool path) it
  /// coalesces briefly and drains everything including sub-frame tails;
  /// without (called inline from the delivering thread) it streams only
  /// full frames and hands any leftover to a scheduled flush, so the
  /// caller's RPC reply is never held hostage to a coalescing wait.
  void stream_drain(InstanceId instance_id,
                    const std::shared_ptr<Instance>& instance, bool flush);

  void sweeper_loop();

  // Requires entry.mu held (NOT queue_mu_). Pops up to max_tasks for
  // `entry` honouring the dispatch policy; `adaptive` sizes the bundle
  // from queue depth instead. Updates entry state and its dispatched map.
  std::vector<TaskSpec> take_work_entry_locked(ExecutorEntry& entry,
                                               std::uint32_t max_tasks,
                                               bool adaptive);

  // Requires entry.mu held. Moves one queued task into the entry's
  // dispatched map and appends its spec to `out`.
  void dispatch_one_locked(ExecutorEntry& entry, QueuedTask task, double now,
                           std::vector<TaskSpec>& out);

  // Requires entry.mu held. Returns the entry's prefetched tasks to the
  // front of the wait queue.
  void drain_outbox_locked(ExecutorEntry& entry);

  // Takes queue_mu_ internally.
  void requeue_task(QueuedTask task, bool front);

  static QueuedTask to_queued(DispatchedTask task);

  Clock& clock_;
  DispatcherConfig config_;
  std::unique_ptr<DispatchPolicy> policy_;
  /// Cached policy_->selects_queue_head(): skips the per-pop lookahead
  /// window for head-of-queue policies (the common case).
  bool policy_head_only_{false};
  /// Cached policy_->selects_first_idle(): pump_notifications pops its
  /// target from idle_set_ in O(log n) instead of snapshotting and sorting
  /// the whole registry per notification (which is quadratic in fleet size
  /// when draining a deep queue).
  bool policy_first_idle_{false};
  ThreadPool notify_pool_;

  // Observability handles, resolved once at construction; all null when
  // config_.obs is null, so the hot paths pay one predicted branch each.
  obs::Tracer* tracer_{nullptr};
  obs::Counter* m_submitted_{nullptr};
  obs::Counter* m_dispatched_{nullptr};
  obs::Counter* m_completed_{nullptr};
  obs::Counter* m_failed_{nullptr};
  obs::Counter* m_retried_{nullptr};
  obs::Counter* m_notifications_{nullptr};
  obs::Counter* m_heartbeats_{nullptr};
  obs::Counter* m_suspicions_{nullptr};
  obs::Counter* m_false_suspicions_{nullptr};
  obs::Counter* m_quarantined_{nullptr};
  obs::Counter* m_renotifies_{nullptr};
  obs::Counter* m_sweeps_{nullptr};
  obs::Gauge* m_queue_depth_{nullptr};
  obs::Histogram* m_queue_time_{nullptr};
  obs::Histogram* m_overhead_{nullptr};
  obs::Histogram* m_bundle_size_{nullptr};
  obs::Histogram* m_lock_wait_{nullptr};
  obs::Counter* m_route_batches_{nullptr};
  obs::Counter* m_route_results_{nullptr};
  obs::Histogram* m_route_batch_size_{nullptr};
  obs::Counter* m_stream_pushed_{nullptr};
  obs::Counter* m_stream_acked_{nullptr};
  obs::Counter* m_stream_push_failures_{nullptr};
  obs::Counter* m_data_stale_routes_{nullptr};
  obs::Counter* m_data_overwait_{nullptr};
  obs::Counter* m_data_deferrals_{nullptr};
  obs::Counter* m_data_digests_{nullptr};
  obs::Counter* m_data_evictions_{nullptr};

  // ---- sharded executor registry ----
  std::unique_ptr<Shard[]> shards_;
  std::size_t shard_count_{1};

  /// Idle executors ordered newest-registration-first (descending id),
  /// maintained on every state transition when policy_first_idle_. The
  /// LIFO order keeps long-idle executors idle so the distributed release
  /// policy can reclaim them — same observable order the full scan
  /// produced. Guarded by idle_mu_, a leaf below the entry mutexes.
  std::mutex idle_mu_;
  std::set<std::uint64_t, std::greater<>> idle_set_;

  // ---- wait queue ----
  mutable std::mutex queue_mu_;
  std::deque<QueuedTask> queue_;
  /// Relaxed mirror of queue_.size() read by adaptive bundle sizing
  /// without taking queue_mu_.
  std::atomic<std::size_t> queue_size_{0};

  // ---- client instances ----
  std::mutex inst_mu_;
  std::unordered_map<std::uint64_t, std::shared_ptr<Instance>> instances_;
  IdGenerator<InstanceId> instance_ids_;  // guarded by inst_mu_

  std::mutex ids_mu_;
  IdGenerator<ExecutorId> executor_ids_;  // guarded by ids_mu_

  std::mutex listeners_mu_;
  std::function<void(const TaskResult&, double)> completion_listener_;
  std::shared_ptr<ClientSink> client_sink_;

  mutable std::mutex stats_mu_;
  Accumulator overhead_stats_;

  /// Executors removed by the failure detector; a later heartbeat or
  /// delivery from one of these ids is counted as a false suspicion.
  /// Bounded by the number of detector verdicts in the process lifetime.
  std::mutex suspect_mu_;
  std::unordered_set<std::uint64_t> suspected_;

  /// Reverse index of the per-entry cached_objects mirrors:
  /// object -> executors advertising it. Consulted to stamp an alternate
  /// P2P source onto dispatched tasks. Guarded by data_mu_, a leaf taken
  /// under entry mutexes (never holds another lock).
  mutable std::mutex data_mu_;
  std::unordered_map<std::string, std::unordered_set<std::uint64_t>> holders_;
  /// executor -> "host:port" P2P fetch endpoint (executors with a data
  /// server only). Kept here rather than read from other entries so
  /// alternate_holder never touches a second entry mutex.
  std::unordered_map<std::uint64_t, std::string> data_endpoints_;

  // Data-diffusion counters (see data_stats()).
  std::atomic<std::uint64_t> n_data_stale_routes_{0};
  std::atomic<std::uint64_t> n_data_overwait_{0};
  std::atomic<std::uint64_t> n_data_deferrals_{0};
  std::atomic<std::uint64_t> n_data_digests_{0};
  std::atomic<std::uint64_t> n_data_evictions_{0};

  // ---- counters (lock-free snapshots for status()) ----
  std::atomic<std::uint64_t> n_submitted_{0};
  std::atomic<std::uint64_t> n_completed_{0};
  std::atomic<std::uint64_t> n_failed_{0};
  std::atomic<std::uint64_t> n_retried_{0};
  std::atomic<std::uint64_t> n_suspicions_{0};
  std::atomic<std::uint64_t> n_false_suspicions_{0};
  std::atomic<std::uint64_t> n_quarantined_{0};
  std::atomic<std::uint64_t> dispatched_count_{0};
  std::atomic<std::uint64_t> outboxed_{0};
  std::atomic<std::uint32_t> registered_{0};
  std::atomic<std::uint32_t> busy_{0};

  std::atomic<bool> shutdown_{false};

  // Background recovery sweeper (runs when config_.sweep_interval_s > 0).
  std::thread sweeper_;
  std::mutex sweep_mu_;
  std::condition_variable sweep_cv_;
  bool sweep_stop_{false};
};

}  // namespace falkon::core
