// In-process deployment glue.
//
// LocalExecutorHarness wires one ExecutorRuntime to a Dispatcher in the
// same process (direct calls, no serialisation). InProcFalkon bundles a
// dispatcher plus N executors — the configuration used for dispatch-rate
// microbenchmarks. FalkonCluster is the full multi-level scheduling stack
// of the paper: dispatcher + provisioner + GRAM gateway + batch-scheduler
// substrate, with executors launched dynamically on allocated "nodes"
// (threads), used for the section 4.6 provisioning experiments.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "core/client.h"
#include "core/dispatcher.h"
#include "core/executor.h"
#include "core/provisioner.h"
#include "core/task_engine.h"
#include "lrm/gram.h"

namespace falkon::core {

/// One executor attached in-process to a dispatcher.
class LocalExecutorHarness {
 public:
  LocalExecutorHarness(Clock& clock, Dispatcher& dispatcher,
                       std::unique_ptr<TaskEngine> engine,
                       ExecutorOptions options);
  ~LocalExecutorHarness();

  LocalExecutorHarness(const LocalExecutorHarness&) = delete;
  LocalExecutorHarness& operator=(const LocalExecutorHarness&) = delete;

  Status start();
  [[nodiscard]] ExecutorRuntime& runtime() { return *runtime_; }
  [[nodiscard]] const ExecutorRuntime& runtime() const { return *runtime_; }

 private:
  /// Sink registered with the dispatcher; forwards notifications to the
  /// runtime. Outlives the harness via shared_ptr, so a notification in
  /// flight during teardown hits a nulled pointer instead of freed memory.
  struct NotifyTarget final : ExecutorSink {
    std::mutex mu;
    ExecutorRuntime* runtime{nullptr};
    void notify(ExecutorId, std::uint64_t resource_key) override {
      std::lock_guard lock(mu);
      if (runtime != nullptr) runtime->notify(resource_key);
    }
  };

  class Link final : public DispatcherLink {
   public:
    Link(Dispatcher& dispatcher, std::shared_ptr<NotifyTarget> sink)
        : dispatcher_(dispatcher), sink_(std::move(sink)) {}

    Result<ExecutorId> register_executor(
        const wire::RegisterRequest& request) override {
      return dispatcher_.register_executor(request, sink_);
    }
    Result<std::vector<TaskSpec>> get_work(ExecutorId executor,
                                           std::uint32_t max_tasks) override {
      return dispatcher_.get_work(executor, max_tasks);
    }
    Result<std::vector<TaskSpec>> deliver_results(
        ExecutorId executor, std::vector<TaskResult> results,
        std::uint32_t want_tasks) override {
      auto outcome =
          dispatcher_.deliver_results(executor, std::move(results), want_tasks);
      if (!outcome.ok()) return outcome.error();
      return std::move(outcome.value().piggyback);
    }
    Status deregister(ExecutorId executor, const std::string& reason) override {
      return dispatcher_.deregister_executor(executor, reason);
    }
    Status heartbeat(ExecutorId executor) override {
      return dispatcher_.heartbeat(executor);
    }

   private:
    Dispatcher& dispatcher_;
    std::shared_ptr<NotifyTarget> sink_;
  };

  std::shared_ptr<NotifyTarget> target_;
  Link link_;
  std::unique_ptr<TaskEngine> engine_;
  std::unique_ptr<ExecutorRuntime> runtime_;
};

/// Dispatcher + N in-process executors (microbenchmark configuration).
class InProcFalkon {
 public:
  using EngineFactory = std::function<std::unique_ptr<TaskEngine>(Clock&)>;

  InProcFalkon(Clock& clock, DispatcherConfig config,
               std::unique_ptr<DispatchPolicy> policy = nullptr);
  ~InProcFalkon();

  Status add_executors(int count, const EngineFactory& factory,
                       ExecutorOptions options);

  [[nodiscard]] Dispatcher& dispatcher() { return dispatcher_; }
  [[nodiscard]] DispatcherClient& client() { return client_; }
  [[nodiscard]] Clock& clock() { return clock_; }
  [[nodiscard]] std::size_t executor_count() const;
  [[nodiscard]] std::vector<ExecutorStats> executor_stats() const;

  void stop_executors();

 private:
  Clock& clock_;
  Dispatcher dispatcher_;
  LocalDispatcherClient client_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<LocalExecutorHarness>> executors_;
};

/// Full multi-level scheduling stack (paper Figure 1): client -> dispatcher
/// <- executors on nodes allocated by the provisioner via GRAM4 -> LRM.
struct FalkonClusterConfig {
  DispatcherConfig dispatcher;
  lrm::LrmConfig lrm;
  lrm::GramConfig gram;
  ProvisionerConfig provisioner;
  std::string acquisition_policy{"all-at-once"};
  /// Template applied to every launched executor; idle_timeout_s implements
  /// the distributed release policy (Falkon-15/60/120/180/inf sweeps).
  ExecutorOptions executor_template;
  int lrm_nodes{32};
  /// Engine for launched executors; defaults to SleepEngine on the cluster
  /// clock.
  InProcFalkon::EngineFactory engine_factory;
  /// Optional centralized release policy (replaces executor idle timeout).
  int centralized_release_threshold{0};  // 0 = use distributed policy
};

class FalkonCluster {
 public:
  FalkonCluster(Clock& clock, FalkonClusterConfig config);
  ~FalkonCluster();

  FalkonCluster(const FalkonCluster&) = delete;
  FalkonCluster& operator=(const FalkonCluster&) = delete;

  /// Advance one provisioner poll cycle and reap exited executors.
  void step();

  /// Background drivers (provisioner poll loop); call stop() to end.
  void start_drivers();
  void stop();

  [[nodiscard]] Dispatcher& dispatcher() { return dispatcher_; }
  [[nodiscard]] Provisioner& provisioner() { return *provisioner_; }
  [[nodiscard]] lrm::BatchScheduler& scheduler() { return scheduler_; }
  [[nodiscard]] lrm::Gram4Gateway& gram() { return gram_; }
  [[nodiscard]] DispatcherClient& client() { return client_; }
  [[nodiscard]] Clock& clock() { return clock_; }

  [[nodiscard]] std::size_t live_executors() const;

 private:
  int launch_allocation(const lrm::JobContext& context, AllocationId allocation);
  void reap_exited_locked();

  Clock& clock_;
  FalkonClusterConfig config_;
  Dispatcher dispatcher_;
  LocalDispatcherClient client_;
  lrm::BatchScheduler scheduler_;
  lrm::Gram4Gateway gram_;
  std::unique_ptr<Provisioner> provisioner_;

  mutable std::mutex mu_;
  std::vector<std::unique_ptr<LocalExecutorHarness>> executors_;
  bool stopping_{false};
};

}  // namespace falkon::core
