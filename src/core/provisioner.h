// The Falkon provisioner (paper sections 3.1-3.2, evaluated in 4.6).
//
// "The provisioner periodically monitors dispatcher state {POLL} and, based
// on policy, determines whether to create additional executors, and if so,
// how many, and for how long. Creation requests are issued via GRAM4 to
// abstract LRM details."
//
// The provisioner polls the dispatcher's status, runs the resource
// acquisition policy, submits allocation jobs through the GRAM gateway, and
// tracks the allocation lifecycle. Executor release happens either
// distributed (executors self-terminate on idle timeout; the provisioner
// completes the backing LRM job when an allocation's last executor exits)
// or centralized (a CentralizedReleasePolicy asks the dispatcher to push
// release requests to idle executors).
//
// For Figures 12/13 the provisioner records time series of allocated
// (requested, not yet registered), registered-idle, and active executors.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <thread>

#include "common/clock.h"
#include "common/stats.h"
#include "core/dispatcher.h"
#include "core/policies.h"
#include "lrm/gram.h"

namespace falkon::core {

struct ProvisionerConfig {
  int min_executors{0};
  int max_executors{32};
  /// Executors started per allocated node (paper: 2, one per CPU).
  int executors_per_node{1};
  /// Dispatcher poll period {POLL}.
  double poll_interval_s{1.0};
  /// Walltime requested for allocations (0 = none).
  double allocation_walltime_s{0.0};

  /// Observability context; nullptr disables instrumentation at zero cost.
  obs::Obs* obs{nullptr};
};

struct ProvisionerStats {
  std::uint64_t allocations_requested{0};
  std::uint64_t executors_launched{0};
  std::uint64_t executors_exited{0};
  std::uint64_t allocations_completed{0};
};

/// Starts executors for a granted allocation; returns how many were
/// launched. The glue layer (FalkonCluster or a custom deployment) wires
/// each launched executor's exit back to executor_exited(allocation).
using ExecutorLauncher =
    std::function<int(const lrm::JobContext& context, AllocationId allocation)>;

class Provisioner {
 public:
  Provisioner(Clock& clock, Dispatcher& dispatcher, lrm::Gram4Gateway& gram,
              lrm::BatchScheduler& scheduler, ProvisionerConfig config,
              std::unique_ptr<AcquisitionPolicy> acquisition,
              ExecutorLauncher launcher,
              std::unique_ptr<CentralizedReleasePolicy> central_release = nullptr);
  ~Provisioner();

  Provisioner(const Provisioner&) = delete;
  Provisioner& operator=(const Provisioner&) = delete;

  /// One poll cycle: drive the GRAM gateway and LRM, enforce the replay
  /// policy, run the acquisition (and optional centralized release) policy,
  /// and record the provisioning time series.
  void step();

  /// Drive step() every poll_interval_s on a background thread.
  void start_driver();
  void stop_driver();

  /// Called when an executor belonging to `allocation` on `node`
  /// terminates (idle timeout or stop). When the node's last executor
  /// exits, that node's backing LRM job is completed so the node frees up
  /// — nodes of one allocation release independently, which is what makes
  /// the distributed release policy effective (section 3.1).
  void executor_exited(AllocationId allocation, NodeId node);

  [[nodiscard]] ProvisionerStats stats() const;
  [[nodiscard]] int pending_executors() const;

  /// Provisioning traces (model time): allocated = requested but not yet
  /// registered; registered = registered with the dispatcher but idle;
  /// active = busy executing tasks. Not thread-safe against a running
  /// driver; read after stopping or between manual step() calls.
  [[nodiscard]] const TimeSeries& allocated_series() const { return allocated_series_; }
  [[nodiscard]] const TimeSeries& registered_series() const { return registered_series_; }
  [[nodiscard]] const TimeSeries& active_series() const { return active_series_; }
  [[nodiscard]] const TimeSeries& queued_series() const { return queued_series_; }

 private:
  struct NodeLease {
    JobId lrm_job;
    int executors_live{0};
    bool started{false};
    bool finished{false};
  };

  /// One acquisition request: a single GRAM request backing `nodes` many
  /// single-node LRM jobs, each released when its executors exit.
  struct Allocation {
    AllocationId id;
    int executors_requested{0};
    int jobs_pending_start{0};
    std::map<std::uint64_t, NodeLease> leases;  // by NodeId
  };

  void request_allocation_locked(int executors);

  Clock& clock_;
  Dispatcher& dispatcher_;
  lrm::Gram4Gateway& gram_;
  lrm::BatchScheduler& scheduler_;
  ProvisionerConfig config_;
  std::unique_ptr<AcquisitionPolicy> acquisition_;
  ExecutorLauncher launcher_;
  std::unique_ptr<CentralizedReleasePolicy> central_release_;

  mutable std::mutex mu_;
  std::map<std::uint64_t, Allocation> allocations_;  // by AllocationId
  IdGenerator<AllocationId> allocation_ids_;
  int pending_executors_{0};
  ProvisionerStats stats_;

  TimeSeries allocated_series_;
  TimeSeries registered_series_;
  TimeSeries active_series_;
  TimeSeries queued_series_;

  // Observability handles (null when config_.obs is null).
  obs::Counter* m_allocations_{nullptr};
  obs::Gauge* m_allocated_{nullptr};
  obs::Gauge* m_registered_idle_{nullptr};
  obs::Gauge* m_active_{nullptr};
  obs::Gauge* m_queued_{nullptr};

  std::thread driver_;
  std::atomic<bool> driver_stop_{false};
};

}  // namespace falkon::core
