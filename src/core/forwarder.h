// Three-tier architecture (paper section 6, Figure 16).
//
// "One or more forwarders receive tasks from a client. ... dispatchers are
// deployed on cluster manager nodes ... each dispatcher manages a disjoint
// set of executors." The goal is scaling Falkon beyond one dispatcher and
// reaching executors in private IP spaces: the client talks only to the
// forwarder; the forwarder talks to per-cluster dispatchers.
//
// Forwarder implements DispatcherClient, so clients, FalkonSession and the
// workflow engine work against it unchanged — and because its backends are
// also DispatcherClients, forwarders compose hierarchically (a forwarder
// of forwarders), the "strong resemblance to a hierarchical structure" the
// paper notes.
#pragma once

#include <memory>
#include <mutex>
#include <vector>

#include "core/client.h"

namespace falkon::core {

enum class RoutingPolicy {
  kRoundRobin,   // spread bundles evenly
  kLeastLoaded,  // weight by backlog per registered executor (status poll)
};

class Forwarder final : public DispatcherClient {
 public:
  /// Backends are borrowed; they must outlive the forwarder.
  explicit Forwarder(std::vector<DispatcherClient*> backends,
                     RoutingPolicy routing = RoutingPolicy::kRoundRobin);

  // DispatcherClient interface -------------------------------------------
  /// Creates one instance on every backend; returns a composite handle.
  Result<InstanceId> create_instance(ClientId client) override;

  /// Routes the bundle to backends according to the routing policy. A
  /// backend failure falls over to the next backend; kUnavailable only if
  /// every backend refuses.
  Result<std::uint64_t> submit(InstanceId instance,
                               std::vector<TaskSpec> tasks) override;

  /// Collects results from all backends (non-blocking sweeps + a blocking
  /// slice on one backend, rotating, so a quiet backend cannot starve a
  /// busy one).
  Result<std::vector<TaskResult>> wait_results(InstanceId instance,
                                               std::uint32_t max_results,
                                               double timeout_s) override;

  Status destroy_instance(InstanceId instance) override;

  /// Aggregated across backends.
  Result<DispatcherStatus> status() override;

  [[nodiscard]] std::size_t backend_count() const { return backends_.size(); }

  /// Tasks routed to each backend so far (for balance inspection).
  [[nodiscard]] std::vector<std::uint64_t> routed_counts() const;

 private:
  struct Route {
    InstanceId composite;
    std::vector<InstanceId> per_backend;  // parallel to backends_
  };

  /// Pick the backend for the next bundle. Requires mu_ held.
  std::size_t pick_backend_locked();

  std::vector<DispatcherClient*> backends_;
  RoutingPolicy routing_;

  mutable std::mutex mu_;
  std::vector<Route> routes_;
  IdGenerator<InstanceId> composite_ids_;
  std::vector<std::uint64_t> routed_;
  std::size_t next_backend_{0};
  std::size_t wait_rotor_{0};
};

}  // namespace falkon::core
